GO ?= go

.PHONY: check build vet test race bench fuzz saexp

# The tier-1 gate: everything a PR must keep green.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sim engine hands a goroutine per coroutine; race-check it explicitly.
race:
	$(GO) test -race ./internal/sim/...

bench:
	$(GO) test -run xxx -bench . -benchmem .

fuzz:
	$(GO) test -run xxx -fuzz FuzzEventHeapOps -fuzztime 15s ./internal/sim/

saexp:
	$(GO) build -o bin/saexp ./cmd/saexp
