GO ?= go

.PHONY: check build vet test race bench fuzz saexp chaos cover

# Coverage floors for the protocol-bearing packages (make cover).
COVER_FLOOR_core := 85
COVER_FLOOR_kernel := 80

# The tier-1 gate: everything a PR must keep green.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sim engine hands a goroutine per coroutine; race-check it explicitly.
race:
	$(GO) test -race ./internal/sim/...

bench:
	$(GO) test -run xxx -bench . -benchmem .

fuzz:
	$(GO) test -run xxx -fuzz FuzzEventHeapOps -fuzztime 15s ./internal/sim/
	$(GO) test -run xxx -fuzz FuzzUpcallDowncall -fuzztime 15s ./internal/core/

saexp:
	$(GO) build -o bin/saexp ./cmd/saexp

# Seeded fault-injection sweep with the invariant auditor armed; nonzero
# exit on any violation, lost thread, or nondeterministic replay.
chaos:
	$(GO) run ./cmd/saexp -chaos -seeds 64

# Per-package coverage with floors on the protocol-bearing packages.
cover:
	@set -e; for spec in core:$(COVER_FLOOR_core) kernel:$(COVER_FLOOR_kernel); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		$(GO) test -coverprofile=/tmp/schedact-cover-$$pkg.out ./internal/$$pkg/ >/dev/null; \
		pct=$$($(GO) tool cover -func=/tmp/schedact-cover-$$pkg.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
		echo "internal/$$pkg coverage: $$pct% (floor $$floor%)"; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN { print (p >= f) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "internal/$$pkg coverage $$pct% below floor $$floor%"; exit 1; fi; \
	done
