GO ?= go

.PHONY: check build vet lint test race race-par bench bench-json bench-diff fuzz replay saexp chaos chaos-warm chaos-par scenarios shard-smoke cover trace-demo profile

# -benchtime for bench/bench-json; set BENCHTIME=1x for a smoke run.
BENCHTIME ?= 1s

# Coverage floors for the protocol-bearing packages (make cover).
COVER_FLOOR_core := 85
COVER_FLOOR_kernel := 80

# The tier-1 gate: everything a PR must keep green.
check: build lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet plus the source gates:
#  - interface seam: engines are consumed through the sim.Engine interface
#    only, so no package outside internal/sim may name a concrete engine type;
#  - the retired sim.StatsSink global must not come back (per-engine close
#    hooks replaced it);
#  - concurrency in internal/sim is restricted to the audited files — the
#    coroutine hand-off, the goroutine pool, and the PDES engine's LP
#    protocol; a goroutine or channel anywhere else is a design violation
#    (TestSimConcurrencyIsAudited enforces the same rule from inside).
lint: vet
	@if grep -rn --include='*.go' -E 'sim\.(SeqEngine|ParEngine|ReplayEngine)\b' --exclude-dir=sim .; then \
		echo "lint: concrete engine type referenced outside internal/sim (hold sim.Engine instead)"; exit 1; \
	fi
	@if grep -rn --include='*.go' 'sim\.StatsSink' .; then \
		echo "lint: retired sim.StatsSink referenced (use per-engine close hooks / exp.SetStatsSink)"; exit 1; \
	fi
	@if grep -ln --include='*.go' -E 'go func|make\(chan' internal/sim/*.go \
		| grep -v -E '_test\.go|/(coroutine|pool|lp|par)\.go'; then \
		echo "lint: unaudited concurrency in internal/sim (allowed only in coroutine.go, pool.go, lp.go, par.go)"; exit 1; \
	fi
	@echo "lint: ok"

test:
	$(GO) test ./...

# The sim engine hands a goroutine per coroutine, and the fleet pool fans
# engines across cores; race-check both, plus a real parallel sweep.
race:
	$(GO) test -race ./internal/sim/... ./internal/fleet/...
	$(GO) test -race -run 'TestParallelSweepMatchesSequential|TestChaosSweepShort|TestWarmContext|TestChaosSweepCheckpointResume' ./internal/exp/

# PDES-engine race job: the par oracle battery plus real chaos workloads
# driven through the LP protocol under the race detector. Separate from
# `race` so CI can parallelize it and so a PDES regression is attributed
# immediately.
race-par:
	$(GO) test -race -run 'TestPar|FuzzParVsSeqOracle' ./internal/sim/
	SCHEDACT_PAR_SEEDS=8 $(GO) test -race -run 'TestParEngineMatchesReference|TestGoldenTracesPar' -count=1 ./internal/exp/

bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) . ./internal/...

# Archive benchmark numbers in machine-readable form.
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) . ./internal/... | ./bin/benchjson > BENCH.json
	@echo "wrote BENCH.json"

# Diff a fresh 1x benchmark run against the committed BENCH.json baseline.
# BENCHDIFF_FLAGS=-soft makes it report-only (CI's shared 1-core runners are
# too noisy to gate hard); run locally without it to enforce the threshold.
BENCHDIFF_FLAGS ?=
bench-diff:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) . ./internal/... | ./bin/benchjson > /tmp/schedact-bench-new.json
	./bin/benchjson -old BENCH.json -new /tmp/schedact-bench-new.json $(BENCHDIFF_FLAGS)

# -fuzzminimizetime keeps corpus minimization from eating the budget: the
# oracle target finds many new coverage paths per run.
fuzz:
	$(GO) test -run xxx -fuzz FuzzEventHeapOps -fuzztime 15s ./internal/sim/
	$(GO) test -run xxx -fuzz FuzzWheelVsHeapOracle -fuzztime 15s -fuzzminimizetime 5s ./internal/sim/
	$(GO) test -run xxx -fuzz FuzzPooledVsUnpooled -fuzztime 15s -fuzzminimizetime 5s ./internal/sim/
	$(GO) test -run xxx -fuzz FuzzParVsSeqOracle -fuzztime 15s -fuzzminimizetime 5s ./internal/sim/
	$(GO) test -run xxx -fuzz FuzzEngineReset -fuzztime 15s -fuzzminimizetime 5s ./internal/sim/
	$(GO) test -run xxx -fuzz FuzzUpcallDowncall -fuzztime 15s ./internal/core/

saexp:
	$(GO) build -o bin/saexp ./cmd/saexp

# Seeded fault-injection sweep with the invariant auditor armed; nonzero
# exit on any violation, lost thread, or nondeterministic replay. Override
# the range with SEEDS/FIRST (e.g. `make chaos SEEDS=256 FIRST=100`); set
# CHAOS_CHECKPOINT to a path to make the sweep resumable across invocations.
SEEDS ?= 64
FIRST ?= 1
CHAOS_CHECKPOINT ?=
chaos:
	$(GO) run ./cmd/saexp -chaos -seeds $(SEEDS) -first $(FIRST) $(if $(CHAOS_CHECKPOINT),-checkpoint $(CHAOS_CHECKPOINT))

# Warm/cold equivalence oracle over the full sweep width: every seed's
# fingerprint from a recycled RunContext compared against a cold run's, plus
# the golden traces replayed on one recycled engine.
chaos-warm:
	SCHEDACT_WARM_SEEDS=64 $(GO) test -run 'TestWarmContextMatchesCold|TestGoldenTracesWarmEngine' -count=1 ./internal/exp/

# Record/replay pin: every sweep seed recorded on the reference engine and
# re-executed on the tape-driven replay engine, fingerprints compared.
replay:
	SCHEDACT_REPLAY_SEEDS=64 $(GO) test -run TestReplayEngineMatchesReference -count=1 ./internal/exp/

# PDES pin: every sweep seed run on the reference engine and again on the
# conservative PDES engine (LP count varying by seed), fingerprints compared
# byte-for-byte; plus the full sweep driven end-to-end through saexp.
chaos-par:
	SCHEDACT_PAR_SEEDS=64 $(GO) test -run TestParEngineMatchesReference -count=1 ./internal/exp/
	$(GO) run ./cmd/saexp -chaos -seeds 64 -engine par

# Scenario-layer gate: the whole spec pipeline (strict parsing, validation
# paths, round-trip, resume keys, compile orderings, checkpoint envelope),
# then the canonical specs compiled and run with their fingerprints diffed
# against the pinned per-seed table, and finally the CLI surface smoked
# end-to-end — -list, and a custom spec fed through -scenario on stdin.
scenarios:
	$(GO) test -count=1 ./internal/scenario/
	$(GO) test -run 'TestScenario|TestFingerprintsPinned|TestExperimentOutputsDeterministic' -count=1 ./internal/exp/
	$(GO) run ./cmd/saexp -list
	echo '{"name":"ci-smoke","workload":{"kind":"nbody","nbody":{"n":16,"steps":2}},"machine":{"cpus":2},"binding":{"systems":["new-ft"],"procs":[1,2]}}' \
		| $(GO) run ./cmd/saexp -scenario -

# Sharded-sweep smoke: the canonical 64-seed chaos sweep run as 4 shard
# processes by the self-exec driver — with shard 1 first killed mid-run so
# the driver's crash-resume path really executes — then the merged verdict
# lines (latency quantiles, pass/fail) diffed against a single-process run,
# and the per-seed JSONL results checked for full seed coverage. The
# fleet-fingerprint lines are excluded from the diff deliberately: a k-shard
# merge reports the hierarchical digest-of-digests, not the flat chain
# (DESIGN.md §9); flat per-seed identity is pinned by the shard=1 tests.
SHARD_SMOKE_DIR ?= /tmp/schedact-shard-smoke
shard-smoke: saexp
	rm -rf $(SHARD_SMOKE_DIR) && mkdir -p $(SHARD_SMOKE_DIR)
	./bin/saexp -scenario chaos64 > $(SHARD_SMOKE_DIR)/unsharded.txt
	-timeout -s KILL 0.15 ./bin/saexp -scenario chaos64 -shard 1/4 -workers 1 \
		-checkpoint $(SHARD_SMOKE_DIR)/ck.shard1of4 -checkpoint-every 2 \
		-results $(SHARD_SMOKE_DIR)/seeds.jsonl.shard1of4 > /dev/null 2>&1
	./bin/saexp -scenario chaos64 -shard-exec 4 -checkpoint $(SHARD_SMOKE_DIR)/ck \
		-results $(SHARD_SMOKE_DIR)/seeds.jsonl > $(SHARD_SMOKE_DIR)/sharded.txt
	grep -E 'latency|seeds passed|seeds FAILED' $(SHARD_SMOKE_DIR)/unsharded.txt > $(SHARD_SMOKE_DIR)/want.txt
	grep -E 'latency|seeds passed|seeds FAILED' $(SHARD_SMOKE_DIR)/sharded.txt > $(SHARD_SMOKE_DIR)/got.txt
	diff $(SHARD_SMOKE_DIR)/want.txt $(SHARD_SMOKE_DIR)/got.txt
	@seeds=$$(cat $(SHARD_SMOKE_DIR)/seeds.jsonl.shard*of4 | grep -o '"seed":[0-9]*' | sort -u | wc -l); \
		echo "shard-smoke: $$seeds distinct seeds in JSONL results"; test "$$seeds" -eq 64
	@echo "shard-smoke: 4-process sharded sweep (shard 1 killed and resumed) matches the single-process run"

# CPU + heap profile of the chaos sweep (the macro hot path) at -workers 1,
# so the profile is the engine, not the fleet. View with
# `go tool pprof -http=: cpu.pprof`.
PROFILE_SEEDS ?= 16
profile: saexp
	./bin/saexp -chaos -seeds $(PROFILE_SEEDS) -workers 1 -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof (view: go tool pprof -http=: cpu.pprof)"

# Export a Chrome/Perfetto trace of the Figure 1 smoke run and verify the
# JSON parses (saexp re-reads its own output; python double-checks).
trace-demo:
	$(GO) run ./cmd/saexp -exp fig1 -trace-out /tmp/fig1.json
	@if command -v python3 >/dev/null; then \
		python3 -c "import json; d=json.load(open('/tmp/fig1.json')); print('trace-demo: /tmp/fig1.json parses,', len(d['traceEvents']), 'trace events')"; \
	else \
		echo "trace-demo: python3 unavailable; JSON already validated by saexp itself"; \
	fi

# Per-package coverage with floors on the protocol-bearing packages.
cover:
	@set -e; for spec in core:$(COVER_FLOOR_core) kernel:$(COVER_FLOOR_kernel); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		$(GO) test -coverprofile=/tmp/schedact-cover-$$pkg.out ./internal/$$pkg/ >/dev/null; \
		pct=$$($(GO) tool cover -func=/tmp/schedact-cover-$$pkg.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
		echo "internal/$$pkg coverage: $$pct% (floor $$floor%)"; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN { print (p >= f) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "internal/$$pkg coverage $$pct% below floor $$floor%"; exit 1; fi; \
	done
