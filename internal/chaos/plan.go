// Package chaos is a seeded fault injector and an always-on invariant
// auditor for the simulated scheduling stack.
//
// The paper's argument for scheduler activations rests on the kernel/user
// contract holding under adverse timing: processors may be revoked, threads
// may fault or block, and notifications may be delayed at any instant, yet
// processors must never be lost or double-counted and runnable work must
// never be stranded. The injector manufactures exactly those adverse
// timings — preemption storms through the kernel's own reallocation path,
// disk-latency spikes, page eviction storms, jittered quanta, stretched
// upcall latencies, and a competing interloper address space — all drawn
// from a single seeded PRNG consumed in deterministic event order, so every
// run is a pure function of its seed and any failure replays exactly.
//
// The auditor rides the same run: it observes the trace stream continuously
// (monotone virtual time, a ring of recent entries for failure reports) and
// checks a catalogue of cross-layer conservation invariants at event
// boundaries (see Auditor). A violation carries the offending trace window
// and a kernel-state snapshot, so a broken scheduler fails fast and
// debuggably rather than finishing with silently wrong numbers.
package chaos

import (
	"math/rand"

	"schedact/internal/sim"
)

// Plan is the storm shape for one run: which faults fire and how hard. A
// zero interval disables that fault. Plans are normally derived from a seed
// with NewPlan, but tests can build one by hand to aim a single fault.
type Plan struct {
	Seed int64

	// PreemptEvery is the mean interval between forced-preemption storms;
	// each storm revokes up to PreemptBurst randomly chosen processors
	// through the kernel's own revocation path.
	PreemptEvery sim.Duration
	PreemptBurst int

	// RebalanceEvery is the mean interval between forced reallocations,
	// shaking the allocator (and its leftover-rotation index) at instants no
	// policy timer would pick.
	RebalanceEvery sim.Duration

	// QuantumJitterFrac scales a uniform ±jitter applied to each Topaz
	// quantum as its timer is armed.
	QuantumJitterFrac float64

	// DiskJitterFrac scales multiplicative disk-latency spikes: each request
	// is stretched by up to this fraction of its service time.
	DiskJitterFrac float64

	// UpcallDelayMax bounds the extra kernel-side latency added to each
	// upcall, widening the stillborn window in which a fresh activation can
	// itself be preempted before reaching user code.
	UpcallDelayMax sim.Duration

	// EvictEvery is the mean interval between page evictions; pages
	// 0..EvictPages-1 are candidates. Evictions turn later touches into
	// fault storms (with coalescing and delayed-upcall paths exercised).
	EvictEvery sim.Duration
	EvictPages int

	// InterloperPeriod drives a competing address space that periodically
	// demands processors, runs InterloperBurst, and gives them back —
	// stressing downcall/upcall interleaving and the double-preemption
	// notification protocol from outside the workload under test.
	InterloperPeriod sim.Duration
	InterloperBurst  sim.Duration
}

// NewPlan derives a storm shape from a seed. Different seeds vary not just
// the timing draws but the shape itself: some seeds run every fault, others
// drop the interloper or the eviction storm so quieter mixes are covered
// too.
func NewPlan(seed int64) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{
		Seed:              seed,
		PreemptEvery:      sim.Duration(500+rng.Intn(3500)) * sim.Microsecond,
		PreemptBurst:      1 + rng.Intn(3),
		RebalanceEvery:    sim.Duration(1+rng.Intn(8)) * sim.Millisecond,
		QuantumJitterFrac: 0.5 * rng.Float64(),
		DiskJitterFrac:    rng.Float64(),
		UpcallDelayMax:    sim.Duration(rng.Intn(40)) * sim.Microsecond,
	}
	if rng.Intn(4) > 0 {
		p.EvictEvery = sim.Duration(2+rng.Intn(10)) * sim.Millisecond
		p.EvictPages = 6
	}
	if rng.Intn(4) > 0 {
		p.InterloperPeriod = sim.Duration(4+rng.Intn(12)) * sim.Millisecond
		p.InterloperBurst = sim.Duration(100+rng.Intn(700)) * sim.Microsecond
	}
	return p
}
