package chaos

import (
	"fmt"

	"schedact/internal/sim"
	"schedact/internal/trace"
)

// Fingerprint condenses an entire run — every retained trace entry, the
// final metrics snapshot, and the final virtual time — into one 64-bit
// FNV-1a hash. Two runs of the same seed must produce identical
// fingerprints; the chaos sweep runs every seed twice and compares, which
// catches any nondeterminism leak (map iteration, real-time dependence,
// PRNG shared across orderings) the moment it appears.
type Fingerprint uint64

// String renders the fingerprint as fixed-width hex.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Fingerprinter accumulates the hash incrementally as trace records arrive,
// so unbounded runs fingerprint in constant space regardless of the log's
// retention bound. It hashes the typed binary fields — time, CPU, Kind, the
// integer arguments, and the identifier strings — never the rendered text,
// so fingerprints are stable across message-wording changes and the per-
// record cost is a few dozen multiplies with no allocation.
type Fingerprinter struct {
	h       uint64
	Entries uint64
	val     Fingerprint
	done    bool
}

// NewFingerprinter hooks a fingerprinter onto the trace stream.
func NewFingerprinter(tr *trace.Log) *Fingerprinter {
	f := &Fingerprinter{h: fnvOffset}
	tr.Observe(f.entry)
	return f
}

// Reset rewinds a warm fingerprinter to its freshly-attached state so the
// next run hashes from the FNV offset basis. The trace observer installed at
// construction stays (observers survive Log.Reset).
func (f *Fingerprinter) Reset() {
	f.h = fnvOffset
	f.Entries = 0
	f.val = 0
	f.done = false
}

func (f *Fingerprinter) u64(v uint64) {
	for i := 0; i < 8; i++ {
		f.h ^= v & 0xff
		f.h *= fnvPrime
		v >>= 8
	}
}

func (f *Fingerprinter) str(s string) {
	for i := 0; i < len(s); i++ {
		f.h ^= uint64(s[i])
		f.h *= fnvPrime
	}
	// Terminator so ("ab","c") and ("a","bc") hash differently.
	f.h ^= 0xff
	f.h *= fnvPrime
}

func (f *Fingerprinter) entry(r trace.Record) {
	f.Entries++
	f.u64(uint64(r.T))
	f.u64(uint64(int64(r.CPU)))
	f.u64(uint64(r.Kind))
	f.u64(uint64(r.A))
	f.u64(uint64(r.B))
	f.u64(uint64(r.C))
	f.u64(uint64(r.D))
	f.str(r.Name)
	f.str(r.Aux)
}

// Finish folds in the run's final state — virtual time and the full metrics
// snapshot — and returns the fingerprint. The fingerprinter may keep
// accumulating afterwards, but normally Finish is the run's last act.
//
// Host samples (stats.FuncHost) are skipped: they describe how the host
// executed the simulation — physical goroutine switches, pool reuse — and
// may differ between two byte-identical runs of the same seed, which is
// exactly what the replay check must not flag.
func (f *Fingerprinter) Finish(eng sim.Engine) Fingerprint {
	f.u64(uint64(eng.Now()))
	for _, s := range eng.Metrics().Snapshot() {
		if s.Host {
			continue
		}
		f.str(s.Name)
		f.u64(s.Value)
	}
	return Fingerprint(f.h)
}

// AttachClose arms the fingerprinter to finalize itself as a close hook on
// eng: as the engine closes — while every counter is final but before live
// coroutines are unwound — Finish folds in the final clock and metrics
// snapshot, and the result becomes available from Value. This is the
// hook-native replacement for calling Finish by hand before Close.
func (f *Fingerprinter) AttachClose(eng sim.Engine) {
	eng.Hooks().OnClose(func(e sim.Engine) {
		f.val = f.Finish(e)
		f.done = true
	})
}

// Value returns the fingerprint finalized by the AttachClose hook. It panics
// if the engine has not closed yet: a pre-close read would silently miss the
// final clock and metrics fold.
func (f *Fingerprinter) Value() Fingerprint {
	if !f.done {
		panic("chaos: Fingerprinter.Value before the engine closed (AttachClose finalizes on close)")
	}
	return f.val
}
