package chaos

import (
	"fmt"
	"strings"

	"schedact/internal/core"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// windowSize bounds the recent-trace ring attached to failure reports.
const windowSize = 48

// Violation is one invariant failure, carrying enough context to debug it:
// when, which invariant, the kernel's state summary, and the trace window
// leading up to the failure.
type Violation struct {
	T         sim.Time
	Invariant string
	Detail    string
	State     string
	Window    []trace.Record
}

// Error implements error with the full report.
func (v Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %s violated at %v: %s\n", v.Invariant, v.T, v.Detail)
	fmt.Fprintf(&b, "  kernel: %s\n", v.State)
	fmt.Fprintf(&b, "  trace window (%d entries):\n", len(v.Window))
	for _, e := range v.Window {
		fmt.Fprintf(&b, "    %s\n", e)
	}
	return b.String()
}

// Auditor is the always-on checker: it consumes the trace stream
// continuously and runs a battery of cross-layer conservation checks at
// event boundaries. The catalogue:
//
//	I1 activation-processor:  every allocated processor hosts exactly one
//	                          running activation of its space, dispatched
//	                          there, and running counts match allocations
//	                          (core.CheckInvariants).
//	I2 work-conservation:     no processor is free while a started space
//	                          wants more than it holds (physical plus
//	                          debugger-held logical processors).
//	I3 cpu-accounting:        the sum of per-space processor usage equals
//	                          the machine's own busy time, exactly, at
//	                          every instant.
//	I4 monotone-time:         trace timestamps never run backwards
//	                          (checked per entry, not per boundary).
//	I5 block-conservation:    activations that blocked = activations that
//	                          unblocked + activations currently blocked.
//	I6 activation-table:      no discarded activation lingers in a space's
//	                          table.
//	I7 grant-conservation:    every processor grant was announced by
//	                          exactly one AddProcessor upcall (stillborn
//	                          redeliveries strip the revoked grant).
//	I8 trace-conservation:    the typed record stream agrees with the
//	                          kernel's own counters — blocks, unblocks,
//	                          upcalls, and AddProcessor grants counted by
//	                          Kind dispatch over the stream match the
//	                          kernel stats deltas since Attach. A layer
//	                          that mutates state without emitting (or
//	                          emits without mutating) trips this.
//
// Checks must run at event boundaries because kernel mutations are only
// atomic within one event callback; the auditor therefore arms its own
// periodic check event rather than checking from the trace observer.
type Auditor struct {
	// OnFail, when non-nil, is called with each violation as it is found
	// (tests install t.Fatalf wrappers). Violations are recorded either way.
	OnFail func(Violation)

	Violations []Violation
	Checks     uint64

	k       *core.Kernel
	tr      *trace.Log
	every   sim.Duration
	window  []trace.Record
	wnext   int
	lastT   sim.Time
	stopped bool
	audits  []core.SpaceAudit // reused snapshot buffer; valid within one Check

	// stream holds counters derived from the typed record stream by Kind
	// dispatch; base snapshots the kernel counters at Attach time so I8
	// compares deltas (the kernel may have run — and traced into a log the
	// auditor wasn't yet observing — before Attach).
	stream   streamCounts
	base     streamCounts
	streamOK bool
}

// streamCounts is the I8 ledger: scheduling transitions counted two ways,
// once from the record stream and once from the kernel's stats.
type streamCounts struct {
	blocks, unblocks, upcalls, grants uint64
}

// Attach builds an auditor for the kernel, registers its continuous checks
// on the trace log (nil is allowed: boundary checks still run, failure
// reports just carry no window), and, when every > 0, arms a periodic
// boundary check. Registers chaos.audit_* metrics on the engine.
func Attach(k *core.Kernel, tr *trace.Log, every sim.Duration) *Auditor {
	a := &Auditor{k: k, tr: tr, every: every}
	// I8 needs the complete stream: a filtered log hides records by
	// category, so the conservation ledger would undercount.
	a.streamOK = tr != nil && !tr.Filtered()
	a.base = streamCounts{
		blocks:   k.Stats.Blocks,
		unblocks: k.Stats.Unblocks,
		upcalls:  k.Stats.Upcalls,
		grants:   k.Stats.Grants,
	}
	tr.Observe(func(r trace.Record) {
		if r.T < a.lastT {
			a.fail("I4 monotone-time", fmt.Sprintf("record at %v after record at %v: %s", r.T, a.lastT, r))
		}
		a.lastT = r.T
		a.count(r)
		a.record(r)
	})
	reg := k.Eng.Metrics()
	reg.Func("chaos.audit_checks", func() uint64 { return a.Checks })
	reg.Func("chaos.audit_violations", func() uint64 { return uint64(len(a.Violations)) })
	a.arm()
	return a
}

func (a *Auditor) arm() {
	if a.every <= 0 {
		return
	}
	k := a.k
	var tick func()
	tick = func() {
		if a.stopped {
			return
		}
		a.Check()
		k.Eng.After(a.every, "chaos-audit", tick)
	}
	k.Eng.After(a.every, "chaos-audit", tick)
}

// Stop disarms the periodic check chain (explicit Check calls still work).
func (a *Auditor) Stop() { a.stopped = true }

// Reset restarts a warm auditor for a fresh run on the same kernel and log:
// the I8 ledger re-bases on the kernel's (just-Reset) counters, the window
// and violation list clear, and the periodic check chain re-arms (the
// engine's Reset disarmed the old one). The trace observer installed at
// Attach stays — observers survive Log.Reset — as do the audit metrics.
func (a *Auditor) Reset() {
	a.Violations = a.Violations[:0]
	a.Checks = 0
	a.window = a.window[:0]
	a.wnext = 0
	a.lastT = 0
	a.stopped = false
	a.audits = a.audits[:0]
	a.streamOK = a.tr != nil && !a.tr.Filtered()
	a.stream = streamCounts{}
	a.base = streamCounts{
		blocks:   a.k.Stats.Blocks,
		unblocks: a.k.Stats.Unblocks,
		upcalls:  a.k.Stats.Upcalls,
		grants:   a.k.Stats.Grants,
	}
	a.arm()
}

// Err returns the first violation as an error, or nil.
func (a *Auditor) Err() error {
	if len(a.Violations) == 0 {
		return nil
	}
	return a.Violations[0]
}

// count maintains the I8 ledger by Kind dispatch — no string in sight.
// Page faults block through the same kernel path as I/O, so both KindActBlock
// and KindFault are stream-side blocks; a grant is a KindUpcall whose first
// packed event is AddProcessor (grantSlot always puts it first, and
// stillborn requeues strip it, mirroring I7's accounting).
func (a *Auditor) count(r trace.Record) {
	switch r.Kind {
	case trace.KindActBlock, trace.KindFault:
		a.stream.blocks++
	case trace.KindActUnblock:
		a.stream.unblocks++
	case trace.KindUpcall:
		a.stream.upcalls++
		if ref, ok := r.EvRef(0); ok && ref.Kind() == trace.UpAddProcessor {
			a.stream.grants++
		}
	}
}

func (a *Auditor) record(r trace.Record) {
	if len(a.window) < windowSize {
		a.window = append(a.window, r)
		return
	}
	a.window[a.wnext] = r
	a.wnext = (a.wnext + 1) % windowSize
}

// snapshotWindow returns the retained records oldest-first.
func (a *Auditor) snapshotWindow() []trace.Record {
	if len(a.window) < windowSize {
		return append([]trace.Record(nil), a.window...)
	}
	out := make([]trace.Record, 0, windowSize)
	out = append(out, a.window[a.wnext:]...)
	out = append(out, a.window[:a.wnext]...)
	return out
}

func (a *Auditor) fail(invariant, detail string) {
	v := Violation{
		T:         a.k.Eng.Now(),
		Invariant: invariant,
		Detail:    detail,
		State:     a.k.AuditString(),
		Window:    a.snapshotWindow(),
	}
	a.Violations = append(a.Violations, v)
	if a.OnFail != nil {
		a.OnFail(v)
	}
}

// Check runs the boundary battery (I1–I3, I5–I7) once. It must be called
// between engine events — from an event callback of its own, or from the
// driving loop between RunFor windows — never from inside kernel code.
func (a *Auditor) Check() {
	a.Checks++
	k := a.k
	if err := k.CheckInvariants(); err != nil {
		a.fail("I1 activation-processor", err.Error())
	}
	a.audits = k.AuditSpacesInto(a.audits)
	audits := a.audits

	if free := k.FreeCPUs(); free > 0 {
		for _, s := range audits {
			if s.Started && s.Want > s.Allocated+s.Debugged {
				a.fail("I2 work-conservation", fmt.Sprintf(
					"%d processor(s) free while %q wants %d and holds %d",
					free, s.Space.Name, s.Want, s.Allocated+s.Debugged))
				break
			}
		}
	}

	var live sim.Duration
	blocked, leaked := 0, 0
	for _, s := range audits {
		live += s.LiveUsage
		blocked += s.Blocked
		leaked += s.Leaked
	}
	if busy := k.MachineBusy(); busy != live {
		a.fail("I3 cpu-accounting", fmt.Sprintf(
			"machine busy %v != summed space usage %v (drift %v)", busy, live, busy-live))
	}
	if leaked > 0 {
		a.fail("I6 activation-table", fmt.Sprintf(
			"%d discarded/unknown activation(s) still in a space table", leaked))
	}

	st := k.Stats
	if st.Blocks != st.Unblocks+uint64(blocked) {
		a.fail("I5 block-conservation", fmt.Sprintf(
			"%d blocked != %d unblocked + %d currently blocked", st.Blocks, st.Unblocks, blocked))
	}
	if st.UpcallEvents[core.EvAddProcessor] != st.Grants {
		a.fail("I7 grant-conservation", fmt.Sprintf(
			"%d AddProcessor upcalls != %d grants", st.UpcallEvents[core.EvAddProcessor], st.Grants))
	}

	if a.streamOK {
		want := streamCounts{
			blocks:   st.Blocks - a.base.blocks,
			unblocks: st.Unblocks - a.base.unblocks,
			upcalls:  st.Upcalls - a.base.upcalls,
			grants:   st.Grants - a.base.grants,
		}
		if a.stream != want {
			a.fail("I8 trace-conservation", fmt.Sprintf(
				"stream {blocks %d unblocks %d upcalls %d grants %d} != kernel deltas {%d %d %d %d}",
				a.stream.blocks, a.stream.unblocks, a.stream.upcalls, a.stream.grants,
				want.blocks, want.unblocks, want.upcalls, want.grants))
		}
	}
}
