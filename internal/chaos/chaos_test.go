package chaos_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"schedact/internal/chaos"
	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/sim"
	"schedact/internal/trace"
	"schedact/internal/uthread"
)

// saResult is everything one audited SA chaos run produces.
type saResult struct {
	fp         chaos.Fingerprint
	violations []chaos.Violation
	finished   int
	total      int
}

// runSA executes one seeded mixed workload on the scheduler-activation
// kernel under full fault injection with the auditor attached. ablate, if
// non-nil, breaks the kernel before the run starts.
func runSA(seed int64, ablate func(*core.Kernel)) saResult {
	eng := sim.NewEngine()
	defer eng.Close()
	tr := trace.New(4096)
	k := core.New(eng, core.Config{CPUs: 4, Trace: tr})
	if ablate != nil {
		ablate(k)
	}
	vm := k.NewVM()
	aud := chaos.Attach(k, tr, 250*sim.Microsecond)
	fpr := chaos.NewFingerprinter(tr)
	inj := chaos.New(eng, chaos.NewPlan(seed))
	inj.InstrumentSA(k)
	inj.InstrumentVM(vm)

	rng := rand.New(rand.NewSource(seed))
	finished, total := 0, 0
	for si := 0; si < 2; si++ {
		s := uthread.OnActivations(k, fmt.Sprintf("wl%d", si), rng.Intn(2), 4, uthread.Options{})
		mu := s.NewMutex()
		n := 3 + rng.Intn(4)
		total += n
		for ti := 0; ti < n; ti++ {
			plan := make([]int, 3+rng.Intn(5))
			for i := range plan {
				plan[i] = rng.Intn(5)
			}
			work := sim.Duration(rng.Intn(1500)+100) * sim.Microsecond
			page := rng.Intn(6)
			s.SpawnPrio(fmt.Sprintf("t%d.%d", si, ti), rng.Intn(2), func(th *uthread.Thread) {
				for _, op := range plan {
					switch op {
					case 0:
						th.Exec(work)
					case 1:
						mu.Lock(th)
						th.Exec(work / 4)
						mu.Unlock(th)
					case 2:
						th.BlockIO()
					case 3:
						th.TouchPage(vm, page)
					case 4:
						th.Yield()
					}
				}
				finished++
			})
		}
		s.Start()
	}

	for step := 0; step < 4000 && finished < total && len(aud.Violations) == 0; step++ {
		eng.RunFor(sim.Millisecond)
	}
	// Quiesce injection and drain, so a shortfall below means a thread was
	// genuinely lost, not merely still dodging preemption storms.
	inj.Stop()
	for step := 0; step < 2000 && finished < total && len(aud.Violations) == 0; step++ {
		eng.RunFor(sim.Millisecond)
	}
	aud.Check()
	return saResult{fp: fpr.Finish(eng), violations: aud.Violations, finished: finished, total: total}
}

// TestSeedDeterminism re-runs seeds and demands bit-identical fingerprints:
// the whole storm — every preemption, spike, and eviction — must be a pure
// function of the seed. Different seeds must produce different runs.
func TestSeedDeterminism(t *testing.T) {
	fps := map[int64]chaos.Fingerprint{}
	for _, seed := range []int64{1, 2, 3} {
		a := runSA(seed, nil)
		b := runSA(seed, nil)
		if len(a.violations) > 0 {
			t.Fatalf("seed %d: auditor violation:\n%v", seed, a.violations[0])
		}
		if a.finished != a.total {
			t.Fatalf("seed %d: finished %d of %d threads (wedged?)", seed, a.finished, a.total)
		}
		if a.fp != b.fp {
			t.Fatalf("seed %d: fingerprints differ across identical runs: %v vs %v", seed, a.fp, b.fp)
		}
		fps[seed] = a.fp
	}
	if fps[1] == fps[2] || fps[2] == fps[3] || fps[1] == fps[3] {
		t.Fatalf("distinct seeds produced identical fingerprints: %v", fps)
	}
}

// TestAuditorCatchesNoGrant breaks the allocator's grant phase and demands
// the auditor catch the stranded processors as a work-conservation
// violation, with a populated failure report.
func TestAuditorCatchesNoGrant(t *testing.T) {
	r := runSA(1, func(k *core.Kernel) { k.AblateNoGrant = true })
	if len(r.violations) == 0 {
		t.Fatal("broken allocator (no grants) escaped the auditor")
	}
	v := r.violations[0]
	if !strings.HasPrefix(v.Invariant, "I2") {
		t.Fatalf("expected an I2 work-conservation violation, got %q: %s", v.Invariant, v.Detail)
	}
	if v.State == "" {
		t.Fatalf("violation carries no kernel state snapshot: %v", v)
	}
	if !strings.Contains(v.Error(), "trace window") {
		t.Fatalf("violation report missing trace window:\n%v", v.Error())
	}
}

// TestAuditorCatchesDropEvent breaks the delayed-notification path (thread
// state riding Preempted events is silently lost) and demands the harness's
// progress check catch the wedge that a healthy run of the same seed does
// not exhibit.
func TestAuditorCatchesDropEvent(t *testing.T) {
	healthy := runSA(2, nil)
	if healthy.finished != healthy.total {
		t.Fatalf("healthy baseline wedged: %d of %d", healthy.finished, healthy.total)
	}
	broken := runSA(2, func(k *core.Kernel) { k.AblateDropEvent = true })
	if broken.finished == broken.total && len(broken.violations) == 0 {
		t.Fatal("broken notification path escaped both the auditor and the progress check")
	}
}

// TestTopazInstrumentation runs the baseline-kernel instrumentation
// (jittered quanta, preemption storms through the oblivious dispatcher,
// disk spikes) and demands determinism and completion there too.
func TestTopazInstrumentation(t *testing.T) {
	run := func(seed int64) (chaos.Fingerprint, int, int) {
		eng := sim.NewEngine()
		defer eng.Close()
		tr := trace.New(4096)
		k := kernel.New(eng, kernel.Config{CPUs: 4, Trace: tr})
		fpr := chaos.NewFingerprinter(tr)
		inj := chaos.New(eng, chaos.NewPlan(seed))
		inj.InstrumentKernel(k)

		rng := rand.New(rand.NewSource(seed))
		finished, total := 0, 0
		s := uthread.OnKernelThreads(k, k.NewSpace("wl", false), 2, uthread.Options{})
		mu := s.NewMutex()
		n := 4 + rng.Intn(4)
		total += n
		for i := 0; i < n; i++ {
			work := sim.Duration(rng.Intn(2000)+100) * sim.Microsecond
			ops := 3 + rng.Intn(4)
			s.Spawn("t", func(th *uthread.Thread) {
				for j := 0; j < ops; j++ {
					switch rng.Intn(4) {
					case 0:
						th.Exec(work)
					case 1:
						mu.Lock(th)
						th.Exec(work / 4)
						mu.Unlock(th)
					case 2:
						th.BlockIO()
					case 3:
						th.Yield()
					}
				}
				finished++
			})
		}
		s.Start()
		for step := 0; step < 4000 && finished < total; step++ {
			eng.RunFor(sim.Millisecond)
		}
		inj.Stop()
		for step := 0; step < 2000 && finished < total; step++ {
			eng.RunFor(sim.Millisecond)
		}
		return fpr.Finish(eng), finished, total
	}
	fpA, finA, totA := run(7)
	fpB, _, _ := run(7)
	if finA != totA {
		t.Fatalf("finished %d of %d kernel threads (wedged?)", finA, totA)
	}
	if fpA != fpB {
		t.Fatalf("Topaz chaos run not deterministic: %v vs %v", fpA, fpB)
	}
}
