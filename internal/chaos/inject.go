package chaos

import (
	"math/rand"

	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/machine"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// Injector executes a Plan against a run. All randomness comes from one
// PRNG consumed in deterministic event order (the engine is sequential and
// every hook is called from its event loop), so the whole storm replays
// from the seed.
type Injector struct {
	Plan Plan

	eng     sim.Engine
	rng     *rand.Rand
	tr      *trace.Log // the instrumented kernel's log; injections announce themselves on it
	stopped bool

	Stats InjectorStats
}

// InjectorStats counts the faults an injector actually landed.
type InjectorStats struct {
	Preempts         uint64 // processors forcibly revoked
	PreemptMisses    uint64 // storm hits on unallocated/idle processors
	Rebalances       uint64 // forced reallocations
	Evictions        uint64 // pages evicted
	UpcallDelays     uint64 // upcalls stretched
	DiskPerturbs     uint64 // disk requests stretched
	QuantumJitters   uint64 // quanta jittered
	InterloperPulses uint64 // interloper demand pulses
}

// New creates an injector for the engine. Instrument the kernels under test
// with InstrumentSA / InstrumentKernel / InstrumentVM before running.
func New(eng sim.Engine, p Plan) *Injector {
	in := &Injector{Plan: p, eng: eng, rng: rand.New(rand.NewSource(p.Seed ^ 0x5deece66d))}
	reg := eng.Metrics()
	reg.Func("chaos.preempts", func() uint64 { return in.Stats.Preempts })
	reg.Func("chaos.rebalances", func() uint64 { return in.Stats.Rebalances })
	reg.Func("chaos.evictions", func() uint64 { return in.Stats.Evictions })
	reg.Func("chaos.upcall_delays", func() uint64 { return in.Stats.UpcallDelays })
	reg.Func("chaos.disk_perturbs", func() uint64 { return in.Stats.DiskPerturbs })
	reg.Func("chaos.interloper_pulses", func() uint64 { return in.Stats.InterloperPulses })
	return in
}

// Stop quiesces the injector: timer chains stop re-arming and perturbation
// hooks return zero, so a harness can drain in-flight work undisturbed (the
// wedge check must distinguish "still finishing" from "lost a thread").
func (in *Injector) Stop() { in.stopped = true }

// Reset re-aims a warm injector at a fresh plan: the PRNG reseeds exactly as
// New would, stats zero, and the stopped latch clears. Call after the engine
// has been Reset (which disarmed every old timer chain) and re-instrument
// the new run's kernels; the metric registrations made at construction keep
// reading this injector's stats.
func (in *Injector) Reset(p Plan) {
	in.Plan = p
	in.rng.Seed(p.Seed ^ 0x5deece66d)
	in.tr = nil
	in.stopped = false
	in.Stats = InjectorStats{}
}

// emit announces an injection on the instrumented kernel's trace, so replay
// windows and Chrome exports show the fault alongside its consequences.
func (in *Injector) emit(k trace.Kind, a int64) {
	in.tr.Emit(trace.Record{T: in.eng.Now(), CPU: -1, Kind: k, A: a})
}

// jittered draws an interval uniformly from [mean/2, 3*mean/2).
func (in *Injector) jittered(mean sim.Duration) sim.Duration {
	return mean/2 + sim.Duration(in.rng.Int63n(int64(mean)))
}

// chain arms a self-re-arming timer with jittered periods.
func (in *Injector) chain(mean sim.Duration, kind sim.Kind, fire func()) {
	if mean <= 0 {
		return
	}
	var tick func()
	tick = func() {
		if in.stopped {
			return
		}
		fire()
		in.eng.After(in.jittered(mean), kind, tick)
	}
	in.eng.After(in.jittered(mean), kind, tick)
}

// instrumentDisk installs disk-latency spikes on the machine's disk.
func (in *Injector) instrumentDisk(m *machine.Machine) {
	frac := in.Plan.DiskJitterFrac
	if frac <= 0 {
		return
	}
	m.Disk.Perturb = func(lat sim.Duration) sim.Duration {
		if in.stopped || lat <= 0 {
			return lat
		}
		in.Stats.DiskPerturbs++
		return lat + sim.Duration(in.rng.Int63n(int64(float64(lat)*frac)+1))
	}
}

// InstrumentSA threads the plan through a scheduler-activation kernel:
// upcall-latency stretching, disk spikes, preemption storms and forced
// reallocations via the kernel's own revocation path, and the interloper
// space.
func (in *Injector) InstrumentSA(k *core.Kernel) {
	p := in.Plan
	in.tr = k.Trace
	if p.UpcallDelayMax > 0 {
		k.UpcallPerturb = func() sim.Duration {
			if in.stopped {
				return 0
			}
			in.Stats.UpcallDelays++
			return sim.Duration(in.rng.Int63n(int64(p.UpcallDelayMax) + 1))
		}
	}
	in.instrumentDisk(k.M)
	if p.PreemptEvery > 0 && p.PreemptBurst > 0 {
		in.chain(p.PreemptEvery, "chaos-preempt", func() {
			n := 1 + in.rng.Intn(p.PreemptBurst)
			for i := 0; i < n; i++ {
				cpu := in.rng.Intn(k.M.NumCPUs())
				if k.ChaosPreempt(cpu) {
					in.Stats.Preempts++
					in.emit(trace.KindChaosPreempt, int64(cpu))
				} else {
					in.Stats.PreemptMisses++
				}
			}
		})
	}
	in.chain(p.RebalanceEvery, "chaos-rebalance", func() {
		in.Stats.Rebalances++
		in.emit(trace.KindChaosRebalance, 0)
		k.ForceRebalance()
	})
	if p.InterloperPeriod > 0 {
		in.startInterloper(k)
	}
}

// InstrumentVM arms eviction storms against the kernel's pager.
func (in *Injector) InstrumentVM(vm *core.VM) {
	p := in.Plan
	if p.EvictPages <= 0 {
		return
	}
	in.chain(p.EvictEvery, "chaos-evict", func() {
		in.Stats.Evictions++
		page := in.rng.Intn(p.EvictPages)
		in.emit(trace.KindChaosEvict, int64(page))
		vm.Evict(page)
	})
}

// InstrumentKernel threads the plan through the Topaz baseline kernel:
// jittered quanta, preemption storms through the oblivious dispatcher, and
// disk spikes.
func (in *Injector) InstrumentKernel(k *kernel.Kernel) {
	p := in.Plan
	in.tr = k.Trace
	if p.QuantumJitterFrac > 0 {
		amp := int64(float64(k.C.Quantum) * p.QuantumJitterFrac)
		if amp > 0 {
			k.QuantumJitter = func() sim.Duration {
				if in.stopped {
					return 0
				}
				in.Stats.QuantumJitters++
				return sim.Duration(in.rng.Int63n(2*amp+1) - amp)
			}
		}
	}
	in.instrumentDisk(k.M)
	if p.PreemptEvery > 0 && p.PreemptBurst > 0 {
		in.chain(p.PreemptEvery, "chaos-preempt", func() {
			n := 1 + in.rng.Intn(p.PreemptBurst)
			for i := 0; i < n; i++ {
				cpu := in.rng.Intn(k.M.NumCPUs())
				if k.ChaosPreempt(machine.CPUID(cpu)) {
					in.Stats.Preempts++
					in.emit(trace.KindChaosPreempt, int64(cpu))
				} else {
					in.Stats.PreemptMisses++
				}
			}
		})
	}
}

// startInterloper registers a competing address space that periodically
// demands processors, burns a burst on each, and gives them back — the
// §5.3 daemon pattern turned adversarial. A preempted burst's remaining
// demand is deliberately abandoned (the interloper exists to disturb, not
// to finish), so its vessel is recovered and discarded exactly as the
// daemon client does.
func (in *Injector) startInterloper(k *core.Kernel) {
	p := in.Plan
	var sp *core.Space
	sp = k.NewSpace("interloper", 2, core.ClientFunc(func(act *core.Activation, events []core.Event) {
		for _, ev := range events {
			if ev.Kind == core.EvPreempted && ev.Act != nil {
				if w := ev.Act.TakeWorker(); w != nil {
					_ = w // abandoned burst remainder
				}
				ev.Act.Discard()
			}
		}
		act.Context().Exec(p.InterloperBurst)
		act.YieldProcessor()
	}))
	in.chain(p.InterloperPeriod, "chaos-interloper", func() {
		in.Stats.InterloperPulses++
		demand := 1 + in.rng.Intn(2)
		in.emit(trace.KindChaosPulse, int64(demand))
		sp.KernelSetDemand(demand)
	})
	sp.Start()
	sp.KernelSetDemand(0)
}
