package scenario

import (
	"fmt"
	"strings"
	"testing"
)

// TestShardRangeTilesTheSweep pins the partition contract: for any shard
// count, the subranges are contiguous, cover first..first+seeds-1 exactly,
// and differ in width by at most one with earlier shards taking the
// remainder.
func TestShardRangeTilesTheSweep(t *testing.T) {
	cases := []struct {
		first, seeds int64
		of           int
	}{
		{1, 64, 4}, {1, 64, 1}, {1, 64, 64}, {1, 7, 3}, {0, 10, 4},
		{100, 13, 5}, {1, 1, 1}, {5, 1000000, 7},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%d+%d/%d", tc.first, tc.seeds, tc.of)
		next := tc.first
		q := tc.seeds / int64(tc.of)
		var total int64
		for i := 1; i <= tc.of; i++ {
			first, width := ShardRange(tc.first, tc.seeds, i, tc.of)
			if first != next {
				t.Fatalf("%s: shard %d starts at %d, want %d (contiguity)", name, i, first, next)
			}
			if width != q && width != q+1 {
				t.Fatalf("%s: shard %d has width %d, want %d or %d", name, i, width, q, q+1)
			}
			next += width
			total += width
		}
		if total != tc.seeds {
			t.Fatalf("%s: shards cover %d seeds, want %d", name, total, tc.seeds)
		}
		if next != tc.first+tc.seeds {
			t.Fatalf("%s: shards end at %d, want %d", name, next, tc.first+tc.seeds)
		}
		// Earlier shards take the remainder: widths are non-increasing.
		_, prev := ShardRange(tc.first, tc.seeds, 1, tc.of)
		for i := 2; i <= tc.of; i++ {
			_, w := ShardRange(tc.first, tc.seeds, i, tc.of)
			if w > prev {
				t.Fatalf("%s: shard %d wider (%d) than shard %d (%d)", name, i, w, i-1, prev)
			}
			prev = w
		}
	}
}

// TestShardRangeOutOfRangePanics: Validate guards specs; raw out-of-range
// arguments are a programming error and must not silently mis-partition.
func TestShardRangeOutOfRangePanics(t *testing.T) {
	cases := []struct{ index, of int }{{0, 4}, {5, 4}, {1, 0}, {1, 65}}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardRange(1, 64, %d, %d) did not panic", tc.index, tc.of)
				}
			}()
			ShardRange(1, 64, tc.index, tc.of)
		}()
	}
}

// TestShardCompileEquivalence pins the tentpole's compile contract: the
// concatenated job lists of every shard of a sweep are, seed for seed and
// label for label, the unsharded sweep's job list.
func TestShardCompileEquivalence(t *testing.T) {
	base := ChaosSpec(5, 13) // deliberately uneven: 13 seeds across 4 shards
	whole, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	const of = 4
	var got []Job
	for i := 1; i <= of; i++ {
		p, err := Compile(WithShard(base, i, of))
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, of, err)
		}
		for j, job := range p.Jobs {
			if job.Index != j {
				t.Fatalf("shard %d/%d job %d: index %d (each shard's jobs must index from 0)", i, of, j, job.Index)
			}
		}
		got = append(got, p.Jobs...)
	}
	if len(got) != len(whole.Jobs) {
		t.Fatalf("shards compiled %d jobs, unsharded sweep has %d", len(got), len(whole.Jobs))
	}
	for i := range got {
		if got[i].Seed != whole.Jobs[i].Seed || got[i].Label != whole.Jobs[i].Label {
			t.Fatalf("job %d: shard-concat (seed %d, %q) != unsharded (seed %d, %q)",
				i, got[i].Seed, got[i].Label, whole.Jobs[i].Seed, whole.Jobs[i].Label)
		}
	}
}

// TestResumeKeyShardIdentity pins the checkpoint-identity rules for shards:
// shards of one sweep share a base key but differ in suffix (no
// cross-resume), growing a sharded sweep moves the base (subranges shift),
// and the whole key round-trips through SplitShardKey.
func TestResumeKeyShardIdentity(t *testing.T) {
	s := ChaosSpec(1, 64)
	k1 := ResumeKey(WithShard(s, 1, 4))
	k2 := ResumeKey(WithShard(s, 2, 4))
	b1, i1, n1, ok1 := SplitShardKey(k1)
	b2, i2, n2, ok2 := SplitShardKey(k2)
	if !ok1 || !ok2 {
		t.Fatalf("shard keys did not parse as sharded: %q, %q", k1, k2)
	}
	if b1 != b2 {
		t.Fatalf("shards of one sweep have different bases: %q vs %q", b1, b2)
	}
	if k1 == k2 {
		t.Fatalf("distinct shards share key %q — a shard checkpoint could resume another shard", k1)
	}
	if i1 != 1 || n1 != 4 || i2 != 2 || n2 != 4 {
		t.Fatalf("shard identities did not round-trip: got %d/%d and %d/%d", i1, n1, i2, n2)
	}
	if !strings.HasSuffix(k1, "#1/4") {
		t.Fatalf("shard key %q should carry the #index/of suffix", k1)
	}

	// Growing the sweep must move the base: shard subranges are a function
	// of the total width.
	grown := ChaosSpec(1, 128)
	if gb, _, _, _ := SplitShardKey(ResumeKey(WithShard(grown, 1, 4))); gb == b1 {
		t.Fatal("growing faults.seeds kept the sharded base key — stale shard checkpoints would resume against shifted ranges")
	}
	// ...while the unsharded key deliberately ignores the extent (a finished
	// sweep is extendable in place).
	if ResumeKey(s) != ResumeKey(grown) {
		t.Fatal("unsharded resume key must not depend on faults.seeds")
	}
	// The unsharded key is not mistaken for a shard key.
	if _, _, _, sharded := SplitShardKey(ResumeKey(s)); sharded {
		t.Fatalf("unsharded key %q parsed as sharded", ResumeKey(s))
	}
	// Worker hints and descriptions stay cosmetic for shards too.
	tweaked := WithShard(s, 1, 4)
	tweaked.Limits.Workers = 7
	tweaked.Description = "edited"
	if ResumeKey(tweaked) != k1 {
		t.Fatal("workers/description moved a shard's resume key")
	}
	// The replay mode is NOT cosmetic: sampled and full sweeps judge seeds
	// differently, so their checkpoints must not cross-resume.
	sampled := ChaosSpec(1, 64)
	sampled.Faults = &Faults{FirstSeed: 1, Seeds: 64, Replay: "sample:4"}
	if ResumeKey(sampled) == ResumeKey(s) {
		t.Fatal("faults.replay did not move the resume key")
	}
}

// TestSplitShardKeyRejectsMalformed: only exact "#i/n" suffixes with
// 1 <= i <= n parse as shard identities; anything else is a plain key.
func TestSplitShardKeyRejectsMalformed(t *testing.T) {
	bad := []string{
		"abcd",          // no separator
		"abcd#",         // empty suffix
		"abcd#0/4",      // index below 1
		"abcd#5/4",      // index above of
		"abcd#2/4xyz",   // trailing junk
		"abcd#2.5/4",    // non-integer
		"abcd#-1/4",     // negative
		"abcd#2/4/6",    // extra field
		"abcd# 2/4",     // embedded space
		"abcd#02/4 #$%", // junk after a zero-padded near-miss
	}
	for _, key := range bad {
		if base, i, n, sharded := SplitShardKey(key); sharded {
			t.Errorf("SplitShardKey(%q) = (%q, %d, %d, true), want unsharded", key, base, i, n)
		} else if base != key {
			t.Errorf("SplitShardKey(%q) rewrote the base to %q", key, base)
		}
	}
	if base, i, n, sharded := SplitShardKey("abcd#12/12"); !sharded || base != "abcd" || i != 12 || n != 12 {
		t.Errorf("SplitShardKey(abcd#12/12) = (%q, %d, %d, %v)", base, i, n, sharded)
	}
}

// TestValidateShardAndReplay extends the malformed-spec table to the two
// new fields.
func TestValidateShardAndReplay(t *testing.T) {
	mix := func(mut func(*Spec)) Spec {
		s := ChaosSpec(1, 8)
		mut(&s)
		return s
	}
	reject := []struct {
		name string
		spec Spec
		path string
		msg  string
	}{
		{"shard on nbody", func() Spec { s := Fig1(); s.Shard = &Shard{Index: 1, Of: 2}; return s }(),
			"shard", "mix"},
		{"shard of zero", mix(func(s *Spec) { s.Shard = &Shard{Index: 1, Of: 0} }), "shard.of", ">= 1"},
		{"shard index zero", mix(func(s *Spec) { s.Shard = &Shard{Index: 0, Of: 4} }), "shard.index", "1..shard.of=4"},
		{"shard index past of", mix(func(s *Spec) { s.Shard = &Shard{Index: 5, Of: 4} }), "shard.index", "1..shard.of=4"},
		{"more shards than seeds", mix(func(s *Spec) { s.Shard = &Shard{Index: 1, Of: 9} }), "shard.of", "more shards than seeds"},
		{"replay gibberish", mix(func(s *Spec) { s.Faults.Replay = "sometimes" }), "faults.replay", "unknown replay mode"},
		{"replay sample zero", mix(func(s *Spec) { s.Faults.Replay = "sample:0" }), "faults.replay", "sample period"},
		{"replay sample junk", mix(func(s *Spec) { s.Faults.Replay = "sample:x" }), "faults.replay", "sample period"},
	}
	for _, tc := range reject {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.spec)
			if err == nil {
				t.Fatalf("spec accepted: %+v", tc.spec)
			}
			verr, ok := err.(ValidationError)
			if !ok {
				t.Fatalf("not a ValidationError: %T %v", err, err)
			}
			found := false
			for _, fe := range verr {
				if fe.Path == tc.path && strings.Contains(fe.Msg, tc.msg) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error at path %q containing %q; got: %v", tc.path, tc.msg, err)
			}
		})
	}
	accept := []Spec{
		mix(func(s *Spec) { s.Shard = &Shard{Index: 1, Of: 8} }),
		mix(func(s *Spec) { s.Shard = &Shard{Index: 8, Of: 8} }),
		mix(func(s *Spec) { s.Faults.Replay = ReplayFull }),
		mix(func(s *Spec) { s.Faults.Replay = ReplayOff }),
		mix(func(s *Spec) { s.Faults.Replay = "sample:3" }),
	}
	for _, s := range accept {
		if err := Validate(s); err != nil {
			t.Errorf("valid spec rejected: %v", err)
		}
	}
}

// TestParseReplayPeriods pins the mode → period mapping the runner and the
// shard children both rely on (the replay decision must be a pure function
// of the seed, so every process must agree on the period).
func TestParseReplayPeriods(t *testing.T) {
	cases := []struct {
		mode  string
		every int64
	}{
		{"", 1}, {ReplayFull, 1}, {ReplayOff, 0}, {"sample:1", 1}, {"sample:4", 4}, {"sample:1000", 1000},
	}
	for _, tc := range cases {
		every, err := ParseReplay(tc.mode)
		if err != nil || every != tc.every {
			t.Errorf("ParseReplay(%q) = (%d, %v), want (%d, nil)", tc.mode, every, err, tc.every)
		}
	}
	f := &Faults{Replay: "sample:4"}
	if f.EffReplayEvery() != 4 {
		t.Errorf("EffReplayEvery(sample:4) = %d", f.EffReplayEvery())
	}
	var nilFaults *Faults
	if nilFaults.EffReplayEvery() != 1 {
		t.Error("nil Faults should default to full replay")
	}
}
