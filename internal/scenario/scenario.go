// Package scenario is the declarative experiment layer: a Spec describes
// what to simulate — workload, machine shape, scheduler binding, fault
// schedule, run limits — as plain data (Go struct or JSON), and Compile
// lowers a validated Spec into an ordered list of fleet jobs.
//
// The paper's evaluation is a fixed set of figures and tables; this layer
// turns each of them — and any scenario a user can describe — into a config
// file instead of a bespoke Go program. The experiment harness
// (internal/exp) interprets compiled programs on warm run contexts with
// streaming aggregation, checkpoint/resume, and deterministic
// width-independent fingerprints; the canonical batteries (Figure 1/2,
// Table 5, the ablation grid, the chaos sweep) are themselves built-in
// specs compiled through this exact path, so the spec pipeline is pinned by
// the same fingerprint and golden-trace oracles as the hand-written
// batteries it replaced.
//
// The package is pure data and policy: it imports no simulation layer, so
// specs can be validated, hashed, and compiled anywhere (tests, tools, a
// future submission service) without dragging the engine along.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Workload kinds.
const (
	// KindNbody is the paper's N-body application (§5.3): Figure 1/2,
	// Table 5, and the allocator ablation all run it.
	KindNbody = "nbody"
	// KindBursty is the hysteresis-ablation workload: a bursty
	// compute/IO application sharing the machine with a processor-hungry
	// competitor (§4.2).
	KindBursty = "bursty"
	// KindMix is the chaos battery's randomized mixed workload on the
	// scheduler-activation kernel, fault-injected and audited; jobs are
	// seeds, not system×axis cells.
	KindMix = "mix"
)

// Scheduler bindings (Binding.Systems). These name the three
// application-level systems of §5.3.
const (
	SysTopaz  = "topaz"   // native Topaz kernel threads
	SysOrigFT = "orig-ft" // original FastThreads on kernel threads
	SysNewFT  = "new-ft"  // new FastThreads on scheduler activations
)

// Cost profiles (Machine.Costs).
const (
	CostsDefault = "default" // calibrated prototype cost table
	CostsTuned   = "tuned"   // §5.2's projected tuned-upcall profile
)

// Allocation policies (Binding.Policy).
const (
	PolicySpace = "space" // §4.1 space-sharing allocator (the default)
	PolicyFCFS  = "fcfs"  // first-come-first-served ablation
)

// Engines (Binding.Engine).
const (
	EngineSeq = "seq" // reference sequential engine
	EnginePar = "par" // conservative PDES engine (byte-identical results)
)

// Chaos ablations (Faults.Ablate): deliberately broken kernels the auditor
// must catch.
const (
	AblateNoGrant   = "nogrant"
	AblateDropEvent = "dropevent"
)

// Replay modes (Faults.Replay).
const (
	ReplayFull = "full" // every seed re-run and fingerprint-compared (default)
	ReplayOff  = "off"  // no replay check
	// "sample:N" replays only seeds divisible by N; see ParseReplay.
)

// Spec is one declarative scenario. The zero value of every optional field
// means "the canonical default"; Validate reports structural errors with
// the offending field path, and Compile lowers a valid Spec into jobs.
type Spec struct {
	// Name identifies the scenario (checkpoint keys, -list, reports).
	Name string `json:"name"`
	// Description is the one-line summary printed by saexp -list.
	Description string `json:"description,omitempty"`

	Workload Workload `json:"workload"`
	Machine  Machine  `json:"machine"`
	Binding  Binding  `json:"binding"`
	// Faults is the fault schedule; required for KindMix, absent otherwise
	// (the chaos injector instruments the scheduler-activation mixed
	// workload only).
	Faults *Faults `json:"faults,omitempty"`
	Limits Limits  `json:"limits,omitempty"`
	// Shard, when non-nil, selects one contiguous slice of a mix sweep's
	// seed range (shard Index of Of); Compile lowers only that slice, and
	// the shard identity folds into ResumeKey so shard checkpoints cannot
	// cross-resume. Shards of the same sweep merge with exp.MergeShards.
	Shard *Shard `json:"shard,omitempty"`
}

// Shard identifies one slice of a sharded mix sweep: shards partition
// faults.seeds into Of contiguous subranges (sizes differing by at most
// one, earlier shards taking the remainder), and shard Index runs the
// Index-th of them. Valid only for KindMix.
type Shard struct {
	// Index is the 1-based shard number, 1..Of.
	Index int `json:"index"`
	// Of is the total shard count the sweep is split into.
	Of int `json:"of"`
}

// Workload describes what the simulated machine runs.
type Workload struct {
	// Kind selects the application: nbody, bursty, or mix.
	Kind string `json:"kind"`
	// Copies is the multiprogramming level for nbody: that many copies of
	// the application share one machine (Table 5 runs 2). 0 means 1.
	Copies int `json:"copies,omitempty"`
	// MemoryPct is the nbody memory axis: one job per value, each giving
	// the application that percentage of its working set in memory
	// (Figure 2's x-axis). Empty means {100}.
	MemoryPct []float64 `json:"memory_pct,omitempty"`
	// Baseline, for nbody, additionally measures the sequential
	// implementation so results can be reported as speedups (Figure 1,
	// Table 5).
	Baseline bool `json:"baseline,omitempty"`
	// Nbody overrides the calibrated problem shape (smoke tests, custom
	// scenarios). Nil keeps the paper's configuration.
	Nbody *NbodyOverrides `json:"nbody,omitempty"`
}

// NbodyOverrides overrides the calibrated N-body problem shape; zero fields
// keep the default.
type NbodyOverrides struct {
	N     int   `json:"n,omitempty"`     // bodies
	Steps int   `json:"steps,omitempty"` // timesteps
	Seed  int64 `json:"seed,omitempty"`  // body-placement seed
}

// Machine describes the simulated hardware.
type Machine struct {
	// CPUs is the processor count, 1..64. For KindMix, 0 (the canonical
	// sweep) draws 2..5 per seed from the seed's own RNG.
	CPUs int `json:"cpus"`
	// Costs selects the primitive cost table: default or tuned.
	// Empty means default.
	Costs string `json:"costs,omitempty"`
	// DiskLatencyMs overrides the disk service latency (the paper's 50 ms
	// cache-miss block). 0 keeps the cost table's value.
	DiskLatencyMs float64 `json:"disk_latency_ms,omitempty"`
}

// Binding describes how threads bind to processors: which thread systems
// run, at what parallelism, on which simulation engine.
type Binding struct {
	// Systems lists the thread systems to run, one series per entry:
	// topaz, orig-ft, new-ft. Required for nbody and bursty; must be empty
	// for mix (the chaos workload is defined on scheduler activations).
	Systems []string `json:"systems,omitempty"`
	// Procs is the application-parallelism axis: one job per value per
	// system (Figure 1's x-axis). Empty means {machine.cpus}.
	Procs []int `json:"procs,omitempty"`
	// Engine selects the per-run simulation engine: seq or par. Results
	// are byte-identical either way; empty inherits the harness default
	// (saexp -engine).
	Engine string `json:"engine,omitempty"`
	// LPs is the logical-process count with Engine == par. 0 means 2.
	LPs int `json:"lps,omitempty"`
	// Policy is the processor-allocation-policy axis for new-ft: space
	// and/or fcfs (§4.1 ablation). Empty means {space}.
	Policy []string `json:"policy,omitempty"`
	// HysteresisUs is the idle-hysteresis axis for the bursty workload
	// (§4.2 ablation), in microseconds; one job per value. Required for
	// bursty, absent otherwise.
	HysteresisUs []float64 `json:"hysteresis_us,omitempty"`
}

// Faults is the chaos schedule for KindMix: which seeds sweep, how long
// each storm rages, and whether a deliberately broken kernel runs under
// the auditor.
type Faults struct {
	// FirstSeed is the first seed of the sweep (seeds are
	// FirstSeed..FirstSeed+Seeds-1).
	FirstSeed int64 `json:"first_seed"`
	// Seeds is the sweep width; each seed is one job.
	Seeds int64 `json:"seeds"`
	// StormMs is the storm phase length in virtual milliseconds; 0 means
	// the canonical 20000.
	StormMs int `json:"storm_ms,omitempty"`
	// DrainMs is the post-storm drain in virtual milliseconds; 0 means the
	// canonical 5000.
	DrainMs int `json:"drain_ms,omitempty"`
	// Ablate runs each seed against a deliberately broken kernel (nogrant
	// or dropevent) — the auditor-has-teeth demonstration. Ablated runs
	// execute once (no replay check) and are expected to fail.
	Ablate string `json:"ablate,omitempty"`
	// Replay controls the replay-divergence check (each seed re-run and
	// its fingerprint compared): "full" (or empty — the canonical default)
	// replays every seed, "sample:N" replays only seeds divisible by N,
	// "off" replays none. The fleet fingerprint folds only the first run,
	// so sampling moves no fingerprint — only how many seeds would catch a
	// nondeterminism leak. The replay decision is a pure function of the
	// seed, so shards and resumed sweeps sample identically.
	Replay string `json:"replay,omitempty"`
}

// Limits bounds a run.
type Limits struct {
	// RunLimitMs bounds any single application run in virtual
	// milliseconds; 0 means the canonical 30 minutes.
	RunLimitMs int64 `json:"run_limit_ms,omitempty"`
	// Workers is the fleet pool width; 0 means auto (one per host CPU,
	// divided by the per-run goroutine count under the PDES engine).
	// Results are byte-identical at any width; this only tunes wall-clock.
	Workers int `json:"workers,omitempty"`
}

// --- effective-value helpers (defaults without mutating the Spec, so a
// parsed spec round-trips byte-identically) ---

// EffCopies returns the effective multiprogramming level.
func (w Workload) EffCopies() int {
	if w.Copies == 0 {
		return 1
	}
	return w.Copies
}

// EffMemoryPct returns the effective memory axis.
func (w Workload) EffMemoryPct() []float64 {
	if len(w.MemoryPct) == 0 {
		return []float64{100}
	}
	return w.MemoryPct
}

// EffCosts returns the effective cost profile name.
func (m Machine) EffCosts() string {
	if m.Costs == "" {
		return CostsDefault
	}
	return m.Costs
}

// EffProcs returns the effective parallelism axis for a machine with cpus
// processors.
func (b Binding) EffProcs(cpus int) []int {
	if len(b.Procs) == 0 {
		return []int{cpus}
	}
	return b.Procs
}

// EffPolicy returns the effective allocation-policy axis.
func (b Binding) EffPolicy() []string {
	if len(b.Policy) == 0 {
		return []string{PolicySpace}
	}
	return b.Policy
}

// EffLPs returns the effective LP count when Engine == par.
func (b Binding) EffLPs() int {
	if b.LPs == 0 {
		return 2
	}
	return b.LPs
}

// ParseReplay parses a Faults.Replay value into the replay period: 1 means
// every seed replays (full — also the default for the empty string), 0
// means none (off), and N > 1 means only seeds divisible by N replay
// (sample:N). Unknown values are an error (Validate reports them by path).
func ParseReplay(mode string) (every int64, err error) {
	switch mode {
	case "", ReplayFull:
		return 1, nil
	case ReplayOff:
		return 0, nil
	}
	if rest, ok := strings.CutPrefix(mode, "sample:"); ok {
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || n < 1 {
			return 0, fmt.Errorf("bad sample period %q (want sample:N with N >= 1)", rest)
		}
		return n, nil
	}
	return 0, fmt.Errorf("unknown replay mode %q (want full, off, or sample:N)", mode)
}

// EffReplayEvery returns the effective replay period (see ParseReplay); an
// invalid mode falls back to full — Validate rejects it before a run.
func (f *Faults) EffReplayEvery() int64 {
	if f == nil {
		return 1
	}
	every, err := ParseReplay(f.Replay)
	if err != nil {
		return 1
	}
	return every
}
