package scenario

import (
	"fmt"
	"strings"
)

// FieldError is one validation failure, carrying the JSON path of the
// offending field ("machine.cpus") so a spec author can fix the file
// without reading the schema source.
type FieldError struct {
	Path string // JSON field path, e.g. "binding.systems[1]"
	Msg  string
}

func (e FieldError) Error() string { return e.Path + ": " + e.Msg }

// ValidationError aggregates every FieldError found in one pass, so a
// malformed spec reports all its problems at once.
type ValidationError []FieldError

func (v ValidationError) Error() string {
	lines := make([]string, len(v))
	for i, e := range v {
		lines[i] = e.Error()
	}
	return "invalid scenario: " + strings.Join(lines, "; ")
}

// MaxCPUs bounds the simulated machine size.
const MaxCPUs = 64

// MaxSeeds bounds one compiled sweep's width (the fleet streams results, so
// this is a sanity rail against typos, not a memory limit).
const MaxSeeds = 1 << 24

// Validate checks a Spec for structural errors and returns nil or a
// ValidationError listing every offending field by path.
func Validate(s Spec) error {
	var errs ValidationError
	bad := func(path, format string, args ...any) {
		errs = append(errs, FieldError{Path: path, Msg: fmt.Sprintf(format, args...)})
	}

	if s.Name == "" {
		bad("name", "required")
	}

	kind := s.Workload.Kind
	switch kind {
	case KindNbody, KindBursty, KindMix:
	case "":
		bad("workload.kind", "required (nbody, bursty, or mix)")
	default:
		bad("workload.kind", "unknown kind %q (want nbody, bursty, or mix)", kind)
	}

	// Workload.
	if c := s.Workload.Copies; c != 0 {
		if kind != KindNbody {
			bad("workload.copies", "only the nbody workload multiprograms copies")
		} else if c < 1 || c > 8 {
			bad("workload.copies", "must be 1..8 (got %d)", c)
		}
	}
	for i, pct := range s.Workload.MemoryPct {
		if kind != KindNbody {
			bad("workload.memory_pct", "only the nbody workload has a memory axis")
			break
		}
		if pct <= 0 || pct > 100 {
			bad(fmt.Sprintf("workload.memory_pct[%d]", i), "must be in (0, 100] (got %g)", pct)
		}
	}
	if s.Workload.Baseline && kind != KindNbody {
		bad("workload.baseline", "only the nbody workload has a sequential baseline")
	}
	if nb := s.Workload.Nbody; nb != nil {
		if kind != KindNbody {
			bad("workload.nbody", "only valid for the nbody workload")
		}
		if nb.N < 0 {
			bad("workload.nbody.n", "must be >= 0 (got %d)", nb.N)
		}
		if nb.Steps < 0 {
			bad("workload.nbody.steps", "must be >= 0 (got %d)", nb.Steps)
		}
	}

	// Machine.
	if cpus := s.Machine.CPUs; kind == KindMix {
		if cpus < 0 || cpus > MaxCPUs {
			bad("machine.cpus", "must be 0 (seeded 2..5) or 1..%d (got %d)", MaxCPUs, cpus)
		}
	} else if cpus < 1 || cpus > MaxCPUs {
		bad("machine.cpus", "must be 1..%d (got %d)", MaxCPUs, cpus)
	}
	switch s.Machine.Costs {
	case "", CostsDefault, CostsTuned:
	default:
		bad("machine.costs", "unknown profile %q (want default or tuned)", s.Machine.Costs)
	}
	if d := s.Machine.DiskLatencyMs; d < 0 {
		bad("machine.disk_latency_ms", "must be >= 0 (got %g)", d)
	} else if d != 0 && kind == KindMix {
		bad("machine.disk_latency_ms", "the mix workload keeps the calibrated disk (storms jitter it)")
	}

	// Binding.
	switch {
	case kind == KindMix:
		if len(s.Binding.Systems) != 0 {
			bad("binding.systems", "the mix workload is defined on scheduler activations; leave empty")
		}
	case len(s.Binding.Systems) == 0:
		if kind == KindNbody || kind == KindBursty {
			bad("binding.systems", "required: list at least one of topaz, orig-ft, new-ft")
		}
	default:
		for i, sys := range s.Binding.Systems {
			switch sys {
			case SysTopaz, SysOrigFT, SysNewFT:
				if kind == KindBursty && sys != SysNewFT {
					bad(fmt.Sprintf("binding.systems[%d]", i), "the bursty workload runs on new-ft only")
				}
			default:
				bad(fmt.Sprintf("binding.systems[%d]", i), "unknown system %q (want topaz, orig-ft, or new-ft)", sys)
			}
		}
	}
	for i, p := range s.Binding.Procs {
		if kind != KindNbody {
			bad("binding.procs", "only the nbody workload has a parallelism axis")
			break
		}
		if p < 1 || (s.Machine.CPUs >= 1 && p > s.Machine.CPUs) {
			bad(fmt.Sprintf("binding.procs[%d]", i), "must be 1..machine.cpus=%d (got %d)", s.Machine.CPUs, p)
		}
	}
	switch s.Binding.Engine {
	case "", EngineSeq, EnginePar:
	default:
		bad("binding.engine", "unknown engine %q (want seq or par)", s.Binding.Engine)
	}
	if lps := s.Binding.LPs; lps != 0 {
		if s.Binding.Engine != EnginePar {
			bad("binding.lps", "only valid with binding.engine: par")
		} else if lps < 1 || lps > 16 {
			bad("binding.lps", "must be 1..16 (got %d)", lps)
		}
	}
	if len(s.Binding.Policy) > 0 && (kind != KindNbody || !onlyNewFT(s.Binding.Systems)) {
		bad("binding.policy", "an allocation-policy axis needs the nbody workload on new-ft only")
	}
	seenPolicy := make(map[string]bool, len(s.Binding.Policy))
	for i, pol := range s.Binding.Policy {
		switch pol {
		case PolicySpace, PolicyFCFS:
		default:
			bad(fmt.Sprintf("binding.policy[%d]", i), "unknown policy %q (want space or fcfs)", pol)
		}
		if seenPolicy[pol] {
			bad(fmt.Sprintf("binding.policy[%d]", i), "duplicate policy %q (at most one of each)", pol)
		}
		seenPolicy[pol] = true
	}
	switch {
	case kind == KindBursty && len(s.Binding.HysteresisUs) == 0:
		bad("binding.hysteresis_us", "required for the bursty workload: list idle-spin settings in µs")
	case kind != KindBursty && len(s.Binding.HysteresisUs) != 0:
		bad("binding.hysteresis_us", "only the bursty workload sweeps hysteresis")
	default:
		for i, h := range s.Binding.HysteresisUs {
			if h <= 0 {
				bad(fmt.Sprintf("binding.hysteresis_us[%d]", i), "must be > 0 µs (got %g)", h)
			}
		}
	}

	// Faults.
	switch {
	case kind == KindMix && s.Faults == nil:
		bad("faults", "required for the mix workload (first_seed and seeds)")
	case kind != KindMix && s.Faults != nil:
		bad("faults", "only the mix workload is fault-injected")
	case s.Faults != nil:
		f := s.Faults
		if f.FirstSeed < 0 {
			bad("faults.first_seed", "must be >= 0 (got %d)", f.FirstSeed)
		}
		if f.Seeds < 1 || f.Seeds > MaxSeeds {
			bad("faults.seeds", "must be 1..%d (got %d)", MaxSeeds, f.Seeds)
		}
		if f.StormMs < 0 {
			bad("faults.storm_ms", "must be >= 0 (got %d)", f.StormMs)
		}
		if f.DrainMs < 0 {
			bad("faults.drain_ms", "must be >= 0 (got %d)", f.DrainMs)
		}
		switch f.Ablate {
		case "", AblateNoGrant, AblateDropEvent:
		default:
			bad("faults.ablate", "unknown ablation %q (want nogrant or dropevent)", f.Ablate)
		}
		if _, err := ParseReplay(f.Replay); err != nil {
			bad("faults.replay", "%v", err)
		}
	}

	// Shard.
	if sh := s.Shard; sh != nil {
		switch {
		case kind != KindMix:
			bad("shard", "only mix sweeps shard (contiguous seed subranges)")
		case sh.Of < 1:
			bad("shard.of", "must be >= 1 (got %d)", sh.Of)
		case sh.Index < 1 || sh.Index > sh.Of:
			bad("shard.index", "must be 1..shard.of=%d (got %d)", sh.Of, sh.Index)
		case s.Faults != nil && s.Faults.Seeds >= 1 && int64(sh.Of) > s.Faults.Seeds:
			bad("shard.of", "more shards than seeds (%d > %d)", sh.Of, s.Faults.Seeds)
		}
	}

	// Limits.
	if s.Limits.RunLimitMs < 0 {
		bad("limits.run_limit_ms", "must be >= 0 (got %d)", s.Limits.RunLimitMs)
	}
	if w := s.Limits.Workers; w < 0 || w > 1024 {
		bad("limits.workers", "must be 0 (auto) or 1..1024 (got %d)", w)
	}

	if len(errs) == 0 {
		return nil
	}
	return errs
}

// onlyNewFT reports whether every listed system is new-ft.
func onlyNewFT(systems []string) bool {
	for _, s := range systems {
		if s != SysNewFT {
			return false
		}
	}
	return len(systems) > 0
}
