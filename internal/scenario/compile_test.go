package scenario

import "testing"

// TestCompileFig1Order pins the lowering order the pinned batteries depend
// on: systems outer, procs inner — job i runs Systems[i/6] at P = i%6+1.
func TestCompileFig1Order(t *testing.T) {
	p, err := Compile(Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Jobs) != 18 {
		t.Fatalf("fig1: want 18 jobs, got %d", len(p.Jobs))
	}
	systems := allSystems()
	for i, j := range p.Jobs {
		if j.Index != i {
			t.Fatalf("job %d: index %d", i, j.Index)
		}
		if want := systems[i/6]; j.System != want {
			t.Errorf("job %d: system %q, want %q", i, j.System, want)
		}
		if want := i%6 + 1; j.Procs != want {
			t.Errorf("job %d: procs %d, want %d", i, j.Procs, want)
		}
		if j.Copies != 1 || j.MemPct != 100 || j.Policy != PolicySpace {
			t.Errorf("job %d: defaults not applied: %+v", i, j)
		}
	}
}

// TestCompileFig2Order: systems outer, memory axis inner.
func TestCompileFig2Order(t *testing.T) {
	p, err := Compile(Fig2())
	if err != nil {
		t.Fatal(err)
	}
	mems := memoryAxis()
	if len(p.Jobs) != 3*len(mems) {
		t.Fatalf("fig2: want %d jobs, got %d", 3*len(mems), len(p.Jobs))
	}
	for i, j := range p.Jobs {
		if want := allSystems()[i/len(mems)]; j.System != want {
			t.Errorf("job %d: system %q, want %q", i, j.System, want)
		}
		if want := mems[i%len(mems)]; j.MemPct != want {
			t.Errorf("job %d: mem %g, want %g", i, j.MemPct, want)
		}
		if j.Procs != 6 {
			t.Errorf("job %d: procs %d, want machine.cpus=6", i, j.Procs)
		}
	}
}

// TestCompileGrids pins job counts and axis values for the remaining
// canonical app scenarios.
func TestCompileGrids(t *testing.T) {
	t5, _ := Compile(Table5())
	if len(t5.Jobs) != 3 || t5.Jobs[0].Copies != 2 {
		t.Fatalf("table5: want 3 jobs of 2 copies, got %+v", t5.Jobs)
	}
	al, _ := Compile(Alloc())
	if len(al.Jobs) != 2 || al.Jobs[0].Policy != PolicySpace || al.Jobs[1].Policy != PolicyFCFS {
		t.Fatalf("alloc: want [space fcfs], got %+v", al.Jobs)
	}
	hy, _ := Compile(Hysteresis())
	if len(hy.Jobs) != 2 || hy.Jobs[0].HysteresisUs != 15000 || hy.Jobs[1].HysteresisUs != 5 {
		t.Fatalf("hysteresis: want [15000 5] µs, got %+v", hy.Jobs)
	}
	ft, _ := Compile(Fig2Tuned())
	if len(ft.Jobs) != len(memoryAxis()) || ft.Jobs[0].System != SysNewFT {
		t.Fatalf("fig2tuned: want %d new-ft jobs, got %+v", len(memoryAxis()), ft.Jobs)
	}
}

// TestCompileChaosOrder: mix lowers to one job per seed in seed order.
func TestCompileChaosOrder(t *testing.T) {
	p, err := Compile(ChaosSpec(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Chaos() {
		t.Fatal("chaos program not marked chaos")
	}
	if len(p.Jobs) != 4 {
		t.Fatalf("want 4 jobs, got %d", len(p.Jobs))
	}
	for i, j := range p.Jobs {
		if want := int64(5 + i); j.Seed != want {
			t.Errorf("job %d: seed %d, want %d", i, j.Seed, want)
		}
	}
}

// TestCompileRejectsInvalid: Compile refuses what Validate refuses.
func TestCompileRejectsInvalid(t *testing.T) {
	s := Fig1()
	s.Machine.CPUs = 0
	if _, err := Compile(s); err == nil {
		t.Fatal("invalid spec compiled")
	}
}

// TestHashStability: the hash distinguishes specs and ignores nothing.
func TestHashStability(t *testing.T) {
	if Hash(Fig1()) != Hash(Fig1()) {
		t.Fatal("hash not deterministic")
	}
	if Hash(Fig1()) == Hash(Fig2()) {
		t.Fatal("distinct specs hash equal")
	}
}
