package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Parse decodes one Spec from JSON. Decoding is strict — an unknown field
// is an error, because a typo'd axis name ("proc" for "procs") that decoded
// silently would run a very different experiment than the author wrote.
// The returned spec is parsed but not yet validated; call Validate (or
// Compile, which validates) before running it.
func Parse(raw []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", humanizeJSONErr(err))
	}
	// Trailing garbage after the spec object is almost always a pasted-in
	// second document; refuse rather than silently ignore it.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario: trailing data after the spec object")
	}
	return s, nil
}

// Read decodes one Spec from r (Parse on the full contents).
func Read(r io.Reader) (Spec, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return Parse(raw)
}

// LoadFile decodes one Spec from a JSON file.
func LoadFile(path string) (Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(raw)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Marshal renders a Spec as indented JSON (the canonical file form; Parse
// round-trips it to an equal Spec).
func Marshal(s Spec) []byte {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Spec contains only marshalable kinds; this is unreachable short
		// of memory corruption.
		panic("scenario: marshal: " + err.Error())
	}
	return append(raw, '\n')
}

// humanizeJSONErr rewrites encoding/json's decode errors into the same
// field-path style Validate uses, so "json: unknown field" and type
// mismatches read like validation failures.
func humanizeJSONErr(err error) error {
	if te, ok := err.(*json.UnmarshalTypeError); ok {
		path := te.Field
		if path == "" {
			path = "(document)"
		}
		return fmt.Errorf("%s: want %s, got %s", path, te.Type, te.Value)
	}
	if msg := err.Error(); strings.HasPrefix(msg, "json: unknown field ") {
		return fmt.Errorf("unknown field %s (strict parsing; check spelling against the spec schema)",
			strings.TrimPrefix(msg, "json: unknown field "))
	}
	return err
}
