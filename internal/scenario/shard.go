package scenario

import (
	"fmt"
	"strings"
)

// Sharding partitions a mix sweep's seed range into contiguous subranges so
// independent processes can each run one slice against its own checkpoint
// and a merge step can fold the per-shard aggregates back into one report.
// The partition is a pure function of (first_seed, seeds, of), so every
// process — and every retry after a crash — computes the same slices.

// ShardRange returns the seed subrange of shard index (1-based) of n over
// the sweep first..first+seeds-1: shards are contiguous, cover the range
// exactly, and differ in width by at most one (earlier shards take the
// remainder). n must be 1..seeds and index 1..n — Validate enforces this
// for specs; out-of-range arguments panic.
func ShardRange(first, seeds int64, index, of int) (shardFirst, shardSeeds int64) {
	if of < 1 || int64(of) > seeds || index < 1 || index > of {
		panic(fmt.Sprintf("scenario: shard %d/%d of %d seeds out of range", index, of, seeds))
	}
	q, r := seeds/int64(of), seeds%int64(of)
	i := int64(index - 1)
	shardFirst = first + i*q + min(i, r)
	shardSeeds = q
	if i < r {
		shardSeeds++
	}
	return shardFirst, shardSeeds
}

// WithShard returns a copy of the spec restricted to shard index of n.
func WithShard(s Spec, index, of int) Spec {
	s.Shard = &Shard{Index: index, Of: of}
	return s
}

// shardKeySep separates the base resume key from the shard suffix in a
// sharded spec's ResumeKey ("<base>#<index>/<of>").
const shardKeySep = "#"

// SplitShardKey splits a resume key into its base key and shard identity.
// Unsharded keys return (key, 0, 0, false).
func SplitShardKey(key string) (base string, index, of int, sharded bool) {
	var i, n int
	if idx := strings.IndexByte(key, shardKeySep[0]); idx >= 0 {
		if _, err := fmt.Sscanf(key[idx:], "#%d/%d", &i, &n); err == nil &&
			i >= 1 && n >= i && key[idx:] == fmt.Sprintf("#%d/%d", i, n) {
			return key[:idx], i, n, true
		}
	}
	return key, 0, 0, false
}
