package scenario

import (
	"encoding/json"
	"fmt"
)

// Hash returns the spec's identity as a 64-bit FNV-1a over its canonical
// JSON encoding. It covers every field — including presentation-only ones
// like Description — so any textual change moves it (struct field order
// fixes the encoding, so the hash is stable across processes and
// platforms). ResumeKey is the compile-relevant identity.
func Hash(s Spec) uint64 {
	raw, err := json.Marshal(s)
	if err != nil {
		panic("scenario: hash: " + err.Error())
	}
	return fnv64(raw)
}

// ResumeKey returns the checkpoint identity of a spec: the hash with the
// extendable sweep extent, the wall-clock-only worker hint, and the
// cosmetic description zeroed out. A checkpoint written under one key may
// only resume a spec with the same key; growing faults.seeds (extending a
// finished sweep), changing limits.workers, or editing the description
// keeps the key, while any change that would alter per-job results —
// workload, machine, binding, seed origin, storm shape — moves it, and the
// runner rejects the stale checkpoint instead of silently merging
// incompatible results.
//
// A sharded spec's key is "<base>#<index>/<of>" where base is the hash
// with the shard cleared — shards of one sweep share a base (so a merge
// can verify they belong together) but no shard checkpoint can resume
// another shard. Unlike the unsharded key, the base of a sharded spec
// keeps faults.seeds: shard subranges are a function of the total width,
// so growing a sharded sweep must invalidate its shard checkpoints rather
// than resume them against shifted ranges.
func ResumeKey(s Spec) string {
	shard := s.Shard
	s.Shard = nil
	if s.Faults != nil {
		f := *s.Faults
		if shard == nil {
			f.Seeds = 0
		}
		s.Faults = &f
	}
	s.Limits.Workers = 0
	s.Description = ""
	key := fmt.Sprintf("%016x", Hash(s))
	if shard != nil {
		key += fmt.Sprintf("%s%d/%d", shardKeySep, shard.Index, shard.Of)
	}
	return key
}

// fnv64 is FNV-1a over raw.
func fnv64(raw []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range raw {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
