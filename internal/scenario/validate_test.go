package scenario

import (
	"strings"
	"testing"
)

// TestValidateMalformed drives Validate over malformed specs and asserts the
// error names the offending field by JSON path.
func TestValidateMalformed(t *testing.T) {
	nb := func(mut func(*Spec)) Spec {
		s := Fig1()
		mut(&s)
		return s
	}
	mix := func(mut func(*Spec)) Spec {
		s := ChaosSpec(1, 8)
		mut(&s)
		return s
	}

	cases := []struct {
		name string
		spec Spec
		path string // must appear in the error
		msg  string // substring of the message, "" = any
	}{
		{"missing name", nb(func(s *Spec) { s.Name = "" }), "name", "required"},
		{"missing kind", nb(func(s *Spec) { s.Workload.Kind = "" }), "workload.kind", "required"},
		{"bad kind", nb(func(s *Spec) { s.Workload.Kind = "qsort" }), "workload.kind", `"qsort"`},
		{"copies out of range", nb(func(s *Spec) { s.Workload.Copies = 9 }), "workload.copies", "1..8"},
		{"copies on bursty", Spec{Name: "x", Workload: Workload{Kind: KindBursty, Copies: 2},
			Machine: Machine{CPUs: 2}, Binding: Binding{Systems: []string{SysNewFT}, HysteresisUs: []float64{5}}},
			"workload.copies", "nbody"},
		{"memory pct range", nb(func(s *Spec) { s.Workload.MemoryPct = []float64{100, 0} }),
			"workload.memory_pct[1]", "(0, 100]"},
		{"negative nbody n", nb(func(s *Spec) { s.Workload.Nbody = &NbodyOverrides{N: -1} }),
			"workload.nbody.n", ">= 0"},
		{"cpus zero", nb(func(s *Spec) { s.Machine.CPUs = 0 }), "machine.cpus", "must be 1..64 (got 0)"},
		{"cpus huge", nb(func(s *Spec) { s.Machine.CPUs = 65 }), "machine.cpus", "must be 1..64 (got 65)"},
		{"mix cpus huge", mix(func(s *Spec) { s.Machine.CPUs = 100 }), "machine.cpus", "0 (seeded 2..5) or 1..64"},
		{"bad costs", nb(func(s *Spec) { s.Machine.Costs = "free" }), "machine.costs", `"free"`},
		{"negative disk", nb(func(s *Spec) { s.Machine.DiskLatencyMs = -1 }), "machine.disk_latency_ms", ">= 0"},
		{"mix disk override", mix(func(s *Spec) { s.Machine.DiskLatencyMs = 5 }), "machine.disk_latency_ms", "mix"},
		{"no systems", nb(func(s *Spec) { s.Binding.Systems = nil }), "binding.systems", "required"},
		{"bad system", nb(func(s *Spec) { s.Binding.Systems = []string{SysTopaz, "linux"} }),
			"binding.systems[1]", `"linux"`},
		{"mix with systems", mix(func(s *Spec) { s.Binding.Systems = []string{SysNewFT} }),
			"binding.systems", "leave empty"},
		{"procs out of range", nb(func(s *Spec) { s.Binding.Procs = []int{1, 7} }),
			"binding.procs[1]", "1..machine.cpus=6"},
		{"bad engine", nb(func(s *Spec) { s.Binding.Engine = "warp" }), "binding.engine", `"warp"`},
		{"lps without par", nb(func(s *Spec) { s.Binding.LPs = 4 }), "binding.lps", "par"},
		{"lps out of range", nb(func(s *Spec) { s.Binding.Engine = EnginePar; s.Binding.LPs = 99 }),
			"binding.lps", "1..16"},
		{"bad policy", nb(func(s *Spec) {
			s.Binding.Systems = []string{SysNewFT}
			s.Binding.Policy = []string{"lottery"}
		}), "binding.policy[0]", `"lottery"`},
		{"policy needs new-ft only", nb(func(s *Spec) { s.Binding.Policy = []string{PolicyFCFS} }),
			"binding.policy", "new-ft only"},
		{"duplicate space policy", nb(func(s *Spec) {
			s.Binding.Systems = []string{SysNewFT}
			s.Binding.Policy = []string{PolicySpace, PolicySpace}
		}), "binding.policy[1]", "duplicate"},
		{"duplicate fcfs policy", nb(func(s *Spec) {
			s.Binding.Systems = []string{SysNewFT}
			s.Binding.Policy = []string{PolicyFCFS, PolicyFCFS}
		}), "binding.policy[1]", "duplicate"},
		{"triple policy", nb(func(s *Spec) {
			s.Binding.Systems = []string{SysNewFT}
			s.Binding.Policy = []string{PolicySpace, PolicyFCFS, PolicySpace}
		}), "binding.policy[2]", "duplicate"},
		{"hysteresis on nbody", nb(func(s *Spec) { s.Binding.HysteresisUs = []float64{5} }),
			"binding.hysteresis_us", "bursty"},
		{"bursty needs hysteresis", Spec{Name: "x", Workload: Workload{Kind: KindBursty},
			Machine: Machine{CPUs: 2}, Binding: Binding{Systems: []string{SysNewFT}}},
			"binding.hysteresis_us", "required"},
		{"bursty on topaz", Spec{Name: "x", Workload: Workload{Kind: KindBursty},
			Machine: Machine{CPUs: 2}, Binding: Binding{Systems: []string{SysTopaz}, HysteresisUs: []float64{5}}},
			"binding.systems[0]", "new-ft"},
		{"mix without faults", Spec{Name: "x", Workload: Workload{Kind: KindMix}}, "faults", "required"},
		{"faults on nbody", nb(func(s *Spec) { s.Faults = &Faults{FirstSeed: 1, Seeds: 1} }),
			"faults", "mix"},
		{"zero seeds", mix(func(s *Spec) { s.Faults.Seeds = 0 }), "faults.seeds", "1.."},
		{"negative first seed", mix(func(s *Spec) { s.Faults.FirstSeed = -1 }), "faults.first_seed", ">= 0"},
		{"bad ablate", mix(func(s *Spec) { s.Faults.Ablate = "rm-rf" }), "faults.ablate", `"rm-rf"`},
		{"negative run limit", nb(func(s *Spec) { s.Limits.RunLimitMs = -1 }), "limits.run_limit_ms", ">= 0"},
		{"workers out of range", nb(func(s *Spec) { s.Limits.Workers = -2 }), "limits.workers", "1024"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.spec)
			if err == nil {
				t.Fatalf("spec accepted: %+v", tc.spec)
			}
			verr, ok := err.(ValidationError)
			if !ok {
				t.Fatalf("not a ValidationError: %T %v", err, err)
			}
			found := false
			for _, fe := range verr {
				if fe.Path == tc.path && (tc.msg == "" || strings.Contains(fe.Msg, tc.msg)) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error at path %q containing %q; got: %v", tc.path, tc.msg, err)
			}
		})
	}
}

// TestValidateAggregates: a spec with several problems reports all of them.
func TestValidateAggregates(t *testing.T) {
	s := Spec{Workload: Workload{Kind: "qsort"}, Machine: Machine{CPUs: 99}}
	err := Validate(s)
	verr, ok := err.(ValidationError)
	if !ok || len(verr) < 3 {
		t.Fatalf("want >=3 aggregated field errors, got %v", err)
	}
	if !strings.Contains(verr.Error(), "invalid scenario: ") {
		t.Fatalf("joined message malformed: %v", verr)
	}
}
