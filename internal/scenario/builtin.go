package scenario

import "sort"

// The canonical specs: every battery of the paper's evaluation that the
// experiment harness runs (Figure 1/2, Table 5, the ablation grid, the
// chaos sweep) expressed as the declarative spec it compiles from. The
// harness's exported battery functions (exp.Figure1, exp.ChaosSweep, ...)
// are assemblies over these — there is no second, hand-written path — so
// the compiled pipeline is pinned by the same fingerprint and golden-trace
// oracles as the original code.

// firefly returns the simulated CVAX Firefly machine shape the paper's
// application experiments run on.
func firefly() Machine { return Machine{CPUs: 6} }

// allSystems lists the three §5.3 systems in the paper's presentation
// order.
func allSystems() []string { return []string{SysTopaz, SysOrigFT, SysNewFT} }

// memoryAxis is Figure 2's x-axis: % of memory available.
func memoryAxis() []float64 { return []float64{100, 90, 80, 70, 60, 50, 40} }

// Fig1 is Figure 1: N-body speedup versus processors at 100% memory,
// uniprogrammed, all three systems, speedup against the sequential
// implementation.
func Fig1() Spec {
	return Spec{
		Name:        "fig1",
		Description: "Figure 1: N-body speedup vs processors (3 systems x P=1..6, sequential baseline)",
		Workload:    Workload{Kind: KindNbody, Baseline: true},
		Machine:     firefly(),
		Binding:     Binding{Systems: allSystems(), Procs: []int{1, 2, 3, 4, 5, 6}},
	}
}

// Fig2 is Figure 2: N-body execution time versus available memory on 6
// processors, all three systems.
func Fig2() Spec {
	return Spec{
		Name:        "fig2",
		Description: "Figure 2: N-body execution time vs % memory available (3 systems x 7 points)",
		Workload:    Workload{Kind: KindNbody, MemoryPct: memoryAxis()},
		Machine:     firefly(),
		Binding:     Binding{Systems: allSystems()},
	}
}

// Fig2Tuned is the Figure 2 extra series: new FastThreads under the tuned
// upcall cost profile (§5.2's projected production implementation).
func Fig2Tuned() Spec {
	return Spec{
		Name:        "fig2tuned",
		Description: "Figure 2 extra series: new FastThreads with tuned upcalls across the memory axis",
		Workload:    Workload{Kind: KindNbody, MemoryPct: memoryAxis()},
		Machine:     Machine{CPUs: 6, Costs: CostsTuned},
		Binding:     Binding{Systems: []string{SysNewFT}},
	}
}

// Table5 is Table 5: two multiprogrammed copies of the application on 6
// processors, speedup against the sequential implementation.
func Table5() Spec {
	return Spec{
		Name:        "table5",
		Description: "Table 5: speedup with multiprogramming level 2 (3 systems, sequential baseline)",
		Workload:    Workload{Kind: KindNbody, Copies: 2, Baseline: true},
		Machine:     firefly(),
		Binding:     Binding{Systems: allSystems()},
	}
}

// Alloc is the §4.1 allocator ablation: the space-sharing policy against
// first-come-first-served on the Table 5 multiprogrammed workload.
func Alloc() Spec {
	return Spec{
		Name:        "alloc",
		Description: "§4.1 ablation: space-sharing vs first-come allocation, 2 multiprogrammed copies",
		Workload:    Workload{Kind: KindNbody, Copies: 2, Baseline: true},
		Machine:     firefly(),
		Binding:     Binding{Systems: []string{SysNewFT}, Policy: []string{PolicySpace, PolicyFCFS}},
	}
}

// Hysteresis is the §4.2 idle-hysteresis ablation: the bursty workload
// against a processor-hungry competitor with the idle spin longer and
// shorter than the application's I/O gaps.
func Hysteresis() Spec {
	return Spec{
		Name:        "hysteresis",
		Description: "§4.2 ablation: idle-processor hysteresis vs re-allocation churn (bursty workload)",
		Workload:    Workload{Kind: KindBursty},
		Machine:     Machine{CPUs: 2, DiskLatencyMs: 10},
		Binding:     Binding{Systems: []string{SysNewFT}, HysteresisUs: []float64{15000, 5}},
	}
}

// ChaosSpec is the chaos battery for an arbitrary seed range: the
// fault-injected, audited, replay-checked mixed workload, one job per
// seed.
func ChaosSpec(first, seeds int64) Spec {
	return Spec{
		Name:        "chaos",
		Description: "chaos sweep: fault-injected mixed workload, auditor armed, each seed replay-checked",
		Workload:    Workload{Kind: KindMix},
		Machine:     Machine{}, // CPUs drawn 2..5 from each seed's RNG
		Faults:      &Faults{FirstSeed: first, Seeds: seeds},
	}
}

// Chaos64 is the canonical 64-seed CI sweep.
func Chaos64() Spec {
	s := ChaosSpec(1, 64)
	s.Name = "chaos64"
	s.Description = "the canonical 64-seed chaos sweep (CI gate)"
	return s
}

// Builtins returns every built-in scenario, sorted by name. The slice and
// its specs are fresh copies; callers may mutate them.
func Builtins() []Spec {
	specs := []Spec{Fig1(), Fig2(), Fig2Tuned(), Table5(), Alloc(), Hysteresis(), Chaos64()}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// Lookup returns the built-in scenario with the given name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
