package scenario

import "fmt"

// Job is one unit of fleet work lowered from a Spec: either one
// application run (System/Procs/Copies/MemPct/Policy/HysteresisUs filled)
// or one chaos seed (Seed filled). Jobs are pure data; the experiment
// harness interprets them. Job order is part of a program's identity — the
// fleet delivers results in job order, so aggregates and fingerprints are
// width-independent.
type Job struct {
	Index int    `json:"index"`
	Label string `json:"label"`

	// Application cells (nbody, bursty).
	System       string  `json:"system,omitempty"`
	Procs        int     `json:"procs,omitempty"`
	Copies       int     `json:"copies,omitempty"`
	MemPct       float64 `json:"mem_pct,omitempty"`
	Policy       string  `json:"policy,omitempty"`
	HysteresisUs float64 `json:"hysteresis_us,omitempty"`

	// Chaos seeds (mix).
	Seed int64 `json:"seed,omitempty"`
}

// Program is a compiled scenario: the validated spec, its identity hashes,
// and the ordered job list.
type Program struct {
	Spec Spec
	// Hash identifies the full spec (reports, caching).
	Hash uint64
	// Key is the checkpoint resume identity (see ResumeKey).
	Key  string
	Jobs []Job
}

// Chaos reports whether the program's jobs are chaos seeds rather than
// application cells.
func (p *Program) Chaos() bool { return p.Spec.Workload.Kind == KindMix }

// Compile validates a Spec and lowers it into a Program. The lowering is
// total and deterministic: for application workloads the axes expand in
// fixed nesting order — systems (outer), policy, hysteresis, procs, memory
// (inner) — matching the presentation order of the paper's figures; for
// the mix workload each seed becomes one job in seed order.
func Compile(s Spec) (*Program, error) {
	if err := Validate(s); err != nil {
		return nil, err
	}
	p := &Program{Spec: s, Hash: Hash(s), Key: ResumeKey(s)}
	if s.Workload.Kind == KindMix {
		f := s.Faults
		first, seeds := f.FirstSeed, f.Seeds
		if sh := s.Shard; sh != nil {
			first, seeds = ShardRange(first, seeds, sh.Index, sh.Of)
		}
		for i := int64(0); i < seeds; i++ {
			seed := first + i
			p.Jobs = append(p.Jobs, Job{
				Index: len(p.Jobs),
				Label: fmt.Sprintf("seed %d", seed),
				Seed:  seed,
			})
		}
		return p, nil
	}

	copies := s.Workload.EffCopies()
	mems := s.Workload.EffMemoryPct()
	procs := s.Binding.EffProcs(s.Machine.CPUs)
	policies := s.Binding.EffPolicy()
	hyst := s.Binding.HysteresisUs
	if len(hyst) == 0 {
		hyst = []float64{0} // non-bursty: scheduler default, no axis
	}
	for _, sys := range s.Binding.Systems {
		for _, pol := range policies {
			for _, h := range hyst {
				for _, pr := range procs {
					for _, mem := range mems {
						p.Jobs = append(p.Jobs, Job{
							Index:        len(p.Jobs),
							Label:        appLabel(s, sys, pol, h, pr, mem, copies),
							System:       sys,
							Procs:        pr,
							Copies:       copies,
							MemPct:       mem,
							Policy:       pol,
							HysteresisUs: h,
						})
					}
				}
			}
		}
	}
	return p, nil
}

// appLabel names one application cell, mentioning only the axes the spec
// actually sweeps (plus the constant multiprogramming level), so labels
// stay short for one-dimensional scenarios and unambiguous for grids.
func appLabel(s Spec, sys, pol string, h float64, procs int, mem float64, copies int) string {
	label := sys
	if copies > 1 {
		label += fmt.Sprintf(" x%d", copies)
	}
	if len(s.Binding.Procs) > 1 || len(s.Binding.Procs) == 1 && s.Binding.Procs[0] != s.Machine.CPUs {
		label += fmt.Sprintf(" P=%d", procs)
	}
	if len(s.Workload.MemoryPct) > 1 {
		label += fmt.Sprintf(" mem=%.0f%%", mem)
	}
	if len(s.Binding.Policy) > 1 {
		label += " " + pol
	}
	if len(s.Binding.HysteresisUs) > 0 {
		label += fmt.Sprintf(" h=%gµs", h)
	}
	return label
}
