package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// checkpointFile is the on-disk envelope: the resume key of the spec that
// wrote it plus the runner's opaque progress payload. Keying the file by
// ResumeKey is what makes resume safe: a checkpoint can only continue the
// sweep that produced it.
type checkpointFile struct {
	SpecKey string          `json:"spec_key"`
	Name    string          `json:"scenario"` // informational: the writing spec's name
	Payload json.RawMessage `json:"payload"`
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint into payload.
// A missing file returns (false, nil) — a fresh start. A file whose spec
// key differs from key returns an error: the checkpoint belongs to a
// different scenario (or a different shape of this one), and resuming
// would silently merge incompatible results. An unparsable payload is also
// an error — the file claims to match this spec but cannot be trusted.
func LoadCheckpoint(path, key string, payload any) (found bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return false, fmt.Errorf("checkpoint %s: not a scenario checkpoint: %w", path, err)
	}
	if f.SpecKey != key {
		name := f.Name
		if name == "" {
			name = "unknown scenario"
		}
		return false, fmt.Errorf("checkpoint %s: written by a different spec (%s, key %s; this spec's key is %s) — delete it or point -checkpoint elsewhere",
			path, name, f.SpecKey, key)
	}
	if err := json.Unmarshal(f.Payload, payload); err != nil {
		return false, fmt.Errorf("checkpoint %s: corrupt payload: %w", path, err)
	}
	return true, nil
}

// PeekCheckpoint reads a checkpoint envelope without verifying its spec
// key, returning the key and scenario name the writer recorded alongside
// the decoded payload. The merge path uses this: shard checkpoints carry
// their own shard identities in the key ("<base>#<i>/<n>"), and the merge
// verifies base equality and index coverage across files rather than
// matching one expected key.
func PeekCheckpoint(path string, payload any) (key, name string, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", "", fmt.Errorf("checkpoint %s: %w", path, err)
	}
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return "", "", fmt.Errorf("checkpoint %s: not a scenario checkpoint: %w", path, err)
	}
	if err := json.Unmarshal(f.Payload, payload); err != nil {
		return "", "", fmt.Errorf("checkpoint %s: corrupt payload: %w", path, err)
	}
	return f.SpecKey, f.Name, nil
}

// SaveCheckpoint writes payload to path under the spec's resume key. The
// file is replaced atomically (temp file in the same directory, then
// rename), so a crash mid-write leaves the previous checkpoint intact
// instead of a truncated file LoadCheckpoint would reject.
func SaveCheckpoint(path, key, name string, payload any) error {
	body, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	raw, err := json.MarshalIndent(checkpointFile{SpecKey: key, Name: name, Payload: body}, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op once the rename lands
	_, err = tmp.Write(append(raw, '\n'))
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp.Name(), 0o644) // CreateTemp defaults to 0600
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return nil
}
