package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// checkpointFile is the on-disk envelope: the resume key of the spec that
// wrote it plus the runner's opaque progress payload. Keying the file by
// ResumeKey is what makes resume safe: a checkpoint can only continue the
// sweep that produced it.
type checkpointFile struct {
	SpecKey string          `json:"spec_key"`
	Name    string          `json:"scenario"` // informational: the writing spec's name
	Payload json.RawMessage `json:"payload"`
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint into payload.
// A missing file returns (false, nil) — a fresh start. A file whose spec
// key differs from key returns an error: the checkpoint belongs to a
// different scenario (or a different shape of this one), and resuming
// would silently merge incompatible results. An unparsable payload is also
// an error — the file claims to match this spec but cannot be trusted.
func LoadCheckpoint(path, key string, payload any) (found bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return false, fmt.Errorf("checkpoint %s: not a scenario checkpoint: %w", path, err)
	}
	if f.SpecKey != key {
		name := f.Name
		if name == "" {
			name = "unknown scenario"
		}
		return false, fmt.Errorf("checkpoint %s: written by a different spec (%s, key %s; this spec's key is %s) — delete it or point -checkpoint elsewhere",
			path, name, f.SpecKey, key)
	}
	if err := json.Unmarshal(f.Payload, payload); err != nil {
		return false, fmt.Errorf("checkpoint %s: corrupt payload: %w", path, err)
	}
	return true, nil
}

// SaveCheckpoint writes payload to path under the spec's resume key. The
// write is a full rewrite (the file is small and self-contained), atomic
// enough for a crash-resumable checkpoint.
func SaveCheckpoint(path, key, name string, payload any) error {
	body, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	raw, err := json.MarshalIndent(checkpointFile{SpecKey: key, Name: name, Payload: body}, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return nil
}
