package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// TestBuiltinsValid: every built-in scenario must validate and compile.
func TestBuiltinsValid(t *testing.T) {
	bs := Builtins()
	if len(bs) == 0 {
		t.Fatal("no built-in scenarios")
	}
	for _, s := range bs {
		if _, err := Compile(s); err != nil {
			t.Errorf("builtin %q: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("builtin %q: missing description", s.Name)
		}
	}
}

// TestBuiltinsSortedUnique: -list order is stable and names are unique.
func TestBuiltinsSortedUnique(t *testing.T) {
	bs := Builtins()
	for i := 1; i < len(bs); i++ {
		if bs[i-1].Name >= bs[i].Name {
			t.Fatalf("builtins not sorted/unique at %d: %q >= %q", i, bs[i-1].Name, bs[i].Name)
		}
	}
	if _, ok := Lookup("fig1"); !ok {
		t.Fatal("Lookup(fig1) failed")
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Fatal("Lookup invented a scenario")
	}
}

// TestRoundTrip: spec -> JSON -> spec is the identity for every builtin and
// for a spec exercising every optional field.
func TestRoundTrip(t *testing.T) {
	specs := Builtins()
	specs = append(specs, Spec{
		Name:        "kitchen-sink",
		Description: "all fields set",
		Workload: Workload{
			Kind:      KindNbody,
			Copies:    2,
			MemoryPct: []float64{100, 50},
			Baseline:  true,
			Nbody:     &NbodyOverrides{N: 16, Steps: 3, Seed: 7},
		},
		Machine: Machine{CPUs: 4, Costs: CostsTuned, DiskLatencyMs: 25},
		Binding: Binding{
			Systems: []string{SysNewFT},
			Procs:   []int{1, 4},
			Engine:  EnginePar,
			LPs:     3,
			Policy:  []string{PolicySpace, PolicyFCFS},
		},
		Limits: Limits{RunLimitMs: 60000, Workers: 2},
	})
	for _, want := range specs {
		got, err := Parse(Marshal(want))
		if err != nil {
			t.Fatalf("%s: parse of own marshal failed: %v", want.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip changed the spec:\n got %+v\nwant %+v", want.Name, got, want)
		}
		if Hash(got) != Hash(want) {
			t.Errorf("%s: round trip changed the hash", want.Name)
		}
	}
}

// TestParseStrict: unknown fields and trailing data are rejected with a
// useful message.
func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","proc":[1]}`)); err == nil {
		t.Fatal("unknown field accepted")
	} else if !strings.Contains(err.Error(), "unknown field") || !strings.Contains(err.Error(), "proc") {
		t.Fatalf("unknown-field error not descriptive: %v", err)
	}
	if _, err := Parse([]byte(`{"name":"x"} {"name":"y"}`)); err == nil ||
		!strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing data not rejected: %v", err)
	}
	if _, err := Parse([]byte(`{"machine":{"cpus":"six"}}`)); err == nil ||
		!strings.Contains(err.Error(), "cpus") {
		t.Fatalf("type-mismatch error missing field path: %v", err)
	}
}

// TestResumeKey pins the resume-identity contract: extending the sweep or
// retuning workers keeps the key; anything result-bearing moves it.
func TestResumeKey(t *testing.T) {
	base := ChaosSpec(1, 64)
	key := ResumeKey(base)

	same := []func(Spec) Spec{
		func(s Spec) Spec { s.Faults.Seeds = 4096; return s },    // wider sweep
		func(s Spec) Spec { s.Limits.Workers = 13; return s },    // wall-clock only
		func(s Spec) Spec { s.Description = "edited"; return s }, // cosmetic
	}
	for i, mut := range same {
		s := ChaosSpec(1, 64) // fresh copy: Faults is a pointer
		if got := ResumeKey(mut(s)); got != key {
			t.Errorf("mutation %d should preserve the resume key: %s != %s", i, got, key)
		}
	}

	diff := []func(Spec) Spec{
		func(s Spec) Spec { s.Faults.FirstSeed = 2; return s },
		func(s Spec) Spec { s.Faults.StormMs = 1000; return s },
		func(s Spec) Spec { s.Faults.Ablate = AblateNoGrant; return s },
		func(s Spec) Spec { s.Machine.CPUs = 4; return s },
		func(s Spec) Spec { s.Name = "other"; return s },
		func(s Spec) Spec { s.Limits.RunLimitMs = 1; return s },
	}
	for i, mut := range diff {
		s := ChaosSpec(1, 64)
		if got := ResumeKey(mut(s)); got == key {
			t.Errorf("mutation %d should move the resume key", i)
		}
	}

	// ResumeKey must not mutate its argument (Faults is shared via pointer).
	s := ChaosSpec(1, 64)
	_ = ResumeKey(s)
	if s.Faults.Seeds != 64 {
		t.Fatalf("ResumeKey mutated the spec: seeds = %d", s.Faults.Seeds)
	}
}
