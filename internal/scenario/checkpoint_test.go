package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type testPayload struct {
	Done int   `json:"done"`
	Fps  []int `json:"fps"`
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	key := ResumeKey(Chaos64())

	// Missing file: fresh start, no error.
	var got testPayload
	if found, err := LoadCheckpoint(path, key, &got); err != nil || found {
		t.Fatalf("missing file: found=%v err=%v", found, err)
	}

	want := testPayload{Done: 3, Fps: []int{7, 8, 9}}
	if err := SaveCheckpoint(path, key, "chaos64", want); err != nil {
		t.Fatal(err)
	}
	found, err := LoadCheckpoint(path, key, &got)
	if err != nil || !found {
		t.Fatalf("load: found=%v err=%v", found, err)
	}
	if got.Done != want.Done || len(got.Fps) != 3 || got.Fps[2] != 9 {
		t.Fatalf("payload mangled: %+v", got)
	}
}

// TestCheckpointRejectsOtherSpec: a checkpoint written under one spec key
// must not resume a spec with a different key, and the error says so.
func TestCheckpointRejectsOtherSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := SaveCheckpoint(path, ResumeKey(Chaos64()), "chaos64", testPayload{Done: 64}); err != nil {
		t.Fatal(err)
	}
	other := ChaosSpec(100, 64) // different first_seed -> different key
	var got testPayload
	found, err := LoadCheckpoint(path, ResumeKey(other), &got)
	if err == nil || found {
		t.Fatalf("stale checkpoint accepted: found=%v err=%v", found, err)
	}
	for _, want := range []string{"different spec", "chaos64", ResumeKey(other)} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestCheckpointAtomicOverwrite: SaveCheckpoint replaces an existing file
// via temp-file-and-rename — repeated updates keep the latest payload and
// leave no temp droppings next to the checkpoint.
func TestCheckpointAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	key := ResumeKey(Chaos64())
	for i := 1; i <= 3; i++ {
		if err := SaveCheckpoint(path, key, "chaos64", testPayload{Done: i}); err != nil {
			t.Fatal(err)
		}
	}
	var got testPayload
	if found, err := LoadCheckpoint(path, key, &got); err != nil || !found || got.Done != 3 {
		t.Fatalf("overwrite lost the latest payload: found=%v done=%d err=%v", found, got.Done, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "ck.json" {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("checkpoint dir should hold only ck.json, got %v", names)
	}
}

// TestCheckpointCorrupt: garbage files and garbage payloads are errors, not
// silent fresh starts.
func TestCheckpointCorrupt(t *testing.T) {
	dir := t.TempDir()
	key := ResumeKey(Chaos64())

	bad := filepath.Join(dir, "garbage.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	var got testPayload
	if _, err := LoadCheckpoint(bad, key, &got); err == nil {
		t.Fatal("garbage envelope accepted")
	}

	// Valid envelope, matching key, payload of the wrong shape.
	mistyped := filepath.Join(dir, "mistyped.json")
	if err := SaveCheckpoint(mistyped, key, "chaos64", map[string]any{"done": "three"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(mistyped, key, &got); err == nil {
		t.Fatal("mistyped payload accepted")
	}
}
