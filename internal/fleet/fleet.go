// Package fleet is the shared parallel run harness: it fans independent,
// deterministic simulation runs — chaos seeds, ablation sweeps, experiment
// batteries, throughput benchmarks — across a bounded worker pool with
// ordered result delivery.
//
// Every run in this repository is a pure function of its inputs (seed,
// config) executing on its own private sim.Engine, so a batch of runs is
// embarrassingly parallel: no Time-Warp-style rollback machinery is needed,
// only isolation. fleet supplies the isolation discipline:
//
//   - each job executes exactly once, on one worker goroutine, against
//     state it alone owns (the job callback must not touch shared mutable
//     state — engines, trace logs, and stats registries are all per-run);
//   - results are delivered to the caller in job order (0, 1, 2, ...) on
//     the caller's goroutine, regardless of completion order, so output —
//     and anything derived from it, like a sweep's rendered table — is
//     byte-identical to a sequential run;
//   - the worker that executed each job is reported, so harnesses can
//     attribute failures and imbalance without threading IDs through the
//     job logic.
//
// A panic on any worker is captured and re-raised on the caller's goroutine
// once the in-flight jobs drain, preserving the experiment harness's
// fail-fast contract.
package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the default pool width: one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// WorkersFor sizes the pool for runs that are themselves concurrent: a run
// using perRun goroutines (e.g. a PDES engine's driver plus its logical
// processes) gets cores divided by perRun, never below one worker. With
// perRun <= 1 it is DefaultWorkers. Fleet-level and intra-run parallelism
// multiply, so sizing with DefaultWorkers would oversubscribe the host by
// the LP count.
func WorkersFor(perRun int) int {
	if perRun <= 1 {
		return DefaultWorkers()
	}
	w := runtime.GOMAXPROCS(0) / perRun
	if w < 1 {
		w = 1
	}
	return w
}

// Result pairs one job's value with its scheduling metadata.
type Result[T any] struct {
	Job    int // job index in [0, n)
	Worker int // worker goroutine (in [0, workers)) that executed it
	Value  T
}

// Run executes jobs 0..n-1 on a pool of workers goroutines, calling run(job,
// worker) for each and delivering every result to emit on the caller's
// goroutine in strict job order. workers <= 0 means DefaultWorkers; the pool
// never exceeds n. With workers == 1 the jobs run inline on the caller's
// goroutine — the true sequential baseline, with no pool overhead at all.
//
// Emission is pipelined: emit(i) is called as soon as jobs 0..i have all
// finished, while later jobs are still executing.
func Run[T any](workers, n int, run func(job, worker int) T, emit func(Result[T])) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			emit(Result[T]{Job: i, Worker: 0, Value: run(i, 0)})
		}
		return
	}

	values := make([]T, n)
	workerOf := make([]int, n)
	panics := make([]any, n)
	done := make([]bool, n)
	var mu sync.Mutex
	ready := sync.NewCond(&mu)
	var next atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				j := int(next.Add(1) - 1)
				if j >= n {
					return
				}
				v, pv := runOne(run, j, w)
				mu.Lock()
				values[j] = v
				workerOf[j] = w
				panics[j] = pv
				done[j] = true
				if pv != nil {
					// Fail fast: stop handing out new jobs. In-flight jobs
					// finish; the caller re-panics when it reaches this one.
					next.Store(int64(n))
				}
				ready.Broadcast()
				mu.Unlock()
			}
		}(w)
	}

	for i := 0; i < n; i++ {
		mu.Lock()
		for !done[i] {
			ready.Wait()
		}
		v, w, pv := values[i], workerOf[i], panics[i]
		mu.Unlock()
		if pv != nil {
			wg.Wait()
			panic(pv)
		}
		emit(Result[T]{Job: i, Worker: w, Value: v})
	}
	wg.Wait()
}

// runOne executes one job, converting a panic into a value instead of
// unwinding the worker goroutine.
func runOne[T any](run func(job, worker int) T, j, w int) (v T, pv any) {
	defer func() {
		pv = recover()
	}()
	return run(j, w), nil
}

// Map is Run with the results collected into a slice indexed by job.
func Map[T any](workers, n int, run func(job, worker int) T) []T {
	out := make([]T, n)
	Run(workers, n, run, func(r Result[T]) { out[r.Job] = r.Value })
	return out
}
