package fleet

import (
	"sync/atomic"
	"testing"
	"time"
)

// Results must arrive in job order with every job present exactly once,
// whatever the pool width or completion order.
func TestRunOrderedDelivery(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 57
		var got []int
		Run(workers, n, func(job, worker int) int {
			if job%3 == 0 {
				time.Sleep(time.Duration(job%5) * time.Millisecond)
			}
			return job * job
		}, func(r Result[int]) {
			if r.Value != r.Job*r.Job {
				t.Fatalf("workers=%d: job %d delivered value %d", workers, r.Job, r.Value)
			}
			got = append(got, r.Job)
		})
		if len(got) != n {
			t.Fatalf("workers=%d: delivered %d of %d results", workers, len(got), n)
		}
		for i, j := range got {
			if i != j {
				t.Fatalf("workers=%d: delivery out of order at %d: got job %d", workers, i, j)
			}
		}
	}
}

// Worker IDs must stay within the pool bounds, and with more jobs than
// workers every result must carry a valid attribution.
func TestRunWorkerAttribution(t *testing.T) {
	const workers, n = 4, 32
	seen := make(map[int]int)
	Run(workers, n, func(job, worker int) int { return worker }, func(r Result[int]) {
		if r.Worker < 0 || r.Worker >= workers {
			t.Fatalf("job %d attributed to out-of-range worker %d", r.Job, r.Worker)
		}
		if r.Value != r.Worker {
			t.Fatalf("job %d: callback saw worker %d but result says %d", r.Job, r.Value, r.Worker)
		}
		seen[r.Worker]++
	})
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != n {
		t.Fatalf("attributed %d jobs, want %d", total, n)
	}
}

// Map must return values indexed by job, identically for any pool width —
// the determinism contract the sweeps rely on.
func TestMapDeterministicAcrossWidths(t *testing.T) {
	f := func(job, _ int) int { return job*31 + 7 }
	want := Map(1, 40, f)
	for _, workers := range []int{2, 4, 16} {
		got := Map(workers, 40, f)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: Map[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// A worker panic must surface on the caller's goroutine, after in-flight
// jobs drain, and must not leave goroutines stuck.
func TestRunPanicPropagates(t *testing.T) {
	var launched atomic.Int64
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	Run(4, 64, func(job, worker int) int {
		launched.Add(1)
		if job == 5 {
			panic("boom")
		}
		return job
	}, func(Result[int]) {})
	t.Fatal("Run returned instead of panicking")
}

// Degenerate inputs: zero jobs is a no-op, and workers <= 0 falls back to
// the default width.
func TestRunDegenerate(t *testing.T) {
	Run(4, 0, func(job, worker int) int { t.Fatal("ran a job"); return 0 }, func(Result[int]) {
		t.Fatal("emitted a result")
	})
	n := 0
	Run(-1, 3, func(job, worker int) int { return job }, func(r Result[int]) { n++ })
	if n != 3 {
		t.Fatalf("delivered %d of 3 results with default workers", n)
	}
}

// WorkersFor divides the cores among concurrent runs without ever starving
// the pool or exceeding the plain default.
func TestWorkersFor(t *testing.T) {
	def := DefaultWorkers()
	if got := WorkersFor(0); got != def {
		t.Fatalf("WorkersFor(0) = %d, want DefaultWorkers %d", got, def)
	}
	if got := WorkersFor(1); got != def {
		t.Fatalf("WorkersFor(1) = %d, want DefaultWorkers %d", got, def)
	}
	for _, perRun := range []int{2, 3, 8, 1000} {
		got := WorkersFor(perRun)
		if got < 1 {
			t.Fatalf("WorkersFor(%d) = %d, want >= 1", perRun, got)
		}
		if got > def {
			t.Fatalf("WorkersFor(%d) = %d exceeds DefaultWorkers %d", perRun, got, def)
		}
		if def/perRun >= 1 && got != def/perRun {
			t.Fatalf("WorkersFor(%d) = %d, want %d", perRun, got, def/perRun)
		}
	}
}
