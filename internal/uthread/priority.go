package uthread

import "schedact/internal/machine"

// Thread priorities, the §3.1 extension: "if threads have priorities, an
// additional preemption may have to take place... some processor could be
// running a thread with a lower priority than both the unblocked and the
// preempted thread. In that case, the user-level thread system can ask the
// kernel to interrupt the thread running on that processor and start a
// scheduler activation once the thread has been stopped. The user level can
// know to do this because it knows exactly which thread is running on each
// of its processors."
//
// On the activations binding this delivers §1.2's guarantee that no
// high-priority thread waits for a processor while a low-priority thread
// runs. On the kernel-threads binding there is no such channel: the kernel
// schedules virtual processors obliviously, so a high-priority user-level
// thread simply waits — one of the §2.2 deficiencies.

// SpawnPrio is Spawn with an explicit priority (higher runs first; the
// default is 0).
func (s *Sched) SpawnPrio(name string, prio int, fn func(*Thread)) *Thread {
	t := s.newThread(name, fn)
	t.prio = prio
	v := s.proc(0)
	if best := s.leastLoadedProc(); best != nil {
		v = best
	}
	v.ready = append(v.ready, t)
	t.state = utReady
	s.runnable++
	s.wakeIdleProc()
	return t
}

// Priority reports the thread's scheduling priority.
func (t *Thread) Priority() int { return t.prio }

// SetPriority changes the thread's priority. It affects future scheduling
// decisions; it does not retroactively preempt anyone.
func (t *Thread) SetPriority(p int) { t.prio = p }

// ForkPrio is Fork with an explicit child priority (Fork inherits the
// parent's). The priority takes effect before the child is enqueued, so a
// high-priority fork can trigger an immediate kernel preemption request.
func (t *Thread) ForkPrio(name string, prio int, fn func(*Thread)) *Thread {
	saved := t.prio
	t.prio = prio // Fork copies the forker's priority to the child
	child := t.Fork(name, fn)
	t.prio = saved
	return child
}

// bestIndex returns the index of the highest-priority thread in the list,
// preferring the most recently pushed among equals (LIFO, §4.2).
func bestIndex(list []*Thread) int {
	best := -1
	for i, t := range list {
		if best < 0 || t.prio >= list[best].prio {
			best = i
		}
	}
	return best
}

// maybePreemptForPriority runs after a thread becomes ready with no idle
// processor to take it: if some processor of ours runs a strictly
// lower-priority thread, ask the kernel to interrupt it (activations
// binding only). The preempted thread comes back in the resulting upcall
// and rejoins the ready list; the fresh vessel's scheduler then picks the
// high-priority thread.
func (s *Sched) maybePreemptForPriority(t *Thread, w *machine.Worker) {
	b, ok := s.back.(*saBackend)
	if !ok || t.prio == 0 {
		return
	}
	via := b.actOf(w)
	// Find the processor running the lowest-priority thread — excluding the
	// caller's own (the kernel forbids interrupting the calling vessel, and
	// the caller will reschedule at its next opportunity anyway).
	var victim *procData
	for _, v := range s.procs {
		if v.dead || v.vessel == nil || v.current == nil {
			continue
		}
		if v.current.prio >= t.prio {
			continue
		}
		if cpu := v.vessel.ctx.CPU(); cpu == nil || cpu.ID() == via.CPU() {
			continue
		}
		if victim == nil || v.current.prio < victim.current.prio {
			victim = v
		}
	}
	if victim == nil {
		return
	}
	vcpu := victim.vessel.ctx.CPU()
	if vcpu == nil {
		return // mid-transition; the next ready event will retry
	}
	if t.state != utReady {
		return // already picked up while we were deciding
	}
	// Steer the thread to the processor being interrupted, so the upcall's
	// scheduler finds it at the top of its own list — "the user level can
	// know to do this because it knows exactly which thread is running on
	// each of its processors."
	if s.unqueue(t) {
		victim.ready = append(victim.ready, t)
	}
	s.Stats.KernelNotifies++
	// The request can come back rejected: our processor map is one trap
	// stale, and the kernel may have taken the victim meanwhile. The steered
	// thread is on a ready list either way, and the demand deficit was
	// already notified, so there is nothing to undo.
	if b.space.InterruptProcessor(via, int(vcpu.ID())) {
		s.Stats.PriorityPreempts++
	}
}

// unqueue removes a ready thread from whichever ready list holds it,
// reporting whether it was found.
func (s *Sched) unqueue(t *Thread) bool {
	for _, v := range s.procs {
		for i, c := range v.ready {
			if c == t {
				copy(v.ready[i:], v.ready[i+1:])
				v.ready = v.ready[:len(v.ready)-1]
				return true
			}
		}
	}
	return false
}
