package uthread

import (
	"testing"

	"schedact/internal/sim"
)

func TestTouchPageResidentIsFree(t *testing.T) {
	eng, k, s := newSA(t, 1, Options{})
	vm := k.NewVM()
	vm.Preload(0, 1, 2)
	var took sim.Duration
	s.Spawn("main", func(th *Thread) {
		start := th.Now()
		for p := 0; p < 3; p++ {
			th.TouchPage(vm, p)
		}
		took = th.Now().Sub(start)
	})
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if took > sim.Millisecond {
		t.Fatalf("resident touches took %v, want ~free", took)
	}
	if vm.Stats.Faults != 0 {
		t.Fatalf("Faults = %d, want 0", vm.Stats.Faults)
	}
}

func TestTouchPageFaultOverlapsComputation(t *testing.T) {
	// A faulting thread must not stall its siblings: the processor comes
	// back with the Blocked upcall and runs other threads.
	eng, k, s := newSA(t, 1, Options{})
	vm := k.NewVM()
	var faultDone, cpuDone sim.Time
	s.Spawn("faulter", func(th *Thread) {
		th.TouchPage(vm, 42)
		faultDone = th.Now()
	})
	s.Spawn("cpu", func(th *Thread) {
		th.Exec(sim.Ms(20))
		cpuDone = th.Now()
	})
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if faultDone == 0 || cpuDone == 0 {
		t.Fatal("threads did not finish")
	}
	if cpuDone >= faultDone {
		t.Fatalf("compute (%v) should overlap the 50ms fault (%v)", cpuDone, faultDone)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
}

func TestPageFaultCoalescing(t *testing.T) {
	// Two threads fault on the same page: one disk fetch, both resume.
	eng, k, s := newSA(t, 2, Options{})
	vm := k.NewVM()
	var resumed []sim.Time
	for i := 0; i < 2; i++ {
		d := sim.Duration(i+1) * sim.Millisecond
		s.Spawn("faulter", func(th *Thread) {
			th.Exec(d)
			th.TouchPage(vm, 9)
			resumed = append(resumed, th.Now())
		})
	}
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if len(resumed) != 2 {
		t.Fatalf("resumed = %v, want both threads", resumed)
	}
	if vm.Stats.Faults != 2 || vm.Stats.Coalesced != 1 {
		t.Fatalf("Faults=%d Coalesced=%d, want 2/1", vm.Stats.Faults, vm.Stats.Coalesced)
	}
	if k.M.Disk.Requests != 1 {
		t.Fatalf("disk requests = %d, want 1 (coalesced)", k.M.Disk.Requests)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
}

func TestManyThreadsFaultingStress(t *testing.T) {
	eng, k, s := newSA(t, 3, Options{})
	vm := k.NewVM()
	finished := 0
	for i := 0; i < 12; i++ {
		page := i % 4 // heavy coalescing across 4 pages
		s.Spawn("w", func(th *Thread) {
			th.Exec(sim.Duration(i%3) * sim.Millisecond)
			th.TouchPage(vm, page)
			th.Exec(sim.Ms(1))
			finished++
		})
	}
	s.Start()
	eng.RunUntil(sim.Time(5 * sim.Second))
	if finished != 12 {
		t.Fatalf("finished = %d, want 12", finished)
	}
	if k.M.Disk.Requests >= 12 {
		t.Fatalf("disk requests = %d, want coalescing to reduce below 12", k.M.Disk.Requests)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
}
