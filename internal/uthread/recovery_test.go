package uthread

import (
	"testing"

	"schedact/internal/core"
	"schedact/internal/sim"
)

// csRecoveryScenario puts a thread inside a ready-list critical section,
// lets a rival space preempt its only processor mid-section, and returns
// whether the thread eventually completed once the processor came back.
func csRecoveryScenario(t *testing.T, opt Options) (completed *bool, sched *Sched, eng sim.Engine) {
	t.Helper()
	var k *core.Kernel
	eng, k, sched = newSA(t, 1, opt)
	completed = new(bool)
	s := sched
	s.Spawn("locker", func(th *Thread) {
		v := th.vp
		// Hold the processor's ready-list lock across a long computation —
		// the §3.3 hazard case (the thread package's own free/ready list
		// locks are exactly such sections).
		th.enterCS(&v.lock, th.w)
		th.Exec(20 * sim.Millisecond)
		th.exitCS(&v.lock, th.w)
		*completed = true
	})
	s.Start()
	// A rival takes the only processor at 5ms — squarely inside the
	// critical section — and releases it at ~15ms.
	eng.After(5*sim.Millisecond, "rival", func() {
		rival := OnActivations(k, "rival", 1, 1, Options{})
		rival.Spawn("burst", func(th *Thread) { th.Exec(10 * sim.Millisecond) })
		rival.Start()
	})
	return completed, sched, eng
}

func TestCSRecoveryPreventsReadyListDeadlock(t *testing.T) {
	// With §3.3 continuation: the upcall notices the preempted thread holds
	// a lock, continues it until the section exits, then enqueues it.
	completed, s, eng := csRecoveryScenario(t, Options{})
	eng.RunUntil(sim.Time(2 * sim.Second))
	if !*completed {
		t.Fatal("locker never completed despite critical-section recovery")
	}
	if s.Stats.Continuations == 0 {
		t.Fatal("no continuation recorded; the scenario did not exercise §3.3")
	}
}

func TestWithoutCSRecoveryReadyListDeadlocks(t *testing.T) {
	// Ablation: without continuation, the upcall handler spins on the
	// ready-list lock held by the very thread it is trying to enqueue —
	// the deadlock §3.3 exists to prevent.
	completed, s, eng := csRecoveryScenario(t, Options{NoCSRecovery: true})
	eng.RunUntil(sim.Time(2 * sim.Second))
	if *completed {
		t.Fatal("locker completed: expected the paper's ready-list deadlock without recovery")
	}
	if s.Stats.SpinWait < sim.Second {
		t.Fatalf("spin waste %v; expected the handler to spin indefinitely on the held lock", s.Stats.SpinWait)
	}
}
