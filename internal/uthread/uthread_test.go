package uthread

import (
	"testing"

	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/sim"
)

// newKT builds original FastThreads on a native kernel.
func newKT(t *testing.T, cpus, vps int, opt Options) (sim.Engine, *kernel.Kernel, *Sched) {
	t.Helper()
	eng := sim.NewEngine()
	t.Cleanup(eng.Close)
	k := kernel.New(eng, kernel.Config{CPUs: cpus})
	sp := k.NewSpace("app", false)
	s := OnKernelThreads(k, sp, vps, opt)
	return eng, k, s
}

// newSA builds modified FastThreads on the scheduler-activation kernel.
func newSA(t *testing.T, cpus int, opt Options) (sim.Engine, *core.Kernel, *Sched) {
	t.Helper()
	eng := sim.NewEngine()
	t.Cleanup(eng.Close)
	k := core.New(eng, core.Config{CPUs: cpus})
	s := OnActivations(k, "app", 0, cpus, opt)
	return eng, k, s
}

// run on both backends.
func onBoth(t *testing.T, cpus int, f func(t *testing.T, eng sim.Engine, s *Sched)) {
	t.Run("kernel-threads", func(t *testing.T) {
		eng, _, s := newKT(t, cpus, cpus, Options{})
		f(t, eng, s)
	})
	t.Run("activations", func(t *testing.T) {
		eng, _, s := newSA(t, cpus, Options{})
		f(t, eng, s)
	})
}

func TestSpawnedThreadRuns(t *testing.T) {
	onBoth(t, 1, func(t *testing.T, eng sim.Engine, s *Sched) {
		done := sim.Time(0)
		s.Spawn("main", func(th *Thread) {
			th.Exec(100 * sim.Microsecond)
			done = eng.Now()
		})
		s.Start()
		eng.RunUntil(sim.Time(sim.Second))
		if done == 0 {
			t.Fatal("thread never ran")
		}
		if s.Live() != 0 {
			t.Fatalf("Live = %d, want 0", s.Live())
		}
	})
}

func TestForkAndJoin(t *testing.T) {
	onBoth(t, 2, func(t *testing.T, eng sim.Engine, s *Sched) {
		var childDone, parentDone sim.Time
		s.Spawn("main", func(th *Thread) {
			child := th.Fork("child", func(c *Thread) {
				c.Exec(sim.Ms(1))
				childDone = eng.Now()
			})
			th.Join(child)
			parentDone = eng.Now()
		})
		s.Start()
		eng.RunUntil(sim.Time(sim.Second))
		if childDone == 0 || parentDone == 0 {
			t.Fatal("threads did not finish")
		}
		if parentDone < childDone {
			t.Fatalf("parent (%v) finished before child (%v)", parentDone, childDone)
		}
		if s.Stats.Forks != 1 {
			t.Fatalf("Forks = %d, want 1", s.Stats.Forks)
		}
	})
}

func TestForkIsCheapNoKernel(t *testing.T) {
	// The heart of the paper's Table 1: a fork+schedule+run+exit cycle at
	// user level costs tens of microseconds, not hundreds.
	onBoth(t, 1, func(t *testing.T, eng sim.Engine, s *Sched) {
		var elapsed sim.Duration
		const iters = 100
		s.Spawn("main", func(th *Thread) {
			start := eng.Now()
			for i := 0; i < iters; i++ {
				c := th.Fork("null", func(c *Thread) { c.Exec(th.s.cost.ProcCall) })
				th.Join(c)
			}
			elapsed = eng.Now().Sub(start)
		})
		s.Start()
		eng.RunUntil(sim.Time(sim.Second))
		per := elapsed / iters
		if per == 0 {
			t.Fatal("benchmark did not run")
		}
		if per > 100*sim.Microsecond {
			t.Fatalf("null fork cycle = %v, want well under 100µs (user-level)", per)
		}
	})
}

func TestManyThreadsAllComplete(t *testing.T) {
	onBoth(t, 4, func(t *testing.T, eng sim.Engine, s *Sched) {
		count := 0
		for i := 0; i < 50; i++ {
			s.Spawn("w", func(th *Thread) {
				th.Exec(sim.Duration(50+i%7) * sim.Microsecond)
				count++
			})
		}
		s.Start()
		eng.RunUntil(sim.Time(sim.Second))
		if count != 50 {
			t.Fatalf("completed = %d, want 50", count)
		}
	})
}

func TestMutexMutualExclusion(t *testing.T) {
	onBoth(t, 4, func(t *testing.T, eng sim.Engine, s *Sched) {
		m := s.NewMutex()
		inside, maxInside, total := 0, 0, 0
		for i := 0; i < 8; i++ {
			s.Spawn("w", func(th *Thread) {
				for j := 0; j < 5; j++ {
					m.Lock(th)
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					th.Exec(100 * sim.Microsecond)
					inside--
					total++
					m.Unlock(th)
				}
			})
		}
		s.Start()
		eng.RunUntil(sim.Time(5 * sim.Second))
		if total != 40 {
			t.Fatalf("critical sections executed = %d, want 40", total)
		}
		if maxInside != 1 {
			t.Fatalf("max inside = %d, want 1", maxInside)
		}
		if m.Contended == 0 {
			t.Fatal("expected contention with 8 threads on 4 CPUs")
		}
	})
}

func TestCondSignalWaitPingPong(t *testing.T) {
	onBoth(t, 2, func(t *testing.T, eng sim.Engine, s *Sched) {
		cond := s.NewCond()
		var log []string
		const rounds = 5
		s.Spawn("waiter", func(th *Thread) {
			for i := 0; i < rounds; i++ {
				cond.Wait(th, nil)
				log = append(log, "woke")
			}
		})
		s.Spawn("signaller", func(th *Thread) {
			for i := 0; i < rounds; i++ {
				for cond.Waiters() == 0 {
					th.Yield()
				}
				cond.Signal(th)
			}
		})
		s.Start()
		eng.RunUntil(sim.Time(sim.Second))
		if len(log) != rounds {
			t.Fatalf("wakes = %d, want %d", len(log), rounds)
		}
	})
}

func TestBarrier(t *testing.T) {
	onBoth(t, 3, func(t *testing.T, eng sim.Engine, s *Sched) {
		const n = 6
		b := s.NewBarrier(n)
		var after []sim.Time
		for i := 0; i < n; i++ {
			d := sim.Duration(i+1) * 100 * sim.Microsecond
			s.Spawn("w", func(th *Thread) {
				th.Exec(d)
				b.Arrive(th)
				after = append(after, eng.Now())
			})
		}
		s.Start()
		eng.RunUntil(sim.Time(sim.Second))
		if len(after) != n {
			t.Fatalf("arrivals = %d, want %d", len(after), n)
		}
		// Nobody passes the barrier before the slowest thread's work is done.
		slowest := sim.Time(sim.Duration(n) * 100 * sim.Microsecond)
		for i, at := range after {
			if at < slowest {
				t.Fatalf("thread %d passed barrier at %v, before slowest work %v", i, at, slowest)
			}
		}
	})
}

func TestYieldRoundRobins(t *testing.T) {
	onBoth(t, 1, func(t *testing.T, eng sim.Engine, s *Sched) {
		var order []string
		s.Spawn("a", func(th *Thread) {
			for i := 0; i < 3; i++ {
				order = append(order, "a")
				th.Yield()
			}
		})
		s.Spawn("b", func(th *Thread) {
			for i := 0; i < 3; i++ {
				order = append(order, "b")
				th.Yield()
			}
		})
		s.Start()
		eng.RunUntil(sim.Time(sim.Second))
		if len(order) != 6 {
			t.Fatalf("order = %v, want 6 entries", order)
		}
		// With yields on one processor the two threads must interleave.
		same := 0
		for i := 1; i < len(order); i++ {
			if order[i] == order[i-1] {
				same++
			}
		}
		if same > 1 {
			t.Fatalf("order = %v: not interleaved", order)
		}
	})
}

func TestBlockIOOverlapsOnActivations(t *testing.T) {
	// The defining functional difference (Figure 2's mechanism): on
	// activations, a thread blocking in the kernel returns its processor to
	// the space, so a CPU-bound sibling keeps running; on kernel threads
	// with one VP, the I/O stalls everything.
	eng, _, s := newSA(t, 1, Options{})
	var ioDone, cpuDone sim.Time
	s.Spawn("io", func(th *Thread) {
		th.BlockIO()
		ioDone = eng.Now()
	})
	s.Spawn("cpu", func(th *Thread) {
		th.Exec(sim.Ms(10))
		cpuDone = eng.Now()
	})
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if ioDone == 0 || cpuDone == 0 {
		t.Fatalf("io=%v cpu=%v: not both finished", ioDone, cpuDone)
	}
	if cpuDone >= ioDone {
		t.Fatalf("cpu thread (%v) should finish during the 50ms I/O (done %v)", cpuDone, ioDone)
	}
}

func TestBlockIOStallsOnSingleKernelThreadVP(t *testing.T) {
	eng, _, s := newKT(t, 1, 1, Options{})
	var ioDone, cpuDone sim.Time
	s.Spawn("io", func(th *Thread) {
		th.BlockIO()
		ioDone = eng.Now()
	})
	s.Spawn("cpu", func(th *Thread) {
		th.Exec(sim.Ms(10))
		cpuDone = eng.Now()
	})
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if ioDone == 0 || cpuDone == 0 {
		t.Fatal("not both finished")
	}
	// The CPU thread cannot run while the only VP is blocked: order depends
	// on which thread the LIFO scheduler starts, but if the I/O thread went
	// first, the CPU thread must be fully serialized after it.
	if cpuDone < ioDone && ioDone < sim.Time(sim.Ms(50)) {
		t.Fatalf("io completed at %v, before the disk latency", ioDone)
	}
	if cpuDone > ioDone && cpuDone < sim.Time(sim.Ms(60)) {
		t.Fatalf("cpu thread finished at %v; with a blocked VP it must wait out the I/O", cpuDone)
	}
}

func TestBlockIOResumesAcrossVessels(t *testing.T) {
	// After I/O on activations the thread continues (in a new vessel) with
	// no work lost.
	eng, _, s := newSA(t, 2, Options{})
	var trace []sim.Time
	s.Spawn("io", func(th *Thread) {
		th.Exec(sim.Ms(1))
		trace = append(trace, eng.Now())
		th.BlockIO()
		trace = append(trace, eng.Now())
		th.Exec(sim.Ms(1))
		trace = append(trace, eng.Now())
	})
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if len(trace) != 3 {
		t.Fatalf("trace = %v, want 3 phases", trace)
	}
	if post := trace[2].Sub(trace[1]); post < sim.Ms(1) {
		t.Fatalf("post-IO compute = %v, want >= 1ms", post)
	}
	if s.Stats.BlocksKernel != 1 {
		t.Fatalf("BlocksKernel = %d, want 1", s.Stats.BlocksKernel)
	}
}

func TestActivationsRequestMoreProcessors(t *testing.T) {
	// Spawning parallel work should make the space ask the kernel for more
	// processors (Table 3) and receive them.
	eng, k, s := newSA(t, 4, Options{})
	finished := 0
	var doneAt sim.Time
	s.Spawn("main", func(th *Thread) {
		var kids []*Thread
		for i := 0; i < 4; i++ {
			kids = append(kids, th.Fork("w", func(c *Thread) {
				c.Exec(sim.Ms(20))
				finished++
			}))
		}
		for _, c := range kids {
			th.Join(c)
		}
		finished++
		doneAt = eng.Now()
	})
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if finished != 5 {
		t.Fatalf("finished = %d, want 5", finished)
	}
	if s.Stats.KernelNotifies == 0 {
		t.Fatal("no Table 3 notifications issued")
	}
	if k.Stats.Grants < 2 {
		t.Fatalf("kernel grants = %d, want >= 2 (parallelism requested)", k.Stats.Grants)
	}
	// The parallel phase must beat the serial time: 4 threads × 20ms on 4
	// CPUs ≈ 20ms, not 80ms.
	if doneAt > sim.Time(sim.Ms(45)) {
		t.Fatalf("4×20ms finished at %v: no effective parallelism", doneAt)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
}

func TestPreemptedCriticalSectionIsContinued(t *testing.T) {
	// §3.3: preempt a processor while its thread holds a spin lock; the
	// upcall handler must continue the thread until it exits the section,
	// then put it on the ready list. No deadlock, lock released.
	eng, k, s := newSA(t, 2, Options{})
	l := &SpinLock{}
	var exitedCS, finished sim.Time
	s.Spawn("locker", func(th *Thread) {
		l.Acquire(th)
		th.Exec(sim.Ms(20)) // long critical section; preemption will land here
		l.Release(th)
		exitedCS = eng.Now()
		th.Exec(sim.Ms(1))
		finished = eng.Now()
	})
	s.Start()
	// Let the locker get going, then start a competing space that takes a
	// processor away (the allocator preempts one of app's CPUs).
	eng.RunFor(sim.Ms(5))
	other := OnActivations(k, "rival", 0, 2, Options{})
	other.Spawn("spin", func(th *Thread) { th.Exec(sim.Ms(100)) })
	other.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if finished == 0 {
		t.Fatal("locker never finished (deadlock?)")
	}
	if l.Held() {
		t.Fatal("lock still held at end")
	}
	if exitedCS == 0 {
		t.Fatal("critical section never exited")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
}

func TestContinuationStatRecordedWhenCSPreempted(t *testing.T) {
	// Force the deterministic case: thread in CS on the app's only...
	// second CPU; rival arrives and allocator takes one CPU; if the taken
	// CPU hosted the CS thread, a continuation must be recorded. Run a
	// workload long enough that preemption lands inside the CS with
	// certainty: all app threads hold locks almost always.
	eng, k, s := newSA(t, 2, Options{})
	locks := []*SpinLock{{}, {}}
	stop := false
	for i := 0; i < 2; i++ {
		l := locks[i]
		s.Spawn("locker", func(th *Thread) {
			for !stop {
				l.Acquire(th)
				th.Exec(sim.Ms(5))
				l.Release(th)
			}
		})
	}
	s.Start()
	eng.RunFor(sim.Ms(12))
	other := OnActivations(k, "rival", 0, 2, Options{})
	other.Spawn("spin", func(th *Thread) { th.Exec(sim.Ms(50)) })
	other.Start()
	eng.After(sim.Ms(100), "stop", func() { stop = true })
	eng.RunUntil(sim.Time(sim.Second))
	if s.Stats.Continuations == 0 {
		t.Fatal("no critical-section continuations recorded despite CS-heavy preemption")
	}
	for _, l := range locks {
		if l.Held() {
			t.Fatal("a lock leaked across preemption")
		}
	}
}

func TestExplicitCSFlagsAblationCostsMore(t *testing.T) {
	perIter := func(opt Options) sim.Duration {
		eng := sim.NewEngine()
		defer eng.Close()
		k := core.New(eng, core.Config{CPUs: 1})
		s := OnActivations(k, "app", 0, 1, opt)
		var elapsed sim.Duration
		const iters = 200
		s.Spawn("main", func(th *Thread) {
			start := eng.Now()
			for i := 0; i < iters; i++ {
				c := th.Fork("null", func(c *Thread) { c.Exec(s.cost.ProcCall) })
				th.Join(c)
			}
			elapsed = eng.Now().Sub(start)
		})
		s.Start()
		eng.RunUntil(sim.Time(5 * sim.Second))
		return elapsed / iters
	}
	fast := perIter(Options{})
	slow := perIter(Options{ExplicitCSFlags: true})
	if slow <= fast {
		t.Fatalf("explicit CS flags (%v) must cost more than zero-overhead marking (%v)", slow, fast)
	}
	// §5.1: the difference is a handful of microseconds per critical
	// section, roughly 6-15µs across the fork path.
	if d := slow - fast; d < 2*sim.Microsecond || d > 30*sim.Microsecond {
		t.Fatalf("ablation delta = %v, want single-digit microseconds", d)
	}
}

func TestDeterminismUThread(t *testing.T) {
	run := func(sa bool) (sim.Time, Stats) {
		eng := sim.NewEngine()
		defer eng.Close()
		var s *Sched
		if sa {
			k := core.New(eng, core.Config{CPUs: 3})
			s = OnActivations(k, "app", 0, 3, Options{})
		} else {
			k := kernel.New(eng, kernel.Config{CPUs: 3})
			s = OnKernelThreads(k, k.NewSpace("app", false), 3, Options{})
		}
		m := s.NewMutex()
		for i := 0; i < 6; i++ {
			s.Spawn("w", func(th *Thread) {
				for j := 0; j < 4; j++ {
					m.Lock(th)
					th.Exec(200 * sim.Microsecond)
					m.Unlock(th)
					th.BlockIO()
				}
			})
		}
		s.Start()
		eng.RunUntil(sim.Time(5 * sim.Second))
		return eng.Now(), s.Stats
	}
	for _, sa := range []bool{false, true} {
		t1, s1 := run(sa)
		t2, s2 := run(sa)
		if t1 != t2 || s1 != s2 {
			t.Fatalf("sa=%v non-deterministic: %+v vs %+v", sa, s1, s2)
		}
	}
}

func TestSleepWakesOnTime(t *testing.T) {
	onBoth(t, 1, func(t *testing.T, eng sim.Engine, s *Sched) {
		var slept sim.Duration
		s.Spawn("sleeper", func(th *Thread) {
			before := th.Now()
			th.Sleep(25 * sim.Millisecond)
			slept = th.Now().Sub(before)
		})
		s.Start()
		eng.RunUntil(sim.Time(sim.Second))
		if slept < 25*sim.Millisecond || slept > 26*sim.Millisecond {
			t.Fatalf("slept %v, want ~25ms", slept)
		}
	})
}

func TestSleepDoesNotHoldProcessor(t *testing.T) {
	onBoth(t, 1, func(t *testing.T, eng sim.Engine, s *Sched) {
		var cpuDone, sleepDone sim.Time
		s.Spawn("sleeper", func(th *Thread) {
			th.Sleep(50 * sim.Millisecond)
			sleepDone = th.Now()
		})
		s.Spawn("cpu", func(th *Thread) {
			th.Exec(20 * sim.Millisecond)
			cpuDone = th.Now()
		})
		s.Start()
		eng.RunUntil(sim.Time(sim.Second))
		if cpuDone == 0 || sleepDone == 0 {
			t.Fatal("threads did not finish")
		}
		if cpuDone >= sleepDone {
			t.Fatalf("cpu thread (%v) should run through the sleep (%v)", cpuDone, sleepDone)
		}
	})
}

func TestManySleepersInterleave(t *testing.T) {
	onBoth(t, 2, func(t *testing.T, eng sim.Engine, s *Sched) {
		done := 0
		for i := 0; i < 10; i++ {
			d := sim.Duration(i+1) * 3 * sim.Millisecond
			s.Spawn("z", func(th *Thread) {
				for j := 0; j < 3; j++ {
					th.Exec(200 * sim.Microsecond)
					th.Sleep(d)
				}
				done++
			})
		}
		s.Start()
		eng.RunUntil(sim.Time(5 * sim.Second))
		if done != 10 {
			t.Fatalf("done = %d, want 10", done)
		}
	})
}
