package uthread

import (
	"fmt"

	"schedact/internal/kernel"
	"schedact/internal/machine"
)

// ktBackend is "original FastThreads": the user-level thread system runs on
// a fixed set of Topaz kernel threads serving as virtual processors. The
// kernel schedules those threads obliviously (time-slicing, daemon
// preemption), and when a user-level thread blocks in the kernel its
// virtual processor blocks with it — the integration problems of §2.2,
// reproduced faithfully.
type ktBackend struct {
	s    *Sched
	k    *kernel.Kernel
	sp   *kernel.Space
	nVPs int
}

// OnKernelThreads builds a FastThreads instance whose virtual processors
// are nVPs kernel threads in sp, exactly as user-level thread packages were
// built before scheduler activations. Call Start to spin up the virtual
// processors.
func OnKernelThreads(k *kernel.Kernel, sp *kernel.Space, nVPs int, opt Options) *Sched {
	if nVPs <= 0 {
		panic("uthread: need at least one virtual processor")
	}
	s := newSched(k.Eng, k.M, opt)
	s.back = &ktBackend{s: s, k: k, sp: sp, nVPs: nVPs}
	s.registerMetrics(sp.Name)
	return s
}

func (b *ktBackend) name() string      { return "kernel-threads" }
func (b *ktBackend) maxVPs() int       { return b.nVPs }
func (b *ktBackend) perCPUProcs() bool { return false }

func (b *ktBackend) start() {
	s := b.s
	for i := 0; i < b.nVPs; i++ {
		v := s.proc(i)
		b.sp.Spawn(fmt.Sprintf("%s:vp%d", b.sp.Name, i), 0, func(kt *kernel.KThread) {
			v.vessel = &vessel{
				ctx:     kt.Context(),
				schedCo: s.eng.Current(),
				kt:      kt,
			}
			s.schedLoop(v, kt.Context().Root())
		})
	}
}

// blockIO on kernel threads: the virtual processor's kernel thread blocks,
// taking the physical processor away from the address space for the
// duration of the I/O — "the physical processor is lost to the address
// space while the I/O is pending" (§2.2).
func (b *ktBackend) blockIO(v *procData, t *Thread) {
	kt := v.vessel.kt.(*kernel.KThread)
	kt.BlockIO()
	// The kernel thread was redispatched and t resumed with it; nothing in
	// the user-level scheduler ever learned the processor was gone.
}

// moreWork: original FastThreads has no channel to tell the kernel about
// parallelism; the set of virtual processors is fixed.
func (b *ktBackend) moreWork(*machine.Worker, int) {}

// idleProtocol: no kernel notification exists; the virtual processor simply
// stays put (parked at user level until work arrives), holding its kernel
// thread — and its share of kernel time slices — regardless.
func (b *ktBackend) idleProtocol(*procData) bool { return false }
