package uthread

import "schedact/internal/core"

// KernelWait blocks the thread on a kernel-level synchronization object,
// forcing the block/unblock round trip through the kernel even though
// user-level synchronization would normally be used. This is the §5.2
// measurement path ("the time for two user-level threads to signal and wait
// through the kernel... analogous to the Signal-Wait test, except that the
// synchronization is forced to be in the kernel"). Only available on the
// activations binding.
func (t *Thread) KernelWait(ev *core.KernelEvent) {
	b, ok := t.s.back.(*saBackend)
	if !ok {
		panic("uthread: KernelWait requires the activations binding")
	}
	t.s.Stats.BlocksKernel++
	v := t.vp
	_ = v
	ev.Wait(b.actOf(t.w))
	b.refreshVP(t)
}

// KernelSignal wakes one thread blocked in KernelWait, through the kernel.
func (t *Thread) KernelSignal(ev *core.KernelEvent) {
	b, ok := t.s.back.(*saBackend)
	if !ok {
		panic("uthread: KernelSignal requires the activations binding")
	}
	ev.Signal(b.actOf(t.w))
}

// refreshVP re-derives the thread's processor binding after it returned
// from the kernel in a possibly different vessel.
func (b *saBackend) refreshVP(t *Thread) {
	if ctx := t.w.Bound(); ctx != nil {
		if cpu := ctx.CPU(); cpu != nil {
			t.vp = b.s.proc(int(cpu.ID()))
		}
	}
}

// TouchPage accesses a virtual-memory page through the kernel's pager. A
// resident page is free; a non-resident one page-faults: the thread blocks
// in the kernel and the processor returns to the space, exactly as for I/O
// (§3.1 vectors page faults and I/O through the same upcall mechanism).
// Only available on the activations binding.
func (t *Thread) TouchPage(vm *core.VM, page int) {
	b, ok := t.s.back.(*saBackend)
	if !ok {
		panic("uthread: TouchPage requires the activations binding")
	}
	if vm.Resident(page) {
		return
	}
	t.s.Stats.BlocksKernel++
	t.needsResumeCheck = true
	vm.Touch(b.actOf(t.w), page)
	b.refreshVP(t)
}
