package uthread

import (
	"testing"

	"schedact/internal/sim"
)

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestUnlockByNonOwnerPanics(t *testing.T) {
	eng, _, s := newSA(t, 1, Options{})
	m := s.NewMutex()
	s.Spawn("a", func(th *Thread) {
		m.Lock(th)
		th.Exec(sim.Ms(1))
		m.Unlock(th)
	})
	s.Spawn("b", func(th *Thread) {
		expectPanic(t, "Unlock by non-owner", func() { m.Unlock(th) })
	})
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
}

func TestSpinLockReleaseByNonHolderPanics(t *testing.T) {
	eng, _, s := newSA(t, 1, Options{})
	l := &SpinLock{}
	s.Spawn("a", func(th *Thread) {
		expectPanic(t, "Release of an unheld spin lock", func() { l.Release(th) })
	})
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
}

func TestKernelWaitOnKernelThreadsBindingPanics(t *testing.T) {
	eng, k, s := newKT(t, 1, 1, Options{})
	_ = k
	s.Spawn("a", func(th *Thread) {
		expectPanic(t, "KernelWait on the kernel-threads binding", func() { th.KernelWait(nil) })
	})
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
}

func TestZeroVPsPanics(t *testing.T) {
	eng, k, _ := newKT(t, 1, 1, Options{})
	_ = eng
	expectPanic(t, "OnKernelThreads with zero VPs", func() {
		OnKernelThreads(k, k.NewSpace("x", false), 0, Options{})
	})
}

func TestMutexLockUnlockStress(t *testing.T) {
	// Heavier churn across both bindings: lots of short critical sections
	// with competing threads, verifying total work and exclusion.
	onBoth(t, 3, func(t *testing.T, eng sim.Engine, s *Sched) {
		m := s.NewMutex()
		inside, total := 0, 0
		for i := 0; i < 12; i++ {
			s.Spawn("w", func(th *Thread) {
				for j := 0; j < 8; j++ {
					m.Lock(th)
					if inside != 0 {
						t.Errorf("exclusion violated")
					}
					inside++
					th.Exec(50 * sim.Microsecond)
					inside--
					total++
					m.Unlock(th)
					th.Exec(30 * sim.Microsecond)
				}
			})
		}
		s.Start()
		eng.RunUntil(sim.Time(10 * sim.Second))
		if total != 96 {
			t.Fatalf("total = %d, want 96", total)
		}
	})
}

func TestBarrierReuse(t *testing.T) {
	onBoth(t, 2, func(t *testing.T, eng sim.Engine, s *Sched) {
		b := s.NewBarrier(3)
		rounds := make([]int, 3)
		for i := 0; i < 3; i++ {
			i := i
			s.Spawn("w", func(th *Thread) {
				for r := 0; r < 4; r++ {
					th.Exec(sim.Duration(i+1) * 100 * sim.Microsecond)
					b.Arrive(th)
					rounds[i]++
				}
			})
		}
		s.Start()
		eng.RunUntil(sim.Time(10 * sim.Second))
		for i, r := range rounds {
			if r != 4 {
				t.Fatalf("thread %d completed %d rounds, want 4 (barrier must be reusable)", i, r)
			}
		}
	})
}
