package uthread

import "fmt"

// SpinLock is a test-and-set spin lock in (simulated) shared memory. It is
// the low-level mutual exclusion of the thread system itself (ready lists,
// free lists) and of applications that want raw spin locks. Spinning burns
// processor time; §3.3's continuation protocol guarantees a preempted
// holder eventually releases.
type SpinLock struct {
	held   bool
	holder *Thread
	Spins  uint64 // contended spin slices observed (diagnostic)
}

// Held reports whether the lock is currently held.
func (l *SpinLock) Held() bool { return l.held }

// Holder reports the thread holding the lock, or nil.
func (l *SpinLock) Holder() *Thread { return l.holder }

// Acquire takes the lock on behalf of the calling thread, spinning while it
// is held. This marks the thread as in a critical section for §3.3
// recovery.
func (l *SpinLock) Acquire(t *Thread) { t.enterCS(l, t.w) }

// Release drops the lock, yielding back to an upcall handler if the holder
// was preempted inside the section and continued.
func (l *SpinLock) Release(t *Thread) { t.exitCS(l, t.w) }

// Mutex is a user-level blocking lock: uncontended acquire and release cost
// a test-and-set; a contended acquire queues the thread and switches to
// another — no kernel involvement either way.
type Mutex struct {
	s       *Sched
	lk      SpinLock // guards owner/waiters; short critical section
	owner   *Thread
	waiters []*Thread

	Contended   uint64
	Uncontended uint64
}

// NewMutex creates a user-level mutex.
func (s *Sched) NewMutex() *Mutex { return &Mutex{s: s} }

// Lock acquires the mutex for t, blocking at user level if needed.
func (m *Mutex) Lock(t *Thread) {
	s := m.s
	t.enterCS(&m.lk, t.w)
	t.w.Exec(s.cost.TAS)
	if m.owner == nil {
		m.owner = t
		m.Uncontended++
		t.exitCS(&m.lk, t.w)
		return
	}
	m.Contended++
	m.waiters = append(m.waiters, t)
	t.prepareBlock()
	t.exitCS(&m.lk, t.w)
	t.block("mutex", utBlocked)
	if m.owner != t {
		panic("uthread: mutex wake without ownership")
	}
}

// Unlock releases the mutex, transferring ownership to the oldest waiter.
func (m *Mutex) Unlock(t *Thread) {
	s := m.s
	if m.owner != t {
		panic(fmt.Sprintf("uthread: unlock of %p by non-owner %s", m, t.name))
	}
	t.enterCS(&m.lk, t.w)
	t.w.Exec(s.cost.TAS)
	if len(m.waiters) == 0 {
		m.owner = nil
		t.exitCS(&m.lk, t.w)
		return
	}
	next := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.owner = next
	t.exitCS(&m.lk, t.w)
	t.wakeBlocked(next)
}

// Owner reports the current owner, or nil.
func (m *Mutex) Owner() *Thread { return m.owner }

// Cond is a user-level condition variable.
type Cond struct {
	s       *Sched
	lk      SpinLock
	waiters []*Thread
}

// NewCond creates a user-level condition variable.
func (s *Sched) NewCond() *Cond { return &Cond{s: s} }

// Wait atomically queues t on the condition, releases m (when non-nil),
// and blocks; on wake-up it reacquires m before returning.
func (c *Cond) Wait(t *Thread, m *Mutex) {
	s := c.s
	t.enterCS(&c.lk, t.w)
	t.w.Exec(s.cost.UTCond)
	c.waiters = append(c.waiters, t)
	t.prepareBlock()
	t.exitCS(&c.lk, t.w)
	if m != nil {
		m.Unlock(t)
	}
	if s.saMode() {
		t.w.Exec(s.cost.SAAccount)
	}
	t.block("cond-wait", utBlocked)
	if m != nil {
		m.Lock(t)
	}
}

// Signal wakes the longest-waiting thread, if any.
func (c *Cond) Signal(t *Thread) {
	s := c.s
	t.enterCS(&c.lk, t.w)
	t.w.Exec(s.cost.UTCond)
	if len(c.waiters) == 0 {
		t.exitCS(&c.lk, t.w)
		return
	}
	next := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	t.exitCS(&c.lk, t.w)
	if s.saMode() {
		t.w.Exec(s.cost.SAAccount)
	}
	t.wakeBlocked(next)
}

// Broadcast wakes every waiting thread.
func (c *Cond) Broadcast(t *Thread) {
	s := c.s
	t.enterCS(&c.lk, t.w)
	t.w.Exec(s.cost.UTCond)
	ws := c.waiters
	c.waiters = nil
	t.exitCS(&c.lk, t.w)
	for _, wt := range ws {
		if s.saMode() {
			t.w.Exec(s.cost.SAAccount)
		}
		t.wakeBlocked(wt)
	}
}

// Waiters reports how many threads wait on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Barrier blocks threads until n have arrived, then releases them all.
type Barrier struct {
	s     *Sched
	n     int
	count int
	gen   int
	m     *Mutex
	c     *Cond
}

// NewBarrier creates a reusable n-thread barrier.
func (s *Sched) NewBarrier(n int) *Barrier {
	return &Barrier{s: s, n: n, m: s.NewMutex(), c: s.NewCond()}
}

// Arrive blocks t until all n parties have arrived.
func (b *Barrier) Arrive(t *Thread) {
	b.m.Lock(t)
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.m.Unlock(t)
		b.c.Broadcast(t)
		return
	}
	for gen == b.gen {
		b.c.Wait(t, b.m)
	}
	b.m.Unlock(t)
}
