// Package uthread is the user-level thread package of the paper: a
// FastThreads-style library with per-processor LIFO ready lists, free-listed
// thread control blocks, spin locks, and user-level mutexes and condition
// variables. Thread management operations run entirely at user level, within
// an order of magnitude of a procedure call.
//
// The package runs on either of two virtual-processor bindings:
//
//   - OnKernelThreads: virtual processors are Topaz kernel threads (the
//     "original FastThreads" of the paper), with the integration problems of
//     §2.2 — a thread blocking in the kernel takes its virtual processor
//     with it, and the oblivious kernel time-slices virtual processors
//     without regard to what they are running.
//
//   - OnActivations: virtual processors are scheduler activations (the
//     "modified FastThreads"), processing the upcalls of Table 2, issuing
//     the notifications of Table 3, and recovering preempted critical
//     sections by temporary continuation (§3.3, §4.3).
//
// Scheduling policy follows §4.2: per-processor ready lists accessed in
// last-in-first-out order for cache locality; a processor scans the other
// lists for work when its own is empty; idle processors spin for a
// hysteresis period before notifying the kernel.
package uthread

import (
	"fmt"

	"schedact/internal/machine"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// Options tunes a Sched instance.
type Options struct {
	// ExplicitCSFlags enables the §5.1 ablation: instead of the
	// zero-overhead critical-section check (the paper's duplicated code
	// trick), every critical-section entry/exit pair charges the explicit
	// flag cost.
	ExplicitCSFlags bool

	// Hysteresis is how long an idle processor spins before notifying the
	// kernel it is available (§4.2). Zero selects a default of 1ms.
	Hysteresis sim.Duration

	// SpinSlice is the granularity of spin-waiting (§3.3 spin-locks and the
	// idle loop). Zero selects a default of 5µs.
	SpinSlice sim.Duration

	// NoCSRecovery disables the §3.3 critical-section continuation — an
	// ablation that reproduces the failure the paper designs against:
	// "deadlock would occur if the upcall attempted to place the preempted
	// thread onto the ready list [while it holds a lock on the ready
	// list]". For experiments only; never enable in real use.
	NoCSRecovery bool

	// Trace, if set, records thread-level scheduling events.
	Trace *trace.Log
}

func (o Options) withDefaults() Options {
	if o.Hysteresis == 0 {
		o.Hysteresis = sim.Ms(1)
	}
	if o.SpinSlice == 0 {
		o.SpinSlice = sim.Us(5)
	}
	return o
}

// Stats counts thread-system activity.
type Stats struct {
	Forks            uint64
	Exits            uint64
	Switches         uint64
	Steals           uint64
	BlocksUser       uint64 // blocked on user-level mutex/cond/join
	BlocksKernel     uint64 // blocked in the kernel (I/O)
	SpinWait         sim.Duration
	IdleSpin         sim.Duration
	Continuations    uint64 // preempted critical sections continued (§3.3)
	PriorityPreempts uint64 // kernel interrupts requested for priority scheduling (§3.1)
	KernelNotifies   uint64 // Table 3 downcalls issued
	Upcalls          uint64 // upcalls processed (activations binding only)
}

// Sched is the user-level thread scheduler for one address space.
type Sched struct {
	eng  sim.Engine
	m    *machine.Machine
	cost *machine.Costs
	opt  Options
	back backend

	procs    []*procData
	byWorker map[*machine.Worker]*Thread
	nextTID  int
	live     int // threads created and not yet exited

	// runnable tracks threads ready or running, for the §3.2 demand
	// notifications; lastTold is what the kernel was last told, so the
	// common case makes no kernel call at all.
	runnable int
	lastTold int

	// recovery holds threads recovered from stopped vessels (upcall
	// events) that have not yet been committed to a ready list. The queue
	// is global so that if the vessel draining it is itself preempted, any
	// other vessel finishes the job — no event processing is ever lost.
	recovery []*Thread

	Stats Stats
}

// backend abstracts the two virtual-processor bindings.
type backend interface {
	// start brings up the virtual processors (spawns kernel threads, or
	// requests the first processor from the activations kernel).
	start()
	// maxVPs is the most processors this space can ever use.
	maxVPs() int
	// perCPUProcs reports whether procData is keyed by physical processor
	// (activations) or by virtual-processor index (kernel threads, which
	// migrate between processors).
	perCPUProcs() bool
	// blockIO blocks the calling thread (running on v) in the kernel for a
	// disk request; the behaviour on the two bindings differs in exactly
	// the way the paper describes.
	blockIO(v *procData, t *Thread)
	// moreWork is invoked on transitions to more runnable work than
	// processors, charged through w; the activations backend notifies the
	// kernel (Table 3), the kernel-threads backend has no such channel.
	moreWork(w *machine.Worker, deficit int)
	// idleProtocol runs when a virtual processor has had no work for the
	// hysteresis period. It reports whether the processor was surrendered
	// (the scheduler loop must then stop).
	idleProtocol(v *procData) (lost bool)
	// name for diagnostics.
	name() string
}

// Start brings the thread system online. For the kernel-threads binding
// this spawns the virtual processors; for the activations binding it asks
// the kernel for the first processor, which arrives as an AddProcessor
// upcall. Threads Spawned beforehand begin running as processors come up.
func (s *Sched) Start() { s.back.start() }

// procData is the per-processor state of §4.2: the ready list and free list
// live in (simulated) shared memory and survive virtual-processor turnover,
// keyed by physical processor. current/vessel track what is running there
// right now.
type procData struct {
	s         *Sched
	id        int // physical processor id (or VP index for kernel threads)
	ready     []*Thread
	lock      SpinLock // guards ready and the TCB free list
	stackLock SpinLock // guards the stack free list

	freeTCBs int // modelled free list; allocation cost only

	current *Thread // thread running on this processor, nil if scheduler/idle
	vessel  *vessel // the execution vessel currently serving this processor

	idleParked bool // scheduler coroutine parked waiting for work
	dead       bool // processor lost (activations binding)
}

// vessel is whatever execution context currently powers a processor: a
// kernel thread forever, or the latest scheduler activation.
type vessel struct {
	ctx     *machine.Context
	schedCo *sim.Coroutine // coroutine of the scheduler loop on this vessel
	act     any            // *core.Activation when on activations, else nil
	kt      any            // *kernel.KThread when on kernel threads, else nil

	// inTransit is a thread popped from a ready list whose worker is not
	// yet bound: the window where this vessel's scheduler is paying the
	// switch cost. If the processor is preempted in that window, the
	// Preempted upcall recovers the thread from here instead of losing it.
	inTransit *Thread
}

func newSched(eng sim.Engine, m *machine.Machine, opt Options) *Sched {
	return &Sched{
		eng:      eng,
		m:        m,
		cost:     m.Cost,
		opt:      opt.withDefaults(),
		byWorker: make(map[*machine.Worker]*Thread),
	}
}

// registerMetrics reports the thread system's counters into the engine's
// shared stats registry under "uthread.<space>.". Duplicate space names on
// one engine get deterministic "#n" suffixes from the registry.
func (s *Sched) registerMetrics(space string) {
	reg := s.eng.Metrics()
	pfx := "uthread." + space + "."
	reg.Func(pfx+"forks", func() uint64 { return s.Stats.Forks })
	reg.Func(pfx+"exits", func() uint64 { return s.Stats.Exits })
	reg.Func(pfx+"switches", func() uint64 { return s.Stats.Switches })
	reg.Func(pfx+"steals", func() uint64 { return s.Stats.Steals })
	reg.Func(pfx+"blocks_user", func() uint64 { return s.Stats.BlocksUser })
	reg.Func(pfx+"blocks_kernel", func() uint64 { return s.Stats.BlocksKernel })
	reg.Func(pfx+"recoveries", func() uint64 { return s.Stats.Continuations })
	reg.Func(pfx+"downcalls", func() uint64 { return s.Stats.KernelNotifies })
	reg.Func(pfx+"upcalls", func() uint64 { return s.Stats.Upcalls })
	reg.Func(pfx+"spin_wait_us", func() uint64 { return uint64(sim.DurUs(s.Stats.SpinWait)) })
}

// Engine returns the simulation engine.
func (s *Sched) Engine() sim.Engine { return s.eng }

// Live reports threads created and not yet exited.
func (s *Sched) Live() int { return s.live }

func (s *Sched) proc(id int) *procData {
	for len(s.procs) <= id {
		s.procs = append(s.procs, &procData{s: s, id: len(s.procs)})
	}
	return s.procs[id]
}

// --- ready queues (per-processor LIFO with scan stealing, §4.2) ---

// pushLocal enqueues t on v's ready list. chargeW is the worker paying for
// the operation (the enqueueing thread or scheduler). The list lock is held
// across the charge when charged by a thread (making it a preemption-
// vulnerable critical section, recovered via §3.3); the scheduler uses the
// charge-then-commit pattern and holds locks for zero simulated time.
func (s *Sched) pushLocal(v *procData, t *Thread, by *Thread, w *machine.Worker) {
	if by != nil {
		by.enterCS(&v.lock, w)
		w.Exec(s.cost.UTEnq)
		// The state transition must be atomic with the list append: exitCS
		// below can hand control back to an upcall handler (if by was
		// preempted inside this section and continued, §3.3), and by then t
		// may be popped, dispatched, and blocked again on another processor —
		// a deferred "t.state = utReady" here would smash that later state.
		v.ready = append(v.ready, t)
		t.state = utReady
		by.exitCS(&v.lock, w)
	} else {
		// Scheduler/upcall path: pay first, then commit atomically once the
		// lock is observed free (the scheduler holds list locks for zero
		// simulated time; see DESIGN.md).
		w.Exec(s.cost.UTEnq)
		s.spinWhileHeld(&v.lock, w)
		v.ready = append(v.ready, t)
		t.state = utReady
	}
}

// popLocal dequeues LIFO from v's own list (scheduler path: charge first,
// commit atomically).
func (s *Sched) popLocal(v *procData, w *machine.Worker) *Thread {
	if len(v.ready) == 0 {
		return nil
	}
	w.Exec(s.cost.UTDeq)
	s.spinWhileHeld(&v.lock, w)
	if len(v.ready) == 0 {
		return nil // emptied while we paid; treat as miss
	}
	i := bestIndex(v.ready)
	t := v.ready[i]
	copy(v.ready[i:], v.ready[i+1:])
	v.ready = v.ready[:len(v.ready)-1]
	return t
}

// steal scans the other processors' lists FIFO (oldest first, §4.2 "a
// processor scans for work if its own ready list is empty").
func (s *Sched) steal(v *procData, w *machine.Worker) *Thread {
	for i := 1; i <= len(s.procs); i++ {
		o := s.procs[(v.id+i)%len(s.procs)]
		if o == v || len(o.ready) == 0 {
			continue
		}
		w.Exec(s.cost.UTDeq)
		s.spinWhileHeld(&o.lock, w)
		if len(o.ready) == 0 {
			continue
		}
		// Steal the highest-priority thread; among equals, the oldest
		// (FIFO from the victim's perspective).
		best := 0
		for j, c := range o.ready {
			if c.prio > o.ready[best].prio {
				best = j
			}
		}
		t := o.ready[best]
		copy(o.ready[best:], o.ready[best+1:])
		o.ready = o.ready[:len(o.ready)-1]
		s.Stats.Steals++
		return t
	}
	return nil
}

// spinWhileHeld burns CPU until the lock is free — the spin-waiting of
// §3.3. If the holder has been preempted (kernel threads binding) this is
// where the pathology of oblivious scheduling shows up as wasted processor
// time.
func (s *Sched) spinWhileHeld(l *SpinLock, w *machine.Worker) {
	for l.held {
		w.Exec(s.opt.SpinSlice)
		s.Stats.SpinWait += s.opt.SpinSlice
		l.Spins++
	}
}

// --- the scheduler loop ---

// schedLoop runs in a vessel's root coroutine and multiplexes threads onto
// the processor until the processor is lost or the vessel is superseded by
// a fresh activation. w must be the vessel root's worker, currently bound.
func (s *Sched) schedLoop(v *procData, w *machine.Worker) {
	me := s.eng.Current()
	idleFor := sim.Duration(0)
	for {
		if s.superseded(v, me) {
			return
		}
		if len(s.recovery) > 0 {
			s.drainRecovery(v, w)
			if s.superseded(v, me) {
				return
			}
		}
		t := s.popLocal(v, w)
		if t == nil {
			t = s.steal(v, w)
		}
		if t != nil {
			idleFor = 0
			// The popped thread is in transit: if this processor is
			// preempted anywhere between here and the bind, the Preempted
			// upcall recovers the thread from the vessel's inTransit slot.
			v.vessel.inTransit = t
			s.runnable--
			// §3.2: if we are about to run a thread while more sit queued,
			// the space has more runnable threads than processors — notify
			// the kernel (once per transition; demandDeficit returns 0 when
			// the kernel has already been told).
			if deficit := s.demandDeficit(); deficit > 0 {
				s.back.moreWork(w, deficit)
			}
			if s.superseded(v, me) {
				// Preempted during the downcall; the upcall recovered (or
				// will recover) the popped thread via inTransit.
				return
			}
			if !s.runThread(v, w, t, me) {
				return
			}
			continue
		}
		// No work anywhere: idle protocol. Spin for the hysteresis period
		// (work may appear), then fall back to the backend's idle action.
		if idleFor < s.opt.Hysteresis {
			w.Exec(s.opt.SpinSlice)
			s.Stats.IdleSpin += s.opt.SpinSlice
			idleFor += s.opt.SpinSlice
			continue
		}
		if s.back.idleProtocol(v) {
			v.dead = true
			return
		}
		if s.superseded(v, me) {
			return
		}
		idleFor = 0
		if s.anyReadyWork() || len(s.recovery) > 0 {
			// Work arrived while we were talking to the kernel — on a ready
			// list, or accepted into the recovery queue by an upcall on
			// another processor (which saw this vessel as busy and so woke
			// nobody).
			continue
		}
		// Park until work arrives here.
		if s.opt.Trace != nil {
			s.trace(trace.Record{CPU: traceCPU(w), Kind: trace.KindULIdle, A: int64(v.id)})
		}
		v.idleParked = true
		me.Park("vp-idle")
		v.idleParked = false
	}
}

// superseded reports whether the scheduler coroutine co no longer serves
// v's current vessel (the processor was lost, or a fresh activation has
// taken over this processor).
func (s *Sched) superseded(v *procData, co *sim.Coroutine) bool {
	return v.dead || v.vessel == nil || v.vessel.schedCo != co
}

func (s *Sched) anyReadyWork() bool {
	for _, v := range s.procs {
		if len(v.ready) > 0 {
			return true
		}
	}
	return false
}

// runThread switches the processor from the scheduler to t and parks the
// scheduler coroutine until control returns. It reports false if the
// scheduler must exit (its vessel lost the processor meanwhile).
func (s *Sched) runThread(v *procData, w *machine.Worker, t *Thread, me *sim.Coroutine) bool {
	w.Exec(s.cost.UTSwitch)
	if s.saMode() && t.needsResumeCheck {
		// §5.1: checking whether a resumed thread was preempted (and
		// restoring condition codes if so) costs a little extra.
		w.Exec(s.cost.SAResumeCheck)
	}
	t.needsResumeCheck = false
	s.Stats.Switches++
	if s.opt.Trace != nil {
		s.trace(trace.Record{CPU: traceCPU(w), Kind: trace.KindULDispatch, Name: t.name})
	}
	ctx := w.Bound()
	v.current = t
	t.vp = v
	t.state = utRunning
	w.Unbind()
	t.w.Bind(ctx)
	v.vessel.inTransit = nil // the machine tracks the thread through its worker now
	if !t.w.WantsCPU() {
		t.co.Unpark()
	}
	me.Park("running-thread")
	// Control returned: the thread blocked, exited, or yielded — or this
	// vessel lost its processor while the thread ran.
	if s.superseded(v, me) {
		return false
	}
	w.Bind(ctx)
	return true
}

// returnToScheduler hands the processor back from the calling thread's
// coroutine to v's scheduler loop. The caller must already have unbound the
// thread's worker and settled its state.
func (s *Sched) returnToScheduler(v *procData) {
	v.current = nil
	if v.vessel == nil || v.vessel.schedCo == nil {
		panic("uthread: no scheduler to return to")
	}
	v.vessel.schedCo.Unpark()
}

// wakeIdleProc unparks some idle processor's scheduler, if any. Returns
// true if one was woken.
func (s *Sched) wakeIdleProc() bool {
	for _, v := range s.procs {
		if v.idleParked && !v.dead {
			v.idleParked = false
			v.vessel.schedCo.Unpark()
			return true
		}
	}
	return false
}

// makeReady transitions t to ready on processor v (or the readying
// thread's own processor when v is nil), waking an idle processor or
// notifying the kernel of new demand per §3.2. by is the thread performing
// the transition (nil when done by the scheduler or an upcall handler), w
// the worker charged.
func (s *Sched) makeReady(t *Thread, by *Thread, w *machine.Worker) {
	if s.opt.Trace != nil {
		s.trace(trace.Record{CPU: traceCPU(w), Kind: trace.KindULReady, Name: t.name})
	}
	v := s.homeProc(by, w)
	s.pushLocal(v, t, by, w)
	s.runnable++
	if s.wakeIdleProc() {
		return
	}
	if deficit := s.demandDeficit(); deficit > 0 {
		s.back.moreWork(w, deficit)
	}
	// §3.1 extension: if every processor is busy and one of them runs a
	// strictly lower-priority thread, ask the kernel to interrupt it.
	s.maybePreemptForPriority(t, w)
}

// homeProc picks the processor whose ready list receives new work: the
// processor the charging worker is currently running on (cache locality),
// falling back to processor 0.
func (s *Sched) homeProc(by *Thread, w *machine.Worker) *procData {
	if ctx := w.Bound(); ctx != nil {
		if cpu := ctx.CPU(); cpu != nil {
			id := int(cpu.ID())
			if s.back.perCPUProcs() {
				return s.proc(id)
			}
		}
	}
	if by != nil && by.vp != nil {
		return by.vp
	}
	for _, v := range s.procs {
		if !v.dead {
			return v
		}
	}
	return s.proc(0)
}

// demandDeficit reports how many more processors the space could use than
// it has told the kernel about (0 in the common case — §3.2's point is that
// most transitions need no kernel communication).
func (s *Sched) demandDeficit() int {
	have := s.haveVPs()
	desired := s.runnable + s.runningCount() + len(s.recovery)
	if max := s.back.maxVPs(); desired > max {
		desired = max
	}
	if desired <= have || desired <= s.lastTold {
		return 0
	}
	return desired - have
}

func (s *Sched) haveVPs() int {
	n := 0
	for _, v := range s.procs {
		if v.vessel != nil && !v.dead {
			n++
		}
	}
	return n
}

func (s *Sched) runningCount() int {
	n := 0
	for _, v := range s.procs {
		if v.current != nil {
			n++
		}
		if v.vessel != nil && v.vessel.inTransit != nil {
			n++
		}
	}
	return n
}

func (s *Sched) saMode() bool { return s.back != nil && s.back.name() == "activations" }

// trace stamps the current virtual time onto r and emits it. Call sites
// guard on s.opt.Trace != nil so untraced hot paths pay only that check.
func (s *Sched) trace(r trace.Record) {
	r.T = s.eng.Now()
	s.opt.Trace.Emit(r)
}

// traceCPU resolves the physical processor a worker is currently bound to,
// -1 if unbound.
func traceCPU(w *machine.Worker) int32 {
	if ctx := w.Bound(); ctx != nil {
		if cpu := ctx.CPU(); cpu != nil {
			return int32(cpu.ID())
		}
	}
	return -1
}

func (s *Sched) String() string {
	return fmt.Sprintf("uthread.Sched(%s, %d procs, %d live)", s.back.name(), len(s.procs), s.live)
}

// DebugState summarizes live threads and processors, for diagnosing stuck
// simulations in tests.
func (s *Sched) DebugState() string {
	out := fmt.Sprintf("runnable=%d lastTold=%d have=%d\n", s.runnable, s.lastTold, s.haveVPs())
	for _, t := range s.byWorker {
		out += fmt.Sprintf("  thread %s state=%v crit=%d park=%q wantCPU=%v bound=%v\n",
			t.name, t.state, t.critDepth, t.co.ParkReason(), t.w.WantsCPU(), t.w.Bound() != nil)
	}
	for _, v := range s.procs {
		cur := "-"
		if v.current != nil {
			cur = v.current.name
		}
		out += fmt.Sprintf("  proc %d ready=%d vessel=%v idleParked=%v dead=%v current=%s\n",
			v.id, len(v.ready), v.vessel != nil, v.idleParked, v.dead, cur)
	}
	return out
}

// drainRecovery commits recovered threads (from upcall events) to ready
// lists, continuing any that were stopped inside a critical section (§3.3).
// Every step is charge-then-commit: if this vessel is preempted mid-drain,
// the queue still holds whatever was not committed, and the thread being
// continued is tracked through its bound worker.
func (s *Sched) drainRecovery(v *procData, w *machine.Worker) {
	for len(s.recovery) > 0 {
		// §3.3 ordering: continue any thread stopped inside a critical
		// section before committing plain recoveries — anywhere in the
		// queue, not just at the head. A plain commit spins for the
		// ready-list lock, and a preempted thread queued behind it may be
		// the very holder; spinning before continuing the holder wedges
		// the drain behind its own queue.
		if !s.opt.NoCSRecovery {
			cs := -1
			for i, t := range s.recovery {
				if t.critDepth > 0 {
					cs = i
					break
				}
			}
			if cs >= 0 {
				// Continue the thread until it exits its critical section.
				// Pop first: from here the machine tracks it via its worker,
				// and if we are preempted mid-continuation the next upcall
				// re-queues it (with continueTo re-pointed here is stale, but
				// recover overwrites it).
				t := s.recovery[cs]
				s.recovery = append(s.recovery[:cs:cs], s.recovery[cs+1:]...)
				s.continueCS(v, w, t)
				if s.superseded(v, s.eng.Current()) {
					// Lost the processor during the continuation; the thread
					// was re-recovered by the upcall that took it.
					return
				}
				// Critical section exited; commit like a normal recovery.
				s.recovery = append([]*Thread{t}, s.recovery...)
				continue
			}
		}
		t := s.recovery[0]
		w.Exec(s.cost.UTEnq)
		if s.superseded(v, s.eng.Current()) {
			return
		}
		s.spinWhileHeld(&v.lock, w)
		if s.superseded(v, s.eng.Current()) {
			return
		}
		if len(s.recovery) == 0 || s.recovery[0] != t {
			continue // another vessel committed it while we paid
		}
		// Atomic commit: ready-list push and queue pop together.
		s.recovery = s.recovery[1:]
		v.ready = append(v.ready, t)
		t.state = utReady
		s.runnable++
		s.wakeIdleProc()
	}
	if deficit := s.demandDeficit(); deficit > 0 {
		s.back.moreWork(w, deficit)
	}
}

// continueCS temporarily switches to a thread stopped inside a critical
// section, letting it run until it exits the section and yields back
// ("the thread is continued temporarily via a user-level context switch",
// §3.3). The caller's worker is unbound for the duration.
func (s *Sched) continueCS(v *procData, w *machine.Worker, t *Thread) {
	s.Stats.Continuations++
	me := s.eng.Current()
	ctx := w.Bound()
	w.Unbind()
	t.continueTo = me
	t.vp = v
	t.w.Bind(ctx)
	if !t.w.WantsCPU() {
		t.co.Unpark()
	}
	me.Park("continuing-cs")
	// Either the thread exited its section and handed back (worker
	// unbound), or this vessel lost its processor and a fresh upcall will
	// re-run the recovery; in the normal case, rebind our worker.
	if !s.superseded(v, me) {
		w.Bind(ctx)
	}
}
