package uthread

import (
	"schedact/internal/core"
	"schedact/internal/machine"
)

// saBackend is "modified FastThreads": virtual processors are scheduler
// activations. The kernel vectors every relevant event (Table 2) to
// Upcall, which recovers thread state from stopped vessels — continuing
// preempted critical sections per §3.3 — and then runs the scheduler loop
// in the fresh vessel. The space notifies the kernel only on the demand
// transitions of Table 3.
type saBackend struct {
	s       *Sched
	k       *core.Kernel
	space   *core.Space
	max     int
	vessels map[*core.Activation]*vessel // live vessel records by activation
}

// OnActivations builds a FastThreads instance on the scheduler-activation
// kernel. maxVPs caps how many processors the space will ever request
// (typically the machine size). Call Start to receive the first processor.
func OnActivations(k *core.Kernel, name string, priority, maxVPs int, opt Options) *Sched {
	if maxVPs <= 0 {
		maxVPs = k.M.NumCPUs()
	}
	s := newSched(k.Eng, k.M, opt)
	b := &saBackend{s: s, k: k, max: maxVPs, vessels: make(map[*core.Activation]*vessel)}
	b.space = k.NewSpace(name, priority, b)
	s.back = b
	s.registerMetrics(name)
	return s
}

func (b *saBackend) name() string      { return "activations" }
func (b *saBackend) maxVPs() int       { return b.max }
func (b *saBackend) perCPUProcs() bool { return true }

func (b *saBackend) start() { b.space.Start() }

// Space exposes the kernel-side address space, for tests and experiments.
func (b *saBackend) Space() *core.Space { return b.space }

// ActivationSpace reports the kernel-side address space when the scheduler
// runs on activations, or nil on the kernel-threads binding.
func (s *Sched) ActivationSpace() *core.Space {
	if b, ok := s.back.(*saBackend); ok {
		return b.space
	}
	return nil
}

// Upcall is the fixed entry point of the address space (core.Client). It
// runs in the root coroutine of the fresh activation, already on a
// processor.
func (b *saBackend) Upcall(act *core.Activation, events []core.Event) {
	s := b.s
	s.Stats.Upcalls++
	v := s.proc(int(act.CPU()))
	v.vessel = &vessel{ctx: act.Context(), schedCo: s.eng.Current(), act: act}
	b.vessels[act] = v.vessel
	v.dead = false
	v.idleParked = false
	s.lastTold = 0 // allocation is changing; demand hints are stale
	rootW := act.Context().Root()

	for _, ev := range events {
		switch ev.Kind {
		case core.EvAddProcessor:
			// This vessel itself is the new processor; the scheduler loop
			// below puts it to work.

		case core.EvBlocked:
			// "The blocked scheduler activation is no longer using its
			// processor." Note which thread went into the kernel; its
			// machine state stays with the blocked activation until the
			// Unblocked event returns it. Retire the blocked vessel's
			// processor record too: normally the fresh activation delivering
			// this event overwrites it on the same processor, but if that
			// delivery was stillborn the event reaches us on another
			// processor, and the stale record would make a phantom vessel —
			// haveVPs over-counting, dead wake targets, demand never
			// re-registered.
			old := ev.Act
			if orphan := b.retireVessel(old); orphan != nil {
				b.accept(orphan)
			}
			if t := s.byWorker[old.Context().Worker()]; t != nil {
				t.state = utKernel
				if t.vp != nil && t.vp.current == t {
					t.vp.current = nil
				}
			}

		case core.EvUnblocked:
			// "Return to the ready list the user-level thread that was
			// executing in the context of the blocked scheduler activation."
			// Pending-queue reordering can deliver this before the matching
			// Blocked event, so retire the vessel record here as well.
			old := ev.Act
			if orphan := b.retireVessel(old); orphan != nil {
				b.accept(orphan)
			}
			w := old.TakeWorker()
			old.Discard()
			if t := s.byWorker[w]; t != nil {
				b.accept(t)
			}

		case core.EvPreempted:
			// "Return to the ready list the user-level thread that was
			// executing in the context of the preempted scheduler
			// activation." If the vessel was running the scheduler or
			// idling, there is no thread to recover (§3.1: "if a preempted
			// processor was in the idle loop, no action is necessary") —
			// unless the scheduler was mid-switch, in which case the thread
			// it had dequeued rides out through the inTransit slot.
			old := ev.Act
			orphan := b.retireVessel(old)
			w := old.Context().Worker()
			if w != nil && w != old.Context().Root() {
				if t := s.byWorker[w]; t != nil {
					if t.vp != nil && t.vp.current == t {
						t.vp.current = nil
					}
					old.TakeWorker()
					b.accept(t)
				}
			}
			old.Discard()
			if orphan != nil {
				b.accept(orphan)
			}
		}
	}
	// The kernel may hand us a processor beyond this configuration's
	// parallelism cap (e.g. an unblock delivered on a free processor).
	// Give it straight back once the events are processed — but any thread
	// state this upcall recovered (an unblocked or preempted thread now in
	// the recovery list) must not leave with it: if every remaining vessel
	// is parked idle, none would ever drain the recovery list, stranding
	// the thread. Wake one first.
	if s.haveVPs() > b.max {
		v.vessel = nil
		delete(b.vessels, act)
		s.lastTold = 0
		if len(s.recovery) > 0 || s.runnable > 0 {
			s.wakeIdleProc()
		}
		act.YieldProcessor()
		return
	}
	s.schedLoop(v, rootW)
}

// retireVessel clears the records of a vessel that lost its processor, so
// stale wake-ups cannot reach it. It returns the thread the vessel's
// scheduler had dequeued but not yet bound, if any.
func (b *saBackend) retireVessel(old *core.Activation) (orphan *Thread) {
	ves := b.vessels[old]
	if ves != nil {
		delete(b.vessels, old)
		orphan = ves.inTransit
		ves.inTransit = nil
	}
	// Match processor records by activation identity, not just the map
	// entry: a reordered Unblocked can arrive after the map entry is gone
	// while the stale record still sits on a processor.
	for _, v := range b.s.procs {
		if v.vessel != nil && (v.vessel == ves || v.vessel.act == old) {
			v.vessel = nil
			v.current = nil
			v.idleParked = false
		}
	}
	return orphan
}

// accept takes custody of a thread recovered from a stopped vessel. This
// is a zero-cost acceptance: the charged work of committing the thread to a
// ready list (and continuing it if it was stopped inside a critical
// section, §3.3) happens in Sched.drainRecovery — from this vessel's
// scheduler loop, or from any other vessel if this one is preempted before
// it gets there. Accepting all of an upcall's events before doing any
// chargeable work is what makes event delivery loss-proof.
func (b *saBackend) accept(t *Thread) {
	t.needsResumeCheck = true
	b.s.recovery = append(b.s.recovery, t)
}

// blockIO on activations: the kernel takes the blocking thread's machine
// state, immediately returns the processor to the space with a Blocked
// upcall, and delivers the thread back with an Unblocked upcall when the
// I/O completes (§3.1).
func (b *saBackend) blockIO(v *procData, t *Thread) {
	act := b.actOf(t.w)
	b.k.BlockIO(act)
	// Resumed in (possibly) a different vessel: refresh the thread's
	// processor binding.
	b.refreshVP(t)
}

// moreWork issues the Table 3 "add more processors" notification through
// the vessel the charging worker currently runs on.
func (b *saBackend) moreWork(w *machine.Worker, deficit int) {
	act := b.actOf(w)
	b.s.Stats.KernelNotifies++
	b.space.AddMoreProcessors(act, deficit)
	b.s.lastTold = b.s.haveVPs() + deficit
}

// idleProtocol issues the Table 3 "this processor is idle" notification.
// If another space needed the processor, it is gone: the vessel must shut
// down.
func (b *saBackend) idleProtocol(v *procData) bool {
	s := b.s
	act := v.vessel.act.(*core.Activation)
	s.Stats.KernelNotifies++
	taken := b.space.ProcessorIsIdle(act)
	if taken {
		v.vessel = nil
		delete(b.vessels, act)
		// Work may have become ready while the downcall was trapping in —
		// a race the paper's interface leaves open. If this was the last
		// vessel standing, the stale "idle" hint would strand that work
		// forever, so re-register the space's true demand on the way out
		// (the kernel-internal demand path; the vessel no longer has a
		// processor to make a charged downcall with).
		if s.runnable > 0 {
			want := s.runnable + s.runningCount()
			if want > b.max {
				want = b.max
			}
			s.lastTold = want
			b.space.KernelSetDemand(want)
		} else {
			// Demand fell to nothing; the next burst of work must notify
			// the kernel afresh.
			s.lastTold = 0
		}
		return true
	}
	s.lastTold = 0 // demand dropped; future growth must re-notify
	return false
}

// actOf maps a bound worker to the activation hosting it.
func (b *saBackend) actOf(w *machine.Worker) *core.Activation {
	ctx := w.Bound()
	if ctx == nil {
		panic("uthread: worker not bound to any vessel")
	}
	act, ok := ctx.Owner.(*core.Activation)
	if !ok {
		panic("uthread: worker bound to a non-activation context")
	}
	return act
}
