package uthread

import (
	"fmt"

	"schedact/internal/machine"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// utState is a user-level thread's scheduling state.
type utState int

const (
	utNew utState = iota
	utReady
	utRunning
	utBlocked // user-level wait (mutex, cond, join)
	utKernel  // blocked in the kernel (I/O)
	utDone
)

func (s utState) String() string {
	switch s {
	case utNew:
		return "new"
	case utReady:
		return "ready"
	case utRunning:
		return "running"
	case utBlocked:
		return "blocked"
	case utKernel:
		return "kernel-blocked"
	case utDone:
		return "done"
	}
	return "invalid"
}

// Thread is a user-level thread: a control block, a stack, and a machine
// Worker that charges CPU through whatever virtual processor the thread is
// currently scheduled on. All operations on a Thread run at user level; the
// kernel is involved only when the thread blocks in it.
type Thread struct {
	s     *Sched
	id    int
	name  string
	w     *machine.Worker
	co    *sim.Coroutine
	state utState
	prio  int       // scheduling priority; higher runs first (§3.1 extension)
	vp    *procData // processor currently (or last) running this thread

	// Critical-section recovery state (§3.3): critDepth counts held spin
	// locks; with the zero-overhead marking of §4.3 maintaining it costs
	// nothing on the common path. continueTo, when set, is the upcall
	// handler coroutine to yield back to once the outermost critical
	// section exits.
	critDepth  int
	continueTo *sim.Coroutine

	// needsResumeCheck marks a thread that blocked or was preempted; on
	// the activations binding, switching such a thread in pays the §5.1
	// "was a preempted thread being resumed" check (condition-code
	// restore).
	needsResumeCheck bool

	// Sleep/wakeup race protocol, mirroring the kernel's: a wakeup racing
	// with the charged tail of a block entry is latched and absorbed.
	blockPending bool
	wakePending  bool

	joiners []*Thread
	done    bool
}

// Name reports the thread's debug name.
func (t *Thread) Name() string { return t.name }

// State reports the scheduling state, for tests and instrumentation.
func (t *Thread) State() string { return t.state.String() }

// Worker exposes the thread's machine worker, for tests.
func (t *Thread) Worker() *machine.Worker { return t.w }

// InCriticalSection reports whether the thread holds any spin lock.
func (t *Thread) InCriticalSection() bool { return t.critDepth > 0 }

// newThread builds a TCB and coroutine without charging costs.
func (s *Sched) newThread(name string, fn func(*Thread)) *Thread {
	s.nextTID++
	t := &Thread{s: s, id: s.nextTID, name: name, state: utNew}
	t.co = s.eng.Go(name, func(*sim.Coroutine) {
		fn(t)
		t.exit()
	})
	t.w = s.m.NewWorker(name, t.co)
	s.byWorker[t.w] = t
	s.live++
	return t
}

// Spawn creates a ready thread from outside the thread system (the
// program's initial threads), charging no fork costs. It must be called
// before or between runs, or from plain event context.
func (s *Sched) Spawn(name string, fn func(*Thread)) *Thread {
	t := s.newThread(name, fn)
	v := s.proc(0)
	if best := s.leastLoadedProc(); best != nil {
		v = best
	}
	v.ready = append(v.ready, t)
	t.state = utReady
	s.runnable++
	s.wakeIdleProc()
	return t
}

func (s *Sched) leastLoadedProc() *procData {
	var best *procData
	for _, v := range s.procs {
		if v.dead {
			continue
		}
		if best == nil || len(v.ready) < len(best.ready) {
			best = v
		}
	}
	return best
}

// Fork creates and readies a new thread, charging the FastThreads fork
// path: TCB and stack allocation from the per-processor free list (a
// critical section), initialization, and a ready-list enqueue (another
// critical section). Table 1/4's Null Fork measures this plus the child's
// dispatch, execution, and exit.
func (t *Thread) Fork(name string, fn func(*Thread)) *Thread {
	s := t.s
	s.Stats.Forks++
	v := t.vp
	// Allocate the TCB and the stack from their per-processor free lists:
	// two short critical sections ("FastThreads uses unlocked per-processor
	// free lists of thread control blocks... accesses to these free lists
	// must be done atomically with respect to preemptions", §3.3).
	t.enterCS(&v.lock, t.w)
	t.w.Exec(s.cost.UTAlloc / 2)
	t.exitCS(&v.lock, t.w)
	t.enterCS(&v.stackLock, t.w)
	t.w.Exec(s.cost.UTAlloc / 2)
	t.exitCS(&v.stackLock, t.w)
	t.w.Exec(s.cost.UTInit)
	if s.saMode() {
		// Busy-thread accounting and the notify-the-kernel test (§5.1's
		// +3µs on Null Fork, half here and half at exit).
		t.w.Exec(s.cost.SAAccount)
	}
	child := s.newThread(name, fn)
	child.prio = t.prio // children inherit the parent's priority
	s.makeReady(child, t, t.w)
	return child
}

// Exec consumes d of CPU as application computation.
func (t *Thread) Exec(d sim.Duration) { t.w.Exec(d) }

// Now reports the current virtual time.
func (t *Thread) Now() sim.Time { return t.s.eng.Now() }

// Sched returns the owning scheduler.
func (t *Thread) Sched() *Sched { return t.s }

// Yield places the thread at the back of its processor's ready list and
// reschedules.
func (t *Thread) Yield() {
	s := t.s
	v := t.vp
	t.enterCS(&v.lock, t.w)
	t.w.Exec(s.cost.UTEnq)
	// FIFO for yield: go to the front of the LIFO stack's opposite end.
	// State and count move with the append, inside the critical section:
	// exitCS may hand control to an upcall handler (§3.3 continuation)
	// and anything after it runs arbitrarily later.
	v.ready = append([]*Thread{t}, v.ready...)
	t.state = utReady
	s.runnable++
	t.exitCS(&v.lock, t.w)
	t.switchOut("yield")
}

// exit terminates the thread: wake joiners, return the TCB to the free
// list, hand the processor back to the scheduler.
func (t *Thread) exit() {
	s := t.s
	s.Stats.Exits++
	v := t.vp
	if s.saMode() {
		t.w.Exec(s.cost.SAAccount)
	}
	for _, j := range t.joiners {
		t.wakeBlocked(j)
	}
	t.joiners = nil
	t.done = true
	// Return the TCB and the stack to their free lists (two critical
	// sections, mirroring allocation).
	t.enterCS(&v.lock, t.w)
	t.w.Exec(s.cost.UTFree / 2)
	t.exitCS(&v.lock, t.w)
	t.enterCS(&v.stackLock, t.w)
	t.w.Exec(s.cost.UTFree / 2)
	t.exitCS(&v.stackLock, t.w)
	t.state = utDone
	if s.opt.Trace != nil {
		s.trace(trace.Record{CPU: traceCPU(t.w), Kind: trace.KindULExit, Name: t.name})
	}
	s.live--
	delete(s.byWorker, t.w)
	t.w.Unbind()
	// Note t.vp, not the v captured at entry: a preemption during the
	// charged free-list sections can migrate this thread to another
	// processor before it finishes exiting.
	s.returnToScheduler(t.vp)
	// Coroutine ends here.
}

// Join blocks until other has exited.
func (t *Thread) Join(other *Thread) {
	s := t.s
	t.w.Exec(s.cost.ProcCall)
	if other.done {
		return
	}
	other.joiners = append(other.joiners, t)
	t.block("join:"+other.name, utBlocked)
}

// prepareBlock opens the block-commit window: a wakeup arriving before
// block() is latched rather than lost.
func (t *Thread) prepareBlock() { t.blockPending = true }

// block parks the thread after recording its state and returns the
// processor to the scheduler — unless a wakeup raced in during the
// prepared window, in which case it is absorbed and the thread continues.
// Wake-up is via wakeBlocked (user-level); kernel blocking takes a
// different path.
func (t *Thread) block(reason string, st utState) {
	s := t.s
	t.blockPending = false
	if t.wakePending {
		t.wakePending = false
		return
	}
	s.Stats.BlocksUser++
	if s.opt.Trace != nil {
		s.trace(trace.Record{CPU: traceCPU(t.w), Kind: trace.KindULBlock, Name: t.name, Aux: reason})
	}
	v := t.vp
	t.state = st
	t.needsResumeCheck = true
	t.w.Unbind()
	s.returnToScheduler(v)
	t.co.Park(reason)
	// Resumed by runThread: worker rebound, state running.
}

// wakeBlocked transitions a user-level-blocked thread back to ready,
// charged to the waking thread.
func (t *Thread) wakeBlocked(target *Thread) {
	if target.blockPending {
		// Mid-way into a blocking call (possibly preempted while paying
		// for it); latch the wakeup for block() to absorb.
		target.wakePending = true
		return
	}
	if target.state != utBlocked {
		panic(fmt.Sprintf("uthread: wake of %s in state %v", target.name, target.state))
	}
	t.s.makeReady(target, t, t.w)
}

// switchOut gives up the processor with the thread already queued/ready.
func (t *Thread) switchOut(reason string) {
	v := t.vp
	t.w.Unbind()
	t.s.returnToScheduler(v)
	t.co.Park(reason)
}

// BlockIO performs a blocking disk read through the kernel. On the
// kernel-threads binding the virtual processor blocks with the thread; on
// the activations binding the processor comes straight back to the space
// with a Blocked upcall, and the thread's machine state returns with the
// Unblocked upcall when the I/O completes (§3.1).
func (t *Thread) BlockIO() {
	s := t.s
	s.Stats.BlocksKernel++
	t.needsResumeCheck = true
	v := t.vp
	s.back.blockIO(v, t)
	// Back on some processor; bookkeeping was handled by the backend.
}

// --- critical sections (§3.3, §4.3) ---

// enterCS acquires a spin lock, spinning while it is held (the holder may
// have been preempted; on the activations binding it will be continued and
// the lock released — freedom from deadlock; on the kernel-threads binding
// we simply waste processor time until the holder is rescheduled). With
// the zero-overhead marking technique the bookkeeping itself is free; the
// ExplicitCSFlags ablation charges the flag cost instead.
func (t *Thread) enterCS(l *SpinLock, w *machine.Worker) {
	s := t.s
	w.Exec(s.cost.TAS)
	s.spinWhileHeld(l, w)
	l.held = true
	l.holder = t
	t.critDepth++
	if s.opt.ExplicitCSFlags {
		w.Exec(s.cost.ExplicitCSFlag / 2)
	}
}

// exitCS releases the spin lock. If the thread was preempted inside the
// section and is being temporarily continued by an upcall handler, control
// yields back to the handler here — "when the continued thread exits the
// critical section, it relinquishes control back to the original upcall".
func (t *Thread) exitCS(l *SpinLock, w *machine.Worker) {
	s := t.s
	if l.holder != t {
		panic(fmt.Sprintf("uthread: exitCS by %s, holder %v", t.name, l.holder))
	}
	l.held = false
	l.holder = nil
	t.critDepth--
	if s.opt.ExplicitCSFlags {
		w.Exec(s.cost.ExplicitCSFlag / 2)
	}
	if t.critDepth == 0 && t.continueTo != nil {
		h := t.continueTo
		t.continueTo = nil
		t.state = utReady // the handler will enqueue us
		t.w.Unbind()
		h.Unpark()
		t.co.Park("cs-handoff")
		// Resumed later by runThread on some processor.
	}
}

// Sleep blocks the thread for d of virtual time. The wake-up is a timer
// interrupt: it readies the thread directly (no charged user-level work, as
// with any kernel-delivered wake) and nudges an idle processor if one is
// parked.
func (t *Thread) Sleep(d sim.Duration) {
	s := t.s
	s.eng.AfterNamed(d, "sleep-wake", t.name, func() {
		if t.blockPending {
			t.wakePending = true
			return
		}
		if t.state != utBlocked {
			return // woken by something else meanwhile
		}
		// Timer context: enqueue without charge on the thread's last
		// processor and wake an idle scheduler to pick it up.
		v := t.vp
		if v == nil {
			v = s.proc(0)
		}
		v.ready = append(v.ready, t)
		t.state = utReady
		s.runnable++
		s.wakeIdleProc()
	})
	t.block("sleep", utBlocked)
}
