package uthread

import (
	"testing"

	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/sim"
)

func TestHighPriorityRunsBeforeLowInQueue(t *testing.T) {
	onBoth(t, 1, func(t *testing.T, eng sim.Engine, s *Sched) {
		var order []string
		// Spawned before Start: both queued; the high-priority one must be
		// picked first even though the low one was pushed later (LIFO would
		// favour it).
		s.SpawnPrio("low", 0, func(th *Thread) { order = append(order, "low") })
		s.SpawnPrio("high", 5, func(th *Thread) { order = append(order, "high") })
		s.Start()
		eng.RunUntil(sim.Time(sim.Second))
		if len(order) != 2 || order[0] != "high" {
			t.Fatalf("order = %v, want high first", order)
		}
	})
}

func TestForkInheritsAndOverridesPriority(t *testing.T) {
	eng, _, s := newSA(t, 1, Options{})
	var got []int
	s.SpawnPrio("main", 3, func(th *Thread) {
		a := th.Fork("inherit", func(*Thread) {})
		b := th.ForkPrio("override", 7, func(*Thread) {})
		got = append(got, a.Priority(), b.Priority())
		th.Join(a)
		th.Join(b)
	})
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("priorities = %v, want [3 7]", got)
	}
}

// prioScenario saturates every processor with long low-priority threads and
// has one of them wake a blocked high-priority thread after 10ms of work.
// It reports when the high-priority thread started and when the first
// low-priority thread finished.
func prioScenario(eng sim.Engine, s *Sched, procs int) (highStart, firstLowDone *sim.Time) {
	highStart, firstLowDone = new(sim.Time), new(sim.Time)
	cond := s.NewCond()
	s.SpawnPrio("high", 5, func(h *Thread) {
		cond.Wait(h, nil)
		*highStart = h.Now()
		h.Exec(sim.Ms(1))
	})
	for i := 0; i < procs; i++ {
		i := i
		s.Spawn("low", func(l *Thread) {
			if i == 0 {
				l.Exec(sim.Ms(10))
				cond.Signal(l) // wake the high-priority thread mid-run
				l.Exec(90 * sim.Millisecond)
			} else {
				l.Exec(100 * sim.Millisecond)
			}
			if *firstLowDone == 0 {
				*firstLowDone = l.Now()
			}
		})
	}
	s.Start()
	return highStart, firstLowDone
}

func TestPriorityPreemptionOnActivations(t *testing.T) {
	// §1.2's functionality claim: "No high-priority thread waits for a
	// processor while a low-priority thread runs." Both processors run
	// long low-priority threads; when one of them wakes the high-priority
	// thread, the user level asks the kernel to interrupt a processor
	// (§3.1) and the high-priority thread starts immediately.
	eng, k, s := newSA(t, 2, Options{})
	highStart, firstLowDone := prioScenario(eng, s, 2)
	eng.RunUntil(sim.Time(5 * sim.Second))
	if *highStart == 0 || *firstLowDone == 0 {
		t.Fatal("threads did not finish")
	}
	if *highStart >= *firstLowDone {
		t.Fatalf("high-priority thread started at %v, after a low-priority thread finished (%v): it waited while low-priority work ran", *highStart, *firstLowDone)
	}
	if *highStart > sim.Time(20*sim.Millisecond) {
		t.Fatalf("high-priority thread started at %v, want promptly after the 10ms wake", *highStart)
	}
	if s.Stats.PriorityPreempts == 0 {
		t.Fatal("no priority preemption was requested from the kernel")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
}

func TestPriorityWaitsOnKernelThreadsBinding(t *testing.T) {
	// The §2.2 deficiency: on the kernel-threads binding there is no
	// channel to reclaim a processor, so the woken high-priority thread
	// waits until some low-priority thread finishes.
	eng, _, s := newKT(t, 2, 2, Options{})
	highStart, firstLowDone := prioScenario(eng, s, 2)
	eng.RunUntil(sim.Time(5 * sim.Second))
	if *highStart == 0 {
		t.Fatal("high-priority thread never ran")
	}
	if *highStart < *firstLowDone {
		t.Fatalf("high-priority thread started at %v, before any low-priority thread finished (%v): original FastThreads has no way to do that", *highStart, *firstLowDone)
	}
	if s.Stats.PriorityPreempts != 0 {
		t.Fatal("kernel-threads binding must not request kernel preemptions")
	}
}

func TestInterruptedLowPriorityThreadResumesLater(t *testing.T) {
	// The preempted low-priority thread must lose no work: it finishes
	// after the high-priority thread, with its full compute time served.
	eng, k, s := newSA(t, 1, Options{})
	var lowDone, highDone sim.Time
	s.Spawn("starter", func(th *Thread) {
		th.Fork("low", func(l *Thread) {
			l.Exec(50 * sim.Millisecond)
			lowDone = l.Now()
		})
		th.Exec(sim.Ms(5))
		th.ForkPrio("high", 5, func(h *Thread) {
			h.Exec(sim.Ms(5))
			highDone = h.Now()
		})
	})
	s.Start()
	eng.RunUntil(sim.Time(5 * sim.Second))
	if highDone == 0 || lowDone == 0 {
		t.Fatal("threads did not finish")
	}
	if highDone >= lowDone {
		t.Fatalf("high (%v) should finish before the interrupted low thread (%v)", highDone, lowDone)
	}
	// The low thread must have been served its full 50ms of compute.
	if lowDone < sim.Time(50*sim.Millisecond) {
		t.Fatalf("low thread finished at %v with work missing", lowDone)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
	_ = kernel.NumPriorities // keep the kernel import for the KT variant above
	_ = core.EvPreempted
}
