package core

import (
	"testing"
	"testing/quick"

	"schedact/internal/sim"
)

// greedyClient is a recClient that immediately demands max processors.
func greedyClient(eng sim.Engine, want int) (*recClient, func(*Space)) {
	c := &recClient{eng: eng}
	var sp *Space
	first := true
	c.handler = func(act *Activation, events []Event) {
		if first {
			first = false
			sp.AddMoreProcessors(act, want)
		}
		c.eng.Current().Park("vessel-idle")
	}
	return c, func(s *Space) { sp = s }
}

func TestLeftoverProcessorRotatesAmongEqualSpaces(t *testing.T) {
	// 3 processors, 2 equal spaces wanting everything: 1+1 with the odd
	// processor time-sliced between them by the periodic rotation.
	eng, k := newTestKernel(t, 3)
	k.EnableLeftoverRotation(20 * sim.Millisecond)
	var spaces []*Space
	for i := 0; i < 2; i++ {
		c, bind := greedyClient(eng, 3)
		sp := k.NewSpace("sp", 0, c)
		bind(sp)
		spaces = append(spaces, sp)
		sp.Start()
	}
	// Sample who holds 2 processors over time; both spaces must get turns.
	heldTwo := map[int]int{}
	for ms := 30; ms <= 400; ms += 20 {
		ms := ms
		eng.At(sim.Time(sim.Duration(ms)*sim.Millisecond), "sample", func() {
			for i, sp := range spaces {
				if k.Allocated(sp) == 2 {
					heldTwo[i]++
				}
			}
		})
	}
	eng.RunUntil(sim.Time(500 * sim.Millisecond))
	if heldTwo[0] == 0 || heldTwo[1] == 0 {
		t.Fatalf("odd processor did not rotate: held-two counts %v", heldTwo)
	}
	checkInv(t, k)
}

func TestDemandRebalanceDoesNotRotateTargets(t *testing.T) {
	// Three equally hungry spaces on two processors: the remainder targets
	// must depend on the rotation index alone, not on how many rebalances
	// have run. When every demand-triggered rebalance rotated the targets,
	// each grant's upcall handler re-registered demand, the downcall rotated
	// the processor to the next space, and the machine passed its processors
	// around in a grant/preempt cycle without ever running user code (chaos
	// sweep seeds 33 and 47 wedged exactly this way).
	eng, k := newTestKernel(t, 2)
	var sps []*Space
	for i := 0; i < 3; i++ {
		sp := k.NewSpace("sp", 0, &recClient{eng: eng})
		sp.started = true
		sp.want = 2
		sps = append(sps, sp)
	}
	base := k.targets()
	for i := 0; i < 5; i++ {
		k.Stats.Rebalances++ // what a demand-triggered rebalance tallies
		next := k.targets()
		for j, sp := range sps {
			if next[sp] != base[sp] {
				t.Fatalf("rebalance tally %d shifted sp%d's target: %d -> %d",
					i, j, base[sp], next[sp])
			}
		}
	}
	k.rotation++ // what the rotation timer (and ForceRebalance) advances
	next := k.targets()
	same := true
	for _, sp := range sps {
		if next[sp] != base[sp] {
			same = false
		}
	}
	if same {
		t.Fatal("advancing the rotation index did not move the odd processors")
	}
}

// Property tests over the space-sharing target computation.
func TestTargetsProperties(t *testing.T) {
	f := func(wantsRaw []uint8, priosRaw []uint8, cpusRaw uint8) bool {
		n := len(wantsRaw)
		if n == 0 || n > 6 {
			return true
		}
		if len(priosRaw) < n {
			return true
		}
		cpus := int(cpusRaw%8) + 1
		eng := sim.NewEngine()
		defer eng.Close()
		k := New(eng, Config{CPUs: cpus})
		var spaces []*Space
		for i := 0; i < n; i++ {
			c := &recClient{eng: eng}
			sp := k.NewSpace("sp", int(priosRaw[i]%3), c)
			sp.started = true
			sp.want = int(wantsRaw[i] % 10)
			spaces = append(spaces, sp)
		}
		target := k.targets()
		total := 0
		for _, sp := range spaces {
			g := target[sp]
			// Never more than asked for; never negative.
			if g < 0 || g > sp.want {
				return false
			}
			total += g
		}
		// Never more than the machine has.
		if total > cpus {
			return false
		}
		// Work-conserving: if total demand >= cpus, everything is assigned.
		demand := 0
		for _, sp := range spaces {
			demand += sp.want
		}
		if demand >= cpus && total != cpus {
			return false
		}
		if demand < cpus && total != demand {
			return false
		}
		// Priority dominance: a higher-priority space is unsatisfied only
		// if everything was consumed by equal-or-higher priorities.
		for _, hi := range spaces {
			if target[hi] < hi.want {
				for _, lo := range spaces {
					if lo.Priority < hi.Priority && target[lo] > 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualSplitExactWhenDivisible(t *testing.T) {
	for _, tc := range []struct{ cpus, spaces, each int }{
		{6, 2, 3}, {6, 3, 2}, {8, 4, 2}, {4, 1, 4},
	} {
		eng := sim.NewEngine()
		k := New(eng, Config{CPUs: tc.cpus})
		var sps []*Space
		for i := 0; i < tc.spaces; i++ {
			sp := k.NewSpace("sp", 0, &recClient{eng: eng})
			sp.started = true
			sp.want = tc.cpus
			sps = append(sps, sp)
		}
		target := k.targets()
		for _, sp := range sps {
			if target[sp] != tc.each {
				t.Errorf("%d CPUs / %d spaces: got %d, want %d", tc.cpus, tc.spaces, target[sp], tc.each)
			}
		}
		eng.Close()
	}
}

func TestFCFSPolicyStarvesLateArrivers(t *testing.T) {
	eng, k := newTestKernel(t, 4)
	k.SetPolicy(FirstComeFCFS)
	a := k.NewSpace("first", 0, &recClient{eng: eng})
	b := k.NewSpace("second", 0, &recClient{eng: eng})
	a.started, a.want = true, 4
	b.started, b.want = true, 4
	target := k.targets()
	if target[a] != 4 || target[b] != 0 {
		t.Fatalf("FCFS targets = %d/%d, want 4/0", target[a], target[b])
	}
}

func TestMultiLevelFeedbackEqualizesUsage(t *testing.T) {
	// One processor, two always-hungry spaces: under the feedback policy
	// with periodic re-evaluation, the processor alternates so accumulated
	// usage stays balanced — favouring whichever space has used less.
	eng, k := newTestKernel(t, 1)
	k.SetPolicy(MultiLevelFeedback)
	k.EnableLeftoverRotation(10 * sim.Millisecond)
	mkHog := func(name string) *Space {
		c := &recClient{eng: eng}
		c.handler = func(act *Activation, events []Event) {
			for _, ev := range events {
				if ev.Kind == EvPreempted && ev.Act != nil {
					if w := ev.Act.TakeWorker(); w != nil {
						_ = w
					}
					ev.Act.Discard()
				}
			}
			act.Context().Exec(sim.Second) // hog until preempted
			c.eng.Current().Park("vessel")
		}
		sp := k.NewSpace(name, 0, c)
		sp.Start()
		sp.KernelSetDemand(1)
		return sp
	}
	a := mkHog("a")
	b := mkHog("b")
	eng.RunUntil(sim.Time(500 * sim.Millisecond))
	ua, ub := float64(a.Usage), float64(b.Usage)
	if ua == 0 || ub == 0 {
		t.Fatalf("usage = %v/%v: one space starved", a.Usage, b.Usage)
	}
	ratio := ua / ub
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("usage ratio %.2f (%v vs %v): feedback policy should keep usage balanced", ratio, a.Usage, b.Usage)
	}
	checkInv(t, k)
}

func TestUsageAccountingAccumulates(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	c := &recClient{eng: eng}
	var sp *Space
	c.handler = func(act *Activation, events []Event) {
		act.Context().Exec(20 * sim.Millisecond)
		act.YieldProcessor()
	}
	sp = k.NewSpace("app", 0, c)
	sp.Start()
	eng.Run()
	// Usage covers the upcall cost plus the 20ms of computation.
	if sp.Usage < 20*sim.Millisecond || sp.Usage > 30*sim.Millisecond {
		t.Fatalf("Usage = %v, want ~20-25ms", sp.Usage)
	}
}
