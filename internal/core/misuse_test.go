package core

import (
	"testing"

	"schedact/internal/sim"
)

// Misuse of the kernel interface must fail loudly and precisely: these are
// protocol violations a thread-system author needs caught at the call site.

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestDoubleStartPanics(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", 0, &recClient{eng: eng})
	sp.Start()
	expectPanic(t, "second Start", sp.Start)
}

func TestDiscardRunningActivationPanics(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	c := &recClient{eng: eng}
	c.handler = func(act *Activation, events []Event) {
		expectPanic(t, "Discard of a running activation", act.Discard)
		c.eng.Current().Park("vessel")
	}
	k.NewSpace("app", 0, c).Start()
	eng.Run()
}

func TestTakeWorkerOnRunningActivationPanics(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	c := &recClient{eng: eng}
	c.handler = func(act *Activation, events []Event) {
		expectPanic(t, "TakeWorker on a running activation", func() { act.TakeWorker() })
		c.eng.Current().Park("vessel")
	}
	k.NewSpace("app", 0, c).Start()
	eng.Run()
}

func TestInterruptOwnProcessorPanics(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	c := &recClient{eng: eng}
	var sp *Space
	c.handler = func(act *Activation, events []Event) {
		expectPanic(t, "InterruptProcessor on the caller's own processor", func() {
			sp.InterruptProcessor(act, int(act.CPU()))
		})
		c.eng.Current().Park("vessel")
	}
	sp = k.NewSpace("app", 0, c)
	sp.Start()
	eng.Run()
}

func TestInterruptForeignProcessorRejected(t *testing.T) {
	// A request naming another space's processor is not a caller bug: the
	// user level's processor map is one trap stale, so the kernel must
	// validate and reject rather than panic.
	eng, k := newTestKernel(t, 2)
	other := k.NewSpace("other", 0, &recClient{eng: eng})
	other.Start()
	c := &recClient{eng: eng}
	var sp *Space
	c.handler = func(act *Activation, events []Event) {
		// Find the processor the other space holds.
		foreign := -1
		for _, s := range k.slots {
			if s.sp == other {
				foreign = int(s.cpu.ID())
			}
		}
		if foreign >= 0 {
			if sp.InterruptProcessor(act, foreign) {
				t.Error("InterruptProcessor on another space's processor reported success")
			}
		}
		c.eng.Current().Park("vessel")
	}
	sp = k.NewSpace("app", 0, c)
	sp.Start()
	eng.Run()
}

func TestYieldProcessorTwicePanics(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	c := &recClient{eng: eng}
	c.handler = func(act *Activation, events []Event) {
		act.YieldProcessor()
		expectPanic(t, "second YieldProcessor", act.YieldProcessor)
	}
	k.NewSpace("app", 0, c).Start()
	eng.Run()
}

func TestDebuggerStopOfBlockedActivationFails(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	dbg := k.NewDebugger()
	c := &ioTestClient{t: t, eng: eng, k: k}
	sp := k.NewSpace("app", 0, c)
	var blockedAct *Activation
	c.worker = k.M.NewWorker("T", nil)
	c.thread = eng.Go("T", func(co *sim.Coroutine) {
		blockedAct = c.cur
		k.BlockIO(c.cur)
	})
	sp.Start()
	eng.RunFor(10 * sim.Millisecond) // thread is mid-I/O
	if err := dbg.Stop(blockedAct); err == nil {
		t.Fatal("Stop of a blocked activation should fail")
	}
	if err := dbg.Resume(blockedAct); err == nil {
		t.Fatal("Resume of a never-stopped activation should fail")
	}
	eng.Run()
}

func TestVMTouchNegativePagesAreJustPages(t *testing.T) {
	// Negative page ids are valid keys; nothing special happens.
	eng, k := newTestKernel(t, 1)
	vm := k.NewVM()
	vm.Preload(-1)
	if !vm.Resident(-1) {
		t.Fatal("preloaded page not resident")
	}
	_ = eng
}
