package core

import (
	"schedact/internal/machine"
	"schedact/internal/sim"
)

// KTSpace is the binary-compatibility path of §4.1: "Our implementation
// makes it possible for an address space to use kernel threads, rather than
// requiring that every address space use scheduler activations... address
// spaces that use kernel threads compete for processors in the same way as
// applications that use scheduler activations. The kernel processor
// allocator only needs to know whether each address space could use more
// processors or has some processors that are idle... internal kernel data
// structures provide it for address spaces that use kernel threads
// directly. As a result, there is no need for static partitioning of
// processors."
//
// A KTSpace schedules plain kernel-thread-style tasks (FIFO, run to block
// or completion) on whatever processors the allocator assigns it, keeping
// the allocator informed through the kernel-internal demand path — no
// user-level notification protocol is visible to the tasks themselves.
type KTSpace struct {
	k   *Kernel
	sp  *Space
	max int

	ready    []*KTask
	byWorker map[*machine.Worker]*KTask
	// running maps a vessel to its parked dispatcher coroutine while a
	// task occupies it.
	running map[*Activation]*sim.Coroutine
	tasks   int // live tasks

	Completed uint64
}

// KTask is one kernel-thread-style execution stream inside a KTSpace.
type KTask struct {
	ks      *KTSpace
	name    string
	w       *machine.Worker
	co      *sim.Coroutine
	lastAct *Activation // vessel currently (or last) hosting the task
	done    bool
}

// NewKTSpace registers a kernel-thread address space under the
// scheduler-activation kernel. maxCPUs caps its parallelism (0 = machine
// size).
func (k *Kernel) NewKTSpace(name string, priority, maxCPUs int) *KTSpace {
	if maxCPUs <= 0 {
		maxCPUs = k.M.NumCPUs()
	}
	ks := &KTSpace{
		k:        k,
		max:      maxCPUs,
		byWorker: make(map[*machine.Worker]*KTask),
		running:  make(map[*Activation]*sim.Coroutine),
	}
	ks.sp = k.NewSpace(name, priority, ks)
	return ks
}

// Space exposes the kernel-side address space.
func (ks *KTSpace) Space() *Space { return ks.sp }

// Start begins competing for processors.
func (ks *KTSpace) Start() {
	ks.sp.Start()
	ks.syncDemand()
}

// AddTask creates a runnable task.
func (ks *KTSpace) AddTask(name string, fn func(t *KTask)) *KTask {
	t := &KTask{ks: ks, name: name}
	t.co = ks.k.Eng.Go(name, func(*sim.Coroutine) {
		fn(t)
		t.done = true
		ks.tasks--
		ks.Completed++
		delete(ks.byWorker, t.w)
		act := t.lastAct
		if t.w.Bound() != nil {
			t.w.Unbind()
		}
		ks.syncDemand()
		// Hand control back to the vessel's dispatcher loop.
		if act != nil {
			if co := ks.running[act]; co != nil {
				co.Unpark()
			}
		}
	})
	t.w = ks.k.M.NewWorker(name, t.co)
	ks.byWorker[t.w] = t
	ks.tasks++
	ks.ready = append(ks.ready, t)
	ks.syncDemand()
	return t
}

// Exec consumes CPU.
func (t *KTask) Exec(d sim.Duration) { t.w.Exec(d) }

// Name reports the task's name.
func (t *KTask) Name() string { return t.name }

// BlockIO blocks the task in the kernel for a disk read. The space's
// processor comes back via the ordinary Blocked upcall — invisible to the
// task, which resumes when the I/O completes and a processor next serves
// it.
func (t *KTask) BlockIO() {
	act := t.w.Bound().Owner.(*Activation)
	t.ks.k.BlockIO(act)
}

// syncDemand is the "internal kernel data structures" path: the kernel
// already knows how many runnable streams the space has; no charged
// downcall is needed.
func (ks *KTSpace) syncDemand() {
	// Runnable streams: queued tasks plus those occupying vessels. Tasks
	// blocked in the kernel need no processor until they unblock.
	want := len(ks.ready) + len(ks.running)
	if want > ks.max {
		want = ks.max
	}
	ks.sp.KernelSetDemand(want)
}

// Upcall implements Client: the compat layer's dispatcher. It recovers
// task state from stopped vessels and runs ready tasks FIFO.
func (ks *KTSpace) Upcall(act *Activation, events []Event) {
	for _, ev := range events {
		switch ev.Kind {
		case EvPreempted, EvUnblocked:
			old := ev.Act
			delete(ks.running, old)
			if w := old.Context().Worker(); w != nil && w != old.Context().Root() {
				old.TakeWorker()
				if t := ks.byWorker[w]; t != nil && !t.done {
					ks.ready = append(ks.ready, t)
				}
			}
			old.Discard()
		case EvBlocked:
			delete(ks.running, ev.Act)
		case EvAddProcessor:
			// The vessel below serves it.
		}
	}
	ks.syncDemand()
	ks.dispatch(act)
}

// dispatch runs ready tasks on the vessel until none remain, then yields
// the processor back to the kernel.
func (ks *KTSpace) dispatch(act *Activation) {
	me := ks.k.Eng.Current()
	stale := func() bool { return act.state != actRunning || act.ctx.CPU() == nil }
	if stale() {
		return // demand sync above let the allocator take this processor
	}
	for len(ks.ready) > 0 {
		t := ks.ready[0]
		ks.ready = ks.ready[1:]
		if t.done {
			continue
		}
		act.Context().Root().Unbind()
		ks.running[act] = me
		t.lastAct = act
		t.w.Bind(act.Context())
		if !t.w.WantsCPU() {
			t.co.Unpark()
		}
		me.Park("kt-running")
		// Resumed: the task exited. (If the vessel was stopped instead, a
		// fresh upcall took over and this coroutine is never resumed.)
		delete(ks.running, act)
		if stale() {
			return // defensive: vessel lost its processor
		}
		act.Context().Root().Bind(act.Context())
	}
	ks.syncDemand()
	if stale() {
		return
	}
	act.YieldProcessor()
}
