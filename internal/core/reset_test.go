package core

import (
	"testing"

	"schedact/internal/sim"
)

// driveSpaceShare runs one space that immediately asks for want processors
// total and checks it gets them, leaving every vessel parked idle.
func driveSpaceShare(t *testing.T, eng sim.Engine, k *Kernel, want int) {
	t.Helper()
	c := &recClient{eng: eng}
	var sp *Space
	first := true
	c.handler = func(act *Activation, events []Event) {
		if first {
			first = false
			if want > 1 {
				sp.AddMoreProcessors(act, want-1)
			}
		}
		c.eng.Current().Park("vessel-idle")
	}
	sp = k.NewSpace("app", 0, c)
	sp.Start()
	eng.Run()
	if got := k.Allocated(sp); got != want {
		t.Fatalf("Allocated = %d, want %d", got, want)
	}
	checkInv(t, k)
}

// TestKernelResetMatchesFresh reuses one kernel across three runs with
// different CPU counts — exercising both the slot-grow and slot-truncate
// paths of Reset — and pins each warm run's Stats against a fresh kernel
// running the identical workload.
func TestKernelResetMatchesFresh(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	driveSpaceShare(t, eng, k, 2)

	// Dirty the chaos/ablation hooks so Reset has something to clear.
	k.UpcallPerturb = func() sim.Duration { return 0 }
	k.AblateNoGrant = true
	k.AblateDropEvent = true

	// Grow: 2 -> 4 processors appends new slots.
	eng.Reset()
	k.Reset(Config{CPUs: 4})
	if k.Stats != (Stats{}) {
		t.Fatalf("Stats after Reset = %+v, want zero", k.Stats)
	}
	if len(k.Spaces()) != 0 {
		t.Fatalf("Spaces after Reset = %d, want 0", len(k.Spaces()))
	}
	if k.UpcallPerturb != nil || k.AblateNoGrant || k.AblateDropEvent {
		t.Fatal("chaos/ablation hooks survived Reset")
	}
	driveSpaceShare(t, eng, k, 4)
	warm := k.Stats
	feng, fk := newTestKernel(t, 4)
	driveSpaceShare(t, feng, fk, 4)
	if warm != fk.Stats {
		t.Fatalf("warm 4-CPU Stats %+v != fresh %+v", warm, fk.Stats)
	}

	// Shrink: 4 -> 1 processor truncates the slot slice.
	eng.Reset()
	k.Reset(Config{CPUs: 1})
	driveSpaceShare(t, eng, k, 1)
	warm = k.Stats
	feng1, fk1 := newTestKernel(t, 1)
	driveSpaceShare(t, feng1, fk1, 1)
	if warm != fk1.Stats {
		t.Fatalf("warm 1-CPU Stats %+v != fresh %+v", warm, fk1.Stats)
	}
}

// TestResetDrainsRetiringVessels pins the reset-time drain of the retiring
// list. A vessel that entered user code and was then discarded stays on
// k.retiring until its root coroutine exits; an engine Reset kills that
// coroutine by unwinding its stack, which skips the body epilogue that sets
// the context's done flag. If the sweep keys on the flag instead of the
// coroutine, the entry survives every Reset and the per-deliver scan grows
// without bound across a warm sweep — the superlinear slowdown the chaos64
// profile caught (sweepRetiring at 75% of total CPU by seed 50).
func TestResetDrainsRetiringVessels(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	// Space A parks a vessel on each processor inside user code and, like a
	// real thread package, Discards any preempted activation whose state
	// rides in on a later upcall. Space B's arrival makes the allocator take
	// a processor from A, so a discarded vessel — entered, its root
	// coroutine still parked in the handler — lands on the retiring list
	// and stays there: parked is not exited.
	c := &recClient{eng: eng}
	var spA *Space
	first := true
	c.handler = func(act *Activation, events []Event) {
		if first {
			first = false
			spA.AddMoreProcessors(act, 1)
		}
		for _, ev := range events {
			if ev.Kind == EvPreempted {
				ev.Act.Discard()
			}
		}
		eng.Current().Park("vessel-idle")
	}
	spA = k.NewSpace("a", 0, c)
	spA.Start()
	eng.Run()
	if got := k.Allocated(spA); got != 2 {
		t.Fatalf("Allocated(a) = %d, want 2", got)
	}
	spB := k.NewSpace("b", 0, &recClient{eng: eng})
	spB.Start()
	eng.Run()
	checkInv(t, k)
	if len(k.retiring) == 0 {
		t.Fatal("workload left no vessel retiring; the test no longer exercises the reset drain")
	}

	eng.Reset()
	k.Reset(Config{CPUs: 2})
	if n := len(k.retiring); n != 0 {
		t.Fatalf("%d vessel(s) still retiring after Reset; each warm run of a sweep would leak its drain-time vessels", n)
	}
}

// TestVMResetClearsState faults through the pager (with the entry page out,
// so the delayed-upcall path fires too), resets the whole stack, and checks
// the pager is back to birth state and reproduces the run exactly.
func TestVMResetClearsState(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	vm := k.NewVM()

	run := func() {
		c := &ioTestClient{t: t, eng: eng, k: k}
		sp := k.NewSpace("app", 0, c)
		vm.SetEntryPage(sp, 100) // never preloaded: notification must wait
		c.worker = k.M.NewWorker("T", nil)
		c.thread = eng.Go("T", func(co *sim.Coroutine) {
			vm.Touch(c.cur, 1) // resident: free
			vm.Touch(c.cur, 7) // fault
		})
		sp.Start()
		eng.Run()
		checkInv(t, k)
	}

	vm.Preload(1)
	run()
	first := vm.Stats
	if first.Faults != 1 || first.DelayedUpcalls != 1 {
		t.Fatalf("workload did not fault as expected: %+v", first)
	}
	if !vm.Resident(7) || !vm.Resident(100) {
		t.Fatal("fetched pages should be resident after the run")
	}

	eng.Reset()
	k.Reset(Config{CPUs: 2})
	vm.Reset()
	if vm.Stats.Faults != 0 || vm.Stats.Coalesced != 0 || vm.Stats.DelayedUpcalls != 0 {
		t.Fatalf("VM stats after Reset = %+v, want zero", vm.Stats)
	}
	if vm.Resident(1) || vm.Resident(7) || vm.Resident(100) {
		t.Fatal("pages still resident after Reset")
	}

	// The warm pager must reproduce the cold run bit for bit.
	vm.Preload(1)
	run()
	if vm.Stats != first {
		t.Fatalf("warm VM stats %+v != cold %+v", vm.Stats, first)
	}
}
