// Package core implements the paper's contribution: a kernel interface built
// on scheduler activations (Anderson, Bershad, Lazowska, Levy — SOSP 1991).
//
// The kernel gives each address space a virtual multiprocessor: the kernel
// decides how many processors each space gets (processor allocation), the
// space decides what runs on them (thread scheduling). Every kernel event
// that affects a space — a processor granted, a processor preempted, an
// activation blocking in the kernel, an activation unblocking — is vectored
// to the space as an upcall delivered in the context of a fresh scheduler
// activation (Table 2). The space notifies the kernel only of the events
// that affect processor allocation: it wants more processors, or one of its
// processors is idle (Table 3).
//
// The crucial invariant, maintained throughout: a space has exactly as many
// running activations as it has allocated processors. Once the kernel stops
// an activation's user-level thread, it never directly resumes it; the
// thread's machine state (here: its machine.Worker, with any banked CPU
// demand) rides the notifying upcall to user level, which decides where it
// runs next.
package core

import (
	"fmt"

	"schedact/internal/machine"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// Config parameterizes the scheduler-activation kernel.
type Config struct {
	CPUs  int
	Costs *machine.Costs // nil means machine.DefaultCosts()
	Trace *trace.Log     // nil disables tracing
}

// Stats counts kernel activity over a run.
type Stats struct {
	Upcalls         uint64
	UpcallEvents    [4]uint64 // indexed by EventKind
	Grants          uint64
	Takes           uint64 // CPUs taken from a space (voluntary or not)
	DoublePreempts  uint64 // extra preemptions done purely to notify
	DelayedNotifies uint64
	Rebalances      uint64
	IORequests      uint64
	Discards        uint64
	ActCreates      uint64 // activations created fresh (pool empty)
	ActRecycles     uint64 // activations reused from the pool
	Blocks          uint64 // activations that entered the blocked state
	Unblocks        uint64 // blocked activations whose awaited event completed
}

// Kernel is the scheduler-activation operating system instance.
type Kernel struct {
	Eng   sim.Engine
	M     *machine.Machine
	C     *machine.Costs
	Trace *trace.Log
	Stats Stats

	slots    []*cpuSlot
	spaces   []*Space
	actSeq   int
	poolFree int // recycled activation records available
	inRebal  bool
	rotation uint64 // leftover-processor rotation index; advances on time, not per rebalance
	policy   Policy // nil = space-sharing default

	// Physical recycling of activation machinery, decoupled from poolFree
	// (which is the *modelled* pool and drives the fingerprinted
	// ActCreates/ActRecycles split): a discarded activation parks on
	// retiring until its vessel context can be reclaimed — its coroutine
	// unwound, its Context struct returned to the machine arena — after
	// which the Activation struct itself waits on actFree for the next
	// deliver. nameBuf builds vessel names without fmt.
	actFree  []*Activation
	retiring []*Activation
	nameBuf  []byte

	// scratch holds buffers reused across allocator runs so the steady-state
	// rebalance path does not allocate. Valid only within one synchronous
	// kernel entry: hotTargets overwrites target on each call, and none of
	// its callers hold the map across another targets computation; grantEvs
	// and stopEvs are consumed (copied into an activation's own event
	// vector, or appended to a caller's batch) before the next grantSlot or
	// stopHosted call overwrites them.
	scratch struct {
		target    map[*Space]int
		elig      []*Space
		unsat     []*Space
		claimants []*Space
		grantEvs  []Event
		stopEvs   []Event
		notifyEvs []Event
	}

	// Fault-injection and ablation hooks; see chaos.go.
	UpcallPerturb   func() sim.Duration // extra kernel-side latency per upcall
	AblateNoGrant   bool                // break rebalance: never grant free processors
	AblateDropEvent bool                // break notify: silently drop delayed events
}

// cpuSlot is the kernel's per-processor allocation state.
type cpuSlot struct {
	cpu   *machine.CPU
	sp    *Space      // space this processor is allocated to; nil = free
	act   *Activation // running activation hosting the processor
	idle  bool        // the space volunteered this processor as idle
	since sim.Time    // when the current activation was dispatched
}

// New creates a scheduler-activation kernel on a fresh machine.
func New(eng sim.Engine, cfg Config) *Kernel {
	costs := cfg.Costs
	if costs == nil {
		costs = machine.DefaultCosts()
	}
	m := machine.New(eng, cfg.CPUs, costs)
	m.Trace = cfg.Trace
	k := &Kernel{Eng: eng, M: m, C: costs, Trace: cfg.Trace}
	for _, cpu := range m.CPUs() {
		k.slots = append(k.slots, &cpuSlot{cpu: cpu})
	}
	reg := eng.Metrics()
	reg.Func("core.upcalls", func() uint64 { return k.Stats.Upcalls })
	reg.Func("core.grants", func() uint64 { return k.Stats.Grants })
	reg.Func("core.takes", func() uint64 { return k.Stats.Takes })
	reg.Func("core.double_preempts", func() uint64 { return k.Stats.DoublePreempts })
	reg.Func("core.delayed_notifies", func() uint64 { return k.Stats.DelayedNotifies })
	reg.Func("core.rebalances", func() uint64 { return k.Stats.Rebalances })
	reg.Func("core.io_requests", func() uint64 { return k.Stats.IORequests })
	reg.Func("core.act_creates", func() uint64 { return k.Stats.ActCreates })
	reg.Func("core.act_recycles", func() uint64 { return k.Stats.ActRecycles })
	reg.Func("core.blocks", func() uint64 { return k.Stats.Blocks })
	reg.Func("core.unblocks", func() uint64 { return k.Stats.Unblocks })
	return k
}

// Reset returns the kernel — and the machine under it — to its construction
// state for a fresh run with cfg. The owning engine must have been Reset
// first, so every coroutine from the previous run is already dead; vessel
// contexts still staged on the retiring list are reclaimed into the warm
// arenas on the way. Metric registrations made at construction stay valid
// (they read k.Stats through the receiver), so Reset must only ever be
// called on the same engine the kernel was built on.
func (k *Kernel) Reset(cfg Config) {
	costs := cfg.Costs
	if costs == nil {
		costs = machine.DefaultCosts()
	}
	k.M.Reset(cfg.CPUs, costs)
	k.M.Trace = cfg.Trace
	k.C = costs
	k.Trace = cfg.Trace
	k.Stats = Stats{}
	for len(k.slots) < cfg.CPUs {
		k.slots = append(k.slots, &cpuSlot{})
	}
	k.slots = k.slots[:cfg.CPUs]
	for i, s := range k.slots {
		*s = cpuSlot{cpu: k.M.CPU(machine.CPUID(i))}
	}
	for i := range k.spaces {
		k.spaces[i] = nil
	}
	k.spaces = k.spaces[:0]
	k.actSeq = 0
	k.poolFree = 0
	k.inRebal = false
	k.rotation = 0
	k.policy = nil
	clear(k.scratch.target)
	k.scratch.elig = k.scratch.elig[:0]
	k.scratch.unsat = k.scratch.unsat[:0]
	k.scratch.claimants = k.scratch.claimants[:0]
	k.scratch.grantEvs = k.scratch.grantEvs[:0]
	k.scratch.stopEvs = k.scratch.stopEvs[:0]
	k.scratch.notifyEvs = k.scratch.notifyEvs[:0]
	k.UpcallPerturb = nil
	k.AblateNoGrant = false
	k.AblateDropEvent = false
	k.sweepRetiring()
}

// sweepRetiring tries to reclaim each retired activation's vessel: when the
// machine can take the context back (root coroutine done or destroyable),
// the Activation struct moves to the warm free list; otherwise it stays
// staged for a later sweep. Called at every deliver — the next vessel birth
// funds the previous vessel's funeral — and from Reset, when everything
// left is reclaimable.
func (k *Kernel) sweepRetiring() {
	if len(k.retiring) == 0 {
		return
	}
	kept := k.retiring[:0]
	for _, a := range k.retiring {
		// A vessel that entered user code may have lent its root coroutine
		// out: a handler preempted mid-upcall rides the Preempted event to
		// another vessel and keeps executing there, long after this
		// activation was discarded. Its body also re-reads the activation
		// after the handler returns. Such vessels reclaim only once the
		// root coroutine has actually exited — RootExited, not the done
		// flag, because an engine Reset unwinds coroutines without running
		// the epilogue that sets done, and a vessel kept on that stale flag
		// would sit here forever, growing this list (and the scan every
		// deliver pays) across all the warm runs of a sweep. A stillborn
		// vessel's root never reached user code, so it is unwindable as
		// soon as no resume is pending.
		if a.entered && !a.ctx.RootExited() {
			kept = append(kept, a)
			continue
		}
		if !k.M.FreeContext(a.ctx) {
			kept = append(kept, a)
			continue
		}
		a.ctx = nil
		a.sp = nil
		a.slot = nil
		if a.entered {
			// The upcall handler saw a.events; the array must not be
			// rewritten under a client that kept the slice.
			a.events = nil
		} else {
			a.events = a.events[:0]
		}
		a.UserData = nil
		k.actFree = append(k.actFree, a)
	}
	for i := len(kept); i < len(k.retiring); i++ {
		k.retiring[i] = nil
	}
	k.retiring = kept
}

// Spaces returns all address spaces in creation order.
func (k *Kernel) Spaces() []*Space { return k.spaces }

// Allocated reports how many processors are currently allocated to sp.
func (k *Kernel) Allocated(sp *Space) int {
	n := 0
	for _, s := range k.slots {
		if s.sp == sp {
			n++
		}
	}
	return n
}

// FreeCPUs reports how many processors are allocated to no space.
func (k *Kernel) FreeCPUs() int {
	n := 0
	for _, s := range k.slots {
		if s.sp == nil {
			n++
		}
	}
	return n
}

// CheckInvariants verifies the defining scheduler-activation invariant for
// every space: exactly as many running activations as allocated processors,
// and every allocated processor hosts a running activation of that space.
// It returns an error describing the first violation found.
func (k *Kernel) CheckInvariants() error {
	for _, s := range k.slots {
		if (s.sp == nil) != (s.act == nil) {
			return fmt.Errorf("cpu%d: space %v but activation %v", s.cpu.ID(), s.sp != nil, s.act != nil)
		}
		if s.act != nil {
			if s.act.sp != s.sp {
				return fmt.Errorf("cpu%d: activation %d belongs to %q, slot allocated to %q", s.cpu.ID(), s.act.id, s.act.sp.Name, s.sp.Name)
			}
			if s.act.state != actRunning {
				return fmt.Errorf("cpu%d: hosted activation %d in state %v", s.cpu.ID(), s.act.id, s.act.state)
			}
			if s.act.ctx.CPU() != s.cpu {
				return fmt.Errorf("cpu%d: hosted activation %d's context is dispatched elsewhere", s.cpu.ID(), s.act.id)
			}
		}
	}
	for _, sp := range k.spaces {
		running := 0
		for _, a := range sp.acts {
			if a.state == actRunning {
				running++
			}
		}
		if alloc := k.Allocated(sp); running != alloc {
			return fmt.Errorf("space %q: %d running activations, %d allocated processors", sp.Name, running, alloc)
		}
	}
	return nil
}

func (k *Kernel) slotFor(cpu *machine.CPU) *cpuSlot { return k.slots[int(cpu.ID())] }

// freeSlot returns an unallocated slot, or nil.
func (k *Kernel) freeSlot() *cpuSlot {
	for _, s := range k.slots {
		if s.sp == nil {
			return s
		}
	}
	return nil
}
