package core

// Fault-injection entry points and audit snapshots for the
// scheduler-activation kernel. The paper's central claim (§3, Table 2) is
// that the kernel/user contract survives adverse timing: preemptions, page
// faults, and I/O may land at any instant and the upcall protocol must still
// conserve processors and never strand runnable work. The hooks here let a
// deterministic injector (internal/chaos) create exactly those worst-case
// timings through the kernel's legitimate reallocation machinery, and let an
// auditor read a consistent snapshot of the kernel's view for continuous
// invariant checking.
//
// Two ablation flags deliberately break the scheduler so tests can prove the
// auditor has teeth:
//
//   - AblateNoGrant disables rebalance's grant phase: free processors are
//     stranded while spaces want them (violates work conservation, I2).
//   - AblateDropEvent makes notify discard its events: preempted activations'
//     thread state is silently lost (threads wedge; the chaos harness's
//     progress check catches it).

import (
	"fmt"

	"schedact/internal/sim"
)

// ForceRebalance re-runs the processor allocator as if a policy timer had
// fired — the injector uses it to advance the leftover-rotation index and to
// shake allocations at adverse instants. (Demand-triggered rebalances reuse
// the current rotation position; only timer-equivalent calls advance it.)
func (k *Kernel) ForceRebalance() {
	k.rotation++
	k.rebalance()
}

// ChaosPreempt forcibly revokes the processor in slot cpu from whatever
// space holds it, mid-whatever-it-was-doing, then rebalances — modelling a
// timer-driven reallocation landing at the worst possible instant. The
// victim gets the full preemption protocol: its hosted activation is stopped
// (stillborn activations have their events requeued), the batched Preempted
// notification is delivered by double preemption or delayed, and the freed
// processor goes wherever the policy sends it (often straight back). It
// reports false when the slot is unallocated or unhosted.
func (k *Kernel) ChaosPreempt(cpu int) bool {
	if cpu < 0 || cpu >= len(k.slots) {
		return false
	}
	slot := k.slots[cpu]
	if slot.sp == nil || slot.act == nil {
		return false
	}
	victim := slot.sp
	events := k.takeSlot(slot)
	if len(events) > 0 {
		k.notify(victim, events)
	}
	k.rebalance()
	return true
}

// SpaceAudit is a consistent snapshot of one space's kernel-side state, read
// by the chaos auditor between events.
type SpaceAudit struct {
	Space     *Space
	Started   bool
	Want      int // registered processor demand
	Allocated int // physical processors held
	Debugged  int // logical processors held by debugger-stopped activations
	Pending   int // events queued for delayed delivery

	// Activation-table census by state. Discarded activations must never
	// appear (they are removed from the table when pooled); the auditor
	// treats a nonzero Leaked as a violation.
	Running, Blocked, Stopped, DebugStopped int
	Leaked                                  int

	// LiveUsage is the space's accumulated processor time including
	// occupancies still in progress — the quantity that must balance against
	// the machine's own busy-time accounting.
	LiveUsage sim.Duration
}

// AuditSpaces snapshots every space for invariant checking. Only
// order-independent aggregates are computed, so the map iteration underneath
// cannot perturb determinism.
func (k *Kernel) AuditSpaces() []SpaceAudit {
	return k.AuditSpacesInto(make([]SpaceAudit, 0, len(k.spaces)))
}

// AuditSpacesInto is AuditSpaces overwriting buf's backing array from the
// start. The chaos auditor snapshots every space between engine events; a
// reused buffer keeps that pulse allocation-free.
func (k *Kernel) AuditSpacesInto(buf []SpaceAudit) []SpaceAudit {
	out := buf[:0]
	for _, sp := range k.spaces {
		a := SpaceAudit{
			Space:     sp,
			Started:   sp.started,
			Want:      sp.want,
			Allocated: k.Allocated(sp),
			Debugged:  sp.debugged,
			Pending:   len(sp.pending),
			LiveUsage: k.liveUsage(sp),
		}
		for _, act := range sp.acts {
			switch act.state {
			case actRunning:
				a.Running++
			case actBlocked:
				a.Blocked++
			case actStopped:
				a.Stopped++
			case actDebugStopped:
				a.DebugStopped++
			default:
				a.Leaked++
			}
		}
		out = append(out, a)
	}
	return out
}

// MachineBusy reports the exact total processor time consumed on the
// machine, including in-progress occupancies. Every dispatched context in a
// scheduler-activation kernel belongs to some space, so this must equal the
// sum of the spaces' live usage at every instant.
func (k *Kernel) MachineBusy() sim.Duration {
	var busy sim.Duration
	for _, cpu := range k.M.CPUs() {
		busy += cpu.Busy()
	}
	return busy
}

// AuditString renders a one-line kernel state summary for failure reports.
func (k *Kernel) AuditString() string {
	s := fmt.Sprintf("t=%v free=%d", k.Eng.Now(), k.FreeCPUs())
	for _, a := range k.AuditSpaces() {
		s += fmt.Sprintf(" | %s want=%d alloc=%d run=%d blk=%d stop=%d pend=%d",
			a.Space.Name, a.Want, a.Allocated, a.Running, a.Blocked, a.Stopped, a.Pending)
	}
	return s
}
