package core

import (
	"fmt"

	"schedact/internal/machine"
	"schedact/internal/sim"
)

// actState tracks an activation through its life.
type actState int

const (
	actRunning      actState = iota // hosting a processor
	actBlocked                      // its user-level thread blocked in the kernel
	actStopped                      // preempted or unblocked; awaiting user-level recovery
	actDiscarded                    // returned to the kernel's pool
	actDebugStopped                 // frozen by the debugger on a logical processor (§4.4)
)

func (s actState) String() string {
	switch s {
	case actRunning:
		return "running"
	case actBlocked:
		return "blocked"
	case actStopped:
		return "stopped"
	case actDiscarded:
		return "discarded"
	case actDebugStopped:
		return "debug-stopped"
	}
	return "invalid"
}

// Activation is a scheduler activation: the execution context in which the
// kernel vectors an event to an address space, and thereafter a vessel for
// running user-level threads — similar to a kernel thread, except that once
// the kernel stops it, the kernel never resumes it; a fresh activation
// notifies the user level instead.
type Activation struct {
	k     *Kernel
	sp    *Space
	id    int
	ctx   *machine.Context
	state actState

	// entered flips true once the kernel's upcall latency has been paid and
	// control is about to enter user code. An activation preempted before
	// entry is stillborn: its events are requeued rather than lost, and it
	// is discarded internally without a Preempted notification (the user
	// level never knew it existed).
	entered bool
	events  []Event

	// cost and slot are the current delivery's parameters, read by body —
	// the vessel entry closure, built once per Activation struct and reused
	// across recycles so a steady-state deliver allocates no closure.
	cost sim.Duration
	slot *cpuSlot
	body func(*machine.Context)

	// UserData is a slot for the client's per-vessel bookkeeping (e.g.
	// which user-level thread is running in this context). The kernel never
	// touches it: "the kernel needs no knowledge of the data structures
	// used to represent parallelism at the user level".
	UserData any
}

// ID reports the activation number, as passed in upcall events.
func (a *Activation) ID() int { return a.id }

// Space reports the owning address space.
func (a *Activation) Space() *Space { return a.sp }

// Context exposes the machine execution context of the vessel. User-level
// threads bind their Workers to it to run.
func (a *Activation) Context() *machine.Context { return a.ctx }

// State reports the activation's lifecycle state as a string, for tests and
// instrumentation.
func (a *Activation) State() string { return a.state.String() }

// CPU reports the processor this activation is running on, or -1.
func (a *Activation) CPU() machine.CPUID {
	if cpu := a.ctx.CPU(); cpu != nil {
		return cpu.ID()
	}
	return -1
}

func (a *Activation) cpuID() int { return int(a.CPU()) }

// TakeWorker removes and returns the machine state carried by this stopped
// or blocked activation: the Worker of whatever was computing in its
// context when the kernel stopped it, with any unconsumed CPU demand
// banked. The user-level thread system rebinds the worker to another vessel
// to resume it. Returns nil if the vessel carried no computation.
func (a *Activation) TakeWorker() *machine.Worker {
	if a.state == actRunning || a.state == actDiscarded {
		panic(fmt.Sprintf("core: TakeWorker on %v activation %d", a.state, a.id))
	}
	w := a.ctx.Worker()
	if w == nil {
		return nil
	}
	w.Unbind()
	return w
}

// YieldProcessor voluntarily returns the activation's processor to the
// kernel (e.g. after ProcessorIsIdle was declined but the space is shutting
// the vessel down, or a client that runs one burst and exits). The caller
// must return from its upcall handler afterwards without further charging.
func (a *Activation) YieldProcessor() {
	k := a.k
	if a.state != actRunning {
		panic(fmt.Sprintf("core: YieldProcessor on %v activation %d", a.state, a.id))
	}
	slot := k.slotFor(a.ctx.CPU())
	if slot.act != a {
		panic(fmt.Sprintf("core: activation %d does not host cpu%d", a.id, slot.cpu.ID()))
	}
	if a.sp.want > k.Allocated(a.sp)-1 {
		a.sp.want = k.Allocated(a.sp) - 1
	}
	k.releaseSlot(slot, a)
	k.rebalance()
}

// Discard returns a stopped or blocked-and-recovered activation to the
// kernel's pool for reuse. In the paper discards are batched and returned
// in bulk, making their cost negligible; they are modelled as free here.
func (a *Activation) Discard() {
	if a.state != actStopped {
		panic(fmt.Sprintf("core: Discard of %v activation %d", a.state, a.id))
	}
	if w := a.ctx.Worker(); w != nil && w != a.ctx.Root() {
		panic(fmt.Sprintf("core: Discard of activation %d with thread state still attached", a.id))
	}
	a.state = actDiscarded
	delete(a.sp.acts, a.id)
	a.k.poolFree++
	a.k.Stats.Discards++
	a.k.retire(a)
}
