package core

import (
	"testing"

	"schedact/internal/trace"
)

// TestEventKindMirrorsTraceUpEv pins the numeric correspondence packEvs
// relies on: core's EventKind values convert to trace.UpEv by plain cast.
func TestEventKindMirrorsTraceUpEv(t *testing.T) {
	pairs := []struct {
		ev EventKind
		up trace.UpEv
	}{
		{EvAddProcessor, trace.UpAddProcessor},
		{EvPreempted, trace.UpPreempted},
		{EvBlocked, trace.UpBlocked},
		{EvUnblocked, trace.UpUnblocked},
	}
	for _, p := range pairs {
		if trace.UpEv(p.ev) != p.up {
			t.Fatalf("core.%v = %d does not mirror trace.%v = %d", p.ev, p.ev, p.up, p.up)
		}
		if p.ev.String() != p.up.String() {
			t.Fatalf("name mismatch: core %q vs trace %q", p.ev.String(), p.up.String())
		}
	}
}

// TestPackEvsRoundTrip drives the packing helper with real events.
func TestPackEvsRoundTrip(t *testing.T) {
	a := &Activation{id: 7}
	events := []Event{{Kind: EvAddProcessor}, {Kind: EvUnblocked, Act: a}, {Kind: EvPreempted, Act: &Activation{id: 2}}}
	n, c, d := packEvs(events)
	if n != 3 {
		t.Fatalf("count = %d", n)
	}
	r := trace.Record{Kind: trace.KindUpcall, B: n, C: c, D: d}
	r0, ok := r.EvRef(0)
	if !ok || r0.Kind() != trace.UpAddProcessor {
		t.Fatalf("slot 0 = %v ok=%v", r0, ok)
	}
	if _, hasAct := r0.Act(); hasAct {
		t.Fatal("AddProcessor must carry no activation")
	}
	r1, _ := r.EvRef(1)
	if id, ok := r1.Act(); !ok || id != 7 || r1.Kind() != trace.UpUnblocked {
		t.Fatalf("slot 1 = %v act=%d ok=%v", r1, id, ok)
	}
	if _, ok := r.EvRef(3); ok {
		t.Fatal("slot 3 must be empty")
	}
}
