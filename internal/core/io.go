package core

import (
	"fmt"

	"schedact/internal/trace"
)

// BlockIO is the blocking-I/O system call, invoked by the user-level thread
// currently computing in act's context. The activation blocks in the
// kernel; its processor is immediately handed back to the space with a
// Blocked upcall so another thread can run; and when the I/O completes the
// kernel notifies the space with an Unblocked upcall carrying the thread's
// machine state — on a new processor if one is free, else by preempting one
// of the space's processors (delivering the preemption in the same upcall),
// else delayed until the space next gets a processor.
//
// The call returns when the user-level thread system has resumed the thread
// in some vessel.
func (k *Kernel) BlockIO(act *Activation) {
	k.Stats.IORequests++
	k.blockAndWait(act, "io-blocked", func(complete func()) {
		k.M.Disk.Request(complete)
	})
}

// blockAndWait implements the common blocking-syscall path: charge the
// kernel entry, stop the activation, hand the processor back via a Blocked
// upcall, arrange the wake-up, park the calling thread, and charge the
// kernel exit once resumed.
func (k *Kernel) blockAndWait(act *Activation, reason string, arm func(complete func())) {
	w := act.ctx.Worker()
	if w == nil {
		panic(fmt.Sprintf("core: blocking syscall on act%d with no computation", act.id))
	}
	// Charge the kernel entry through the worker: the vessel may be
	// preempted mid-entry, in which case the thread (and this in-kernel
	// computation) rides the Preempted upcall to a new vessel and finishes
	// the entry there.
	w.Exec(k.C.Trap + k.C.KTBlockWork)
	// Re-derive the current vessel: it may differ from act after such a
	// migration.
	cur := w.Bound().Owner.(*Activation)
	act = cur
	slot := k.slotFor(act.ctx.CPU())
	if slot.act != act {
		panic(fmt.Sprintf("core: blocking act%d does not host its processor", act.id))
	}
	slot.cpu.Release(act.ctx)
	slot.sp.Usage += k.Eng.Now().Sub(slot.since)
	act.state = actBlocked
	slot.act = nil
	k.Stats.Blocks++
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(slot.cpu.ID()), Kind: trace.KindActBlock, Name: act.sp.Name, A: int64(act.id), Aux: reason})

	// The processor stays with the space: deliver the Blocked notification
	// in a fresh activation on it.
	k.deliver(slot, act.sp, []Event{{Kind: EvBlocked, Act: act}}, k.C.SAUpcallWork)

	arm(func() { k.unblock(act) })

	// Park the calling thread. It resumes when the user level rebinds its
	// worker to a live vessel after the Unblocked upcall.
	w.AwaitDispatch(reason)
	// Back at user level in a new vessel: kernel exit path.
	w.Exec(k.C.Trap)
}

// unblock runs when a blocked activation's awaited event completes. It
// finds a processor for the Unblocked notification per the paper's §3.1.
func (k *Kernel) unblock(act *Activation) {
	if act.state != actBlocked {
		panic(fmt.Sprintf("core: unblock of %v activation %d", act.state, act.id))
	}
	sp := act.sp
	act.state = actStopped
	k.Stats.Unblocks++
	ev := Event{Kind: EvUnblocked, Act: act}
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: -1, Kind: trace.KindActUnblock, Name: sp.Name, A: int64(act.id)})

	// An unblocked thread is new runnable work; the space wants at least
	// one processor again.
	if sp.want < 1 {
		sp.want = 1
	}

	// 1. A free processor: grant it, the upcall carries both the new
	// processor and the unblock.
	if slot := k.freeSlot(); slot != nil {
		k.grantSlot(slot, sp, []Event{ev})
		return
	}
	// 2. One of the space's own processors: preempt it and deliver both
	// events together ("the upcall notifies the user-level thread system,
	// first, that the original thread can be resumed, and second, that the
	// thread that had been running on that processor was preempted").
	var pick *cpuSlot
	for _, s := range k.slots {
		if s.sp == sp && s.act != nil {
			if s.idle {
				pick = s
				break
			}
			if pick == nil {
				pick = s
			}
		}
	}
	if pick != nil {
		pevs := k.interruptSlot(pick)
		k.deliver(pick, sp, append([]Event{ev}, pevs...), k.C.SAUpcallWork+k.C.IPI)
		return
	}
	// 3. The space has no processors: steal one from the space most above
	// its entitlement (respecting priority), or failing that, queue the
	// notification for the next grant.
	target := k.hotTargets()
	var victim *Space
	for _, other := range k.spaces {
		if other == sp {
			continue
		}
		if k.Allocated(other) <= target[other] {
			continue
		}
		// Priority shields only processors the holder actually wants.
		// Surplus a higher-priority space has itself disclaimed (want
		// below its allocation, processors sitting idle-volunteered) must
		// stay stealable: the kernel is event-driven, so if this unblock
		// defers to a disinterested holder, nothing ever revisits the
		// allocation and the notification is delayed forever.
		if other.Priority > sp.Priority && k.Allocated(other) <= other.want {
			continue
		}
		if victim == nil || k.Allocated(other)-target[other] > k.Allocated(victim)-target[victim] {
			victim = other
		}
	}
	if victim != nil {
		taken := k.takeFromSpace(victim, 1)
		if len(taken) == 1 {
			k.grantSlot(taken[0], sp, []Event{ev})
			return
		}
	}
	sp.pending = append(sp.pending, ev)
	k.Stats.DelayedNotifies++
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: -1, Kind: trace.KindUnblockDelayed, Name: sp.Name, A: int64(act.id)})
}

// KernelEvent is a kernel-level synchronization object: a thread that Waits
// blocks its activation in the kernel exactly as I/O does, and a Signal
// from anywhere unblocks it through the same upcall machinery. This is the
// object behind the §5.2 upcall-performance measurement (two user-level
// threads forced to signal and wait through the kernel).
type KernelEvent struct {
	k       *Kernel
	waiters []keWaiter
}

type keWaiter struct {
	act  *Activation
	wake func()
}

// NewKernelEvent creates a kernel synchronization object.
func (k *Kernel) NewKernelEvent() *KernelEvent { return &KernelEvent{k: k} }

// Wait blocks the calling thread (computing in act's context) in the kernel
// until a Signal.
func (e *KernelEvent) Wait(act *Activation) {
	e.k.blockAndWait(act, "kevent-wait", func(complete func()) {
		e.waiters = append(e.waiters, keWaiter{act: act, wake: complete})
	})
}

// Waiters reports how many threads are blocked on the event.
func (e *KernelEvent) Waiters() int { return len(e.waiters) }

// Signal unblocks the longest-waiting thread, if any. The caller charges
// the kernel crossing against the activation it runs on.
func (e *KernelEvent) Signal(via *Activation) {
	k := e.k
	via.ctx.Exec(k.C.Trap + k.C.KTSignalWork)
	if len(e.waiters) == 0 {
		return
	}
	first := e.waiters[0]
	copy(e.waiters, e.waiters[1:])
	e.waiters = e.waiters[:len(e.waiters)-1]
	first.wake()
}
