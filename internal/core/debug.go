package core

import (
	"fmt"

	"schedact/internal/trace"
)

// Debugger implements §4.4's kernel support for debugging the user-level
// thread system itself: "the kernel assigns each scheduler activation being
// debugged a logical processor; when the debugger stops or single-steps a
// scheduler activation, these events do not cause upcalls into the
// user-level thread system."
//
// A stopped activation's physical processor is freed for other address
// spaces, but from the debugged space's point of view nothing happened: no
// Preempted notification is delivered, and the activation resumes exactly
// where it stopped when the debugger continues it — the one deliberate
// exception to the kernel-never-resumes rule, made for transparency.
type Debugger struct {
	k       *Kernel
	stopped map[*Activation]bool

	Stops   uint64
	Resumes uint64
}

// NewDebugger attaches a debugger to the kernel.
func (k *Kernel) NewDebugger() *Debugger {
	return &Debugger{k: k, stopped: make(map[*Activation]bool)}
}

// Stop freezes a running activation onto its logical processor. The
// physical processor is reclaimed (other spaces may get it); the debugged
// space receives no notification.
func (d *Debugger) Stop(act *Activation) error {
	k := d.k
	if act.state != actRunning {
		return fmt.Errorf("core: debugger stop of %v activation %d", act.state, act.id)
	}
	cpu := act.ctx.CPU()
	if cpu == nil {
		return fmt.Errorf("core: activation %d not on a processor", act.id)
	}
	slot := k.slotFor(cpu)
	if slot.act != act {
		return fmt.Errorf("core: activation %d does not host cpu%d", act.id, cpu.ID())
	}
	slot.cpu.Preempt() // banks the in-flight computation
	slot.sp.Usage += k.Eng.Now().Sub(slot.since)
	slot.act = nil
	slot.sp = nil
	slot.idle = false
	act.state = actDebugStopped
	act.sp.debugged++
	d.stopped[act] = true
	d.Stops++
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(cpu.ID()), Kind: trace.KindDebugStop, Name: act.sp.Name, A: int64(act.id)})
	// The physical processor may serve someone else meanwhile.
	k.rebalance()
	return nil
}

// Resume continues a debugger-stopped activation on a free physical
// processor, exactly where it stopped — no upcall, no fresh activation.
func (d *Debugger) Resume(act *Activation) error {
	k := d.k
	if !d.stopped[act] {
		return fmt.Errorf("core: activation %d is not debugger-stopped", act.id)
	}
	slot := k.freeSlot()
	if slot == nil {
		// Reclaim a processor for the debuggee; the victim space gets the
		// normal preemption protocol (it is not being debugged).
		target := k.hotTargets()
		for _, sp := range k.spaces {
			if sp != act.sp && k.Allocated(sp) > 0 && k.Allocated(sp) >= target[sp] {
				if taken := k.takeFromSpace(sp, 1); len(taken) == 1 {
					slot = taken[0]
					break
				}
			}
		}
	}
	if slot == nil {
		return fmt.Errorf("core: no processor available to resume activation %d", act.id)
	}
	delete(d.stopped, act)
	act.state = actRunning
	act.sp.debugged--
	slot.sp = act.sp
	slot.act = act
	slot.since = k.Eng.Now()
	d.Resumes++
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(slot.cpu.ID()), Kind: trace.KindDebugResume, Name: act.sp.Name, A: int64(act.id)})
	slot.cpu.Dispatch(act.ctx)
	return nil
}

// Stopped reports whether the activation is currently debugger-stopped.
func (d *Debugger) Stopped(act *Activation) bool { return d.stopped[act] }
