package core

import (
	"cmp"
	"slices"
	"sort"

	"schedact/internal/sim"
)

// The processor allocation policy, after Zahorjan and McCann's dynamic
// policy (§4.1): space-share processors while respecting priorities and
// guaranteeing that no processor idles if some space wants one. Processors
// are divided evenly among the address spaces that want them, higher
// priorities served first; if some spaces do not need their even share, the
// leftover is divided evenly among the remainder.
//
// rebalance computes the target allocation and executes the difference:
// over-allocated spaces lose processors (idle-volunteered ones first, with
// the batched double-preemption notification protocol), under-allocated
// spaces are granted the freed ones.

// Policy computes each space's processor entitlement from the registered
// demands. Scheduler activations are "a mechanism, not a policy" (§4): the
// default is the space-sharing dynamic policy below, but experiments can
// install alternatives (e.g. first-come-first-served) via Kernel.SetPolicy.
type Policy func(k *Kernel) map[*Space]int

// SetPolicy installs an allocation policy; nil restores space sharing.
func (k *Kernel) SetPolicy(p Policy) { k.policy = p }

// FirstComeFCFS is an alternative allocation policy: spaces keep whatever
// they grab, in registration order, with no fair division — the ablation
// baseline against space sharing.
func FirstComeFCFS(k *Kernel) map[*Space]int {
	target := make(map[*Space]int, len(k.spaces))
	remaining := len(k.slots)
	for _, sp := range k.spaces {
		if !sp.started || sp.want <= 0 {
			continue
		}
		g := min(sp.want, remaining)
		target[sp] = g
		remaining -= g
	}
	return target
}

// targets computes the per-space processor entitlement in a fresh map.
func (k *Kernel) targets() map[*Space]int {
	if k.policy != nil {
		return k.policy(k)
	}
	return k.fillTargets(make(map[*Space]int, len(k.spaces)))
}

// hotTargets is targets for the steady-state kernel paths (rebalance, the
// unblock steal, debugger resume): same values, computed into per-kernel
// scratch so the allocator itself does not allocate. The map is valid until
// the next hotTargets call; no hot caller holds it across one (takeFromSpace,
// grantSlot, and deliver never recompute targets).
func (k *Kernel) hotTargets() map[*Space]int {
	if k.policy != nil {
		return k.policy(k)
	}
	if k.scratch.target == nil {
		k.scratch.target = make(map[*Space]int, len(k.spaces))
	}
	clear(k.scratch.target)
	return k.fillTargets(k.scratch.target)
}

// fillTargets runs the space-sharing division into target, which must be
// empty.
func (k *Kernel) fillTargets(target map[*Space]int) map[*Space]int {
	remaining := len(k.slots)

	// Eligible spaces, highest priority tier first, stable by registration
	// order within a tier.
	elig := k.scratch.elig[:0]
	for _, sp := range k.spaces {
		if !sp.started || sp.want <= 0 {
			continue
		}
		elig = append(elig, sp)
	}
	slices.SortStableFunc(elig, func(a, b *Space) int {
		return cmp.Compare(b.Priority, a.Priority)
	})
	k.scratch.elig = elig

	unsat := k.scratch.unsat
	for lo := 0; lo < len(elig); {
		hi := lo + 1
		for hi < len(elig) && elig[hi].Priority == elig[lo].Priority {
			hi++
		}
		tier := elig[lo:hi]
		lo = hi
		// Water-fill within the tier: repeatedly divide what remains
		// evenly among spaces still wanting more.
		for remaining > 0 {
			unsat = unsat[:0]
			for _, sp := range tier {
				if target[sp] < sp.want {
					unsat = append(unsat, sp)
				}
			}
			if len(unsat) == 0 {
				break
			}
			share := remaining / len(unsat)
			if share == 0 {
				// Fewer processors than claimants: one each, starting from
				// the rotation index so the odd processor is time-sliced
				// among equal-priority spaces (§4.1). The index advances only
				// on the rotation timer (or ForceRebalance), never on
				// demand-triggered rebalances: if every AddMoreProcessors
				// downcall rotated the targets, three equally hungry spaces
				// on two processors would pass the processors around in a
				// grant/preempt cycle without ever running user code —
				// time-slicing must be sliced by time.
				start := int(k.rotation) % len(unsat)
				for i := 0; i < len(unsat) && remaining > 0; i++ {
					sp := unsat[(start+i)%len(unsat)]
					target[sp]++
					remaining--
				}
				break
			}
			for _, sp := range unsat {
				g := min(share, sp.want-target[sp])
				target[sp] += g
				remaining -= g
			}
		}
	}
	k.scratch.unsat = unsat
	return target
}

// effectiveAllocated counts the space's physical processors plus the
// logical processors occupied by debugger-stopped activations (§4.4) —
// what the allocation policy charges the space for.
func (k *Kernel) effectiveAllocated(sp *Space) int {
	return k.Allocated(sp) + sp.debugged
}

// demandElsewhere reports whether any other space wants more processors
// than it has.
func (k *Kernel) demandElsewhere(sp *Space) bool {
	for _, other := range k.spaces {
		if other != sp && other.started && other.want > k.effectiveAllocated(other) {
			return true
		}
	}
	return false
}

// rebalance moves the machine to the target allocation.
func (k *Kernel) rebalance() {
	if k.inRebal {
		return
	}
	k.inRebal = true
	defer func() { k.inRebal = false }()
	k.Stats.Rebalances++

	target := k.hotTargets()

	// Phase 1: shrink over-allocated spaces, freeing slots. Logical
	// (debugger-held) processors count toward a space's share but only
	// physical ones can be taken.
	for _, sp := range k.spaces {
		if have := k.effectiveAllocated(sp); have > target[sp] {
			n := have - target[sp]
			if phys := k.Allocated(sp); n > phys {
				n = phys
			}
			if n > 0 {
				k.takeFromSpace(sp, n)
			}
		}
	}

	// Phase 2: grant free slots to under-allocated spaces, highest priority
	// first, stable by ID.
	if k.AblateNoGrant {
		// Deliberately broken allocator (see chaos.go): free processors are
		// stranded while spaces want them, violating work conservation.
		return
	}
	claimants := k.scratch.claimants[:0]
	for _, sp := range k.spaces {
		if sp.started && k.effectiveAllocated(sp) < target[sp] {
			claimants = append(claimants, sp)
		}
	}
	slices.SortStableFunc(claimants, func(a, b *Space) int {
		return cmp.Compare(b.Priority, a.Priority)
	})
	k.scratch.claimants = claimants
	for _, sp := range claimants {
		for k.effectiveAllocated(sp) < target[sp] {
			slot := k.freeSlot()
			if slot == nil {
				return
			}
			k.grantSlot(slot, sp, nil)
		}
	}
}

// EnableLeftoverRotation arms a periodic rebalance so that when the number
// of processors is not an integer multiple of the number of equal-priority
// address spaces that want them, the odd processor rotates among them:
// "processors are time-sliced only if the number of available processors is
// not an integer multiple of the number of address spaces (at the same
// priority) that want them" (§4.1). Each tick advances the rotation index
// used by the water-filling policy's remainder distribution.
func (k *Kernel) EnableLeftoverRotation(period sim.Duration) {
	var tick func()
	tick = func() {
		k.rotation++
		k.rebalance()
		k.Eng.After(period, "leftover-rotation", tick)
	}
	k.Eng.After(period, "leftover-rotation", tick)
}

// liveUsage is a space's accumulated processor time including the
// occupancies still in progress.
func (k *Kernel) liveUsage(sp *Space) sim.Duration {
	u := sp.Usage
	for _, s := range k.slots {
		if s.sp == sp && s.act != nil {
			u += k.Eng.Now().Sub(s.since)
		}
	}
	return u
}

// MultiLevelFeedback is the §3.2 incentive policy: "multi-level feedback
// can be used to encourage applications to provide honest information for
// processor allocation decisions. The processor allocator can favor address
// spaces that use fewer processors and penalize those that use more." It is
// the space-sharing division with remainders and contended single
// processors awarded to the spaces with the least accumulated processor
// usage.
func MultiLevelFeedback(k *Kernel) map[*Space]int {
	target := make(map[*Space]int, len(k.spaces))
	remaining := len(k.slots)

	prios := map[int][]*Space{}
	var order []int
	for _, sp := range k.spaces {
		if !sp.started || sp.want <= 0 {
			continue
		}
		if _, ok := prios[sp.Priority]; !ok {
			order = append(order, sp.Priority)
		}
		prios[sp.Priority] = append(prios[sp.Priority], sp)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(order)))

	for _, p := range order {
		tier := prios[p]
		for remaining > 0 {
			var unsat []*Space
			for _, sp := range tier {
				if target[sp] < sp.want {
					unsat = append(unsat, sp)
				}
			}
			if len(unsat) == 0 {
				break
			}
			// Light users first (counting in-progress occupancy, or a
			// space holding the machine would never look like a heavy
			// user).
			sort.SliceStable(unsat, func(i, j int) bool {
				return k.liveUsage(unsat[i]) < k.liveUsage(unsat[j])
			})
			share := remaining / len(unsat)
			if share == 0 {
				for i := 0; i < len(unsat) && remaining > 0; i++ {
					target[unsat[i]]++
					remaining--
				}
				break
			}
			for _, sp := range unsat {
				g := min(share, sp.want-target[sp])
				target[sp] += g
				remaining -= g
			}
		}
	}
	return target
}
