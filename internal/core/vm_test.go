package core

import (
	"testing"

	"schedact/internal/sim"
)

func TestPageFaultBlocksAndResumes(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	vm := k.NewVM()
	vm.Preload(1, 2)
	c := &ioTestClient{t: t, eng: eng, k: k}
	sp := k.NewSpace("app", 0, c)
	var phases []sim.Time
	c.worker = k.M.NewWorker("T", nil)
	c.thread = eng.Go("T", func(co *sim.Coroutine) {
		vm.Touch(c.cur, 1) // resident: free
		phases = append(phases, eng.Now())
		vm.Touch(c.cur, 7) // fault: blocks ~50ms
		phases = append(phases, eng.Now())
		vm.Touch(c.cur, 7) // now resident: free
		phases = append(phases, eng.Now())
	})
	sp.Start()
	eng.Run()
	if len(phases) != 3 {
		t.Fatalf("phases = %v, want 3", phases)
	}
	if phases[0] >= sim.Time(sim.Millisecond*40) {
		t.Fatalf("resident touch at %v should be immediate", phases[0])
	}
	if d := phases[1].Sub(phases[0]); d < 50*sim.Millisecond {
		t.Fatalf("fault resolved in %v, want >= disk latency", d)
	}
	if d := phases[2].Sub(phases[1]); d > sim.Millisecond {
		t.Fatalf("second touch of a now-resident page took %v", d)
	}
	if vm.Stats.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", vm.Stats.Faults)
	}
	checkInv(t, k)
}

func TestFaultNotificationDelayedWhenEntryPageFaulting(t *testing.T) {
	// The §3.1 corner case: the upcall that would notify the space of a
	// page fault would itself fault (the entry page is out); the kernel
	// must delay the notification until that page is in.
	eng, k := newTestKernel(t, 1)
	vm := k.NewVM()
	c := &ioTestClient{t: t, eng: eng, k: k}
	sp := k.NewSpace("app", 0, c)
	const entryPage = 100
	vm.SetEntryPage(sp, entryPage) // never preloaded: out of memory
	var faulted sim.Time
	c.worker = k.M.NewWorker("T", nil)
	c.thread = eng.Go("T", func(co *sim.Coroutine) {
		vm.Touch(c.cur, 7)
		faulted = eng.Now()
	})
	sp.Start()
	eng.Run()
	if faulted == 0 {
		t.Fatal("thread never resumed")
	}
	if vm.Stats.DelayedUpcalls != 1 {
		t.Fatalf("DelayedUpcalls = %d, want 1", vm.Stats.DelayedUpcalls)
	}
	// The Blocked upcall must have arrived only after the entry page's own
	// 50ms fetch.
	var blockedAt sim.Time = -1
	for i, b := range c.batches {
		for _, ev := range b {
			if ev.Kind == EvBlocked {
				// batches are recorded in order; estimate via index: the
				// Blocked upcall is the second batch. Timing is asserted
				// through the entry page being resident by then.
				_ = i
				blockedAt = 0
			}
		}
	}
	if blockedAt < 0 {
		t.Fatal("no Blocked upcall delivered at all")
	}
	if !vm.Resident(entryPage) {
		t.Fatal("entry page should have been fetched before the notification")
	}
	checkInv(t, k)
}

func TestEvictCausesRefault(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	vm := k.NewVM()
	vm.Preload(3)
	c := &ioTestClient{t: t, eng: eng, k: k}
	sp := k.NewSpace("app", 0, c)
	c.worker = k.M.NewWorker("T", nil)
	c.thread = eng.Go("T", func(co *sim.Coroutine) {
		vm.Touch(c.cur, 3) // free
		vm.Evict(3)
		vm.Touch(c.cur, 3) // faults
	})
	sp.Start()
	eng.Run()
	if vm.Stats.Faults != 1 {
		t.Fatalf("Faults = %d, want 1 after eviction", vm.Stats.Faults)
	}
	checkInv(t, k)
}
