package core

import (
	"fmt"

	"schedact/internal/trace"
)

// VM models the kernel's virtual-memory involvement in scheduling: a thread
// that touches a non-resident page faults and blocks in the kernel exactly
// as for I/O — the processor returns to the space with a Blocked upcall and
// the thread comes back with Unblocked when the page arrives (§3.1 treats
// page faults and I/O with one mechanism).
//
// Two refinements from the paper:
//
//   - Faults on a page already being fetched coalesce: one disk read, all
//     faulting threads unblocked together.
//
//   - "The only added complication for the kernel is that an upcall to
//     notify the program of a page fault may in turn page fault on the same
//     location; the kernel must check for this, and when it occurs, delay
//     the subsequent upcall until the page fault completes." The page
//     holding the thread system's upcall entry is registered with
//     SetEntryPage; if a fault's notification would land while that page is
//     itself being fetched, the processor waits and the upcall is delivered
//     when the fetch finishes.
type VM struct {
	k        *Kernel
	resident map[int]bool
	// faulting maps an in-flight page to completion callbacks.
	faulting map[int][]func()
	// entryPage, per space, is the page the upcall entry point lives on.
	entryPage map[*Space]int

	Stats struct {
		Faults         uint64
		Coalesced      uint64
		DelayedUpcalls uint64
	}
}

// NewVM creates the kernel's pager. Pages start non-resident; Preload marks
// pages resident without charge.
func (k *Kernel) NewVM() *VM {
	return &VM{
		k:         k,
		resident:  make(map[int]bool),
		faulting:  make(map[int][]func()),
		entryPage: make(map[*Space]int),
	}
}

// Reset returns the pager to its construction state for a fresh run: all
// pages non-resident, no fetches in flight, no entry pages registered, stats
// zeroed. Call only after the owning kernel (and engine) have been Reset, so
// no faulting thread still holds a completion callback.
func (vm *VM) Reset() {
	clear(vm.resident)
	clear(vm.faulting)
	clear(vm.entryPage)
	vm.Stats.Faults = 0
	vm.Stats.Coalesced = 0
	vm.Stats.DelayedUpcalls = 0
}

// Preload marks pages resident (program load / warm start).
func (vm *VM) Preload(pages ...int) {
	for _, p := range pages {
		vm.resident[p] = true
	}
}

// Resident reports whether a page is in memory.
func (vm *VM) Resident(page int) bool { return vm.resident[page] }

// SetEntryPage registers the page holding sp's upcall entry point, enabling
// the delayed-upcall check. Passing a negative page disables it.
func (vm *VM) SetEntryPage(sp *Space, page int) {
	vm.entryPage[sp] = page
}

// Touch accesses a page from the thread currently computing in act's
// context. A resident page costs nothing extra (the cache-hit cost is the
// application's to charge); a non-resident page faults: the thread blocks
// in the kernel and the page is fetched from disk.
func (vm *VM) Touch(act *Activation, page int) {
	if vm.resident[page] {
		return
	}
	vm.fault(act, page)
}

// fault implements the blocking fault path. It parallels Kernel.BlockIO but
// with coalescing and the delayed-notification check.
func (vm *VM) fault(act *Activation, page int) {
	k := vm.k
	vm.Stats.Faults++
	w := act.ctx.Worker()
	if w == nil {
		panic(fmt.Sprintf("core: page fault on act%d with no computation", act.id))
	}
	// Kernel entry: the page-fault trap.
	w.Exec(k.C.Trap + k.C.KTBlockWork)
	cur := w.Bound().Owner.(*Activation)
	act = cur
	sp := act.sp
	slot := k.slotFor(act.ctx.CPU())
	if slot.act != act {
		panic(fmt.Sprintf("core: faulting act%d does not host its processor", act.id))
	}
	slot.cpu.Release(act.ctx)
	slot.sp.Usage += k.Eng.Now().Sub(slot.since)
	act.state = actBlocked
	slot.act = nil
	k.Stats.Blocks++
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(slot.cpu.ID()), Kind: trace.KindFault, Name: sp.Name, A: int64(act.id), B: int64(page)})

	// Arrange the wake-up first: coalesce with an in-flight fetch if one
	// exists.
	if waiters, inFlight := vm.faulting[page]; inFlight {
		vm.Stats.Coalesced++
		vm.faulting[page] = append(waiters, func() { k.unblock(act) })
	} else {
		vm.faulting[page] = []func(){func() { k.unblock(act) }}
		k.M.Disk.Request(func() {
			vm.resident[page] = true
			done := vm.faulting[page]
			delete(vm.faulting, page)
			for _, fn := range done {
				fn()
			}
		})
	}

	// Deliver the Blocked notification on the now-free processor — unless
	// the space's upcall entry page is itself mid-fetch, in which case the
	// notification (and the processor) waits for it.
	deliver := func() {
		if slot.sp == sp && slot.act == nil {
			k.deliver(slot, sp, []Event{{Kind: EvBlocked, Act: act}}, k.C.SAUpcallWork)
		}
		// Otherwise the processor moved on while we were delayed; the
		// blocked thread still comes back via the Unblocked upcall.
	}
	if ep, ok := vm.entryPage[sp]; ok && ep >= 0 && !vm.resident[ep] {
		if _, epInFlight := vm.faulting[ep]; epInFlight {
			vm.Stats.DelayedUpcalls++
			k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(slot.cpu.ID()), Kind: trace.KindFaultDelayed, Name: sp.Name, A: int64(ep)})
			vm.faulting[ep] = append(vm.faulting[ep], deliver)
		} else {
			// Entry page evicted and not being fetched: fetch it now, then
			// deliver.
			vm.Stats.DelayedUpcalls++
			vm.faulting[ep] = []func(){deliver}
			k.M.Disk.Request(func() {
				vm.resident[ep] = true
				done := vm.faulting[ep]
				delete(vm.faulting, ep)
				for _, fn := range done {
					fn()
				}
			})
		}
	} else {
		deliver()
	}

	// Park the faulting thread; it resumes in a new vessel after Unblocked.
	w.AwaitDispatch("page-fault")
	w.Exec(k.C.Trap) // return from the fault
}

// Evict drops pages from memory (tests and memory-pressure experiments).
func (vm *VM) Evict(pages ...int) {
	for _, p := range pages {
		delete(vm.resident, p)
	}
}
