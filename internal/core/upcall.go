package core

import (
	"fmt"
	"strconv"

	"schedact/internal/machine"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// packEvs flattens an upcall event vector into the count plus two packed
// words a trace.KindUpcall record carries: up to four inline EvRefs, the
// rest represented only by the count. No allocation.
func packEvs(events []Event) (n, c, d int64) {
	var refs [4]trace.EvRef
	for i, ev := range events {
		if i >= 4 {
			break
		}
		id := -1
		if ev.Act != nil {
			id = ev.Act.id
		}
		refs[i] = trace.MakeEvRef(trace.UpEv(ev.Kind), id)
	}
	c, d = trace.PackEvRefs(refs)
	return int64(len(events)), c, d
}

// deliver creates a fresh activation for sp, dispatches it on slot's
// processor, and upcalls into the space with events. cost is the kernel-side
// upcall latency charged in the activation before user code runs.
func (k *Kernel) deliver(slot *cpuSlot, sp *Space, events []Event, cost sim.Duration) {
	if slot.act != nil {
		panic(fmt.Sprintf("core: deliver on cpu%d still hosting act%d", slot.cpu.ID(), slot.act.id))
	}
	if slot.sp != sp {
		panic(fmt.Sprintf("core: deliver to %q on cpu%d allocated to someone else", sp.Name, slot.cpu.ID()))
	}
	// A vessel birth is the moment to pay for past funerals: reclaim any
	// retired activations whose contexts are now unwindable.
	k.sweepRetiring()
	// Any upcall is a chance to deliver notifications that had to be
	// delayed while the space had no processors.
	events = append(events, sp.drainPending()...)
	if k.UpcallPerturb != nil {
		// Fault injection: stretch the kernel-side upcall latency, widening
		// the stillborn window in which a fresh activation can itself be
		// preempted before reaching user code.
		if extra := k.UpcallPerturb(); extra > 0 {
			cost += extra
		}
	}
	k.actSeq++
	if k.poolFree > 0 {
		k.poolFree--
		k.Stats.ActRecycles++
	} else {
		k.Stats.ActCreates++
	}
	var act *Activation
	if n := len(k.actFree); n > 0 {
		act = k.actFree[n-1]
		k.actFree[n-1] = nil
		k.actFree = k.actFree[:n-1]
		act.sp = sp
		act.id = k.actSeq
		act.state = actRunning
		act.entered = false
	} else {
		act = &Activation{k: k, sp: sp, id: k.actSeq, state: actRunning}
	}
	// The activation owns its event vector: callers pass scratch that dies
	// with this call, and the upcall handler reads act.events through the
	// body closure built once per struct.
	act.events = append(act.events[:0], events...)
	act.cost = cost
	if act.body == nil {
		a := act
		a.body = func(c *machine.Context) {
			c.Exec(a.cost)
			if a.state != actRunning {
				// Preempted at the very instant the upcall cost completed: the
				// exec-done event had already scheduled this coroutine's resume,
				// so the preemption banked nothing and the kernel treated the
				// activation as stillborn — discarded, events requeued. User
				// code must not run in a dead vessel.
				return
			}
			a.entered = true
			a.sp.client.Upcall(a, a.events)
			if a.state == actRunning && a.k.slotFor(a.slot.cpu).act == a {
				panic(fmt.Sprintf("core: upcall handler for act%d returned while still holding cpu%d", a.id, a.slot.cpu.ID()))
			}
		}
	}
	act.slot = slot
	sp.acts[act.id] = act
	slot.act = act
	slot.idle = false
	k.Stats.Upcalls++
	for _, ev := range act.events {
		k.Stats.UpcallEvents[ev.Kind]++
	}
	evn, evc, evd := packEvs(act.events)
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(slot.cpu.ID()), Kind: trace.KindUpcall, Name: sp.Name, A: int64(act.id), B: evn, C: evc, D: evd})
	k.nameBuf = append(k.nameBuf[:0], sp.Name...)
	k.nameBuf = append(k.nameBuf, ":act"...)
	k.nameBuf = strconv.AppendInt(k.nameBuf, int64(act.id), 10)
	act.ctx = k.M.NewContext(string(k.nameBuf), act.body)
	act.ctx.Owner = act
	slot.since = k.Eng.Now()
	slot.cpu.Dispatch(act.ctx)
}

// grantSlot allocates a free slot to sp and delivers the AddProcessor
// upcall, folding in any extra and pending events.
func (k *Kernel) grantSlot(slot *cpuSlot, sp *Space, extra []Event) {
	if slot.sp != nil {
		panic(fmt.Sprintf("core: grant of cpu%d still allocated to %q", slot.cpu.ID(), slot.sp.Name))
	}
	slot.sp = sp
	k.Stats.Grants++
	// Scratch, not a fresh slice: deliver copies the vector into the
	// activation before returning, so the buffer is free again by the time
	// any caller issues the next grant.
	events := append(k.scratch.grantEvs[:0], Event{Kind: EvAddProcessor})
	events = append(events, extra...)
	k.scratch.grantEvs = events
	k.deliver(slot, sp, events, k.C.SAUpcallWork+k.C.IPI)
}

// stopHosted preempts the activation hosting slot's processor. For an
// activation whose upcall never reached user code (stillborn), the
// activation is discarded internally and its undelivered events (minus any
// AddProcessor, since that grant is being revoked) are returned for
// requeueing; otherwise a Preempted event carrying the activation is
// returned.
func (k *Kernel) stopHosted(slot *cpuSlot) []Event {
	act := slot.act
	if act == nil {
		panic(fmt.Sprintf("core: stopping unhosted cpu%d", slot.cpu.ID()))
	}
	slot.cpu.Preempt()
	slot.sp.Usage += k.Eng.Now().Sub(slot.since)
	slot.act = nil
	if !act.entered {
		act.state = actDiscarded
		sp := act.sp
		delete(sp.acts, act.id)
		k.poolFree++
		keep := k.scratch.stopEvs[:0]
		for _, ev := range act.events {
			if ev.Kind != EvAddProcessor {
				keep = append(keep, ev)
			}
		}
		k.scratch.stopEvs = keep
		k.retire(act)
		k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(slot.cpu.ID()), Kind: trace.KindStillborn, Name: sp.Name, A: int64(act.id), B: int64(len(keep))})
		return keep
	}
	act.state = actStopped
	evs := append(k.scratch.stopEvs[:0], Event{Kind: EvPreempted, Act: act})
	k.scratch.stopEvs = evs
	return evs
}

// retire stages a discarded activation for physical reclamation: its vessel
// coroutine is unwound and its structs recycled at a later sweepRetiring,
// once the machine confirms nothing can ever run in the vessel again. This
// is bookkeeping only — the modelled pool is the poolFree counter, which
// the callers already credited.
func (k *Kernel) retire(act *Activation) {
	k.retiring = append(k.retiring, act)
}

// takeSlot involuntarily removes a processor from its space: the hosted
// activation is stopped mid-whatever-it-was-doing (its thread's unconsumed
// computation banks in its Worker) and the slot becomes free. The caller is
// responsible for delivering the returned events to the victim space.
func (k *Kernel) takeSlot(slot *cpuSlot) []Event {
	sp := slot.sp
	events := k.stopHosted(slot)
	slot.sp = nil
	slot.idle = false
	k.Stats.Takes++
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(slot.cpu.ID()), Kind: trace.KindTake, Name: sp.Name})
	return events
}

// interruptSlot stops the hosted activation but keeps the processor
// allocated to the same space — used when the kernel needs a vessel on one
// of the space's own processors (unblock notification, priority interrupt).
func (k *Kernel) interruptSlot(slot *cpuSlot) []Event {
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(slot.cpu.ID()), Kind: trace.KindInterrupt, Name: slot.sp.Name})
	return k.stopHosted(slot)
}

// releaseSlot frees a processor voluntarily given back by its hosting
// activation (idle downcall accepted, or YieldProcessor). The activation is
// discarded on the spot; no Preempted notification is owed since the vessel
// carried no thread state the user level doesn't already know about.
func (k *Kernel) releaseSlot(slot *cpuSlot, act *Activation) {
	if slot.act != act {
		panic(fmt.Sprintf("core: releaseSlot: act%d does not host cpu%d", act.id, slot.cpu.ID()))
	}
	slot.cpu.Release(act.ctx)
	slot.sp.Usage += k.Eng.Now().Sub(slot.since)
	act.state = actDiscarded
	sp := act.sp
	delete(sp.acts, act.id)
	k.poolFree++
	k.retire(act)
	slot.sp = nil
	slot.act = nil
	slot.idle = false
	k.Stats.Takes++
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(slot.cpu.ID()), Kind: trace.KindYield, Name: sp.Name, A: int64(act.id)})
}

// takeFromSpace removes n processors from victim (idle-volunteered slots
// first) and notifies it: if the victim still holds a processor afterwards,
// the kernel performs one extra preemption there to deliver the batched
// Preempted events in a fresh activation (the paper's double-preemption
// protocol); otherwise the notifications are delayed until the space is next
// granted a processor.
func (k *Kernel) takeFromSpace(victim *Space, n int) []*cpuSlot {
	var taken []*cpuSlot
	var events []Event
	// Idle-volunteered slots first, then the rest in CPU order.
	for pass := 0; pass < 2 && len(taken) < n; pass++ {
		for _, s := range k.slots {
			if len(taken) >= n {
				break
			}
			if s.sp != victim || s.act == nil {
				continue
			}
			if pass == 0 && !s.idle {
				continue
			}
			alreadyTaken := false
			for _, t := range taken {
				if t == s {
					alreadyTaken = true
				}
			}
			if alreadyTaken {
				continue
			}
			events = append(events, k.takeSlot(s)...)
			taken = append(taken, s)
		}
	}
	if len(events) > 0 {
		k.notify(victim, events)
	}
	return taken
}

// notify delivers Preempted (or other) events to sp: on one of its own
// processors via an extra preemption if it has any, otherwise delayed.
func (k *Kernel) notify(sp *Space, events []Event) {
	if k.AblateDropEvent {
		// Deliberately broken notification path (see chaos.go): the events —
		// and any thread state riding them — are silently lost.
		return
	}
	for _, s := range k.slots {
		if s.sp == sp && s.act != nil {
			// events may alias the stopEvs scratch (ChaosPreempt passes
			// takeSlot's return straight here), and interruptSlot is about to
			// overwrite that scratch — merge into notify's own buffer first.
			merged := append(k.scratch.notifyEvs[:0], events...)
			evs := k.interruptSlot(s)
			merged = append(merged, evs...)
			k.scratch.notifyEvs = merged
			k.Stats.DoublePreempts++
			k.deliver(s, sp, merged, k.C.SAUpcallWork+k.C.IPI)
			return
		}
	}
	sp.pending = append(sp.pending, events...)
	k.Stats.DelayedNotifies += uint64(len(events))
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: -1, Kind: trace.KindNotifyDelayed, Name: sp.Name, A: int64(len(events))})
}

// InterruptProcessor is the priority-scheduling extension of §3.1: the user
// level, knowing exactly which thread runs on each of its processors, asks
// the kernel to stop the thread on one of them; the kernel preempts it and
// starts a scheduler activation there. via must not be the activation on
// the target processor.
//
// It reports whether the interrupt was performed. The caller's processor
// map is inherently one trap stale: while the request charges its way into
// the kernel, the target may be reallocated to another space or lose its
// vessel. The kernel validates and rejects such requests — the caller's
// next upcall carries the truth it was missing.
func (sp *Space) InterruptProcessor(via *Activation, cpu int) bool {
	k := sp.k
	via.ctx.Exec(k.C.Trap + k.C.SANotifyWork)
	slot := k.slots[cpu]
	if slot.act == via {
		panic("core: InterruptProcessor on the caller's own processor")
	}
	if slot.sp != sp || slot.act == nil {
		k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(cpu), Kind: trace.KindInterruptStale, Name: sp.Name})
		return false
	}
	evs := k.interruptSlot(slot)
	k.deliver(slot, sp, evs, k.C.SAUpcallWork+k.C.IPI)
	return true
}
