package core

import (
	"fmt"

	"schedact/internal/sim"
	"schedact/internal/trace"
)

// EventKind enumerates the upcall points of Table 2.
type EventKind int

const (
	// EvAddProcessor: "Add this processor. (Execute a runnable user-level
	// thread.)"
	EvAddProcessor EventKind = iota
	// EvPreempted: "Processor has been preempted (preempted activation #
	// and its machine state). (Return to the ready list the user-level
	// thread that was executing in the context of the preempted scheduler
	// activation.)"
	EvPreempted
	// EvBlocked: "Scheduler activation has blocked (blocked activation #).
	// (The blocked scheduler activation is no longer using its processor.)"
	EvBlocked
	// EvUnblocked: "Scheduler activation has unblocked (unblocked
	// activation # and its machine state). (Return to the ready list the
	// user-level thread that was executing in the context of the blocked
	// scheduler activation.)"
	EvUnblocked
)

func (e EventKind) String() string {
	switch e {
	case EvAddProcessor:
		return "AddProcessor"
	case EvPreempted:
		return "Preempted"
	case EvBlocked:
		return "Blocked"
	case EvUnblocked:
		return "Unblocked"
	}
	return "invalid"
}

// Event is one kernel event vectored to user level. Events occurring in
// combination are passed together in a single upcall, exactly as in the
// paper ("when this occurs, a single upcall is made that passes all of the
// events that need to be handled").
type Event struct {
	Kind EventKind
	// Act is the affected activation: the preempted, blocked, or unblocked
	// vessel whose user-level thread state the client must recover. It is
	// nil for AddProcessor.
	Act *Activation
}

func (e Event) String() string {
	if e.Act == nil {
		return e.Kind.String()
	}
	return fmt.Sprintf("%s(act%d)", e.Kind, e.Act.id)
}

// Client is the user-level thread system's upcall entry point — the "fixed
// entry point" the kernel upcalls into. Upcall runs inside the root
// coroutine of the fresh activation act, which is already dispatched on a
// processor and has paid the kernel's upcall cost.
//
// The handler owns the activation as a vessel: it may process the events,
// run user-level threads in its context, and make downcalls. It must not
// return while the activation still holds its processor, except after
// Activation.YieldProcessor.
type Client interface {
	Upcall(act *Activation, events []Event)
}

// ClientFunc adapts a function to the Client interface.
type ClientFunc func(act *Activation, events []Event)

// Upcall implements Client.
func (f ClientFunc) Upcall(act *Activation, events []Event) { f(act, events) }

// Space is an address space under the scheduler-activation kernel.
type Space struct {
	k        *Kernel
	ID       int
	Name     string
	Priority int
	client   Client

	want     int // processors the space currently desires (kernel's view)
	debugged int // activations frozen on logical processors (§4.4)
	pending  []Event
	acts     map[int]*Activation

	// Usage accumulates processor time consumed by the space — the input
	// to usage-sensitive allocation policies (§3.2's multi-level feedback).
	Usage sim.Duration

	started bool
}

// NewSpace registers an address space with its upcall handler. The space
// receives no processors until Start.
func (k *Kernel) NewSpace(name string, priority int, client Client) *Space {
	sp := &Space{
		k:        k,
		ID:       len(k.spaces),
		Name:     name,
		Priority: priority,
		client:   client,
		acts:     make(map[int]*Activation),
	}
	k.spaces = append(k.spaces, sp)
	return sp
}

// Kernel returns the owning kernel.
func (sp *Space) Kernel() *Kernel { return sp.k }

// Start gives the program its initial processor: the kernel creates a
// scheduler activation, assigns it to a processor, and upcalls into the
// space at its entry point, where the thread system initializes itself and
// runs the main thread.
func (sp *Space) Start() {
	if sp.started {
		panic(fmt.Sprintf("core: space %q started twice", sp.Name))
	}
	sp.started = true
	if sp.want < 1 {
		sp.want = 1
	}
	sp.k.rebalance()
}

// Want reports the space's registered processor demand.
func (sp *Space) Want() int { return sp.want }

// --- Table 3: communication from the address space to the kernel ---

// AddMoreProcessors is the downcall "Add more processors (additional # of
// processors needed)": the space has more runnable threads than processors.
// It is a hint; the kernel allocates only what the policy allows. The
// caller charges the notification against the activation it runs on.
func (sp *Space) AddMoreProcessors(via *Activation, additional int) {
	if additional <= 0 {
		return
	}
	k := sp.k
	via.ctx.Exec(k.C.Trap + k.C.SANotifyWork)
	sp.want = k.Allocated(sp) + additional
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(via.cpuID()), Kind: trace.KindAddMore, Name: sp.Name, A: int64(additional), B: int64(sp.want)})
	k.rebalance()
}

// ProcessorIsIdle is the downcall "This processor is idle (): Preempt this
// processor if another address space needs it." If some other space wants a
// processor the kernel takes this one immediately and the call reports
// true: the vessel has lost its processor and the caller must stop using
// it. Otherwise the processor is marked idle-available and the space keeps
// it until someone needs it.
func (sp *Space) ProcessorIsIdle(via *Activation) (taken bool) {
	k := sp.k
	via.ctx.Exec(k.C.Trap + k.C.SANotifyWork)
	if via.ctx.CPU() == nil || via.state != actRunning {
		// The processor was preempted away while we were trapping in;
		// from the caller's point of view it is gone either way.
		return true
	}
	slot := k.slotFor(via.ctx.CPU())
	if slot.act != via {
		panic(fmt.Sprintf("core: idle downcall from %d not hosting its cpu", via.id))
	}
	if sp.want > k.Allocated(sp)-1 {
		sp.want = k.Allocated(sp) - 1
	}
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(via.cpuID()), Kind: trace.KindIdleDowncall, Name: sp.Name, A: int64(sp.want)})
	if k.demandElsewhere(sp) {
		// Taken on the spot: the give-back is voluntary, so no Preempted
		// notification is owed.
		k.releaseSlot(slot, via)
		k.rebalance()
		return true
	}
	slot.idle = true
	return false
}

// KernelSetDemand is the kernel-internal demand path for address spaces the
// kernel has its own information about (the paper keeps binary-compatible
// Topaz kernel-thread applications competing for processors through
// "internal kernel data structures"). It adjusts the space's desired
// processor count without a user-level notification and without charge.
func (sp *Space) KernelSetDemand(n int) {
	sp.want = n
	sp.k.rebalance()
}

// drainPending returns and clears queued events awaiting delivery.
func (sp *Space) drainPending() []Event {
	evs := sp.pending
	sp.pending = nil
	return evs
}
