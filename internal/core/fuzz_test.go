// Fuzzing the Table 2 / Table 3 protocol: random well-formed
// downcall/upcall sequences — byte-scripted workloads on the real
// FastThreads client plus byte-scheduled kernel-side disturbances — with
// the chaos auditor's invariant battery armed. Lives in package core_test
// so it can use the chaos auditor (which imports core).
package core_test

import (
	"strings"
	"testing"

	"schedact/internal/chaos"
	"schedact/internal/core"
	"schedact/internal/sim"
	"schedact/internal/trace"
	"schedact/internal/uthread"
)

// fuzzScript consumes the fuzz input as an endless byte stream (wrapping
// around), so every prefix of the input shapes the run and mutations keep
// the tail meaningful.
type fuzzScript struct {
	b []byte
	i int
}

func (s *fuzzScript) next() byte {
	if len(s.b) == 0 {
		return 0
	}
	v := s.b[s.i%len(s.b)]
	s.i++
	return v
}

// fuzzOp is one scripted thread operation, decoded up front so the plan is
// a pure function of the input bytes.
type fuzzOp struct {
	kind byte
	arg  int
}

// fuzzDisturb is one scripted kernel-side disturbance: a preemption,
// forced rebalance, page eviction, or competing demand pulse at a scripted
// virtual time.
type fuzzDisturb struct {
	at   sim.Duration
	kind byte
	arg  int
}

// FuzzUpcallDowncall drives byte-scripted mixtures of every downcall
// (AddMoreProcessors, ProcessorIsIdle via the idle protocol, BlockIO, page
// faults, kernel-event wait/signal) against byte-scripted storms of
// preemptions, reallocations, and evictions, and demands that the chaos
// auditor's invariants hold and every thread finishes once the storm ends.
func FuzzUpcallDowncall(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{3, 7, 31, 127, 255, 0, 64, 8})
	f.Add([]byte("scheduler activations"))
	f.Add([]byte{5, 5, 5, 5, 2, 2, 2, 2, 6, 6, 6, 6})
	f.Add([]byte{0xff, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01, 0x00})
	// Past findings, kept as regression seeds. The first entered user code
	// in a vessel whose activation had been discarded as stillborn by a
	// preemption landing at the exact instant the upcall cost completed.
	// The second left a phantom vessel record behind when a Blocked event's
	// stillborn delivery was rerouted to another processor, stranding the
	// space with stale demand accounting. (The "scheduler activations" seed
	// above is also a past finding: it stranded a recovered thread when an
	// over-cap upcall yielded its processor without waking an idle vessel.)
	f.Add([]byte{0x03, 0x07, 0x48, 0x00})
	f.Add([]byte{3, 53, 56, 50, 48, 48})
	// Third finding: a recovery drain spun for the ready-list lock while the
	// preempted lock holder sat behind it in the same recovery queue — the
	// §3.3 continuation has to happen before any commit that takes a lock.
	f.Add([]byte{56, 46, 50, 50, 255})
	// Fourth finding: a thread accepted into the recovery queue while the
	// last busy vessel was mid-idle-downcall was never drained — the
	// pre-park recheck looked at ready lists but not the recovery queue.
	f.Add([]byte{37, 56, 48, 48})
	// Fifth finding: a priority-preemption request raced a reallocation and
	// named a processor the space no longer held; the kernel panicked on a
	// request that is legitimately one trap stale and must be rejected.
	f.Add([]byte("sivationa"))
	// Sixth finding: the unblock steal refused to take an idle-volunteered
	// processor from a higher-priority space that wanted zero processors,
	// delaying the unblock forever on an otherwise idle machine.
	f.Add([]byte{48, 55, 120, 67, 95, 95, 95, 55, 50, 120, 50, 0, 50, 32, 50, 34})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip("empty script")
		}
		if len(data) > 128 {
			data = data[:128]
		}
		fuzzOnce(t, data)
	})
}

func fuzzOnce(t *testing.T, data []byte) {
	sc := &fuzzScript{b: data}
	eng := sim.NewEngine(sim.WithLabel("fuzz upcall/downcall"))
	defer eng.Close()
	tr := trace.New(2048)
	cpus := 1 + int(sc.next()%4)
	k := core.New(eng, core.Config{CPUs: cpus, Trace: tr})
	vm := k.NewVM()
	aud := chaos.Attach(k, tr, 250*sim.Microsecond)

	// Decode the workload: one or two spaces of scripted threads.
	finished, total := 0, 0
	nspaces := 1 + int(sc.next()%2)
	var scheds []*uthread.Sched
	for si := 0; si < nspaces; si++ {
		maxVPs := 1 + int(sc.next())%cpus
		s := uthread.OnActivations(k, "fz", int(sc.next()%2), maxVPs, uthread.Options{Trace: tr})
		scheds = append(scheds, s)
		mu := s.NewMutex()
		nthreads := 1 + int(sc.next()%4)
		total += nthreads
		for ti := 0; ti < nthreads; ti++ {
			work := sim.Duration(1+int(sc.next()))*20*sim.Microsecond + 10*sim.Microsecond
			plan := make([]fuzzOp, 1+int(sc.next()%6))
			for i := range plan {
				plan[i] = fuzzOp{kind: sc.next() % 8, arg: int(sc.next())}
			}
			prio := int(sc.next() % 2)
			s.SpawnPrio("t", prio, func(th *uthread.Thread) {
				for _, op := range plan {
					switch op.kind {
					case 0:
						th.Exec(work)
					case 1:
						mu.Lock(th)
						th.Exec(work / 4)
						mu.Unlock(th)
					case 2:
						th.BlockIO()
					case 3:
						th.TouchPage(vm, op.arg%8)
					case 4:
						th.Yield()
					case 5:
						// Kernel-event handshake on a fresh event: the forked
						// signaller polls until the waiter is registered in
						// the kernel, so the signal cannot be lost and the
						// waiter cannot park forever. It must yield between
						// polls — on a one-processor allocation the waiter
						// needs this processor to reach KernelWait at all.
						e := k.NewKernelEvent()
						c := th.Fork("sig", func(c *uthread.Thread) {
							c.Exec(work / 4)
							for e.Waiters() == 0 {
								c.Exec(20 * sim.Microsecond)
								c.Yield()
							}
							c.KernelSignal(e)
						})
						th.KernelWait(e)
						th.Join(c)
					case 6:
						c := th.Fork("child", func(c *uthread.Thread) { c.Exec(work / 2) })
						th.Join(c)
					case 7:
						th.Exec(work * 4)
					}
				}
				finished++
			})
		}
		s.Start()
	}

	// The competing space behind the demand-pulse disturbance, created
	// lazily so scripts without that disturbance have no extra space. It
	// never runs user threads; its client gives each processor straight
	// back, so a pulse is pure allocation churn (takes and re-grants).
	var rival *core.Space
	rivalSpace := func() *core.Space {
		if rival != nil {
			return rival
		}
		rival = k.NewSpace("rival", 1, core.ClientFunc(func(act *core.Activation, events []core.Event) {
			for _, ev := range events {
				if ev.Kind == core.EvPreempted && ev.Act != nil {
					if w := ev.Act.TakeWorker(); w != nil {
						_ = w
					}
					ev.Act.Discard()
				}
			}
			act.Context().Exec(300 * sim.Microsecond)
			act.YieldProcessor()
		}))
		rival.Start()
		rival.KernelSetDemand(0)
		return rival
	}

	// Decode the disturbance schedule, confined to the storm window so the
	// drain below is undisturbed.
	stormOver := false
	ndisturb := int(sc.next() % 12)
	for i := 0; i < ndisturb; i++ {
		d := fuzzDisturb{
			at:   sim.Duration(1+int(sc.next()))*4*sim.Millisecond + sim.Duration(sc.next())*17*sim.Microsecond,
			kind: sc.next() % 4,
			arg:  int(sc.next()),
		}
		period := sim.Duration(1+int(sc.next()%32))*sim.Millisecond + 13*sim.Microsecond
		var fire func()
		fire = func() {
			if stormOver {
				return
			}
			switch d.kind {
			case 0:
				k.ChaosPreempt(d.arg % cpus)
			case 1:
				k.ForceRebalance()
			case 2:
				vm.Evict(d.arg % 8)
			case 3:
				// A competing space flickering its demand through the
				// kernel-internal path.
				sp := rivalSpace()
				sp.KernelSetDemand(d.arg%cpus + 1)
				eng.After(700*sim.Microsecond, "fuzz-demand-drop", func() {
					sp.KernelSetDemand(0)
				})
			}
			eng.After(period, "fuzz-disturb", fire)
		}
		eng.After(d.at, "fuzz-disturb", fire)
	}

	// Storm, then quiesce and drain. A thread still unfinished after the
	// drain was lost by the protocol — that is a finding, not noise.
	for step := 0; step < 2000 && finished < total && len(aud.Violations) == 0; step++ {
		eng.RunFor(sim.Millisecond)
	}
	stormOver = true
	if rival != nil {
		rival.KernelSetDemand(0)
	}
	// One final rebalance re-settles allocation targets after the storm.
	k.ForceRebalance()
	for step := 0; step < 4000 && finished < total && len(aud.Violations) == 0; step++ {
		eng.RunFor(sim.Millisecond)
	}
	aud.Check()
	if len(aud.Violations) > 0 {
		t.Fatalf("invariant violation on script %v:\n%v", data, aud.Violations[0].Error())
	}
	if finished < total {
		state := ""
		for _, s := range scheds {
			state += s.DebugState() + "\n"
		}
		var tb strings.Builder
		tr.Dump(&tb)
		lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
		if len(lines) > 120 {
			lines = lines[len(lines)-120:]
		}
		t.Fatalf("script %v: %d of %d threads finished (wedged)\n%s\nkernel: %s\ntrace tail:\n%s",
			data, finished, total, state, k.AuditString(), strings.Join(lines, "\n"))
	}
}
