package core

import (
	"testing"

	"schedact/internal/sim"
)

func TestKTSpaceRunsTasksToCompletion(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	ks := k.NewKTSpace("compat", 0, 2)
	ran := 0
	for i := 0; i < 5; i++ {
		ks.AddTask("task", func(task *KTask) {
			task.Exec(sim.Ms(2))
			ran++
		})
	}
	ks.Start()
	eng.Run()
	if ran != 5 {
		t.Fatalf("ran = %d, want 5", ran)
	}
	if ks.Completed != 5 {
		t.Fatalf("Completed = %d, want 5", ks.Completed)
	}
	checkInv(t, k)
}

func TestKTSpaceUsesParallelism(t *testing.T) {
	eng, k := newTestKernel(t, 3)
	ks := k.NewKTSpace("compat", 0, 3)
	var done sim.Time
	finished := 0
	for i := 0; i < 3; i++ {
		ks.AddTask("task", func(task *KTask) {
			task.Exec(10 * sim.Millisecond)
			finished++
			if finished == 3 {
				done = eng.Now()
			}
		})
	}
	ks.Start()
	eng.Run()
	if done == 0 || done > sim.Time(20*sim.Millisecond) {
		t.Fatalf("3×10ms tasks on 3 CPUs finished at %v, want ~10-15ms", done)
	}
	checkInv(t, k)
}

func TestKTSpaceTasksBlockOnIO(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	ks := k.NewKTSpace("compat", 0, 2)
	var ioDone, cpuDone sim.Time
	ks.AddTask("io", func(task *KTask) {
		task.BlockIO()
		ioDone = eng.Now()
	})
	ks.AddTask("cpu", func(task *KTask) {
		task.Exec(10 * sim.Millisecond)
		cpuDone = eng.Now()
	})
	ks.Start()
	eng.Run()
	if ioDone == 0 || cpuDone == 0 {
		t.Fatal("tasks did not finish")
	}
	if ioDone < sim.Time(50*sim.Millisecond) {
		t.Fatalf("I/O finished at %v, before the disk latency", ioDone)
	}
	if cpuDone >= ioDone {
		t.Fatalf("cpu task (%v) should overlap the I/O (%v)", cpuDone, ioDone)
	}
	checkInv(t, k)
}

func TestKTSpaceCompetesWithActivationSpace(t *testing.T) {
	// §4.1's no-static-partitioning claim: a kernel-thread space and an
	// activation space share the machine under one allocator; when one
	// finishes, its processors flow to the other.
	eng, k := newTestKernel(t, 4)
	// Activation space: greedy, long-running.
	c := &recClient{eng: eng}
	var sa *Space
	first := true
	c.handler = func(act *Activation, events []Event) {
		if first {
			first = false
			sa.AddMoreProcessors(act, 4)
		}
		c.eng.Current().Park("vessel-idle")
	}
	sa = k.NewSpace("sa-app", 0, c)
	sa.Start()
	eng.RunFor(10 * sim.Millisecond)
	if got := k.Allocated(sa); got != 4 {
		t.Fatalf("sa-app holds %d CPUs before competition, want 4", got)
	}

	// The compat space arrives with two runnable tasks: the allocator must
	// carve out its share (2/2 on a 4-CPU machine).
	ks := k.NewKTSpace("compat", 0, 4)
	done := 0
	for i := 0; i < 2; i++ {
		ks.AddTask("task", func(task *KTask) {
			task.Exec(30 * sim.Millisecond)
			done++
		})
	}
	ks.Start()
	eng.RunFor(20 * sim.Millisecond)
	if got := k.Allocated(ks.Space()); got != 2 {
		t.Fatalf("compat space holds %d CPUs mid-run, want its even share of 2", got)
	}
	if got := k.Allocated(sa); got != 2 {
		t.Fatalf("sa-app holds %d CPUs mid-run, want 2", got)
	}
	eng.RunFor(200 * sim.Millisecond)
	if done != 2 {
		t.Fatalf("compat tasks done = %d, want 2", done)
	}
	// Tasks finished: the compat space's processors must have flowed back.
	if got := k.Allocated(ks.Space()); got != 0 {
		t.Fatalf("compat space still holds %d CPUs after finishing", got)
	}
	checkInv(t, k)
}

func TestKTSpaceMoreTasksThanProcessors(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	ks := k.NewKTSpace("compat", 0, 1)
	order := []string{}
	for _, name := range []string{"a", "b", "c"} {
		name := name
		ks.AddTask(name, func(task *KTask) {
			task.Exec(sim.Ms(1))
			order = append(order, name)
		})
	}
	ks.Start()
	eng.Run()
	if len(order) != 3 {
		t.Fatalf("order = %v, want all three (FIFO)", order)
	}
	for i, want := range []string{"a", "b", "c"} {
		if order[i] != want {
			t.Fatalf("order = %v, want FIFO a,b,c", order)
		}
	}
	checkInv(t, k)
}
