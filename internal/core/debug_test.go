package core

import (
	"testing"

	"schedact/internal/sim"
)

func TestDebuggerStopCausesNoUpcall(t *testing.T) {
	// §4.4: "when the debugger stops or single-steps a scheduler
	// activation, these events do not cause upcalls into the user-level
	// thread system."
	eng, k := newTestKernel(t, 2)
	dbg := k.NewDebugger()
	c := &recClient{eng: eng}
	var busy *Activation
	c.handler = func(act *Activation, events []Event) {
		busy = act
		act.Context().Exec(100 * sim.Millisecond)
		c.eng.Current().Park("vessel")
	}
	sp := k.NewSpace("app", 0, c)
	sp.Start()
	eng.RunFor(10 * sim.Millisecond)
	upcallsBefore := len(c.batches)
	if err := dbg.Stop(busy); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(20 * sim.Millisecond)
	if got := len(c.batches); got != upcallsBefore {
		t.Fatalf("debugger stop caused %d upcalls", got-upcallsBefore)
	}
	if !dbg.Stopped(busy) {
		t.Fatal("activation not marked stopped")
	}
	if busy.State() != "debug-stopped" {
		t.Fatalf("state = %s, want debug-stopped", busy.State())
	}
	checkInv(t, k)
}

func TestDebuggerResumeContinuesWithNoWorkLost(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	dbg := k.NewDebugger()
	c := &recClient{eng: eng}
	var busy *Activation
	var finished sim.Time
	c.handler = func(act *Activation, events []Event) {
		busy = act
		act.Context().Exec(100 * sim.Millisecond)
		finished = eng.Now()
		act.YieldProcessor()
	}
	sp := k.NewSpace("app", 0, c)
	sp.Start()
	eng.RunFor(30 * sim.Millisecond)
	if err := dbg.Stop(busy); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(200 * sim.Millisecond) // stopped: no progress
	if finished != 0 {
		t.Fatal("activation progressed while debugger-stopped")
	}
	if err := dbg.Resume(busy); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if finished == 0 {
		t.Fatal("activation never finished after resume")
	}
	// It ran ~30ms before the stop (minus upcall latency), was frozen
	// 200ms, and must complete its full 100ms of work after resuming.
	wantMin := sim.Time(230 * sim.Millisecond).Add(70 * sim.Millisecond)
	if finished < wantMin {
		t.Fatalf("finished at %v: work was lost across the debugger stop", finished)
	}
	if dbg.Stops != 1 || dbg.Resumes != 1 {
		t.Fatalf("Stops/Resumes = %d/%d, want 1/1", dbg.Stops, dbg.Resumes)
	}
	checkInv(t, k)
}

func TestDebuggerFreesProcessorForOthers(t *testing.T) {
	// Stopping an activation returns its physical processor to the pool;
	// another space can use it while the debuggee is frozen.
	eng, k := newTestKernel(t, 1)
	dbg := k.NewDebugger()
	ca := &recClient{eng: eng}
	var busy *Activation
	ca.handler = func(act *Activation, events []Event) {
		busy = act
		act.Context().Exec(sim.Second)
		ca.eng.Current().Park("vessel")
	}
	a := k.NewSpace("debuggee", 0, ca)
	a.Start()
	eng.RunFor(5 * sim.Millisecond)

	cb := &recClient{eng: eng}
	var bRan bool
	cb.handler = func(act *Activation, events []Event) {
		bRan = true
		act.Context().Exec(sim.Ms(1))
		act.YieldProcessor()
	}
	b := k.NewSpace("other", 1, cb) // lower..higher prio irrelevant; only CPU is busy
	_ = b
	if err := dbg.Stop(busy); err != nil {
		t.Fatal(err)
	}
	b.Start()
	eng.RunFor(50 * sim.Millisecond)
	if !bRan {
		t.Fatal("the freed processor never served the other space")
	}
	checkInv(t, k)
}

func TestDebuggerResumeReclaimsProcessor(t *testing.T) {
	// Resume with no free processor takes one back through the normal
	// preemption protocol (the victim is notified; the debuggee is not).
	eng, k := newTestKernel(t, 1)
	dbg := k.NewDebugger()
	ca := &recClient{eng: eng}
	var busy *Activation
	var finished bool
	ca.handler = func(act *Activation, events []Event) {
		busy = act
		act.Context().Exec(20 * sim.Millisecond)
		finished = true
		act.YieldProcessor()
	}
	a := k.NewSpace("debuggee", 0, ca)
	a.Start()
	eng.RunFor(5 * sim.Millisecond)
	if err := dbg.Stop(busy); err != nil {
		t.Fatal(err)
	}
	// A hog takes the machine meanwhile.
	ch := &recClient{eng: eng}
	ch.handler = func(act *Activation, events []Event) {
		for _, ev := range events {
			if ev.Kind == EvPreempted && ev.Act != nil {
				ev.Act.Discard()
			}
		}
		act.Context().Exec(sim.Second)
		ch.eng.Current().Park("vessel")
	}
	hog := k.NewSpace("hog", 0, ch)
	hog.Start()
	eng.RunFor(20 * sim.Millisecond)
	if err := dbg.Resume(busy); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(100 * sim.Millisecond)
	if !finished {
		t.Fatal("debuggee did not finish after resume")
	}
	checkInv(t, k)
}
