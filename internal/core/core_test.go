package core

import (
	"testing"

	"schedact/internal/machine"
	"schedact/internal/sim"
)

func newTestKernel(t *testing.T, cpus int) (sim.Engine, *Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	t.Cleanup(eng.Close)
	return eng, New(eng, Config{CPUs: cpus})
}

// recClient records upcall event batches and runs an optional handler; by
// default each upcall parks its vessel, holding the processor idle.
type recClient struct {
	eng     sim.Engine
	batches [][]Event
	handler func(act *Activation, events []Event)
}

func (c *recClient) Upcall(act *Activation, events []Event) {
	cp := make([]Event, len(events))
	copy(cp, events)
	c.batches = append(c.batches, cp)
	if c.handler != nil {
		c.handler(act, events)
		return
	}
	c.eng.Current().Park("vessel-idle")
}

func (c *recClient) kinds() [][]EventKind {
	var out [][]EventKind
	for _, b := range c.batches {
		var ks []EventKind
		for _, e := range b {
			ks = append(ks, e.Kind)
		}
		out = append(out, ks)
	}
	return out
}

func checkInv(t *testing.T, k *Kernel) {
	t.Helper()
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestStartDeliversAddProcessorUpcall(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	c := &recClient{eng: eng}
	sp := k.NewSpace("app", 0, c)
	sp.Start()
	eng.Run()
	if len(c.batches) != 1 {
		t.Fatalf("upcalls = %d, want 1", len(c.batches))
	}
	if len(c.batches[0]) != 1 || c.batches[0][0].Kind != EvAddProcessor {
		t.Fatalf("first upcall = %v, want [AddProcessor]", c.batches[0])
	}
	if got := k.Allocated(sp); got != 1 {
		t.Fatalf("Allocated = %d, want 1", got)
	}
	checkInv(t, k)
	// The upcall must land only after the kernel's upcall latency.
	if eng.Now() < sim.Time(k.C.SAUpcallWork) {
		t.Fatalf("upcall completed at %v, before upcall cost %v", eng.Now(), k.C.SAUpcallWork)
	}
}

func TestAddMoreProcessorsGrowsAllocation(t *testing.T) {
	eng, k := newTestKernel(t, 4)
	c := &recClient{eng: eng}
	var sp *Space
	first := true
	c.handler = func(act *Activation, events []Event) {
		if first {
			first = false
			sp.AddMoreProcessors(act, 3)
		}
		c.eng.Current().Park("vessel-idle")
	}
	sp = k.NewSpace("app", 0, c)
	sp.Start()
	eng.Run()
	if got := k.Allocated(sp); got != 4 {
		t.Fatalf("Allocated = %d, want 4", got)
	}
	if len(c.batches) != 4 {
		t.Fatalf("upcalls = %d, want 4 (one per processor)", len(c.batches))
	}
	checkInv(t, k)
}

func TestTwoSpacesSpaceShareEvenly(t *testing.T) {
	eng, k := newTestKernel(t, 6)
	mk := func(name string) (*Space, *recClient) {
		c := &recClient{eng: eng}
		var sp *Space
		first := true
		c.handler = func(act *Activation, events []Event) {
			if first {
				first = false
				sp.AddMoreProcessors(act, 6)
			}
			c.eng.Current().Park("vessel-idle")
		}
		sp = k.NewSpace(name, 0, c)
		return sp, c
	}
	a, _ := mk("A")
	b, _ := mk("B")
	a.Start()
	b.Start()
	eng.Run()
	if ga, gb := k.Allocated(a), k.Allocated(b); ga != 3 || gb != 3 {
		t.Fatalf("allocation = %d/%d, want 3/3 (space sharing)", ga, gb)
	}
	checkInv(t, k)
}

func TestUnevenDemandDividesLeftoverToHungry(t *testing.T) {
	// A wants 1, B wants 6: B should get the other 5 ("if some address
	// spaces do not need all of the processors in their share, those
	// processors are divided evenly among the remainder").
	eng, k := newTestKernel(t, 6)
	a := k.NewSpace("A", 0, &recClient{eng: eng})
	cb := &recClient{eng: eng}
	var b *Space
	firstB := true
	cb.handler = func(act *Activation, events []Event) {
		if firstB {
			firstB = false
			b.AddMoreProcessors(act, 6)
		}
		cb.eng.Current().Park("vessel-idle")
	}
	b = k.NewSpace("B", 0, cb)
	a.Start()
	b.Start()
	eng.Run()
	if ga, gb := k.Allocated(a), k.Allocated(b); ga != 1 || gb != 5 {
		t.Fatalf("allocation = %d/%d, want 1/5", ga, gb)
	}
	checkInv(t, k)
}

func TestHigherPrioritySpaceServedFirst(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	greedy := func(name string, prio int) *Space {
		c := &recClient{eng: eng}
		var sp *Space
		first := true
		c.handler = func(act *Activation, events []Event) {
			if first {
				first = false
				sp.AddMoreProcessors(act, 4)
			}
			c.eng.Current().Park("vessel-idle")
		}
		sp = k.NewSpace(name, prio, c)
		sp.Start()
		return sp
	}
	lo := greedy("lo", 0)
	hi := greedy("hi", 2)
	eng.Run()
	if got := k.Allocated(hi); got != 2 {
		t.Fatalf("high-priority space got %d CPUs, want 2 (all)", got)
	}
	if got := k.Allocated(lo); got != 0 {
		t.Fatalf("low-priority space got %d CPUs, want 0", got)
	}
	checkInv(t, k)
}

func TestPreemptionDeliversDoubleNotification(t *testing.T) {
	// A holds 2 CPUs; B starts and deserves 1. The kernel takes one of A's
	// CPUs for B, then preempts A's other CPU to deliver the notification:
	// that upcall must carry two Preempted events (the taken activation and
	// the interrupted one).
	eng, k := newTestKernel(t, 2)
	ca := &recClient{eng: eng}
	var a *Space
	firstA := true
	ca.handler = func(act *Activation, events []Event) {
		if firstA {
			firstA = false
			a.AddMoreProcessors(act, 2)
		}
		ca.eng.Current().Park("vessel-idle")
	}
	a = k.NewSpace("A", 0, ca)
	a.Start()
	eng.RunFor(50 * sim.Millisecond) // A settles with both CPUs
	if got := k.Allocated(a); got != 2 {
		t.Fatalf("A allocated %d, want 2 before B starts", got)
	}
	cb := &recClient{eng: eng}
	b := k.NewSpace("B", 0, cb)
	b.Start()
	eng.Run()
	if ga, gb := k.Allocated(a), k.Allocated(b); ga != 1 || gb != 1 {
		t.Fatalf("allocation = %d/%d, want 1/1", ga, gb)
	}
	last := ca.batches[len(ca.batches)-1]
	preempted := 0
	for _, ev := range last {
		if ev.Kind == EvPreempted {
			preempted++
		}
	}
	if preempted != 2 {
		t.Fatalf("notification upcall = %v, want exactly 2 Preempted events", last)
	}
	if k.Stats.DoublePreempts == 0 {
		t.Fatal("no double-preemption recorded")
	}
	checkInv(t, k)
}

func TestLastProcessorPreemptionDelaysNotification(t *testing.T) {
	// A holds the only CPU; B (higher priority) takes it. A cannot be
	// notified (no processors), so the Preempted event must ride A's next
	// grant.
	eng, k := newTestKernel(t, 1)
	ca := &recClient{eng: eng}
	a := k.NewSpace("A", 0, ca)
	a.Start()
	eng.RunFor(20 * sim.Millisecond)
	cb := &recClient{eng: eng}
	var b *Space
	cb.handler = func(act *Activation, events []Event) {
		// B runs briefly, then gives the processor back.
		act.Context().Exec(sim.Ms(1))
		act.YieldProcessor()
	}
	b = k.NewSpace("B", 2, cb)
	b.Start()
	eng.Run()
	if k.Stats.DelayedNotifies == 0 {
		t.Fatal("expected a delayed notification for A's last processor")
	}
	// A must eventually get the CPU back, with the delayed Preempted event
	// folded into the AddProcessor upcall.
	last := ca.batches[len(ca.batches)-1]
	var kinds []EventKind
	for _, ev := range last {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 2 || kinds[0] != EvAddProcessor || kinds[1] != EvPreempted {
		t.Fatalf("A's re-grant upcall = %v, want [AddProcessor Preempted]", last)
	}
	checkInv(t, k)
}

// ioTestClient runs a single user-level thread across vessels; it exercises
// the full blocked/unblocked protocol the way a real thread package would.
type ioTestClient struct {
	t       *testing.T
	eng     sim.Engine
	k       *Kernel
	batches [][]Event

	worker  *machine.Worker
	thread  *sim.Coroutine
	started bool
	cur     *Activation // vessel the thread currently runs on
	body    func()
}

func (c *ioTestClient) Upcall(act *Activation, events []Event) {
	cp := make([]Event, len(events))
	copy(cp, events)
	c.batches = append(c.batches, cp)
	for _, ev := range events {
		switch ev.Kind {
		case EvAddProcessor:
			if !c.started {
				c.started = true
				act.Context().Root().Unbind()
				c.worker.Bind(act.Context())
				c.cur = act
				c.thread.Unpark()
			}
		case EvBlocked:
			// Our only thread is blocked: this vessel just holds the
			// processor (a real client would run another thread).
		case EvUnblocked:
			old := ev.Act
			w := old.TakeWorker()
			if w != c.worker {
				c.t.Errorf("unblocked worker = %v, want the thread's", w)
			}
			old.Discard()
			act.Context().Root().Unbind()
			w.Bind(act.Context()) // resumes the thread here
			c.cur = act
		case EvPreempted:
			old := ev.Act
			// Idle vessels carry no thread; nothing to recover.
			if w := old.TakeWorker(); w != nil && w != old.Context().Root() {
				c.t.Errorf("unexpected thread state on preempted vessel act%d", old.ID())
			}
			old.Discard()
		}
	}
	c.eng.Current().Park("vessel")
}

func TestBlockIOFullProtocol(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	c := &ioTestClient{t: t, eng: eng, k: k}
	sp := k.NewSpace("app", 0, c)
	var phases []sim.Time
	c.worker = k.M.NewWorker("T", nil)
	c.thread = eng.Go("T", func(co *sim.Coroutine) {
		c.worker.Exec(100 * sim.Microsecond)
		k.BlockIO(c.cur)
		phases = append(phases, eng.Now())
		c.worker.Exec(200 * sim.Microsecond)
		phases = append(phases, eng.Now())
	})
	sp.Start()
	eng.Run()

	if len(phases) != 2 {
		t.Fatalf("thread completed %d phases, want 2", len(phases))
	}
	// The I/O takes 50ms; the thread must resume after it, plus upcall
	// machinery, and then run its remaining 200µs.
	if phases[0] < sim.Time(k.C.DiskLatency) {
		t.Fatalf("thread resumed at %v, before disk latency", phases[0])
	}
	if d := phases[1].Sub(phases[0]); d < 200*sim.Microsecond {
		t.Fatalf("post-IO compute took %v, want >= 200µs", d)
	}
	// Upcall sequence: AddProcessor (start), Blocked, then an upcall
	// containing Unblocked.
	kinds := func(b []Event) (out []EventKind) {
		for _, e := range b {
			out = append(out, e.Kind)
		}
		return
	}
	if len(c.batches) < 3 {
		t.Fatalf("upcalls = %d, want >= 3: %v", len(c.batches), c.batches)
	}
	if kinds(c.batches[0])[0] != EvAddProcessor {
		t.Fatalf("first upcall %v, want AddProcessor", c.batches[0])
	}
	if kinds(c.batches[1])[0] != EvBlocked {
		t.Fatalf("second upcall %v, want Blocked", c.batches[1])
	}
	sawUnblocked := false
	for _, b := range c.batches[2:] {
		for _, ev := range b {
			if ev.Kind == EvUnblocked {
				sawUnblocked = true
			}
		}
	}
	if !sawUnblocked {
		t.Fatalf("no Unblocked upcall in %v", c.batches)
	}
	checkInv(t, k)
	if k.Stats.IORequests != 1 {
		t.Fatalf("IORequests = %d, want 1", k.Stats.IORequests)
	}
}

func TestBlockedUpcallArrivesOnSameCPU(t *testing.T) {
	eng, k := newTestKernel(t, 3)
	c := &ioTestClient{t: t, eng: eng, k: k}
	sp := k.NewSpace("app", 0, c)
	var blockCPU machine.CPUID = -1
	c.worker = k.M.NewWorker("T", nil)
	c.thread = eng.Go("T", func(co *sim.Coroutine) {
		blockCPU = c.cur.CPU()
		k.BlockIO(c.cur)
	})
	sp.Start()
	eng.Run()
	if len(c.batches) < 2 {
		t.Fatalf("upcalls = %v", c.batches)
	}
	// The Blocked upcall vessel must be on the processor the thread
	// blocked on: the processor is not lost to the space.
	blockedBatchAct := c.batches[1]
	_ = blockedBatchAct
	if got := k.Allocated(sp); got < 1 {
		t.Fatalf("space lost its processor across a block: allocated=%d", got)
	}
	if blockCPU < 0 {
		t.Fatal("thread never ran")
	}
	checkInv(t, k)
}

func TestUnblockWithSingleCPUInterruptsOwnVessel(t *testing.T) {
	// One CPU total: after Blocked, the space's only CPU hosts an idle
	// vessel; the unblock must preempt it and deliver [Unblocked Preempted]
	// in one combined upcall.
	eng, k := newTestKernel(t, 1)
	c := &ioTestClient{t: t, eng: eng, k: k}
	sp := k.NewSpace("app", 0, c)
	c.worker = k.M.NewWorker("T", nil)
	done := false
	c.thread = eng.Go("T", func(co *sim.Coroutine) {
		k.BlockIO(c.cur)
		done = true
	})
	sp.Start()
	eng.Run()
	if !done {
		t.Fatal("thread did not resume")
	}
	var combined []EventKind
	for _, b := range c.batches {
		has := map[EventKind]bool{}
		for _, e := range b {
			has[e.Kind] = true
		}
		if has[EvUnblocked] {
			for _, e := range b {
				combined = append(combined, e.Kind)
			}
		}
	}
	if len(combined) != 2 {
		t.Fatalf("unblock upcall kinds = %v, want [Unblocked Preempted] combined", combined)
	}
	hasP := combined[0] == EvPreempted || combined[1] == EvPreempted
	hasU := combined[0] == EvUnblocked || combined[1] == EvUnblocked
	if !hasP || !hasU {
		t.Fatalf("unblock upcall kinds = %v, want one Unblocked and one Preempted", combined)
	}
	checkInv(t, k)
}

func TestUnblockPrefersFreeCPU(t *testing.T) {
	// Two CPUs, one space using one: when the I/O completes the kernel
	// should use the free CPU, delivering [AddProcessor Unblocked].
	eng, k := newTestKernel(t, 2)
	c := &ioTestClient{t: t, eng: eng, k: k}
	sp := k.NewSpace("app", 0, c)
	c.worker = k.M.NewWorker("T", nil)
	c.thread = eng.Go("T", func(co *sim.Coroutine) {
		k.BlockIO(c.cur)
	})
	sp.Start()
	eng.Run()
	found := false
	for _, b := range c.batches {
		var ks []EventKind
		for _, e := range b {
			ks = append(ks, e.Kind)
		}
		if len(ks) == 2 && ks[0] == EvAddProcessor && ks[1] == EvUnblocked {
			found = true
		}
	}
	if !found {
		t.Fatalf("no [AddProcessor Unblocked] upcall in %v", c.batches)
	}
	checkInv(t, k)
}

func TestProcessorIsIdleKeptWhenNoDemand(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	c := &recClient{eng: eng}
	var sp *Space
	taken := true
	c.handler = func(act *Activation, events []Event) {
		taken = sp.ProcessorIsIdle(act)
		c.eng.Current().Park("vessel-idle")
	}
	sp = k.NewSpace("app", 0, c)
	sp.Start()
	eng.Run()
	if taken {
		t.Fatal("idle processor taken with no other demand")
	}
	if got := k.Allocated(sp); got != 1 {
		t.Fatalf("Allocated = %d, want 1 (kept)", got)
	}
	checkInv(t, k)
}

func TestProcessorIsIdleTakenWhenOthersWant(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	// B (lower priority) wants a CPU but cannot steal A's. When A declares
	// idle, B must get it on the spot.
	cb := &recClient{eng: eng}
	b := k.NewSpace("B", 0, cb)
	ca := &recClient{eng: eng}
	var a *Space
	var wasTaken bool
	ca.handler = func(act *Activation, events []Event) {
		act.Context().Exec(sim.Ms(1))
		wasTaken = a.ProcessorIsIdle(act)
		if !wasTaken {
			ca.eng.Current().Park("vessel-idle")
		}
	}
	a = k.NewSpace("A", 1, ca)
	a.Start()
	eng.RunFor(500 * sim.Microsecond)
	b.Start() // queues demand; only CPU is A's and A outranks B
	eng.Run()
	if !wasTaken {
		t.Fatal("idle downcall did not surrender the processor to waiting demand")
	}
	if got := k.Allocated(b); got != 1 {
		t.Fatalf("B allocated %d, want 1", got)
	}
	checkInv(t, k)
}

func TestYieldProcessorFreesCPU(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	c := &recClient{eng: eng}
	var sp *Space
	c.handler = func(act *Activation, events []Event) {
		act.Context().Exec(sim.Ms(2))
		act.YieldProcessor()
	}
	sp = k.NewSpace("app", 0, c)
	sp.Start()
	eng.Run()
	if got := k.Allocated(sp); got != 0 {
		t.Fatalf("Allocated = %d, want 0 after yield", got)
	}
	if k.FreeCPUs() != 1 {
		t.Fatalf("FreeCPUs = %d, want 1", k.FreeCPUs())
	}
	checkInv(t, k)
}

func TestActivationRecycling(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	c := &ioTestClient{t: t, eng: eng, k: k}
	sp := k.NewSpace("app", 0, c)
	c.worker = k.M.NewWorker("T", nil)
	c.thread = eng.Go("T", func(co *sim.Coroutine) {
		for i := 0; i < 5; i++ {
			k.BlockIO(c.cur)
		}
	})
	sp.Start()
	eng.Run()
	if k.Stats.Discards == 0 {
		t.Fatal("no activations discarded")
	}
	if k.Stats.ActRecycles == 0 {
		t.Fatal("no activations recycled from the pool")
	}
	checkInv(t, k)
}

func TestKernelEventSignalWaitThroughKernel(t *testing.T) {
	// The §5.2 measurement scenario: two user-level threads synchronize
	// through the kernel. With the prototype cost profile the round trip is
	// in the low milliseconds (the paper reports 2.4 ms).
	eng, k := newTestKernel(t, 2)
	kev := k.NewKernelEvent()

	c := &twoThreadClient{t: t, eng: eng, k: k}
	sp := k.NewSpace("app", 0, c)
	c.sp = sp
	var waitStart, waitEnd sim.Time
	c.mk("waiter", func(self *threadCtl) {
		waitStart = eng.Now()
		kev.Wait(self.cur())
		waitEnd = eng.Now()
	})
	c.mk("signaller", func(self *threadCtl) {
		self.w.Exec(sim.Ms(2)) // let the waiter block first
		kev.Signal(self.cur())
	})
	sp.Start()
	eng.Run()
	if waitEnd == 0 {
		t.Fatal("waiter never resumed")
	}
	rt := waitEnd.Sub(waitStart)
	if rt < sim.Ms(1) || rt > sim.Ms(10) {
		t.Fatalf("kernel-mediated wait took %v, want low single-digit milliseconds (paper: 2.4ms round trip)", rt)
	}
	checkInv(t, k)
}

// threadCtl and twoThreadClient: a two-thread micro thread-system for
// exercising kernel events. Threads are scheduled one per processor.
type threadCtl struct {
	c      *twoThreadClient
	name   string
	w      *machine.Worker
	co     *sim.Coroutine
	vessel *Activation
}

func (tc *threadCtl) cur() *Activation { return tc.vessel }

type twoThreadClient struct {
	t       *testing.T
	eng     sim.Engine
	k       *Kernel
	threads []*threadCtl
	started int
	sp      *Space
}

func (c *twoThreadClient) mk(name string, body func(self *threadCtl)) {
	tc := &threadCtl{c: c, name: name}
	tc.w = c.k.M.NewWorker(name, nil)
	tc.co = c.eng.Go(name, func(*sim.Coroutine) { body(tc) })
	c.threads = append(c.threads, tc)
}

func (c *twoThreadClient) Upcall(act *Activation, events []Event) {
	for _, ev := range events {
		switch ev.Kind {
		case EvAddProcessor:
			if c.started < len(c.threads) {
				tc := c.threads[c.started]
				c.started++
				if c.started < len(c.threads) {
					// Downcall while the vessel's own worker still charges.
					c.sp.AddMoreProcessors(act, len(c.threads)-c.started)
				}
				act.Context().Root().Unbind()
				tc.w.Bind(act.Context())
				tc.vessel = act
				tc.co.Unpark()
			}
		case EvUnblocked:
			old := ev.Act
			w := old.TakeWorker()
			old.Discard()
			act.Context().Root().Unbind()
			for _, tc := range c.threads {
				if tc.w == w {
					tc.vessel = act
				}
			}
			w.Bind(act.Context())
		case EvBlocked:
			// vessel idles
		case EvPreempted:
			old := ev.Act
			if w := old.TakeWorker(); w != nil && w != old.Context().Root() {
				// A running thread was preempted: rebind it here.
				act.Context().Root().Unbind()
				for _, tc := range c.threads {
					if tc.w == w {
						tc.vessel = act
					}
				}
				w.Bind(act.Context())
			}
			old.Discard()
		}
	}
	c.eng.Current().Park("vessel")
}

func TestDeterminismSA(t *testing.T) {
	run := func() (sim.Time, Stats) {
		eng := sim.NewEngine()
		defer eng.Close()
		k := New(eng, Config{CPUs: 3})
		c := &ioTestClient{t: t, eng: eng, k: k}
		sp := k.NewSpace("app", 0, c)
		c.worker = k.M.NewWorker("T", nil)
		c.thread = eng.Go("T", func(co *sim.Coroutine) {
			for i := 0; i < 4; i++ {
				c.worker.Exec(500 * sim.Microsecond)
				k.BlockIO(c.cur)
			}
		})
		sp.Start()
		eng.Run()
		return eng.Now(), k.Stats
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%v, %+v) vs (%v, %+v)", t1, s1, t2, s2)
	}
}
