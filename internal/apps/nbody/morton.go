package nbody

import "sort"

// SortMorton reorders bodies along a Z-order (Morton) space-filling curve,
// the standard locality optimization for Barnes-Hut codes: bodies close in
// space end up close in memory, so a force traversal's direct interactions
// touch few distinct pages — which is what makes an LRU buffer cache over
// body pages effective (§5.3).
func SortMorton(bodies []Body) {
	lo, hi := bodies[0].Pos, bodies[0].Pos
	for _, b := range bodies[1:] {
		lo.X = min(lo.X, b.Pos.X)
		lo.Y = min(lo.Y, b.Pos.Y)
		lo.Z = min(lo.Z, b.Pos.Z)
		hi.X = max(hi.X, b.Pos.X)
		hi.Y = max(hi.Y, b.Pos.Y)
		hi.Z = max(hi.Z, b.Pos.Z)
	}
	span := func(a, b float64) float64 {
		if b-a < 1e-12 {
			return 1e-12
		}
		return b - a
	}
	sx, sy, sz := span(lo.X, hi.X), span(lo.Y, hi.Y), span(lo.Z, hi.Z)
	key := func(p Vec3) uint64 {
		qx := uint32((p.X - lo.X) / sx * 1023)
		qy := uint32((p.Y - lo.Y) / sy * 1023)
		qz := uint32((p.Z - lo.Z) / sz * 1023)
		return interleave3(qx) | interleave3(qy)<<1 | interleave3(qz)<<2
	}
	sort.SliceStable(bodies, func(i, j int) bool {
		return key(bodies[i].Pos) < key(bodies[j].Pos)
	})
}

// interleave3 spreads the low 10 bits of v so consecutive bits land 3 apart.
func interleave3(v uint32) uint64 {
	x := uint64(v) & 0x3ff
	x = (x | x<<16) & 0x30000ff
	x = (x | x<<8) & 0x300f00f
	x = (x | x<<4) & 0x30c30c3
	x = (x | x<<2) & 0x9249249
	return x
}
