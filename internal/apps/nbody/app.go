package nbody

import (
	"fmt"

	"schedact/internal/kernel"
	"schedact/internal/sim"
)

// Config parameterizes one application run. The defaults model the paper's
// setup: a problem size chosen so the buffer cache fits in memory at 100%,
// fork-per-chunk parallelization of the force phase, and a shared
// application lock whose critical sections are a bottleneck under kernel
// threads (§5.3's discussion of Figure 1).
type Config struct {
	N     int     // bodies
	Steps int     // timesteps
	Theta float64 // opening criterion
	DT    float64 // timestep
	Seed  int64

	ChunkBodies int // bodies per forked worker thread

	// MaxLiveChunks bounds how many chunk threads exist at once: the main
	// thread forks up to the window, then joins the oldest before forking
	// the next. This is the application's parallel slackness — enough
	// threads to overlap I/O with computation (§5.3), but not unbounded.
	MaxLiveChunks int

	// Costs of the real computation on the simulated (CVAX-class) machine.
	InteractionCost  sim.Duration // per body-body or body-cell interaction
	TreeBuildPerBody sim.Duration // tree construction, charged to the main thread
	IntegratePerBody sim.Duration // integration, charged to the main thread
	LockOpsPerBody   int          // shared-lock acquisitions per body (accumulation updates)
	CSWork           sim.Duration // work inside each such critical section
	CacheHitCost     sim.Duration // buffer-cache hit (in-memory access)

	// Buffer cache (§5.3): MemFraction of the body pages fit in memory;
	// misses block in the kernel for the disk latency.
	MemFraction   float64
	BodiesPerPage int
}

// DefaultConfig returns the calibrated workload used by the Figure 1/2 and
// Table 5 reproductions.
func DefaultConfig() Config {
	return Config{
		N:                512,
		Steps:            3,
		Theta:            0.8,
		DT:               0.01,
		Seed:             1,
		ChunkBodies:      1,
		MaxLiveChunks:    18,
		InteractionCost:  sim.Us(40),
		TreeBuildPerBody: sim.Us(100),
		IntegratePerBody: sim.Us(20),
		LockOpsPerBody:   2,
		CSWork:           sim.Us(300),
		CacheHitCost:     sim.Us(2),
		MemFraction:      1.0,
		BodiesPerPage:    8,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.N == 0 {
		c.N = d.N
	}
	if c.Steps == 0 {
		c.Steps = d.Steps
	}
	if c.Theta == 0 {
		c.Theta = d.Theta
	}
	if c.DT == 0 {
		c.DT = d.DT
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.ChunkBodies == 0 {
		c.ChunkBodies = d.ChunkBodies
	}
	if c.MaxLiveChunks == 0 {
		c.MaxLiveChunks = d.MaxLiveChunks
	}
	if c.InteractionCost == 0 {
		c.InteractionCost = d.InteractionCost
	}
	if c.TreeBuildPerBody == 0 {
		c.TreeBuildPerBody = d.TreeBuildPerBody
	}
	if c.IntegratePerBody == 0 {
		c.IntegratePerBody = d.IntegratePerBody
	}
	if c.CSWork == 0 {
		c.CSWork = d.CSWork
	}
	if c.CacheHitCost == 0 {
		c.CacheHitCost = d.CacheHitCost
	}
	if c.MemFraction == 0 {
		c.MemFraction = d.MemFraction
	}
	if c.BodiesPerPage == 0 {
		c.BodiesPerPage = d.BodiesPerPage
	}
	return c
}

// Run carries the progress and results of one application instance.
type Run struct {
	Cfg      Config
	Done     bool
	Started  sim.Time
	Finished sim.Time

	Interactions uint64
	CacheHits    uint64
	CacheMisses  uint64
	Bodies       []Body // final state, for correctness cross-checks
}

// Elapsed reports the virtual execution time of the run.
func (r *Run) Elapsed() sim.Duration {
	if !r.Done {
		return 0
	}
	return r.Finished.Sub(r.Started)
}

// Launch starts the application on the given thread system. The caller then
// drives the simulation engine; when the application's main thread
// finishes, Done flips true.
func Launch(sys System, cfg Config) *Run {
	cfg = cfg.withDefaults()
	r := &Run{Cfg: cfg}
	sys.Spawn("nbody-main", func(t Thread) { r.main(sys, t) })
	return r
}

func (r *Run) main(sys System, t Thread) {
	cfg := r.Cfg
	r.Started = t.Now()
	bodies := NewUniformCluster(cfg.N, cfg.Seed)
	SortMorton(bodies)
	totalPages := Pages(cfg.N, cfg.BodiesPerPage)
	capacity := int(cfg.MemFraction * float64(totalPages))
	cache := NewCache(cfg.N, cfg.BodiesPerPage, capacity)
	prewarm(cache, capacity, cfg.BodiesPerPage)
	shared := sys.NewMutex()
	window := NewSem(sys, cfg.MaxLiveChunks)

	accels := make([]Vec3, cfg.N)
	for step := 0; step < cfg.Steps; step++ {
		// Build the tree (main thread, sequential — as in Barnes-Hut).
		t.Exec(sim.Duration(cfg.N) * cfg.TreeBuildPerBody)
		root, _ := BuildTree(bodies)

		// Force phase: fork a thread per chunk of bodies; each computes
		// its chunk's forces, touching body pages through the buffer cache
		// and updating shared accumulators under the application lock. A
		// counting semaphore bounds the window of live chunk threads; the
		// main thread blocks for a slot before each fork, so chunk
		// completions (in any order) refill the window.
		var handles []Handle
		for lo := 0; lo < cfg.N; lo += cfg.ChunkBodies {
			lo := lo
			hi := min(lo+cfg.ChunkBodies, cfg.N)
			window.Acquire(t)
			handles = append(handles, t.Fork(fmt.Sprintf("chunk%d", lo), func(wt Thread) {
				r.computeChunk(wt, cfg, cache, shared, root, bodies, accels, lo, hi)
				window.Release(wt)
			}))
		}
		for _, h := range handles {
			t.Join(h)
		}

		// Integrate (main thread).
		t.Exec(sim.Duration(cfg.N) * cfg.IntegratePerBody)
		for i := range bodies {
			Leapfrog(&bodies[i], accels[i], cfg.DT)
		}
	}
	r.CacheHits = cache.Hits
	r.CacheMisses = cache.Misses
	r.Bodies = bodies
	r.Finished = t.Now()
	r.Done = true
}

// computeChunk evaluates forces for bodies [lo,hi).
func (r *Run) computeChunk(wt Thread, cfg Config, cache *Cache, shared Mutex, root *Cell, bodies []Body, accels []Vec3, lo, hi int) {
	for i := lo; i < hi; i++ {
		// Walk the tree, collecting which body pages the direct
		// interactions touch.
		pages := make(map[int]bool)
		a, n := root.Force(bodies, i, cfg.Theta, func(leaf int) {
			if leaf >= 0 {
				pages[leaf/cfg.BodiesPerPage] = true
			}
		})
		accels[i] = a
		r.Interactions += uint64(n)

		// Fetch the touched pages through the application's buffer cache;
		// a miss blocks in the kernel for the disk read (§5.3). Pages are
		// visited in order for determinism.
		for _, p := range sortedKeys(pages) {
			if cache.Access(p * cfg.BodiesPerPage) {
				wt.Exec(cfg.CacheHitCost)
			} else {
				wt.BlockIO()
			}
		}

		// The arithmetic.
		wt.Exec(sim.Duration(n) * cfg.InteractionCost)

		// Shared accumulation updates (the application's critical
		// sections).
		for k := 0; k < cfg.LockOpsPerBody; k++ {
			shared.Lock(wt)
			wt.Exec(cfg.CSWork)
			shared.Unlock(wt)
		}
	}
}

// prewarm loads the first capacity pages, modelling an application that
// starts with its memory full of data: the paper's "100% of memory
// available" case does negligible I/O, so compulsory cold misses are
// excluded from the measurement.
func prewarm(c *Cache, capacity, bodiesPerPage int) {
	for p := 0; p < capacity; p++ {
		c.Access(p * bodiesPerPage)
	}
	c.Hits, c.Misses = 0, 0
}

func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: page sets are small.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// RunSequential executes the same computation with no threads at all on a
// single kernel thread: the sequential implementation that anchors the
// paper's speedup figures. It returns the completed Run after driving is
// done (caller runs the engine).
func RunSequential(sp *kernel.Space, cfg Config) *Run {
	cfg = cfg.withDefaults()
	r := &Run{Cfg: cfg}
	sp.Spawn("nbody-seq", 0, func(t *kernel.KThread) {
		eng := sp.Kernel().Eng
		r.Started = eng.Now()
		bodies := NewUniformCluster(cfg.N, cfg.Seed)
		SortMorton(bodies)
		totalPages := Pages(cfg.N, cfg.BodiesPerPage)
		capacity := int(cfg.MemFraction * float64(totalPages))
		cache := NewCache(cfg.N, cfg.BodiesPerPage, capacity)
		prewarm(cache, capacity, cfg.BodiesPerPage)
		accels := make([]Vec3, cfg.N)
		for step := 0; step < cfg.Steps; step++ {
			t.Exec(sim.Duration(cfg.N) * cfg.TreeBuildPerBody)
			root, _ := BuildTree(bodies)
			for i := 0; i < cfg.N; i++ {
				pages := make(map[int]bool)
				a, n := root.Force(bodies, i, cfg.Theta, func(leaf int) {
					if leaf >= 0 {
						pages[leaf/cfg.BodiesPerPage] = true
					}
				})
				accels[i] = a
				r.Interactions += uint64(n)
				for _, p := range sortedKeys(pages) {
					if cache.Access(p * cfg.BodiesPerPage) {
						t.Exec(cfg.CacheHitCost)
					} else {
						t.BlockIO()
					}
				}
				t.Exec(sim.Duration(n) * cfg.InteractionCost)
				// The sequential program updates its accumulators without
				// locks, but still does the work.
				t.Exec(sim.Duration(cfg.LockOpsPerBody) * cfg.CSWork)
			}
			t.Exec(sim.Duration(cfg.N) * cfg.IntegratePerBody)
			for i := range bodies {
				Leapfrog(&bodies[i], accels[i], cfg.DT)
			}
		}
		r.CacheHits = cache.Hits
		r.CacheMisses = cache.Misses
		r.Bodies = bodies
		r.Finished = eng.Now()
		r.Done = true
	})
	return r
}
