package nbody

import (
	"schedact/internal/kernel"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

// Thread is the thread handle the application is written against, so the
// same application code runs on Topaz kernel threads, original FastThreads,
// and FastThreads on scheduler activations — the three systems of §5.3.
type Thread interface {
	Exec(d sim.Duration)
	BlockIO()
	Fork(name string, fn func(Thread)) Handle
	Join(h Handle)
	Now() sim.Time
}

// Handle identifies a forked thread for Join.
type Handle any

// Mutex is the application-lock abstraction: Topaz kernel mutexes block in
// the kernel under contention; FastThreads mutexes block at user level.
type Mutex interface {
	Lock(t Thread)
	Unlock(t Thread)
}

// Cond is the condition-variable abstraction used for the long-wait
// coordination (the chunk-window semaphore).
type Cond interface {
	Wait(t Thread, m Mutex)
	Signal(t Thread)
}

// System abstracts a thread system instance for one application run.
type System interface {
	Name() string
	Spawn(name string, fn func(Thread))
	// NewMutex returns the short-critical-section application lock (a spin
	// lock on FastThreads, a kernel mutex on Topaz).
	NewMutex() Mutex
	// NewBlockingMutex returns a lock suitable for long waits.
	NewBlockingMutex() Mutex
	NewCond() Cond
}

// Sem is a counting semaphore built on the system's blocking primitives; it
// bounds the window of live chunk threads.
type Sem struct {
	m Mutex
	c Cond
	n int
}

// NewSem creates a semaphore with n permits.
func NewSem(sys System, n int) *Sem {
	return &Sem{m: sys.NewBlockingMutex(), c: sys.NewCond(), n: n}
}

// Acquire takes a permit, blocking while none are available.
func (s *Sem) Acquire(t Thread) {
	s.m.Lock(t)
	for s.n == 0 {
		s.c.Wait(t, s.m)
	}
	s.n--
	s.m.Unlock(t)
}

// Release returns a permit and wakes one waiter.
func (s *Sem) Release(t Thread) {
	s.m.Lock(t)
	s.n++
	s.m.Unlock(t)
	s.c.Signal(t)
}

// --- FastThreads (either binding) ---

// UThreadSystem adapts a uthread.Sched.
type UThreadSystem struct{ S *uthread.Sched }

type utThread struct{ t *uthread.Thread }

// Name implements System.
func (u UThreadSystem) Name() string { return "fastthreads" }

// Spawn implements System.
func (u UThreadSystem) Spawn(name string, fn func(Thread)) {
	u.S.Spawn(name, func(t *uthread.Thread) { fn(utThread{t}) })
}

// NewMutex implements System. FastThreads applications protect short
// critical sections with user-level spin locks (§3.3 "this technique
// supports arbitrary user-level spin-locks"): cheap when uncontended, but
// if the kernel deschedules a lock holder's virtual processor, other
// processors spin-wait until the holder runs again — the multiprogramming
// pathology of Table 5, which the activations binding cures with
// critical-section continuation.
func (u UThreadSystem) NewMutex() Mutex { return utSpinMutex{l: &uthread.SpinLock{}} }

// NewBlockingMutex implements System with a user-level blocking mutex.
func (u UThreadSystem) NewBlockingMutex() Mutex { return utMutex{u.S.NewMutex()} }

// NewCond implements System.
func (u UThreadSystem) NewCond() Cond { return utCond{u.S.NewCond()} }

type utCond struct{ c *uthread.Cond }

func (c utCond) Wait(t Thread, m Mutex) { c.c.Wait(t.(utThread).t, m.(utMutex).m) }
func (c utCond) Signal(t Thread)        { c.c.Signal(t.(utThread).t) }

func (w utThread) Exec(d sim.Duration) { w.t.Exec(d) }
func (w utThread) BlockIO()            { w.t.BlockIO() }
func (w utThread) Now() sim.Time       { return w.t.Now() }
func (w utThread) Fork(name string, fn func(Thread)) Handle {
	return w.t.Fork(name, func(c *uthread.Thread) { fn(utThread{c}) })
}
func (w utThread) Join(h Handle) { w.t.Join(h.(*uthread.Thread)) }

type utMutex struct{ m *uthread.Mutex }

func (m utMutex) Lock(t Thread)   { m.m.Lock(t.(utThread).t) }
func (m utMutex) Unlock(t Thread) { m.m.Unlock(t.(utThread).t) }

type utSpinMutex struct{ l *uthread.SpinLock }

func (m utSpinMutex) Lock(t Thread)   { m.l.Acquire(t.(utThread).t) }
func (m utSpinMutex) Unlock(t Thread) { m.l.Release(t.(utThread).t) }

// --- Topaz kernel threads used directly ---

// KThreadSystem adapts a native-kernel address space.
type KThreadSystem struct {
	K  *kernel.Kernel
	SP *kernel.Space
}

type ktThread struct {
	k *kernel.Kernel
	t *kernel.KThread
}

// Name implements System.
func (s KThreadSystem) Name() string { return "topaz-threads" }

// Spawn implements System.
func (s KThreadSystem) Spawn(name string, fn func(Thread)) {
	s.SP.Spawn(name, 0, func(t *kernel.KThread) { fn(ktThread{s.K, t}) })
}

// NewMutex implements System.
func (s KThreadSystem) NewMutex() Mutex { return ktMutex{s.K.NewMutex()} }

// NewBlockingMutex implements System (kernel mutexes always block in the
// kernel under contention).
func (s KThreadSystem) NewBlockingMutex() Mutex { return ktMutex{s.K.NewMutex()} }

// NewCond implements System.
func (s KThreadSystem) NewCond() Cond { return ktCond{s.K.NewCond()} }

type ktCond struct{ c *kernel.Cond }

func (c ktCond) Wait(t Thread, m Mutex) { c.c.Wait(t.(ktThread).t, m.(ktMutex).m) }
func (c ktCond) Signal(t Thread)        { c.c.Signal(t.(ktThread).t) }

func (w ktThread) Exec(d sim.Duration) { w.t.Exec(d) }
func (w ktThread) BlockIO()            { w.t.BlockIO() }
func (w ktThread) Now() sim.Time       { return w.k.Eng.Now() }
func (w ktThread) Fork(name string, fn func(Thread)) Handle {
	return w.t.Fork(name, func(c *kernel.KThread) { fn(ktThread{w.k, c}) })
}
func (w ktThread) Join(h Handle) { w.t.Join(h.(*kernel.KThread)) }

type ktMutex struct{ m *kernel.Mutex }

func (m ktMutex) Lock(t Thread)   { m.m.Lock(t.(ktThread).t) }
func (m ktMutex) Unlock(t Thread) { m.m.Unlock(t.(ktThread).t) }
