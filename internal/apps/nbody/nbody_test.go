package nbody

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

func TestTreeForceMatchesBruteForce(t *testing.T) {
	bodies := NewUniformCluster(300, 7)
	root, cells := BuildTree(bodies)
	if cells < 300 {
		t.Fatalf("cells = %d, want at least one per body", cells)
	}
	var worst float64
	for i := range bodies {
		approx, n := root.Force(bodies, i, 0.5, nil)
		exact := BruteForce(bodies, i)
		if n == 0 {
			t.Fatalf("body %d: no interactions", i)
		}
		err := approx.Sub(exact).Norm() / (exact.Norm() + 1e-12)
		if err > worst {
			worst = err
		}
	}
	if worst > 0.05 {
		t.Fatalf("worst relative force error %.3f, want < 5%% at θ=0.5", worst)
	}
}

func TestSmallThetaApproachesExact(t *testing.T) {
	bodies := NewUniformCluster(100, 3)
	root, _ := BuildTree(bodies)
	for i := 0; i < 10; i++ {
		approx, _ := root.Force(bodies, i, 1e-9, nil)
		exact := BruteForce(bodies, i)
		if err := approx.Sub(exact).Norm(); err > 1e-9 {
			t.Fatalf("θ→0 should reproduce brute force; body %d err %g", i, err)
		}
	}
}

func TestTreeInteractionCountSubLinear(t *testing.T) {
	// Barnes-Hut's point: interactions per body are ~log N, far below N.
	bodies := NewUniformCluster(512, 1)
	root, _ := BuildTree(bodies)
	total := 0
	for i := range bodies {
		_, n := root.Force(bodies, i, 0.8, nil)
		total += n
	}
	avg := float64(total) / float64(len(bodies))
	if avg >= float64(len(bodies))/2 {
		t.Fatalf("avg interactions %.0f, want far below N=%d", avg, len(bodies))
	}
	if avg < 5 {
		t.Fatalf("avg interactions %.0f suspiciously low", avg)
	}
	t.Logf("avg interactions per body at θ=0.8: %.1f", avg)
}

func TestTreeCountsAllBodies(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%200) + 2
		bodies := NewUniformCluster(n, seed)
		root, _ := BuildTree(bodies)
		return root.NBodies == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeMassConserved(t *testing.T) {
	f := func(seed int64) bool {
		bodies := NewUniformCluster(128, seed)
		root, _ := BuildTree(bodies)
		var m float64
		for _, b := range bodies {
			m += b.Mass
		}
		return math.Abs(root.Mass-m) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyRoughlyConserved(t *testing.T) {
	bodies := NewUniformCluster(200, 11)
	e0 := TotalEnergy(bodies)
	for step := 0; step < 10; step++ {
		root, _ := BuildTree(bodies)
		accels := make([]Vec3, len(bodies))
		for i := range bodies {
			accels[i], _ = root.Force(bodies, i, 0.5, nil)
		}
		for i := range bodies {
			Leapfrog(&bodies[i], accels[i], 0.005)
		}
	}
	e1 := TotalEnergy(bodies)
	if drift := math.Abs(e1-e0) / math.Abs(e0); drift > 0.05 {
		t.Fatalf("energy drift %.3f over 10 steps, want < 5%%", drift)
	}
}

// --- cache ---

func TestCacheHitsAfterFill(t *testing.T) {
	c := NewCache(64, 8, 8) // all 8 pages fit
	for b := 0; b < 64; b++ {
		c.Access(b)
	}
	if c.Misses != 8 {
		t.Fatalf("cold misses = %d, want 8", c.Misses)
	}
	for b := 0; b < 64; b++ {
		if !c.Access(b) {
			t.Fatalf("body %d missed with a full-size cache", b)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(32, 8, 2) // 4 pages, capacity 2
	c.Access(0)             // page 0
	c.Access(8)             // page 1
	c.Access(0)             // touch page 0 (now MRU)
	c.Access(16)            // page 2: evicts page 1 (LRU)
	if !c.Contains(0) {
		t.Fatal("page 0 should be resident (recently touched)")
	}
	if c.Contains(8) {
		t.Fatal("page 1 should have been evicted (LRU)")
	}
	if !c.Contains(16) {
		t.Fatal("page 2 should be resident")
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64, capRaw, accesses uint8) bool {
		capacity := int(capRaw%16) + 1
		c := NewCache(256, 4, capacity)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(accesses); i++ {
			c.Access(rng.Intn(256))
			if c.Resident() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitPlusMissEqualsAccesses(t *testing.T) {
	f := func(seed int64, accesses uint8) bool {
		c := NewCache(128, 8, 3)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(accesses); i++ {
			c.Access(rng.Intn(128))
		}
		return c.Hits+c.Misses == uint64(accesses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- the application on all three systems ---

func smallCfg() Config {
	return Config{
		N:     64,
		Steps: 2,
		Seed:  5,
	}
}

func runOn(t *testing.T, system string, cfg Config, cpus int) *Run {
	t.Helper()
	eng := sim.NewEngine()
	t.Cleanup(eng.Close)
	var r *Run
	switch system {
	case "seq":
		k := kernel.New(eng, kernel.Config{CPUs: 1})
		r = RunSequential(k.NewSpace("seq", false), cfg)
	case "topaz":
		k := kernel.New(eng, kernel.Config{CPUs: cpus})
		r = Launch(KThreadSystem{K: k, SP: k.NewSpace("app", false)}, cfg)
	case "orig-ft":
		k := kernel.New(eng, kernel.Config{CPUs: cpus})
		s := uthread.OnKernelThreads(k, k.NewSpace("app", false), cpus, uthread.Options{})
		r = Launch(UThreadSystem{S: s}, cfg)
		s.Start()
	case "new-ft":
		k := core.New(eng, core.Config{CPUs: cpus})
		s := uthread.OnActivations(k, "app", 0, cpus, uthread.Options{})
		r = Launch(UThreadSystem{S: s}, cfg)
		s.Start()
	}
	eng.RunUntil(sim.Time(20 * 60 * sim.Second))
	if !r.Done {
		t.Fatalf("%s run did not finish", system)
	}
	return r
}

func TestAllSystemsComputeSamePhysics(t *testing.T) {
	cfg := smallCfg()
	ref := runOn(t, "seq", cfg, 1)
	for _, sysName := range []string{"topaz", "orig-ft", "new-ft"} {
		r := runOn(t, sysName, cfg, 2)
		if len(r.Bodies) != len(ref.Bodies) {
			t.Fatalf("%s: body count mismatch", sysName)
		}
		for i := range r.Bodies {
			if d := r.Bodies[i].Pos.Sub(ref.Bodies[i].Pos).Norm(); d > 1e-12 {
				t.Fatalf("%s: body %d diverged from sequential by %g", sysName, i, d)
			}
		}
		if r.Interactions != ref.Interactions {
			t.Fatalf("%s: interactions %d != sequential %d", sysName, r.Interactions, ref.Interactions)
		}
	}
}

func TestParallelismSpeedsUpNewFT(t *testing.T) {
	cfg := smallCfg()
	r1 := runOn(t, "new-ft", cfg, 1)
	r4 := runOn(t, "new-ft", cfg, 4)
	sp := float64(r1.Elapsed()) / float64(r4.Elapsed())
	if sp < 2.0 {
		t.Fatalf("speedup 1→4 CPUs = %.2f, want >= 2", sp)
	}
	t.Logf("new-ft speedup at 4 CPUs: %.2f", sp)
}

func TestMemoryPressureCausesMisses(t *testing.T) {
	cfg := smallCfg()
	cfg.MemFraction = 0.4
	full := runOn(t, "seq", smallCfg(), 1)
	tight := runOn(t, "seq", cfg, 1)
	// At 100% the cache never misses after the cold fill; at 40% it must.
	coldPages := uint64(Pages(cfg.N, 8))
	if full.CacheMisses > coldPages {
		t.Fatalf("misses at 100%% memory = %d, want <= cold fill %d", full.CacheMisses, coldPages)
	}
	if tight.CacheMisses <= full.CacheMisses {
		t.Fatalf("misses at 40%% (%d) should exceed misses at 100%% (%d)", tight.CacheMisses, full.CacheMisses)
	}
	if tight.Elapsed() <= full.Elapsed() {
		t.Fatal("memory pressure should slow the run down")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := smallCfg()
	a := runOn(t, "new-ft", cfg, 3)
	b := runOn(t, "new-ft", cfg, 3)
	if a.Elapsed() != b.Elapsed() || a.Interactions != b.Interactions {
		t.Fatalf("non-deterministic: %v/%d vs %v/%d", a.Elapsed(), a.Interactions, b.Elapsed(), b.Interactions)
	}
}
