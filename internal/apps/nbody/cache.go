package nbody

// Cache is the application-managed buffer cache of §5.3: body data lives in
// fixed-size pages; the application keeps a fraction of the pages in memory
// under LRU replacement, and a miss must fetch the page from disk (the
// caller blocks in the kernel for the disk latency). The cache itself is a
// pure data structure; all timing lives with the caller.
type Cache struct {
	pageOf   func(body int) int
	capacity int
	// LRU list, most recent at the back, plus an index.
	order []int
	pos   map[int]int // page -> index in order

	Hits   uint64
	Misses uint64
}

// NewCache builds a cache over nBodies bodies packed bodiesPerPage to a
// page, keeping capacity pages resident. capacity < 1 is clamped to 1.
func NewCache(nBodies, bodiesPerPage, capacity int) *Cache {
	if bodiesPerPage < 1 {
		bodiesPerPage = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		pageOf:   func(b int) int { return b / bodiesPerPage },
		capacity: capacity,
		pos:      make(map[int]int),
	}
}

// Pages reports how many distinct pages back nBodies bodies at
// bodiesPerPage.
func Pages(nBodies, bodiesPerPage int) int {
	return (nBodies + bodiesPerPage - 1) / bodiesPerPage
}

// Access touches the page holding body b, returning true on a hit. On a
// miss the page is brought in, evicting the least recently used page if the
// cache is full. The caller is responsible for charging the hit cost or
// blocking for the miss.
func (c *Cache) Access(b int) (hit bool) {
	p := c.pageOf(b)
	if i, ok := c.pos[p]; ok {
		c.Hits++
		c.touch(i)
		return true
	}
	c.Misses++
	if len(c.order) >= c.capacity {
		// Evict the least recently used (front).
		victim := c.order[0]
		copy(c.order, c.order[1:])
		c.order = c.order[:len(c.order)-1]
		delete(c.pos, victim)
		for j, pg := range c.order {
			c.pos[pg] = j
		}
	}
	c.pos[p] = len(c.order)
	c.order = append(c.order, p)
	return false
}

// touch moves the page at index i to most-recently-used.
func (c *Cache) touch(i int) {
	p := c.order[i]
	copy(c.order[i:], c.order[i+1:])
	c.order[len(c.order)-1] = p
	for j := i; j < len(c.order); j++ {
		c.pos[c.order[j]] = j
	}
}

// Resident reports the number of pages currently cached.
func (c *Cache) Resident() int { return len(c.order) }

// Contains reports whether body b's page is resident (no LRU side effect).
func (c *Cache) Contains(b int) bool {
	_, ok := c.pos[c.pageOf(b)]
	return ok
}
