package nbody

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMortonPreservesBodies(t *testing.T) {
	f := func(seed int64) bool {
		bodies := NewUniformCluster(100, seed)
		var massBefore, xBefore float64
		for _, b := range bodies {
			massBefore += b.Mass
			xBefore += b.Pos.X
		}
		SortMorton(bodies)
		var massAfter, xAfter float64
		for _, b := range bodies {
			massAfter += b.Mass
			xAfter += b.Pos.X
		}
		return math.Abs(massBefore-massAfter) < 1e-12 && math.Abs(xBefore-xAfter) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMortonImprovesNeighbourLocality(t *testing.T) {
	// After Z-ordering, consecutive bodies should be much closer in space
	// on average than under the original random order.
	bodies := NewUniformCluster(512, 3)
	dist := func(bs []Body) float64 {
		var d float64
		for i := 1; i < len(bs); i++ {
			d += bs[i].Pos.Sub(bs[i-1].Pos).Norm()
		}
		return d / float64(len(bs)-1)
	}
	before := dist(bodies)
	SortMorton(bodies)
	after := dist(bodies)
	if after >= before*0.6 {
		t.Fatalf("mean neighbour distance %f -> %f: Morton ordering should shrink it substantially", before, after)
	}
}

func TestMortonReducesCacheMisses(t *testing.T) {
	// The point of the ordering: traversals touch fewer distinct pages, so
	// an undersized LRU cache misses less.
	run := func(sorted bool) uint64 {
		bodies := NewUniformCluster(512, 3)
		if sorted {
			SortMorton(bodies)
		}
		root, _ := BuildTree(bodies)
		cache := NewCache(512, 8, 26) // 40% of 64 pages
		for i := range bodies {
			pages := map[int]bool{}
			root.Force(bodies, i, 0.8, func(leaf int) {
				if leaf >= 0 {
					pages[leaf/8] = true
				}
			})
			for _, p := range sortedKeys(pages) {
				cache.Access(p * 8)
			}
		}
		return cache.Misses
	}
	unsorted, sorted := run(false), run(true)
	if sorted >= unsorted {
		t.Fatalf("misses sorted=%d unsorted=%d: ordering should reduce misses", sorted, unsorted)
	}
}

func TestInterleave3Bits(t *testing.T) {
	// Each input bit b_i must land at output position 3i.
	for i := 0; i < 10; i++ {
		got := interleave3(1 << i)
		want := uint64(1) << (3 * i)
		if got != want {
			t.Fatalf("interleave3(1<<%d) = %#x, want %#x", i, got, want)
		}
	}
}

func TestInterleave3NoCollisions(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := uint32(a)&0x3ff, uint32(b)&0x3ff
		if x == y {
			return true
		}
		return interleave3(x) != interleave3(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
