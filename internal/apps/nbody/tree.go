package nbody

// The Barnes-Hut octree: each cell summarizes the bodies inside it by their
// total mass and center of mass. A force evaluation walks the tree; a cell
// whose opening ratio (size/distance) is below θ is treated as a single
// point mass, giving O(N log N) total work.

// Cell is one octree node.
type Cell struct {
	Center Vec3    // geometric center of the cube
	Half   float64 // half the cube's side
	Mass   float64
	CoM    Vec3

	BodyIdx  int // index of the single body, for leaves (-1 otherwise)
	Children [8]*Cell
	NBodies  int
}

// Leaf reports whether the cell holds exactly one body.
func (c *Cell) Leaf() bool { return c.BodyIdx >= 0 }

// BuildTree constructs the octree over the bodies and computes mass
// summaries. It returns the root and the number of cells built.
func BuildTree(bodies []Body) (*Cell, int) {
	// Bounding cube.
	if len(bodies) == 0 {
		return nil, 0
	}
	lo, hi := bodies[0].Pos, bodies[0].Pos
	for _, b := range bodies[1:] {
		lo.X = min(lo.X, b.Pos.X)
		lo.Y = min(lo.Y, b.Pos.Y)
		lo.Z = min(lo.Z, b.Pos.Z)
		hi.X = max(hi.X, b.Pos.X)
		hi.Y = max(hi.Y, b.Pos.Y)
		hi.Z = max(hi.Z, b.Pos.Z)
	}
	center := lo.Add(hi).Scale(0.5)
	half := max(hi.X-lo.X, max(hi.Y-lo.Y, hi.Z-lo.Z))/2 + 1e-12
	root := &Cell{Center: center, Half: half, BodyIdx: -1}
	created := 1
	for i := range bodies {
		root.insertAt(bodies, i, &created)
	}
	root.summarize(bodies)
	return root, created
}

// insertAt places body i in the subtree, splitting leaves as needed and
// counting created cells.
func (c *Cell) insertAt(bodies []Body, i int, created *int) {
	if c.NBodies == 0 {
		c.BodyIdx = i
		c.NBodies = 1
		return
	}
	if c.Half < 1e-12 {
		// Degenerate: coincident bodies; count but stop splitting (the
		// summary slightly under-weights the extras — harmless and only
		// reachable with adversarial inputs).
		c.NBodies++
		return
	}
	if c.Leaf() {
		old := c.BodyIdx
		c.BodyIdx = -1
		c.childFor(bodies[old].Pos, created).insertAt(bodies, old, created)
	}
	c.NBodies++
	c.childFor(bodies[i].Pos, created).insertAt(bodies, i, created)
}

// childFor returns (creating if needed) the octant child containing p.
func (c *Cell) childFor(p Vec3, created *int) *Cell {
	idx := 0
	if p.X >= c.Center.X {
		idx |= 1
	}
	if p.Y >= c.Center.Y {
		idx |= 2
	}
	if p.Z >= c.Center.Z {
		idx |= 4
	}
	if c.Children[idx] == nil {
		h := c.Half / 2
		off := Vec3{-h, -h, -h}
		if idx&1 != 0 {
			off.X = h
		}
		if idx&2 != 0 {
			off.Y = h
		}
		if idx&4 != 0 {
			off.Z = h
		}
		c.Children[idx] = &Cell{Center: c.Center.Add(off), Half: h, BodyIdx: -1}
		*created++
	}
	return c.Children[idx]
}

// summarize computes mass and center of mass bottom-up.
func (c *Cell) summarize(bodies []Body) {
	if c.Leaf() {
		c.Mass = bodies[c.BodyIdx].Mass
		c.CoM = bodies[c.BodyIdx].Pos
		return
	}
	var m float64
	var com Vec3
	for _, ch := range c.Children {
		if ch == nil || ch.NBodies == 0 {
			continue
		}
		ch.summarize(bodies)
		m += ch.Mass
		com = com.Add(ch.CoM.Scale(ch.Mass))
	}
	c.Mass = m
	if m > 0 {
		c.CoM = com.Scale(1 / m)
	}
}

// ForceVisit is called for each interaction during a force evaluation:
// leafBody >= 0 identifies a direct body-body interaction (whose data must
// be fetched through the application's buffer cache); -1 is a cell
// approximation.
type ForceVisit func(leafBody int)

// Force computes the acceleration on body i using the θ criterion,
// reporting each interaction through visit (which may be nil). It returns
// the acceleration and the interaction count.
func (root *Cell) Force(bodies []Body, i int, theta float64, visit ForceVisit) (Vec3, int) {
	var a Vec3
	n := 0
	var walk func(c *Cell)
	walk = func(c *Cell) {
		if c == nil || c.NBodies == 0 {
			return
		}
		if c.Leaf() {
			if c.BodyIdx == i {
				return
			}
			if visit != nil {
				visit(c.BodyIdx)
			}
			a = a.Add(accel(bodies[i].Pos, bodies[c.BodyIdx].Pos, bodies[c.BodyIdx].Mass))
			n++
			return
		}
		d := c.CoM.Sub(bodies[i].Pos).Norm()
		if (2*c.Half)/d < theta {
			if visit != nil {
				visit(-1)
			}
			a = a.Add(accel(bodies[i].Pos, c.CoM, c.Mass))
			n++
			return
		}
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	walk(root)
	return a, n
}

// BruteForce computes the exact O(N²) acceleration on body i, for tests.
func BruteForce(bodies []Body, i int) Vec3 {
	var a Vec3
	for j := range bodies {
		if j == i {
			continue
		}
		a = a.Add(accel(bodies[i].Pos, bodies[j].Pos, bodies[j].Mass))
	}
	return a
}
