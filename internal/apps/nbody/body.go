// Package nbody implements the application measured in the paper's §5.3: an
// O(N log N) solution to the N-body problem (Barnes & Hut 1986). The
// algorithm builds an octree of the bodies, approximating the force from a
// distant cluster by the force its center of mass would exert, and is
// parallelized with threads pulling body chunks from a shared work queue.
// Following the paper, the application explicitly manages part of its
// memory as a buffer cache for body data; a cache miss blocks in the kernel
// for the disk latency.
//
// The physics is real (positions, velocities, masses, a θ-criterion octree,
// leapfrog integration); only the time each arithmetic interaction takes is
// virtual, calibrated to the CVAX-class machine of the paper.
package nbody

import (
	"math"
	"math/rand"
)

// Vec3 is a point or vector in 3-space.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v+u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v-u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns v*s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y + v.Z*v.Z) }

// Body is one particle.
type Body struct {
	Pos  Vec3
	Vel  Vec3
	Mass float64
}

// Softening avoids the singularity for close encounters (standard practice;
// also keeps the simulation deterministic and finite).
const Softening = 1e-2

// G is the gravitational constant in simulation units.
const G = 1.0

// NewUniformCluster places n bodies uniformly in a unit sphere with small
// random velocities, deterministically from seed.
func NewUniformCluster(n int, seed int64) []Body {
	rng := rand.New(rand.NewSource(seed))
	bodies := make([]Body, n)
	for i := range bodies {
		// Rejection-sample the unit ball.
		var p Vec3
		for {
			p = Vec3{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
			if p.Norm() <= 1 {
				break
			}
		}
		bodies[i] = Body{
			Pos:  p,
			Vel:  Vec3{rng.Float64() - 0.5, rng.Float64() - 0.5, rng.Float64() - 0.5}.Scale(0.1),
			Mass: 1.0 / float64(n),
		}
	}
	return bodies
}

// accel computes the acceleration on a body at pos due to a point mass m at
// q, with softening.
func accel(pos, q Vec3, m float64) Vec3 {
	d := q.Sub(pos)
	r2 := d.X*d.X + d.Y*d.Y + d.Z*d.Z + Softening*Softening
	r := math.Sqrt(r2)
	return d.Scale(G * m / (r2 * r))
}

// Leapfrog advances body i by dt given acceleration a (kick-drift form;
// adequate for the short runs measured here).
func Leapfrog(b *Body, a Vec3, dt float64) {
	b.Vel = b.Vel.Add(a.Scale(dt))
	b.Pos = b.Pos.Add(b.Vel.Scale(dt))
}

// TotalEnergy returns kinetic plus potential energy (O(N²); used by tests
// as a physics sanity check).
func TotalEnergy(bodies []Body) float64 {
	var e float64
	for i := range bodies {
		v := bodies[i].Vel.Norm()
		e += 0.5 * bodies[i].Mass * v * v
		for j := i + 1; j < len(bodies); j++ {
			d := bodies[i].Pos.Sub(bodies[j].Pos).Norm()
			e -= G * bodies[i].Mass * bodies[j].Mass / math.Sqrt(d*d+Softening*Softening)
		}
	}
	return e
}
