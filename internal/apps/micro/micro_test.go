package micro

import (
	"testing"

	"schedact/internal/machine"
	"schedact/internal/sim"
)

// paper targets, µs (Tables 1 and 4, §5.1, §5.2)
var paper = map[System]struct{ nf, sw float64 }{
	FastThreadsKT:   {34, 37},
	TopazThreads:    {948, 441},
	UltrixProcesses: {11300, 1840},
	FastThreadsSA:   {37, 42},
}

// within reports whether got is within frac of want.
func within(got, want, frac float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= want*frac
}

func TestCalibrationMatchesPaper(t *testing.T) {
	for sys, want := range paper {
		r := Run(sys, nil)
		nf, sw := sim.DurUs(r.NullFork), sim.DurUs(r.SignalWait)
		t.Logf("%-40s NullFork %7.1fµs (paper %7.1f)  Signal-Wait %7.1fµs (paper %7.1f)",
			sys, nf, want.nf, sw, want.sw)
		if !within(nf, want.nf, 0.10) {
			t.Errorf("%s: NullFork = %.1fµs, paper %.1fµs (>10%% off)", sys, nf, want.nf)
		}
		if !within(sw, want.sw, 0.10) {
			t.Errorf("%s: Signal-Wait = %.1fµs, paper %.1fµs (>10%% off)", sys, sw, want.sw)
		}
	}
}

func TestOrderOfMagnitudeSeparation(t *testing.T) {
	ft := Run(FastThreadsKT, nil)
	topaz := Run(TopazThreads, nil)
	ultrix := Run(UltrixProcesses, nil)
	if topaz.NullFork < 10*ft.NullFork {
		t.Errorf("Topaz fork (%v) should be ~an order of magnitude above FastThreads (%v)", topaz.NullFork, ft.NullFork)
	}
	if ultrix.NullFork < 10*topaz.NullFork {
		t.Errorf("Ultrix fork (%v) should be ~an order of magnitude above Topaz (%v)", ultrix.NullFork, topaz.NullFork)
	}
}

func TestSAOverheadSmall(t *testing.T) {
	// Table 4: scheduler activations cost only a few µs over original
	// FastThreads (3µs on Null Fork, 5µs on Signal-Wait).
	ft := Run(FastThreadsKT, nil)
	sa := Run(FastThreadsSA, nil)
	dNF := sim.DurUs(sa.NullFork) - sim.DurUs(ft.NullFork)
	dSW := sim.DurUs(sa.SignalWait) - sim.DurUs(ft.SignalWait)
	t.Logf("SA deltas: NullFork +%.1fµs (paper +3), Signal-Wait +%.1fµs (paper +5)", dNF, dSW)
	if dNF < 0.5 || dNF > 8 {
		t.Errorf("NullFork delta = %.1fµs, want small positive (~3µs)", dNF)
	}
	if dSW < 0.5 || dSW > 10 {
		t.Errorf("Signal-Wait delta = %.1fµs, want small positive (~5µs)", dSW)
	}
}

func TestAblationExplicitFlags(t *testing.T) {
	// §5.1: without the zero-overhead marking, Null Fork 49µs and
	// Signal-Wait 48µs; Null Fork has more critical sections in its path.
	sa := Run(FastThreadsSA, nil)
	ab := RunAblation(nil)
	t.Logf("ablation: NullFork %.1fµs (paper 49), Signal-Wait %.1fµs (paper 48)",
		sim.DurUs(ab.NullFork), sim.DurUs(ab.SignalWait))
	if ab.NullFork <= sa.NullFork || ab.SignalWait <= sa.SignalWait {
		t.Fatal("explicit flags must cost more than zero-overhead marking")
	}
	dNF := ab.NullFork - sa.NullFork
	dSW := ab.SignalWait - sa.SignalWait
	if dNF <= dSW {
		t.Errorf("NullFork ablation delta (%v) should exceed Signal-Wait's (%v): more critical sections in the fork path", dNF, dSW)
	}
}

func TestUpcallSignalWaitPrototypeAndTuned(t *testing.T) {
	proto := UpcallSignalWait(machine.DefaultCosts())
	tuned := UpcallSignalWait(machine.TunedCosts())
	topaz := Run(TopazThreads, nil).SignalWait
	t.Logf("upcall signal-wait: prototype %.2fms (paper 2.4ms), tuned %.0fµs, Topaz %.0fµs",
		sim.DurMs(proto), sim.DurUs(tuned), sim.DurUs(topaz))
	// Prototype: ~2.4ms, a factor of ~5 worse than Topaz threads.
	if !within(sim.DurMs(proto), 2.4, 0.25) {
		t.Errorf("prototype upcall signal-wait = %.2fms, paper 2.4ms", sim.DurMs(proto))
	}
	ratio := float64(proto) / float64(topaz)
	if ratio < 3.5 || ratio > 7 {
		t.Errorf("prototype/Topaz ratio = %.1f, paper ~5", ratio)
	}
	// Tuned: commensurate with Topaz kernel threads (§5.2's expectation).
	tr := float64(tuned) / float64(topaz)
	if tr < 0.5 || tr > 2.5 {
		t.Errorf("tuned/Topaz ratio = %.1f, want commensurate", tr)
	}
}

func TestDeterministicBenchmarks(t *testing.T) {
	a := Run(FastThreadsSA, nil)
	b := Run(FastThreadsSA, nil)
	if a != b {
		t.Fatalf("benchmark not deterministic: %+v vs %+v", a, b)
	}
}
