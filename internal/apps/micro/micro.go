// Package micro implements the thread-operation microbenchmarks of the
// paper's Tables 1 and 4: Null Fork (the overhead of creating, scheduling,
// executing, and completing a thread that invokes the null procedure) and
// Signal-Wait (the overhead of signalling a waiting thread and then waiting
// on a condition). Each benchmark runs on a single processor and averages
// over many repetitions, exactly as described in §2.1.
//
// Four systems are measured: FastThreads on Topaz kernel threads (original),
// Topaz kernel threads used directly, Ultrix-like processes, and
// FastThreads on scheduler activations (Table 4's new column). The §5.1
// critical-section ablation and the §5.2 upcall benchmark live here too.
package micro

import (
	"fmt"

	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/machine"
	"schedact/internal/sim"
	"schedact/internal/stats"
	"schedact/internal/trace"
	"schedact/internal/uthread"
)

// Iters is the repetition count for each microbenchmark.
const Iters = 200

// StatsSink, when non-nil, is attached to every benchmark engine as a close
// hook: the engine's labelled metrics registry is delivered to the sink as
// the engine closes. The experiment harness installs it through
// exp.SetStatsSink; benchmarks built while no sink is installed run
// hook-free.
var StatsSink func(label string, reg *stats.Registry)

// EngineOpts, when non-nil, supplies extra construction options for every
// benchmark engine. The experiment harness installs it to thread its engine
// selection (exp.EngineLPs → the conservative PDES engine) through to the
// microbenchmarks; the timeline is identical for any engine, so this only
// widens what the golden traces and fingerprints cover.
var EngineOpts func() []sim.Option

// WarmEngine, when non-nil, supplies every benchmark engine instead of
// fresh construction: the provider hands back a recycled engine already
// Reset for the given label, and the benchmark leaves it open when done
// (the provider owns the lifecycle, so no close hooks fire per benchmark).
// The warm-golden regression tests install this to prove the microbenchmark
// timelines are identical on a recycled engine.
var WarmEngine func(label string) sim.Engine

// newEngine builds one labelled benchmark engine, wiring the stats-sink
// close hook when a sink is installed plus any harness-supplied options.
func newEngine(label string) sim.Engine {
	opts := []sim.Option{sim.WithLabel(label)}
	if sink := StatsSink; sink != nil {
		opts = append(opts, sim.OnClose(func(e sim.Engine) {
			sink(e.Label(), e.Metrics())
		}))
	}
	if extra := EngineOpts; extra != nil {
		opts = append(opts, extra()...)
	}
	return sim.NewEngine(opts...)
}

// engineFor acquires the engine for one benchmark: a recycled one from
// WarmEngine (release is then a no-op — the provider keeps it alive), or a
// fresh newEngine whose release closes it.
func engineFor(label string) (sim.Engine, func()) {
	if warm := WarmEngine; warm != nil {
		return warm(label), func() {}
	}
	eng := newEngine(label)
	return eng, func() { eng.Close() }
}

// System selects the thread system under measurement.
type System int

const (
	FastThreadsKT   System = iota // user-level threads on Topaz kernel threads
	TopazThreads                  // kernel threads used directly
	UltrixProcesses               // heavyweight processes
	FastThreadsSA                 // user-level threads on scheduler activations
)

func (s System) String() string {
	switch s {
	case FastThreadsKT:
		return "FastThreads on Topaz threads"
	case TopazThreads:
		return "Topaz threads"
	case UltrixProcesses:
		return "Ultrix processes"
	case FastThreadsSA:
		return "FastThreads on Scheduler Activations"
	}
	return "invalid"
}

// Result is one benchmark measurement.
type Result struct {
	System     System
	NullFork   sim.Duration
	SignalWait sim.Duration
}

// Run measures Null Fork and Signal-Wait on the given system with the given
// cost profile (nil for the calibrated default).
func Run(sys System, costs *machine.Costs) Result {
	return RunTraced(sys, costs, nil)
}

// RunTraced is Run with a scheduling trace threaded through both
// benchmarks' kernels and thread libraries (nil disables tracing). The
// golden-trace regression tests diff these dumps against committed
// canonical logs.
func RunTraced(sys System, costs *machine.Costs, tr *trace.Log) Result {
	if costs == nil {
		costs = machine.DefaultCosts()
	}
	return Result{
		System:     sys,
		NullFork:   nullFork(sys, costs, uthread.Options{}, tr),
		SignalWait: signalWait(sys, costs, uthread.Options{}, tr),
	}
}

// RunAblation measures FastThreads on scheduler activations with the §5.1
// explicit-flag critical sections instead of the zero-overhead marking.
func RunAblation(costs *machine.Costs) Result {
	if costs == nil {
		costs = machine.DefaultCosts()
	}
	opt := uthread.Options{ExplicitCSFlags: true}
	return Result{
		System:     FastThreadsSA,
		NullFork:   nullFork(FastThreadsSA, costs, opt, nil),
		SignalWait: signalWait(FastThreadsSA, costs, opt, nil),
	}
}

// --- user-level thread benchmarks ---

func newUT(sys System, costs *machine.Costs, opt uthread.Options, tr *trace.Log) (sim.Engine, func(), *uthread.Sched) {
	eng, release := engineFor(fmt.Sprintf("micro %s", sys))
	opt.Trace = tr
	switch sys {
	case FastThreadsKT:
		k := kernel.New(eng, kernel.Config{CPUs: 1, Costs: costs, Trace: tr})
		return eng, release, uthread.OnKernelThreads(k, k.NewSpace("bench", false), 1, opt)
	case FastThreadsSA:
		k := core.New(eng, core.Config{CPUs: 1, Costs: costs, Trace: tr})
		return eng, release, uthread.OnActivations(k, "bench", 0, 1, opt)
	}
	panic("micro: not a user-level system")
}

func utNullFork(sys System, costs *machine.Costs, opt uthread.Options, tr *trace.Log) sim.Duration {
	eng, release, s := newUT(sys, costs, opt, tr)
	defer release()
	var per sim.Duration
	s.Spawn("parent", func(th *uthread.Thread) {
		// One iteration: fork the null thread, yield so it runs next
		// (create, schedule, execute, complete), and be rescheduled once
		// it exits. Warm up once: the first fork includes the one-time
		// kernel notification of new parallelism.
		th.Fork("null", func(c *uthread.Thread) { c.Exec(costs.ProcCall) })
		th.Yield()
		start := th.Now()
		for i := 0; i < Iters; i++ {
			th.Fork("null", func(c *uthread.Thread) { c.Exec(costs.ProcCall) })
			th.Yield()
		}
		per = th.Now().Sub(start) / Iters
	})
	s.Start()
	eng.RunUntil(sim.Time(10 * sim.Second))
	return per
}

func utSignalWait(sys System, costs *machine.Costs, opt uthread.Options, tr *trace.Log) sim.Duration {
	eng, release, s := newUT(sys, costs, opt, tr)
	defer release()
	a, b := s.NewCond(), s.NewCond()
	var per sim.Duration
	s.Spawn("waiter", func(th *uthread.Thread) {
		for i := 0; i < Iters+10; i++ {
			b.Wait(th, nil)
			a.Signal(th)
		}
	})
	s.Spawn("bench", func(th *uthread.Thread) {
		// Let the waiter block first.
		th.Yield()
		// Warm-up round.
		b.Signal(th)
		a.Wait(th, nil)
		start := th.Now()
		for i := 0; i < Iters; i++ {
			b.Signal(th) // signal the waiting thread...
			a.Wait(th, nil)
			// ...then wait on a condition: one Signal-Wait pair.
		}
		per = th.Now().Sub(start) / (2 * Iters)
	})
	s.Start()
	eng.RunUntil(sim.Time(10 * sim.Second))
	return per
}

// --- kernel thread / process benchmarks ---

func ktNullFork(heavy bool, costs *machine.Costs, tr *trace.Log) sim.Duration {
	eng, release := engineFor(fmt.Sprintf("micro nullfork heavy=%v", heavy))
	defer release()
	k := kernel.New(eng, kernel.Config{CPUs: 1, Costs: costs, Trace: tr})
	sp := k.NewSpace("bench", heavy)
	var per sim.Duration
	sp.Spawn("parent", 0, func(th *kernel.KThread) {
		c := th.Fork("null", func(c *kernel.KThread) { c.Exec(costs.ProcCall) })
		th.Join(c)
		start := k.Eng.Now()
		for i := 0; i < Iters; i++ {
			c := th.Fork("null", func(c *kernel.KThread) { c.Exec(costs.ProcCall) })
			th.Join(c)
		}
		per = k.Eng.Now().Sub(start) / Iters
	})
	eng.RunUntil(sim.Time(60 * sim.Second))
	return per
}

func ktSignalWait(heavy bool, costs *machine.Costs, tr *trace.Log) sim.Duration {
	eng, release := engineFor(fmt.Sprintf("micro signalwait heavy=%v", heavy))
	defer release()
	k := kernel.New(eng, kernel.Config{CPUs: 1, Costs: costs, Trace: tr})
	sp := k.NewSpace("bench", heavy)
	a, b := k.NewCond(), k.NewCond()
	var per sim.Duration
	sp.Spawn("waiter", 0, func(th *kernel.KThread) {
		for i := 0; i < Iters+10; i++ {
			b.Wait(th, nil)
			a.Signal(th)
		}
	})
	sp.Spawn("bench", 0, func(th *kernel.KThread) {
		th.Yield()
		b.Signal(th)
		a.Wait(th, nil)
		start := k.Eng.Now()
		for i := 0; i < Iters; i++ {
			b.Signal(th)
			a.Wait(th, nil)
		}
		per = k.Eng.Now().Sub(start) / (2 * Iters)
	})
	eng.RunUntil(sim.Time(60 * sim.Second))
	return per
}

func nullFork(sys System, costs *machine.Costs, opt uthread.Options, tr *trace.Log) sim.Duration {
	switch sys {
	case FastThreadsKT, FastThreadsSA:
		return utNullFork(sys, costs, opt, tr)
	case TopazThreads:
		return ktNullFork(false, costs, tr)
	case UltrixProcesses:
		return ktNullFork(true, costs, tr)
	}
	panic("micro: unknown system")
}

func signalWait(sys System, costs *machine.Costs, opt uthread.Options, tr *trace.Log) sim.Duration {
	switch sys {
	case FastThreadsKT, FastThreadsSA:
		return utSignalWait(sys, costs, opt, tr)
	case TopazThreads:
		return ktSignalWait(false, costs, tr)
	case UltrixProcesses:
		return ktSignalWait(true, costs, tr)
	}
	panic("micro: unknown system")
}

// UpcallSignalWait is the §5.2 measurement: two user-level threads on
// scheduler activations forced to signal and wait through the kernel. It
// returns the full round-trip time per signal-wait pair (the paper reports
// 2.4 ms on the prototype).
func UpcallSignalWait(costs *machine.Costs) sim.Duration {
	if costs == nil {
		costs = machine.DefaultCosts()
	}
	eng, release := engineFor("micro upcall-signalwait")
	defer release()
	k := core.New(eng, core.Config{CPUs: 2, Costs: costs})
	s := uthread.OnActivations(k, "bench", 0, 2, uthread.Options{})
	a, b := k.NewKernelEvent(), k.NewKernelEvent()
	const iters = 20
	var per sim.Duration
	s.Spawn("waiter", func(th *uthread.Thread) {
		for i := 0; i < iters+4; i++ {
			th.KernelWait(b)
			th.KernelSignal(a)
		}
	})
	s.Spawn("bench", func(th *uthread.Thread) {
		th.Exec(sim.Ms(10)) // let the waiter block in the kernel
		th.KernelSignal(b)
		th.KernelWait(a)
		start := th.Now()
		for i := 0; i < iters; i++ {
			th.KernelSignal(b)
			th.KernelWait(a)
		}
		per = th.Now().Sub(start) / (2 * iters)
	})
	s.Start()
	eng.RunUntil(sim.Time(60 * sim.Second))
	return per
}
