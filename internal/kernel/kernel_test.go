package kernel

import (
	"testing"

	"schedact/internal/machine"
	"schedact/internal/sim"
)

func newTestKernel(t *testing.T, cpus int) (sim.Engine, *Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	t.Cleanup(eng.Close)
	return eng, New(eng, Config{CPUs: cpus})
}

func TestSpawnRunsThreadToCompletion(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	var ran bool
	sp.Spawn("main", 0, func(th *KThread) {
		th.Exec(100 * sim.Microsecond)
		ran = true
	})
	eng.Run()
	if !ran {
		t.Fatal("thread did not run")
	}
	if k.Stats.Exits != 1 {
		t.Fatalf("Exits = %d, want 1", k.Stats.Exits)
	}
}

func TestForkChargesKernelPath(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	var childStart sim.Time
	sp.Spawn("parent", 0, func(th *KThread) {
		th.Fork("child", func(c *KThread) { childStart = eng.Now() })
	})
	eng.Run()
	// Child cannot start before the parent has paid trap + fork work and
	// the dispatcher has paid the switch cost.
	min := sim.Time(k.C.Trap + k.C.KTForkWork)
	if childStart < min {
		t.Fatalf("child started at %v, want >= %v", childStart, min)
	}
	if k.Stats.Forks != 1 {
		t.Fatalf("Forks = %d, want 1", k.Stats.Forks)
	}
}

func TestHeavySpaceChargesProcessCosts(t *testing.T) {
	timeFor := func(heavy bool) sim.Time {
		eng := sim.NewEngine()
		defer eng.Close()
		k := New(eng, Config{CPUs: 1})
		sp := k.NewSpace("app", heavy)
		var childStart sim.Time
		sp.Spawn("parent", 0, func(th *KThread) {
			th.Fork("child", func(c *KThread) { childStart = eng.Now() })
		})
		eng.Run()
		return childStart
	}
	light, heavy := timeFor(false), timeFor(true)
	if heavy < 10*light {
		t.Fatalf("process fork (%v) should be ~an order of magnitude above thread fork (%v)", heavy, light)
	}
}

func TestJoinWaitsForChild(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	sp := k.NewSpace("app", false)
	var childDone, parentResumed sim.Time
	sp.Spawn("parent", 0, func(th *KThread) {
		child := th.Fork("child", func(c *KThread) {
			c.Exec(5 * sim.Millisecond)
			childDone = eng.Now()
		})
		th.Join(child)
		parentResumed = eng.Now()
	})
	eng.Run()
	if childDone == 0 || parentResumed == 0 {
		t.Fatal("child or parent did not finish")
	}
	if parentResumed < childDone {
		t.Fatalf("parent resumed at %v before child finished at %v", parentResumed, childDone)
	}
}

func TestJoinOnFinishedChildReturnsQuickly(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	blocked := false
	sp.Spawn("parent", 0, func(th *KThread) {
		child := th.Fork("child", func(c *KThread) {})
		th.Yield() // let the child run and exit on our single CPU
		before := k.Stats.Blocks
		th.Join(child)
		blocked = k.Stats.Blocks != before
	})
	eng.Run()
	if blocked {
		t.Fatal("Join on an exited child should not block")
	}
}

func TestTimeSlicingRoundRobinsEqualPriority(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	var switches []string
	work := func(name string) func(*KThread) {
		return func(th *KThread) {
			for i := 0; i < 4; i++ {
				th.Exec(k.C.Quantum) // exactly one quantum of work per chunk
				switches = append(switches, name)
			}
		}
	}
	sp.Spawn("a", 0, work("a"))
	sp.Spawn("b", 0, work("b"))
	eng.Run()
	if len(switches) != 8 {
		t.Fatalf("chunks = %v, want 8", switches)
	}
	// With quantum-sized chunks the two spinners must interleave rather
	// than run to completion back to back.
	backToBack := 0
	for i := 1; i < len(switches); i++ {
		if switches[i] == switches[i-1] {
			backToBack++
		}
	}
	if backToBack > 2 {
		t.Fatalf("switch pattern %v too bursty for round-robin time slicing", switches)
	}
	if k.Stats.Preemptions == 0 {
		t.Fatal("no involuntary preemptions recorded")
	}
}

func TestHigherPriorityRunsFirst(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	var order []string
	sp.Spawn("starter", 0, func(th *KThread) {
		// Fork low before high; both end up queued behind the running
		// starter. When the starter exits, the high-priority thread must
		// win the dispatcher pass.
		low := sp.newThread("low", 0, func(c *KThread) { order = append(order, "low") })
		high := sp.newThread("high", 3, func(c *KThread) { order = append(order, "high") })
		k.threadReady(low)
		k.threadReady(high)
	})
	eng.Run()
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("order = %v, want high first", order)
	}
}

func TestMutexMutualExclusionAndContention(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	sp := k.NewSpace("app", false)
	m := k.NewMutex()
	inside, maxInside := 0, 0
	for i := 0; i < 4; i++ {
		sp.Spawn("worker", 0, func(th *KThread) {
			for j := 0; j < 3; j++ {
				m.Lock(th)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Exec(200 * sim.Microsecond)
				inside--
				m.Unlock(th)
				th.Exec(50 * sim.Microsecond)
			}
		})
	}
	eng.Run()
	if maxInside != 1 {
		t.Fatalf("max threads inside critical section = %d, want 1", maxInside)
	}
	if m.Contended == 0 {
		t.Fatal("expected contended acquires with 2 CPUs and 4 threads")
	}
	if m.Holder() != nil {
		t.Fatal("mutex still held at end")
	}
}

func TestUncontendedMutexAvoidsKernel(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	m := k.NewMutex()
	var elapsed sim.Duration
	sp.Spawn("solo", 0, func(th *KThread) {
		start := eng.Now()
		for i := 0; i < 10; i++ {
			m.Lock(th)
			m.Unlock(th)
		}
		elapsed = eng.Now().Sub(start)
	})
	eng.Run()
	// Each pair costs two test-and-sets; the whole loop must be far below
	// what even one kernel-mediated acquire (trap + block work) would cost.
	if perPair := elapsed / 10; perPair >= k.C.Trap {
		t.Fatalf("uncontended lock pair took %v, want < one trap (%v)", perPair, k.C.Trap)
	}
	if m.Contended != 0 {
		t.Fatalf("Contended = %d, want 0", m.Contended)
	}
}

func TestCondSignalWaitPingPong(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	cond := k.NewCond()
	var log []string
	const rounds = 3
	sp.Spawn("waiter", 0, func(th *KThread) {
		for i := 0; i < rounds; i++ {
			cond.Wait(th, nil)
			log = append(log, "woke")
		}
	})
	sp.Spawn("signaller", 0, func(th *KThread) {
		for i := 0; i < rounds; i++ {
			// Give the waiter time to block, then signal.
			th.SleepFor(10 * sim.Millisecond)
			cond.Signal(th)
			log = append(log, "signalled")
		}
	})
	eng.Run()
	if len(log) != 2*rounds {
		t.Fatalf("log = %v, want %d entries", log, 2*rounds)
	}
	if cond.Waiters() != 0 {
		t.Fatalf("waiters left = %d", cond.Waiters())
	}
}

func TestBlockIOFreesProcessorForOtherThreads(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	var computeDone, ioDone sim.Time
	sp.Spawn("io-thread", 0, func(th *KThread) {
		th.BlockIO()
		ioDone = eng.Now()
	})
	sp.Spawn("cpu-thread", 0, func(th *KThread) {
		th.Exec(10 * sim.Millisecond)
		computeDone = eng.Now()
	})
	eng.Run()
	if ioDone < sim.Time(k.C.DiskLatency) {
		t.Fatalf("I/O finished at %v, before disk latency %v", ioDone, k.C.DiskLatency)
	}
	// The CPU thread must overlap with the 50ms I/O, finishing well before it.
	if computeDone >= ioDone {
		t.Fatalf("compute finished at %v, should overlap I/O finishing at %v", computeDone, ioDone)
	}
	if k.Stats.IORequests != 1 {
		t.Fatalf("IORequests = %d, want 1", k.Stats.IORequests)
	}
}

func TestSleepForWakesOnTime(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	var woke sim.Time
	sp.Spawn("sleeper", 0, func(th *KThread) {
		th.SleepFor(20 * sim.Millisecond)
		woke = eng.Now()
	})
	eng.Run()
	lo := sim.Time(20 * sim.Millisecond)
	hi := lo.Add(sim.Millisecond)
	if woke < lo || woke > hi {
		t.Fatalf("woke at %v, want within [%v, %v]", woke, lo, hi)
	}
}

func TestHighPriorityWakePreemptsBusyCPUDespiteIdle(t *testing.T) {
	// Native-Topaz placement: the woken daemon lands on the round-robin
	// target CPU even when another CPU is idle (paper §5.3). Arrange the
	// rr pointer to hit the busy CPU.
	eng, k := newTestKernel(t, 2)
	sp := k.NewSpace("app", false)
	dsp := k.NewSpace("daemon", false)
	preemptsBefore := uint64(0)
	sp.Spawn("worker", 0, func(th *KThread) {
		th.Exec(100 * sim.Millisecond)
	})
	dsp.Spawn("daemon", 5, func(th *KThread) {
		for i := 0; i < 3; i++ {
			th.SleepFor(10 * sim.Millisecond)
			th.Exec(sim.Millisecond)
		}
	})
	eng.After(sim.Millisecond, "check", func() { preemptsBefore = k.Stats.Preemptions })
	eng.Run()
	if k.Stats.Preemptions == preemptsBefore {
		t.Fatal("daemon wake-ups never preempted the busy CPU; native placement should hit it with one CPU idle")
	}
}

func TestNoCPUIdlesWithReadyWorkSteadyState(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	sp := k.NewSpace("app", false)
	for i := 0; i < 6; i++ {
		sp.Spawn("w", 0, func(th *KThread) { th.Exec(30 * sim.Millisecond) })
	}
	// Sample utilization while work remains: after startup transients both
	// CPUs should be busy essentially always.
	eng.RunUntil(sim.Time(60 * sim.Millisecond))
	for _, cpu := range k.M.CPUs() {
		if u := cpu.Utilization(); u < 0.95 {
			t.Errorf("cpu%d utilization %.3f during saturated phase, want >= 0.95", cpu.ID(), u)
		}
	}
	eng.Run()
}

func TestYieldRotatesEqualPriority(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	var order []string
	sp.Spawn("a", 0, func(th *KThread) {
		order = append(order, "a1")
		th.Yield()
		order = append(order, "a2")
	})
	sp.Spawn("b", 0, func(th *KThread) {
		order = append(order, "b1")
	})
	eng.Run()
	want := []string{"a1", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func() (sim.Time, Stats) {
		eng := sim.NewEngine()
		defer eng.Close()
		k := New(eng, Config{CPUs: 3})
		sp := k.NewSpace("app", false)
		m := k.NewMutex()
		for i := 0; i < 8; i++ {
			sp.Spawn("w", 0, func(th *KThread) {
				for j := 0; j < 5; j++ {
					m.Lock(th)
					th.Exec(300 * sim.Microsecond)
					m.Unlock(th)
					th.BlockIO()
				}
			})
		}
		eng.Run()
		return eng.Now(), k.Stats
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%v, %+v) vs (%v, %+v)", t1, s1, t2, s2)
	}
}

func TestStatsDispatchAccounting(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	sp.Spawn("w", 0, func(th *KThread) { th.Exec(sim.Microsecond) })
	eng.Run()
	if k.Stats.Dispatches == 0 {
		t.Fatal("no dispatches recorded")
	}
	if k.Idle() != 1 {
		t.Fatalf("Idle() = %d, want 1 after completion", k.Idle())
	}
	if k.RunningOn(machine.CPUID(0)) != nil {
		t.Fatal("RunningOn should be nil after completion")
	}
}
