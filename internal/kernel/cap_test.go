package kernel

import (
	"testing"

	"schedact/internal/sim"
)

func TestCPUCapBoundsConcurrency(t *testing.T) {
	// A space capped at 2 processors never runs more than 2 threads at
	// once, even on a 4-CPU machine with 6 ready threads.
	eng, k := newTestKernel(t, 4)
	sp := k.NewSpace("app", false)
	sp.CPUCap = 2
	running, maxRunning := 0, 0
	for i := 0; i < 6; i++ {
		sp.Spawn("w", 0, func(th *KThread) {
			running++
			if running > maxRunning {
				maxRunning = running
			}
			th.Exec(10 * sim.Millisecond)
			running--
		})
	}
	eng.Run()
	if maxRunning != 2 {
		t.Fatalf("max concurrent = %d, want 2 (capped)", maxRunning)
	}
}

func TestCPUCapLeavesProcessorsForOthers(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	capped := k.NewSpace("capped", false)
	capped.CPUCap = 1
	other := k.NewSpace("other", false)
	var cappedDone, otherDone sim.Time
	for i := 0; i < 2; i++ {
		capped.Spawn("c", 0, func(th *KThread) {
			th.Exec(20 * sim.Millisecond)
			cappedDone = eng.Now()
		})
	}
	other.Spawn("o", 0, func(th *KThread) {
		th.Exec(20 * sim.Millisecond)
		otherDone = eng.Now()
	})
	eng.Run()
	// The other space's thread must run concurrently with the capped
	// space's first thread, not wait behind both.
	if otherDone >= cappedDone {
		t.Fatalf("other finished at %v, capped at %v: the cap did not free a processor", otherDone, cappedDone)
	}
}

func TestCPUCapZeroMeansUnlimited(t *testing.T) {
	eng, k := newTestKernel(t, 3)
	sp := k.NewSpace("app", false)
	running, maxRunning := 0, 0
	for i := 0; i < 3; i++ {
		sp.Spawn("w", 0, func(th *KThread) {
			running++
			if running > maxRunning {
				maxRunning = running
			}
			th.Exec(5 * sim.Millisecond)
			running--
		})
	}
	eng.Run()
	if maxRunning != 3 {
		t.Fatalf("max concurrent = %d, want 3 (uncapped)", maxRunning)
	}
}

func TestCapDoesNotStrandWorkAtExit(t *testing.T) {
	// When a capped space's thread exits, the freed slot must go to the
	// next queued thread of that space.
	eng, k := newTestKernel(t, 2)
	sp := k.NewSpace("app", false)
	sp.CPUCap = 1
	done := 0
	for i := 0; i < 5; i++ {
		sp.Spawn("w", 0, func(th *KThread) {
			th.Exec(sim.Millisecond)
			done++
		})
	}
	eng.Run()
	if done != 5 {
		t.Fatalf("done = %d, want 5", done)
	}
}
