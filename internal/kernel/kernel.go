// Package kernel implements the baseline operating system of the paper: a
// Topaz-like kernel with kernel threads, scheduled obliviously to user-level
// state. Kernel threads from every address space share one global priority
// ready queue and are time-sliced across the machine's processors; woken
// threads are placed without regard to which address space's work is
// displaced. This is exactly the environment the paper's §2.2 critique — and
// the "Topaz threads" and "original FastThreads" experiment rows — run in.
//
// The same machinery doubles as the Ultrix-process baseline: an address
// space created with Heavy set charges process-scale costs (address-space
// switch, process fork) for the same operations.
//
// The scheduler-activation kernel (the paper's contribution) is a separate
// kernel in package core; it deliberately does not share this scheduler,
// because replacing it is the point of the paper.
package kernel

import (
	"fmt"

	"schedact/internal/machine"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// Config parameterizes a kernel instance.
type Config struct {
	CPUs  int
	Costs *machine.Costs // nil means machine.DefaultCosts()
	Trace *trace.Log     // nil disables tracing
}

// Stats counts kernel activity over a run.
type Stats struct {
	Forks       uint64
	Exits       uint64
	Blocks      uint64
	Wakeups     uint64
	Dispatches  uint64
	Preemptions uint64 // involuntary (quantum or priority)
	IORequests  uint64
}

// Kernel is a simulated Topaz-like operating system instance.
type Kernel struct {
	Eng   sim.Engine
	M     *machine.Machine
	C     *machine.Costs
	Trace *trace.Log
	Stats Stats

	cpus    []*cpuState
	readyQ  [][]*KThread // indexed by priority; FIFO within a priority
	readyN  int          // total ready threads
	rrNext  int          // round-robin wake-placement pointer (native Topaz behaviour)
	spaces  []*Space
	nextTID int

	// QuantumJitter, when non-nil, returns a (possibly negative) adjustment
	// added to each quantum as its timer is armed — the fault-injection hook
	// for jittered timer ticks. Consulted once per arming, in arming order.
	QuantumJitter func() sim.Duration
}

// cpuState is the kernel's per-processor dispatcher state.
type cpuState struct {
	cpu         *machine.CPU
	cur         *KThread   // thread dispatched here, nil when idle
	dispatching bool       // a dispatcher pass is in flight
	quantumEv   sim.Handle // end-of-quantum timer for cur
}

// NumPriorities bounds thread priority values: 0 (lowest) through
// NumPriorities-1.
const NumPriorities = 8

// New creates a kernel on a fresh machine.
func New(eng sim.Engine, cfg Config) *Kernel {
	costs := cfg.Costs
	if costs == nil {
		costs = machine.DefaultCosts()
	}
	m := machine.New(eng, cfg.CPUs, costs)
	m.Trace = cfg.Trace
	k := &Kernel{
		Eng:    eng,
		M:      m,
		C:      costs,
		Trace:  cfg.Trace,
		readyQ: make([][]*KThread, NumPriorities),
	}
	for _, cpu := range m.CPUs() {
		k.cpus = append(k.cpus, &cpuState{cpu: cpu})
	}
	reg := eng.Metrics()
	reg.Func("kernel.forks", func() uint64 { return k.Stats.Forks })
	reg.Func("kernel.exits", func() uint64 { return k.Stats.Exits })
	reg.Func("kernel.blocks", func() uint64 { return k.Stats.Blocks })
	reg.Func("kernel.wakeups", func() uint64 { return k.Stats.Wakeups })
	reg.Func("kernel.dispatches", func() uint64 { return k.Stats.Dispatches })
	reg.Func("kernel.preemptions", func() uint64 { return k.Stats.Preemptions })
	reg.Func("kernel.io_requests", func() uint64 { return k.Stats.IORequests })
	return k
}

// NewSpace creates an address space. Heavy spaces charge Ultrix-process
// costs for kernel operations.
func (k *Kernel) NewSpace(name string, heavy bool) *Space {
	sp := &Space{k: k, ID: len(k.spaces), Name: name, Heavy: heavy}
	k.spaces = append(k.spaces, sp)
	return sp
}

// Spaces returns all address spaces in creation order.
func (k *Kernel) Spaces() []*Space { return k.spaces }

// --- ready queue ---

func (k *Kernel) enqueue(t *KThread) {
	if t.state != ktReady {
		panic(fmt.Sprintf("kernel: enqueue %s in state %v", t.name, t.state))
	}
	k.readyQ[t.prio] = append(k.readyQ[t.prio], t)
	k.readyN++
}

// runningOf counts the space's threads currently dispatched on processors.
func (k *Kernel) runningOf(sp *Space) int {
	n := 0
	for _, cs := range k.cpus {
		if cs.cur != nil && cs.cur.sp == sp {
			n++
		}
	}
	return n
}

// dispatchable reports whether t may be placed on a processor right now,
// honouring its space's CPU cap. exempt names a space that is about to give
// up a processor (quantum/yield decisions), whose cap count is reduced by
// one.
func (k *Kernel) dispatchable(t *KThread, exempt *Space) bool {
	sp := t.sp
	if sp.CPUCap == 0 {
		return true
	}
	running := k.runningOf(sp)
	if sp == exempt {
		running--
	}
	return running < sp.CPUCap
}

// dequeue removes and returns the highest-priority dispatchable ready
// thread, or nil.
func (k *Kernel) dequeue() *KThread {
	for p := NumPriorities - 1; p >= 0; p-- {
		q := k.readyQ[p]
		for i, t := range q {
			if !k.dispatchable(t, nil) {
				continue
			}
			copy(q[i:], q[i+1:])
			k.readyQ[p] = q[:len(q)-1]
			k.readyN--
			return t
		}
	}
	return nil
}

// maxReadyPrio reports the highest priority among ready threads that could
// run if the exempt space released one processor, or -1.
func (k *Kernel) maxReadyPrio(exempt *Space) int {
	for p := NumPriorities - 1; p >= 0; p-- {
		for _, t := range k.readyQ[p] {
			if k.dispatchable(t, exempt) {
				return p
			}
		}
	}
	return -1
}

// ReadyCount reports how many threads are ready but not running.
func (k *Kernel) ReadyCount() int { return k.readyN }

// --- dispatcher ---

// kick starts a dispatcher pass on cs if the CPU is idle, one is not already
// in flight, and there is work. The pass costs the dispatch latency of the
// incoming thread's space.
func (k *Kernel) kick(cs *cpuState) {
	if cs.cur != nil || cs.dispatching || k.readyN == 0 {
		return
	}
	cs.dispatching = true
	// The dispatch cost depends on what is being switched in; since the
	// queue may change during the pass, charge the cost of the current
	// front candidate (process switches are costlier than thread switches).
	cost := k.C.KTDispatch
	if front := k.peekFront(); front != nil && front.sp.Heavy {
		cost = k.C.ProcDispatch
	}
	k.Eng.After(cost, "kdispatch", func() {
		cs.dispatching = false
		if cs.cur != nil {
			return // someone was force-dispatched meanwhile
		}
		t := k.dequeue()
		if t == nil {
			return // work evaporated; CPU idles
		}
		k.place(cs, t)
	})
}

func (k *Kernel) peekFront() *KThread {
	for p := NumPriorities - 1; p >= 0; p-- {
		for _, t := range k.readyQ[p] {
			if k.dispatchable(t, nil) {
				return t
			}
		}
	}
	return nil
}

// place puts ready thread t on the (idle) CPU and arms its quantum.
func (k *Kernel) place(cs *cpuState, t *KThread) {
	t.state = ktRunning
	cs.cur = t
	t.cs = cs
	k.Stats.Dispatches++
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(cs.cpu.ID()), Kind: trace.KindDispatch, Name: t.name})
	cs.cpu.Dispatch(t.ctx)
	k.armQuantum(cs)
}

func (k *Kernel) armQuantum(cs *cpuState) {
	t := cs.cur
	q := k.C.Quantum
	if k.QuantumJitter != nil {
		q += k.QuantumJitter()
		if q < 0 {
			q = 0
		}
	}
	cs.quantumEv = k.Eng.After(q, "quantum", func() {
		if cs.cur != t {
			return
		}
		// Round-robin: yield the CPU only if an equal-or-higher priority
		// thread is waiting.
		if k.maxReadyPrio(t.sp) >= t.prio {
			k.preemptCPU(cs)
		} else {
			k.armQuantum(cs)
		}
	})
}

// preemptCPU involuntarily removes the current thread from cs, returns it to
// the ready queue, and starts a dispatcher pass.
func (k *Kernel) preemptCPU(cs *cpuState) {
	t := cs.cur
	if t == nil {
		panic("kernel: preemptCPU on idle CPU")
	}
	k.Stats.Preemptions++
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(cs.cpu.ID()), Kind: trace.KindPreempt, Name: t.name})
	k.disarmQuantum(cs)
	cs.cpu.Preempt()
	cs.cur = nil
	t.cs = nil
	t.state = ktReady
	k.enqueue(t)
	k.kick(cs)
}

func (k *Kernel) disarmQuantum(cs *cpuState) {
	cs.quantumEv.Cancel() // inert if already fired
}

// threadReady makes t runnable and places it the way native Topaz does: the
// wake is processed on an arbitrary processor (modelled as a round-robin
// pointer), and if the woken thread outranks that processor's current
// thread it preempts it — even if some other processor is idle. This
// placement obliviousness is what lets daemon wake-ups disturb running
// virtual processors (paper §5.3, Figure 1 discussion).
func (k *Kernel) threadReady(t *KThread) {
	if t.blockPending {
		// The thread is mid-way into a blocking call (paying the kernel
		// entry, possibly preempted while doing so); latch the wakeup
		// instead of losing it — commitBlock absorbs it.
		t.wakePending = true
		return
	}
	if t.state != ktBlocked && t.state != ktCreated {
		panic(fmt.Sprintf("kernel: threadReady %s in state %v", t.name, t.state))
	}
	t.state = ktReady
	k.Stats.Wakeups++
	target := k.cpus[k.rrNext%len(k.cpus)]
	k.rrNext++
	if target.cur == nil {
		k.enqueue(t)
		k.kick(target)
		return
	}
	if t.prio > target.cur.prio {
		k.enqueue(t)
		k.preemptCPU(target) // dispatcher will pick t (highest priority)
		return
	}
	k.enqueue(t)
	// Same or lower priority: take any idle CPU.
	for _, cs := range k.cpus {
		if cs.cur == nil {
			k.kick(cs)
			return
		}
	}
}

// CPUStates is exposed for tests and instrumentation.
func (k *Kernel) cpuOf(t *KThread) *cpuState { return t.cs }

// ChaosPreempt forcibly preempts whatever thread is running on CPU id,
// returning it to the ready queue mid-whatever-it-was-doing — the
// fault-injection entry for adverse-timing preemption storms. It reports
// false (and does nothing) when the CPU is idle. The displaced thread
// rejoins the ready queue and a dispatcher pass starts, exactly as for an
// end-of-quantum preemption.
func (k *Kernel) ChaosPreempt(id machine.CPUID) bool {
	if int(id) < 0 || int(id) >= len(k.cpus) {
		return false
	}
	cs := k.cpus[int(id)]
	if cs.cur == nil {
		return false
	}
	k.preemptCPU(cs)
	return true
}

// Idle reports how many CPUs are idle right now.
func (k *Kernel) Idle() int {
	n := 0
	for _, cs := range k.cpus {
		if cs.cur == nil && !cs.dispatching {
			n++
		}
	}
	return n
}

// RunningOn reports the thread currently on CPU id, or nil.
func (k *Kernel) RunningOn(id machine.CPUID) *KThread {
	return k.cpus[int(id)].cur
}
