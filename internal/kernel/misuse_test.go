package kernel

import (
	"testing"

	"schedact/internal/sim"
)

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestKernelUnlockByNonHolderPanics(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	m := k.NewMutex()
	sp.Spawn("a", 0, func(th *KThread) {
		expectPanic(t, "Unlock by non-holder", func() { m.Unlock(th) })
	})
	eng.Run()
}

func TestBadPriorityPanics(t *testing.T) {
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	_ = eng
	expectPanic(t, "out-of-range priority", func() {
		sp.Spawn("x", NumPriorities, func(*KThread) {})
	})
	expectPanic(t, "negative priority", func() {
		sp.Spawn("x", -1, func(*KThread) {})
	})
}

func TestMutexHandoffIsFIFO(t *testing.T) {
	// Contended kernel mutexes hand off in arrival order.
	eng, k := newTestKernel(t, 1)
	sp := k.NewSpace("app", false)
	m := k.NewMutex()
	var order []string
	sp.Spawn("holder", 0, func(th *KThread) {
		m.Lock(th)
		th.SleepFor(10 * sim.Millisecond) // let the others queue up
		m.Unlock(th)
	})
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		sp.Spawn(name, 0, func(th *KThread) {
			// Stagger arrivals deterministically.
			th.Exec(sim.Duration(len(order)+1) * 100 * sim.Microsecond)
			m.Lock(th)
			order = append(order, name)
			m.Unlock(th)
		})
	}
	eng.Run()
	if len(order) != 3 {
		t.Fatalf("order = %v, want 3 acquisitions", order)
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	sp := k.NewSpace("app", false)
	cond := k.NewCond()
	woke := 0
	for i := 0; i < 4; i++ {
		sp.Spawn("w", 0, func(th *KThread) {
			cond.Wait(th, nil)
			woke++
		})
	}
	sp.Spawn("b", 0, func(th *KThread) {
		th.SleepFor(5 * sim.Millisecond)
		cond.Broadcast(th)
	})
	eng.Run()
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
	if cond.Waiters() != 0 {
		t.Fatalf("waiters = %d, want 0", cond.Waiters())
	}
}

func TestDaemonStylePeriodicThread(t *testing.T) {
	eng, k := newTestKernel(t, 2)
	sp := k.NewSpace("daemon", false)
	wakes := 0
	sp.Spawn("d", 5, func(th *KThread) {
		for i := 0; i < 10; i++ {
			th.SleepFor(10 * sim.Millisecond)
			th.Exec(sim.Millisecond)
			wakes++
		}
	})
	eng.Run()
	if wakes != 10 {
		t.Fatalf("wakes = %d, want 10", wakes)
	}
	// Total: ~10×(10+1)ms plus scheduling overheads.
	if eng.Now() < sim.Time(110*sim.Millisecond) || eng.Now() > sim.Time(130*sim.Millisecond) {
		t.Fatalf("finished at %v, want ~110-120ms", eng.Now())
	}
}
