package kernel

import (
	"fmt"

	"schedact/internal/machine"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// ktState is a kernel thread's scheduling state.
type ktState int

const (
	ktCreated ktState = iota
	ktReady
	ktRunning
	ktBlocked
	ktDone
)

func (s ktState) String() string {
	switch s {
	case ktCreated:
		return "created"
	case ktReady:
		return "ready"
	case ktRunning:
		return "running"
	case ktBlocked:
		return "blocked"
	case ktDone:
		return "done"
	}
	return "invalid"
}

// Space is an address space: the unit the kernel charges costs to and (in
// the scheduler-activation kernel) allocates processors to. In this native
// kernel it exists for accounting and for the Heavy (Ultrix process) cost
// profile.
type Space struct {
	k     *Kernel
	ID    int
	Name  string
	Heavy bool // charge Ultrix-process costs for kernel operations

	// CPUCap, when nonzero, bounds how many of the space's threads run
	// simultaneously — the processor-set-style restriction used to run an
	// application "with P processors" on the 6-processor machine for the
	// Figure 1 sweep. Zero means unlimited.
	CPUCap int

	Threads uint64 // threads ever created in this space
}

// Kernel returns the owning kernel.
func (sp *Space) Kernel() *Kernel { return sp.k }

// KThread is a kernel thread (or, in a Heavy space, an Ultrix-like process:
// one sequential execution stream scheduled by the kernel).
type KThread struct {
	k     *Kernel
	sp    *Space
	id    int
	name  string
	prio  int
	ctx   *machine.Context
	state ktState
	cs    *cpuState // processor we are dispatched on, nil otherwise

	exited  bool
	joiners []*KThread

	// Sleep/wakeup race protocol: a thread that has committed to blocking
	// but is still paying the kernel-entry cost sets blockPending; a wakeup
	// arriving in that window sets wakePending instead of making the thread
	// ready, and commitBlock absorbs it.
	blockPending bool
	wakePending  bool
}

// prepareBlock marks the thread as committing to block, so wakeups during
// the kernel-entry charge are latched rather than lost.
func (t *KThread) prepareBlock() { t.blockPending = true }

// commitBlock completes a prepared block: if a wakeup raced in, it is
// absorbed and the thread continues; otherwise the thread blocks.
func (t *KThread) commitBlock(reason string) {
	t.blockPending = false
	if t.wakePending {
		t.wakePending = false
		return
	}
	t.block(reason)
}

// Spawn creates a thread in the space and makes it ready without charging
// fork costs — used to set up the initial thread(s) of an experiment, the
// analogue of a program's main thread starting.
func (sp *Space) Spawn(name string, prio int, fn func(*KThread)) *KThread {
	t := sp.newThread(name, prio, fn)
	sp.k.threadReady(t)
	return t
}

func (sp *Space) newThread(name string, prio int, fn func(*KThread)) *KThread {
	if prio < 0 || prio >= NumPriorities {
		panic(fmt.Sprintf("kernel: priority %d out of range", prio))
	}
	k := sp.k
	k.nextTID++
	sp.Threads++
	t := &KThread{k: k, sp: sp, id: k.nextTID, name: name, prio: prio, state: ktCreated}
	t.ctx = k.M.NewContext(name, func(*machine.Context) {
		fn(t)
		t.exit()
	})
	t.ctx.Owner = t
	return t
}

// Name reports the thread's debug name.
func (t *KThread) Name() string { return t.name }

// Space reports the owning address space.
func (t *KThread) Space() *Space { return t.sp }

// Context exposes the machine execution context (virtual processor) of this
// thread, which user-level thread packages charge CPU through.
func (t *KThread) Context() *machine.Context { return t.ctx }

// State reports the scheduling state, for tests and instrumentation.
func (t *KThread) State() string { return t.state.String() }

// Priority reports the kernel scheduling priority.
func (t *KThread) Priority() int { return t.prio }

// Exec consumes d of CPU as user-mode computation.
func (t *KThread) Exec(d sim.Duration) { t.ctx.Exec(d) }

// Fork creates a new kernel thread running fn at the caller's priority,
// charging the caller the kernel fork path: a trap plus control block and
// stack allocation (Table 1's Null Fork measures this path plus the child's
// dispatch, execution, and exit).
func (t *KThread) Fork(name string, fn func(*KThread)) *KThread {
	k := t.k
	k.Stats.Forks++
	t.ctx.Exec(k.C.Trap + k.forkWork(t.sp))
	child := t.sp.newThread(name, t.prio, fn)
	k.threadReady(child)
	return child
}

// exit terminates the calling thread: charge the exit path, wake joiners,
// free the processor.
func (t *KThread) exit() {
	k := t.k
	k.Stats.Exits++
	t.ctx.Exec(k.C.Trap + k.exitWork(t.sp))
	t.exited = true
	for _, j := range t.joiners {
		k.threadReady(j)
	}
	t.joiners = nil
	t.state = ktDone
	cs := t.cs
	k.disarmQuantum(cs)
	cs.cpu.Release(t.ctx)
	cs.cur = nil
	t.cs = nil
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(cs.cpu.ID()), Kind: trace.KindExit, Name: t.name})
	k.kick(cs)
}

// Join blocks the caller until other exits. Charges a trap plus block work
// when it must wait.
func (t *KThread) Join(other *KThread) {
	k := t.k
	if other.exited {
		t.ctx.Exec(k.C.Trap) // syscall that returns immediately
		return
	}
	other.joiners = append(other.joiners, t)
	t.prepareBlock()
	t.ctx.Exec(k.C.Trap + k.blockWork(t.sp))
	t.commitBlock("join:" + other.name)
}

// Yield gives up the processor to an equal-or-higher-priority ready thread,
// if any. It charges a trap; if the kernel switches, the switched-in thread
// pays the dispatch latency.
func (t *KThread) Yield() {
	k := t.k
	t.ctx.Exec(k.C.Trap)
	if k.maxReadyPrio(t.sp) < t.prio {
		return
	}
	cs := t.cs
	k.disarmQuantum(cs)
	cs.cpu.Preempt() // voluntary, but mechanically identical
	cs.cur = nil
	t.cs = nil
	t.state = ktReady
	k.enqueue(t)
	k.kick(cs)
	t.ctx.Deschedule("yield")
	t.afterResume()
}

// SleepFor blocks the thread for d of virtual time (a timer syscall).
func (t *KThread) SleepFor(d sim.Duration) {
	k := t.k
	t.ctx.Exec(k.C.Trap + k.blockWork(t.sp))
	k.Eng.AfterNamed(d, "ktimer", t.name, func() { k.threadReady(t) })
	t.block("sleep")
	// Timer interrupt processing and return to user mode.
	t.ctx.Exec(k.C.Trap)
}

// BlockIO issues a disk request and blocks until it completes: the paper's
// "thread traps to the kernel to block"; the processor is lost to the
// address space for the duration (the defining failure mode of user-level
// threads on kernel threads, §2.2).
func (t *KThread) BlockIO() {
	k := t.k
	k.Stats.IORequests++
	t.ctx.Exec(k.C.Trap + k.blockWork(t.sp))
	k.M.Disk.Request(func() { k.threadReady(t) })
	t.block("io")
	// I/O-completion interrupt processing and return to user mode.
	t.ctx.Exec(k.C.Trap)
}

// block parks the calling coroutine with the thread in the blocked state.
// The kernel work for the specific blocking operation must already have
// been charged. On return the thread is running again (on some CPU).
func (t *KThread) block(reason string) {
	k := t.k
	k.Stats.Blocks++
	cs := t.cs
	if cs == nil || cs.cur != t {
		panic(fmt.Sprintf("kernel: block %s not running", t.name))
	}
	k.disarmQuantum(cs)
	cs.cpu.Release(t.ctx)
	cs.cur = nil
	t.cs = nil
	t.state = ktBlocked
	k.Trace.Emit(trace.Record{T: k.Eng.Now(), CPU: int32(cs.cpu.ID()), Kind: trace.KindKTBlock, Name: t.name, Aux: reason})
	k.kick(cs)
	t.ctx.Deschedule(reason)
	t.afterResume()
}

// afterResume runs in the thread's coroutine immediately after it is
// re-dispatched following a block or yield.
func (t *KThread) afterResume() {
	// State bookkeeping was done by place(); nothing further. Kept as a
	// seam for instrumentation.
}

func (k *Kernel) forkWork(sp *Space) sim.Duration {
	if sp.Heavy {
		return k.C.ProcForkWork
	}
	return k.C.KTForkWork
}

func (k *Kernel) exitWork(sp *Space) sim.Duration {
	if sp.Heavy {
		return k.C.ProcExitWork
	}
	return k.C.KTExitWork
}

func (k *Kernel) blockWork(sp *Space) sim.Duration {
	if sp.Heavy {
		return k.C.ProcBlockWork
	}
	return k.C.KTBlockWork
}

func (k *Kernel) signalWork(sp *Space) sim.Duration {
	if sp.Heavy {
		return k.C.ProcSignalWork
	}
	return k.C.KTSignalWork
}
