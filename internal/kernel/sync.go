package kernel

import "fmt"

// Mutex is a Topaz-style application lock. Uncontended acquire and release
// happen at user level with an atomic test-and-set; a thread that finds the
// lock busy traps and blocks in the kernel, and is rescheduled only when the
// lock is released — the behaviour behind the kernel-thread curve flattening
// in Figure 1 ("Topaz lock overhead is much greater in the presence of
// contention").
type Mutex struct {
	k       *Kernel
	holder  *KThread
	waiters []*KThread

	Contended   uint64 // acquires that had to block
	Uncontended uint64
}

// NewMutex creates a kernel-integrated lock.
func (k *Kernel) NewMutex() *Mutex { return &Mutex{k: k} }

// Lock acquires m on behalf of t.
func (m *Mutex) Lock(t *KThread) {
	k := m.k
	t.ctx.Exec(k.C.TAS)
	if m.holder == nil {
		m.holder = t
		m.Uncontended++
		return
	}
	// Busy: trap and block in the kernel. Register as a waiter before
	// paying the kernel entry, so an Unlock racing with the entry hands us
	// the lock via the wake-pending protocol instead of losing the wakeup.
	m.Contended++
	m.waiters = append(m.waiters, t)
	t.prepareBlock()
	t.ctx.Exec(k.C.Trap + k.blockWork(t.sp))
	t.commitBlock("mutex")
	// We were woken by Unlock, which transferred ownership to us.
	if m.holder != t {
		panic("kernel: mutex wake without ownership")
	}
}

// Unlock releases m. If threads are blocked, ownership transfers to the
// first waiter and the kernel wakes it (a trap plus wake work).
func (m *Mutex) Unlock(t *KThread) {
	k := m.k
	if m.holder != t {
		panic(fmt.Sprintf("kernel: unlock of %p by non-holder %s", m, t.name))
	}
	t.ctx.Exec(k.C.TAS)
	if len(m.waiters) == 0 {
		m.holder = nil
		return
	}
	t.ctx.Exec(k.C.Trap + k.signalWork(t.sp))
	next := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.holder = next
	k.threadReady(next)
}

// Holder reports the current owner, or nil.
func (m *Mutex) Holder() *KThread { return m.holder }

// Cond is a kernel condition variable (Topaz SRC-monitor style).
type Cond struct {
	k       *Kernel
	waiters []*KThread
}

// NewCond creates a kernel condition variable.
func (k *Kernel) NewCond() *Cond { return &Cond{k: k} }

// Wait atomically releases m and blocks t until signalled, then reacquires
// m before returning.
func (c *Cond) Wait(t *KThread, m *Mutex) {
	k := c.k
	c.waiters = append(c.waiters, t)
	t.prepareBlock()
	t.ctx.Exec(k.C.Trap + k.blockWork(t.sp))
	if m != nil {
		m.Unlock(t)
	}
	t.commitBlock("cond-wait")
	if m != nil {
		m.Lock(t)
	}
}

// Signal wakes the longest-waiting thread, if any.
func (c *Cond) Signal(t *KThread) {
	k := c.k
	if len(c.waiters) == 0 {
		t.ctx.Exec(k.C.TAS) // checking an empty queue is cheap
		return
	}
	t.ctx.Exec(k.C.Trap + k.signalWork(t.sp))
	if len(c.waiters) == 0 {
		return // another signaller drained the queue while we trapped in
	}
	next := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	k.threadReady(next)
}

// Broadcast wakes every waiting thread.
func (c *Cond) Broadcast(t *KThread) {
	k := c.k
	if len(c.waiters) == 0 {
		t.ctx.Exec(k.C.TAS)
		return
	}
	t.ctx.Exec(k.C.Trap + k.signalWork(t.sp))
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		k.threadReady(w)
	}
}

// Waiters reports how many threads are blocked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }
