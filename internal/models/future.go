package models

import "schedact/internal/uthread"

// Future is a Multilisp-style future (Halstead 85): a computation that runs
// in its own user-level thread while the creator continues; Force blocks
// until the value is ready. Built entirely over the uthread API — forks and
// synchronization stay at user level, so futures inherit the Table 4
// operation costs with no kernel involvement.
type Future struct {
	mu      *uthread.Mutex
	ready   *uthread.Cond
	done    bool
	value   any
	touched int
}

// NewFuture spawns fn in a fresh thread forked from t and returns the
// future for its result.
func NewFuture(t *uthread.Thread, name string, fn func(ft *uthread.Thread) any) *Future {
	s := t.Sched()
	f := &Future{mu: s.NewMutex(), ready: s.NewCond()}
	t.Fork(name, func(ft *uthread.Thread) {
		v := fn(ft)
		f.mu.Lock(ft)
		f.value = v
		f.done = true
		f.mu.Unlock(ft)
		f.ready.Broadcast(ft)
	})
	return f
}

// Force blocks t until the future resolves and returns its value. Multiple
// threads may force the same future.
func (f *Future) Force(t *uthread.Thread) any {
	f.mu.Lock(t)
	f.touched++
	for !f.done {
		f.ready.Wait(t, f.mu)
	}
	v := f.value
	f.mu.Unlock(t)
	return v
}

// Ready reports whether the future has resolved, without blocking.
func (f *Future) Ready() bool { return f.done }
