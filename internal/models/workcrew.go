// Package models implements alternative concurrency models on top of the
// user-level thread package, demonstrating the paper's flexibility claim
// (§1.2): "It is simple to change the policy for scheduling an
// application's threads, or even to provide a different concurrency model
// such as workers [Moeller-Nielsen & Staunstrup 87] ... or Futures
// [Halstead 85]". Because the kernel interface deals only in scheduler
// activations, nothing in the kernel changes to support these: "the
// kernel's behavior is exactly the same in every case".
package models

import (
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

// Task is one unit of crew work. It may enqueue more tasks.
type Task func(w *Worker)

// Crew is a WorkCrews-style worker pool (Vandevoorde & Roberts 88): a fixed
// set of worker threads serving a shared task queue, the model the paper
// notes was built over Topaz threads — here built over any uthread binding.
type Crew struct {
	s        *uthread.Sched
	mu       *uthread.Mutex
	nonEmpty *uthread.Cond
	done     *uthread.Cond
	queue    []Task
	active   int
	closed   bool
	workers  int

	Executed uint64
}

// Worker is the per-worker handle passed to tasks.
type Worker struct {
	crew *Crew
	T    *uthread.Thread
}

// NewCrew starts n worker threads on s. Call s.Start (and run the engine)
// to begin execution.
func NewCrew(s *uthread.Sched, n int) *Crew {
	c := &Crew{s: s, mu: s.NewMutex(), workers: n}
	c.nonEmpty = s.NewCond()
	c.done = s.NewCond()
	for i := 0; i < n; i++ {
		s.Spawn("crew-worker", func(t *uthread.Thread) {
			w := &Worker{crew: c, T: t}
			c.workerLoop(w)
		})
	}
	return c
}

func (c *Crew) workerLoop(w *Worker) {
	t := w.T
	for {
		c.mu.Lock(t)
		for len(c.queue) == 0 && !c.closed {
			c.nonEmpty.Wait(t, c.mu)
		}
		if len(c.queue) == 0 && c.closed {
			c.mu.Unlock(t)
			return
		}
		task := c.queue[len(c.queue)-1] // LIFO: help-first, like fork/join crews
		c.queue = c.queue[:len(c.queue)-1]
		c.active++
		c.mu.Unlock(t)

		task(w)

		c.mu.Lock(t)
		c.active--
		c.Executed++
		if c.active == 0 && len(c.queue) == 0 {
			c.done.Broadcast(t)
		}
		c.mu.Unlock(t)
	}
}

// Submit adds a task from outside the crew (before or between runs).
func (c *Crew) Submit(task Task) {
	c.queue = append(c.queue, task)
}

// Add adds a task from within a running task.
func (w *Worker) Add(task Task) {
	c := w.crew
	c.mu.Lock(w.T)
	c.queue = append(c.queue, task)
	c.mu.Unlock(w.T)
	c.nonEmpty.Signal(w.T)
}

// Drain blocks the calling thread until the queue is empty and no task is
// running.
func (c *Crew) Drain(t *uthread.Thread) {
	c.mu.Lock(t)
	for c.active > 0 || len(c.queue) > 0 {
		c.done.Wait(t, c.mu)
	}
	c.mu.Unlock(t)
}

// Close stops the workers once the queue drains.
func (c *Crew) Close(t *uthread.Thread) {
	c.mu.Lock(t)
	c.closed = true
	c.mu.Unlock(t)
	c.nonEmpty.Broadcast(t)
}

// Exec charges computation to the worker's thread (convenience).
func (w *Worker) Exec(d sim.Duration) { w.T.Exec(d) }
