package models

import (
	"testing"

	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

// Both models must run unchanged on either virtual-processor binding — the
// kernel has no knowledge of the concurrency model (§3.1).
func onBoth(t *testing.T, cpus int, f func(t *testing.T, eng sim.Engine, s *uthread.Sched)) {
	t.Run("kernel-threads", func(t *testing.T) {
		eng := sim.NewEngine()
		t.Cleanup(eng.Close)
		k := kernel.New(eng, kernel.Config{CPUs: cpus})
		s := uthread.OnKernelThreads(k, k.NewSpace("app", false), cpus, uthread.Options{})
		f(t, eng, s)
	})
	t.Run("activations", func(t *testing.T) {
		eng := sim.NewEngine()
		t.Cleanup(eng.Close)
		k := core.New(eng, core.Config{CPUs: cpus})
		s := uthread.OnActivations(k, "app", 0, cpus, uthread.Options{})
		f(t, eng, s)
	})
}

func TestCrewExecutesAllTasks(t *testing.T) {
	onBoth(t, 3, func(t *testing.T, eng sim.Engine, s *uthread.Sched) {
		crew := NewCrew(s, 3)
		ran := 0
		for i := 0; i < 20; i++ {
			crew.Submit(func(w *Worker) {
				w.Exec(200 * sim.Microsecond)
				ran++
			})
		}
		s.Spawn("driver", func(th *uthread.Thread) {
			crew.Drain(th)
			crew.Close(th)
		})
		s.Start()
		eng.RunUntil(sim.Time(10 * sim.Second))
		if ran != 20 {
			t.Fatalf("ran = %d, want 20", ran)
		}
		if crew.Executed != 20 {
			t.Fatalf("Executed = %d, want 20", crew.Executed)
		}
	})
}

func TestCrewTasksSpawnSubtasks(t *testing.T) {
	onBoth(t, 2, func(t *testing.T, eng sim.Engine, s *uthread.Sched) {
		crew := NewCrew(s, 2)
		leaves := 0
		// A binary fan-out: each task at depth < 3 adds two children.
		var mk func(depth int) Task
		mk = func(depth int) Task {
			return func(w *Worker) {
				w.Exec(100 * sim.Microsecond)
				if depth < 3 {
					w.Add(mk(depth + 1))
					w.Add(mk(depth + 1))
				} else {
					leaves++
				}
			}
		}
		crew.Submit(mk(0))
		s.Spawn("driver", func(th *uthread.Thread) {
			crew.Drain(th)
			crew.Close(th)
		})
		s.Start()
		eng.RunUntil(sim.Time(10 * sim.Second))
		if leaves != 8 {
			t.Fatalf("leaves = %d, want 8", leaves)
		}
	})
}

func TestCrewParallelismUsesProcessors(t *testing.T) {
	// 8 tasks of 10ms on a 4-worker crew should take ~20ms, not ~80ms.
	eng := sim.NewEngine()
	defer eng.Close()
	k := core.New(eng, core.Config{CPUs: 4})
	s := uthread.OnActivations(k, "app", 0, 4, uthread.Options{})
	crew := NewCrew(s, 4)
	for i := 0; i < 8; i++ {
		crew.Submit(func(w *Worker) { w.Exec(sim.Ms(10)) })
	}
	var done sim.Time
	s.Spawn("driver", func(th *uthread.Thread) {
		crew.Drain(th)
		done = th.Now()
		crew.Close(th)
	})
	s.Start()
	eng.RunUntil(sim.Time(10 * sim.Second))
	if done == 0 || done > sim.Time(40*sim.Millisecond) {
		t.Fatalf("8×10ms on 4 workers finished at %v, want ~20-30ms", done)
	}
}

func TestFutureForcedAfterResolution(t *testing.T) {
	onBoth(t, 2, func(t *testing.T, eng sim.Engine, s *uthread.Sched) {
		var got any
		s.Spawn("main", func(th *uthread.Thread) {
			f := NewFuture(th, "calc", func(ft *uthread.Thread) any {
				ft.Exec(sim.Ms(1))
				return 42
			})
			th.Exec(sim.Ms(5)) // future resolves meanwhile
			if !f.Ready() {
				t.Error("future should be ready after 5ms")
			}
			got = f.Force(th)
		})
		s.Start()
		eng.RunUntil(sim.Time(10 * sim.Second))
		if got != 42 {
			t.Fatalf("Force = %v, want 42", got)
		}
	})
}

func TestFutureForcedBeforeResolutionBlocks(t *testing.T) {
	onBoth(t, 2, func(t *testing.T, eng sim.Engine, s *uthread.Sched) {
		var got any
		var forcedAt sim.Time
		s.Spawn("main", func(th *uthread.Thread) {
			f := NewFuture(th, "slow", func(ft *uthread.Thread) any {
				ft.Exec(sim.Ms(20))
				return "late"
			})
			got = f.Force(th) // must block ~20ms
			forcedAt = th.Now()
		})
		s.Start()
		eng.RunUntil(sim.Time(10 * sim.Second))
		if got != "late" {
			t.Fatalf("Force = %v, want late", got)
		}
		if forcedAt < sim.Time(20*sim.Millisecond) {
			t.Fatalf("Force returned at %v, before the computation could finish", forcedAt)
		}
	})
}

func TestFutureChaining(t *testing.T) {
	onBoth(t, 3, func(t *testing.T, eng sim.Engine, s *uthread.Sched) {
		total := 0
		s.Spawn("main", func(th *uthread.Thread) {
			// A small dataflow: c depends on a and b.
			a := NewFuture(th, "a", func(ft *uthread.Thread) any { ft.Exec(sim.Ms(2)); return 10 })
			b := NewFuture(th, "b", func(ft *uthread.Thread) any { ft.Exec(sim.Ms(3)); return 32 })
			c := NewFuture(th, "c", func(ft *uthread.Thread) any {
				return a.Force(ft).(int) + b.Force(ft).(int)
			})
			total = c.Force(th).(int)
		})
		s.Start()
		eng.RunUntil(sim.Time(10 * sim.Second))
		if total != 42 {
			t.Fatalf("total = %d, want 42", total)
		}
	})
}

func TestManyFuturesDeterministic(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine()
		defer eng.Close()
		k := core.New(eng, core.Config{CPUs: 4})
		s := uthread.OnActivations(k, "app", 0, 4, uthread.Options{})
		var end sim.Time
		s.Spawn("main", func(th *uthread.Thread) {
			var fs []*Future
			for i := 0; i < 30; i++ {
				d := sim.Duration(i%5+1) * sim.Millisecond
				fs = append(fs, NewFuture(th, "f", func(ft *uthread.Thread) any {
					ft.Exec(d)
					return int(d)
				}))
			}
			sum := 0
			for _, f := range fs {
				sum += f.Force(th).(int)
			}
			end = th.Now()
		})
		s.Start()
		eng.RunUntil(sim.Time(10 * sim.Second))
		return end
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Fatalf("non-deterministic or incomplete: %v vs %v", a, b)
	}
}
