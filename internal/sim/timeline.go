package sim

// timeline is one partition's event queue: the two-level timing wheel plus
// the sorted overflow heap, with the exact (time, seq) merged order the
// engine contract requires. It was extracted from the reference engine so
// the conservative PDES engine can give every logical process its own
// instance; SeqEngine keeps one as its whole queue.
//
// A timeline is confined to a single goroutine — the driving goroutine for
// SeqEngine, the owning LP's goroutine for ParEngine — and performs no
// synchronization of its own.
type timeline struct {
	wh  wheel
	pq  eventHeap // sorted overflow: beyond the wheel horizon, or behind the window
	ovf *uint64   // bumped when a schedule lands in the overflow heap
}

// reset empties the timeline and points its overflow counter at ovf.
func (q *timeline) reset(ovf *uint64) {
	q.wh.reset()
	q.pq = nil
	q.ovf = ovf
}

// count reports the number of queued events.
func (q *timeline) count() int { return q.wh.count + len(q.pq) }

// enqueue files a filled-in event record into the queue: level 0 for the
// current chunk, level 1 within the horizon, the sorted heap past it (or
// behind the window, after an idle jump).
func (q *timeline) enqueue(ev *Event) {
	tk := tickOf(ev.t)
	ch := tk >> l0Bits
	switch {
	case ch == q.wh.curChunk:
		q.wh.pushL0(ev, tk)
	case ch > q.wh.curChunk && ch <= q.wh.curChunk+l1Slots:
		q.wh.pushL1(ev, ch)
	default:
		ev.loc = locHeap
		q.pq.push(ev)
		*q.ovf++
	}
}

// dequeue removes a queued event from whichever structure holds it.
func (q *timeline) dequeue(ev *Event) {
	if ev.loc == locHeap {
		q.pq.remove(ev)
	} else {
		q.wh.remove(ev)
	}
	ev.loc = locNone
}

// advanceTo moves the level-0 window to chunk ch (strictly forward),
// cascading that chunk's level-1 slot into level 0 and pulling overflow
// events that now fall inside the wheel's extended horizon.
//
// The cascade and the overflow pull re-file events whose chunk is inside the
// new window by construction, so *ovf never moves here: overflow is counted
// exactly once, at the original enqueue.
func (q *timeline) advanceTo(ch int64) {
	w := &q.wh
	w.curChunk = ch
	w.scanTick = ch << l0Bits
	w.sorted = -1
	s := int(ch & l1Mask)
	if w.occ1.has(s) {
		lst := w.l1[s]
		w.l1[s] = slotList{}
		w.occ1.clear(s)
		for ev := lst.head; ev != nil; {
			next := ev.next
			ev.next, ev.prev = nil, nil
			w.count-- // enqueue re-counts it
			q.enqueue(ev)
			ev = next
		}
	}
	base := ch << l0Bits
	horizon := w.horizonTick()
	for len(q.pq) > 0 {
		tk := tickOf(q.pq[0].t)
		if tk < base || tk >= horizon {
			// Behind the window the heap top stays put: peek serves it
			// directly, and everything deeper is later still.
			break
		}
		q.enqueue(q.pq.pop())
	}
}

// peek positions the wheel at the earliest queued event and returns it
// without removing it, or nil when the queue is empty. The merged order
// across wheel and overflow heap is the exact (time, seq) total order.
//
// Window invariant (the PDES engine's shadow window depends on it): when
// peek returns event h, the wheel's curChunk is exactly
// max(curChunk-before-the-call, chunk(h.t)) — the window advances to the
// head's chunk when the head is at or past the window, and stays put when
// the head is behind it (served from the overflow heap).
func (q *timeline) peek() *Event {
	for {
		var hp *Event
		if len(q.pq) > 0 {
			hp = q.pq[0]
		}
		if q.wh.count == 0 {
			if hp == nil {
				return nil
			}
			ch := tickOf(hp.t) >> l0Bits
			if ch <= q.wh.curChunk {
				return hp
			}
			// Jump the empty wheel to the heap top's chunk and adopt what
			// fits, so the dense phase that follows schedules in O(1).
			q.advanceTo(ch)
			continue
		}
		if tk, ok := q.wh.nextL0(); ok {
			if tk != q.wh.sorted {
				q.wh.l0[tk&l0Mask].sort()
				q.wh.sorted = tk
			}
			q.wh.scanTick = tk
			wv := q.wh.l0[int(tk&l0Mask)].head
			if hp != nil && hp.before(wv) {
				return hp
			}
			return wv
		}
		// Current chunk drained: advance to the earliest of the next
		// occupied level-1 chunk and the heap top's chunk.
		target, ok := q.wh.nextL1()
		if hp != nil {
			hch := tickOf(hp.t) >> l0Bits
			if hch <= q.wh.curChunk {
				return hp
			}
			if !ok || hch < target {
				target, ok = hch, true
			}
		}
		if !ok {
			panic("sim: wheel count positive but no event found")
		}
		q.advanceTo(target)
	}
}

// popUpTo removes every event with time <= upTo in exact (time, seq) order,
// appending each to buf, and returns the extended buf.
func (q *timeline) popUpTo(upTo Time, buf []*Event) []*Event {
	for {
		ev := q.peek()
		if ev == nil || ev.t > upTo {
			return buf
		}
		q.dequeue(ev)
		buf = append(buf, ev)
	}
}

// drainAll empties the timeline in arbitrary order, appending every queued
// event to buf with its queue linkage cleared, and returns the extended buf.
// Used on Close, where only the set of events matters.
func (q *timeline) drainAll(buf []*Event) []*Event {
	for s := range q.wh.l0 {
		for ev := q.wh.l0[s].head; ev != nil; {
			next := ev.next
			ev.next, ev.prev = nil, nil
			ev.loc = locNone
			buf = append(buf, ev)
			ev = next
		}
	}
	for s := range q.wh.l1 {
		for ev := q.wh.l1[s].head; ev != nil; {
			next := ev.next
			ev.next, ev.prev = nil, nil
			ev.loc = locNone
			buf = append(buf, ev)
			ev = next
		}
	}
	for _, ev := range q.pq {
		ev.index = -1
		ev.loc = locNone
		buf = append(buf, ev)
	}
	q.wh.reset()
	q.pq = nil
	return buf
}
