package sim

// Kind labels an event type for diagnostics and tracing. Kinds are static
// strings — use constants, never fmt.Sprintf or concatenation — so the hot
// path stores one string header and formats nothing. Dynamic context (which
// thread's timer, which worker's exec) goes in the separate subject field of
// AtNamed/AfterNamed and is only combined with the kind when a name is
// actually rendered.
type Kind string

// Where an event record currently lives. The queue is a two-level timing
// wheel with a sorted overflow heap; every queued event is in exactly one of
// the three places (a wheel slot list, or the heap), and released records
// are in none.
const (
	locNone  = iota // not queued: free, fired, or cancelled
	locWheel        // linked into a wheel slot list (slot says which)
	locHeap         // in the overflow heap (index says where)
	locMap          // in the replay engine's by-sequence map
)

// Event is a scheduled callback, ordered by time with ties broken by
// scheduling order (sequence number), which makes the simulation fully
// deterministic. Events are pooled: once fired or cancelled, the record is
// recycled for a later schedule. External code therefore never holds an
// *Event; it holds a generation-checked Handle.
type Event struct {
	eng  impl // owning engine; routes Handle.Cancel to its queue
	t    Time
	seq  uint64 // tie-break within equal times; engine-global schedule order
	gen  uint64 // bumped on every recycle; stale Handles become inert
	kind Kind
	subj string     // optional subject ("who"), rendered lazily
	fn   func()     // callback, nil for coroutine dispatch events
	co   *Coroutine // dispatch target; avoids a closure per resume

	loc   int8   // locNone, locWheel, locHeap, locMap
	slot  int32  // wheel slot id when loc == locWheel
	index int    // position in the overflow heap, -1 when not there
	next  *Event // wheel slot list links (intrusive, allocation-free)
	prev  *Event

	// lp is the PDES engine's routing field: the logical process whose
	// timeline currently files the event, or -1 when the event is
	// driver-resident (which includes every event on the other engines).
	// Unlike loc/slot/index/next/prev — which the owning timeline's goroutine
	// mutates — lp is written only by the driving goroutine, so the Handle
	// paths may read it without synchronization.
	lp int32
}

// before reports whether a fires before b in the engine's total (time, seq)
// order. seq is engine-unique, so the order is strict.
func (ev *Event) before(b *Event) bool {
	if ev.t != b.t {
		return ev.t < b.t
	}
	return ev.seq < b.seq
}

// name renders the debug name. Cold path only: panics, tracing, tests.
func (ev *Event) name() string {
	if ev.subj == "" {
		return string(ev.kind)
	}
	return ev.subj + ":" + string(ev.kind)
}

// Handle refers to one scheduled event. It stays valid forever: once the
// event fires or is cancelled (and its record recycled), the handle turns
// inert — Active reports false and Cancel does nothing. The zero Handle is
// inert.
type Handle struct {
	ev  *Event
	gen uint64
}

// Active reports whether the event is still queued to fire.
func (h Handle) Active() bool {
	return h.ev != nil && h.ev.gen == h.gen
}

// Time reports when the event will fire; zero when no longer Active.
func (h Handle) Time() Time {
	if !h.Active() {
		return 0
	}
	return h.ev.t
}

// Name renders the event's debug name; empty when no longer Active.
func (h Handle) Name() string {
	if !h.Active() {
		return ""
	}
	return h.ev.name()
}

// Cancel removes the event from the queue — O(1) from a wheel slot,
// O(log n) from the overflow heap — and recycles it immediately. No
// tombstone is left behind, so Pending stays exact. It reports whether it
// cancelled anything; cancelling an event that already fired or was already
// cancelled is an inert no-op.
//
// The staleness check reads only gen, which the driving goroutine alone
// writes: a matching generation implies the event is still queued, because
// every path that takes it out of a queue — fire, consume, cancel, Close —
// bumps gen before the driver returns to the caller. The queue-location
// fields (loc and friends) may be owned by an LP goroutine on the PDES
// engine, so the Handle must not touch them.
func (h Handle) Cancel() bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen {
		return false
	}
	return ev.eng.cancelQueued(ev)
}

// eventHeap is an indexed min-heap of events ordered by (time, seq). It is
// the queue's sorted overflow level — events beyond the timing wheel's
// horizon, plus the rare event scheduled behind a wheel window that jumped
// ahead over idle time — and doubles as the oracle the wheel is property-
// tested against. The sift routines are hand-rolled (rather than
// container/heap) so removal and pop stay free of interface conversions.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	return h[i].before(h[j])
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts i toward the leaves; it reports whether i moved.
func (h eventHeap) down(i int) bool {
	start := i
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h.swap(i, least)
		i = least
	}
	return i > start
}

func (h *eventHeap) push(ev *Event) {
	ev.index = len(*h)
	*h = append(*h, ev)
	h.up(ev.index)
}

func (h *eventHeap) pop() *Event {
	old := *h
	ev := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[0].index = 0
	old[n] = nil
	*h = old[:n]
	if n > 1 {
		(*h).down(0)
	}
	ev.index = -1
	return ev
}

// remove deletes the event at an arbitrary heap position in O(log n).
func (h *eventHeap) remove(ev *Event) {
	i := ev.index
	old := *h
	n := len(old) - 1
	if i != n {
		old[i] = old[n]
		old[i].index = i
	}
	old[n] = nil
	*h = old[:n]
	if i != n {
		if !(*h).down(i) {
			(*h).up(i)
		}
	}
	ev.index = -1
}
