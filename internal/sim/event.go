package sim

import "container/heap"

// Event is a scheduled callback. Events are ordered by time, with ties broken
// by scheduling order (sequence number), which makes the simulation fully
// deterministic.
type Event struct {
	t         Time
	seq       uint64
	name      string
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Time reports when the event is scheduled to fire.
func (ev *Event) Time() Time { return ev.t }

// Name reports the debug name given at scheduling time.
func (ev *Event) Name() string { return ev.name }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Cancelled reports whether Cancel has been called.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// eventHeap is a min-heap of events ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

func (h *eventHeap) push(ev *Event) { heap.Push(h, ev) }

func (h *eventHeap) pop() *Event { return heap.Pop(h).(*Event) }
