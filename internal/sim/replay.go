package sim

import "fmt"

// tapeEntry is one fired event on a recording's tape: its (time, seq)
// coordinates plus the kind, kept for divergence diagnostics.
type tapeEntry struct {
	t    Time
	seq  uint64
	kind Kind
}

// Recording is the fired-event stream of one engine run: every event that
// fired (elided resumes included — the tape is the PreFire hook stream), in
// order, plus the run's overflow count (a queue-placement statistic the
// replay engine cannot re-derive without the queue machinery it elides).
// A Recording is inert data: it survives the recorded engine's Close and
// can seed any number of replay engines.
type Recording struct {
	tape      []tapeEntry
	overflows uint64
}

// Len reports the number of fired events on the tape.
func (r *Recording) Len() int { return len(r.tape) }

// Recorder captures a Recording from a live engine. It is itself a hook
// client — the proof that the hook points carry enough signal to rebuild a
// timeline: a PreFire hook appends each fired event to the tape, and a
// close hook snapshots the final overflow count.
type Recorder struct {
	eng Engine
	rec *Recording
}

// Record attaches a recorder to eng. Attach it before driving the engine;
// events fired before attachment are not on the tape, and a replay of a
// partial tape will diverge.
func Record(eng Engine) *Recorder {
	r := &Recorder{eng: eng, rec: &Recording{}}
	h := eng.Hooks()
	h.Register(HookPreFire, HookFunc(func(ctx *HookCtx) {
		r.rec.tape = append(r.rec.tape, tapeEntry{ctx.Time, ctx.Seq, ctx.Kind})
	}))
	h.Register(HookClose, HookFunc(func(ctx *HookCtx) {
		r.rec.overflows = ctx.Engine.Stats().Overflows
	}))
	return r
}

// Recording returns the captured recording. Normally called after the
// recorded engine closed; called earlier it snapshots the overflow count at
// this point instead.
func (r *Recorder) Recording() *Recording {
	if !r.eng.base().closed {
		r.rec.overflows = r.eng.Stats().Overflows
	}
	return r.rec
}

// ReplayEngine re-executes a recorded run without the reference engine's
// queue machinery: no timing wheel, no overflow heap, no ordering logic at
// all. Scheduled events are parked in a by-sequence map and the tape — the
// recording's fired-event stream — dictates which event fires next; the
// workload's callbacks and coroutines execute for real, so the engine
// verifies on every fire that the run is scheduling exactly what the
// recorded run scheduled, and panics on the first divergence.
//
// It is the second real Engine implementation, pinned byte-identical
// against the reference by the same lockstep-oracle + fingerprint
// discipline as wheel-vs-heap and pooled-vs-unpooled: driven by the same
// harness, a replay produces the same virtual timeline, the same trace
// stream, the same metrics, and therefore the same chaos fingerprint.
//
// The Overflows statistic is adopted from the recording (overflow placement
// is a property of the reference queue, not of the timeline); every other
// counter — Events, LogicalResumes, Scheduled, Cancels, Reuses, MaxPending —
// reproduces organically from re-execution.
type ReplayEngine struct {
	engineBase
	tape         []tapeEntry
	pos          int // next tape entry to fire
	byseq        map[uint64]*Event
	recOverflows uint64 // the recording's overflow count, re-adopted on Reset
}

// NewReplayEngine returns an engine that replays rec. The caller drives it
// exactly as it drove the recorded run (same workload, same drive calls);
// the engine panics on the first detected divergence rather than silently
// inventing a different timeline.
func NewReplayEngine(rec *Recording, opts ...Option) Engine {
	e := &ReplayEngine{tape: rec.tape, byseq: make(map[uint64]*Event), recOverflows: rec.overflows}
	e.init(e, buildConfig(opts))
	e.st.Overflows = rec.overflows
	return e
}

// Pending reports the number of events queued to fire.
func (e *ReplayEngine) Pending() int { return len(e.byseq) }

// Replayed reports how many tape entries have fired so far.
func (e *ReplayEngine) Replayed() int { return e.pos }

func (e *ReplayEngine) schedule(t Time, kind Kind, subj string, fn func(), co *Coroutine) Handle {
	ev := e.newEvent(t, kind, subj, fn, co)
	ev.loc = locMap
	e.byseq[ev.seq] = ev
	return e.scheduled(ev, len(e.byseq))
}

// At schedules fn to run at absolute time t.
func (e *ReplayEngine) At(t Time, kind Kind, fn func()) Handle {
	return e.schedule(t, kind, "", fn, nil)
}

// AtNamed is At with a subject.
func (e *ReplayEngine) AtNamed(t Time, kind Kind, subject string, fn func()) Handle {
	return e.schedule(t, kind, subject, fn, nil)
}

// After schedules fn to run d after the current time.
func (e *ReplayEngine) After(d Duration, kind Kind, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", d, kind))
	}
	return e.schedule(e.now.Add(d), kind, "", fn, nil)
}

// AfterNamed is After with a subject.
func (e *ReplayEngine) AfterNamed(d Duration, kind Kind, subject string, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %s:%q", d, subject, kind))
	}
	return e.schedule(e.now.Add(d), kind, subject, fn, nil)
}

// head returns the event the tape says fires next, or nil when the tape is
// exhausted, verifying on the way that the replayed run actually scheduled
// it with the same coordinates.
func (e *ReplayEngine) head() *Event {
	if e.pos >= len(e.tape) {
		return nil
	}
	te := e.tape[e.pos]
	ev := e.byseq[te.seq]
	if ev == nil {
		panic(fmt.Sprintf(
			"sim: replay diverged at tape position %d: recording fired event seq %d (%q, t=%v), but the replayed run has no such event queued",
			e.pos, te.seq, te.kind, te.t))
	}
	if ev.t != te.t || ev.kind != te.kind {
		panic(fmt.Sprintf(
			"sim: replay diverged at tape position %d: recording fired seq %d as %q at t=%v, replayed run scheduled it as %q at t=%v",
			e.pos, te.seq, te.kind, te.t, ev.kind, ev.t))
	}
	return ev
}

// pastTape panics if the replay is driven past the end of its recording:
// the tape is exhausted but events within the drive ceiling are still
// queued, which the recorded run would have fired.
func (e *ReplayEngine) pastTape(limit Time) {
	for _, ev := range e.byseq {
		if ev.t <= limit {
			panic(fmt.Sprintf(
				"sim: replay driven past the end of its recording: event %q at t=%v is due but the tape (%d entries) is exhausted",
				ev.name(), ev.t, len(e.tape)))
		}
	}
}

// fire pops the tape head and fires ev (which must be the head's event).
func (e *ReplayEngine) fire(ev *Event) {
	e.pos++
	delete(e.byseq, ev.seq)
	ev.loc = locNone
	e.finishFire(ev)
}

// Step fires the next recorded event, advancing the clock to its time. It
// reports false when the recording is fully replayed and nothing is queued.
func (e *ReplayEngine) Step() bool {
	ev := e.head()
	if ev == nil {
		e.pastTape(maxTime)
		return false
	}
	e.limit = ev.t
	e.fire(ev)
	return true
}

// Run replays the remainder of the tape.
func (e *ReplayEngine) Run() {
	e.limit = maxTime
	for {
		ev := e.head()
		if ev == nil {
			e.pastTape(maxTime)
			return
		}
		e.fire(ev)
	}
}

// RunUntil replays recorded events with time <= t, then sets the clock to t.
func (e *ReplayEngine) RunUntil(t Time) {
	e.limit = t
	for {
		ev := e.head()
		if ev == nil || ev.t > t {
			if ev == nil {
				e.pastTape(t)
			}
			break
		}
		e.fire(ev)
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the clock by d, replaying all recorded events in the
// window.
func (e *ReplayEngine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Close shuts the engine down, unwinding every live coroutine. Close is
// idempotent.
func (e *ReplayEngine) Close() {
	if !e.beginClose() {
		return
	}
	for _, ev := range e.byseq {
		ev.loc = locNone
		ev.gen++
	}
	e.byseq = nil
	e.free = nil
	e.tape = nil
}

// Reset rewinds the engine to the start of its tape for another replay of
// the same recording; see Engine.Reset for the shared contract. Queued
// events from the abandoned run turn inert and the recording's overflow
// count is re-adopted, exactly as at construction.
func (e *ReplayEngine) Reset(opts ...Option) {
	c := buildConfig(opts)
	if c.lps > 0 || c.lpChanCap > 0 {
		panic("sim: Reset cannot re-partition an engine (WithLPs/WithLPChannelCap apply at construction only)")
	}
	e.beginReset()
	for seq, ev := range e.byseq {
		ev.loc = locNone
		ev.gen++
		delete(e.byseq, seq)
	}
	e.pos = 0
	e.resetBase(c)
	e.st.Overflows = e.recOverflows
}

// --- impl ---

func (e *ReplayEngine) scheduleEvent(t Time, kind Kind, subj string, fn func(), co *Coroutine) Handle {
	return e.schedule(t, kind, subj, fn, co)
}

func (e *ReplayEngine) nextEvent() *Event { return e.head() }

func (e *ReplayEngine) fireNext(ev *Event) { e.fire(ev) }

func (e *ReplayEngine) consumeNext(ev *Event, c *Coroutine) {
	e.pos++
	delete(e.byseq, ev.seq)
	ev.loc = locNone
	e.finishConsume(ev, c)
}

func (e *ReplayEngine) cancelQueued(ev *Event) bool {
	delete(e.byseq, ev.seq)
	ev.loc = locNone
	e.cancelled(ev)
	return true
}
