package sim

// The logical-process side of the conservative PDES engine (par.go).
//
// Each LP owns one timeline — the same wheel+heap structure the reference
// engine uses as its whole queue — and runs a small command loop on its own
// goroutine. The driver is the only sender; commands arrive on a bounded
// channel and are processed strictly in order, so the LP's view of its
// partition is always exactly the prefix of driver actions sent to it.
//
// Synchronization discipline (what keeps -race quiet and the timeline
// deterministic): an event record is touched by at most one goroutine at a
// time, with ownership transferred only through the channels. The driver
// fills a record and sends it (lpEnq); from then on the LP owns the queue
// fields (loc/slot/index/next/prev) until the record comes back in a
// harvest/cancel/close reply, after which the driver owns it again. Fields
// the driver reads while the LP holds the record — t, seq, gen, kind, subj,
// lp — are written only by the driver. The engineBase (clock, stats, hooks,
// free list, coroutines) is never touched from an LP goroutine.

// LP command opcodes.
const (
	lpEnq     = iota // file cmd.ev into the timeline (async, no reply)
	lpCancel         // remove cmd.ev from the timeline (sync)
	lpHarvest        // pop everything with t <= cmd.upTo (sync)
	lpReset          // drain everything, rewind the timeline, keep running (sync)
	lpClose          // drain everything and exit (sync)
)

// lpCmd is one driver→LP command.
type lpCmd struct {
	op   uint8
	ev   *Event
	upTo Time
}

// lpReply answers a synchronous command. Every reply carries a null message
// in the Chandy–Misra sense: headT/headSeq are the (time, seq) of the LP's
// remaining queue head — a promise that the LP holds nothing earlier — or
// (maxTime, maxSeq) when the partition is empty. For harvest and close, evs
// is the LP's scratch buffer; the driver must finish reading it before
// sending the LP its next command, which hands the buffer back.
type lpReply struct {
	evs     []*Event
	headT   Time
	headSeq uint64
}

// maxSeq pairs with maxTime in an "empty partition" null message.
const maxSeq = ^uint64(0)

// logicalProcess is one PDES partition: a timeline plus the channel pair
// connecting it to the driver. The struct spans the two goroutines but every
// field has a single owner (see the file comment).
type logicalProcess struct {
	id    int
	cmd   chan lpCmd
	reply chan lpReply

	// Driver-owned bookkeeping; the LP goroutine never touches these.
	owned    int    // events currently filed in this LP
	boundT   Time   // current null-message bound: the LP holds nothing
	boundSeq uint64 // before (boundT, boundSeq)

	// LP-goroutine-owned state after the goroutine starts.
	tl  timeline
	ovf uint64   // dummy overflow sink; the driver's shadow window is authoritative
	buf []*Event // reply scratch; ownership alternates over the channels
}

// newLogicalProcess builds an LP ready for go l.run(). Called by the driver
// before the goroutine starts, which orders the initialization.
func newLogicalProcess(id, chanCap int) *logicalProcess {
	l := &logicalProcess{
		id:       id,
		cmd:      make(chan lpCmd, chanCap),
		reply:    make(chan lpReply, 1),
		boundT:   maxTime,
		boundSeq: maxSeq,
	}
	l.tl.reset(&l.ovf)
	return l
}

// run is the LP goroutine: process commands until lpClose. Enqueues are
// asynchronous — the driver streams them and the LP files them concurrently
// with callback execution on the driver — while cancel/harvest/close
// rendezvous through the reply channel (capacity 1, at most one outstanding
// per LP, so the LP never blocks sending).
func (l *logicalProcess) run() {
	for c := range l.cmd {
		switch c.op {
		case lpEnq:
			l.tl.enqueue(c.ev)
		case lpCancel:
			l.tl.dequeue(c.ev)
			l.reply <- l.nullMessage(nil)
		case lpHarvest:
			l.buf = l.tl.popUpTo(c.upTo, l.buf[:0])
			l.reply <- l.nullMessage(l.buf)
		case lpReset:
			// Engine.Reset: hand the whole partition back to the driver (which
			// invalidates the records) and rewind the wheel to time zero, but
			// keep the goroutine alive for the next run. The empty-partition
			// null message re-seeds the driver's bound.
			l.buf = l.tl.drainAll(l.buf[:0])
			l.tl.reset(&l.ovf)
			l.reply <- lpReply{evs: l.buf, headT: maxTime, headSeq: maxSeq}
		case lpClose:
			l.buf = l.tl.drainAll(l.buf[:0])
			l.reply <- lpReply{evs: l.buf}
			return
		}
	}
}

// nullMessage builds a reply promising the LP's exact remaining lower bound.
func (l *logicalProcess) nullMessage(evs []*Event) lpReply {
	r := lpReply{evs: evs, headT: maxTime, headSeq: maxSeq}
	if head := l.tl.peek(); head != nil {
		r.headT, r.headSeq = head.t, head.seq
	}
	return r
}
