package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// hookRec is one recorded hook invocation; the full ordered stream across
// all five positions is the engine's complete observable history.
type hookRec struct {
	pos  HookPos
	t    Time
	seq  uint64
	kind Kind
	subj string
}

// recordHooks registers a recorder at every hook position and returns the
// growing stream.
func recordHooks(e Engine) *[]hookRec {
	recs := new([]hookRec)
	h := HookFunc(func(ctx *HookCtx) {
		*recs = append(*recs, hookRec{ctx.Pos, ctx.Time, ctx.Seq, ctx.Kind, ctx.Subject})
	})
	for pos := HookPos(0); pos < numHookPos; pos++ {
		e.Hooks().Register(pos, h)
	}
	return recs
}

// lockstepWorkload seeds e with a self-driving random workload: callbacks
// that reschedule themselves across all delay regimes, cancel random
// handles, spawn sleeping coroutines, and scatter subjects (which the par
// affinity maps to LPs). The rng is consumed only from inside the timeline
// — callbacks and coroutine bodies — so two engines firing in the same order
// make identical decisions.
func lockstepWorkload(e Engine, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var handles []Handle
	budget := 300
	delay := func() Duration {
		switch rng.Intn(8) {
		case 0, 1, 2: // sub-tick to a few ticks
			return Duration(rng.Intn(3000))
		case 3, 4: // L0/L1 window
			return Duration(rng.Intn(500)) * Microsecond
		case 5, 6: // around the horizon
			return Duration(rng.Intn(80)) * Millisecond
		default: // far overflow
			return Duration(rng.Intn(3)) * Second
		}
	}
	var act func()
	act = func() {
		if budget <= 0 {
			return
		}
		budget--
		switch rng.Intn(8) {
		case 0, 1, 2: // chain: reschedule self under a scattered subject
			h := e.AfterNamed(delay(), "act", fmt.Sprintf("s%d", rng.Intn(5)), act)
			handles = append(handles, h)
		case 3: // branch: two chains keep the queue from draining early
			handles = append(handles, e.After(delay(), "act", act))
			handles = append(handles, e.AfterNamed(delay(), "act", "b", act))
		case 4: // cancel an arbitrary, possibly stale, handle
			if len(handles) > 0 {
				handles[rng.Intn(len(handles))].Cancel()
			}
		case 5: // coroutine: sleeps exercise elision against the par frontier
			c := e.Go(fmt.Sprintf("co%d", budget), func(c *Coroutine) {
				for i := 0; i < 3; i++ {
					c.Sleep(delay())
				}
			})
			c.UnparkAt(e.Now().Add(delay()))
		default: // leaf event
			e.After(delay(), "leaf", func() {})
		}
	}
	for i := 0; i < 12; i++ {
		budget--
		handles = append(handles, e.After(delay(), "act", act))
	}
}

// TestParLockstepMatchesSeq drives the reference engine and the PDES engine
// through the same workload one firing at a time, comparing clock, Pending,
// and the complete hook stream — schedule, cancel, pre-fire, post-fire —
// after every single Step. This is the finest-grained equivalence pin: a
// divergence fails at the exact firing where it appears, not at end of run.
func TestParLockstepMatchesSeq(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42, 1991} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := NewEngine()
			defer a.Close()
			b := NewEngine(parOracleOpts(3, 2, 5*Microsecond)...)
			defer b.Close()
			ra, rb := recordHooks(a), recordHooks(b)
			lockstepWorkload(a, seed)
			lockstepWorkload(b, seed)

			done := 0 // hook-stream records compared so far
			for step := 0; ; step++ {
				oka, okb := a.Step(), b.Step()
				if oka != okb {
					t.Fatalf("step %d: seq Step=%v, par Step=%v", step, oka, okb)
				}
				if a.Now() != b.Now() {
					t.Fatalf("step %d: Now %v vs %v", step, a.Now(), b.Now())
				}
				if a.Pending() != b.Pending() {
					t.Fatalf("step %d: Pending %d vs %d", step, a.Pending(), b.Pending())
				}
				if len(*ra) != len(*rb) {
					t.Fatalf("step %d: hook stream length %d vs %d", step, len(*ra), len(*rb))
				}
				for ; done < len(*ra); done++ {
					if (*ra)[done] != (*rb)[done] {
						t.Fatalf("step %d: hook record %d: seq %+v, par %+v", step, done, (*ra)[done], (*rb)[done])
					}
				}
				if !oka {
					break
				}
			}
			sa, sb := *a.Stats(), *b.Stats()
			sa.PhysicalSwitches, sb.PhysicalSwitches = 0, 0
			if sa != sb {
				t.Fatalf("final stats diverge:\n seq %+v\n par %+v", sa, sb)
			}
		})
	}
}

// parVsSeq interprets one coroutine program on the reference engine and on
// the PDES engine (unpooled and pooled) under the given partition shape, and
// fails on any observable difference: event log, final clock, or any
// simulated stat — including Overflows, which pins the shadow window, and
// MaxPending, which pins the partitioned queue accounting.
func parVsSeq(t *testing.T, program []byte, lps, chanCap int, lookahead Duration) {
	t.Helper()
	ref := interpret(program, nil, false)
	n := 0
	parOpts := []Option{
		WithLPs(lps), WithLPChannelCap(chanCap), WithLookahead(lookahead),
		WithAffinity(func(Kind, string) int { n++; return n }),
	}
	got := interpret(program, nil, false, parOpts...)
	if diff := ref.same(got); diff != "" {
		t.Fatalf("par(lps=%d cap=%d la=%v) diverged from seq: %s", lps, chanCap, lookahead, diff)
	}
	pool := NewPool()
	defer pool.Close()
	pooled := interpret(program, pool, false, parOpts...)
	if diff := ref.same(pooled); diff != "" {
		t.Fatalf("pooled par(lps=%d cap=%d la=%v) diverged from seq: %s", lps, chanCap, lookahead, diff)
	}
}

// TestParVsSeqPrograms is the deterministic slice of the par-vs-seq oracle:
// random coroutine programs across partition shapes, the PDES analogue of
// TestPooledLockstepMatchesUnpooled.
func TestParVsSeqPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		program := make([]byte, 4+rng.Intn(60))
		rng.Read(program)
		lps := 1 + int(seed)%4
		chanCap := 1 + int(seed)%5
		lookahead := Duration(1+seed*7%150) * Microsecond
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			parVsSeq(t, program, lps, chanCap, lookahead)
		})
	}
}

// FuzzParVsSeqOracle lets the fuzzer search the joint space of coroutine
// program × partition shape: LP count, channel capacity, and lookahead are
// fuzzed alongside the program, all within legal bounds — lookahead is a
// batching knob, so any positive perturbation must leave every observable
// untouched.
func FuzzParVsSeqOracle(f *testing.F) {
	f.Add([]byte{2, 0, 16, 3, 40, 5, 1, 1, 6, 2, 80, 7, 33}, uint8(1), uint8(0), uint8(9))
	f.Add([]byte{0, 9, 9, 9}, uint8(2), uint8(1), uint8(0))
	f.Add([]byte{3, 5, 0, 0, 5, 18, 18, 26, 42}, uint8(3), uint8(7), uint8(255))
	f.Add([]byte{1, 255, 255, 7, 7, 7, 2, 2, 2}, uint8(0), uint8(3), uint8(100))
	f.Fuzz(func(t *testing.T, program []byte, lpsB, capB, laB uint8) {
		if len(program) > 256 {
			program = program[:256]
		}
		lps := 1 + int(lpsB)%4
		chanCap := 1 + int(capB)%8
		lookahead := Duration(1+int(laB)) * Microsecond
		parVsSeq(t, program, lps, chanCap, lookahead)
	})
}

// TestParCloseInvalidatesLPHandles pins Close semantics specific to the
// partitioned queue: handles to events filed deep inside LP timelines turn
// inert, every LP goroutine exits, and a second Close is a no-op.
func TestParCloseInvalidatesLPHandles(t *testing.T) {
	e := NewEngine(WithLPs(4), WithAffinity(func(_ Kind, s string) int { return len(s) }))
	var hs []Handle
	for i := 0; i < 100; i++ {
		hs = append(hs, e.AfterNamed(Duration(i+1)*Millisecond, "far", fmt.Sprintf("s%0*d", i%7, 0), func() {
			t.Error("event fired across Close")
		}))
	}
	e.RunUntil(Time(Microsecond)) // harvest nothing, just start the merge
	e.Close()
	e.Close()
	for i, h := range hs {
		if h.Active() {
			t.Fatalf("handle %d still active after Close", i)
		}
		if h.Cancel() {
			t.Fatalf("handle %d cancelled after Close", i)
		}
	}
}
