package sim

import (
	"errors"
	"fmt"

	"schedact/internal/stats"
)

// ErrKilled unwinds a coroutine when the engine shuts down. Simulated code
// never observes it: the panic is recovered by the coroutine wrapper.
var ErrKilled = errors.New("sim: coroutine killed by engine shutdown")

// StatsSink, when non-nil, receives every engine's metrics registry as the
// engine closes, labelled with the engine's label. Harnesses (saexp -stats)
// install it to print a per-run scheduling-event profile without threading a
// collector through every experiment. It is consulted once per Close, before
// coroutines are unwound, so all counters are final but still reachable.
var StatsSink func(label string, reg *stats.Registry)

// Engine is a sequential discrete-event simulator.
//
// Engine methods must only be called from the goroutine driving Run/Step, or
// from inside event callbacks and coroutines (which, by the strict hand-off
// discipline, is the same goroutine dynamically). The engine is not safe for
// concurrent use; it does not need to be, since the whole point is a single
// deterministic timeline.
//
// The hot path — schedule, fire, cancel — is allocation-free in steady
// state: event records live on a free list and are recycled as they fire or
// are cancelled, cancellation removes from the indexed heap outright (no
// tombstones, so Pending is exact), and event names are static Kind labels
// combined with their subject only when diagnostics render them.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventHeap
	free    []*Event // recycled event records
	cur     *Coroutine
	live    map[*Coroutine]struct{}
	closed  bool
	label   string
	metrics *stats.Registry

	// Stats counts engine activity; useful for tests and for keeping an eye
	// on event-storm bugs. The same values are readable through Metrics
	// under the "sim." prefix.
	Stats struct {
		Events     uint64 // events fired
		Resumes    uint64 // coroutine resumptions
		Scheduled  uint64 // events scheduled
		Cancels    uint64 // events cancelled (removed without firing)
		Reuses     uint64 // schedules served from the free list
		MaxPending int    // high-water mark of the event queue
	}
}

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine {
	e := &Engine{live: make(map[*Coroutine]struct{}), metrics: stats.New()}
	e.metrics.Func("sim.events", func() uint64 { return e.Stats.Events })
	e.metrics.Func("sim.resumes", func() uint64 { return e.Stats.Resumes })
	e.metrics.Func("sim.scheduled", func() uint64 { return e.Stats.Scheduled })
	e.metrics.Func("sim.cancels", func() uint64 { return e.Stats.Cancels })
	e.metrics.Func("sim.pool_reuses", func() uint64 { return e.Stats.Reuses })
	e.metrics.Func("sim.max_pending", func() uint64 { return uint64(e.Stats.MaxPending) })
	return e
}

// Metrics returns the engine's shared stats registry. Every scheduling layer
// running on this engine registers its counters here.
func (e *Engine) Metrics() *stats.Registry { return e.metrics }

// SetLabel names the engine for StatsSink output.
func (e *Engine) SetLabel(label string) { e.label = label }

// Label reports the engine's label.
func (e *Engine) Label() string { return e.label }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events queued to fire. Cancelled events are
// removed immediately, so the count is exact.
func (e *Engine) Pending() int { return len(e.pq) }

// alloc takes an event record from the free list, or makes one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.Stats.Reuses++
		return ev
	}
	return &Event{eng: e, index: -1}
}

// release recycles a fired or cancelled event record. Bumping the
// generation turns every outstanding Handle to it inert.
func (e *Engine) release(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.co = nil
	ev.subj = ""
	ev.kind = ""
	e.free = append(e.free, ev)
}

// schedule is the single hot-path entry: every At/After/coroutine resume
// lands here. No formatting, no allocation in steady state.
func (e *Engine) schedule(t Time, kind Kind, subj string, fn func(), co *Coroutine) Handle {
	if e.closed {
		panic("sim: schedule on closed engine")
	}
	if t < e.now {
		ev := Event{kind: kind, subj: subj}
		panic(fmt.Sprintf("sim: event %q scheduled at %v, before now %v", ev.name(), t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.t, ev.seq, ev.kind, ev.subj, ev.fn, ev.co = t, e.seq, kind, subj, fn, co
	e.pq.push(ev)
	e.Stats.Scheduled++
	if n := len(e.pq); n > e.Stats.MaxPending {
		e.Stats.MaxPending = n
	}
	return Handle{ev, ev.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past (t
// before Now) panics: it would corrupt the timeline, and always indicates a
// bug in the caller. The returned handle may be used to Cancel.
func (e *Engine) At(t Time, kind Kind, fn func()) Handle {
	return e.schedule(t, kind, "", fn, nil)
}

// AtNamed is At with a subject: the dynamic "who" of the event, kept
// separate from the static kind so the hot path never concatenates.
func (e *Engine) AtNamed(t Time, kind Kind, subject string, fn func()) Handle {
	return e.schedule(t, kind, subject, fn, nil)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, kind Kind, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", d, kind))
	}
	return e.schedule(e.now.Add(d), kind, "", fn, nil)
}

// AfterNamed is After with a subject.
func (e *Engine) AfterNamed(d Duration, kind Kind, subject string, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %s:%q", d, subject, kind))
	}
	return e.schedule(e.now.Add(d), kind, subject, fn, nil)
}

// Step fires the next event, advancing the clock to its time. It reports
// false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pq.pop()
	e.now = ev.t
	fn, co := ev.fn, ev.co
	// Recycle before firing: during its own callback the event is already
	// "fired", so its handles are inert and its record reusable.
	e.release(ev)
	e.Stats.Events++
	if co != nil {
		co.dispatch()
	} else {
		fn()
	}
	return true
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time <= t, then sets the clock to t. Events
// scheduled at exactly t do fire.
func (e *Engine) RunUntil(t Time) {
	for len(e.pq) > 0 && e.pq[0].t <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the clock by d, firing all events in the window.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Close shuts the engine down, unwinding every live coroutine so no
// goroutines leak. After Close the engine must not be used. Close is
// idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	if StatsSink != nil {
		StatsSink(e.label, e.metrics)
	}
	e.closed = true
	for c := range e.live {
		c.kill()
	}
	// Invalidate outstanding handles to still-queued events before dropping
	// the queue, so a stale Cancel after Close stays inert.
	for _, ev := range e.pq {
		ev.index = -1
		ev.gen++
	}
	e.pq = nil
	e.free = nil
}
