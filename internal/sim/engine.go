package sim

import (
	"errors"
	"fmt"
)

// ErrKilled unwinds a coroutine when the engine shuts down. Simulated code
// never observes it: the panic is recovered by the coroutine wrapper.
var ErrKilled = errors.New("sim: coroutine killed by engine shutdown")

// Engine is a sequential discrete-event simulator.
//
// Engine methods must only be called from the goroutine driving Run/Step, or
// from inside event callbacks and coroutines (which, by the strict hand-off
// discipline, is the same goroutine dynamically). The engine is not safe for
// concurrent use; it does not need to be, since the whole point is a single
// deterministic timeline.
type Engine struct {
	now    Time
	seq    uint64
	pq     eventHeap
	cur    *Coroutine // coroutine currently executing, nil in plain events
	live   map[*Coroutine]struct{}
	closed bool

	// Stats counts engine activity; useful for tests and for keeping an eye
	// on event-storm bugs.
	Stats struct {
		Events  uint64 // events fired
		Resumes uint64 // coroutine resumptions
	}
}

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine {
	return &Engine{live: make(map[*Coroutine]struct{})}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events (including cancelled ones not yet
// discarded) in the queue.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn to run at absolute time t. Scheduling in the past (t before
// Now) panics: it would corrupt the timeline, and always indicates a bug in
// the caller. The returned event may be cancelled.
func (e *Engine) At(t Time, name string, fn func()) *Event {
	if e.closed {
		panic("sim: At on closed engine")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v, before now %v", name, t, e.now))
	}
	e.seq++
	ev := &Event{t: t, seq: e.seq, name: name, fn: fn}
	e.pq.push(ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", d, name))
	}
	return e.At(e.now.Add(d), name, fn)
}

// Step fires the next event, advancing the clock to its time. It reports
// false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := e.pq.pop()
		if ev.cancelled {
			continue
		}
		e.now = ev.t
		e.Stats.Events++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time <= t, then sets the clock to t. Events
// scheduled at exactly t do fire.
func (e *Engine) RunUntil(t Time) {
	for {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the clock by d, firing all events in the window.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

func (e *Engine) peek() (Time, bool) {
	for len(e.pq) > 0 {
		if e.pq[0].cancelled {
			e.pq.pop()
			continue
		}
		return e.pq[0].t, true
	}
	return 0, false
}

// Close shuts the engine down, unwinding every live coroutine so no
// goroutines leak. After Close the engine must not be used. Close is
// idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for c := range e.live {
		c.kill()
	}
	e.pq = nil
}
