package sim

import (
	"errors"
	"fmt"

	"schedact/internal/stats"
)

// ErrKilled unwinds a coroutine when the engine shuts down. Simulated code
// never observes it: the panic is recovered by the coroutine wrapper.
var ErrKilled = errors.New("sim: coroutine killed by engine shutdown")

// Engine is a discrete-event simulator timeline: a clock, an ordered event
// queue, and the coroutine machinery that runs simulated execution contexts
// against it. Every layer of the stack — machine, kernel, core, uthread, the
// chaos battery, the experiment harness — holds this interface, so engines
// are interchangeable: the reference sequential engine (NewEngine), the
// record/replay engine (NewReplayEngine), and the conservative PDES engine
// (NewEngine with WithLPs) all slot in behind it.
//
// Engine methods must only be called from the goroutine driving Run/Step, or
// from inside event callbacks and coroutines (which, by the strict hand-off
// discipline, is the same goroutine dynamically). An engine is not safe for
// concurrent use; it does not need to be, since the whole point is a single
// deterministic timeline. (The PDES engine runs queue maintenance on helper
// goroutines internally, but its public surface keeps exactly this
// single-driver contract.) To use every core, run many engines — one per
// independent run — under internal/fleet, or partition one run across LPs
// with WithLPs.
//
// Every implementation must provide the exact observable contract the
// compliance suite (compliance_test.go) pins: the (time, seq) total order,
// exact Pending counts, inert stale Handles, coroutine park/unpark
// semantics, and identical hook streams with elision on and off. A new
// engine lands with a lockstep-oracle test against the reference plus a
// fingerprint pin over the chaos sweep (DESIGN.md §6 has the checklist).
type Engine interface {
	// Now reports the current virtual time.
	Now() Time
	// Pending reports the number of events queued to fire. Cancelled events
	// are removed immediately, so the count is exact.
	Pending() int

	// At schedules fn to run at absolute time t. Scheduling in the past (t
	// before Now) panics: it would corrupt the timeline, and always
	// indicates a bug in the caller. The returned handle may be used to
	// Cancel.
	At(t Time, kind Kind, fn func()) Handle
	// AtNamed is At with a subject: the dynamic "who" of the event, kept
	// separate from the static kind so the hot path never concatenates.
	AtNamed(t Time, kind Kind, subject string, fn func()) Handle
	// After schedules fn to run d after the current time.
	After(d Duration, kind Kind, fn func()) Handle
	// AfterNamed is After with a subject.
	AfterNamed(d Duration, kind Kind, subject string, fn func()) Handle

	// Step fires the next event, advancing the clock to its time. It
	// reports false when the queue is empty.
	Step() bool
	// Run fires events until the queue is empty.
	Run()
	// RunUntil fires events with time <= t, then sets the clock to t.
	// Events scheduled at exactly t do fire.
	RunUntil(t Time)
	// RunFor advances the clock by d, firing all events in the window.
	RunFor(d Duration)

	// Go creates a coroutine that will execute fn. The coroutine does not
	// start until its first Unpark; this lets schedulers create execution
	// contexts and dispatch them later.
	Go(name string, fn func(*Coroutine)) *Coroutine
	// Current reports the coroutine currently executing, or nil when the
	// engine is running a plain event callback.
	Current() *Coroutine

	// Close shuts the engine down: close hooks fire, every live coroutine
	// is unwound so no goroutines leak, and outstanding handles turn inert.
	// After Close the engine must not be used. Close is idempotent.
	Close()

	// Reset returns the engine to its construction state for reuse on a
	// fresh run, without tearing down what is expensive to rebuild: the
	// clock, sequence counter, queue, and every counter return to zero and
	// all live coroutines are unwound (outstanding Handles turn inert, the
	// event free list is dropped so a warm run's Reuses count matches a
	// cold engine's exactly) — while the metrics registry, hook
	// registrations, goroutine pool, LP partition, and allocated queue
	// capacity survive. Close hooks do NOT fire: the run is being recycled,
	// not finished. Options are applied as at construction (label and
	// elision default when not given); options that would re-partition the
	// engine (WithLPs with a different count, WithLPChannelCap) panic.
	// Reset on a closed engine panics; resetting an idle engine twice is
	// harmless. A run that unwound with a *CoroutinePanic may be Reset and
	// the engine reused.
	Reset(opts ...Option)

	// Label reports the engine's label (WithLabel).
	Label() string
	// Metrics returns the engine's shared stats registry. Every scheduling
	// layer running on this engine registers its counters here.
	Metrics() *stats.Registry
	// Stats exposes the engine's activity counters.
	Stats() *EngineStats
	// Hooks returns the engine's hook registry.
	Hooks() *Hooks

	// base seals the interface to this package: engines share the event
	// pool, coroutine machinery, stats, and hook plumbing of engineBase, so
	// an implementation cannot exist outside internal/sim.
	base() *engineBase
}

// EngineStats counts engine activity; useful for tests and for keeping an
// eye on event-storm bugs. The same values are readable through Metrics
// under the "sim." prefix. All fields except PhysicalSwitches are simulated
// observables: two engines given the same program must produce identical
// values (the replay engine adopts Overflows from its recording, since
// overflow placement is a queue-machinery detail it does not re-execute).
type EngineStats struct {
	Events           uint64 // events fired
	LogicalResumes   uint64 // coroutine resumptions, physical or elided
	PhysicalSwitches uint64 // resumptions paid with a real goroutine hand-off
	Scheduled        uint64 // events scheduled
	Cancels          uint64 // events cancelled (removed without firing)
	Reuses           uint64 // schedules served from the free list
	Overflows        uint64 // schedules that landed in the overflow heap
	MaxPending       int    // high-water mark of the event queue
}

// impl is the private face of an engine implementation: the handful of
// queue-touching operations the shared coroutine and Handle machinery routes
// through. Everything else (drive loops, At/After sugar) each engine
// implements concretely so its hot loop pays no interface dispatch on
// itself.
type impl interface {
	Engine
	// scheduleEvent is the single scheduling entry: every At/After and
	// coroutine resume lands here.
	scheduleEvent(t Time, kind Kind, subj string, fn func(), co *Coroutine) Handle
	// nextEvent returns the next event in the engine's total order without
	// removing it, or nil when none is queued. (The reference engine's
	// implementation also positions its wheel, so calling it is not free —
	// but it is idempotent.)
	nextEvent() *Event
	// fireNext fires ev, which must be the event nextEvent just returned:
	// remove, advance the clock, recycle, emit hooks, run the callback.
	fireNext(ev *Event)
	// consumeNext consumes ev — a pending resume for c, and the event
	// nextEvent just returned — in place, without a goroutine hand-off.
	consumeNext(ev *Event, c *Coroutine)
	// cancelQueued removes a still-queued event (the Handle staleness
	// checks have already passed). Reports true.
	cancelQueued(ev *Event) bool
}

// engineBase is the state and machinery every engine implementation shares:
// the clock, the sequence counter, the recycled event pool, the coroutine
// set, stats, metrics, and hooks. Implementations embed it by value and
// point self at themselves so the shared coroutine/Handle paths can reach
// their queue operations.
type engineBase struct {
	self    impl
	now     Time
	limit   Time // fire ceiling of the current Run/RunUntil/Step call; elision must not pass it
	seq     uint64
	free    []*Event // recycled event records
	cur     *Coroutine
	live    map[*Coroutine]struct{}
	pool    *Pool // goroutine pool backing Engine.Go, nil when unpooled
	closed  bool
	noElide bool
	label   string
	metrics *stats.Registry
	hooks   Hooks
	st      EngineStats
	drain   []*Event // Reset drain scratch, reused across resets
}

// init wires the base to its implementation and applies construction
// options. Must be the first thing a concrete constructor calls.
func (b *engineBase) init(self impl, c config) {
	b.self = self
	b.live = make(map[*Coroutine]struct{})
	b.metrics = stats.New()
	b.label = c.label
	b.noElide = c.noElide
	b.hooks.ctx.Engine = self
	b.metrics.Func("sim.events", func() uint64 { return b.st.Events })
	// "sim.resumes" keeps its historical name and value: it counts logical
	// resumptions, which the elision fast path leaves untouched, so the
	// metric (and every fingerprint hashing it) is identical with elision on
	// or off. The physical count is a host metric: it describes how the
	// simulator executed, not what it simulated.
	b.metrics.Func("sim.resumes", func() uint64 { return b.st.LogicalResumes })
	b.metrics.FuncHost("sim.physical_switches", func() uint64 { return b.st.PhysicalSwitches })
	b.metrics.Func("sim.scheduled", func() uint64 { return b.st.Scheduled })
	b.metrics.Func("sim.cancels", func() uint64 { return b.st.Cancels })
	b.metrics.Func("sim.pool_reuses", func() uint64 { return b.st.Reuses })
	b.metrics.Func("sim.overflows", func() uint64 { return b.st.Overflows })
	b.metrics.Func("sim.max_pending", func() uint64 { return uint64(b.st.MaxPending) })
	for _, fn := range c.onClose {
		b.hooks.OnClose(fn)
	}
}

func (b *engineBase) base() *engineBase { return b }

// Now reports the current virtual time.
func (b *engineBase) Now() Time { return b.now }

// Label reports the engine's label.
func (b *engineBase) Label() string { return b.label }

// Metrics returns the engine's shared stats registry.
func (b *engineBase) Metrics() *stats.Registry { return b.metrics }

// Stats exposes the engine's activity counters.
func (b *engineBase) Stats() *EngineStats { return &b.st }

// Hooks returns the engine's hook registry.
func (b *engineBase) Hooks() *Hooks { return &b.hooks }

// alloc takes an event record from the free list, or makes one.
func (b *engineBase) alloc() *Event {
	if n := len(b.free); n > 0 {
		ev := b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
		b.st.Reuses++
		return ev
	}
	return &Event{eng: b.self, index: -1}
}

// release recycles a fired or cancelled event record. Bumping the
// generation turns every outstanding Handle to it inert.
func (b *engineBase) release(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.co = nil
	ev.subj = ""
	ev.kind = ""
	b.free = append(b.free, ev)
}

// newEvent is the shared scheduling prologue: validity checks, sequence
// assignment, record allocation. The caller files the record into its queue
// and then calls scheduled.
func (b *engineBase) newEvent(t Time, kind Kind, subj string, fn func(), co *Coroutine) *Event {
	if b.closed {
		panic("sim: schedule on closed engine")
	}
	if t < b.now {
		ev := Event{kind: kind, subj: subj}
		panic(fmt.Sprintf("sim: event %q scheduled at %v, before now %v", ev.name(), t, b.now))
	}
	b.seq++
	ev := b.alloc()
	ev.t, ev.seq, ev.kind, ev.subj, ev.fn, ev.co = t, b.seq, kind, subj, fn, co
	return ev
}

// scheduled is the shared scheduling epilogue: counters, high-water mark,
// hook, handle. pending is the queue depth including ev.
func (b *engineBase) scheduled(ev *Event, pending int) Handle {
	b.st.Scheduled++
	if pending > b.st.MaxPending {
		b.st.MaxPending = pending
	}
	if b.hooks.active(HookSchedule) {
		b.hooks.emit(HookSchedule, ev.t, ev.seq, ev.kind, ev.subj)
	}
	return Handle{ev, ev.gen}
}

// finishFire is the queue-independent tail of firing ev: the caller has
// already removed it from its queue. Advances the clock, recycles the
// record (during its own callback the event is already "fired", so its
// handles are inert and its record reusable), emits the fire hooks, and
// runs the callback or dispatches the coroutine.
func (b *engineBase) finishFire(ev *Event) {
	b.now = ev.t
	t, seq, kind, subj := ev.t, ev.seq, ev.kind, ev.subj
	fn, co := ev.fn, ev.co
	b.release(ev)
	b.st.Events++
	if b.hooks.active(HookPreFire) {
		b.hooks.emit(HookPreFire, t, seq, kind, subj)
	}
	if co != nil {
		co.dispatch()
	} else {
		fn()
	}
	if b.hooks.active(HookPostFire) {
		b.hooks.emit(HookPostFire, t, seq, kind, subj)
	}
}

// finishConsume is the queue-independent tail of consuming ev — a resume
// for the currently running coroutine c — in place, without a goroutine
// hand-off. The clock advance, record recycling, counters, and hook
// emissions are exactly those of the fired path; only the rendezvous (and
// hence the PhysicalSwitches count) disappear, and PostFire fires adjacent
// to PreFire since the resumed body continues on the spot.
func (b *engineBase) finishConsume(ev *Event, c *Coroutine) {
	b.now = ev.t
	t, seq, kind, subj := ev.t, ev.seq, ev.kind, ev.subj
	b.release(ev)
	b.st.Events++
	b.st.LogicalResumes++
	c.resumeScheduled = false
	if b.hooks.active(HookPreFire) {
		b.hooks.emit(HookPreFire, t, seq, kind, subj)
	}
	if b.hooks.active(HookPostFire) {
		b.hooks.emit(HookPostFire, t, seq, kind, subj)
	}
}

// cancelled is the queue-independent tail of cancelling ev: the caller has
// already removed it from its queue.
func (b *engineBase) cancelled(ev *Event) {
	t, seq, kind, subj := ev.t, ev.seq, ev.kind, ev.subj
	b.st.Cancels++
	b.release(ev)
	if b.hooks.active(HookCancel) {
		b.hooks.emit(HookCancel, t, seq, kind, subj)
	}
}

// beginClose runs the engine-independent half of Close: close hooks while
// every counter is final but coroutines are still alive, then the coroutine
// unwind. Reports false when the engine was already closed.
func (b *engineBase) beginClose() bool {
	if b.closed {
		return false
	}
	if b.hooks.active(HookClose) {
		b.hooks.emit(HookClose, b.now, b.seq, "", "")
	}
	b.closed = true
	for c := range b.live {
		c.kill()
	}
	return true
}

// beginReset runs the engine-independent head of Reset: validity checks and
// the coroutine unwind. Unlike beginClose, no close hooks fire and the
// engine stays open. After a *CoroutinePanic escaped a drive call, cur may
// still point at the (now done) coroutine; only a genuinely running
// coroutine — a Reset issued from inside simulated code — is rejected.
func (b *engineBase) beginReset() {
	if b.closed {
		panic("sim: Reset on closed engine")
	}
	if b.cur != nil && b.cur.state == coRunning {
		panic("sim: Reset from inside a coroutine")
	}
	for c := range b.live {
		c.kill()
	}
}

// resetBase reinitializes the shared engine state for a fresh run: clock,
// sequence counter, fire ceiling, and every stat return to zero, the event
// free list is dropped (a warm run must serve its first allocations fresh,
// so the fingerprinted Reuses count matches a cold engine's exactly), and
// the construction options are re-applied. The metrics registry, hook
// registrations, live-set map, and goroutine pool survive — re-registering
// metrics would corrupt the registry's dedup names, and the pool's warm
// goroutines are the point of resetting instead of closing.
func (b *engineBase) resetBase(c config) {
	b.now, b.limit, b.seq = 0, 0, 0
	b.cur = nil
	for i := range b.free {
		b.free[i] = nil
	}
	b.free = b.free[:0]
	b.st = EngineStats{}
	b.label = c.label
	b.noElide = c.noElide
	for _, fn := range c.onClose {
		b.hooks.OnClose(fn)
	}
}

// drainInert invalidates a batch of drained event records — every
// outstanding Handle to them turns inert — and drops the references so the
// records are collectable even while the scratch buffer is retained.
// Shared by the Reset paths.
func drainInert(evs []*Event) {
	for i, ev := range evs {
		ev.gen++
		evs[i] = nil
	}
}

// maxTime is the fire ceiling of an unbounded Run call.
const maxTime = Time(1<<63 - 1)

// SeqEngine is the reference engine: the sequential, elided simulator the
// whole repository's timelines are pinned against. Its hot path — schedule,
// fire, cancel — is allocation-free in steady state and O(1) for the near
// future: event records live on a free list and are recycled as they fire
// or are cancelled, and the queue is a timeline (timeline.go) — a two-level
// timing wheel whose slot lists splice in constant time, with the indexed
// heap kept as the sorted overflow level for events beyond the ~67 ms
// horizon. Cancellation removes the record outright from either structure
// (no tombstones, so Pending is exact).
//
// Code outside internal/sim holds the Engine interface, never this type
// (make lint enforces the seam).
type SeqEngine struct {
	engineBase
	tl timeline
}

// NewEngine returns an engine at time zero with an empty event queue: the
// reference sequential engine, or — when WithLPs selects one or more logical
// processes — the conservative PDES engine (par.go), which reproduces the
// reference timeline byte-identically.
func NewEngine(opts ...Option) Engine {
	c := buildConfig(opts)
	if c.lps > 0 {
		return newParEngine(nil, c)
	}
	return newSeqEngine(nil, c)
}

func newSeqEngine(pool *Pool, c config) *SeqEngine {
	e := &SeqEngine{}
	e.tl.reset(&e.st.Overflows)
	e.init(e, c)
	e.pool = pool
	return e
}

// Pending reports the number of events queued to fire.
func (e *SeqEngine) Pending() int { return e.tl.count() }

// schedule is the single hot-path entry: every At/After/coroutine resume
// lands here. No formatting, no allocation in steady state.
func (e *SeqEngine) schedule(t Time, kind Kind, subj string, fn func(), co *Coroutine) Handle {
	ev := e.newEvent(t, kind, subj, fn, co)
	e.tl.enqueue(ev)
	return e.scheduled(ev, e.tl.count())
}

// At schedules fn to run at absolute time t.
func (e *SeqEngine) At(t Time, kind Kind, fn func()) Handle {
	return e.schedule(t, kind, "", fn, nil)
}

// AtNamed is At with a subject.
func (e *SeqEngine) AtNamed(t Time, kind Kind, subject string, fn func()) Handle {
	return e.schedule(t, kind, subject, fn, nil)
}

// After schedules fn to run d after the current time.
func (e *SeqEngine) After(d Duration, kind Kind, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", d, kind))
	}
	return e.schedule(e.now.Add(d), kind, "", fn, nil)
}

// AfterNamed is After with a subject.
func (e *SeqEngine) AfterNamed(d Duration, kind Kind, subject string, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %s:%q", d, subject, kind))
	}
	return e.schedule(e.now.Add(d), kind, subject, fn, nil)
}

// fire removes ev from the queue, advances the clock to its time, recycles
// the record, and runs the callback.
func (e *SeqEngine) fire(ev *Event) {
	e.tl.dequeue(ev)
	e.finishFire(ev)
}

// Step fires the next event, advancing the clock to its time. It reports
// false when the queue is empty.
func (e *SeqEngine) Step() bool {
	ev := e.tl.peek()
	if ev == nil {
		return false
	}
	e.limit = ev.t
	e.fire(ev)
	return true
}

// Run fires events until the queue is empty.
func (e *SeqEngine) Run() {
	e.limit = maxTime
	for {
		ev := e.tl.peek()
		if ev == nil {
			return
		}
		e.fire(ev)
	}
}

// RunUntil fires events with time <= t, then sets the clock to t. Events
// scheduled at exactly t do fire.
func (e *SeqEngine) RunUntil(t Time) {
	e.limit = t
	for {
		ev := e.tl.peek()
		if ev == nil || ev.t > t {
			break
		}
		e.fire(ev)
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the clock by d, firing all events in the window.
func (e *SeqEngine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Close shuts the engine down, unwinding every live coroutine so no
// goroutines leak. After Close the engine must not be used. Close is
// idempotent.
func (e *SeqEngine) Close() {
	if !e.beginClose() {
		return
	}
	// Invalidate outstanding handles to still-queued events before dropping
	// the queue, so a stale Cancel after Close stays inert.
	for _, ev := range e.tl.drainAll(nil) {
		ev.gen++
	}
	e.free = nil
}

// Reset returns the engine to its construction state for reuse; see
// Engine.Reset for the contract.
func (e *SeqEngine) Reset(opts ...Option) {
	c := buildConfig(opts)
	if c.lps > 0 || c.lpChanCap > 0 {
		panic("sim: Reset cannot re-partition an engine (WithLPs/WithLPChannelCap apply at construction only)")
	}
	e.beginReset()
	e.drain = e.tl.drainAll(e.drain[:0])
	drainInert(e.drain)
	e.resetBase(c)
	e.tl.reset(&e.st.Overflows)
}

// --- impl ---

func (e *SeqEngine) scheduleEvent(t Time, kind Kind, subj string, fn func(), co *Coroutine) Handle {
	return e.schedule(t, kind, subj, fn, co)
}

func (e *SeqEngine) nextEvent() *Event { return e.tl.peek() }

func (e *SeqEngine) fireNext(ev *Event) { e.fire(ev) }

func (e *SeqEngine) consumeNext(ev *Event, c *Coroutine) {
	e.tl.dequeue(ev)
	e.finishConsume(ev, c)
}

func (e *SeqEngine) cancelQueued(ev *Event) bool {
	e.tl.dequeue(ev)
	e.cancelled(ev)
	return true
}
