package sim

import (
	"errors"
	"fmt"

	"schedact/internal/stats"
)

// ErrKilled unwinds a coroutine when the engine shuts down. Simulated code
// never observes it: the panic is recovered by the coroutine wrapper.
var ErrKilled = errors.New("sim: coroutine killed by engine shutdown")

// StatsSink, when non-nil, receives every engine's metrics registry as the
// engine closes, labelled with the engine's label. Harnesses (saexp -stats)
// install it to print a per-run scheduling-event profile without threading a
// collector through every experiment. It is consulted once per Close, before
// coroutines are unwound, so all counters are final but still reachable.
//
// Install the sink before any engines run and make the closure itself safe
// for concurrent calls (the fleet harness closes engines from several
// goroutines at once); the engines' registries are still confined, each to
// its own run.
var StatsSink func(label string, reg *stats.Registry)

// Engine is a sequential discrete-event simulator.
//
// Engine methods must only be called from the goroutine driving Run/Step, or
// from inside event callbacks and coroutines (which, by the strict hand-off
// discipline, is the same goroutine dynamically). The engine is not safe for
// concurrent use; it does not need to be, since the whole point is a single
// deterministic timeline. To use every core, run many engines — one per
// independent run — under internal/fleet.
//
// The hot path — schedule, fire, cancel — is allocation-free in steady
// state and O(1) for the near future: event records live on a free list and
// are recycled as they fire or are cancelled, and the queue is a two-level
// timing wheel (see wheel.go) whose slot lists splice in constant time,
// with the indexed heap kept as the sorted overflow level for events beyond
// the ~67 ms horizon. Cancellation removes the record outright from either
// structure (no tombstones, so Pending is exact), and event names are
// static Kind labels combined with their subject only when diagnostics
// render them.
type Engine struct {
	now     Time
	limit   Time // fire ceiling of the current Run/RunUntil/Step call; elision must not pass it
	seq     uint64
	wh      wheel
	pq      eventHeap // sorted overflow: beyond the wheel horizon, or behind the window
	free    []*Event  // recycled event records
	cur     *Coroutine
	live    map[*Coroutine]struct{}
	pool    *Pool // goroutine pool backing Engine.Go, nil when unpooled
	closed  bool
	label   string
	metrics *stats.Registry

	// DisableElision forces every coroutine resumption through the physical
	// goroutine hand-off, turning off the Sleep/InlineCharge fast path. The
	// simulated timeline is identical either way — equivalence tests toggle
	// this to pin elided and parked execution to the same history.
	DisableElision bool

	// Stats counts engine activity; useful for tests and for keeping an eye
	// on event-storm bugs. The same values are readable through Metrics
	// under the "sim." prefix.
	Stats struct {
		Events           uint64 // events fired
		LogicalResumes   uint64 // coroutine resumptions, physical or elided
		PhysicalSwitches uint64 // resumptions paid with a real goroutine hand-off
		Scheduled        uint64 // events scheduled
		Cancels          uint64 // events cancelled (removed without firing)
		Reuses           uint64 // schedules served from the free list
		Overflows        uint64 // schedules that landed in the overflow heap
		MaxPending       int    // high-water mark of the event queue
	}
}

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine {
	e := &Engine{live: make(map[*Coroutine]struct{}), metrics: stats.New()}
	e.wh.reset()
	e.metrics.Func("sim.events", func() uint64 { return e.Stats.Events })
	// "sim.resumes" keeps its historical name and value: it counts logical
	// resumptions, which the elision fast path leaves untouched, so the
	// metric (and every fingerprint hashing it) is identical with elision on
	// or off. The physical count is a host metric: it describes how the
	// simulator executed, not what it simulated.
	e.metrics.Func("sim.resumes", func() uint64 { return e.Stats.LogicalResumes })
	e.metrics.FuncHost("sim.physical_switches", func() uint64 { return e.Stats.PhysicalSwitches })
	e.metrics.Func("sim.scheduled", func() uint64 { return e.Stats.Scheduled })
	e.metrics.Func("sim.cancels", func() uint64 { return e.Stats.Cancels })
	e.metrics.Func("sim.pool_reuses", func() uint64 { return e.Stats.Reuses })
	e.metrics.Func("sim.overflows", func() uint64 { return e.Stats.Overflows })
	e.metrics.Func("sim.max_pending", func() uint64 { return uint64(e.Stats.MaxPending) })
	return e
}

// Metrics returns the engine's shared stats registry. Every scheduling layer
// running on this engine registers its counters here.
func (e *Engine) Metrics() *stats.Registry { return e.metrics }

// SetLabel names the engine for StatsSink output.
func (e *Engine) SetLabel(label string) { e.label = label }

// Label reports the engine's label.
func (e *Engine) Label() string { return e.label }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events queued to fire. Cancelled events are
// removed immediately from the wheel and the overflow heap alike, so the
// count is exact.
func (e *Engine) Pending() int { return e.wh.count + len(e.pq) }

// alloc takes an event record from the free list, or makes one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.Stats.Reuses++
		return ev
	}
	return &Event{eng: e, index: -1}
}

// release recycles a fired or cancelled event record. Bumping the
// generation turns every outstanding Handle to it inert.
func (e *Engine) release(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.co = nil
	ev.subj = ""
	ev.kind = ""
	e.free = append(e.free, ev)
}

// enqueue files a filled-in event record into the queue: level 0 for the
// current chunk, level 1 within the horizon, the sorted heap past it (or
// behind the window, after an idle jump).
func (e *Engine) enqueue(ev *Event) {
	tk := tickOf(ev.t)
	ch := tk >> l0Bits
	switch {
	case ch == e.wh.curChunk:
		e.wh.pushL0(ev, tk)
	case ch > e.wh.curChunk && ch <= e.wh.curChunk+l1Slots:
		e.wh.pushL1(ev, ch)
	default:
		ev.loc = locHeap
		e.pq.push(ev)
		e.Stats.Overflows++
	}
}

// dequeue removes a queued event from whichever structure holds it.
func (e *Engine) dequeue(ev *Event) {
	if ev.loc == locHeap {
		e.pq.remove(ev)
	} else {
		e.wh.remove(ev)
	}
	ev.loc = locNone
}

// advanceTo moves the level-0 window to chunk ch (strictly forward),
// cascading that chunk's level-1 slot into level 0 and pulling overflow
// events that now fall inside the wheel's extended horizon.
func (e *Engine) advanceTo(ch int64) {
	w := &e.wh
	w.curChunk = ch
	w.scanTick = ch << l0Bits
	w.sorted = -1
	s := int(ch & l1Mask)
	if w.occ1.has(s) {
		lst := w.l1[s]
		w.l1[s] = slotList{}
		w.occ1.clear(s)
		for ev := lst.head; ev != nil; {
			next := ev.next
			ev.next, ev.prev = nil, nil
			w.count-- // enqueue re-counts it
			e.enqueue(ev)
			ev = next
		}
	}
	base := ch << l0Bits
	horizon := w.horizonTick()
	for len(e.pq) > 0 {
		tk := tickOf(e.pq[0].t)
		if tk < base || tk >= horizon {
			// Behind the window the heap top stays put: peek serves it
			// directly, and everything deeper is later still.
			break
		}
		e.enqueue(e.pq.pop())
	}
}

// peek positions the wheel at the earliest queued event and returns it
// without removing it, or nil when the queue is empty. The merged order
// across wheel and overflow heap is the exact (time, seq) total order.
func (e *Engine) peek() *Event {
	for {
		var hp *Event
		if len(e.pq) > 0 {
			hp = e.pq[0]
		}
		if e.wh.count == 0 {
			if hp == nil {
				return nil
			}
			ch := tickOf(hp.t) >> l0Bits
			if ch <= e.wh.curChunk {
				return hp
			}
			// Jump the empty wheel to the heap top's chunk and adopt what
			// fits, so the dense phase that follows schedules in O(1).
			e.advanceTo(ch)
			continue
		}
		if tk, ok := e.wh.nextL0(); ok {
			if tk != e.wh.sorted {
				e.wh.l0[tk&l0Mask].sort()
				e.wh.sorted = tk
			}
			e.wh.scanTick = tk
			wv := e.wh.l0[int(tk&l0Mask)].head
			if hp != nil && hp.before(wv) {
				return hp
			}
			return wv
		}
		// Current chunk drained: advance to the earliest of the next
		// occupied level-1 chunk and the heap top's chunk.
		target, ok := e.wh.nextL1()
		if hp != nil {
			hch := tickOf(hp.t) >> l0Bits
			if hch <= e.wh.curChunk {
				return hp
			}
			if !ok || hch < target {
				target, ok = hch, true
			}
		}
		if !ok {
			panic("sim: wheel count positive but no event found")
		}
		e.advanceTo(target)
	}
}

// schedule is the single hot-path entry: every At/After/coroutine resume
// lands here. No formatting, no allocation in steady state.
func (e *Engine) schedule(t Time, kind Kind, subj string, fn func(), co *Coroutine) Handle {
	if e.closed {
		panic("sim: schedule on closed engine")
	}
	if t < e.now {
		ev := Event{kind: kind, subj: subj}
		panic(fmt.Sprintf("sim: event %q scheduled at %v, before now %v", ev.name(), t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.t, ev.seq, ev.kind, ev.subj, ev.fn, ev.co = t, e.seq, kind, subj, fn, co
	e.enqueue(ev)
	e.Stats.Scheduled++
	if n := e.Pending(); n > e.Stats.MaxPending {
		e.Stats.MaxPending = n
	}
	return Handle{ev, ev.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past (t
// before Now) panics: it would corrupt the timeline, and always indicates a
// bug in the caller. The returned handle may be used to Cancel.
func (e *Engine) At(t Time, kind Kind, fn func()) Handle {
	return e.schedule(t, kind, "", fn, nil)
}

// AtNamed is At with a subject: the dynamic "who" of the event, kept
// separate from the static kind so the hot path never concatenates.
func (e *Engine) AtNamed(t Time, kind Kind, subject string, fn func()) Handle {
	return e.schedule(t, kind, subject, fn, nil)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, kind Kind, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", d, kind))
	}
	return e.schedule(e.now.Add(d), kind, "", fn, nil)
}

// AfterNamed is After with a subject.
func (e *Engine) AfterNamed(d Duration, kind Kind, subject string, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %s:%q", d, subject, kind))
	}
	return e.schedule(e.now.Add(d), kind, subject, fn, nil)
}

// fire removes ev from the queue, advances the clock to its time, recycles
// the record, and runs the callback.
func (e *Engine) fire(ev *Event) {
	e.dequeue(ev)
	e.now = ev.t
	fn, co := ev.fn, ev.co
	// Recycle before firing: during its own callback the event is already
	// "fired", so its handles are inert and its record reusable.
	e.release(ev)
	e.Stats.Events++
	if co != nil {
		co.dispatch()
	} else {
		fn()
	}
}

// elide consumes ev — a pending resume for the currently running coroutine —
// without a physical hand-off, provided ev is the next event in the total
// order and fires within the current drive call's ceiling. The queue
// traversal (the same peek that mutates wheel windows), the clock advance,
// the record recycling, and the counters are exactly those of the parked
// path; only the two goroutine rendezvous disappear. Reports whether the
// event was consumed.
func (e *Engine) elide(ev *Event, c *Coroutine) bool {
	if e.DisableElision || ev.t > e.limit || e.peek() != ev {
		return false
	}
	e.dequeue(ev)
	e.now = ev.t
	e.release(ev)
	e.Stats.Events++
	e.Stats.LogicalResumes++
	c.resumeScheduled = false
	return true
}

// maxTime is the fire ceiling of an unbounded Run call.
const maxTime = Time(1<<63 - 1)

// Step fires the next event, advancing the clock to its time. It reports
// false when the queue is empty.
func (e *Engine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	e.limit = ev.t
	e.fire(ev)
	return true
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	e.limit = maxTime
	for {
		ev := e.peek()
		if ev == nil {
			return
		}
		e.fire(ev)
	}
}

// RunUntil fires events with time <= t, then sets the clock to t. Events
// scheduled at exactly t do fire.
func (e *Engine) RunUntil(t Time) {
	e.limit = t
	for {
		ev := e.peek()
		if ev == nil || ev.t > t {
			break
		}
		e.fire(ev)
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the clock by d, firing all events in the window.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Close shuts the engine down, unwinding every live coroutine so no
// goroutines leak. After Close the engine must not be used. Close is
// idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	if StatsSink != nil {
		StatsSink(e.label, e.metrics)
	}
	e.closed = true
	for c := range e.live {
		c.kill()
	}
	// Invalidate outstanding handles to still-queued events before dropping
	// the queue, so a stale Cancel after Close stays inert.
	for s := range e.wh.l0 {
		for ev := e.wh.l0[s].head; ev != nil; ev = ev.next {
			ev.loc = locNone
			ev.gen++
		}
	}
	for s := range e.wh.l1 {
		for ev := e.wh.l1[s].head; ev != nil; ev = ev.next {
			ev.loc = locNone
			ev.gen++
		}
	}
	for _, ev := range e.pq {
		ev.loc = locNone
		ev.index = -1
		ev.gen++
	}
	e.wh.reset()
	e.pq = nil
	e.free = nil
}
