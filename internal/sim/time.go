// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and a priority queue of events. Simulated
// code runs either as plain event callbacks or inside coroutines: goroutines
// with strict hand-off, of which exactly one executes at any instant. All
// scheduling decisions in the layers above (machine, kernel, thread systems)
// are expressed as events on this engine, which makes every experiment
// reproducible bit-for-bit.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute virtual time in nanoseconds since the start of the
// simulation. The paper reports latencies in microseconds; helpers below
// convert. Time is int64 so arithmetic matches time.Duration.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = time.Duration

// Convenient constructors mirroring the units used throughout the paper.
const (
	Microsecond Duration = time.Microsecond
	Millisecond Duration = time.Millisecond
	Second      Duration = time.Second
)

// Us returns a Duration of n microseconds.
func Us(n float64) Duration { return Duration(n * float64(time.Microsecond)) }

// Ms returns a Duration of n milliseconds.
func Ms(n float64) Duration { return Duration(n * float64(time.Millisecond)) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Us reports t as fractional microseconds.
func (t Time) Us() float64 { return float64(t) / float64(time.Microsecond) }

// Ms reports t as fractional milliseconds.
func (t Time) Ms() float64 { return float64(t) / float64(time.Millisecond) }

// Seconds reports t as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string {
	return fmt.Sprintf("%.3fms", t.Ms())
}

// DurUs reports d as fractional microseconds.
func DurUs(d Duration) float64 { return float64(d) / float64(time.Microsecond) }

// DurMs reports d as fractional milliseconds.
func DurMs(d Duration) float64 { return float64(d) / float64(time.Millisecond) }
