package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// resetWorkload drives one deterministic mini-run on e — a seed-keyed mix of
// scheduling, cancellation, coroutine sleeps, kills, and partial drives —
// and returns a summary of everything the Reset contract promises to rewind:
// the clock, the queue depth, the fired count, and every simulated stat.
// PhysicalSwitches is masked (it is a host observable and legitimately
// varies), as is MaxPending-independent pool state. A warm engine must
// produce the identical summary a fresh engine does.
func resetWorkload(e Engine, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	fired := 0
	var handles []Handle
	for i := 0; i < 40; i++ {
		switch rng.Intn(5) {
		case 0:
			handles = append(handles, e.After(Duration(rng.Intn(5000))*Microsecond, "evt", func() { fired++ }))
		case 1:
			if len(handles) > 0 {
				handles[rng.Intn(len(handles))].Cancel()
			}
		case 2:
			naps := make([]Duration, 1+rng.Intn(3))
			for j := range naps {
				naps[j] = Duration(50+rng.Intn(500)) * Microsecond
			}
			c := e.Go("worker", func(c *Coroutine) {
				for _, d := range naps {
					c.Sleep(d)
				}
			})
			c.Unpark()
		case 3:
			// A coroutine left parked forever: Reset must unwind it.
			c := e.Go("parked", func(c *Coroutine) { c.Park("never woken") })
			if rng.Intn(2) == 0 {
				c.Unpark()
				e.RunFor(Microsecond) // let it reach the park
				if !c.Done() && !c.ResumeScheduled() && rng.Intn(2) == 0 {
					c.Destroy()
				}
			}
		case 4:
			e.RunFor(Duration(rng.Intn(2000)) * Microsecond)
		}
	}
	e.RunFor(10 * Millisecond)
	st := *e.Stats()
	st.PhysicalSwitches = 0
	return fmt.Sprintf("now=%v pending=%d fired=%d stats=%+v", e.Now(), e.Pending(), fired, st)
}

// TestResetLockstepFresh is the engine-level warm/cold oracle: one engine
// Reset between workloads must match, seed by seed, a fresh engine built per
// workload — same clock, same stats (free-list Reuses included: Reset drops
// the list, so warm first-allocations are cold-identical).
func TestResetLockstepFresh(t *testing.T) {
	warm := NewEngine(WithLabel("warm"))
	defer warm.Close()
	for seed := int64(0); seed < 8; seed++ {
		fresh := NewEngine(WithLabel("fresh"))
		want := resetWorkload(fresh, seed)
		fresh.Close()
		warm.Reset(WithLabel("fresh"))
		if got := resetWorkload(warm, seed); got != want {
			t.Fatalf("seed %d: warm engine diverged\nwarm:  %s\nfresh: %s", seed, got, want)
		}
	}
}

// TestResetAfterCoroutinePanic pins that an engine whose drive call unwound
// with *CoroutinePanic is fully recyclable: Reset clears the wreckage and
// the next run is byte-identical to a fresh engine's.
func TestResetAfterCoroutinePanic(t *testing.T) {
	pool := NewPool()
	defer pool.Close()
	warm := pool.NewEngine(WithLabel("warm"))
	defer warm.Close()

	c := warm.Go("bomb", func(c *Coroutine) {
		c.Sleep(Microsecond)
		panic("boom")
	})
	c.Unpark()
	func() {
		defer func() {
			if _, ok := recover().(*CoroutinePanic); !ok {
				t.Fatal("expected *CoroutinePanic")
			}
		}()
		warm.Run()
		t.Fatal("Run returned instead of panicking")
	}()

	fresh := NewEngine(WithLabel("fresh"))
	want := resetWorkload(fresh, 42)
	fresh.Close()
	warm.Reset(WithLabel("fresh"))
	if got := resetWorkload(warm, 42); got != want {
		t.Fatalf("post-panic warm engine diverged\nwarm:  %s\nfresh: %s", got, want)
	}
}

// TestResetTurnsHandlesInert pins the handle contract across Reset: handles
// to events drained by Reset go inert — Cancel reports false and cannot
// touch whatever record the new run put in the old slot.
func TestResetTurnsHandlesInert(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	stale := e.After(Millisecond, "doomed", func() { t.Fatal("drained event fired") })
	c := e.Go("parked", func(c *Coroutine) { c.Park("forever") })
	c.Unpark()
	e.RunFor(Microsecond)

	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("Reset left now=%v pending=%d", e.Now(), e.Pending())
	}
	fired := false
	fresh := e.After(Microsecond, "fresh", func() { fired = true })
	if stale.Cancel() {
		t.Fatal("stale handle cancelled across Reset")
	}
	if !fresh.Active() {
		t.Fatal("stale Cancel removed the new run's event")
	}
	if !c.Done() {
		t.Fatal("live coroutine survived Reset")
	}
	e.Run()
	if !fired {
		t.Fatal("post-Reset event did not fire")
	}
}

// TestDoubleReset pins that resetting an idle engine twice is harmless and
// the engine still runs cold-identically.
func TestDoubleReset(t *testing.T) {
	warm := NewEngine()
	defer warm.Close()
	resetWorkload(warm, 7)
	warm.Reset(WithLabel("fresh"))
	warm.Reset(WithLabel("fresh"))
	fresh := NewEngine(WithLabel("fresh"))
	want := resetWorkload(fresh, 7)
	fresh.Close()
	if got := resetWorkload(warm, 7); got != want {
		t.Fatalf("double-Reset engine diverged\nwarm:  %s\nfresh: %s", got, want)
	}
}

// TestResetPanics pins the rejection cases: Reset on a closed engine, and
// Reset attempting to re-partition (WithLPs / WithLPChannelCap are
// construction-only).
func TestResetPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	closed := NewEngine()
	closed.Close()
	expectPanic("Reset on closed engine", func() { closed.Reset() })

	e := NewEngine()
	defer e.Close()
	expectPanic("Reset with WithLPs", func() { e.Reset(WithLPs(2)) })

	par := NewEngine(WithLPs(2))
	defer par.Close()
	expectPanic("Reset re-partitioning par engine", func() { par.Reset(WithLPs(3)) })
}

// FuzzEngineReset drives a warm engine and a procession of fresh engines in
// lockstep through fuzz-chosen workload seeds — interleaved with coroutine
// panics, double resets, and relabeling — and requires the warm engine's
// summary to match the fresh one's after every segment. This is the fuzz
// face of the tentpole's equivalence contract at the engine layer.
func FuzzEngineReset(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2})
	f.Add(int64(99), []byte{3, 0, 4, 2, 1})
	f.Fuzz(func(t *testing.T, seed int64, plan []byte) {
		if len(plan) > 12 {
			plan = plan[:12]
		}
		pool := NewPool()
		defer pool.Close()
		warm := pool.NewEngine(WithLabel("warm"))
		defer warm.Close()
		for i, op := range plan {
			segSeed := seed + int64(i)
			switch op % 5 {
			case 0, 1, 2: // plain recycled workload
				warm.Reset(WithLabel("seg"))
			case 3: // double reset before the workload
				warm.Reset()
				warm.Reset(WithLabel("seg"))
			case 4: // crash a coroutine, then recycle through the wreckage
				c := warm.Go("bomb", func(c *Coroutine) {
					c.Sleep(Microsecond)
					panic("fuzz boom")
				})
				c.Unpark()
				func() {
					defer func() {
						if _, ok := recover().(*CoroutinePanic); !ok {
							t.Fatal("expected *CoroutinePanic")
						}
					}()
					warm.Run()
				}()
				warm.Reset(WithLabel("seg"))
			}
			fresh := NewEngine(WithLabel("seg"))
			want := resetWorkload(fresh, segSeed)
			fresh.Close()
			if got := resetWorkload(warm, segSeed); got != want {
				t.Fatalf("segment %d (op %d, seed %d): warm engine diverged\nwarm:  %s\nfresh: %s",
					i, op%5, segSeed, got, want)
			}
		}
	})
}
