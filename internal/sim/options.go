package sim

import "fmt"

// Option configures an engine at construction. Engine construction is
// uniform across the harnesses: NewEngine(opts...) and Pool.NewEngine
// (and NewReplayEngine) all accept the same options, so labels, elision
// toggles, close observers, and the PDES partition are fixed before the
// first event is scheduled and the engine carries no mutable configuration
// surface.
type Option func(*config)

type config struct {
	label   string
	noElide bool
	onClose []func(Engine)

	// Conservative PDES engine (par.go). lps == 0 selects the reference
	// sequential engine; the remaining fields only apply when lps > 0.
	lps       int
	lookahead Duration
	affinity  func(kind Kind, subject string) int
	lpChanCap int
}

// WithLabel names the engine for stats output and diagnostics.
func WithLabel(label string) Option {
	return func(c *config) { c.label = label }
}

// WithElision enables or disables the coroutine resume fast path
// (Sleep/InlineCharge consuming the next event in place). Elision is on by
// default; the simulated timeline is identical either way — equivalence
// tests construct one engine of each to pin elided and parked execution to
// the same history.
func WithElision(enabled bool) Option {
	return func(c *config) { c.noElide = !enabled }
}

// OnClose registers fn as a close hook at construction: it runs exactly once
// as the engine shuts down, before coroutines are unwound, with every
// counter final but the registry and label still readable. Equivalent to
// eng.Hooks().OnClose(fn) after construction.
func OnClose(fn func(Engine)) Option {
	return func(c *config) { c.onClose = append(c.onClose, fn) }
}

// WithLPs partitions the engine's event queue across n logical processes and
// selects the conservative PDES engine (par.go): each LP owns a timeline
// driven by its own goroutine, and the driver merges the partitions under
// null-message lower bounds. n == 0 keeps the reference sequential engine,
// so call sites can thread a configurable LP count without branching. The
// simulated timeline — firing order, hook streams, stats, fingerprints — is
// byte-identical for every n.
//
// NewReplayEngine ignores the option: a replay has no queue to partition.
func WithLPs(n int) Option {
	if n < 0 {
		panic(fmt.Sprintf("sim: WithLPs(%d): LP count must be >= 0", n))
	}
	return func(c *config) { c.lps = n }
}

// WithLookahead sets the PDES engine's harvest window: how far past the
// earliest cross-LP bound the driver pulls events driver-side per round
// trip. It is a batching knob, never a correctness one — the null-message
// bounds guarantee order for any positive value. Larger windows mean fewer,
// larger harvests. The default is DefaultLookahead; the experiment harness
// passes the calibrated cost table's minimum cross-CPU charge
// (machine.Costs.CrossLPLookahead), the guaranteed lower bound on cross-LP
// event latency in the simulated machine.
func WithLookahead(d Duration) Option {
	if d <= 0 {
		panic(fmt.Sprintf("sim: WithLookahead(%v): lookahead must be positive", d))
	}
	return func(c *config) { c.lookahead = d }
}

// WithAffinity installs the PDES engine's static routing function: given an
// event's kind and subject, it returns a non-negative affinity token (events
// with equal tokens file into the same LP) or a negative value for events
// whose target LP cannot be statically determined, which route through the
// shared LP 0. fn must be pure. Routing decides only which goroutine files
// the event — never when it fires — so any affinity yields the identical
// timeline; a good one just spreads queue work across LPs.
func WithAffinity(fn func(kind Kind, subject string) int) Option {
	return func(c *config) { c.affinity = fn }
}

// WithLPChannelCap bounds the PDES engine's per-LP command channels. The
// bound is backpressure, not correctness: a full channel blocks the driver
// until the LP drains, it never drops or reorders. Mostly a fuzzing knob —
// the oracle battery shrinks it to force backpressure interleavings.
func WithLPChannelCap(n int) Option {
	if n < 1 {
		panic(fmt.Sprintf("sim: WithLPChannelCap(%d): capacity must be >= 1", n))
	}
	return func(c *config) { c.lpChanCap = n }
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}
