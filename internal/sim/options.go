package sim

// Option configures an engine at construction. Engine construction is
// uniform across the harnesses: NewEngine(opts...) and Pool.NewEngine
// (and NewReplayEngine) all accept the same options, so labels, elision
// toggles, and close observers are fixed before the first event is
// scheduled and the engine carries no mutable configuration surface.
type Option func(*config)

type config struct {
	label   string
	noElide bool
	onClose []func(Engine)
}

// WithLabel names the engine for stats output and diagnostics.
func WithLabel(label string) Option {
	return func(c *config) { c.label = label }
}

// WithElision enables or disables the coroutine resume fast path
// (Sleep/InlineCharge consuming the next event in place). Elision is on by
// default; the simulated timeline is identical either way — equivalence
// tests construct one engine of each to pin elided and parked execution to
// the same history.
func WithElision(enabled bool) Option {
	return func(c *config) { c.noElide = !enabled }
}

// OnClose registers fn as a close hook at construction: it runs exactly once
// as the engine shuts down, before coroutines are unwound, with every
// counter final but the registry and label still readable. Equivalent to
// eng.Hooks().OnClose(fn) after construction.
func OnClose(fn func(Engine)) Option {
	return func(c *config) { c.onClose = append(c.onClose, fn) }
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}
