package sim

import (
	"fmt"
	"testing"
)

// hookEvent is one observed hook invocation, fields copied out of the ctx.
type hookEvent struct {
	pos  HookPos
	t    Time
	seq  uint64
	kind Kind
	subj string
}

// observe registers a copying observer at every hook position and returns
// the shared stream slice pointer.
func observe(e Engine) *[]hookEvent {
	var stream []hookEvent
	out := &stream
	for pos := HookPos(0); pos < numHookPos; pos++ {
		p := pos
		e.Hooks().Register(p, HookFunc(func(ctx *HookCtx) {
			*out = append(*out, hookEvent{p, ctx.Time, ctx.Seq, ctx.Kind, ctx.Subject})
		}))
	}
	return out
}

// filter returns the sub-stream at one position.
func filter(stream []hookEvent, pos HookPos) []hookEvent {
	var out []hookEvent
	for _, h := range stream {
		if h.pos == pos {
			out = append(out, h)
		}
	}
	return out
}

func TestHookRegistrationOrderIsInvocationOrder(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		n := name
		e.Hooks().Register(HookPreFire, HookFunc(func(*HookCtx) {
			order = append(order, n)
		}))
	}
	e.After(Microsecond, "ev", func() {})
	e.Run()
	want := []string{"first", "second", "third"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestHookCtxCarriesEventCoordinates(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	stream := observe(e)
	e.AtNamed(Time(3*Microsecond), "tick", "cpu0", func() {})
	e.Run()

	sched := filter(*stream, HookSchedule)
	if len(sched) != 1 {
		t.Fatalf("%d schedule hooks, want 1", len(sched))
	}
	want := hookEvent{HookSchedule, Time(3 * Microsecond), 1, "tick", "cpu0"}
	if sched[0] != want {
		t.Fatalf("schedule hook = %+v, want %+v", sched[0], want)
	}
	pre := filter(*stream, HookPreFire)
	post := filter(*stream, HookPostFire)
	if len(pre) != 1 || len(post) != 1 {
		t.Fatalf("pre=%d post=%d hooks, want 1 each", len(pre), len(post))
	}
	if pre[0].t != want.t || pre[0].seq != want.seq || pre[0].kind != want.kind || pre[0].subj != want.subj {
		t.Fatalf("pre-fire hook = %+v, want coordinates of %+v", pre[0], want)
	}
	for _, h := range *stream {
		if h.pos != HookClose && h.kind == "" {
			t.Fatalf("non-close hook with empty kind: %+v", h)
		}
	}
}

func TestHookCancelEmitted(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	stream := observe(e)
	h := e.After(Millisecond, "doomed", func() { t.Error("cancelled event fired") })
	if !h.Cancel() {
		t.Fatal("Cancel reported false")
	}
	e.Run()
	canc := filter(*stream, HookCancel)
	if len(canc) != 1 {
		t.Fatalf("%d cancel hooks, want 1", len(canc))
	}
	if canc[0].kind != "doomed" || canc[0].t != Time(Millisecond) {
		t.Fatalf("cancel hook = %+v", canc[0])
	}
	if len(filter(*stream, HookPreFire)) != 0 {
		t.Fatal("cancelled event reached PreFire")
	}
}

func TestCloseHookFiresExactlyOnce(t *testing.T) {
	e := NewEngine()
	calls := 0
	e.Hooks().OnClose(func(closed Engine) {
		if closed != e {
			t.Error("close hook got a different engine")
		}
		calls++
	})
	e.After(Microsecond, "ev", func() {})
	e.Run()
	e.Close()
	e.Close() // idempotent: hook must not re-fire
	if calls != 1 {
		t.Fatalf("close hook ran %d times, want 1", calls)
	}
}

func TestOnCloseOptionRegistersCloseHook(t *testing.T) {
	calls := 0
	e := NewEngine(OnClose(func(Engine) { calls++ }))
	e.Close()
	if calls != 1 {
		t.Fatalf("OnClose option hook ran %d times, want 1", calls)
	}
}

func TestCloseHookSeesFinalState(t *testing.T) {
	var at Time
	var events uint64
	e := NewEngine(WithLabel("probe"), OnClose(func(eng Engine) {
		at = eng.Now()
		events = eng.Stats().Events
		if eng.Label() != "probe" {
			t.Errorf("Label inside close hook = %q", eng.Label())
		}
	}))
	e.After(7*Microsecond, "ev", func() {})
	e.Run()
	e.Close()
	if at != Time(7*Microsecond) {
		t.Fatalf("close hook saw Now=%v, want 7µs", at)
	}
	if events != 1 {
		t.Fatalf("close hook saw Events=%d, want 1", events)
	}
}

// hookScenario drives a workload with sleeps, coroutine unparks, plain
// events, and a cancel — the shapes whose hook emission paths differ
// (queued fire, elided consume, inline charge, cancel).
func hookScenario(e Engine) {
	c := e.Go("worker", func(c *Coroutine) {
		for i := 0; i < 3; i++ {
			c.Sleep(Duration(i+1) * Microsecond)
		}
		c.Park("wait")
		c.Sleep(Microsecond)
	})
	c.Unpark()
	e.After(2*Microsecond, "tick", func() {})
	doomed := e.After(50*Microsecond, "doomed", func() {})
	e.AfterNamed(10*Microsecond, "wake", "worker", func() { c.Unpark() })
	e.RunFor(20 * Microsecond)
	doomed.Cancel()
	e.Run()
}

// TestHookStreamsIdenticalWithElisionOnOff pins the invariant that makes the
// PreFire stream recordable: Schedule, Cancel, and PreFire hook streams are
// identical whether the elision fast path is enabled or not. (PostFire may
// legally interleave differently relative to Schedule for elided resumes.)
func TestHookStreamsIdenticalWithElisionOnOff(t *testing.T) {
	run := func(elide bool) []hookEvent {
		e := NewEngine(WithElision(elide))
		defer e.Close()
		stream := observe(e)
		hookScenario(e)
		return *stream
	}
	on := run(true)
	off := run(false)
	for _, pos := range []HookPos{HookSchedule, HookCancel, HookPreFire} {
		a, b := filter(on, pos), filter(off, pos)
		if len(a) != len(b) {
			t.Fatalf("%v stream length %d (elision on) != %d (off)", pos, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v stream diverges at %d: %+v (on) vs %+v (off)", pos, i, a[i], b[i])
			}
		}
	}
	// The elided run must actually have taken the fast path, or this test
	// proves nothing.
	var withElision, withoutElision uint64
	eOn := NewEngine(WithElision(true))
	hookScenario(eOn)
	withElision = eOn.Stats().PhysicalSwitches
	eOn.Close()
	eOff := NewEngine(WithElision(false))
	hookScenario(eOff)
	withoutElision = eOff.Stats().PhysicalSwitches
	eOff.Close()
	if withElision >= withoutElision {
		t.Fatalf("scenario did not exercise elision: %d physical switches with, %d without", withElision, withoutElision)
	}
}

// TestPostFirePairsWithPreFire pins that every PreFire has a matching
// PostFire with the same coordinates, in both elision modes — only the
// position of PostFire relative to other hooks may shift.
func TestPostFirePairsWithPreFire(t *testing.T) {
	for _, elide := range []bool{true, false} {
		e := NewEngine(WithElision(elide))
		stream := observe(e)
		hookScenario(e)
		e.Close()
		pre, post := filter(*stream, HookPreFire), filter(*stream, HookPostFire)
		if len(pre) != len(post) {
			t.Fatalf("elide=%v: %d PreFire vs %d PostFire hooks", elide, len(pre), len(post))
		}
		seen := map[uint64]int{}
		for _, h := range pre {
			seen[h.seq]++
		}
		for _, h := range post {
			seen[h.seq]--
		}
		for seq, n := range seen {
			if n != 0 {
				t.Fatalf("elide=%v: seq %d fired %+d more PreFire than PostFire", elide, seq, n)
			}
		}
	}
}

// TestHookDispatchDoesNotAllocate gates both sides of the dispatch cost:
// with no hooks registered the whole drive loop must not allocate per event,
// and with copying hooks installed the dispatch itself (reused ctx) must add
// zero allocations.
func TestHookDispatchDoesNotAllocate(t *testing.T) {
	bodies := func(e Engine) {
		for i := 0; i < 100; i++ {
			e.After(Duration(i+1)*Microsecond, "tick", func() {})
		}
		e.Run()
	}
	e := NewEngine()
	defer e.Close()
	bodies(e) // warm the event free list
	if avg := testing.AllocsPerRun(10, func() { bodies(e) }); avg > 0 {
		t.Errorf("no-hook drive loop allocates %.1f/run, want 0", avg)
	}

	eh := NewEngine()
	defer eh.Close()
	var count uint64
	for pos := HookPos(0); pos < numHookPos; pos++ {
		eh.Hooks().Register(pos, HookFunc(func(ctx *HookCtx) { count += uint64(ctx.Seq) }))
	}
	bodies(eh)
	if avg := testing.AllocsPerRun(10, func() { bodies(eh) }); avg > 0 {
		t.Errorf("hooked drive loop allocates %.1f/run, want 0 (reused ctx)", avg)
	}
	_ = count
}

func TestRegisterInvalidPositionPanics(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Register(numHookPos) did not panic")
		}
	}()
	e.Hooks().Register(numHookPos, HookFunc(func(*HookCtx) {}))
}

func TestHookPosStrings(t *testing.T) {
	for pos := HookPos(0); pos < numHookPos; pos++ {
		if s := pos.String(); s == "invalid" || s == "" {
			t.Errorf("HookPos(%d).String() = %q", pos, s)
		}
	}
	if got := fmt.Sprint(numHookPos); got != "invalid" {
		t.Errorf("numHookPos.String() = %q, want invalid", got)
	}
}
