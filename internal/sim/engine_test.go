package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var got []Time
	for _, d := range []Duration{5 * Microsecond, Microsecond, 3 * Microsecond} {
		e.After(d, "ev", func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{Time(Microsecond), Time(3 * Microsecond), Time(5 * Microsecond)}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(Microsecond), "ev", func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending schedule order", got)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	fired := false
	ev := e.After(Microsecond, "ev", func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel() = false on a pending event")
	}
	if ev.Active() {
		t.Fatal("Active() = true after Cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	ev := e.After(Microsecond, "ev", func() {})
	e.Run()
	ev.Cancel() // must not panic
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.After(Millisecond, "ev", func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(Time(Microsecond), "late", func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-Microsecond, "neg", func() {})
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 100 {
			e.After(Microsecond, "chain", chain)
		}
	}
	e.After(Microsecond, "chain", chain)
	e.Run()
	if depth != 100 {
		t.Fatalf("chain depth = %d, want 100", depth)
	}
	if e.Now() != Time(100*Microsecond) {
		t.Fatalf("Now() = %v, want 100µs", e.Now())
	}
}

func TestRunUntilStopsAtBoundaryInclusive(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var fired []Time
	for us := 1; us <= 10; us++ {
		e.At(Time(us)*Time(Microsecond), "ev", func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(Time(5 * Microsecond))
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5 (boundary inclusive)", len(fired))
	}
	if e.Now() != Time(5*Microsecond) {
		t.Fatalf("Now() = %v, want 5µs", e.Now())
	}
	e.Run()
	if len(fired) != 10 {
		t.Fatalf("fired %d events total, want 10", len(fired))
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.RunUntil(Time(Second))
	if e.Now() != Time(Second) {
		t.Fatalf("Now() = %v, want 1s", e.Now())
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.RunUntil(Time(Millisecond))
	e.RunFor(2 * Millisecond)
	if e.Now() != Time(3*Millisecond) {
		t.Fatalf("Now() = %v, want 3ms", e.Now())
	}
}

// Property: for any multiset of (delay, id) pairs, events fire sorted by
// delay, with ties in insertion order.
func TestEventOrderingProperty(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) > 200 {
			delaysRaw = delaysRaw[:200]
		}
		e := NewEngine()
		defer e.Close()
		type rec struct {
			t   Time
			seq int
		}
		var got []rec
		for i, d := range delaysRaw {
			i := i
			e.After(Duration(d)*Microsecond, "ev", func() {
				got = append(got, rec{e.Now(), i})
			})
		}
		e.Run()
		if len(got) != len(delaysRaw) {
			return false
		}
		ordered := sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].t != got[j].t {
				return got[i].t < got[j].t
			}
			return got[i].seq < got[j].seq
		})
		return ordered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset prevents exactly that subset.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		defer e.Close()
		count := int(n%64) + 1
		fired := make([]bool, count)
		events := make([]Handle, count)
		for i := 0; i < count; i++ {
			i := i
			events[i] = e.After(Duration(rng.Intn(100))*Microsecond, "ev", func() { fired[i] = true })
		}
		cancelled := make([]bool, count)
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				events[i].Cancel()
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < count; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		defer e.Close()
		var log []Time
		rng := rand.New(rand.NewSource(42))
		var spawn func()
		spawn = func() {
			log = append(log, e.Now())
			if len(log) < 500 {
				e.After(Duration(rng.Intn(50)+1)*Microsecond, "ev", spawn)
				if rng.Intn(3) == 0 {
					ev := e.After(Duration(rng.Intn(50)+1)*Microsecond, "maybe", func() { log = append(log, e.Now()) })
					if rng.Intn(2) == 0 {
						ev.Cancel()
					}
				}
			}
		}
		e.After(Microsecond, "start", spawn)
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	e := NewEngine()
	e.After(Microsecond, "ev", func() {})
	e.Close()
	e.Close()
}

func TestStatsCountEvents(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	for i := 0; i < 7; i++ {
		e.After(Duration(i+1)*Microsecond, "ev", func() {})
	}
	e.Run()
	if e.Stats().Events != 7 {
		t.Fatalf("Stats.Events = %d, want 7", e.Stats().Events)
	}
}

// Regression: Pending must not count cancelled events. The pre-indexed-heap
// engine left tombstones in the queue, so cancelling inflated Pending until
// the tombstone's time was reached.
func TestPendingExactAfterCancel(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var evs []Handle
	for i := 0; i < 10; i++ {
		evs = append(evs, e.After(Duration(i+1)*Microsecond, "ev", func() {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending() = %d, want 10", e.Pending())
	}
	for _, i := range []int{1, 3, 5, 9} {
		evs[i].Cancel()
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending() = %d after cancelling 4 of 10, want exactly 6", e.Pending())
	}
	evs[1].Cancel() // double cancel must not double-remove
	if e.Pending() != 6 {
		t.Fatalf("Pending() = %d after double Cancel, want 6", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Run, want 0", e.Pending())
	}
}

// A stale handle must stay inert once its event record has been recycled
// for an unrelated later event: cancelling through it must not touch the
// new occupant.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	first := e.After(Microsecond, "first", func() {})
	e.Run() // fires and recycles the record
	fired := false
	fresh := e.After(Microsecond, "second", func() { fired = true })
	if first.Cancel() {
		t.Fatal("stale Cancel reported success")
	}
	if !fresh.Active() {
		t.Fatal("stale Cancel removed the recycled event's new occupant")
	}
	e.Run()
	if !fired {
		t.Fatal("second event did not fire")
	}
}

// The schedule/fire hot path must be allocation-free in steady state: event
// records come off the free list and carry no formatted names.
func TestHotPathAllocationFree(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	fn := func() {}
	for i := 0; i < 100; i++ { // warm the pool and the heap slice
		e.After(Microsecond, "warm", fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(Microsecond, "hot", fn)
		e.Step()
	})
	if allocs > 0 {
		t.Fatalf("schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
	cancels := testing.AllocsPerRun(1000, func() {
		ev := e.After(Microsecond, "doomed", fn)
		ev.Cancel()
	})
	if cancels > 0 {
		t.Fatalf("schedule+cancel allocates %.1f objects/op, want 0", cancels)
	}
	if e.Stats().Reuses == 0 {
		t.Fatal("free list never reused an event record")
	}
}

// Property: any interleaving of At/After/Cancel fires the surviving events
// in (time, seq) order, Pending is exact at every step, and no tombstones
// leak (the queue is empty when Run returns).
func TestRandomScheduleCancelProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		defer e.Close()
		type rec struct {
			t   Time
			seq int
		}
		var fired []rec
		live := 0
		var handles []Handle
		ops := int(n)%150 + 20
		for i := 0; i < ops; i++ {
			switch rng.Intn(3) {
			case 0:
				i := i
				handles = append(handles, e.After(Duration(rng.Intn(40))*Microsecond, "at", func() {
					fired = append(fired, rec{e.Now(), i})
				}))
				live++
			case 1:
				i := i
				handles = append(handles, e.At(e.Now().Add(Duration(rng.Intn(40))*Microsecond), "after", func() {
					fired = append(fired, rec{e.Now(), i})
				}))
				live++
			case 2:
				if len(handles) > 0 {
					if handles[rng.Intn(len(handles))].Cancel() {
						live--
					}
				}
			}
			if e.Pending() != live {
				t.Logf("Pending() = %d, want %d live", e.Pending(), live)
				return false
			}
		}
		e.Run()
		if len(fired) != live {
			t.Logf("fired %d events, want %d", len(fired), live)
			return false
		}
		if e.Pending() != 0 {
			t.Logf("Pending() = %d after Run (tombstone leak)", e.Pending())
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].t != fired[j].t {
				return fired[i].t < fired[j].t
			}
			return fired[i].seq < fired[j].seq
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
