package sim

import (
	"math/rand"
	"testing"
)

// oracleQueue is the reference model the timing wheel is tested against: the
// indexed binary heap that used to be the engine's entire event queue, holding
// bare records ordered by the same (time, seq) rule. Whatever program the
// engine runs, the oracle runs too, and every observable — fire order, fire
// times, Pending — must match exactly.
type oracleQueue struct {
	heap eventHeap
	live map[uint64]*Event // seq -> record still queued
}

func newOracle() *oracleQueue {
	return &oracleQueue{live: make(map[uint64]*Event)}
}

func (o *oracleQueue) schedule(t Time, seq uint64) {
	rec := &Event{t: t, seq: seq}
	o.heap.push(rec)
	o.live[seq] = rec
}

// cancel mirrors a successful Handle.Cancel. The caller only invokes it when
// the engine reported the cancel landed, so the record must still be queued.
func (o *oracleQueue) cancel(seq uint64) bool {
	rec, ok := o.live[seq]
	if !ok {
		return false
	}
	o.heap.remove(rec)
	delete(o.live, seq)
	return true
}

func (o *oracleQueue) pop() *Event {
	rec := o.heap.pop()
	delete(o.live, rec.seq)
	return rec
}

func (o *oracleQueue) pending() int { return len(o.heap) }

// wheelVsOracle drives the engine and the heap oracle in lockstep through one
// schedule/cancel/step program and fails the test on the first divergence:
// a fired event whose (time, seq) is not the oracle's minimum, or a Pending
// count that disagrees after any operation.
//
// Durations span three regimes on purpose: sub-tick (many events per L0
// slot), mid-range (L0/L1 cascades), and far-future jumps past the wheel
// horizon (~67ms) that exercise the overflow heap and the window advance —
// including the behind-window path where a schedule lands below a window
// that already jumped ahead over idle time.
//
// opts select the engine under test; the PDES oracle runs pass WithLPs and
// friends so the partitioned queue faces the same programs as the reference.
func wheelVsOracle(t *testing.T, next func() (op byte, arg int), opts ...Option) {
	t.Helper()
	e := NewEngine(opts...)
	defer e.Close()
	o := newOracle()

	type firing struct {
		t   Time
		seq uint64
	}
	var fired []firing
	var handles []Handle
	var seqs []uint64 // seqs[i] is the engine seq of handles[i]
	var seq uint64    // mirrors the engine's scheduling counter

	// delay maps an op argument onto the three regimes.
	delay := func(arg int) Duration {
		switch arg % 8 {
		case 0, 1, 2, 3: // sub-tick to a few ticks
			return Duration(arg % 3000)
		case 4, 5: // within the L0/L1 window
			return Duration(arg%500) * Microsecond
		case 6: // around and beyond the L1 horizon
			return Duration(arg%100) * Millisecond
		default: // far overflow
			return Duration(arg%4) * Second
		}
	}

	check := func() {
		if got, want := e.Pending(), o.pending(); got != want {
			t.Fatalf("Pending() = %d, oracle has %d live events", got, want)
		}
	}

	for i := 0; i < 4096; i++ {
		op, arg := next()
		if op == 0xff {
			break
		}
		switch op % 4 {
		case 0, 1: // schedule (After covers At: both land at Now+delta)
			id := seq
			seq++
			h := e.After(delay(arg), "oracle-fuzz", func() {
				fired = append(fired, firing{e.Now(), id})
			})
			handles = append(handles, h)
			seqs = append(seqs, id)
			o.schedule(h.Time(), id)
		case 2: // cancel an arbitrary, possibly stale, handle
			if len(handles) == 0 {
				continue
			}
			j := arg % len(handles)
			got := handles[j].Cancel()
			want := o.cancel(seqs[j])
			if got != want {
				t.Fatalf("Cancel(handle %d) = %v, oracle says %v", j, got, want)
			}
		case 3: // step: engine fires its minimum, oracle must agree
			if o.pending() == 0 {
				if e.Step() {
					t.Fatal("Step() fired an event the oracle does not have")
				}
				continue
			}
			want := o.pop()
			before := len(fired)
			if !e.Step() {
				t.Fatalf("Step() fired nothing; oracle expects (t=%d, seq=%d)", want.t, want.seq)
			}
			if len(fired) != before+1 {
				t.Fatalf("Step() fired %d events, want 1", len(fired)-before)
			}
			got := fired[len(fired)-1]
			if got.t != want.t || got.seq != want.seq {
				t.Fatalf("Step() fired (t=%d, seq=%d), oracle expects (t=%d, seq=%d)",
					got.t, got.seq, want.t, want.seq)
			}
		}
		check()
	}

	// Drain: every remaining event must come out in the oracle's order.
	for o.pending() > 0 {
		want := o.pop()
		if !e.Step() {
			t.Fatalf("drain: Step() fired nothing; oracle expects (t=%d, seq=%d)", want.t, want.seq)
		}
		got := fired[len(fired)-1]
		if got.t != want.t || got.seq != want.seq {
			t.Fatalf("drain: fired (t=%d, seq=%d), oracle expects (t=%d, seq=%d)",
				got.t, got.seq, want.t, want.seq)
		}
		check()
	}
	if e.Step() {
		t.Fatal("engine fired an event after the oracle drained")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after full drain, want 0", e.Pending())
	}
}

// TestWheelMatchesHeapOracle is the deterministic property test: long random
// programs over several seeds, biased toward schedules so the queue grows
// deep enough to cascade through both wheel levels and the overflow heap.
func TestWheelMatchesHeapOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42, 1991} {
		rng := rand.New(rand.NewSource(seed))
		n := 0
		wheelVsOracle(t, func() (byte, int) {
			n++
			if n > 3000 {
				return 0xff, 0
			}
			// 2:1:1 schedule : cancel : step keeps a deep queue.
			op := []byte{0, 1, 2, 3}[rng.Intn(4)]
			return op, rng.Intn(1 << 20)
		})
	}
}

// TestWheelOracleIdleJump pins the behind-window regression case explicitly:
// fire a far-future event so the wheel window jumps over a long idle gap,
// then schedule short-delay events that land behind or near the new window
// base and interleave them with cancels.
func TestWheelOracleIdleJump(t *testing.T) {
	script := []struct {
		op  byte
		arg int
	}{
		{0, 7},    // far overflow (seconds out)
		{3, 0},    // fire it: now and the window jump far ahead
		{0, 0},    // sub-tick events right at the new now
		{0, 1},    //
		{0, 14},   // a few hundred µs out (back in the wheel)
		{2, 2},    // cancel one of them
		{3, 0},    // fire
		{0, 6},    // tens of ms (L1)
		{0, 15},   // seconds again
		{3, 0},    // fire through the L1 cascade
		{3, 0},    //
		{2, 0},    // stale cancel (already fired)
		{0xff, 0}, // drain the rest in wheelVsOracle's tail loop
	}
	i := 0
	wheelVsOracle(t, func() (byte, int) {
		if i >= len(script) {
			return 0xff, 0
		}
		s := script[i]
		i++
		return s.op, s.arg
	})
}

// parOracleOpts is a PDES configuration tuned for maximum protocol traffic
// in tests: a round-robin affinity scatters consecutive schedules across
// every LP, and small channels plus short lookahead force frequent, tiny
// harvests with backpressure. The counter makes the affinity stateful, which
// is fine here: routing never affects the timeline, and the counter is still
// deterministic for a deterministic program.
func parOracleOpts(lps, chanCap int, lookahead Duration) []Option {
	n := 0
	return []Option{
		WithLPs(lps), WithLPChannelCap(chanCap), WithLookahead(lookahead),
		WithAffinity(func(Kind, string) int { n++; return n }),
	}
}

// TestParMatchesHeapOracle runs the PDES engine against the heap oracle over
// the same random programs as the reference test, across a grid of partition
// shapes: the degenerate single (shared) LP, tiny channels with sub-tick
// lookahead, and a wide partition with a window far beyond the batch sizes.
func TestParMatchesHeapOracle(t *testing.T) {
	configs := []struct {
		name      string
		lps, cap  int
		lookahead Duration
	}{
		{"1lp", 1, 1, Microsecond},
		{"2lp-tight", 2, 1, Microsecond},
		{"4lp", 4, 8, 50 * Microsecond},
		{"4lp-wide", 4, 256, 10 * Millisecond},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 1991} {
				rng := rand.New(rand.NewSource(seed))
				n := 0
				wheelVsOracle(t, func() (byte, int) {
					n++
					if n > 2000 {
						return 0xff, 0
					}
					op := []byte{0, 1, 2, 3}[rng.Intn(4)]
					return op, rng.Intn(1 << 20)
				}, parOracleOpts(cfg.lps, cfg.cap, cfg.lookahead)...)
			}
		})
	}
}

// FuzzWheelVsHeapOracle lets the fuzzer search for any schedule/cancel/step
// interleaving where the timing wheel diverges from the heap it replaced.
func FuzzWheelVsHeapOracle(f *testing.F) {
	f.Add([]byte{0, 10, 0, 200, 3, 0, 2, 0, 1, 255, 3, 0})
	f.Add([]byte{0, 7, 3, 0, 0, 0, 0, 1, 2, 2, 3, 0})
	f.Add([]byte{0, 6, 0, 6, 0, 6, 3, 0, 3, 0, 3, 0})
	f.Fuzz(func(t *testing.T, program []byte) {
		pc := 0
		wheelVsOracle(t, func() (byte, int) {
			if pc+1 >= len(program) {
				return 0xff, 0
			}
			op, arg := program[pc], program[pc+1]
			pc += 2
			// Stretch the one-byte arg so all three delay regimes and deep
			// handle indices stay reachable from fuzzer inputs.
			return op, int(arg) * 4111
		})
	})
}
