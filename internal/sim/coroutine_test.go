package sim

import (
	"testing"
)

func TestCoroutineDoesNotStartUntilUnpark(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	started := false
	c := e.Go("c", func(*Coroutine) { started = true })
	e.RunUntil(Time(Millisecond))
	if started {
		t.Fatal("coroutine ran before Unpark")
	}
	if !c.Parked() {
		t.Fatal("unstarted coroutine should report Parked")
	}
	c.Unpark()
	e.Run()
	if !started {
		t.Fatal("coroutine did not run after Unpark")
	}
	if !c.Done() {
		t.Fatal("coroutine should be Done after body returns")
	}
}

func TestParkUnparkRoundTrip(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var trace []string
	c := e.Go("worker", func(c *Coroutine) {
		trace = append(trace, "start")
		c.Park("waiting")
		trace = append(trace, "resumed")
	})
	c.Unpark()
	e.Run()
	if len(trace) != 1 || trace[0] != "start" {
		t.Fatalf("trace = %v, want [start] while parked", trace)
	}
	if got := c.ParkReason(); got != "waiting" {
		t.Fatalf("ParkReason = %q, want %q", got, "waiting")
	}
	c.Unpark()
	e.Run()
	if len(trace) != 2 || trace[1] != "resumed" {
		t.Fatalf("trace = %v, want [start resumed]", trace)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var woke Time
	c := e.Go("sleeper", func(c *Coroutine) {
		c.Sleep(5 * Millisecond)
		woke = e.Now()
	})
	c.Unpark()
	e.Run()
	if woke != Time(5*Millisecond) {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
}

func TestStrictHandoffOnlyOneRuns(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	inBody := 0
	max := 0
	for i := 0; i < 8; i++ {
		c := e.Go("c", func(c *Coroutine) {
			for j := 0; j < 5; j++ {
				inBody++
				if inBody > max {
					max = inBody
				}
				inBody--
				c.Sleep(Microsecond)
			}
		})
		c.Unpark()
	}
	e.Run()
	if max != 1 {
		t.Fatalf("max concurrent coroutine bodies = %d, want 1 (strict hand-off)", max)
	}
}

func TestCurrentTracksExecutingCoroutine(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var sawSelf, sawNilInEvent bool
	c := e.Go("c", func(c *Coroutine) {
		sawSelf = e.Current() == c
	})
	e.After(Microsecond, "ev", func() {
		sawNilInEvent = e.Current() == nil
	})
	c.Unpark()
	e.Run()
	if !sawSelf {
		t.Error("Current() inside coroutine body was not the coroutine")
	}
	if !sawNilInEvent {
		t.Error("Current() inside plain event was not nil")
	}
}

func TestDoubleUnparkPanics(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	c := e.Go("c", func(c *Coroutine) { c.Park("x") })
	c.Unpark()
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpark did not panic")
		}
	}()
	c.Unpark()
}

func TestUnparkFinishedCoroutinePanics(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	c := e.Go("c", func(*Coroutine) {})
	c.Unpark()
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Unpark on finished coroutine did not panic")
		}
	}()
	c.Unpark()
}

func TestParkFromOutsidePanics(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	c := e.Go("c", func(c *Coroutine) { c.Park("x") })
	c.Unpark()
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Park from outside the coroutine did not panic")
		}
	}()
	c.Park("bogus")
}

func TestCloseUnwindsParkedCoroutines(t *testing.T) {
	e := NewEngine()
	cleaned := false
	c := e.Go("c", func(c *Coroutine) {
		defer func() { cleaned = true }()
		c.Park("forever")
	})
	c.Unpark()
	e.Run()
	if !c.Parked() {
		t.Fatal("coroutine should be parked")
	}
	e.Close()
	if !cleaned {
		t.Fatal("Close did not unwind the parked coroutine (defer did not run)")
	}
	if !c.Done() {
		t.Fatal("killed coroutine should be Done")
	}
}

func TestCloseUnwindsNeverStartedCoroutines(t *testing.T) {
	e := NewEngine()
	c := e.Go("c", func(*Coroutine) { t.Error("body must not run") })
	e.Close()
	if !c.Done() {
		t.Fatal("never-started coroutine should be Done after Close")
	}
}

func TestUnparkAtFutureTime(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var ran Time
	c := e.Go("c", func(c *Coroutine) { ran = e.Now() })
	c.UnparkAt(Time(7 * Millisecond))
	e.Run()
	if ran != Time(7*Millisecond) {
		t.Fatalf("ran at %v, want 7ms", ran)
	}
}

func TestCoroutinePingPongDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		defer e.Close()
		var log []string
		var a, b *Coroutine
		a = e.Go("a", func(c *Coroutine) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				b.Unpark()
				c.Park("pong")
			}
		})
		b = e.Go("b", func(c *Coroutine) {
			for i := 0; i < 3; i++ {
				c.Park("ping")
				log = append(log, "b")
				if i < 2 {
					a.Unpark()
				}
			}
		})
		b.Unpark() // b starts first and parks waiting for a
		a.Unpark()
		e.Run()
		return log
	}
	first := run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(first) != len(want) {
		t.Fatalf("log = %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("log = %v, want %v", first, want)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("ping-pong not deterministic across runs")
		}
	}
}

func TestManyCoroutinesNoLeak(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		c := e.Go("c", func(c *Coroutine) {
			c.Sleep(Duration(i%10+1) * Microsecond)
		})
		c.Unpark()
	}
	e.Run()
	e.Close()
	if n := len(e.base().live); n != 0 {
		t.Fatalf("%d live coroutines after Run+Close, want 0", n)
	}
}
