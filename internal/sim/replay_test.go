package sim

import (
	"strings"
	"testing"
)

// replayScenario is a small mixed workload: timers, coroutine sleeps
// (elidable), a cross-coroutine unpark, and a cancel.
func replayScenario(e Engine) (fired *[]string) {
	var log []string
	c := e.Go("worker", func(c *Coroutine) {
		for i := 0; i < 3; i++ {
			c.Sleep(3 * Microsecond)
			log = append(log, "wake")
		}
		c.Park("wait")
		log = append(log, "unparked")
	})
	c.Unpark()
	e.After(5*Microsecond, "tick", func() { log = append(log, "tick") })
	doomed := e.After(40*Microsecond, "doomed", func() { log = append(log, "doomed") })
	e.After(20*Microsecond, "wake-worker", func() { c.Unpark() })
	e.RunFor(25 * Microsecond)
	doomed.Cancel()
	e.Run()
	return &log
}

// record runs scenario on a fresh reference engine and returns the recording
// plus the reference log.
func recordScenario(t *testing.T, opts ...Option) (*Recording, []string) {
	t.Helper()
	e := NewEngine(opts...)
	rec := Record(e)
	log := replayScenario(e)
	e.Close()
	return rec.Recording(), *log
}

func TestReplayReproducesTimelineAndLog(t *testing.T) {
	rec, refLog := recordScenario(t)
	if rec.Len() == 0 {
		t.Fatal("empty recording")
	}
	e := NewReplayEngine(rec)
	defer e.Close()
	log := replayScenario(e)
	if strings.Join(*log, ",") != strings.Join(refLog, ",") {
		t.Fatalf("replay log %v != reference %v", *log, refLog)
	}
	if got, want := e.(*ReplayEngine).Replayed(), rec.Len(); got != want {
		t.Fatalf("Replayed() = %d, want the full tape (%d)", got, want)
	}
}

// TestReplayStatsMatchReference pins that every deterministic counter —
// including the recording-adopted Overflows — matches the recorded run.
func TestReplayStatsMatchReference(t *testing.T) {
	ref := NewEngine()
	rec := Record(ref)
	replayScenario(ref)
	want := *ref.Stats()
	ref.Close()

	e := NewReplayEngine(rec.Recording())
	replayScenario(e)
	got := *e.Stats()
	e.Close()
	got.PhysicalSwitches = 0
	want.PhysicalSwitches = 0 // host-side; legitimately varies
	if got != want {
		t.Fatalf("replay stats %+v != reference %+v", got, want)
	}
}

// TestReplayAcrossElisionModes pins the core recordability claim from
// hooks.go: the PreFire stream is the same with elision on or off, so a
// recording captured in either mode replays in either mode.
func TestReplayAcrossElisionModes(t *testing.T) {
	for _, recorded := range []bool{true, false} {
		for _, replayed := range []bool{true, false} {
			rec, refLog := recordScenario(t, WithElision(recorded))
			e := NewReplayEngine(rec, WithElision(replayed))
			log := replayScenario(e)
			e.Close()
			if strings.Join(*log, ",") != strings.Join(refLog, ",") {
				t.Fatalf("recorded elision=%v replayed elision=%v: log %v != %v",
					recorded, replayed, *log, refLog)
			}
		}
	}
}

func TestReplayOfPooledRun(t *testing.T) {
	p := NewPool()
	defer p.Close()
	ref := p.NewEngine()
	rec := Record(ref)
	refLog := replayScenario(ref)
	ref.Close()

	e := NewReplayEngine(rec.Recording())
	log := replayScenario(e)
	e.Close()
	if strings.Join(*log, ",") != strings.Join(*refLog, ",") {
		t.Fatalf("replay of pooled run: log %v != %v", *log, *refLog)
	}
}

// TestReplayDivergencePanics pins the auditor role: a workload that
// schedules something the recording never fired dies loudly at the first
// divergent firing, not with a silently different timeline.
func TestReplayDivergencePanics(t *testing.T) {
	ref := NewEngine()
	rec := Record(ref)
	ref.After(Microsecond, "a", func() {})
	ref.After(2*Microsecond, "b", func() {})
	ref.Run()
	ref.Close()

	e := NewReplayEngine(rec.Recording())
	defer e.Close()
	// Same coordinates as "a" but a different kind: head verification fails.
	e.After(Microsecond, "mutated", func() {})
	e.After(2*Microsecond, "b", func() {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("divergent replay did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "replay diverged") {
			t.Fatalf("panic = %v, want a replay-divergence message", r)
		}
	}()
	e.Run()
}

func TestReplayMissingEventPanics(t *testing.T) {
	ref := NewEngine()
	rec := Record(ref)
	ref.After(Microsecond, "a", func() {})
	ref.Run()
	ref.Close()

	e := NewReplayEngine(rec.Recording())
	defer e.Close()
	// The replayed run never schedules anything: the tape's event is missing.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("replay with a missing event did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "no such event queued") {
			t.Fatalf("panic = %v, want a missing-event message", r)
		}
	}()
	e.Run()
}

// TestReplayDrivenPastRecordingPanics pins the other edge: a workload that
// schedules more than the recording fired cannot silently stall — driving
// past the tape's end with due events queued panics.
func TestReplayDrivenPastRecordingPanics(t *testing.T) {
	ref := NewEngine()
	rec := Record(ref)
	ref.After(Microsecond, "a", func() {})
	ref.Run()
	ref.Close()

	e := NewReplayEngine(rec.Recording())
	defer e.Close()
	e.After(Microsecond, "a", func() {})
	e.After(2*Microsecond, "extra", func() {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("replay driven past its recording did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "past the end of its recording") {
			t.Fatalf("panic = %v, want a past-the-end message", r)
		}
	}()
	e.Run()
}

// TestRecordingSurvivesEngineClose pins that a Recording is inert data: the
// recorded engine can be long gone and the tape still seeds replays.
func TestRecordingSurvivesEngineClose(t *testing.T) {
	rec, refLog := recordScenario(t)
	for i := 0; i < 2; i++ {
		e := NewReplayEngine(rec)
		log := replayScenario(e)
		e.Close()
		if strings.Join(*log, ",") != strings.Join(refLog, ",") {
			t.Fatalf("replay %d diverged: %v != %v", i, *log, refLog)
		}
	}
}

// TestReplayAdoptsOverflowCount pins the one adopted statistic: overflow
// placement is a property of the reference queue, so the replay engine
// reports the recording's count rather than zero.
func TestReplayAdoptsOverflowCount(t *testing.T) {
	ref := NewEngine()
	rec := Record(ref)
	// Far-future events overflow the timing wheel's horizon into the heap.
	for i := 0; i < 8; i++ {
		ref.After(Duration(i+1)*10*Second, "far", func() {})
	}
	ref.Run()
	refOverflows := ref.Stats().Overflows
	ref.Close()
	if refOverflows == 0 {
		t.Fatal("scenario did not overflow the wheel; test proves nothing")
	}
	e := NewReplayEngine(rec.Recording())
	defer e.Close()
	for i := 0; i < 8; i++ {
		e.After(Duration(i+1)*10*Second, "far", func() {})
	}
	e.Run()
	if got := e.Stats().Overflows; got != refOverflows {
		t.Fatalf("replay Overflows = %d, want the recording's %d", got, refOverflows)
	}
}
