package sim

// HookPos identifies one of the engine's fixed hook points. Hooks are the
// engine's only extension seam: every cross-cutting observer — stats sinks,
// fingerprint folding, the record/replay recorder — registers at one of
// these positions instead of being wired into the engine structurally.
//
// The taxonomy (see DESIGN.md §6):
//
//   - HookSchedule: an event was accepted into the queue. Fires after the
//     engine assigned the (time, seq) coordinates and counted the schedule.
//   - HookCancel: a queued event was removed without firing (Handle.Cancel).
//   - HookPreFire: an event is about to run. Fires after the clock advanced
//     to the event's time and the record was recycled, immediately before
//     the callback (or coroutine dispatch) executes. The PreFire stream is
//     the engine's canonical fired-event history: it is the same (time, seq)
//     sequence whether elision is on or off, which is what makes it safe to
//     record and replay.
//   - HookPostFire: the event's callback returned — or, for a dispatched
//     coroutine, the coroutine parked again. For an elided (consumed
//     in-place) resume PostFire fires immediately after PreFire, before the
//     resumed body continues; consequently the PostFire stream's position
//     relative to Schedule events may differ between elided and non-elided
//     execution, while Schedule/Cancel/PreFire streams are identical.
//   - HookClose: the engine is shutting down. Fires exactly once, before
//     live coroutines are unwound, so every counter is final but the
//     registry, label, and clock are still readable. Ctx.Time is the final
//     virtual time; Kind and Subject are empty.
type HookPos uint8

const (
	HookSchedule HookPos = iota
	HookCancel
	HookPreFire
	HookPostFire
	HookClose

	numHookPos
)

// String names the position for diagnostics.
func (p HookPos) String() string {
	switch p {
	case HookSchedule:
		return "schedule"
	case HookCancel:
		return "cancel"
	case HookPreFire:
		return "pre-fire"
	case HookPostFire:
		return "post-fire"
	case HookClose:
		return "close"
	}
	return "invalid"
}

// HookCtx carries one hook invocation's context. The engine reuses a single
// HookCtx per registry, so hooks must not retain the pointer past the call;
// copy the fields out instead.
type HookCtx struct {
	Engine  Engine  // the engine that fired the hook
	Pos     HookPos // which hook point fired
	Time    Time    // the event's time (HookClose: the final clock)
	Seq     uint64  // the event's sequence number (HookClose: last assigned)
	Kind    Kind    // the event's kind (HookClose: empty)
	Subject string  // the event's subject (HookClose: empty)
}

// Hook observes one hook point. Implementations must not call back into the
// engine's scheduling or drive API from inside Fire — hooks observe the
// timeline, they do not participate in it — and must not retain ctx.
type Hook interface {
	Fire(ctx *HookCtx)
}

// HookFunc adapts a plain function to the Hook interface.
type HookFunc func(ctx *HookCtx)

// Fire implements Hook.
func (f HookFunc) Fire(ctx *HookCtx) { f(ctx) }

// Hooks is an engine's typed hook registry. Registration order is invocation
// order within a position. The registry is confined to the engine goroutine,
// like the engine itself.
//
// Dispatch is built to cost nothing when unused: each hot-path site checks a
// per-position bit in a one-byte mask (no call, no allocation) and only then
// builds the context — which is a reused struct, so even active dispatch
// allocates nothing.
type Hooks struct {
	mask uint8
	at   [numHookPos][]Hook
	ctx  HookCtx
}

// Register adds h at pos, after any hooks already registered there. It must
// not be called from inside a hook invocation.
func (hs *Hooks) Register(pos HookPos, h Hook) {
	if pos >= numHookPos {
		panic("sim: Register on invalid hook position")
	}
	hs.at[pos] = append(hs.at[pos], h)
	hs.mask |= 1 << pos
}

// OnClose registers fn as a close hook: called exactly once as the engine
// shuts down, before coroutines are unwound. Sugar for the common
// stats-sink/fingerprint pattern.
func (hs *Hooks) OnClose(fn func(Engine)) {
	hs.Register(HookClose, HookFunc(func(ctx *HookCtx) { fn(ctx.Engine) }))
}

// Registered reports how many hooks are installed at pos.
func (hs *Hooks) Registered(pos HookPos) int { return len(hs.at[pos]) }

// active reports whether any hook is registered at pos. It is the hot-path
// guard; keep it trivially inlinable.
func (hs *Hooks) active(pos HookPos) bool { return hs.mask&(1<<pos) != 0 }

// emit invokes every hook at pos in registration order. Callers must guard
// with active() so the no-hook path pays only the mask test.
func (hs *Hooks) emit(pos HookPos, t Time, seq uint64, kind Kind, subj string) {
	hs.ctx.Pos = pos
	hs.ctx.Time = t
	hs.ctx.Seq = seq
	hs.ctx.Kind = kind
	hs.ctx.Subject = subj
	for _, h := range hs.at[pos] {
		h.Fire(&hs.ctx)
	}
}
