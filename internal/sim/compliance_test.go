package sim

import "testing"

// engineUnderTest is one Engine implementation wired into the compliance
// suite. run builds an engine with opts, hands it to scenario, and tears it
// down. The replay variant runs scenario twice: once on a recorded reference
// engine, then again on a ReplayEngine seeded with that recording — so every
// compliance scenario doubles as a lockstep record/replay check.
type engineUnderTest struct {
	name string
	run  func(t *testing.T, opts []Option, scenario func(e Engine))
}

// enginesUnderTest lists every Engine implementation. A new engine joins the
// DESIGN.md §6 checklist by adding itself here (and to the fingerprint pins
// if it is meant to reproduce reference timelines).
var enginesUnderTest = []engineUnderTest{
	{"seq", func(t *testing.T, opts []Option, scenario func(e Engine)) {
		e := NewEngine(opts...)
		defer e.Close()
		scenario(e)
	}},
	{"seq-pooled", func(t *testing.T, opts []Option, scenario func(e Engine)) {
		p := NewPool()
		defer p.Close()
		e := p.NewEngine(opts...)
		defer e.Close()
		scenario(e)
	}},
	{"replay", func(t *testing.T, opts []Option, scenario func(e Engine)) {
		ref := NewEngine(opts...)
		rec := Record(ref)
		scenario(ref)
		ref.Close()
		e := NewReplayEngine(rec.Recording(), opts...)
		defer e.Close()
		scenario(e)
	}},
	{"par", func(t *testing.T, opts []Option, scenario func(e Engine)) {
		e := NewEngine(append(opts[:len(opts):len(opts)], WithLPs(2))...)
		defer e.Close()
		scenario(e)
	}},
	// par-pooled stresses the awkward corner of the PDES configuration space:
	// pooled goroutines, several LPs, a channel small enough to exercise
	// backpressure, and a lookahead far below the default so harvests are
	// frequent and tiny.
	{"par-pooled", func(t *testing.T, opts []Option, scenario func(e Engine)) {
		p := NewPool()
		defer p.Close()
		e := p.NewEngine(append(opts[:len(opts):len(opts)],
			WithLPs(3), WithLPChannelCap(2), WithLookahead(Microsecond),
			WithAffinity(func(kind Kind, subject string) int { return len(subject) }))...)
		defer e.Close()
		scenario(e)
	}},
}

// onEveryEngine runs scenario as a subtest per engine implementation.
func onEveryEngine(t *testing.T, opts []Option, scenario func(t *testing.T, e Engine)) {
	t.Helper()
	for _, eut := range enginesUnderTest {
		eut := eut
		t.Run(eut.name, func(t *testing.T) {
			eut.run(t, opts, func(e Engine) { scenario(t, e) })
		})
	}
}

func TestComplianceEventOrderAndClock(t *testing.T) {
	onEveryEngine(t, nil, func(t *testing.T, e Engine) {
		var fired []string
		var times []Time
		log := func(name string) func() {
			return func() {
				fired = append(fired, name)
				times = append(times, e.Now())
			}
		}
		e.At(Time(30*Microsecond), "c", log("c"))
		e.At(Time(10*Microsecond), "a", log("a"))
		e.At(Time(10*Microsecond), "b", log("b")) // same time: seq breaks the tie
		e.After(20*Microsecond, "mid", log("mid"))
		if e.Pending() != 4 {
			t.Fatalf("Pending = %d, want 4", e.Pending())
		}
		e.Run()
		want := []string{"a", "b", "mid", "c"}
		if len(fired) != len(want) {
			t.Fatalf("fired %v, want %v", fired, want)
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("fired %v, want %v", fired, want)
			}
		}
		for i, at := range []Time{Time(10 * Microsecond), Time(10 * Microsecond), Time(20 * Microsecond), Time(30 * Microsecond)} {
			if times[i] != at {
				t.Fatalf("event %q fired at %v, want %v", want[i], times[i], at)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("Pending after Run = %d, want 0", e.Pending())
		}
	})
}

func TestComplianceRunUntilAdvancesClockPastLastEvent(t *testing.T) {
	onEveryEngine(t, nil, func(t *testing.T, e Engine) {
		e.At(Time(5*Microsecond), "ev", func() {})
		e.RunUntil(Time(50 * Microsecond))
		if e.Now() != Time(50*Microsecond) {
			t.Fatalf("Now = %v after RunUntil(50µs), want 50µs", e.Now())
		}
	})
}

func TestComplianceStepFiresOneEvent(t *testing.T) {
	onEveryEngine(t, nil, func(t *testing.T, e Engine) {
		n := 0
		e.At(Time(Microsecond), "a", func() { n++ })
		e.At(Time(2*Microsecond), "b", func() { n++ })
		if !e.Step() || n != 1 || e.Now() != Time(Microsecond) {
			t.Fatalf("after first Step: n=%d now=%v", n, e.Now())
		}
		if !e.Step() || n != 2 {
			t.Fatalf("after second Step: n=%d", n)
		}
		if e.Step() {
			t.Fatal("Step on an empty queue reported true")
		}
	})
}

func TestComplianceCancelSuppressesEvent(t *testing.T) {
	onEveryEngine(t, nil, func(t *testing.T, e Engine) {
		// The recorded reference run cancels this event, so the tape never
		// contains it and the replay must cancel it the same way.
		h := e.At(Time(10*Microsecond), "doomed", func() { t.Error("cancelled event fired") })
		e.At(Time(20*Microsecond), "after", func() {})
		if !h.Active() {
			t.Fatal("handle inactive before fire")
		}
		if !h.Cancel() {
			t.Fatal("Cancel reported false")
		}
		if h.Active() || h.Cancel() {
			t.Fatal("handle still live after Cancel")
		}
		e.Run()
		if got := e.Stats().Cancels; got != 1 {
			t.Fatalf("Stats().Cancels = %d, want 1", got)
		}
	})
}

func TestComplianceCoroutineSleepAndHandoff(t *testing.T) {
	onEveryEngine(t, nil, func(t *testing.T, e Engine) {
		var log []Time
		c := e.Go("sleeper", func(c *Coroutine) {
			for i := 0; i < 3; i++ {
				c.Sleep(10 * Microsecond)
				log = append(log, e.Now())
			}
		})
		c.Unpark()
		e.Run()
		if len(log) != 3 {
			t.Fatalf("woke %d times, want 3", len(log))
		}
		for i, at := range []Time{Time(10 * Microsecond), Time(20 * Microsecond), Time(30 * Microsecond)} {
			if log[i] != at {
				t.Fatalf("wake %d at %v, want %v", i, log[i], at)
			}
		}
		if !c.Done() {
			t.Fatal("coroutine not Done after Run")
		}
	})
}

func TestComplianceCurrentInsideBodies(t *testing.T) {
	onEveryEngine(t, nil, func(t *testing.T, e Engine) {
		var inBody, inEvent bool
		c := e.Go("c", func(c *Coroutine) { inBody = e.Current() == c })
		e.After(Microsecond, "ev", func() { inEvent = e.Current() == nil })
		c.Unpark()
		e.Run()
		if !inBody || !inEvent {
			t.Fatalf("Current: inBody=%v inEvent=%v", inBody, inEvent)
		}
	})
}

func TestComplianceLabelAndOptions(t *testing.T) {
	onEveryEngine(t, []Option{WithLabel("compliance")}, func(t *testing.T, e Engine) {
		if e.Label() != "compliance" {
			t.Fatalf("Label = %q, want compliance", e.Label())
		}
		if e.Metrics() == nil || e.Stats() == nil || e.Hooks() == nil {
			t.Fatal("nil Metrics/Stats/Hooks")
		}
	})
}

func TestComplianceCloseUnwindsAndIsIdempotent(t *testing.T) {
	onEveryEngine(t, nil, func(t *testing.T, e Engine) {
		cleaned := false
		c := e.Go("c", func(c *Coroutine) {
			defer func() { cleaned = true }()
			c.Park("forever")
		})
		c.Unpark()
		e.RunUntil(Time(Microsecond))
		e.Close()
		e.Close()
		if !cleaned || !c.Done() {
			t.Fatalf("after Close: cleaned=%v done=%v", cleaned, c.Done())
		}
	})
}

func TestComplianceScheduleOnClosedEnginePanics(t *testing.T) {
	onEveryEngine(t, nil, func(t *testing.T, e Engine) {
		e.Close()
		defer func() {
			if recover() == nil {
				t.Fatal("At on closed engine did not panic")
			}
		}()
		e.At(Time(Microsecond), "ev", func() {})
	})
}

func TestCompliancePastSchedulePanics(t *testing.T) {
	onEveryEngine(t, nil, func(t *testing.T, e Engine) {
		e.At(Time(10*Microsecond), "ev", func() {})
		e.Run()
		defer func() {
			if recover() == nil {
				t.Fatal("scheduling in the past did not panic")
			}
		}()
		e.At(Time(5*Microsecond), "late", func() {})
	})
}

// TestComplianceStatsReproduce pins that the organic counters — everything
// except queue-placement Overflows — agree across implementations driving
// the same scenario.
func TestComplianceStatsReproduce(t *testing.T) {
	scenario := func(e Engine) {
		c := e.Go("w", func(c *Coroutine) {
			for i := 0; i < 5; i++ {
				c.Sleep(Duration(i+1) * Microsecond)
			}
		})
		c.Unpark()
		for i := 0; i < 10; i++ {
			e.After(Duration(i+1)*2*Microsecond, "tick", func() {})
		}
		h := e.After(Millisecond, "doomed", func() {})
		h.Cancel()
		e.Run()
	}
	var ref EngineStats
	for i, eut := range enginesUnderTest {
		i, eut := i, eut
		t.Run(eut.name, func(t *testing.T) {
			eut.run(t, nil, func(e Engine) {
				scenario(e)
				got := *e.Stats()
				got.PhysicalSwitches = 0 // host-side; legitimately varies
				if i == 0 {
					ref = got
					return
				}
				if got != ref {
					t.Fatalf("stats diverge from reference:\n got %+v\nwant %+v", got, ref)
				}
			})
		})
	}
}
