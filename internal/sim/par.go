package sim

import "fmt"

// ParEngine is the conservative PDES engine: one simulated run partitioned
// across logical processes, behind the same Engine interface — and the same
// observable timeline — as the reference SeqEngine.
//
// Partition. WithLPs(n) creates n LPs (lp.go), each owning one timeline on
// its own goroutine. LP 0 is the shared partition: events whose target
// cannot be statically determined route there. With n > 1, WithAffinity
// spreads statically-routable events (per simulated CPU / context, in the
// experiment wiring) across LPs 1..n-1. Near-future events — at or below the
// harvested bound — stay driver-resident in a small heap, which preserves
// the O(1) elision fast path for calibrated CPU charges.
//
// Protocol. The driver is the only goroutine that executes callbacks,
// dispatches coroutines, emits hooks, and touches engineBase state; LPs only
// file, sort, and advance their partitions. Cross-LP exchange is bounded
// channels of timestamped events. Every synchronous reply carries a null
// message — the exact (time, seq) of the LP's remaining head, a promise it
// holds nothing earlier. The driver fires its local head only when that head
// precedes every LP's bound; otherwise it harvests: all LPs whose bound
// falls inside [minBound, minBound+lookahead] pop their window concurrently,
// the popped events become driver-resident, and the returned null messages
// raise the bounds. Bounds rise strictly on every empty harvest, so the
// merge never deadlocks and never fires out of order: the global firing
// order is the exact (time, seq) total order the reference engine produces.
//
// Lookahead. The window width comes from the calibrated cost table: the
// minimum cross-CPU charge (IPI delivery, below the 19 µs trap) is a hard
// lower bound on how soon one simulated CPU can affect another, so it is
// guaranteed lookahead in the Chandy–Misra sense. Correctness never depends
// on the value — the null-message bounds are exact — it only sizes the
// batches, which is why the fuzz oracle may perturb it freely.
//
// Determinism. Everything observable reproduces the reference byte for
// byte: firing order and clock (same total order), hook streams (emitted by
// the driver at the same points), stats (callbacks, allocs, and releases
// happen in identical order; MaxPending counts near + all LP partitions;
// Overflows replays the reference wheel's placement rule against a shadow
// window, see scheduleEvent), and therefore chaos fingerprints. Only the
// host-class PhysicalSwitches-style metrics may differ, as for every engine.
type ParEngine struct {
	engineBase
	near      eventHeap // driver-resident events, the merge frontier
	lps       []*logicalProcess
	ownedTot  int   // events currently filed across all LPs
	shadow    int64 // replica of the reference wheel's curChunk (Overflows parity)
	nearBound Time  // every LP has been harvested through this time
	lookahead Duration
	affinity  func(kind Kind, subject string) int
	batch     []*logicalProcess // harvest fan-out scratch
}

// DefaultLookahead is the harvest window when WithLookahead is not given:
// the cost table's 10 µs IPI charge — the cheapest way one simulated CPU
// can affect another — rounded up a tick. The experiment harness passes the
// authoritative value from machine.Costs.CrossLPLookahead; this constant
// only keeps bare NewEngine(WithLPs(n)) sensible.
const DefaultLookahead = 10 * Microsecond

const defaultLPChanCap = 256

func newParEngine(pool *Pool, c config) *ParEngine {
	e := &ParEngine{lookahead: c.lookahead, affinity: c.affinity}
	if e.lookahead <= 0 {
		e.lookahead = DefaultLookahead
	}
	chanCap := c.lpChanCap
	if chanCap <= 0 {
		chanCap = defaultLPChanCap
	}
	e.init(e, c)
	e.pool = pool
	e.lps = make([]*logicalProcess, c.lps)
	e.batch = make([]*logicalProcess, 0, c.lps)
	for i := range e.lps {
		l := newLogicalProcess(i, chanCap)
		e.lps[i] = l
		go l.run()
	}
	return e
}

// Pending reports the number of events queued to fire: the driver-resident
// frontier plus every LP partition. Both counts are maintained on the
// driver, so Pending is exact without a round trip.
func (e *ParEngine) Pending() int { return len(e.near) + e.ownedTot }

// route picks the LP for a fresh event, or -1 to keep it driver-resident.
// Events inside the harvested window must stay driver-side (their LP would
// already have promised not to hold anything that early); keeping them local
// is also what preserves the O(1) elision path for short charges.
func (e *ParEngine) route(ev *Event) int {
	if ev.t <= e.nearBound {
		return -1
	}
	if e.affinity != nil && len(e.lps) > 1 {
		if a := e.affinity(ev.kind, ev.subj); a >= 0 {
			return 1 + a%(len(e.lps)-1)
		}
	}
	return 0
}

// schedule is the hot-path entry. The shadow window replays the reference
// engine's overflow rule: SeqEngine counts an overflow when a schedule's
// chunk misses [curChunk, curChunk+l1Slots], and its curChunk moves only in
// peek — to max(curChunk, chunk(head)) (see timeline.peek). The driver
// replays exactly that update on every peek, so the running Overflows count
// — a fingerprinted metric — is byte-identical even though the real queues
// are partitioned and each LP wheel advances on its own.
func (e *ParEngine) schedule(t Time, kind Kind, subj string, fn func(), co *Coroutine) Handle {
	ev := e.newEvent(t, kind, subj, fn, co)
	if ch := tickOf(t) >> l0Bits; ch < e.shadow || ch > e.shadow+l1Slots {
		e.st.Overflows++
	}
	if i := e.route(ev); i >= 0 {
		l := e.lps[i]
		ev.lp = int32(i)
		l.owned++
		e.ownedTot++
		if t < l.boundT || (t == l.boundT && ev.seq < l.boundSeq) {
			l.boundT, l.boundSeq = t, ev.seq
		}
		l.cmd <- lpCmd{op: lpEnq, ev: ev}
	} else {
		ev.lp = -1
		ev.loc = locHeap
		e.near.push(ev)
	}
	return e.scheduled(ev, len(e.near)+e.ownedTot)
}

// peek returns the engine's globally next event — driver-resident, with
// every LP's null-message bound proving nothing earlier exists — or nil when
// the whole engine is empty. It harvests as needed and advances the shadow
// window exactly as the reference peek would.
func (e *ParEngine) peek() *Event {
	for {
		var top *Event
		if len(e.near) > 0 {
			top = e.near[0]
		}
		var m *logicalProcess
		if e.ownedTot > 0 {
			for _, l := range e.lps {
				if l.owned == 0 {
					continue
				}
				if m == nil || l.boundT < m.boundT || (l.boundT == m.boundT && l.boundSeq < m.boundSeq) {
					m = l
				}
			}
		}
		if m == nil || (top != nil && (top.t < m.boundT || (top.t == m.boundT && top.seq < m.boundSeq))) {
			if top != nil {
				if ch := tickOf(top.t) >> l0Bits; ch > e.shadow {
					e.shadow = ch
				}
			}
			return top
		}
		e.harvest(m.boundT.Add(e.lookahead))
	}
}

// harvest pulls every event with time <= upTo out of the LPs into the
// driver-resident frontier. Requests fan out first and replies collect
// after, so the LPs pop and re-sort their windows concurrently — this is
// where the engine's intra-run parallelism lives. LPs whose bound already
// clears upTo are provably empty in the window and are not disturbed. Each
// reply's null message replaces the LP's bound with its exact new head;
// a bound either yields events or rises strictly past upTo, so the peek
// loop always progresses.
func (e *ParEngine) harvest(upTo Time) {
	batch := e.batch[:0]
	for _, l := range e.lps {
		if l.owned > 0 && l.boundT <= upTo {
			l.cmd <- lpCmd{op: lpHarvest, upTo: upTo}
			batch = append(batch, l)
		}
	}
	for _, l := range batch {
		r := <-l.reply
		for _, ev := range r.evs {
			ev.lp = -1
			ev.loc = locHeap
			e.near.push(ev)
		}
		l.owned -= len(r.evs)
		e.ownedTot -= len(r.evs)
		l.boundT, l.boundSeq = r.headT, r.headSeq
	}
	e.batch = batch[:0]
	if upTo > e.nearBound {
		e.nearBound = upTo
	}
}

// At schedules fn to run at absolute time t.
func (e *ParEngine) At(t Time, kind Kind, fn func()) Handle {
	return e.schedule(t, kind, "", fn, nil)
}

// AtNamed is At with a subject.
func (e *ParEngine) AtNamed(t Time, kind Kind, subject string, fn func()) Handle {
	return e.schedule(t, kind, subject, fn, nil)
}

// After schedules fn to run d after the current time.
func (e *ParEngine) After(d Duration, kind Kind, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", d, kind))
	}
	return e.schedule(e.now.Add(d), kind, "", fn, nil)
}

// AfterNamed is After with a subject.
func (e *ParEngine) AfterNamed(d Duration, kind Kind, subject string, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %s:%q", d, subject, kind))
	}
	return e.schedule(e.now.Add(d), kind, subject, fn, nil)
}

// fire removes ev — which peek just proved globally next — from the
// frontier, advances the clock, and runs the callback.
func (e *ParEngine) fire(ev *Event) {
	e.near.remove(ev)
	ev.loc = locNone
	e.finishFire(ev)
}

// Step fires the next event, advancing the clock to its time. It reports
// false when the queue is empty.
func (e *ParEngine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	e.limit = ev.t
	e.fire(ev)
	return true
}

// Run fires events until the queue is empty.
func (e *ParEngine) Run() {
	e.limit = maxTime
	for {
		ev := e.peek()
		if ev == nil {
			return
		}
		e.fire(ev)
	}
}

// RunUntil fires events with time <= t, then sets the clock to t. Events
// scheduled at exactly t do fire.
func (e *ParEngine) RunUntil(t Time) {
	e.limit = t
	for {
		ev := e.peek()
		if ev == nil || ev.t > t {
			break
		}
		e.fire(ev)
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the clock by d, firing all events in the window.
func (e *ParEngine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Close shuts the engine down: close hooks fire, coroutines unwind, every
// LP drains its partition and its goroutine exits, and outstanding handles
// turn inert. Close is idempotent.
func (e *ParEngine) Close() {
	if !e.beginClose() {
		return
	}
	for _, l := range e.lps {
		l.cmd <- lpCmd{op: lpClose}
	}
	for _, l := range e.lps {
		r := <-l.reply
		for _, ev := range r.evs {
			ev.gen++
		}
		close(l.cmd)
		l.owned = 0
	}
	e.ownedTot = 0
	for _, ev := range e.near {
		ev.loc = locNone
		ev.index = -1
		ev.gen++
	}
	e.near = nil
	e.lps = nil
	e.free = nil
}

// Reset returns the engine to its construction state for reuse; see
// Engine.Reset for the contract. The LP partition survives: each LP drains
// its timeline back to the driver (which turns the records' handles inert)
// and rewinds to time zero without its goroutine exiting, so a warm run
// re-files events into the same channels and wheels. WithLookahead and
// WithAffinity may be re-specified (they are driver-side batching/routing
// knobs that never affect the timeline); when omitted the current values
// are kept. WithLPs must match the existing partition (or be omitted).
func (e *ParEngine) Reset(opts ...Option) {
	c := buildConfig(opts)
	if c.lps != 0 && c.lps != len(e.lps) {
		panic("sim: Reset cannot re-partition an engine (WithLPs applies at construction only)")
	}
	if c.lpChanCap > 0 {
		panic("sim: Reset cannot resize LP channels (WithLPChannelCap applies at construction only)")
	}
	e.beginReset()
	for _, l := range e.lps {
		l.cmd <- lpCmd{op: lpReset}
	}
	for _, l := range e.lps {
		r := <-l.reply
		drainInert(r.evs)
		l.owned = 0
		l.boundT, l.boundSeq = r.headT, r.headSeq
	}
	e.ownedTot = 0
	for i, ev := range e.near {
		ev.loc = locNone
		ev.index = -1
		ev.gen++
		e.near[i] = nil
	}
	e.near = e.near[:0]
	e.shadow = 0
	e.nearBound = 0
	e.resetBase(c)
	if c.lookahead > 0 {
		e.lookahead = c.lookahead
	}
	if c.affinity != nil {
		e.affinity = c.affinity
	}
}

// --- impl ---

func (e *ParEngine) scheduleEvent(t Time, kind Kind, subj string, fn func(), co *Coroutine) Handle {
	return e.schedule(t, kind, subj, fn, co)
}

func (e *ParEngine) nextEvent() *Event { return e.peek() }

func (e *ParEngine) fireNext(ev *Event) { e.fire(ev) }

func (e *ParEngine) consumeNext(ev *Event, c *Coroutine) {
	e.near.remove(ev)
	ev.loc = locNone
	e.finishConsume(ev, c)
}

// cancelQueued removes a still-queued event. A driver-resident event comes
// straight out of the frontier; an LP-resident one takes a synchronous round
// trip, whose reply doubles as a fresh null message for the partition.
func (e *ParEngine) cancelQueued(ev *Event) bool {
	if ev.lp >= 0 {
		l := e.lps[ev.lp]
		l.cmd <- lpCmd{op: lpCancel, ev: ev}
		r := <-l.reply
		l.owned--
		e.ownedTot--
		l.boundT, l.boundSeq = r.headT, r.headSeq
		ev.lp = -1
	} else {
		e.near.remove(ev)
	}
	ev.loc = locNone
	e.cancelled(ev)
	return true
}
