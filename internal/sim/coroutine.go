package sim

import "fmt"

// coState tracks where a coroutine is in its lifecycle.
type coState int

const (
	coCreated coState = iota // goroutine spawned, body not yet started
	coParked                 // body started, currently parked
	coRunning                // currently executing (engine blocked in hand-off)
	coDone                   // body returned or unwound
)

func (s coState) String() string {
	switch s {
	case coCreated:
		return "created"
	case coParked:
		return "parked"
	case coRunning:
		return "running"
	case coDone:
		return "done"
	}
	return "invalid"
}

// killSentinel is the panic value used to unwind coroutines on shutdown.
type killSentinel struct{}

// Event kinds for the coroutine machinery.
const (
	kindResume Kind = "co-resume"
	kindWake   Kind = "co-wake"
)

// Coroutine is a simulated execution context: a goroutine that runs only when
// the engine hands control to it, and hands control back by parking. Exactly
// one coroutine (or event callback) executes at a time, so simulated code
// needs no locking and the timeline is deterministic.
//
// Control transfers ride one unbuffered channel: because the hand-off is
// strict — at any instant exactly one side holds the token — a single
// channel serves both directions, and each transfer is one send/receive
// rendezvous. Resume events carry the coroutine pointer in the event record
// itself, so an Unpark allocates neither a closure nor a name.
type Coroutine struct {
	eng    *Engine
	name   string
	hand   chan struct{} // the hand-off token channel
	state  coState
	killed bool

	parkReason      string
	resumeScheduled bool
}

// Go creates a coroutine that will execute fn. The coroutine does not start
// until its first Unpark; this lets schedulers create execution contexts and
// dispatch them later.
func (e *Engine) Go(name string, fn func(*Coroutine)) *Coroutine {
	if e.closed {
		panic("sim: Go on closed engine")
	}
	c := &Coroutine{
		eng:  e,
		name: name,
		hand: make(chan struct{}),
	}
	e.live[c] = struct{}{}
	go c.run(fn)
	return c
}

func (c *Coroutine) run(fn func(*Coroutine)) {
	<-c.hand // wait for first dispatch (or kill)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); !ok {
				// Propagate real panics to the engine goroutine by
				// re-panicking there: we cannot re-raise across goroutines,
				// so surface the failure loudly instead of deadlocking.
				c.state = coDone
				delete(c.eng.live, c)
				c.hand <- struct{}{}
				panic(r)
			}
		}
		c.state = coDone
		delete(c.eng.live, c)
		c.hand <- struct{}{} // final hand-off back to the engine
	}()
	if c.killed {
		panic(killSentinel{})
	}
	c.state = coRunning
	fn(c)
}

// Name reports the debug name of the coroutine.
func (c *Coroutine) Name() string { return c.name }

// Done reports whether the coroutine body has returned.
func (c *Coroutine) Done() bool { return c.state == coDone }

// Parked reports whether the coroutine is parked (or not yet started).
func (c *Coroutine) Parked() bool { return c.state == coParked || c.state == coCreated }

// ParkReason reports the reason string of the current park, for diagnostics.
func (c *Coroutine) ParkReason() string { return c.parkReason }

// ResumeScheduled reports whether an Unpark (or Sleep wake-up) is already
// pending for this coroutine. Schedulers use this to avoid double-resuming a
// context that completed its CPU demand and was preempted in the same
// instant.
func (c *Coroutine) ResumeScheduled() bool { return c.resumeScheduled }

// Running reports whether the coroutine is the one currently executing.
func (c *Coroutine) Running() bool { return c.state == coRunning }

// Park hands control back to the engine until some event calls Unpark.
// It must be called from within the coroutine itself.
func (c *Coroutine) Park(reason string) {
	if c.eng.cur != c {
		panic(fmt.Sprintf("sim: Park(%q) on %s called from outside the coroutine", reason, c.name))
	}
	c.parkReason = reason
	c.state = coParked
	c.hand <- struct{}{}
	<-c.hand
	if c.killed {
		panic(killSentinel{})
	}
	c.state = coRunning
	c.parkReason = ""
}

// Sleep parks the coroutine for d of virtual time. The wake-up counts as the
// coroutine's scheduled resume, so an Unpark during the sleep panics rather
// than double-dispatching.
func (c *Coroutine) Sleep(d Duration) {
	if c.eng.cur != c {
		panic(fmt.Sprintf("sim: Sleep on %s called from outside the coroutine", c.name))
	}
	if d < 0 {
		panic(fmt.Sprintf("sim: negative Sleep %v on %s", d, c.name))
	}
	c.resumeScheduled = true
	c.eng.schedule(c.eng.now.Add(d), kindWake, c.name, nil, c)
	c.Park("sleep")
}

// Unpark schedules the coroutine to resume at the current virtual time. It
// panics if the coroutine is running, done, or already scheduled to resume:
// callers own the lifecycle of the contexts they dispatch, and a double
// unpark always indicates a scheduler bug.
func (c *Coroutine) Unpark() {
	c.UnparkAt(c.eng.now)
}

// UnparkAt schedules the coroutine to resume at time t.
func (c *Coroutine) UnparkAt(t Time) {
	if c.state == coDone {
		panic(fmt.Sprintf("sim: Unpark on finished coroutine %s", c.name))
	}
	if c.state == coRunning {
		panic(fmt.Sprintf("sim: Unpark on running coroutine %s", c.name))
	}
	if c.resumeScheduled {
		panic(fmt.Sprintf("sim: duplicate Unpark on coroutine %s", c.name))
	}
	c.resumeScheduled = true
	c.eng.schedule(t, kindResume, c.name, nil, c)
}

// dispatch transfers control to the coroutine and blocks until it parks or
// finishes. It runs in the engine goroutine, inside the resume event.
func (c *Coroutine) dispatch() {
	c.resumeScheduled = false
	if c.state == coDone {
		return
	}
	prev := c.eng.cur
	c.eng.cur = c
	c.eng.Stats.Resumes++
	c.hand <- struct{}{}
	<-c.hand
	c.eng.cur = prev
}

// kill unwinds a parked or not-yet-started coroutine. Called from
// Engine.Close only.
func (c *Coroutine) kill() {
	if c.state == coDone || c.state == coRunning {
		return
	}
	c.killed = true
	c.hand <- struct{}{}
	<-c.hand
}

// Current reports the coroutine currently executing, or nil when the engine
// is running a plain event callback.
func (e *Engine) Current() *Coroutine { return e.cur }
