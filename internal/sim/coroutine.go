package sim

import (
	"fmt"
	"runtime/debug"
)

// coState tracks where a coroutine is in its lifecycle.
type coState int

const (
	coCreated coState = iota // goroutine armed, body not yet started
	coParked                 // body started, currently parked
	coRunning                // currently executing (engine blocked in hand-off)
	coDone                   // body returned or unwound
)

func (s coState) String() string {
	switch s {
	case coCreated:
		return "created"
	case coParked:
		return "parked"
	case coRunning:
		return "running"
	case coDone:
		return "done"
	}
	return "invalid"
}

// killSentinel is the panic value used to unwind coroutines on shutdown.
type killSentinel struct{}

// Event kinds for the coroutine machinery.
const (
	kindResume Kind = "co-resume"
	kindWake   Kind = "co-wake"
)

// CoroutinePanic wraps a panic that escaped a coroutine body. The panic is
// recovered on the coroutine's goroutine — so a pooled goroutine completes
// its final hand-off cleanly and returns to its pool instead of dying with a
// poisoned arm channel — and re-raised on the engine goroutine, where the
// driving Run/Step call (and any recover around it) can observe it.
type CoroutinePanic struct {
	Co    string // coroutine debug name
	Value any    // the original panic value
	Stack []byte // stack of the coroutine goroutine at the point of recovery
}

func (p *CoroutinePanic) Error() string {
	return fmt.Sprintf("sim: coroutine %q panicked: %v\n%s", p.Co, p.Value, p.Stack)
}

// Coroutine is a simulated execution context: a goroutine that runs only when
// the engine hands control to it, and hands control back by parking. Exactly
// one coroutine (or event callback) executes at a time, so simulated code
// needs no locking and the timeline is deterministic.
//
// Control transfers ride one unbuffered channel: because the hand-off is
// strict — at any instant exactly one side holds the token — a single
// channel serves both directions, and each transfer is one send/receive
// rendezvous. Resume events carry the coroutine pointer in the event record
// itself and their kind/subject are static strings, so scheduling a resume
// is allocation-free.
//
// Two optimizations make the common transfers cheaper still, without
// changing anything simulated code can observe:
//
//   - the time-charge fast path (Sleep, InlineCharge) consumes a resume that
//     is already the engine's next event in place, on the same goroutine,
//     skipping both rendezvous — Stats().PhysicalSwitches counts only the
//     hand-offs actually paid, while Stats().LogicalResumes counts them all;
//   - on a pooled engine (Pool.NewEngine) the hosting goroutine comes from a
//     warm pool and is re-armed for the next Engine.Go when the body ends.
//
// The machinery is engine-independent: a coroutine routes its queue
// touches (scheduling resumes, the elision checks) through the small impl
// seam, so it runs identically on the reference engine and the replay
// engine.
type Coroutine struct {
	eng    impl            // owning engine (queue operations)
	b      *engineBase     // the engine's shared state, cached off the hot path
	name   string
	hand   chan struct{}   // the hand-off token channel
	spare  *spare          // pooled goroutine hosting the body, nil when unpooled
	escape *CoroutinePanic // panic that unwound the body, re-raised by the engine
	state  coState
	killed bool

	parkReason      string
	resumeScheduled bool
}

// Go creates a coroutine that will execute fn. The coroutine does not start
// until its first Unpark; this lets schedulers create execution contexts and
// dispatch them later.
func (b *engineBase) Go(name string, fn func(*Coroutine)) *Coroutine {
	if b.closed {
		panic("sim: Go on closed engine")
	}
	c := &Coroutine{eng: b.self, b: b, name: name}
	b.live[c] = struct{}{}
	if b.pool != nil {
		b.pool.launch(c, fn)
	} else {
		c.hand = make(chan struct{})
		go c.run(fn)
	}
	return c
}

// run hosts one coroutine body on the current goroutine: wait for the first
// dispatch, execute, and complete the final hand-off. It returns rather than
// exiting, so a pooled goroutine can host the next body.
func (c *Coroutine) run(fn func(*Coroutine)) {
	<-c.hand // wait for first dispatch (or kill)
	c.body(fn)
	c.state = coDone
	delete(c.b.live, c)
	c.hand <- struct{}{} // final hand-off back to the engine
}

// body runs fn, absorbing the kill unwind and capturing any real panic into
// c.escape for the engine to re-raise after the final hand-off.
func (c *Coroutine) body(fn func(*Coroutine)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); !ok {
				c.escape = &CoroutinePanic{Co: c.name, Value: r, Stack: debug.Stack()}
			}
		}
	}()
	if c.killed {
		panic(killSentinel{})
	}
	c.state = coRunning
	fn(c)
}

// retire finishes the engine side of a coroutine's final hand-off: return
// the hosting goroutine to the pool and re-raise any panic that unwound the
// body. No-op while the coroutine is merely parked.
func (b *engineBase) retire(c *Coroutine) {
	if c.state != coDone {
		return
	}
	if c.spare != nil {
		b.pool.put(c.spare)
		c.spare = nil
	}
	if esc := c.escape; esc != nil {
		c.escape = nil
		panic(esc)
	}
}

// Name reports the debug name of the coroutine.
func (c *Coroutine) Name() string { return c.name }

// Done reports whether the coroutine body has returned.
func (c *Coroutine) Done() bool { return c.state == coDone }

// Parked reports whether the coroutine is parked (or not yet started).
func (c *Coroutine) Parked() bool { return c.state == coParked || c.state == coCreated }

// ParkReason reports the reason string of the current park, for diagnostics.
func (c *Coroutine) ParkReason() string { return c.parkReason }

// ResumeScheduled reports whether an Unpark (or Sleep wake-up) is already
// pending for this coroutine. Schedulers use this to avoid double-resuming a
// context that completed its CPU demand and was preempted in the same
// instant.
func (c *Coroutine) ResumeScheduled() bool { return c.resumeScheduled }

// Running reports whether the coroutine is the one currently executing.
func (c *Coroutine) Running() bool { return c.state == coRunning }

// Park hands control back to the engine until some event calls Unpark.
// It must be called from within the coroutine itself.
func (c *Coroutine) Park(reason string) {
	if c.b.cur != c {
		panic(fmt.Sprintf("sim: Park(%q) on %s called from outside the coroutine", reason, c.name))
	}
	c.parkReason = reason
	c.state = coParked
	c.await()
}

// await is the parked side of the physical hand-off: give the token to the
// engine, block until the next dispatch, and re-enter the running state.
func (c *Coroutine) await() {
	c.hand <- struct{}{}
	<-c.hand
	if c.killed {
		panic(killSentinel{})
	}
	c.state = coRunning
	c.parkReason = ""
}

// Sleep parks the coroutine for d of virtual time. The wake-up counts as the
// coroutine's scheduled resume, so an Unpark during the sleep panics rather
// than double-dispatching.
//
// Fast path: when the wake-up is the engine's next event anyway — no other
// event fires in [now, now+d], the dominant case for calibrated CPU charges —
// the clock advances in place and the body keeps executing on the same
// goroutine. The wake event is still scheduled, ordered, and recycled through
// the normal queue, so event sequence numbers, queue statistics, and wheel
// state are byte-identical to the parked path; only the goroutine rendezvous
// are skipped.
func (c *Coroutine) Sleep(d Duration) {
	b := c.b
	if b.cur != c {
		panic(fmt.Sprintf("sim: Sleep on %s called from outside the coroutine", c.name))
	}
	if d < 0 {
		panic(fmt.Sprintf("sim: negative Sleep %v on %s", d, c.name))
	}
	c.resumeScheduled = true
	h := c.eng.scheduleEvent(b.now.Add(d), kindWake, c.name, nil, c)
	ev := h.ev
	if !b.noElide && ev.t <= b.limit && c.eng.nextEvent() == ev {
		c.eng.consumeNext(ev, c)
		return
	}
	c.Park("sleep")
}

// InlineCharge is the worker-layer fast path for "schedule a completion
// callback, park until it fires". h must be a plain-callback event the
// caller just scheduled (typically its charge-completion timer). When h is
// the engine's next event and fires within the current drive window,
// InlineCharge runs the whole slow-path sequence in place on the calling
// goroutine: the coroutine observably parks with reason, the callback fires
// exactly as the engine loop would fire it (with Current() == nil), and if
// the callback immediately rescheduled this coroutine — the common completion
// case — the resume is consumed in place too. Reports false, with no state
// touched, when the fast path does not apply; the caller then parks normally.
//
// The callback must not assume it runs on the engine's driving goroutine;
// engine state is single-threaded by the hand-off discipline either way, so
// this only matters to code doing goroutine-identity tricks, which simulated
// code must not do.
func (c *Coroutine) InlineCharge(h Handle, reason string) bool {
	e, b := c.eng, c.b
	if b.cur != c {
		panic(fmt.Sprintf("sim: InlineCharge(%q) on %s called from outside the coroutine", reason, c.name))
	}
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.co != nil {
		return false
	}
	if b.noElide || ev.t > b.limit || e.nextEvent() != ev {
		return false
	}
	// Park observably, then fire the callback exactly as the engine loop
	// would have: the engine is still blocked in our dispatch, so we are the
	// engine for the duration.
	c.parkReason = reason
	c.state = coParked
	b.cur = nil
	e.fireNext(ev)
	if c.resumeScheduled {
		if next := e.nextEvent(); next != nil && next.co == c && next.t <= b.limit {
			// The callback rescheduled us and nothing fires in between:
			// consume our own resume in place as well.
			e.consumeNext(next, c)
			b.cur = c
			c.state = coRunning
			c.parkReason = ""
			return true
		}
	}
	// The callback did not (immediately) resume us: fall back to a physical
	// park. The dispatch that is blocked on our hand channel picks the
	// timeline up exactly where the slow path would.
	c.await()
	return true
}

// Unpark schedules the coroutine to resume at the current virtual time. It
// panics if the coroutine is running, done, or already scheduled to resume:
// callers own the lifecycle of the contexts they dispatch, and a double
// unpark always indicates a scheduler bug.
func (c *Coroutine) Unpark() {
	c.UnparkAt(c.b.now)
}

// UnparkAt schedules the coroutine to resume at time t.
func (c *Coroutine) UnparkAt(t Time) {
	if c.state == coDone {
		panic(fmt.Sprintf("sim: Unpark on finished coroutine %s", c.name))
	}
	if c.state == coRunning {
		panic(fmt.Sprintf("sim: Unpark on running coroutine %s", c.name))
	}
	if c.resumeScheduled {
		panic(fmt.Sprintf("sim: duplicate Unpark on coroutine %s", c.name))
	}
	c.resumeScheduled = true
	c.eng.scheduleEvent(t, kindResume, c.name, nil, c)
}

// Destroy unwinds a parked or never-started coroutine immediately, running no
// more of its body (deferred functions in the body do run, as on Close). The
// unwind is a pure goroutine rendezvous: no events are scheduled or
// cancelled, the clock and the trace are untouched, and no resume statistics
// move — so destroying an abandoned context mid-run cannot perturb a
// deterministic timeline. Schedulers use this to reclaim execution contexts
// (and their pooled goroutines) that will never be dispatched again, instead
// of leaving them parked until Engine.Close.
//
// Destroy panics on a coroutine with a resume already scheduled: the pending
// resume would fire against a dead coroutine and be absorbed without
// counting, diverging from a run that dispatched it. Callers must check
// ResumeScheduled first and leave such contexts for Close to reap. Destroying
// a running coroutine panics; a done coroutine (or one on a closed engine)
// is a no-op.
func (c *Coroutine) Destroy() {
	b := c.b
	if b.closed || c.state == coDone {
		return
	}
	if c.state == coRunning || b.cur == c {
		panic(fmt.Sprintf("sim: Destroy on running coroutine %s", c.name))
	}
	if c.resumeScheduled {
		panic(fmt.Sprintf("sim: Destroy on coroutine %s with a resume scheduled", c.name))
	}
	c.kill()
}

// dispatch transfers control to the coroutine and blocks until it parks or
// finishes. It runs in the engine goroutine, inside the resume event.
func (c *Coroutine) dispatch() {
	c.resumeScheduled = false
	if c.state == coDone {
		return
	}
	b := c.b
	prev := b.cur
	b.cur = c
	b.st.LogicalResumes++
	b.st.PhysicalSwitches++
	c.hand <- struct{}{}
	<-c.hand
	b.cur = prev
	b.retire(c)
}

// kill unwinds a parked or not-yet-started coroutine. Called from
// Engine.Close, Engine.Reset, and Coroutine.Destroy only.
func (c *Coroutine) kill() {
	if c.state == coDone || c.state == coRunning {
		return
	}
	c.killed = true
	c.hand <- struct{}{}
	<-c.hand
	c.b.retire(c)
}

// Current reports the coroutine currently executing, or nil when the engine
// is running a plain event callback.
func (b *engineBase) Current() *Coroutine { return b.cur }
