package sim

// Two-level hierarchical timing wheel, keyed on virtual time.
//
// The engine's event queue used to be a single binary heap: O(log n) per
// schedule and per fire. Event-dense workloads (the chaos battery, the
// Figure 1/2 sweeps) schedule almost everything within a few milliseconds of
// now, which a timing wheel serves in O(1): hash the event's time to a slot,
// append to the slot's intrusive list. The far tail — daemon pulses, 50 ms
// disk completions scheduled from a quiet moment, RunUntil horizons — falls
// back to the old indexed heap, which stays in the tree both as the sorted
// overflow level and as the oracle the wheel is property-tested against.
//
// Geometry. A tick is 2^tickBits ns (1024 ns ≈ 1 µs). Level 0 has l0Slots
// slots of one tick each and covers exactly one "chunk" of l0Slots ticks
// (~262 µs); level 1 has l1Slots slots of one chunk each and covers the
// next l1Slots chunks (~67 ms). Beyond that horizon events overflow to the
// heap. Slots are intrusive doubly-linked lists, so schedule and cancel are
// O(1) pointer splices with zero allocation; occupancy bitmaps (one bit per
// slot) make "next non-empty slot" a couple of TrailingZeros calls.
//
// Ordering. The engine's contract is exact (time, seq) order. A level-0
// slot spans one tick, so it can hold events whose times differ in the low
// tickBits bits, interleaved with seq ties. Events append to their slot in
// seq order; the slot is insertion-sorted (in place, allocation-free,
// adaptive — the common all-same-time slot is already sorted and costs one
// linear scan) only when the drain reaches it. Events scheduled into the
// slot currently being drained are sorted-inserted so mid-drain schedules
// interleave exactly where the heap would have put them. A peek compares
// the wheel's head against the overflow heap's top under the same strict
// (time, seq) order, so the merged stream is byte-identical to the heap's.
//
// Windows only move forward. After an idle RunUntil advance the window can
// sit ahead of Now; a subsequent schedule behind the window (rare — only
// harness code between Run calls can do it) drops to the overflow heap,
// which serves it first by the same comparison. Nothing is ever re-indexed.
import "math/bits"

const (
	tickBits = 10 // one tick = 1024 ns ≈ 1 µs of virtual time
	l0Bits   = 8
	l1Bits   = 8
	l0Slots  = 1 << l0Bits
	l1Slots  = 1 << l1Bits
	l0Mask   = l0Slots - 1
	l1Mask   = l1Slots - 1
)

// tickOf maps a virtual time to its wheel tick.
func tickOf(t Time) int64 { return int64(t) >> tickBits }

// slotList is an intrusive doubly-linked list of events.
type slotList struct {
	head, tail *Event
}

func (l *slotList) empty() bool { return l.head == nil }

// append links ev at the tail: O(1), preserves seq order for same-slot
// arrivals.
func (l *slotList) append(ev *Event) {
	ev.prev = l.tail
	ev.next = nil
	if l.tail != nil {
		l.tail.next = ev
	} else {
		l.head = ev
	}
	l.tail = ev
}

// remove unlinks ev: O(1).
func (l *slotList) remove(ev *Event) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		l.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		l.tail = ev.prev
	}
	ev.next, ev.prev = nil, nil
}

// insertSorted places ev into an already-(time,seq)-sorted list, walking
// from the tail: mid-drain schedules are at or after everything queued.
func (l *slotList) insertSorted(ev *Event) {
	p := l.tail
	for p != nil && ev.before(p) {
		p = p.prev
	}
	if p == nil { // new head
		ev.prev = nil
		ev.next = l.head
		if l.head != nil {
			l.head.prev = ev
		} else {
			l.tail = ev
		}
		l.head = ev
		return
	}
	ev.prev = p
	ev.next = p.next
	if p.next != nil {
		p.next.prev = ev
	} else {
		l.tail = ev
	}
	p.next = ev
}

// sort insertion-sorts the list into (time, seq) order in place. Events
// were appended in seq order, so the list is already sorted wherever times
// agree; insertion sort's adaptivity makes the common case one linear scan.
func (l *slotList) sort() {
	if l.head == nil || l.head.next == nil {
		return
	}
	cur := l.head.next
	for cur != nil {
		next := cur.next
		if cur.before(cur.prev) {
			// Unlink cur and walk left to its insertion point.
			p := cur.prev
			l.remove(cur)
			for p.prev != nil && cur.before(p.prev) {
				p = p.prev
			}
			// Insert cur before p.
			cur.prev = p.prev
			cur.next = p
			if p.prev != nil {
				p.prev.next = cur
			} else {
				l.head = cur
			}
			p.prev = cur
		}
		cur = next
	}
}

// bitmap is a fixed 256-bit occupancy set (one word per 64 slots).
type bitmap [l0Slots / 64]uint64

func (b *bitmap) set(i int)      { b[i>>6] |= 1 << (i & 63) }
func (b *bitmap) clear(i int)    { b[i>>6] &^= 1 << (i & 63) }
func (b *bitmap) has(i int) bool { return b[i>>6]&(1<<(i&63)) != 0 }

// next returns the first set bit at or after from (no wrap), or -1.
func (b *bitmap) next(from int) int {
	if from >= len(b)*64 {
		return -1
	}
	w := from >> 6
	word := b[w] >> (from & 63) << (from & 63) // mask bits below from
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(b) {
			return -1
		}
		word = b[w]
	}
}

// nextWrap returns the first set bit at or after from, wrapping once, or -1.
func (b *bitmap) nextWrap(from int) int {
	if i := b.next(from); i >= 0 {
		return i
	}
	if i := b.next(0); i >= 0 && i < from {
		return i
	}
	return -1
}

// wheel is the two-level hierarchy. Level 0 covers chunk curChunk; level 1
// covers chunks (curChunk, curChunk+l1Slots]. Slot indices are absolute
// residues (tick & l0Mask, chunk & l1Mask), injective within their window.
type wheel struct {
	curChunk int64 // the chunk level 0 currently covers
	scanTick int64 // drain position: no wheel event has tick < scanTick
	sorted   int64 // tick whose level-0 slot is sorted, -1 when none
	count    int   // events in the wheel (both levels, excluding the heap)
	l0       [l0Slots]slotList
	l1       [l1Slots]slotList
	occ0     bitmap
	occ1     bitmap
}

func (w *wheel) reset() {
	*w = wheel{sorted: -1}
}

// horizonTick is the first tick beyond the level-1 window.
func (w *wheel) horizonTick() int64 {
	return (w.curChunk + 1 + l1Slots) << l0Bits
}

// pushL0 files ev (whose tick tk is inside the current chunk) into level 0.
func (w *wheel) pushL0(ev *Event, tk int64) {
	s := int(tk & l0Mask)
	ev.loc = locWheel
	ev.slot = int32(s)
	if tk == w.sorted {
		w.l0[s].insertSorted(ev)
	} else {
		w.l0[s].append(ev)
	}
	w.occ0.set(s)
	w.count++
	if tk < w.scanTick {
		// A schedule landed behind the drain position (the slot was empty
		// when the scan passed it). Rewind the scan; the skipped slots are
		// still empty, so the bitmap walk re-covers them for free.
		w.scanTick = tk
	}
}

// pushL1 files ev (whose chunk ch is inside the level-1 window) into level 1.
func (w *wheel) pushL1(ev *Event, ch int64) {
	s := int(ch & l1Mask)
	ev.loc = locWheel
	ev.slot = int32(l0Slots + s)
	w.l1[s].append(ev)
	w.occ1.set(s)
	w.count++
}

// remove unlinks a queued wheel event: O(1).
func (w *wheel) remove(ev *Event) {
	s := int(ev.slot)
	if s < l0Slots {
		w.l0[s].remove(ev)
		if w.l0[s].empty() {
			w.occ0.clear(s)
		}
	} else {
		s -= l0Slots
		w.l1[s].remove(ev)
		if w.l1[s].empty() {
			w.occ1.clear(s)
		}
	}
	w.count--
}

// nextL0 finds the earliest occupied level-0 tick at or after the scan
// position within the current chunk, or ok=false when the chunk is drained.
// The chunk base is l0Slots-aligned, so slot residues within the chunk are
// in tick order and the bitmap scan needs no wrap.
func (w *wheel) nextL0() (int64, bool) {
	base := w.curChunk << l0Bits
	if i := w.occ0.next(int(w.scanTick - base)); i >= 0 {
		return base + int64(i), true
	}
	return 0, false
}

// nextL1 finds the earliest occupied level-1 chunk in the window
// (curChunk, curChunk+l1Slots], or ok=false. Residues wrap around the ring;
// the distance from the window start recovers the absolute chunk.
func (w *wheel) nextL1() (int64, bool) {
	from := int((w.curChunk + 1) & l1Mask)
	if r := w.occ1.nextWrap(from); r >= 0 {
		return w.curChunk + 1 + int64((r-from)&l1Mask), true
	}
	return 0, false
}
