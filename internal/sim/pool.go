package sim

// Pool recycles coroutine goroutines across engines. A fleet worker sweeping
// many seeds creates thousands of short-lived coroutines; without a pool each
// one is a fresh goroutine (spawn cost plus a cold 8 KiB stack that regrows
// on first deep call). A pooled engine instead re-arms a warm parked
// goroutine — with its grown stack — for each Engine.Go.
//
// A Pool is confined to one goroutine, the same one that drives the engines
// created from it: the fleet worker (or test) that owns the pool must create
// engines with Pool.NewEngine, drive them, Close them, and finally Close the
// pool. Engines of the same pool may be live concurrently only in the trivial
// sense of existing; they are still driven one at a time by the owner.
//
// Pooling is invisible to the simulation: which goroutine hosts a coroutine
// body is not observable from simulated code (the strict hand-off discipline
// means at most one body runs at a time regardless), so a pooled run's
// timeline, traces, and fingerprints are byte-identical to an unpooled run.
// The lockstep property test and FuzzPooledVsUnpooled pin exactly that.
type Pool struct {
	free   []*spare
	closed bool

	// Stats counts pool activity. These are host-side numbers: they depend
	// on fleet scheduling (which worker's pool served which seed), so they
	// must never feed a determinism fingerprint.
	Stats struct {
		Spawned uint64 // fresh goroutines created through the pool
		Reused  uint64 // Engine.Go calls served by a warm goroutine
	}
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// NewEngine returns an engine whose coroutine goroutines are drawn from
// (and returned to) the pool: the reference sequential engine, or the
// conservative PDES engine when WithLPs selects one or more logical
// processes. A nil *Pool is valid and yields a plain unpooled engine, so
// call sites can thread an optional pool without branching.
func (p *Pool) NewEngine(opts ...Option) Engine {
	if p != nil && p.closed {
		panic("sim: NewEngine on closed Pool")
	}
	c := buildConfig(opts)
	if c.lps > 0 {
		return newParEngine(p, c)
	}
	return newSeqEngine(p, c)
}

// Idle reports how many warm goroutines are parked in the pool right now.
func (p *Pool) Idle() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// Close retires every idle pooled goroutine. Engines created from the pool
// must be Closed first — Close only reaps goroutines that have been returned.
// Close is idempotent; a closed pool cannot create engines.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	for i, s := range p.free {
		close(s.arm)
		p.free[i] = nil
	}
	p.free = nil
}

// spawnReq is one re-arm request: run fn as coroutine c.
type spawnReq struct {
	c  *Coroutine
	fn func(*Coroutine)
}

// spare is one warm goroutine parked between coroutine lifetimes. The arm
// channel is buffered so re-arming never blocks the engine side; the hand
// channel is the strict hand-off token channel every coroutine hosted on
// this goroutine reuses.
type spare struct {
	arm  chan spawnReq
	hand chan struct{}
}

// launch binds c to a pooled goroutine — warm if one is idle, freshly
// spawned otherwise — and arms it with fn. The coroutine stays dormant until
// its first dispatch, exactly like an unpooled one.
func (p *Pool) launch(c *Coroutine, fn func(*Coroutine)) {
	var s *spare
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.Stats.Reused++
	} else {
		s = &spare{arm: make(chan spawnReq, 1), hand: make(chan struct{})}
		p.Stats.Spawned++
		go s.loop()
	}
	c.hand = s.hand
	c.spare = s
	s.arm <- spawnReq{c, fn}
}

// loop hosts one coroutine body after another until the pool closes the arm
// channel. Each run call returns (rather than letting the goroutine exit)
// when its coroutine finishes or is killed.
func (s *spare) loop() {
	for req := range s.arm {
		req.c.run(req.fn)
	}
}

// put returns a finished coroutine's goroutine to the pool for reuse. Called
// from the engine side only, after the final hand-off, so the goroutine is
// guaranteed to be back at its arm receive. After Close the goroutine is
// retired instead of pooled.
func (p *Pool) put(s *spare) {
	if p.closed {
		close(s.arm)
		return
	}
	p.free = append(p.free, s)
}
