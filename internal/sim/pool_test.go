package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// runObs is everything observable about one interpreted run: the ordered
// event log (virtual time + actor + action), the final clock, and the
// simulation-side statistics. Two configurations are equivalent iff their
// runObs are deep-equal; PhysicalSwitches is deliberately excluded — it is
// the one value the fast path is allowed (indeed, expected) to change.
type runObs struct {
	log      []string
	end      Time
	events   uint64
	logical  uint64
	sched    uint64
	cancels  uint64
	overfl   uint64
	maxPend  int
	physical uint64 // compared only against logical, never across configs
}

// interpret runs the byte-encoded coroutine workload on a fresh engine drawn
// from pool (nil = unpooled), with the elision fast path optionally forced
// off, plus any extra engine options (the PDES equivalence tests pass
// WithLPs and friends). The workload mixes the primitives every layer above
// builds on — Sleep (with and without competing events), charge-completion
// callbacks through InlineCharge, Unpark by plain events, and child spawning
// (which on a pooled engine recycles goroutines mid-run).
func interpret(program []byte, pool *Pool, disableElision bool, extra ...Option) runObs {
	e := pool.NewEngine(append([]Option{WithElision(!disableElision)}, extra...)...)
	defer e.Close()

	var obs runObs
	logf := func(format string, args ...any) {
		obs.log = append(obs.log, fmt.Sprintf("%d ", e.Now())+fmt.Sprintf(format, args...))
	}

	ncos := 1 + int(at(program, 0))%4
	var body func(id int, ops []byte) func(*Coroutine)
	body = func(id int, ops []byte) func(*Coroutine) {
		return func(c *Coroutine) {
			for i := 0; i < len(ops); i++ {
				b := ops[i]
				arg := Duration(b/8%16) * Microsecond
				switch b % 8 {
				case 0, 1: // sleep: elides when nothing else fires first
					logf("co%d sleep %v", id, arg)
					c.Sleep(arg)
				case 2: // competing event, then sleep past it
					logf("co%d race", id)
					e.After(arg/2, "racer", func() { logf("racer for co%d", id) })
					c.Sleep(arg)
				case 3, 4: // charge: completion callback unparks us
					logf("co%d charge %v", id, arg)
					h := e.AfterNamed(arg, "charge-done", c.Name(), func() {
						logf("charge-done co%d", id)
						if c.Parked() && !c.ResumeScheduled() {
							c.Unpark()
						}
					})
					if !c.InlineCharge(h, "charge") {
						c.Park("charge")
					}
				case 5: // spawn a child; on a pooled engine this recycles goroutines
					if i+3 < len(ops) {
						child := e.Go(fmt.Sprintf("co%d.%d", id, i), body(100*id+i, ops[i+1:i+3]))
						child.UnparkAt(e.Now().Add(arg))
						i += 2
					}
					logf("co%d spawned", id)
				case 6: // zero-length sleep
					logf("co%d sleep0", id)
					c.Sleep(0)
				case 7: // plain timed event racing ahead
					e.After(arg, "tick", func() { logf("tick co%d", id) })
					logf("co%d tick-armed", id)
				}
			}
			logf("co%d done", id)
		}
	}

	per := 1
	if len(program) > 1 {
		per = (len(program)-1+ncos-1)/ncos + 1
	}
	for i := 0; i < ncos; i++ {
		lo := 1 + i*per
		hi := lo + per
		if lo > len(program) {
			lo = len(program)
		}
		if hi > len(program) {
			hi = len(program)
		}
		c := e.Go(fmt.Sprintf("co%d", i), body(i, program[lo:hi]))
		c.UnparkAt(e.Now().Add(Duration(i) * Microsecond))
	}
	e.Run()

	obs.end = e.Now()
	obs.events = e.Stats().Events
	obs.logical = e.Stats().LogicalResumes
	obs.physical = e.Stats().PhysicalSwitches
	obs.sched = e.Stats().Scheduled
	obs.cancels = e.Stats().Cancels
	obs.overfl = e.Stats().Overflows
	obs.maxPend = e.Stats().MaxPending
	return obs
}

func at(b []byte, i int) byte {
	if i >= len(b) {
		return 0
	}
	return b[i]
}

// same compares every determinism-relevant field of two runs.
func (a runObs) same(b runObs) string {
	if a.end != b.end {
		return fmt.Sprintf("end %v vs %v", a.end, b.end)
	}
	if a.events != b.events || a.logical != b.logical || a.sched != b.sched ||
		a.cancels != b.cancels || a.overfl != b.overfl || a.maxPend != b.maxPend {
		return fmt.Sprintf("stats {ev %d res %d sch %d can %d ovf %d max %d} vs {ev %d res %d sch %d can %d ovf %d max %d}",
			a.events, a.logical, a.sched, a.cancels, a.overfl, a.maxPend,
			b.events, b.logical, b.sched, b.cancels, b.overfl, b.maxPend)
	}
	if len(a.log) != len(b.log) {
		return fmt.Sprintf("log length %d vs %d", len(a.log), len(b.log))
	}
	for i := range a.log {
		if a.log[i] != b.log[i] {
			return fmt.Sprintf("log[%d] %q vs %q", i, a.log[i], b.log[i])
		}
	}
	return ""
}

// checkEquivalence runs one program under every execution strategy — the
// physical-hand-off baseline, the elision fast path, and both again on a
// shared pool (the pooled runs back-to-back, so the second draws only warm
// goroutines) — and fails on the first observable divergence.
func checkEquivalence(t *testing.T, program []byte) {
	t.Helper()
	base := interpret(program, nil, true) // all-physical, unpooled: the oracle
	if base.logical != base.physical {
		t.Fatalf("baseline elided switches with DisableElision: logical %d physical %d", base.logical, base.physical)
	}
	elided := interpret(program, nil, false)
	if diff := base.same(elided); diff != "" {
		t.Fatalf("elision changed the run: %s", diff)
	}
	if elided.physical > elided.logical {
		t.Fatalf("physical %d > logical %d", elided.physical, elided.logical)
	}
	pool := NewPool()
	defer pool.Close()
	cold := interpret(program, pool, false)
	if diff := base.same(cold); diff != "" {
		t.Fatalf("pooled (cold) run diverged: %s", diff)
	}
	warm := interpret(program, pool, false)
	if diff := base.same(warm); diff != "" {
		t.Fatalf("pooled (warm) run diverged: %s", diff)
	}
	if pool.Stats.Spawned > 0 && pool.Stats.Reused == 0 && base.logical > 0 {
		// Two identical runs on one pool: the second must have found warm
		// goroutines unless the program spawned no coroutine bodies at all.
		t.Fatalf("pool never reused a goroutine: %+v", pool.Stats)
	}
}

// TestPooledLockstepMatchesUnpooled is the lockstep property test: random
// programs, every strategy, byte-identical observations — the pool/elision
// analogue of the wheel-vs-heap oracle test.
func TestPooledLockstepMatchesUnpooled(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		program := make([]byte, 4+rng.Intn(60))
		rng.Read(program)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkEquivalence(t, program)
		})
	}
}

// FuzzPooledVsUnpooled hands the interpreter arbitrary programs; any
// observable difference between physical, elided, and pooled execution is a
// crash. Mirrors FuzzWheelVsHeapOracle at the coroutine layer.
func FuzzPooledVsUnpooled(f *testing.F) {
	f.Add([]byte{2, 0, 16, 3, 40, 5, 1, 1, 6, 2, 80, 7, 33})
	f.Add([]byte{0, 9, 9, 9})
	f.Add([]byte{3, 5, 0, 0, 5, 18, 18, 26, 42})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 512 {
			// Equivalence over long programs is length-uniform; cap the cost
			// per exec so the fuzzer explores shapes, not sizes.
			program = program[:512]
		}
		checkEquivalence(t, program)
	})
}

// TestSleepZeroFastPath pins Sleep(0) semantics under elision: the clock
// does not move, execution continues in place, and a same-instant event
// scheduled earlier still fires first.
func TestSleepZeroFastPath(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var log []string
	c := e.Go("z", func(c *Coroutine) {
		log = append(log, "before")
		c.Sleep(0) // queue holds only our wake: elides
		log = append(log, fmt.Sprintf("after@%d", e.Now()))
		e.After(0, "same-instant", func() { log = append(log, "event") })
		c.Sleep(0) // the same-instant event has a smaller seq: must fire first
		log = append(log, "last")
	})
	c.Unpark()
	e.Run()
	want := "before,after@0,event,last"
	if got := strings.Join(log, ","); got != want {
		t.Fatalf("log = %s, want %s", got, want)
	}
	if e.Now() != 0 {
		t.Fatalf("Sleep(0) advanced the clock to %v", e.Now())
	}
}

// TestUnparkRacingSameInstantWake pins the ordering the machine layer's
// resumeIfWaiting relies on: an event at the same instant as a sleep's wake
// (but scheduled earlier) runs first, observes the sleeper parked with its
// resume pending, and must not Unpark it.
func TestUnparkRacingSameInstantWake(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	const d = 5 * Microsecond
	var sawParked, sawResume bool
	var c *Coroutine
	woke := false
	e.After(d, "racer", func() {
		sawParked = c.Parked()
		sawResume = c.ResumeScheduled()
		if woke {
			t.Fatal("wake fired before the earlier-scheduled racer")
		}
		if !sawResume {
			c.Unpark() // would be the machine-layer bug this test guards
		}
	})
	c = e.Go("sleeper", func(c *Coroutine) {
		c.Sleep(d) // racer has a smaller seq at the same instant: no elision
		woke = true
	})
	c.Unpark()
	e.Run()
	if !woke {
		t.Fatal("sleeper never woke")
	}
	if !sawParked || !sawResume {
		t.Fatalf("racer saw parked=%v resumeScheduled=%v, want true/true", sawParked, sawResume)
	}
}

// TestPooledKillMidReuse closes an engine with pooled coroutines in every
// pre-done state — never started, parked — and checks each goroutine comes
// back to the pool ready for the next engine.
func TestPooledKillMidReuse(t *testing.T) {
	pool := NewPool()
	defer pool.Close()

	e := pool.NewEngine()
	parked := e.Go("parked", func(c *Coroutine) {
		// RunUntil's fire ceiling is 1µs, so this wake cannot elide: the
		// coroutine physically parks mid-sleep.
		c.Sleep(Second)
	})
	parked.Unpark()
	e.RunUntil(Time(Microsecond)) // sleeper now parked mid-sleep
	_ = e.Go("unstarted", func(c *Coroutine) { t.Error("unstarted body ran") })
	e.Close() // kills both
	if !parked.Done() {
		t.Fatal("parked coroutine not unwound by Close")
	}
	if got := pool.Idle(); got != 2 {
		t.Fatalf("Idle() = %d after Close, want 2", got)
	}

	// The same goroutines must cleanly host the next engine's coroutines.
	e2 := pool.NewEngine()
	ran := false
	c := e2.Go("fresh", func(c *Coroutine) { ran = true })
	c.Unpark()
	e2.Run()
	e2.Close()
	if !ran {
		t.Fatal("reused goroutine did not run the new body")
	}
	if pool.Stats.Reused == 0 {
		t.Fatalf("no reuse recorded: %+v", pool.Stats)
	}
	if got := pool.Idle(); got != 2 {
		t.Fatalf("Idle() = %d after second engine, want 2", got)
	}
}

// TestPooledPanicPropagates pins the panic contract: a panic in a pooled
// coroutine body surfaces on the engine goroutine as *CoroutinePanic — where
// the driving test can recover it — and the hosting goroutine returns to the
// pool unpoisoned, immediately reusable.
func TestPooledPanicPropagates(t *testing.T) {
	pool := NewPool()
	defer pool.Close()

	e := pool.NewEngine()
	c := e.Go("bomb", func(c *Coroutine) {
		c.Sleep(Microsecond)
		panic("boom")
	})
	c.Unpark()
	func() {
		defer func() {
			r := recover()
			cp, ok := r.(*CoroutinePanic)
			if !ok {
				t.Fatalf("recovered %T (%v), want *CoroutinePanic", r, r)
			}
			if cp.Co != "bomb" || cp.Value != "boom" || len(cp.Stack) == 0 {
				t.Fatalf("CoroutinePanic = {Co:%q Value:%v stack:%dB}", cp.Co, cp.Value, len(cp.Stack))
			}
		}()
		e.Run()
		t.Fatal("Run returned instead of panicking")
	}()
	e.Close()

	// The pool must not be poisoned: the goroutine that hosted the panic is
	// idle again and runs the next body normally.
	if got := pool.Idle(); got != 1 {
		t.Fatalf("Idle() = %d after panic, want 1", got)
	}
	e2 := pool.NewEngine()
	ok := false
	c2 := e2.Go("next", func(c *Coroutine) { c.Sleep(Microsecond); ok = true })
	c2.Unpark()
	e2.Run()
	e2.Close()
	if !ok {
		t.Fatal("post-panic reuse did not run")
	}
	if pool.Stats.Spawned != 1 || pool.Stats.Reused != 1 {
		t.Fatalf("pool stats = %+v, want 1 spawn + 1 reuse", pool.Stats)
	}
}

// TestUnpooledPanicPropagates: same contract without a pool, so tests around
// plain engines can rely on recover() too.
func TestUnpooledPanicPropagates(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	c := e.Go("bomb", func(c *Coroutine) { panic(42) })
	c.Unpark()
	defer func() {
		cp, ok := recover().(*CoroutinePanic)
		if !ok || cp.Value != 42 {
			t.Fatalf("recovered %v, want *CoroutinePanic{Value:42}", cp)
		}
	}()
	e.Run()
	t.Fatal("Run returned instead of panicking")
}

// TestClosedPoolRefusesEnginesButReleasesSpares pins Close semantics.
func TestClosedPoolRefusesEngines(t *testing.T) {
	pool := NewPool()
	pool.Close()
	pool.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine on closed pool did not panic")
		}
	}()
	pool.NewEngine()
}

// TestElisionCountsSwitches pins the stats split at the sim layer: a lone
// sleeper's resumptions are all logical, near-zero physical; with elision
// disabled the two counts match.
func TestElisionCountsSwitches(t *testing.T) {
	run := func(disable bool) (logical, physical uint64) {
		e := NewEngine(WithElision(!disable))
		defer e.Close()
		c := e.Go("s", func(c *Coroutine) {
			for i := 0; i < 100; i++ {
				c.Sleep(Microsecond)
			}
		})
		c.Unpark()
		e.Run()
		return e.Stats().LogicalResumes, e.Stats().PhysicalSwitches
	}
	l0, p0 := run(true)
	if l0 != p0 {
		t.Fatalf("DisableElision: logical %d != physical %d", l0, p0)
	}
	l1, p1 := run(false)
	if l1 != l0 {
		t.Fatalf("elision changed logical resumes: %d vs %d", l1, l0)
	}
	// The initial dispatch is physical; all 100 sleeps elide.
	if p1 != 1 {
		t.Fatalf("physical switches = %d, want 1 (the initial dispatch)", p1)
	}
}
