package sim

import "testing"

// benchDelays is a fixed pseudo-random spread of delays for the queue
// benchmarks: dense (most events land within ~200µs of now, the regime the
// wheel is built for) with a far tail that exercises the overflow level.
func benchDelays() [1024]Duration {
	var d [1024]Duration
	s := uint64(0x9e3779b97f4a7c15)
	for i := range d {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		switch {
		case i%64 == 63: // tail: beyond the ~67ms wheel horizon
			d[i] = Duration(100+s%400) * Millisecond
		default:
			d[i] = Duration(s % uint64(200*Microsecond))
		}
	}
	return d
}

// BenchmarkEventQueue compares the engine's two-level timing wheel against
// the raw indexed binary heap it replaced, on the same hold pattern: a queue
// held at constant depth, each op firing the earliest event and scheduling a
// replacement. The heap side reproduces exactly what the old engine's
// schedule/fire hot path did — free-list alloc + push, pop + recycle — so
// the comparison isolates the queue discipline.
func BenchmarkEventQueue(b *testing.B) {
	const depth = 512
	delays := benchDelays()

	b.Run("wheel", func(b *testing.B) {
		e := NewEngine()
		defer e.Close()
		nop := func() {}
		for i := 0; i < depth; i++ {
			e.After(delays[i&1023], "bench", nop)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
			e.After(delays[i&1023], "bench", nop)
		}
	})

	b.Run("heap", func(b *testing.B) {
		var (
			pq   eventHeap
			free []*Event
			now  Time
			seq  uint64
		)
		push := func(d Duration) {
			var ev *Event
			if n := len(free); n > 0 {
				ev, free = free[n-1], free[:n-1]
			} else {
				ev = &Event{index: -1}
			}
			seq++
			ev.t, ev.seq = now.Add(d), seq
			pq.push(ev)
		}
		for i := 0; i < depth; i++ {
			push(delays[i&1023])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := pq.pop()
			now = ev.t
			free = append(free, ev)
			push(delays[i&1023])
		}
	})
}

// BenchmarkEventQueueCancel compares cancellation: O(1) slot-list unlink in
// the wheel versus O(log n) sift in the heap. Each op schedules an event and
// cancels it again at constant background depth.
func BenchmarkEventQueueCancel(b *testing.B) {
	const depth = 512
	delays := benchDelays()

	b.Run("wheel", func(b *testing.B) {
		e := NewEngine()
		defer e.Close()
		nop := func() {}
		for i := 0; i < depth; i++ {
			e.After(delays[i&1023], "bench", nop)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.After(delays[i&1023], "bench", nop).Cancel()
		}
	})

	b.Run("heap", func(b *testing.B) {
		var (
			pq   eventHeap
			free []*Event
			seq  uint64
		)
		push := func(d Duration) *Event {
			var ev *Event
			if n := len(free); n > 0 {
				ev, free = free[n-1], free[:n-1]
			} else {
				ev = &Event{index: -1}
			}
			seq++
			ev.t, ev.seq = Time(d), seq
			pq.push(ev)
			return ev
		}
		for i := 0; i < depth; i++ {
			push(delays[i&1023])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := push(delays[i&1023])
			pq.remove(ev)
			free = append(free, ev)
		}
	})
}

// BenchmarkHookDispatch measures the hook seam's cost on the schedule+fire
// hot path at constant queue depth. The no-hook case is the one every
// ordinary run pays — a per-position bitmask test — and must stay at 0
// allocs/op (TestHookDispatchDoesNotAllocate gates that in the tier-1 run);
// the hooked cases price one PreFire observer and a full five-position
// observer set, both dispatching through the engine's reused HookCtx.
func BenchmarkHookDispatch(b *testing.B) {
	const depth = 512
	delays := benchDelays()
	run := func(b *testing.B, install func(e Engine)) {
		e := NewEngine()
		defer e.Close()
		install(e)
		nop := func() {}
		for i := 0; i < depth; i++ {
			e.After(delays[i&1023], "bench", nop)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
			e.After(delays[i&1023], "bench", nop)
		}
	}
	var sink uint64
	b.Run("nohooks", func(b *testing.B) {
		run(b, func(Engine) {})
	})
	b.Run("prefire", func(b *testing.B) {
		run(b, func(e Engine) {
			e.Hooks().Register(HookPreFire, HookFunc(func(ctx *HookCtx) { sink += ctx.Seq }))
		})
	})
	b.Run("allpositions", func(b *testing.B) {
		run(b, func(e Engine) {
			for pos := HookPos(0); pos < numHookPos; pos++ {
				e.Hooks().Register(pos, HookFunc(func(ctx *HookCtx) { sink += ctx.Seq }))
			}
		})
	})
}
