package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRetiredStatsSinkStaysGone pins the removal of the deprecated
// process-wide stats-sink global: the identifier must not reappear anywhere
// in the package source. Stats observation goes through per-engine close
// hooks (OnClose / Hooks().OnClose) instead — attachment at construction,
// no cross-engine shared mutable state. The banned name is assembled from
// pieces so this file does not match its own gate.
func TestRetiredStatsSinkStaysGone(t *testing.T) {
	banned := "Stats" + "Sink"
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no package sources found")
	}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(b), banned) {
			t.Errorf("%s mentions retired symbol %s; use per-engine close hooks", f, banned)
		}
	}
}

// TestSimConcurrencyIsAudited gates unaudited concurrency out of the
// simulator core: the whole point of the engine contract is one
// deterministic timeline, so goroutines and channels may appear only in the
// files whose synchronization discipline is documented and race-tested —
// the coroutine hand-off, the goroutine pool, and the PDES engine's
// LP protocol. A `go` statement or channel make anywhere else in the
// package is a design violation, not a style nit. (make lint enforces the
// same rule from outside the package.)
func TestSimConcurrencyIsAudited(t *testing.T) {
	audited := map[string]bool{
		"coroutine.go": true, // strict hand-off: one runnable goroutine at a time
		"pool.go":      true, // warm goroutine pool behind the same hand-off
		"lp.go":        true, // PDES logical-process command loop
		"par.go":       true, // PDES driver side of the LP protocol
	}
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") || audited[f] {
			continue
		}
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		src := string(b)
		for _, pat := range []string{"go func", "go l.", "go s.", "make(chan"} {
			if strings.Contains(src, pat) {
				t.Errorf("%s contains %q: concurrency in internal/sim is restricted to the audited files", f, pat)
			}
		}
	}
}
