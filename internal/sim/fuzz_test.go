package sim

import (
	"sort"
	"testing"
)

// FuzzEventHeapOps drives the engine with an arbitrary byte-encoded program
// of At/After/Cancel/Step operations and checks the heap invariants the
// whole simulator rests on: surviving events fire in (time, seq) order,
// Pending is exact at every point, and draining the queue leaves nothing
// behind (no tombstone leaks).
func FuzzEventHeapOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 5, 2, 0, 3, 0, 20, 2, 1})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 2, 0, 2, 0, 3, 3, 3})
	f.Add([]byte{0, 0, 0, 0, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, program []byte) {
		e := NewEngine()
		defer e.Close()
		type rec struct {
			t   Time
			seq int
		}
		var fired []rec
		var handles []Handle
		live, next := 0, 0
		pc := 0
		read := func() int {
			if pc >= len(program) {
				return 0
			}
			b := program[pc]
			pc++
			return int(b)
		}
		for pc < len(program) {
			switch read() % 4 {
			case 0: // After
				id := next
				next++
				handles = append(handles, e.After(Duration(read()%64)*Microsecond, "fuzz-after", func() {
					fired = append(fired, rec{e.Now(), id})
				}))
				live++
			case 1: // At
				id := next
				next++
				handles = append(handles, e.At(e.Now().Add(Duration(read()%64)*Microsecond), "fuzz-at", func() {
					fired = append(fired, rec{e.Now(), id})
				}))
				live++
			case 2: // Cancel an arbitrary handle (possibly stale)
				if len(handles) > 0 {
					if handles[read()%len(handles)].Cancel() {
						live--
					}
				}
			case 3: // Step
				if e.Step() {
					live--
				}
			}
			if e.Pending() != live {
				t.Fatalf("Pending() = %d, want %d live events", e.Pending(), live)
			}
		}
		firedBefore := len(fired)
		e.Run()
		if e.Pending() != 0 {
			t.Fatalf("Pending() = %d after drain, want 0", e.Pending())
		}
		if len(fired) != firedBefore+live {
			t.Fatalf("drain fired %d events, want the %d still live", len(fired)-firedBefore, live)
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].t != fired[j].t {
				return fired[i].t < fired[j].t
			}
			return fired[i].seq < fired[j].seq
		}) {
			t.Fatalf("events fired out of (time, seq) order: %v", fired)
		}
	})
}
