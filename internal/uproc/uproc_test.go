package uproc

import (
	"testing"

	"schedact/internal/kernel"
	"schedact/internal/sim"
)

func newWorld(t *testing.T, cpus int) (sim.Engine, *World) {
	t.Helper()
	eng := sim.NewEngine()
	t.Cleanup(eng.Close)
	return eng, NewWorld(kernel.New(eng, kernel.Config{CPUs: cpus}))
}

func TestForkWaitRoundTrip(t *testing.T) {
	eng, w := newWorld(t, 1)
	var childRan, parentDone sim.Time
	w.Start("sh", func(p *Process) {
		c := p.Fork("child", func(c *Process) {
			c.Exec(sim.Ms(1))
			childRan = eng.Now()
		})
		p.Wait(c)
		parentDone = eng.Now()
	})
	eng.Run()
	if childRan == 0 || parentDone == 0 {
		t.Fatal("processes did not run")
	}
	if parentDone < childRan {
		t.Fatal("wait returned before the child finished")
	}
}

func TestProcessForkIsHeavy(t *testing.T) {
	// Table 1: process creation is an order of magnitude above even kernel
	// threads (~11.3ms vs ~1ms).
	eng, w := newWorld(t, 1)
	var childStart sim.Time
	w.Start("sh", func(p *Process) {
		p.Fork("child", func(c *Process) { childStart = eng.Now() })
	})
	eng.Run()
	if childStart < sim.Time(9*sim.Millisecond) {
		t.Fatalf("child started at %v; process fork should cost ~10ms", childStart)
	}
}

func TestProcessesRunInSeparateSpaces(t *testing.T) {
	eng, w := newWorld(t, 1)
	var spaces []string
	w.Start("sh", func(p *Process) {
		spaces = append(spaces, p.Thread().Space().Name)
		c := p.Fork("child", func(c *Process) {
			spaces = append(spaces, c.Thread().Space().Name)
		})
		p.Wait(c)
	})
	eng.Run()
	if len(spaces) != 2 || spaces[0] == spaces[1] {
		t.Fatalf("spaces = %v, want two distinct address spaces", spaces)
	}
}

func TestSemaphorePingPong(t *testing.T) {
	eng, w := newWorld(t, 1)
	a := w.NewSemaphore(0)
	b := w.NewSemaphore(0)
	var log []string
	w.Start("p1", func(p *Process) {
		for i := 0; i < 3; i++ {
			a.P(p)
			log = append(log, "p1")
			b.V(p)
		}
	})
	w.Start("p2", func(p *Process) {
		for i := 0; i < 3; i++ {
			a.V(p)
			b.P(p)
			log = append(log, "p2")
		}
	})
	eng.Run()
	if len(log) != 6 {
		t.Fatalf("log = %v, want 6 entries", log)
	}
	for i := 0; i+1 < len(log); i += 2 {
		if log[i] != "p1" || log[i+1] != "p2" {
			t.Fatalf("log = %v, want strict p1/p2 alternation", log)
		}
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	eng, w := newWorld(t, 2)
	mutex := w.NewSemaphore(1)
	inside, max, total := 0, 0, 0
	for i := 0; i < 3; i++ {
		w.Start("worker", func(p *Process) {
			for j := 0; j < 3; j++ {
				mutex.P(p)
				inside++
				if inside > max {
					max = inside
				}
				p.Exec(sim.Ms(1))
				inside--
				total++
				mutex.V(p)
			}
		})
	}
	eng.Run()
	if total != 9 {
		t.Fatalf("total = %d, want 9", total)
	}
	if max != 1 {
		t.Fatalf("max inside = %d, want 1", max)
	}
}

func TestCoarseGrainedParallelismOnly(t *testing.T) {
	// §1's claim: processes "handle only coarse-grained parallelism well".
	// With fine-grained tasks the fork+wait overhead dwarfs the work; with
	// coarse tasks parallel processes win.
	run := func(taskWork sim.Duration, tasks int) (par, seq sim.Duration) {
		{
			eng, w := newWorld(t, 2)
			var done sim.Time
			w.Start("par", func(p *Process) {
				var kids []*Process
				for i := 0; i < tasks; i++ {
					kids = append(kids, p.Fork("task", func(c *Process) { c.Exec(taskWork) }))
				}
				for _, c := range kids {
					p.Wait(c)
				}
				done = eng.Now()
			})
			eng.Run()
			par = sim.Duration(done)
		}
		{
			eng, w := newWorld(t, 2)
			var done sim.Time
			w.Start("seq", func(p *Process) {
				for i := 0; i < tasks; i++ {
					p.Exec(taskWork)
				}
				done = eng.Now()
			})
			eng.Run()
			seq = sim.Duration(done)
		}
		return par, seq
	}
	finePar, fineSeq := run(sim.Ms(1), 8) // 1ms tasks: fork cost 10× the work
	if finePar < fineSeq {
		t.Fatalf("fine-grained: parallel processes (%v) should lose to sequential (%v)", finePar, fineSeq)
	}
	coarsePar, coarseSeq := run(200*sim.Millisecond, 8) // 200ms tasks
	if coarsePar >= coarseSeq {
		t.Fatalf("coarse-grained: parallel processes (%v) should beat sequential (%v)", coarsePar, coarseSeq)
	}
}
