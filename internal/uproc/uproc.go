// Package uproc is the Ultrix-process baseline of Table 1: traditional
// UNIX-like processes — one address space, one sequential execution stream —
// multiprogrammed by the kernel. Every process operation pays process-scale
// costs (address-space creation and switching, signal delivery through the
// kernel), which is why the paper's Table 1 shows them an order of
// magnitude above even kernel threads, and why "they handle only
// coarse-grained parallelism well" (§1).
//
// Mechanically a process is a kernel thread in its own Heavy address space:
// the kernel package charges ProcForkWork/ProcDispatch/ProcSignalWork for
// Heavy spaces, so the scheduling machinery is shared while the cost
// profile is the process one.
package uproc

import (
	"schedact/internal/kernel"
	"schedact/internal/sim"
)

// Process is one UNIX-like process.
type Process struct {
	t  *kernel.KThread
	sp *kernel.Space
}

// World is a collection of processes sharing a machine (and, as in the
// paper's shared-memory parallel programs, a region of shared memory —
// modelled by ordinary Go state guarded by Semaphores).
type World struct {
	K    *kernel.Kernel
	next int
}

// NewWorld wraps a kernel for process-style use.
func NewWorld(k *kernel.Kernel) *World { return &World{K: k} }

// Start creates an initial process (no fork charge), the analogue of a
// program launched from the shell.
func (w *World) Start(name string, fn func(p *Process)) *Process {
	sp := w.K.NewSpace(name, true)
	p := &Process{sp: sp}
	p.t = sp.Spawn(name, 0, func(t *kernel.KThread) { fn(p) })
	return p
}

// Fork creates a child process: a new address space is set up (the
// dominant cost in Table 1's 11.3ms Null Fork) and the child begins
// executing fn.
func (p *Process) Fork(name string, fn func(c *Process)) *Process {
	child := &Process{}
	child.sp = p.t.Space().Kernel().NewSpace(name, true)
	// Charge the fork on the parent, then schedule the child in its own
	// space. KThread.Fork charges based on the *parent's* space (Heavy),
	// but places the child in the same space; processes need their own, so
	// fork manually.
	k := p.t.Space().Kernel()
	p.t.Exec(k.C.Trap + k.C.ProcForkWork)
	child.t = child.sp.Spawn(name, 0, func(t *kernel.KThread) { fn(child) })
	return child
}

// Exec consumes CPU in user mode.
func (p *Process) Exec(d sim.Duration) { p.t.Exec(d) }

// Wait blocks until the child exits (the wait4 analogue).
func (p *Process) Wait(child *Process) { p.t.Join(child.t) }

// Yield relinquishes the processor.
func (p *Process) Yield() { p.t.Yield() }

// SleepFor blocks the process on a timer.
func (p *Process) SleepFor(d sim.Duration) { p.t.SleepFor(d) }

// BlockIO performs a blocking disk read.
func (p *Process) BlockIO() { p.t.BlockIO() }

// Thread exposes the underlying kernel execution stream.
func (p *Process) Thread() *kernel.KThread { return p.t }

// Semaphore is a System-V-style semaphore: processes synchronize through
// the kernel, paying traps and process switches — Table 1's 1.84ms
// Signal-Wait.
type Semaphore struct {
	k *kernel.Kernel
	m *kernel.Mutex
	c *kernel.Cond
	n int
}

// NewSemaphore creates a counting semaphore with initial value n.
func (w *World) NewSemaphore(n int) *Semaphore {
	return &Semaphore{k: w.K, m: w.K.NewMutex(), c: w.K.NewCond(), n: n}
}

// P (wait) decrements, blocking while the count is zero.
func (s *Semaphore) P(p *Process) {
	s.m.Lock(p.t)
	for s.n == 0 {
		s.c.Wait(p.t, s.m)
	}
	s.n--
	s.m.Unlock(p.t)
}

// V (signal) increments and wakes one waiter.
func (s *Semaphore) V(p *Process) {
	s.m.Lock(p.t)
	s.n++
	s.m.Unlock(p.t)
	s.c.Signal(p.t)
}
