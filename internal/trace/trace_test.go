package trace

import (
	"strings"
	"testing"

	"schedact/internal/sim"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(0, 1, "cat", "message %d", 1) // must not panic
	if l.Entries() != nil {
		t.Fatal("nil log should have no entries")
	}
	if l.Lost() != 0 {
		t.Fatal("nil log should report zero lost")
	}
}

func TestAddAndDump(t *testing.T) {
	l := New(0)
	l.Add(sim.Time(1500*sim.Microsecond), 2, "dispatch", "thread %s", "a")
	l.Add(sim.Time(2*sim.Millisecond), -1, "note", "no cpu")
	if len(l.Entries()) != 2 {
		t.Fatalf("entries = %d, want 2", len(l.Entries()))
	}
	var b strings.Builder
	l.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "cpu2") || !strings.Contains(out, "dispatch") || !strings.Contains(out, "thread a") {
		t.Fatalf("dump missing fields:\n%s", out)
	}
	if !strings.Contains(out, "  -") {
		t.Fatalf("dump should render missing CPU as '-':\n%s", out)
	}
}

func TestRetentionBoundDropsOldest(t *testing.T) {
	l := New(10)
	for i := 0; i < 25; i++ {
		l.Add(sim.Time(i), 0, "ev", "%d", i)
	}
	if len(l.Entries()) > 10 {
		t.Fatalf("retained %d entries, bound is 10", len(l.Entries()))
	}
	if l.Lost() == 0 {
		t.Fatal("expected dropped entries to be counted")
	}
	// The newest entry must survive.
	last := l.Entries()[len(l.Entries())-1]
	if !strings.Contains(last.Msg, "24") {
		t.Fatalf("newest entry lost: %v", last)
	}
}

func TestFilterKeepsOnlySelected(t *testing.T) {
	l := New(0).Filter("keep")
	l.Add(0, 0, "keep", "yes")
	l.Add(0, 0, "drop", "no")
	if n := len(l.Entries()); n != 1 {
		t.Fatalf("entries = %d, want 1", n)
	}
	if l.Entries()[0].Cat != "keep" {
		t.Fatal("wrong entry retained")
	}
}

func TestLiveWriter(t *testing.T) {
	var b strings.Builder
	l := New(0)
	l.Live = &b
	l.Add(sim.Time(sim.Millisecond), 3, "upcall", "x")
	if !strings.Contains(b.String(), "upcall") {
		t.Fatalf("live writer missed entry: %q", b.String())
	}
}
