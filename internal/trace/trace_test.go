package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"schedact/internal/sim"
	"schedact/internal/stats"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(0, 1, "cat", "message %d", 1) // must not panic
	l.Emit(Record{Kind: KindDispatch, Name: "t"})
	l.Observe(func(Record) {})
	if l.Entries() != nil {
		t.Fatal("nil log should have no entries")
	}
	if l.Lost() != 0 {
		t.Fatal("nil log should report zero lost")
	}
	if l.Filtered() {
		t.Fatal("nil log should not report a filter")
	}
}

func TestAddAndDump(t *testing.T) {
	l := New(0)
	l.Add(sim.Time(1500*sim.Microsecond), 2, "dispatch", "thread %s", "a")
	l.Add(sim.Time(2*sim.Millisecond), -1, "note", "no cpu")
	if len(l.Entries()) != 2 {
		t.Fatalf("entries = %d, want 2", len(l.Entries()))
	}
	var b strings.Builder
	l.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "cpu2") || !strings.Contains(out, "dispatch") || !strings.Contains(out, "thread a") {
		t.Fatalf("dump missing fields:\n%s", out)
	}
	if !strings.Contains(out, "  -") {
		t.Fatalf("dump should render missing CPU as '-':\n%s", out)
	}
}

func TestRetentionBoundDropsOldest(t *testing.T) {
	l := New(10)
	for i := 0; i < 25; i++ {
		l.Emit(Record{T: sim.Time(i), Kind: KindULReady, Name: "t", A: int64(i)})
	}
	if len(l.Entries()) > 10 {
		t.Fatalf("retained %d entries, bound is 10", len(l.Entries()))
	}
	if l.Lost() == 0 {
		t.Fatal("expected dropped entries to be counted")
	}
	// The newest entry must survive.
	last := l.Entries()[len(l.Entries())-1]
	if last.A != 24 {
		t.Fatalf("newest entry lost: %v", last)
	}
}

func TestFilterKeepsOnlySelected(t *testing.T) {
	l := New(0).Filter("upcall")
	l.Emit(Record{Kind: KindUpcall, Name: "s", B: 0})
	l.Emit(Record{Kind: KindDispatch, Name: "t"})
	l.Add(0, 0, "drop", "no")
	if n := len(l.Entries()); n != 1 {
		t.Fatalf("entries = %d, want 1", n)
	}
	if l.Entries()[0].Kind != KindUpcall {
		t.Fatal("wrong entry retained")
	}
	if !l.Filtered() {
		t.Fatal("Filtered() should report the installed filter")
	}
}

// TestFilterBitmaskMatchesCategories: the compiled Kind bitmask must agree
// with the constant category table for every typed kind, and multi-category
// filters union their masks. KindMsg records (dynamic category) still
// filter by name.
func TestFilterBitmaskMatchesCategories(t *testing.T) {
	l := New(0).Filter("chaos", "upcall")
	for k := Kind(0); k < kindCount; k++ {
		if k == KindMsg {
			continue
		}
		want := kindCats[k] == "chaos" || kindCats[k] == "upcall"
		if got := l.keeps(Record{Kind: k}); got != want {
			t.Errorf("kind %d (cat %q): keeps=%v want %v", k, kindCats[k], got, want)
		}
	}
	// Dynamic KindMsg categories filter by Name, independent of the mask.
	if !l.keeps(Record{Kind: KindMsg, Name: "chaos"}) || l.keeps(Record{Kind: KindMsg, Name: "dispatch"}) {
		t.Fatal("KindMsg records must filter by their dynamic category")
	}
	// All four chaos kinds land, nothing else does.
	l.Emit(Record{Kind: KindChaosPreempt, A: 1})
	l.Emit(Record{Kind: KindChaosRebalance})
	l.Emit(Record{Kind: KindDispatch, Name: "t"})
	l.Add(0, 0, "note", "dropped before rendering")
	l.Add(0, 0, "upcall", "kept")
	if n := len(l.Entries()); n != 3 {
		t.Fatalf("entries = %d, want 3 (2 chaos + 1 upcall msg)", n)
	}
}

// TestStreamRetainsNothing pins the observer-only retention mode the chaos
// sweep runs under: every record reaches observers (and Live) exactly once,
// nothing is retained, nothing counts as lost, and Reset preserves the mode
// and the observer chain for warm reuse.
func TestStreamRetainsNothing(t *testing.T) {
	l := NewStream()
	var seen []int64
	l.Observe(func(r Record) { seen = append(seen, r.A) })
	var live strings.Builder
	l.Live = &live
	for i := 0; i < 100; i++ {
		l.Emit(Record{Kind: KindULReady, Name: "t", A: int64(i)})
	}
	if len(seen) != 100 {
		t.Fatalf("observer saw %d records, want 100", len(seen))
	}
	for i, v := range seen {
		if v != int64(i) {
			t.Fatalf("observer order broken at %d: got %d", i, v)
		}
	}
	if len(l.Entries()) != 0 {
		t.Fatalf("stream log retained %d entries", len(l.Entries()))
	}
	if l.Lost() != 0 {
		t.Fatalf("stream log counted %d lost — nothing retained means nothing dropped", l.Lost())
	}
	if live.Len() == 0 {
		t.Fatal("live mirror missed the stream")
	}
	// Reset keeps the mode and observers (warm contexts recycle the log).
	l.Reset()
	l.Emit(Record{Kind: KindULReady, Name: "t", A: 7})
	if len(seen) != 101 {
		t.Fatal("observer chain lost across Reset")
	}
	if len(l.Entries()) != 0 {
		t.Fatal("Reset dropped the no-retention mode")
	}
}

// TestStreamEmitAllocationFree extends the zero-allocation guarantee to the
// stream mode — it skips the ring entirely, so it must allocate nothing
// from the first record on (no warm-up append growth).
func TestStreamEmitAllocationFree(t *testing.T) {
	l := NewStream()
	var count int
	l.Observe(func(r Record) { count++ })
	name := "matrix"
	var i int64
	avg := testing.AllocsPerRun(1000, func() {
		l.Emit(Record{T: sim.Time(i), CPU: 1, Kind: KindActBlock, Name: name, A: i, Aux: "io-blocked"})
		i++
	})
	if avg != 0 {
		t.Fatalf("stream Emit allocates %.1f allocs/op, want 0", avg)
	}
	if count == 0 {
		t.Fatal("observer never ran")
	}
}

func TestLiveWriter(t *testing.T) {
	var b strings.Builder
	l := New(0)
	l.Live = &b
	l.Emit(Record{T: sim.Time(sim.Millisecond), CPU: 3, Kind: KindUpcall, Name: "x", A: 1})
	if !strings.Contains(b.String(), "upcall") {
		t.Fatalf("live writer missed entry: %q", b.String())
	}
}

func TestObserverSeesEveryRecordOnce(t *testing.T) {
	l := New(4)
	var seen []int64
	l.Observe(func(r Record) { seen = append(seen, r.A) })
	for i := 0; i < 10; i++ {
		l.Emit(Record{Kind: KindULReady, Name: "t", A: int64(i)})
	}
	if len(seen) != 10 {
		t.Fatalf("observer saw %d records, want 10 (ring trimming must not re-deliver)", len(seen))
	}
	for i, v := range seen {
		if v != int64(i) {
			t.Fatalf("observer order broken at %d: got %d", i, v)
		}
	}
}

// TestRendererEquivalence pins each typed renderer to the exact strings the
// old fmt.Sprintf emit sites produced, so the typed refactor provably tells
// the same schedule story (the golden traces in internal/exp depend on this
// byte-for-byte).
func TestRendererEquivalence(t *testing.T) {
	c, d := PackEvRefs([4]EvRef{MakeEvRef(UpAddProcessor, -1), MakeEvRef(UpPreempted, 5)})
	cases := []struct {
		r        Record
		cat, msg string
	}{
		{Record{Kind: KindUpcall, Name: "matrix", A: 3, B: 2, C: c, D: d}, "upcall", "matrix act3 [AddProcessor Preempted(act5)]"},
		{Record{Kind: KindStillborn, Name: "matrix", A: 7, B: 2}, "stillborn", "matrix act7, 2 events requeued"},
		{Record{Kind: KindTake, Name: "matrix"}, "take", "from matrix"},
		{Record{Kind: KindInterrupt, Name: "matrix"}, "interrupt", "matrix"},
		{Record{Kind: KindInterruptStale, Name: "matrix"}, "interrupt", "matrix: stale request rejected"},
		{Record{Kind: KindYield, Name: "matrix", A: 2}, "yield", "matrix act2"},
		{Record{Kind: KindNotifyDelayed, Name: "matrix", A: 3}, "notify", "matrix: 3 events delayed (no processors)"},
		{Record{Kind: KindUnblockDelayed, Name: "matrix", A: 4}, "notify", "matrix: unblock act4 delayed (no processors)"},
		{Record{Kind: KindActBlock, Name: "matrix", A: 1, Aux: "io-blocked"}, "block", "matrix act1: io-blocked"},
		{Record{Kind: KindActUnblock, Name: "matrix", A: 1}, "unblock", "matrix act1"},
		{Record{Kind: KindAddMore, Name: "matrix", A: 2, B: 4}, "downcall", "matrix: add 2 more (want=4)"},
		{Record{Kind: KindIdleDowncall, Name: "matrix", A: 1}, "downcall", "matrix: processor idle (want=1)"},
		{Record{Kind: KindFault, Name: "matrix", A: 5, B: 17}, "fault", "matrix act5 page 17"},
		{Record{Kind: KindFaultDelayed, Name: "matrix", A: 9}, "fault", "matrix: upcall delayed, entry page 9 mid-fetch"},
		{Record{Kind: KindDebugStop, Name: "matrix", A: 6}, "debug", "stop matrix act6 (no upcall)"},
		{Record{Kind: KindDebugResume, Name: "matrix", A: 6}, "debug", "resume matrix act6 (direct)"},
		{Record{Kind: KindDispatch, Name: "worker-1"}, "dispatch", "worker-1"},
		{Record{Kind: KindPreempt, Name: "worker-1"}, "preempt", "worker-1"},
		{Record{Kind: KindExit, Name: "worker-1"}, "exit", "worker-1"},
		{Record{Kind: KindKTBlock, Name: "worker-1", Aux: "disk"}, "block", "worker-1: disk"},
		{Record{Kind: KindULDispatch, Name: "w3"}, "uldispatch", "w3"},
		{Record{Kind: KindULReady, Name: "w3"}, "ulready", "w3"},
		{Record{Kind: KindULBlock, Name: "w3", Aux: "join"}, "ulblock", "w3: join"},
		{Record{Kind: KindULExit, Name: "w3"}, "ulexit", "w3"},
		{Record{Kind: KindULIdle, A: 2}, "ulidle", "vp2 parked"},
		{Record{Kind: KindIO, A: 12, B: int64(3 * sim.Millisecond)}, "io", "disk request #12 (3ms)"},
		{Record{Kind: KindChaosPreempt, A: 1}, "chaos", "storm preempt cpu1"},
		{Record{Kind: KindChaosRebalance}, "chaos", "forced rebalance"},
		{Record{Kind: KindChaosEvict, A: 40}, "chaos", "evict page 40"},
		{Record{Kind: KindChaosPulse, A: 3}, "chaos", "interloper demand 3"},
		{Record{Kind: KindMsg, Name: "legacy", Aux: "already rendered"}, "legacy", "already rendered"},
	}
	for _, tc := range cases {
		if got := tc.r.Cat(); got != tc.cat {
			t.Errorf("kind %d: Cat() = %q, want %q", tc.r.Kind, got, tc.cat)
		}
		if got := tc.r.Msg(); got != tc.msg {
			t.Errorf("kind %d: Msg() = %q, want %q", tc.r.Kind, got, tc.msg)
		}
	}
}

func TestEvRefPacking(t *testing.T) {
	refs := [4]EvRef{
		MakeEvRef(UpAddProcessor, -1),
		MakeEvRef(UpPreempted, 5),
		MakeEvRef(UpBlocked, 0),
		MakeEvRef(UpUnblocked, 1<<27-2), // near the id mask limit
	}
	c, d := PackEvRefs(refs)
	r := Record{Kind: KindUpcall, B: 4, C: c, D: d}
	for i, want := range refs {
		got, ok := r.EvRef(i)
		if !ok || got != want {
			t.Fatalf("slot %d: got %v ok=%v, want %v", i, got, ok, want)
		}
	}
	// Count bounds the visible slots.
	r.B = 2
	if _, ok := r.EvRef(2); ok {
		t.Fatal("slot 2 should be invisible with count 2")
	}
	// Kinds and activation ids round-trip.
	if refs[0].Kind() != UpAddProcessor {
		t.Fatal("kind round trip failed")
	}
	if _, ok := refs[0].Act(); ok {
		t.Fatal("AddProcessor carries no activation")
	}
	if id, ok := refs[1].Act(); !ok || id != 5 {
		t.Fatalf("act round trip: got %d ok=%v", id, ok)
	}
	// The zero EvRef is distinguishable from AddProcessor-without-act.
	if refs[0] == 0 {
		t.Fatal("AddProcessor ref must not collide with the empty slot")
	}
	// Overflow rendering.
	if got := renderEvRefs(6, c, d); !strings.Contains(got, "+2 more") {
		t.Fatalf("overflow render = %q", got)
	}
}

// TestEmitAllocationFree is the tentpole's core guarantee: emitting a typed
// record into a bounded log — with an observer attached, as the chaos
// auditor always is — performs zero heap allocations.
func TestEmitAllocationFree(t *testing.T) {
	l := New(1024)
	var blocks int
	l.Observe(func(r Record) {
		if r.Kind == KindActBlock {
			blocks++
		}
	})
	name := "matrix"
	reason := "io-blocked"
	// Warm the ring past its first trim so steady state is measured.
	for i := 0; i < 2048; i++ {
		l.Emit(Record{T: sim.Time(i), CPU: 1, Kind: KindActBlock, Name: name, A: int64(i), Aux: reason})
	}
	var i int64
	avg := testing.AllocsPerRun(1000, func() {
		l.Emit(Record{T: sim.Time(i), CPU: 1, Kind: KindActBlock, Name: name, A: i, Aux: reason})
		i++
	})
	if avg != 0 {
		t.Fatalf("Emit allocates %.1f allocs/op on the steady-state path, want 0", avg)
	}
	if blocks == 0 {
		t.Fatal("observer never ran")
	}
}

func TestLatenciesDerivation(t *testing.T) {
	l := New(0)
	reg := stats.New()
	la := NewLatencies(l, reg)

	ms := func(n int64) sim.Time { return sim.Time(n * int64(sim.Millisecond)) }
	// Upcall at 1ms, dispatch at 1.5ms on the same CPU → 0.5ms dispatch latency.
	l.Emit(Record{T: ms(1), CPU: 0, Kind: KindUpcall, Name: "s", A: 1, B: 1})
	l.Emit(Record{T: sim.Time(1500 * sim.Microsecond), CPU: 0, Kind: KindULDispatch, Name: "w1"})
	// Ready at 2ms, dispatched at 5ms → 3ms ready wait.
	l.Emit(Record{T: ms(2), CPU: 0, Kind: KindULReady, Name: "w2"})
	l.Emit(Record{T: ms(5), CPU: 1, Kind: KindULDispatch, Name: "w2"})
	// Block act3 at 4ms, unblock at 10ms → 6ms block latency.
	l.Emit(Record{T: ms(4), CPU: 0, Kind: KindActBlock, Name: "s", A: 3, Aux: "io-blocked"})
	l.Emit(Record{T: ms(10), CPU: -1, Kind: KindActUnblock, Name: "s", A: 3})

	if la.UpcallDispatch.N != 1 || la.UpcallDispatch.SumNs != int64(500*sim.Microsecond) {
		t.Fatalf("upcall dispatch: n=%d sum=%d", la.UpcallDispatch.N, la.UpcallDispatch.SumNs)
	}
	if la.ReadyWait.N != 1 || la.ReadyWait.SumNs != int64(3*sim.Millisecond) {
		t.Fatalf("ready wait: n=%d sum=%d", la.ReadyWait.N, la.ReadyWait.SumNs)
	}
	if la.BlockUnblock.N != 1 || la.BlockUnblock.SumNs != int64(6*sim.Millisecond) {
		t.Fatalf("block→unblock: n=%d sum=%d", la.BlockUnblock.N, la.BlockUnblock.SumNs)
	}
	// And the registry exposes them.
	if v, ok := reg.Value("latency.ready_wait.count"); !ok || v != 1 {
		t.Fatalf("registry latency.ready_wait.count = %d ok=%v", v, ok)
	}
	if v, ok := reg.Value("latency.block_unblock.mean_ns"); !ok || v != uint64(6*sim.Millisecond) {
		t.Fatalf("registry latency.block_unblock.mean_ns = %d ok=%v", v, ok)
	}
}

func TestWriteChromeProducesLoadableJSON(t *testing.T) {
	l := New(0)
	ms := func(n int64) sim.Time { return sim.Time(n * int64(sim.Millisecond)) }
	l.Emit(Record{T: ms(1), CPU: 0, Kind: KindDispatch, Name: "sa:matrix"})
	l.Emit(Record{T: ms(2), CPU: 0, Kind: KindULDispatch, Name: "w1"})
	l.Emit(Record{T: ms(3), CPU: 0, Kind: KindULBlock, Name: "w1", Aux: "io"})
	l.Emit(Record{T: ms(3), CPU: -1, Kind: KindActUnblock, Name: "matrix", A: 1})
	l.Emit(Record{T: ms(4), CPU: 1, Kind: KindULDispatch, Name: "w2"})

	var b bytes.Buffer
	if err := WriteChrome(&b, l.Entries(), sim.Time(5*sim.Millisecond).Us()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	var slices, instants, meta int
	var w1Dur float64
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Name == "w1" {
				w1Dur = ev.Dur
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	// cpu0, cpu1, kernel tracks named; 3 dispatch slices; 2 instants.
	if meta != 3 {
		t.Fatalf("thread_name metadata = %d, want 3", meta)
	}
	if slices != 3 || instants != 2 {
		t.Fatalf("slices=%d instants=%d, want 3/2", slices, instants)
	}
	// w1's slice runs 2ms→3ms = 1000µs, closed by its block.
	if w1Dur != 1000 {
		t.Fatalf("w1 slice dur = %v µs, want 1000", w1Dur)
	}
}
