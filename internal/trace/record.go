package trace

import (
	"fmt"
	"strings"

	"schedact/internal/sim"
)

// Kind identifies a typed trace event. Every scheduling layer emits records
// tagged with one of these, and every consumer — the chaos auditor, the
// fingerprinter, the latency deriver, the Chrome exporter — dispatches on
// Kind and the integer arguments instead of parsing rendered text. Human-
// readable text exists only in the renderers below, produced lazily when a
// sink actually prints.
type Kind uint8

const (
	// KindMsg is a generic pre-formatted message: Name holds the category,
	// Aux the rendered text. Only the deprecated Add/Logf compatibility
	// shim emits it; typed consumers ignore it.
	KindMsg Kind = iota

	// --- scheduler-activation kernel (internal/core) ---

	// KindUpcall: upcall delivered. Name=space, A=activation id,
	// B=event count, C/D=up to four packed EvRefs (see PackEvRefs).
	KindUpcall
	// KindStillborn: activation discarded before reaching user code.
	// Name=space, A=activation id, B=events requeued.
	KindStillborn
	// KindTake: processor involuntarily removed from a space. Name=space.
	KindTake
	// KindInterrupt: hosted activation stopped, processor kept. Name=space.
	KindInterrupt
	// KindInterruptStale: InterruptProcessor request rejected as stale.
	// Name=space.
	KindInterruptStale
	// KindYield: processor voluntarily given back. Name=space, A=act id.
	KindYield
	// KindNotifyDelayed: events queued, space has no processors.
	// Name=space, A=event count.
	KindNotifyDelayed
	// KindUnblockDelayed: unblock notification queued, no processors.
	// Name=space, A=activation id.
	KindUnblockDelayed
	// KindActBlock: activation blocked in the kernel. Name=space,
	// A=activation id, Aux=reason.
	KindActBlock
	// KindActUnblock: blocked activation's awaited event completed.
	// Name=space, A=activation id.
	KindActUnblock
	// KindAddMore: "add more processors" downcall. Name=space,
	// A=additional, B=resulting want.
	KindAddMore
	// KindIdleDowncall: "this processor is idle" downcall. Name=space,
	// A=resulting want.
	KindIdleDowncall
	// KindFault: page fault blocked an activation. Name=space,
	// A=activation id, B=page.
	KindFault
	// KindFaultDelayed: Blocked upcall held, entry page mid-fetch.
	// Name=space, A=page.
	KindFaultDelayed
	// KindDebugStop: activation frozen by the debugger. Name=space, A=act id.
	KindDebugStop
	// KindDebugResume: debugger-stopped activation resumed. Name=space,
	// A=activation id.
	KindDebugResume

	// --- Topaz baseline kernel (internal/kernel) ---

	// KindDispatch: kernel thread placed on a CPU. Name=thread.
	KindDispatch
	// KindPreempt: kernel thread involuntarily descheduled. Name=thread.
	KindPreempt
	// KindExit: kernel thread exited. Name=thread.
	KindExit
	// KindKTBlock: kernel thread blocked. Name=thread, Aux=reason.
	KindKTBlock

	// --- user-level thread system (internal/uthread) ---

	// KindULDispatch: user-level thread switched onto a processor.
	// Name=thread.
	KindULDispatch
	// KindULReady: user-level thread made ready. Name=thread.
	KindULReady
	// KindULBlock: user-level thread blocked. Name=thread, Aux=reason.
	KindULBlock
	// KindULExit: user-level thread exited. Name=thread.
	KindULExit
	// KindULIdle: virtual processor parked with no work. A=vp id.
	KindULIdle

	// --- machine (internal/machine) ---

	// KindIO: disk request scheduled. A=request number, B=service
	// latency in nanoseconds.
	KindIO

	// --- fault injection (internal/chaos) ---

	// KindChaosPreempt: storm preemption landed. A=target processor.
	KindChaosPreempt
	// KindChaosRebalance: forced reallocation pass.
	KindChaosRebalance
	// KindChaosEvict: eviction storm hit. A=page.
	KindChaosEvict
	// KindChaosPulse: interloper demand pulse. A=demanded processors.
	KindChaosPulse

	kindCount // sentinel; keep last
)

// kindCats maps each Kind to the category label satrace has always printed.
// Several kinds share a category (both downcalls are "downcall", both
// debugger events are "debug") so rendered output groups exactly as before
// the typed refactor.
var kindCats = [kindCount]string{
	KindMsg:            "msg", // overridden by Record.Cat
	KindUpcall:         "upcall",
	KindStillborn:      "stillborn",
	KindTake:           "take",
	KindInterrupt:      "interrupt",
	KindInterruptStale: "interrupt",
	KindYield:          "yield",
	KindNotifyDelayed:  "notify",
	KindUnblockDelayed: "notify",
	KindActBlock:       "block",
	KindActUnblock:     "unblock",
	KindAddMore:        "downcall",
	KindIdleDowncall:   "downcall",
	KindFault:          "fault",
	KindFaultDelayed:   "fault",
	KindDebugStop:      "debug",
	KindDebugResume:    "debug",
	KindDispatch:       "dispatch",
	KindPreempt:        "preempt",
	KindExit:           "exit",
	KindKTBlock:        "block",
	KindULDispatch:     "uldispatch",
	KindULReady:        "ulready",
	KindULBlock:        "ulblock",
	KindULExit:         "ulexit",
	KindULIdle:         "ulidle",
	KindIO:             "io",
	KindChaosPreempt:   "chaos",
	KindChaosRebalance: "chaos",
	KindChaosEvict:     "chaos",
	KindChaosPulse:     "chaos",
}

// Cat returns the kind's constant category label.
func (k Kind) Cat() string {
	if k < kindCount {
		return kindCats[k]
	}
	return "invalid"
}

// Record is one typed trace event: a fixed-size value emitted allocation-
// free from the hot paths of every scheduling layer. The Name and Aux
// fields carry pre-existing strings (space names, thread names, block
// reasons); assigning them copies only the string header. All formatting
// is deferred to Cat/Msg/String, which run only when a sink prints.
type Record struct {
	T    sim.Time
	CPU  int32 // -1 when not CPU-specific
	Kind Kind
	// Name is the primary subject: the address space or thread the event
	// concerns. For KindMsg it holds the category label instead.
	Name string
	// Aux is the secondary string: a block reason, or the pre-rendered
	// message of a KindMsg record.
	Aux string
	// A through D are kind-specific integer arguments — activation ids,
	// processor and page numbers, event counts, packed EvRefs, latencies.
	// Their meaning per kind is documented on the Kind constants.
	A, B, C, D int64
}

// Entry is the old name for Record.
//
// Deprecated: consumers should use Record and dispatch on Kind.
type Entry = Record

// Cat returns the record's category label (constant per kind; KindMsg
// carries its own).
func (r Record) Cat() string {
	if r.Kind == KindMsg {
		return r.Name
	}
	return r.Kind.Cat()
}

// Msg renders the record's human-readable message. This is the only place
// trace text is produced; nothing on the emit path calls it.
func (r Record) Msg() string {
	switch r.Kind {
	case KindMsg:
		return r.Aux
	case KindUpcall:
		return fmt.Sprintf("%s act%d %s", r.Name, r.A, renderEvRefs(r.B, r.C, r.D))
	case KindStillborn:
		return fmt.Sprintf("%s act%d, %d events requeued", r.Name, r.A, r.B)
	case KindTake:
		return "from " + r.Name
	case KindInterrupt:
		return r.Name
	case KindInterruptStale:
		return r.Name + ": stale request rejected"
	case KindYield, KindActUnblock:
		return fmt.Sprintf("%s act%d", r.Name, r.A)
	case KindNotifyDelayed:
		return fmt.Sprintf("%s: %d events delayed (no processors)", r.Name, r.A)
	case KindUnblockDelayed:
		return fmt.Sprintf("%s: unblock act%d delayed (no processors)", r.Name, r.A)
	case KindActBlock:
		return fmt.Sprintf("%s act%d: %s", r.Name, r.A, r.Aux)
	case KindAddMore:
		return fmt.Sprintf("%s: add %d more (want=%d)", r.Name, r.A, r.B)
	case KindIdleDowncall:
		return fmt.Sprintf("%s: processor idle (want=%d)", r.Name, r.A)
	case KindFault:
		return fmt.Sprintf("%s act%d page %d", r.Name, r.A, r.B)
	case KindFaultDelayed:
		return fmt.Sprintf("%s: upcall delayed, entry page %d mid-fetch", r.Name, r.A)
	case KindDebugStop:
		return fmt.Sprintf("stop %s act%d (no upcall)", r.Name, r.A)
	case KindDebugResume:
		return fmt.Sprintf("resume %s act%d (direct)", r.Name, r.A)
	case KindDispatch, KindPreempt, KindExit, KindULDispatch, KindULReady, KindULExit:
		return r.Name
	case KindKTBlock, KindULBlock:
		return r.Name + ": " + r.Aux
	case KindULIdle:
		return fmt.Sprintf("vp%d parked", r.A)
	case KindIO:
		return fmt.Sprintf("disk request #%d (%v)", r.A, sim.Duration(r.B))
	case KindChaosPreempt:
		return fmt.Sprintf("storm preempt cpu%d", r.A)
	case KindChaosRebalance:
		return "forced rebalance"
	case KindChaosEvict:
		return fmt.Sprintf("evict page %d", r.A)
	case KindChaosPulse:
		return fmt.Sprintf("interloper demand %d", r.A)
	}
	return fmt.Sprintf("kind%d(%d,%d,%d,%d)", r.Kind, r.A, r.B, r.C, r.D)
}

// String renders the record in satrace's one-line format.
func (r Record) String() string {
	cpu := "  -"
	if r.CPU >= 0 {
		cpu = fmt.Sprintf("cpu%d", r.CPU)
	}
	return fmt.Sprintf("%12.3fms %-4s %-10s %s", r.T.Ms(), cpu, r.Cat(), r.Msg())
}

// --- packed upcall event references ---

// UpEv is an upcall event kind as carried in a packed EvRef: the Table 2
// vector. Values mirror core.EventKind one-for-one (internal/core asserts
// the correspondence in its tests).
type UpEv uint32

const (
	UpAddProcessor UpEv = iota
	UpPreempted
	UpBlocked
	UpUnblocked
)

func (e UpEv) String() string {
	switch e {
	case UpAddProcessor:
		return "AddProcessor"
	case UpPreempted:
		return "Preempted"
	case UpBlocked:
		return "Blocked"
	case UpUnblocked:
		return "Unblocked"
	}
	return "invalid"
}

// EvRef packs one upcall event — kind plus affected activation id — into 32
// bits: kind+1 in the top four bits (so the zero EvRef means "no event"),
// activation id + 1 in the rest (0 = no activation, as for AddProcessor).
type EvRef uint32

const evIDMask = 1<<28 - 1

// MakeEvRef packs an event reference. actID < 0 records "no activation".
func MakeEvRef(kind UpEv, actID int) EvRef {
	id := uint32(0)
	if actID >= 0 {
		id = uint32(actID) + 1
	}
	return EvRef((uint32(kind)+1)<<28 | id&evIDMask)
}

// Kind returns the packed event kind.
func (e EvRef) Kind() UpEv { return UpEv(e>>28) - 1 }

// Act returns the packed activation id, false if the event carried none.
func (e EvRef) Act() (int, bool) {
	id := uint32(e) & evIDMask
	if id == 0 {
		return 0, false
	}
	return int(id - 1), true
}

func (e EvRef) String() string {
	if id, ok := e.Act(); ok {
		return fmt.Sprintf("%s(act%d)", e.Kind(), id)
	}
	return e.Kind().String()
}

// PackEvRefs packs up to four event references into the two int64 args a
// KindUpcall record carries (two refs per word, low half first).
func PackEvRefs(refs [4]EvRef) (c, d int64) {
	c = int64(uint64(refs[0]) | uint64(refs[1])<<32)
	d = int64(uint64(refs[2]) | uint64(refs[3])<<32)
	return c, d
}

// EvRef unpacks the i-th (0..3) event reference of a KindUpcall record,
// reporting false when the slot is empty or i is past the recorded count.
func (r Record) EvRef(i int) (EvRef, bool) {
	if r.Kind != KindUpcall || i < 0 || i > 3 || int64(i) >= r.B {
		return 0, false
	}
	w := uint64(r.C)
	if i >= 2 {
		w = uint64(r.D)
	}
	ref := EvRef(w >> (32 * uint(i%2)))
	return ref, ref != 0
}

// renderEvRefs renders a packed event vector exactly as the old %v of
// []core.Event did — "[AddProcessor Preempted(act5)]" — appending
// " +n more" for the rare upcall carrying more than the four inline slots.
func renderEvRefs(count, c, d int64) string {
	var b strings.Builder
	b.WriteByte('[')
	refs := [4]EvRef{
		EvRef(uint64(c)), EvRef(uint64(c) >> 32),
		EvRef(uint64(d)), EvRef(uint64(d) >> 32),
	}
	for i := 0; i < 4 && int64(i) < count; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(refs[i].String())
	}
	if count > 4 {
		fmt.Fprintf(&b, " +%d more", count-4)
	}
	b.WriteByte(']')
	return b.String()
}
