package trace

import (
	"testing"

	"schedact/internal/sim"
)

// BenchmarkTraceEmit measures the typed emit path in its always-on audit
// configuration: bounded log, one observer attached (the shape of the chaos
// auditor). The acceptance bar is 0 allocs/op; the test suite enforces it
// via TestEmitAllocationFree, this benchmark quantifies the ns/op win.
func BenchmarkTraceEmit(b *testing.B) {
	l := New(4096)
	var blocks int
	l.Observe(func(r Record) {
		if r.Kind == KindActBlock {
			blocks++
		}
	})
	name := "matrix"
	reason := "io-blocked"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Emit(Record{T: sim.Time(i), CPU: 1, Kind: KindActBlock, Name: name, A: int64(i), Aux: reason})
	}
	if blocks != b.N {
		b.Fatalf("observer saw %d of %d records", blocks, b.N)
	}
}

// BenchmarkTraceLogf is the deprecated string path, kept as the comparison
// point: each call boxes its variadic args and renders eagerly.
func BenchmarkTraceLogf(b *testing.B) {
	l := New(4096)
	l.Observe(func(r Record) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Logf(sim.Time(i), 1, "block", "%s act%d: %s", "matrix", i, "io-blocked")
	}
}
