package trace

import (
	"schedact/internal/sim"
	"schedact/internal/stats"
)

// Latencies derives cross-layer latency histograms from the typed record
// stream. No emit site times anything: the three distributions below are a
// pure function of records the layers already emit, paired up by Kind and
// the integer arguments. The histograms are fixed-bucket (stats.Histogram)
// and the per-record work is a map probe plus two word writes, so the
// deriver can stay attached for entire chaos sweeps.
type Latencies struct {
	// UpcallDispatch: kernel upcall delivery (KindUpcall) to the first
	// user-level thread dispatch on the same processor (KindULDispatch) —
	// how long the thread system's upcall handler takes to get user code
	// running again.
	UpcallDispatch stats.Histogram
	// ReadyWait: thread made ready (KindULReady) to that thread dispatched
	// (KindULDispatch) — time spent waiting in a ready queue, across
	// steals and processor migrations.
	ReadyWait stats.Histogram
	// BlockUnblock: activation blocked in the kernel (KindActBlock or
	// KindFault) to its unblock (KindActUnblock) — I/O and page-fault
	// service time as the scheduling layers observe it.
	BlockUnblock stats.Histogram

	upcallAt map[int32]sim.Time // per-CPU pending upcall delivery time
	readyAt  map[string]sim.Time
	blockAt  map[int64]sim.Time // per-activation block time
}

// NewLatencies hooks a latency deriver onto the trace stream and registers
// its histograms' count/mean/p50/p90/p99 with reg under "latency." names
// (nil reg keeps the histograms detached but live).
func NewLatencies(l *Log, reg *stats.Registry) *Latencies {
	la := &Latencies{
		upcallAt: make(map[int32]sim.Time),
		readyAt:  make(map[string]sim.Time),
		blockAt:  make(map[int64]sim.Time),
	}
	la.UpcallDispatch.Register(reg, "latency.upcall_dispatch")
	la.ReadyWait.Register(reg, "latency.ready_wait")
	la.BlockUnblock.Register(reg, "latency.block_unblock")
	l.Observe(la.record)
	return la
}

// Reset zeroes the histograms and in-flight pairing state for reuse on a
// fresh run. The deriver stays attached to its log (observers survive
// Log.Reset) and its metric registrations keep reading the same histograms.
func (la *Latencies) Reset() {
	la.UpcallDispatch.Reset()
	la.ReadyWait.Reset()
	la.BlockUnblock.Reset()
	clear(la.upcallAt)
	clear(la.readyAt)
	clear(la.blockAt)
}

func (la *Latencies) record(r Record) {
	switch r.Kind {
	case KindUpcall:
		// A second upcall before any dispatch (handler yielded, vessel
		// stillborn) restarts the measurement: the latest delivery is the
		// one the next dispatch answers.
		la.upcallAt[r.CPU] = r.T
	case KindULDispatch:
		if t0, ok := la.upcallAt[r.CPU]; ok {
			la.UpcallDispatch.Observe(int64(r.T.Sub(t0)))
			delete(la.upcallAt, r.CPU)
		}
		if t0, ok := la.readyAt[r.Name]; ok {
			la.ReadyWait.Observe(int64(r.T.Sub(t0)))
			delete(la.readyAt, r.Name)
		}
	case KindULReady:
		la.readyAt[r.Name] = r.T
	case KindActBlock, KindFault:
		la.blockAt[r.A] = r.T
	case KindActUnblock:
		if t0, ok := la.blockAt[r.A]; ok {
			la.BlockUnblock.Observe(int64(r.T.Sub(t0)))
			delete(la.blockAt, r.A)
		}
	}
}
