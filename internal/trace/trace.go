// Package trace records scheduling events from the simulated kernel and
// thread systems as typed, fixed-size records — the system's single event
// currency. Every layer (machine, kernel, core, uthread, chaos) emits
// Records tagged with a Kind and integer arguments; consumers (the chaos
// auditor, the replay fingerprinter, the latency deriver, the Chrome
// exporter, satrace) dispatch on those fields. Text is rendered lazily,
// only when a sink actually prints, so the emit path allocates nothing.
//
// Tracing is optional everywhere: a nil *Log is valid and records nothing,
// so hot paths pay only a nil check when tracing is off.
package trace

import (
	"fmt"
	"io"

	"schedact/internal/sim"
)

// Log is a bounded in-memory event log, optionally mirrored to a writer.
type Log struct {
	Max       int       // maximum retained entries; 0 means unbounded
	Live      io.Writer // if non-nil, entries are written as they arrive
	list      []Record
	lost      uint64
	noRetain  bool // observer-only: records flow to observers/Live, none kept
	filterOn  bool // a category filter is installed (see Filter)
	kindMask  uint64          // bit per Kind: set = kept (typed kinds only)
	msgCats   map[string]bool // KindMsg categories kept (dynamic, in Name)
	observers []func(Record)
}

// kindMask is a bit per Kind; this trips at compile time if the enum ever
// outgrows the word.
var _ [64 - int(kindCount)]struct{}

// New returns a log retaining at most max entries (0 = unbounded). A
// bounded log preallocates its ring up front, so steady-state recording
// performs no allocation at all.
func New(max int) *Log {
	l := &Log{Max: max}
	if max > 0 {
		l.list = make([]Record, 0, max)
	}
	return l
}

// NewStream returns an observer-only log: records flow through the
// observer chain (and Live, if set) but none are retained — Entries stays
// empty. Runs whose every consumer hangs off Observe (the chaos sweep's
// auditor, fingerprinter, and latency deriver) use this to skip the ring
// append and half-drop copies on the hottest per-record path; runs that
// read the log afterwards (golden traces, satrace, the Chrome exporter)
// keep a retaining New log.
func NewStream() *Log { return &Log{noRetain: true} }

// Reset clears the retained records, the lost count, and any category
// filter, keeping the ring's capacity, the retention mode, and —
// deliberately — the observer list: long-lived stream consumers (auditor,
// fingerprinter, latency deriver) attach once per log and reset their own
// state per run, so a warm run re-records through the same observer chain
// a cold run would build.
func (l *Log) Reset() {
	l.list = l.list[:0]
	l.lost = 0
	l.filterOn = false
	l.kindMask = 0
	l.msgCats = nil
}

// Filter restricts the log to the given categories (Record.Cat values).
// Call before recording. The filter compiles to a Kind bitmask — every
// typed kind whose constant category matches is one set bit — so the
// per-record check is a shift and mask, not a map lookup; only KindMsg
// records (dynamic category) still consult a category set.
func (l *Log) Filter(cats ...string) *Log {
	l.filterOn = true
	l.kindMask = 0
	l.msgCats = make(map[string]bool, len(cats))
	for _, c := range cats {
		l.msgCats[c] = true
		for k := Kind(0); k < kindCount; k++ {
			if k != KindMsg && kindCats[k] == c {
				l.kindMask |= 1 << k
			}
		}
	}
	return l
}

// keeps reports whether the installed filter keeps r.
func (l *Log) keeps(r Record) bool {
	if r.Kind == KindMsg {
		return l.msgCats[r.Name]
	}
	return l.kindMask&(1<<r.Kind) != 0
}

// Filtered reports whether a category filter is installed. Consumers that
// derive conservation checks from the stream (the chaos auditor) must see
// every record and disable themselves on filtered logs.
func (l *Log) Filtered() bool { return l != nil && l.filterOn }

// Observe registers fn to receive every retained record as it is recorded.
// Observers run synchronously in recording order, after the category filter
// and before retention trimming — a consumer sees each record exactly once
// even when the ring later drops it. Continuous checkers (the chaos
// auditor, the fingerprinter, the latency deriver) hang off this hook.
func (l *Log) Observe(fn func(Record)) {
	if l == nil {
		return
	}
	l.observers = append(l.observers, fn)
}

// Emit records a typed event. Safe on a nil log. The record travels and is
// retained by value; with a bounded log this path performs zero heap
// allocations, observers included (asserted by TestEmitAllocationFree).
func (l *Log) Emit(r Record) {
	if l == nil {
		return
	}
	if l.filterOn && !l.keeps(r) {
		return
	}
	l.emit(r)
}

// emit is Emit past the filter: observers, live mirror, retention.
func (l *Log) emit(r Record) {
	for _, fn := range l.observers {
		fn(r)
	}
	if l.Live != nil {
		fmt.Fprintln(l.Live, r)
	}
	if l.noRetain {
		return
	}
	if l.Max > 0 && len(l.list) >= l.Max {
		// Drop the oldest half rather than shifting one-by-one.
		n := copy(l.list, l.list[len(l.list)/2:])
		l.lost += uint64(len(l.list) - n)
		l.list = l.list[:n]
	}
	l.list = append(l.list, r)
}

// Add records a pre-formatted event as a generic KindMsg record: cat
// becomes the record's category, the rendered format string its message.
// Safe on a nil log.
//
// Deprecated: Add renders its message eagerly, so with any observer
// attached every call allocates a formatted string even when nothing ever
// prints — exactly the per-event overhead the typed path removes. In-tree
// emit sites construct a Record and call Emit; Add remains so out-of-tree
// callers and tests can migrate incrementally.
func (l *Log) Add(t sim.Time, cpu int, cat, format string, args ...any) {
	if l == nil {
		return
	}
	// One filter check, before the message renders (a KindMsg record's
	// category is its Name, so the record itself is not needed to decide);
	// emit then skips the re-check Emit would perform.
	if l.filterOn && !l.msgCats[cat] {
		return
	}
	l.emit(Record{T: t, CPU: int32(cpu), Kind: KindMsg, Name: cat, Aux: fmt.Sprintf(format, args...)})
}

// Logf is Add under its historical name.
//
// Deprecated: see Add; new emit sites should construct a Record and Emit it.
func (l *Log) Logf(t sim.Time, cpu int, cat, format string, args ...any) {
	l.Add(t, cpu, cat, format, args...)
}

// Entries returns the retained records in order.
func (l *Log) Entries() []Record {
	if l == nil {
		return nil
	}
	return l.list
}

// Lost reports how many records were dropped to the retention bound.
func (l *Log) Lost() uint64 {
	if l == nil {
		return 0
	}
	return l.lost
}

// Dump writes all retained records to w.
func (l *Log) Dump(w io.Writer) {
	for _, r := range l.Entries() {
		fmt.Fprintln(w, r)
	}
}
