// Package trace records scheduling events from the simulated kernel and
// thread systems as typed, fixed-size records — the system's single event
// currency. Every layer (machine, kernel, core, uthread, chaos) emits
// Records tagged with a Kind and integer arguments; consumers (the chaos
// auditor, the replay fingerprinter, the latency deriver, the Chrome
// exporter, satrace) dispatch on those fields. Text is rendered lazily,
// only when a sink actually prints, so the emit path allocates nothing.
//
// Tracing is optional everywhere: a nil *Log is valid and records nothing,
// so hot paths pay only a nil check when tracing is off.
package trace

import (
	"fmt"
	"io"

	"schedact/internal/sim"
)

// Log is a bounded in-memory event log, optionally mirrored to a writer.
type Log struct {
	Max       int       // maximum retained entries; 0 means unbounded
	Live      io.Writer // if non-nil, entries are written as they arrive
	list      []Record
	lost      uint64
	filter    map[string]bool // if non-nil, only these categories are kept
	observers []func(Record)
}

// New returns a log retaining at most max entries (0 = unbounded). A
// bounded log preallocates its ring up front, so steady-state recording
// performs no allocation at all.
func New(max int) *Log {
	l := &Log{Max: max}
	if max > 0 {
		l.list = make([]Record, 0, max)
	}
	return l
}

// Reset clears the retained records, the lost count, and any category
// filter, keeping the ring's capacity and — deliberately — the observer
// list: long-lived stream consumers (auditor, fingerprinter, latency
// deriver) attach once per log and reset their own state per run, so a warm
// run re-records through the same observer chain a cold run would build.
func (l *Log) Reset() {
	l.list = l.list[:0]
	l.lost = 0
	l.filter = nil
}

// Filter restricts the log to the given categories (Record.Cat values).
// Call before recording.
func (l *Log) Filter(cats ...string) *Log {
	l.filter = make(map[string]bool, len(cats))
	for _, c := range cats {
		l.filter[c] = true
	}
	return l
}

// Filtered reports whether a category filter is installed. Consumers that
// derive conservation checks from the stream (the chaos auditor) must see
// every record and disable themselves on filtered logs.
func (l *Log) Filtered() bool { return l != nil && l.filter != nil }

// Observe registers fn to receive every retained record as it is recorded.
// Observers run synchronously in recording order, after the category filter
// and before retention trimming — a consumer sees each record exactly once
// even when the ring later drops it. Continuous checkers (the chaos
// auditor, the fingerprinter, the latency deriver) hang off this hook.
func (l *Log) Observe(fn func(Record)) {
	if l == nil {
		return
	}
	l.observers = append(l.observers, fn)
}

// Emit records a typed event. Safe on a nil log. The record travels and is
// retained by value; with a bounded log this path performs zero heap
// allocations, observers included (asserted by TestEmitAllocationFree).
func (l *Log) Emit(r Record) {
	if l == nil {
		return
	}
	if l.filter != nil && !l.filter[r.Cat()] {
		return
	}
	for _, fn := range l.observers {
		fn(r)
	}
	if l.Live != nil {
		fmt.Fprintln(l.Live, r)
	}
	if l.Max > 0 && len(l.list) >= l.Max {
		// Drop the oldest half rather than shifting one-by-one.
		n := copy(l.list, l.list[len(l.list)/2:])
		l.lost += uint64(len(l.list) - n)
		l.list = l.list[:n]
	}
	l.list = append(l.list, r)
}

// Add records a pre-formatted event as a generic KindMsg record: cat
// becomes the record's category, the rendered format string its message.
// Safe on a nil log.
//
// Deprecated: Add renders its message eagerly, so with any observer
// attached every call allocates a formatted string even when nothing ever
// prints — exactly the per-event overhead the typed path removes. In-tree
// emit sites construct a Record and call Emit; Add remains so out-of-tree
// callers and tests can migrate incrementally.
func (l *Log) Add(t sim.Time, cpu int, cat, format string, args ...any) {
	if l == nil {
		return
	}
	if l.filter != nil && !l.filter[cat] {
		return
	}
	l.Emit(Record{T: t, CPU: int32(cpu), Kind: KindMsg, Name: cat, Aux: fmt.Sprintf(format, args...)})
}

// Logf is Add under its historical name.
//
// Deprecated: see Add; new emit sites should construct a Record and Emit it.
func (l *Log) Logf(t sim.Time, cpu int, cat, format string, args ...any) {
	l.Add(t, cpu, cat, format, args...)
}

// Entries returns the retained records in order.
func (l *Log) Entries() []Record {
	if l == nil {
		return nil
	}
	return l.list
}

// Lost reports how many records were dropped to the retention bound.
func (l *Log) Lost() uint64 {
	if l == nil {
		return 0
	}
	return l.lost
}

// Dump writes all retained records to w.
func (l *Log) Dump(w io.Writer) {
	for _, r := range l.Entries() {
		fmt.Fprintln(w, r)
	}
}
