// Package trace records scheduling events from the simulated kernel and
// thread systems. Tracing is optional everywhere: a nil *Log is valid and
// records nothing, so hot paths pay only a nil check when tracing is off.
package trace

import (
	"fmt"
	"io"

	"schedact/internal/sim"
)

// Entry is one recorded event.
type Entry struct {
	T   sim.Time
	CPU int // -1 when not CPU-specific
	Cat string
	Msg string
}

func (e Entry) String() string {
	cpu := "  -"
	if e.CPU >= 0 {
		cpu = fmt.Sprintf("cpu%d", e.CPU)
	}
	return fmt.Sprintf("%12.3fms %-4s %-10s %s", e.T.Ms(), cpu, e.Cat, e.Msg)
}

// Log is a bounded in-memory event log, optionally mirrored to a writer.
type Log struct {
	Max       int       // maximum retained entries; 0 means unbounded
	Live      io.Writer // if non-nil, entries are written as they arrive
	list      []Entry
	lost      uint64
	filter    map[string]bool // if non-nil, only these categories are kept
	observers []func(Entry)
}

// New returns a log retaining at most max entries (0 = unbounded).
func New(max int) *Log { return &Log{Max: max} }

// Filter restricts the log to the given categories. Call before recording.
func (l *Log) Filter(cats ...string) *Log {
	l.filter = make(map[string]bool, len(cats))
	for _, c := range cats {
		l.filter[c] = true
	}
	return l
}

// Observe registers fn to receive every retained entry as it is recorded.
// Observers run synchronously in recording order, after the category filter
// and before retention trimming — a consumer sees each entry exactly once
// even when the ring later drops it. Continuous checkers (the chaos
// auditor's monotone-time and conservation assertions) hang off this hook.
func (l *Log) Observe(fn func(Entry)) {
	if l == nil {
		return
	}
	l.observers = append(l.observers, fn)
}

// Add records an event. Safe on a nil log.
func (l *Log) Add(t sim.Time, cpu int, cat, format string, args ...any) {
	if l == nil {
		return
	}
	if l.filter != nil && !l.filter[cat] {
		return
	}
	e := Entry{T: t, CPU: cpu, Cat: cat, Msg: fmt.Sprintf(format, args...)}
	for _, fn := range l.observers {
		fn(e)
	}
	if l.Live != nil {
		fmt.Fprintln(l.Live, e)
	}
	if l.Max > 0 && len(l.list) >= l.Max {
		// Drop the oldest half rather than shifting one-by-one.
		n := copy(l.list, l.list[len(l.list)/2:])
		l.lost += uint64(len(l.list) - n)
		l.list = l.list[:n]
	}
	l.list = append(l.list, e)
}

// Entries returns the retained entries in order.
func (l *Log) Entries() []Entry {
	if l == nil {
		return nil
	}
	return l.list
}

// Lost reports how many entries were dropped to the retention bound.
func (l *Log) Lost() uint64 {
	if l == nil {
		return 0
	}
	return l.lost
}

// Dump writes all retained entries to w.
func (l *Log) Dump(w io.Writer) {
	for _, e := range l.Entries() {
		fmt.Fprintln(w, e)
	}
}
