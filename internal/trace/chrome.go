package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry in the Chrome/Perfetto trace_event JSON array.
// Timestamps are microseconds of virtual time; pid groups all records into
// one process, tid is the CPU track (CPU -1 records land on a synthetic
// "kernel" track past the last real CPU).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// isSliceStart reports whether a record opens a "this is what ran here"
// slice on its CPU track: kernel-thread and user-level-thread dispatches.
func isSliceStart(k Kind) bool {
	return k == KindDispatch || k == KindULDispatch
}

// isSliceBoundary reports whether a record ends whatever slice was open on
// its CPU track — any scheduling transition that takes the dispatched work
// off the processor (or replaces it).
func isSliceBoundary(k Kind) bool {
	switch k {
	case KindDispatch, KindULDispatch, KindPreempt, KindExit, KindKTBlock,
		KindULBlock, KindULExit, KindULIdle, KindUpcall, KindTake,
		KindInterrupt, KindYield, KindActBlock, KindFault:
		return true
	}
	return false
}

// WriteChrome exports records as Chrome/Perfetto trace_event JSON
// (chrome://tracing, https://ui.perfetto.dev). Each CPU becomes a thread
// track; dispatch records open duration slices ("X") closed by the next
// scheduling boundary on the same track, and every other record is an
// instant ("i") so nothing in the stream is invisible. end is the run
// horizon used to close slices still open when the trace stops.
func WriteChrome(w io.Writer, records []Record, end float64) error {
	maxCPU := int32(-1)
	for _, r := range records {
		if r.CPU > maxCPU {
			maxCPU = r.CPU
		}
	}
	kernelTid := int(maxCPU) + 1

	events := make([]chromeEvent, 0, len(records)+kernelTid+2)
	for tid := 0; tid <= kernelTid; tid++ {
		name := fmt.Sprintf("cpu%d", tid)
		if tid == kernelTid {
			name = "kernel"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	// open[tid] is the index into events of the currently open slice.
	open := make(map[int]int)
	closeSlice := func(tid int, ts float64) {
		if i, ok := open[tid]; ok {
			events[i].Dur = ts - events[i].Ts
			delete(open, tid)
		}
	}
	for _, r := range records {
		tid := int(r.CPU)
		if r.CPU < 0 {
			tid = kernelTid
		}
		ts := r.T.Us()
		if isSliceBoundary(r.Kind) {
			closeSlice(tid, ts)
		}
		ev := chromeEvent{
			Name: r.Msg(),
			Cat:  r.Cat(),
			Ts:   ts,
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"msg": r.Msg()},
		}
		if isSliceStart(r.Kind) {
			ev.Name = r.Name
			ev.Ph = "X"
			open[tid] = len(events)
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		events = append(events, ev)
	}
	for tid := range open {
		closeSlice(tid, end)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
