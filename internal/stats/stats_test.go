package stats

import (
	"strings"
	"testing"
)

func TestCounterAndGaugeRoundTrip(t *testing.T) {
	r := New()
	c := r.Counter("kernel.dispatches")
	g := r.Gauge("sim.max_pending")
	c.Inc()
	c.Add(4)
	g.Set(3)
	g.Max(7)
	g.Max(2) // lower; must not regress
	if v, ok := r.Value("kernel.dispatches"); !ok || v != 5 {
		t.Fatalf("counter = %d,%v, want 5,true", v, ok)
	}
	if v, ok := r.Value("sim.max_pending"); !ok || v != 7 {
		t.Fatalf("gauge = %d,%v, want 7,true", v, ok)
	}
}

func TestFuncMetricReadsLive(t *testing.T) {
	r := New()
	backing := uint64(0)
	r.Func("uthread.app.steals", func() uint64 { return backing })
	backing = 42
	if v, _ := r.Value("uthread.app.steals"); v != 42 {
		t.Fatalf("func metric = %d, want live value 42", v)
	}
}

func TestDuplicateNamesGetDeterministicSuffixes(t *testing.T) {
	r := New()
	r.Func("uthread.nbody.steals", func() uint64 { return 1 })
	r.Func("uthread.nbody.steals", func() uint64 { return 2 })
	r.Func("uthread.nbody.steals", func() uint64 { return 3 })
	if v, ok := r.Value("uthread.nbody.steals#2"); !ok || v != 2 {
		t.Fatalf("second registration = %d,%v, want 2 under #2 suffix", v, ok)
	}
	if v, ok := r.Value("uthread.nbody.steals#3"); !ok || v != 3 {
		t.Fatalf("third registration = %d,%v, want 3 under #3 suffix", v, ok)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	r := New()
	r.Counter("zeta")
	r.Counter("alpha")
	r.Counter("mid")
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "alpha" || snap[1].Name != "mid" || snap[2].Name != "zeta" {
		t.Fatalf("snapshot order = %v, want sorted by name", snap)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x") // detached but usable
	c.Inc()
	g := r.Gauge("y")
	g.Set(9)
	r.Func("z", func() uint64 { return 0 })
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil registry must stay empty")
	}
	if _, ok := r.Value("x"); ok {
		t.Fatal("nil registry must not resolve names")
	}
}

func TestDumpAligned(t *testing.T) {
	r := New()
	c := r.Counter("core.upcalls")
	c.Add(12)
	r.Counter("machine.disk_ios")
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "core.upcalls") || !strings.Contains(out, "12") {
		t.Fatalf("dump missing metric: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2", len(lines))
	}
}
