package stats

import (
	"strings"
	"testing"
)

func TestCounterAndGaugeRoundTrip(t *testing.T) {
	r := New()
	c := r.Counter("kernel.dispatches")
	g := r.Gauge("sim.max_pending")
	c.Inc()
	c.Add(4)
	g.Set(3)
	g.Max(7)
	g.Max(2) // lower; must not regress
	if v, ok := r.Value("kernel.dispatches"); !ok || v != 5 {
		t.Fatalf("counter = %d,%v, want 5,true", v, ok)
	}
	if v, ok := r.Value("sim.max_pending"); !ok || v != 7 {
		t.Fatalf("gauge = %d,%v, want 7,true", v, ok)
	}
}

func TestFuncMetricReadsLive(t *testing.T) {
	r := New()
	backing := uint64(0)
	r.Func("uthread.app.steals", func() uint64 { return backing })
	backing = 42
	if v, _ := r.Value("uthread.app.steals"); v != 42 {
		t.Fatalf("func metric = %d, want live value 42", v)
	}
}

func TestDuplicateNamesGetDeterministicSuffixes(t *testing.T) {
	r := New()
	r.Func("uthread.nbody.steals", func() uint64 { return 1 })
	r.Func("uthread.nbody.steals", func() uint64 { return 2 })
	r.Func("uthread.nbody.steals", func() uint64 { return 3 })
	if v, ok := r.Value("uthread.nbody.steals#2"); !ok || v != 2 {
		t.Fatalf("second registration = %d,%v, want 2 under #2 suffix", v, ok)
	}
	if v, ok := r.Value("uthread.nbody.steals#3"); !ok || v != 3 {
		t.Fatalf("third registration = %d,%v, want 3 under #3 suffix", v, ok)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	r := New()
	r.Counter("zeta")
	r.Counter("alpha")
	r.Counter("mid")
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "alpha" || snap[1].Name != "mid" || snap[2].Name != "zeta" {
		t.Fatalf("snapshot order = %v, want sorted by name", snap)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x") // detached but usable
	c.Inc()
	g := r.Gauge("y")
	g.Set(9)
	r.Func("z", func() uint64 { return 0 })
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil registry must stay empty")
	}
	if _, ok := r.Value("x"); ok {
		t.Fatal("nil registry must not resolve names")
	}
}

func TestDumpAligned(t *testing.T) {
	r := New()
	c := r.Counter("core.upcalls")
	c.Add(12)
	r.Counter("machine.disk_ios")
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "core.upcalls") || !strings.Contains(out, "12") {
		t.Fatalf("dump missing metric: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2", len(lines))
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.MeanNs() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 90 fast observations (~1µs band) and 10 slow (~1ms band).
	for i := 0; i < 90; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	if h.N != 100 {
		t.Fatalf("N = %d, want 100", h.N)
	}
	if h.SumNs != 90*1000+10*1_000_000 {
		t.Fatalf("SumNs = %d", h.SumNs)
	}
	p50 := h.Quantile(0.50)
	if p50 < 1000 || p50 >= 2048 {
		t.Fatalf("p50 = %d, want the ~1µs bucket bound", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 1_000_000 || p99 >= 1<<21 {
		t.Fatalf("p99 = %d, want the ~1ms bucket bound", p99)
	}
	if got := h.MeanNs(); got != (90*1000+10*1_000_000)/100 {
		t.Fatalf("mean = %d", got)
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	h.Observe(1 << 62) // clamps into the last bucket
	if h.Buckets[0] != 2 {
		t.Fatalf("zero bucket = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[histBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", h.Buckets[histBuckets-1])
	}
	if h.Quantile(1.0) <= 0 {
		t.Fatal("p100 of an overflow observation must be positive")
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	var h Histogram
	avg := testing.AllocsPerRun(1000, func() { h.Observe(12345) })
	if avg != 0 {
		t.Fatalf("Observe allocates %.1f allocs/op, want 0", avg)
	}
}

func TestHistogramRegistry(t *testing.T) {
	r := New()
	h := r.Histogram("latency.test")
	h.Observe(1000)
	h.Observe(3000)
	if v, ok := r.Value("latency.test.count"); !ok || v != 2 {
		t.Fatalf("count = %d ok=%v", v, ok)
	}
	if v, ok := r.Value("latency.test.mean_ns"); !ok || v != 2000 {
		t.Fatalf("mean = %d ok=%v", v, ok)
	}
	for _, q := range []string{"p50_ns", "p90_ns", "p99_ns"} {
		if _, ok := r.Value("latency.test." + q); !ok {
			t.Fatalf("missing quantile metric %s", q)
		}
	}
	// Detached on a nil registry but still usable.
	var nilReg *Registry
	h2 := nilReg.Histogram("x")
	h2.Observe(1)
	if h2.N != 1 {
		t.Fatal("detached histogram must still observe")
	}
}
