// Package stats is a zero-dependency counter/gauge registry shared by every
// scheduling layer of the simulation. The engine owns one Registry per run;
// machine, kernel, core, and uthread all register their scheduling-event
// counters (upcalls, downcalls, dispatches, preemptions, steals, recoveries,
// cache misses, ...) into it, so any experiment can print a uniform profile
// of what its run did.
//
// Two registration styles are supported:
//
//   - push: Counter/Gauge hand back a cell the hot path increments directly
//     (one machine word, no map lookup, no locking);
//   - pull: Func registers a closure read at snapshot time, which lets a
//     layer keep its existing stats struct as the single source of truth and
//     expose it without touching its hot paths.
//
// Like the engine itself, a Registry is confined to the simulation
// goroutine; it is deliberately unsynchronized.
package stats

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { *c++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return uint64(*c) }

// Gauge is an instantaneous non-negative level (queue depth, pool size).
type Gauge uint64

// Set replaces the level.
func (g *Gauge) Set(v uint64) { *g = Gauge(v) }

// Max raises the level to v if v is larger (high-water marks).
func (g *Gauge) Max(v uint64) {
	if Gauge(v) > *g {
		*g = Gauge(v)
	}
}

// Value reports the current level.
func (g *Gauge) Value() uint64 { return uint64(*g) }

// histBuckets is the fixed bucket count of a Histogram: bucket i counts
// observations whose nanosecond value has bit length i (i.e. the power-of-
// two band [2^(i-1), 2^i)), with everything above 2^31 ns (~2.1s) clamped
// into the last bucket.
const histBuckets = 33

// Histogram is a fixed-bucket latency histogram: 33 power-of-two buckets
// over nanoseconds, covering 0 through seconds with ~2x resolution. The
// struct is a plain value with no interior pointers; Observe touches two
// machine words and never allocates, so trace-stream consumers can feed it
// per event on the hot path.
type Histogram struct {
	N       uint64
	SumNs   int64
	Buckets [histBuckets]uint64
}

// Observe records one latency in nanoseconds. Negative values clamp to 0.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.N++
	h.SumNs += ns
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.Buckets[i]++
}

// Reset zeroes the histogram for reuse on a fresh run. Registrations remain
// valid: they read through the pointer, so a registered histogram resets in
// place without touching the registry.
func (h *Histogram) Reset() {
	*h = Histogram{}
}

// Merge folds other into h: counts, sums, and buckets add bucket-wise, so a
// streaming sweep aggregator can maintain one fleet-wide distribution from
// per-run histograms it immediately recycles. Quantile estimates of the
// merged histogram are exactly those of observing both streams into one.
func (h *Histogram) Merge(other *Histogram) {
	h.N += other.N
	h.SumNs += other.SumNs
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Quantile returns the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket containing it, in nanoseconds — an estimate within 2x, which
// is what fixed power-of-two buckets buy. Zero when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	target := uint64(q * float64(h.N))
	if target < 1 {
		target = 1
	}
	if target > h.N {
		target = h.N
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<uint(histBuckets) - 1
}

// MeanNs returns the mean observation in nanoseconds (exact, unlike the
// bucketed quantiles). Zero when empty.
func (h *Histogram) MeanNs() int64 {
	if h.N == 0 {
		return 0
	}
	return h.SumNs / int64(h.N)
}

// Register exposes the histogram under name as pull metrics — count, mean,
// and the p50/p90/p99 bucket upper bounds, all in nanoseconds — so any
// snapshot consumer (saexp -stats, the chaos fingerprinter) sees latency
// distributions through the same registry as every counter. No-op on a nil
// registry.
func (h *Histogram) Register(r *Registry, name string) {
	r.Func(name+".count", func() uint64 { return h.N })
	r.Func(name+".mean_ns", func() uint64 { return uint64(h.MeanNs()) })
	r.Func(name+".p50_ns", func() uint64 { return uint64(h.Quantile(0.50)) })
	r.Func(name+".p90_ns", func() uint64 { return uint64(h.Quantile(0.90)) })
	r.Func(name+".p99_ns", func() uint64 { return uint64(h.Quantile(0.99)) })
}

// Histogram registers and returns a push histogram, mirroring Counter and
// Gauge. On a nil registry the histogram is detached but still usable.
func (r *Registry) Histogram(name string) *Histogram {
	h := new(Histogram)
	h.Register(r, name)
	return h
}

// Sample is one named value in a snapshot. Host marks a metric that
// describes the simulator process rather than the simulation — such values
// may legitimately differ between runs of the same seed, so determinism
// checks (the chaos fingerprinter) skip them.
type Sample struct {
	Name  string
	Value uint64
	Host  bool
}

// Registry is an ordered set of named metrics. The zero value is not usable;
// call New. All methods are safe on a nil *Registry (they no-op or hand back
// detached cells), so layers can run without one.
type Registry struct {
	names []string
	read  map[string]func() uint64
	host  map[string]bool
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{read: make(map[string]func() uint64), host: make(map[string]bool)}
}

// Counter registers and returns a push counter. On a nil registry the
// counter is detached but still valid to increment.
func (r *Registry) Counter(name string) *Counter {
	c := new(Counter)
	r.Func(name, c.Value)
	return c
}

// Gauge registers and returns a push gauge. On a nil registry the gauge is
// detached but still valid to update.
func (r *Registry) Gauge(name string) *Gauge {
	g := new(Gauge)
	r.Func(name, g.Value)
	return g
}

// Func registers a pull metric: fn is invoked at snapshot time. When name is
// already taken (several schedulers of the same kind sharing one engine),
// a deterministic "#2", "#3", ... suffix is appended.
func (r *Registry) Func(name string, fn func() uint64) {
	r.register(name, fn, false)
}

// FuncHost registers a pull metric describing the host simulator process —
// physical goroutine switches, pool reuse, anything whose value depends on
// how the simulation was executed rather than what it simulated. Host
// samples are marked in Snapshot and excluded from determinism fingerprints
// (see internal/chaos), because they may legitimately differ between two
// runs of the same seed.
func (r *Registry) FuncHost(name string, fn func() uint64) {
	r.register(name, fn, true)
}

func (r *Registry) register(name string, fn func() uint64, host bool) {
	if r == nil {
		return
	}
	if _, dup := r.read[name]; dup {
		for i := 2; ; i++ {
			cand := fmt.Sprintf("%s#%d", name, i)
			if _, ok := r.read[cand]; !ok {
				name = cand
				break
			}
		}
	}
	r.names = append(r.names, name)
	r.read[name] = fn
	if host {
		r.host[name] = true
	}
}

// Value reads one metric by exact name.
func (r *Registry) Value(name string) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	fn, ok := r.read[name]
	if !ok {
		return 0, false
	}
	return fn(), true
}

// Len reports how many metrics are registered.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.names)
}

// Mark returns a cursor over the registration sequence for Truncate: every
// metric registered before the call survives a later Truncate(mark), every
// one registered after is dropped by it.
func (r *Registry) Mark() int { return r.Len() }

// Truncate unregisters every metric registered after mark (a value from
// Mark), restoring the registry to that earlier state. Warm run contexts use
// this between runs: construction-time registrations (engine, kernel, chaos
// instruments) persist across the mark while per-run ones (per-space
// scheduler counters) are dropped and re-registered fresh, so a recycled
// engine's snapshot carries exactly the names a cold engine's would.
func (r *Registry) Truncate(mark int) {
	if r == nil || mark >= len(r.names) {
		return
	}
	if mark < 0 {
		mark = 0
	}
	for _, name := range r.names[mark:] {
		delete(r.read, name)
		delete(r.host, name)
	}
	r.names = r.names[:mark]
}

// Snapshot reads every metric, sorted by name so layers group together and
// output is stable regardless of registration order.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	out := make([]Sample, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, Sample{Name: name, Value: r.read[name](), Host: r.host[name]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Dump writes the snapshot as an aligned two-column table.
func (r *Registry) Dump(w io.Writer) {
	snap := r.Snapshot()
	width := 0
	for _, s := range snap {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range snap {
		fmt.Fprintf(w, "  %-*s %12d\n", width, s.Name, s.Value)
	}
}
