// Package stats is a zero-dependency counter/gauge registry shared by every
// scheduling layer of the simulation. The engine owns one Registry per run;
// machine, kernel, core, and uthread all register their scheduling-event
// counters (upcalls, downcalls, dispatches, preemptions, steals, recoveries,
// cache misses, ...) into it, so any experiment can print a uniform profile
// of what its run did.
//
// Two registration styles are supported:
//
//   - push: Counter/Gauge hand back a cell the hot path increments directly
//     (one machine word, no map lookup, no locking);
//   - pull: Func registers a closure read at snapshot time, which lets a
//     layer keep its existing stats struct as the single source of truth and
//     expose it without touching its hot paths.
//
// Like the engine itself, a Registry is confined to the simulation
// goroutine; it is deliberately unsynchronized.
package stats

import (
	"fmt"
	"io"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { *c++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return uint64(*c) }

// Gauge is an instantaneous non-negative level (queue depth, pool size).
type Gauge uint64

// Set replaces the level.
func (g *Gauge) Set(v uint64) { *g = Gauge(v) }

// Max raises the level to v if v is larger (high-water marks).
func (g *Gauge) Max(v uint64) {
	if Gauge(v) > *g {
		*g = Gauge(v)
	}
}

// Value reports the current level.
func (g *Gauge) Value() uint64 { return uint64(*g) }

// Sample is one named value in a snapshot.
type Sample struct {
	Name  string
	Value uint64
}

// Registry is an ordered set of named metrics. The zero value is not usable;
// call New. All methods are safe on a nil *Registry (they no-op or hand back
// detached cells), so layers can run without one.
type Registry struct {
	names []string
	read  map[string]func() uint64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{read: make(map[string]func() uint64)}
}

// Counter registers and returns a push counter. On a nil registry the
// counter is detached but still valid to increment.
func (r *Registry) Counter(name string) *Counter {
	c := new(Counter)
	r.Func(name, c.Value)
	return c
}

// Gauge registers and returns a push gauge. On a nil registry the gauge is
// detached but still valid to update.
func (r *Registry) Gauge(name string) *Gauge {
	g := new(Gauge)
	r.Func(name, g.Value)
	return g
}

// Func registers a pull metric: fn is invoked at snapshot time. When name is
// already taken (several schedulers of the same kind sharing one engine),
// a deterministic "#2", "#3", ... suffix is appended.
func (r *Registry) Func(name string, fn func() uint64) {
	if r == nil {
		return
	}
	if _, dup := r.read[name]; dup {
		for i := 2; ; i++ {
			cand := fmt.Sprintf("%s#%d", name, i)
			if _, ok := r.read[cand]; !ok {
				name = cand
				break
			}
		}
	}
	r.names = append(r.names, name)
	r.read[name] = fn
}

// Value reads one metric by exact name.
func (r *Registry) Value(name string) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	fn, ok := r.read[name]
	if !ok {
		return 0, false
	}
	return fn(), true
}

// Len reports how many metrics are registered.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.names)
}

// Snapshot reads every metric, sorted by name so layers group together and
// output is stable regardless of registration order.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	out := make([]Sample, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, Sample{Name: name, Value: r.read[name]()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Dump writes the snapshot as an aligned two-column table.
func (r *Registry) Dump(w io.Writer) {
	snap := r.Snapshot()
	width := 0
	for _, s := range snap {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range snap {
		fmt.Fprintf(w, "  %-*s %12d\n", width, s.Name, s.Value)
	}
}
