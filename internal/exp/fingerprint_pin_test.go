package exp

import (
	"fmt"
	"testing"
)

// pinnedFingerprints pins the chaos fingerprints of the first four sweep
// seeds to the values produced by the typed-record trace pipeline (the full
// 64-seed table lives in EXPERIMENTS.md). The fingerprint hashes every
// record's binary fields plus the final metrics snapshot, so it changes
// when — and only when — a PR alters what the system traces or counts, not
// when message wording changes. A PR that trips this test must be changing
// the stream deliberately; update these constants and the EXPERIMENTS.md
// table in the same commit, exactly once per such change.
var pinnedFingerprints = map[int64]string{
	1: "1a7de30aff85016d",
	2: "f08b96206f028ba2",
	3: "40b375c79a0faed0",
	4: "12653ae3f1bfc11b",
}

func TestFingerprintsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are slow in -short mode")
	}
	for seed, want := range pinnedFingerprints {
		r := RunChaosSeed(seed)
		if !r.OK() {
			t.Fatalf("seed %d failed: %d violations, %d/%d threads, replay %v vs %v",
				seed, len(r.Violations), r.Finished, r.Total, r.Replay, r.Fingerprint)
		}
		if got := fmt.Sprint(r.Fingerprint); got != want {
			t.Errorf("seed %d fingerprint = %s, pinned %s — the trace stream changed; "+
				"update pinnedFingerprints and the EXPERIMENTS.md sweep table together", seed, got, want)
		}
	}
}
