package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"schedact/internal/chaos"
	"schedact/internal/core"
	"schedact/internal/fleet"
	"schedact/internal/sim"
	"schedact/internal/trace"
	"schedact/internal/uthread"
)

// Workload tracks a randomized mixed workload's completion.
type Workload struct {
	Total    int
	finished *int
}

// Finished reports how many threads have run to completion.
func (w *Workload) Finished() int { return *w.finished }

// Done reports whether every thread finished.
func (w *Workload) Done() bool { return *w.finished >= w.Total }

// BuildMixedWorkload constructs the soak mixture on a scheduler-activation
// kernel: several address spaces of threads doing compute bursts, mutex and
// spin-lock critical sections, blocking I/O, page touches, yields, and
// cond-variable fork/join handshakes — everything the paper's kernel
// interface has to survive, drawn from rng (so the shape is a pure function
// of the caller's seed). Used by both the soak test and the chaos sweep.
func BuildMixedWorkload(k *core.Kernel, vm *core.VM, rng *rand.Rand) *Workload {
	finished := new(int)
	total := 0
	nspaces := 1 + rng.Intn(3)
	for si := 0; si < nspaces; si++ {
		s := uthread.OnActivations(k, fmt.Sprintf("soak%d", si), rng.Intn(2), k.M.NumCPUs(), uthread.Options{})
		mu := s.NewMutex()
		cond := s.NewCond()
		spin := &uthread.SpinLock{}
		nthreads := 3 + rng.Intn(8)
		total += nthreads
		for ti := 0; ti < nthreads; ti++ {
			plan := make([]int, 4+rng.Intn(8))
			for i := range plan {
				plan[i] = rng.Intn(7)
			}
			prio := rng.Intn(3)
			work := sim.Duration(rng.Intn(2000)+100) * sim.Microsecond
			page := rng.Intn(6)
			s.SpawnPrio(fmt.Sprintf("t%d.%d", si, ti), prio, func(th *uthread.Thread) {
				for _, op := range plan {
					switch op {
					case 0:
						th.Exec(work)
					case 1:
						mu.Lock(th)
						th.Exec(work / 4)
						mu.Unlock(th)
					case 2:
						spin.Acquire(th)
						th.Exec(work / 8)
						spin.Release(th)
					case 3:
						th.BlockIO()
					case 4:
						th.TouchPage(vm, page)
					case 5:
						th.Yield()
					case 6:
						// Cond handshake with a forked signaller, Mesa-style:
						// the flag is set and broadcast under the mutex, so a
						// wake-up can neither land before the waiter blocks
						// nor be consumed by another handshake's waiter (the
						// cond is shared, so Signal could wake the wrong
						// thread and strand this one).
						done := false
						c := th.Fork("signaller", func(c *uthread.Thread) {
							c.Exec(work / 2)
							mu.Lock(c)
							done = true
							cond.Broadcast(c)
							mu.Unlock(c)
						})
						mu.Lock(th)
						for !done {
							cond.Wait(th, mu)
						}
						mu.Unlock(th)
						th.Join(c)
					}
				}
				*finished++
			})
		}
		s.Start()
	}
	return &Workload{Total: total, finished: finished}
}

// ChaosResult is one seed's verdict from the chaos sweep.
type ChaosResult struct {
	Seed        int64
	Fingerprint chaos.Fingerprint
	Replay      chaos.Fingerprint // second run of the same seed
	Violations  []chaos.Violation
	Finished    int
	Total       int
	End         sim.Time // virtual time when the run stopped
	Preempts    uint64   // forced preemptions actually landed
}

// OK reports whether the seed passed: no invariant violations, every thread
// finished, and the replay reproduced the identical fingerprint.
func (r ChaosResult) OK() bool {
	return len(r.Violations) == 0 && r.Finished == r.Total && r.Fingerprint == r.Replay
}

// chaosStepLimit bounds one chaos run: storm phase, then a quiesced drain.
const (
	chaosStormSteps = 20000 // milliseconds of virtual time under injection
	chaosDrainSteps = 5000  // milliseconds to drain after Stop
)

// chaosLabel names one seed's run engine.
func chaosLabel(seed int64) string { return fmt.Sprintf("chaos seed %d", seed) }

// chaosOnce executes one audited, fault-injected mixed workload for seed.
// pool, when non-nil, supplies warm coroutine goroutines (sim.Pool); it must
// be owned by the calling worker. The engine honors EngineLPs, so the chaos
// battery sweeps the PDES engine when saexp -engine=par selects it. The
// timeline is identical either way.
func chaosOnce(pool *sim.Pool, seed int64, mutate func(*core.Kernel)) (chaos.Fingerprint, ChaosResult) {
	opts := append([]sim.Option{sim.WithLabel(chaosLabel(seed))}, parEngineOpts()...)
	return chaosOnceOn(pool.NewEngine(opts...), seed, mutate)
}

// chaosOnceOn is chaosOnce on a caller-supplied engine — the seam the
// replay check uses to drive the identical workload through a tape-driven
// replay engine instead of the reference one. It closes the engine
// before returning (the fingerprint finalizes as a close hook).
func chaosOnceOn(eng sim.Engine, seed int64, mutate func(*core.Kernel)) (fp chaos.Fingerprint, r ChaosResult) {
	rng := rand.New(rand.NewSource(seed))
	defer eng.Close()
	tr := trace.New(8192)
	k := core.New(eng, core.Config{CPUs: 2 + rng.Intn(4), Trace: tr})
	if mutate != nil {
		mutate(k)
	}
	StartDaemonSA(k)
	vm := k.NewVM()
	aud := chaos.Attach(k, tr, 250*sim.Microsecond)
	fpr := chaos.NewFingerprinter(tr)
	fpr.AttachClose(eng)
	// Latency histograms ride the same stream; their registered metrics fold
	// into the fingerprint as the engine closes, so they are part of the
	// replay check.
	trace.NewLatencies(tr, eng.Metrics())
	inj := chaos.New(eng, chaos.NewPlan(seed))
	inj.InstrumentSA(k)
	inj.InstrumentVM(vm)
	wl := BuildMixedWorkload(k, vm, rng)

	for step := 0; step < chaosStormSteps && !wl.Done() && len(aud.Violations) == 0; step++ {
		eng.RunFor(sim.Millisecond)
	}
	// Quiesce injection and drain: a shortfall after this means a thread was
	// genuinely lost, not merely still dodging the storm.
	inj.Stop()
	for step := 0; step < chaosDrainSteps && !wl.Done() && len(aud.Violations) == 0; step++ {
		eng.RunFor(sim.Millisecond)
	}
	aud.Check()
	r = ChaosResult{
		Seed:       seed,
		Violations: aud.Violations,
		Finished:   wl.Finished(),
		Total:      wl.Total,
		End:        eng.Now(),
		Preempts:   inj.Stats.Preempts,
	}
	eng.Close() // idempotent with the defer; fires the fingerprint close hook
	return fpr.Value(), r
}

// ReplayChaosSeed runs seed once on the reference engine while recording its
// fired-event stream, then re-executes the identical workload on a
// replay engine (sim.NewReplayEngine) seeded with that recording, and returns both
// fingerprints. The replay engine has no timing wheel, heap, or ordering
// logic of its own — the tape dictates every firing — so matching
// fingerprints prove the hook stream carries the complete timeline, and the
// replay engine panics on the first divergence rather than drifting
// silently.
func ReplayChaosSeed(seed int64) (ref, replay chaos.Fingerprint) {
	eng := sim.NewEngine(sim.WithLabel(chaosLabel(seed)))
	rec := sim.Record(eng)
	ref, _ = chaosOnceOn(eng, seed, nil)
	replay, _ = chaosOnceOn(sim.NewReplayEngine(rec.Recording(), sim.WithLabel(chaosLabel(seed))), seed, nil)
	return ref, replay
}

// ParChaosSeed runs seed once on the reference engine and once on the
// conservative PDES engine with lps logical processes (calibrated lookahead,
// subject-hash affinity — the production configuration), and returns both
// fingerprints. The fingerprint hashes every trace record, the final clock,
// and the full non-host metrics snapshot, so a match proves the partitioned
// engine reproduced the reference run byte for byte.
func ParChaosSeed(seed int64, lps int) (ref, par chaos.Fingerprint) {
	ref, _ = chaosOnceOn(sim.NewEngine(sim.WithLabel(chaosLabel(seed))), seed, nil)
	opts := append([]sim.Option{sim.WithLabel(chaosLabel(seed))}, parEngineOptsN(lps)...)
	par, _ = chaosOnceOn(sim.NewEngine(opts...), seed, nil)
	return ref, par
}

// RunChaosSeed runs one seed twice — identical code path both times — and
// folds the replay's fingerprint into the result, so a nondeterminism leak
// fails the seed even when every invariant held.
func RunChaosSeed(seed int64) ChaosResult { return runChaosSeedIn(nil, seed) }

// runChaosSeedIn is RunChaosSeed drawing coroutine goroutines from pool
// (nil = unpooled). Both the run and its replay share the pool, so the
// replay check also exercises warm-goroutine reuse.
func runChaosSeedIn(pool *sim.Pool, seed int64) ChaosResult {
	fpA, r := chaosOnce(pool, seed, nil)
	fpB, _ := chaosOnce(pool, seed, nil)
	r.Fingerprint = fpA
	r.Replay = fpB
	return r
}

// RunChaosSeedAblated is RunChaosSeed against a deliberately broken kernel
// (single run, no replay) — the auditor-has-teeth demonstration.
func RunChaosSeedAblated(seed int64, mutate func(*core.Kernel)) ChaosResult {
	fp, r := chaosOnce(nil, seed, mutate)
	r.Fingerprint = fp
	r.Replay = fp
	return r
}

// ChaosSweep runs seeds first..first+n-1 through RunChaosSeed on a pool of
// workers (0 = one per CPU), reporting one line per seed to w — in seed
// order, regardless of which worker finished first — plus full violation
// reports for failures, sweep throughput, and per-worker failure
// attribution. It returns the number of failed seeds.
//
// Each seed runs on its own engine, trace log, and injector, so the
// per-seed fingerprints are byte-identical to a sequential (-workers 1)
// sweep; only wall-clock time and the worker column vary with the pool.
func ChaosSweep(w io.Writer, first, n int64, workers int) (failed int) {
	if workers <= 0 {
		workers = fleet.DefaultWorkers()
	}
	fprintf(w, "chaos sweep: %d seeds starting at %d on %d worker(s) (auditor on, each seed run twice)\n",
		n, first, workers)
	start := time.Now()
	type tally struct{ runs, failed int }
	byWorker := make([]tally, workers)
	// One coroutine-goroutine pool per worker: each pool is confined to the
	// worker goroutine that owns it, and successive seeds on that worker
	// reuse warm goroutines instead of spawning thousands. Fleet clamps the
	// pool width to the job count, so unused slots just stay nil.
	pools := make([]*sim.Pool, workers)
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()
	fleet.Run(workers, int(n), func(job, worker int) ChaosResult {
		if pools[worker] == nil {
			pools[worker] = sim.NewPool()
		}
		return runChaosSeedIn(pools[worker], first+int64(job))
	}, func(res fleet.Result[ChaosResult]) {
		r := res.Value
		status := "ok"
		byWorker[res.Worker].runs++
		if !r.OK() {
			status = "FAIL"
			failed++
			byWorker[res.Worker].failed++
		}
		fprintf(w, "  seed %3d  w%-2d fp %v  preempts %4d  threads %2d/%2d  t=%8.0fms  %s\n",
			r.Seed, res.Worker, r.Fingerprint, r.Preempts, r.Finished, r.Total, r.End.Ms(), status)
		if r.Fingerprint != r.Replay {
			fprintf(w, "       nondeterministic: replay fingerprint %v\n", r.Replay)
		}
		for _, v := range r.Violations {
			fprintf(w, "%v", v.Error())
		}
	})
	elapsed := time.Since(start)
	fprintf(w, "chaos sweep: %d seeds in %.2fs (%.1f seeds/sec)\n",
		n, elapsed.Seconds(), float64(n)/elapsed.Seconds())
	for wi, t := range byWorker {
		if t.failed > 0 {
			fprintf(w, "  worker %d: %d seeds, %d FAILED\n", wi, t.runs, t.failed)
		}
	}
	if failed == 0 {
		fprintf(w, "chaos sweep: all %d seeds passed\n", n)
	} else {
		fprintf(w, "chaos sweep: %d of %d seeds FAILED\n", failed, n)
	}
	return failed
}
