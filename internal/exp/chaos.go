package exp

import (
	"fmt"
	"math/rand"

	"schedact/internal/chaos"
	"schedact/internal/core"
	"schedact/internal/sim"
	"schedact/internal/stats"
	"schedact/internal/trace"
	"schedact/internal/uthread"
)

// Workload tracks a randomized mixed workload's completion.
type Workload struct {
	Total    int
	finished *int
}

// Finished reports how many threads have run to completion.
func (w *Workload) Finished() int { return *w.finished }

// Done reports whether every thread finished.
func (w *Workload) Done() bool { return *w.finished >= w.Total }

// BuildMixedWorkload constructs the soak mixture on a scheduler-activation
// kernel: several address spaces of threads doing compute bursts, mutex and
// spin-lock critical sections, blocking I/O, page touches, yields, and
// cond-variable fork/join handshakes — everything the paper's kernel
// interface has to survive, drawn from rng (so the shape is a pure function
// of the caller's seed). Used by both the soak test and the chaos sweep.
func BuildMixedWorkload(k *core.Kernel, vm *core.VM, rng *rand.Rand) *Workload {
	finished := new(int)
	total := 0
	nspaces := 1 + rng.Intn(3)
	for si := 0; si < nspaces; si++ {
		s := uthread.OnActivations(k, fmt.Sprintf("soak%d", si), rng.Intn(2), k.M.NumCPUs(), uthread.Options{})
		mu := s.NewMutex()
		cond := s.NewCond()
		spin := &uthread.SpinLock{}
		nthreads := 3 + rng.Intn(8)
		total += nthreads
		for ti := 0; ti < nthreads; ti++ {
			plan := make([]int, 4+rng.Intn(8))
			for i := range plan {
				plan[i] = rng.Intn(7)
			}
			prio := rng.Intn(3)
			work := sim.Duration(rng.Intn(2000)+100) * sim.Microsecond
			page := rng.Intn(6)
			s.SpawnPrio(fmt.Sprintf("t%d.%d", si, ti), prio, func(th *uthread.Thread) {
				for _, op := range plan {
					switch op {
					case 0:
						th.Exec(work)
					case 1:
						mu.Lock(th)
						th.Exec(work / 4)
						mu.Unlock(th)
					case 2:
						spin.Acquire(th)
						th.Exec(work / 8)
						spin.Release(th)
					case 3:
						th.BlockIO()
					case 4:
						th.TouchPage(vm, page)
					case 5:
						th.Yield()
					case 6:
						// Cond handshake with a forked signaller, Mesa-style:
						// the flag is set and broadcast under the mutex, so a
						// wake-up can neither land before the waiter blocks
						// nor be consumed by another handshake's waiter (the
						// cond is shared, so Signal could wake the wrong
						// thread and strand this one).
						done := false
						c := th.Fork("signaller", func(c *uthread.Thread) {
							c.Exec(work / 2)
							mu.Lock(c)
							done = true
							cond.Broadcast(c)
							mu.Unlock(c)
						})
						mu.Lock(th)
						for !done {
							cond.Wait(th, mu)
						}
						mu.Unlock(th)
						th.Join(c)
					}
				}
				*finished++
			})
		}
		s.Start()
	}
	return &Workload{Total: total, finished: finished}
}

// ChaosResult is one seed's verdict from the chaos sweep.
type ChaosResult struct {
	Seed        int64
	Fingerprint chaos.Fingerprint
	Replay      chaos.Fingerprint // second run of the same seed
	Violations  []chaos.Violation
	Finished    int
	Total       int
	End         sim.Time // virtual time when the run stopped
	Preempts    uint64   // forced preemptions actually landed
}

// OK reports whether the seed passed: no invariant violations, every thread
// finished, and the replay reproduced the identical fingerprint.
func (r ChaosResult) OK() bool {
	return len(r.Violations) == 0 && r.Finished == r.Total && r.Fingerprint == r.Replay
}

// chaosStepLimit bounds one chaos run: storm phase, then a quiesced drain.
const (
	chaosStormSteps = 20000 // milliseconds of virtual time under injection
	chaosDrainSteps = 5000  // milliseconds to drain after Stop
)

// chaosLabel names one seed's run engine.
func chaosLabel(seed int64) string { return fmt.Sprintf("chaos seed %d", seed) }

// chaosOnce executes one audited, fault-injected mixed workload for seed.
// pool, when non-nil, supplies warm coroutine goroutines (sim.Pool); it must
// be owned by the calling worker. The engine honors EngineLPs, so the chaos
// battery sweeps the PDES engine when saexp -engine=par selects it. The
// timeline is identical either way.
func chaosOnce(pool *sim.Pool, seed int64, mutate func(*core.Kernel)) (chaos.Fingerprint, ChaosResult) {
	opts := append([]sim.Option{sim.WithLabel(chaosLabel(seed))}, parEngineOpts()...)
	return chaosOnceOn(pool.NewEngine(opts...), seed, mutate)
}

// chaosOnceOn is chaosOnce on a caller-supplied engine — the seam the
// replay check uses to drive the identical workload through a tape-driven
// replay engine instead of the reference one. It closes the engine
// before returning (the fingerprint finalizes as a close hook).
func chaosOnceOn(eng sim.Engine, seed int64, mutate func(*core.Kernel)) (fp chaos.Fingerprint, r ChaosResult) {
	rng := rand.New(rand.NewSource(seed))
	defer eng.Close()
	// Every chaos consumer — auditor, fingerprinter, latency deriver —
	// hangs off Observe (the auditor keeps its own violation window), so
	// the log retains nothing: no consumer reads it after the run, and the
	// stream mode skips the ring append on the hottest per-record path.
	tr := trace.NewStream()
	k := core.New(eng, core.Config{CPUs: 2 + rng.Intn(4), Trace: tr})
	if mutate != nil {
		mutate(k)
	}
	StartDaemonSA(k)
	vm := k.NewVM()
	aud := chaos.Attach(k, tr, 250*sim.Microsecond)
	fpr := chaos.NewFingerprinter(tr)
	fpr.AttachClose(eng)
	// Latency histograms ride the same stream; their registered metrics fold
	// into the fingerprint as the engine closes, so they are part of the
	// replay check.
	trace.NewLatencies(tr, eng.Metrics())
	inj := chaos.New(eng, chaos.NewPlan(seed))
	inj.InstrumentSA(k)
	inj.InstrumentVM(vm)
	wl := BuildMixedWorkload(k, vm, rng)

	for step := 0; step < chaosStormSteps && !wl.Done() && len(aud.Violations) == 0; step++ {
		eng.RunFor(sim.Millisecond)
	}
	// Quiesce injection and drain: a shortfall after this means a thread was
	// genuinely lost, not merely still dodging the storm.
	inj.Stop()
	for step := 0; step < chaosDrainSteps && !wl.Done() && len(aud.Violations) == 0; step++ {
		eng.RunFor(sim.Millisecond)
	}
	aud.Check()
	r = ChaosResult{
		Seed:       seed,
		Violations: aud.Violations,
		Finished:   wl.Finished(),
		Total:      wl.Total,
		End:        eng.Now(),
		Preempts:   inj.Stats.Preempts,
	}
	eng.Close() // idempotent with the defer; fires the fingerprint close hook
	return fpr.Value(), r
}

// ReplayChaosSeed runs seed once on the reference engine while recording its
// fired-event stream, then re-executes the identical workload on a
// replay engine (sim.NewReplayEngine) seeded with that recording, and returns both
// fingerprints. The replay engine has no timing wheel, heap, or ordering
// logic of its own — the tape dictates every firing — so matching
// fingerprints prove the hook stream carries the complete timeline, and the
// replay engine panics on the first divergence rather than drifting
// silently.
func ReplayChaosSeed(seed int64) (ref, replay chaos.Fingerprint) {
	eng := sim.NewEngine(sim.WithLabel(chaosLabel(seed)))
	rec := sim.Record(eng)
	ref, _ = chaosOnceOn(eng, seed, nil)
	replay, _ = chaosOnceOn(sim.NewReplayEngine(rec.Recording(), sim.WithLabel(chaosLabel(seed))), seed, nil)
	return ref, replay
}

// ParChaosSeed runs seed once on the reference engine and once on the
// conservative PDES engine with lps logical processes (calibrated lookahead,
// subject-hash affinity — the production configuration), and returns both
// fingerprints. The fingerprint hashes every trace record, the final clock,
// and the full non-host metrics snapshot, so a match proves the partitioned
// engine reproduced the reference run byte for byte.
func ParChaosSeed(seed int64, lps int) (ref, par chaos.Fingerprint) {
	ref, _ = chaosOnceOn(sim.NewEngine(sim.WithLabel(chaosLabel(seed))), seed, nil)
	opts := append([]sim.Option{sim.WithLabel(chaosLabel(seed))}, parEngineOptsN(lps)...)
	par, _ = chaosOnceOn(sim.NewEngine(opts...), seed, nil)
	return ref, par
}

// RunChaosSeed runs one seed twice — identical code path both times — and
// folds the replay's fingerprint into the result, so a nondeterminism leak
// fails the seed even when every invariant held.
func RunChaosSeed(seed int64) ChaosResult { return runChaosSeedIn(nil, seed) }

// runChaosSeedIn is RunChaosSeed drawing coroutine goroutines from pool
// (nil = unpooled). Both the run and its replay share the pool, so the
// replay check also exercises warm-goroutine reuse.
func runChaosSeedIn(pool *sim.Pool, seed int64) ChaosResult {
	fpA, r := chaosOnce(pool, seed, nil)
	fpB, _ := chaosOnce(pool, seed, nil)
	r.Fingerprint = fpA
	r.Replay = fpB
	return r
}

// RunChaosSeedAblated is RunChaosSeed against a deliberately broken kernel
// (single run, no replay) — the auditor-has-teeth demonstration.
func RunChaosSeedAblated(seed int64, mutate func(*core.Kernel)) ChaosResult {
	fp, r := chaosOnce(nil, seed, mutate)
	r.Fingerprint = fp
	r.Replay = fp
	return r
}

// RunContext is a warm, reusable chaos-run stack: one engine (with its
// coroutine-goroutine pool), trace log, kernel, pager, auditor,
// fingerprinter, latency deriver, and injector, all constructed once and
// recycled through the Reset seam for run after run. A fleet worker owns one
// RunContext and drives thousands of seeds through it with no steady-state
// construction: every layer returns to its birth state in place, and the
// long-lived trace observers and metric registrations carry over.
//
// Equivalence contract: a warm run's fingerprint is byte-identical to a
// cold chaosOnce run of the same seed — RunSeed replicates the cold path's
// construction order exactly, so every event sequence number, trace record,
// and counter matches (pinned by TestWarmContextMatchesCold and the golden
// warm-engine tests).
type RunContext struct {
	pool *sim.Pool
	eng  sim.Engine
	rng  *rand.Rand
	tr   *trace.Log
	k    *core.Kernel
	vm   *core.VM
	aud  *chaos.Auditor
	fpr  *chaos.Fingerprinter
	lat  *trace.Latencies
	inj  *chaos.Injector

	// Scenario overrides (set between runs; zero keeps the canonical pinned
	// shape). CPUs fixes the machine size instead of drawing 2..5 from the
	// seed RNG; Storm and Drain resize the phases in virtual milliseconds.
	CPUs  int
	Storm int
	Drain int

	// mark is the metric registry's high-water cursor after construction;
	// runOnce truncates back to it so per-run registrations (per-space
	// uthread counters) never pile up dedup-suffixed duplicates across
	// recycles — a cold engine sees each name exactly once, so a warm one
	// must too or the fingerprint's metric fold diverges.
	mark int
}

// NewRunContext builds a warm run stack. The construction order mirrors the
// registration order of a cold run (engine, machine+kernel, auditor,
// fingerprinter, latency deriver, injector), so the metric names — and with
// them the fingerprint's final fold — are identical to a cold engine's.
// The context honors EngineLPs at construction, like every cold run.
func NewRunContext() *RunContext { return NewRunContextLPs(EngineLPs) }

// NewRunContextLPs is NewRunContext with an explicit LP selection — the seam
// the scenario runner threads a spec-bound engine through, so concurrent
// programs never mutate the EngineLPs global.
func NewRunContextLPs(lps int) *RunContext {
	pool := sim.NewPool()
	opts := append([]sim.Option{sim.WithLabel("chaos warm context")}, parEngineOptsN(lps)...)
	rc := &RunContext{
		pool:  pool,
		eng:   pool.NewEngine(opts...),
		rng:   rand.New(rand.NewSource(0)),
		tr:    trace.NewStream(), // observer-only, like the cold path

		Storm: chaosStormSteps,
		Drain: chaosDrainSteps,
	}
	rc.k = core.New(rc.eng, core.Config{CPUs: 2, Trace: rc.tr})
	rc.vm = rc.k.NewVM()
	rc.aud = chaos.Attach(rc.k, rc.tr, 250*sim.Microsecond)
	rc.fpr = chaos.NewFingerprinter(rc.tr)
	rc.lat = trace.NewLatencies(rc.tr, rc.eng.Metrics())
	rc.inj = chaos.New(rc.eng, chaos.Plan{})
	rc.mark = rc.eng.Metrics().Mark()
	return rc
}

// Close tears the warm stack down: the engine closes (unwinding any
// coroutines left from the last run) and the goroutine pool retires.
func (rc *RunContext) Close() {
	if rc == nil {
		return
	}
	rc.eng.Close()
	rc.pool.Close()
}

// runOnce executes one audited, fault-injected mixed workload for seed on
// the warm stack. It is chaosOnceOn with construction replaced by Reset,
// statement for statement — every call that schedules an event or draws
// from the seed RNG happens in the cold order, so the timeline is
// byte-identical. The engine stays open; the fingerprint is finalized
// directly (a cold run folds it in a close hook at the same point: after
// the final audit, before any coroutine is unwound).
func (rc *RunContext) runOnce(seed int64, mutate func(*core.Kernel)) (chaos.Fingerprint, ChaosResult) {
	rc.eng.Reset(sim.WithLabel(chaosLabel(seed)))
	rc.eng.Metrics().Truncate(rc.mark)
	rc.tr.Reset()
	rc.rng.Seed(seed)
	cpus := rc.CPUs
	if cpus == 0 {
		cpus = 2 + rc.rng.Intn(4) // the canonical seeded draw
	}
	rc.k.Reset(core.Config{CPUs: cpus, Trace: rc.tr})
	if mutate != nil {
		mutate(rc.k)
	}
	StartDaemonSA(rc.k)
	rc.vm.Reset()
	rc.aud.Reset()
	rc.fpr.Reset()
	rc.lat.Reset()
	rc.inj.Reset(chaos.NewPlan(seed))
	rc.inj.InstrumentSA(rc.k)
	rc.inj.InstrumentVM(rc.vm)
	wl := BuildMixedWorkload(rc.k, rc.vm, rc.rng)

	eng, aud := rc.eng, rc.aud
	for step := 0; step < rc.Storm && !wl.Done() && len(aud.Violations) == 0; step++ {
		eng.RunFor(sim.Millisecond)
	}
	rc.inj.Stop()
	for step := 0; step < rc.Drain && !wl.Done() && len(aud.Violations) == 0; step++ {
		eng.RunFor(sim.Millisecond)
	}
	aud.Check()
	r := ChaosResult{
		Seed:     seed,
		Finished: wl.Finished(),
		Total:    wl.Total,
		End:      eng.Now(),
		Preempts: rc.inj.Stats.Preempts,
	}
	// The auditor is recycled next run, so failures must be copied out —
	// a cold run hands over its one-shot auditor's slice instead.
	if len(aud.Violations) > 0 {
		r.Violations = append([]chaos.Violation(nil), aud.Violations...)
	}
	return rc.fpr.Finish(eng), r
}

// RunSeed runs one seed twice on the warm stack — run and replay, exactly
// like RunChaosSeed — and folds both fingerprints into the result.
func (rc *RunContext) RunSeed(seed int64) ChaosResult {
	rep := rc.RunSeedReport(seed)
	return rep.ChaosResult
}

// SeedReport is one seed's sweep contribution: the verdict plus the first
// run's latency histograms, copied out of the warm context so a streaming
// aggregator can merge them after the context has moved on to other seeds.
type SeedReport struct {
	ChaosResult
	UpcallDispatch stats.Histogram
	ReadyWait      stats.Histogram
	BlockUnblock   stats.Histogram
}

// RunSeedReport is RunSeed capturing the first (canonical) run's latency
// histograms alongside the verdict.
func (rc *RunContext) RunSeedReport(seed int64) SeedReport {
	return rc.RunSeedReportReplay(seed, true)
}

// RunSeedReportReplay is RunSeedReport with the replay-divergence check
// optional: with replay false the seed runs once and its fingerprint is
// copied into Replay, so OK() judges only invariants and completion. The
// fleet fingerprint and the histograms come from the first run either way,
// so sampling replay (faults.replay) moves no aggregate — only how many
// seeds would catch a nondeterminism leak.
func (rc *RunContext) RunSeedReportReplay(seed int64, replay bool) SeedReport {
	fpA, r := rc.runOnce(seed, nil)
	rep := SeedReport{
		UpcallDispatch: rc.lat.UpcallDispatch,
		ReadyWait:      rc.lat.ReadyWait,
		BlockUnblock:   rc.lat.BlockUnblock,
	}
	r.Fingerprint = fpA
	r.Replay = fpA
	if replay {
		r.Replay, _ = rc.runOnce(seed, nil)
	}
	rep.ChaosResult = r
	return rep
}

// RunSeedReportMutated is RunSeedReport against a mutated (deliberately
// broken) kernel: a single run, no replay check — the fingerprint is copied
// into Replay so OK() judges only invariants and completion. The scenario
// layer's ablated chaos sweeps (faults.ablate) run through this.
func (rc *RunContext) RunSeedReportMutated(seed int64, mutate func(*core.Kernel)) SeedReport {
	fp, r := rc.runOnce(seed, mutate)
	r.Fingerprint = fp
	r.Replay = fp
	return SeedReport{
		ChaosResult:    r,
		UpcallDispatch: rc.lat.UpcallDispatch,
		ReadyWait:      rc.lat.ReadyWait,
		BlockUnblock:   rc.lat.BlockUnblock,
	}
}

// maxFailedSeeds bounds the failed-seed list a sweep aggregate retains (and
// checkpoints); the failure count is exact regardless.
const maxFailedSeeds = 64

// SweepAggregate is the streaming sweep state: everything the sweep reports
// is folded here in seed order with bounded memory — a rolling fleet
// fingerprint over the per-seed fingerprints, exact failure attribution by
// seed (bounded list), and merged cross-run latency histograms. It is also
// the checkpoint payload.
type SweepAggregate struct {
	First int64 `json:"first"`
	// Want is the planned sweep width (seed count) of the writing run —
	// for a shard, the shard's own subrange width. MergeShards requires
	// Done == Want on every input: a shard checkpoint mid-sweep is not a
	// mergeable result. Checkpoints from before this field decode as 0 and
	// resume fine; they only cannot merge.
	Want   int64   `json:"want,omitempty"`
	Done   int64   `json:"done"`          // seeds completed: first..first+Done-1
	Failed int64   `json:"failed"`        // exact failure count
	Seeds  []int64 `json:"failed_seeds"`  // first maxFailedSeeds failing seeds
	Fleet  uint64  `json:"fleet_fnv"`     // rolling FNV-1a over (seed, fingerprint)
	Runs   uint64  `json:"threads_total"` // workload threads across first runs
	// Merged latency distributions from each seed's first run.
	UpcallDispatch stats.Histogram `json:"upcall_dispatch"`
	ReadyWait      stats.Histogram `json:"ready_wait"`
	BlockUnblock   stats.Histogram `json:"block_unblock"`
}

// fold streams one seed's report into the aggregate. Reports must arrive in
// seed order (fleet.Run's emit contract) so the rolling fingerprint is
// well-defined.
func (ag *SweepAggregate) fold(rep *SeedReport) {
	ag.Done++
	if !rep.OK() {
		ag.Failed++
		if len(ag.Seeds) < maxFailedSeeds {
			ag.Seeds = append(ag.Seeds, rep.Seed)
		}
	}
	ag.Fleet = fnvFold(ag.Fleet, uint64(rep.Seed), uint64(rep.Fingerprint))
	ag.Runs += uint64(rep.Total)
	ag.UpcallDispatch.Merge(&rep.UpcallDispatch)
	ag.ReadyWait.Merge(&rep.ReadyWait)
	ag.BlockUnblock.Merge(&rep.BlockUnblock)
}
