package exp

import (
	"bytes"
	"testing"
)

// The whole repro rests on the simulation being a pure function of its
// inputs: every table and figure must render byte-identically on every run
// in the same process. This guards the engine's event ordering (and any
// future hot-path refactor of it) end-to-end through all four scheduling
// layers — a pooled event record reused out of order, a heap tie broken
// differently, or a map-iteration dependence anywhere would show up here.
func TestExperimentOutputsDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		RenderMicro(&buf, "Table 1", Table1())
		RenderFigure1(&buf, Figure1())
		return buf.Bytes()
	}
	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		t.Fatalf("experiment output differs between two in-process runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
