package exp

import (
	"fmt"
	"io"

	"schedact/internal/apps/micro"
	"schedact/internal/machine"
	"schedact/internal/sim"
)

// MicroRow is one row of Table 1 or Table 4: measured and published thread
// operation latencies in microseconds.
type MicroRow struct {
	System          string
	NullForkUs      float64
	SignalWaitUs    float64
	PaperNullFork   float64
	PaperSignalWait float64
}

// Table1 reproduces Table 1: thread operation latencies for FastThreads (on
// Topaz kernel threads), Topaz kernel threads, and Ultrix processes.
func Table1() []MicroRow {
	rows := []struct {
		sys      micro.System
		name     string
		pNF, pSW float64
	}{
		{micro.FastThreadsKT, "FastThreads", 34, 37},
		{micro.TopazThreads, "Topaz threads", 948, 441},
		{micro.UltrixProcesses, "Ultrix processes", 11300, 1840},
	}
	var out []MicroRow
	for _, r := range rows {
		m := micro.Run(r.sys, nil)
		out = append(out, MicroRow{
			System:          r.name,
			NullForkUs:      sim.DurUs(m.NullFork),
			SignalWaitUs:    sim.DurUs(m.SignalWait),
			PaperNullFork:   r.pNF,
			PaperSignalWait: r.pSW,
		})
	}
	return out
}

// Table4 reproduces Table 4: Table 1 plus FastThreads on scheduler
// activations.
func Table4() []MicroRow {
	sa := micro.Run(micro.FastThreadsSA, nil)
	out := []MicroRow{{
		System:          "FastThreads on Topaz threads",
		PaperNullFork:   34,
		PaperSignalWait: 37,
	}, {
		System:          "FastThreads on Scheduler Activations",
		NullForkUs:      sim.DurUs(sa.NullFork),
		SignalWaitUs:    sim.DurUs(sa.SignalWait),
		PaperNullFork:   37,
		PaperSignalWait: 42,
	}}
	ft := micro.Run(micro.FastThreadsKT, nil)
	out[0].NullForkUs = sim.DurUs(ft.NullFork)
	out[0].SignalWaitUs = sim.DurUs(ft.SignalWait)
	t1 := Table1()
	out = append(out, t1[1], t1[2])
	return out
}

// CSAblationResult is the §5.1 critical-section marking ablation.
type CSAblationResult struct {
	ZeroOverhead MicroRow // the duplicated-code technique (the default)
	ExplicitFlag MicroRow // explicit set/clear/check on every lock
}

// CSAblation reproduces the §5.1 measurement: removing the zero-overhead
// critical-section marking yields Null Fork 49µs and Signal-Wait 48µs.
func CSAblation() CSAblationResult {
	sa := micro.Run(micro.FastThreadsSA, nil)
	ab := micro.RunAblation(nil)
	return CSAblationResult{
		ZeroOverhead: MicroRow{
			System:          "SA FastThreads (zero-overhead marking)",
			NullForkUs:      sim.DurUs(sa.NullFork),
			SignalWaitUs:    sim.DurUs(sa.SignalWait),
			PaperNullFork:   37,
			PaperSignalWait: 42,
		},
		ExplicitFlag: MicroRow{
			System:          "SA FastThreads (explicit flags)",
			NullForkUs:      sim.DurUs(ab.NullFork),
			SignalWaitUs:    sim.DurUs(ab.SignalWait),
			PaperNullFork:   49,
			PaperSignalWait: 48,
		},
	}
}

// UpcallResult is the §5.2 upcall-performance measurement.
type UpcallResult struct {
	PrototypeMs   float64 // signal-wait through the kernel, prototype costs
	TunedUs       float64 // same with the tuned (assembler-class) upcall path
	TopazUs       float64 // kernel-thread signal-wait for comparison
	PaperMs       float64 // the paper's prototype number
	PaperFactor   float64 // "a factor of five worse than Topaz threads"
	MeasuredRatio float64
}

// UpcallLatency reproduces §5.2: the prototype's kernel-mediated signal-wait
// is 2.4ms, a factor of five worse than Topaz kernel threads; a tuned
// implementation would be commensurate with Topaz.
func UpcallLatency() UpcallResult {
	proto := micro.UpcallSignalWait(machine.DefaultCosts())
	tuned := micro.UpcallSignalWait(machine.TunedCosts())
	topaz := micro.Run(micro.TopazThreads, nil).SignalWait
	return UpcallResult{
		PrototypeMs:   sim.DurMs(proto),
		TunedUs:       sim.DurUs(tuned),
		TopazUs:       sim.DurUs(topaz),
		PaperMs:       2.4,
		PaperFactor:   5,
		MeasuredRatio: float64(proto) / float64(topaz),
	}
}

// RenderMicro writes a Table 1/4 style table.
func RenderMicro(w io.Writer, title string, rows []MicroRow) {
	fprintf(w, "%s\n", title)
	fprintf(w, "%-42s %14s %14s %12s %12s\n", "Operation/System", "NullFork(µs)", "SigWait(µs)", "paper NF", "paper SW")
	for _, r := range rows {
		fprintf(w, "%-42s %14.1f %14.1f %12.1f %12.1f\n",
			r.System, r.NullForkUs, r.SignalWaitUs, r.PaperNullFork, r.PaperSignalWait)
	}
	fmt.Fprintln(w)
}

// RenderUpcall writes the §5.2 result.
func RenderUpcall(w io.Writer, r UpcallResult) {
	fprintf(w, "Upcall performance (§5.2): signal-wait through the kernel\n")
	fprintf(w, "  prototype: %.2f ms   (paper: %.1f ms)\n", r.PrototypeMs, r.PaperMs)
	fprintf(w, "  vs Topaz threads (%.0f µs): %.1fx   (paper: ~%.0fx)\n", r.TopazUs, r.MeasuredRatio, r.PaperFactor)
	fprintf(w, "  tuned upcall path: %.0f µs (commensurate with Topaz, as §5.2 projects)\n\n", r.TunedUs)
}

// BreakEvenResult is the §5.2 break-even analysis: how often can an
// application block in the kernel before user-level threads on scheduler
// activations stop beating kernel threads?
type BreakEvenResult struct {
	UserOpUs   float64 // avg SA user-level thread operation
	KernelOpUs float64 // avg Topaz kernel-thread operation
	UpcallOpUs float64 // SA operation requiring kernel intervention (prototype)
	TunedOpUs  float64 // same under the tuned profile
	// KernelOpFraction is f*: with more than this fraction of operations
	// needing the kernel, prototype-cost activations lose to kernel
	// threads. (1-f*)/f* is the user:kernel operation ratio.
	KernelOpFraction float64
	// TunedAlwaysWins reports that with tuned upcalls the blocking path is
	// itself cheaper than a kernel-thread operation, so there is no
	// break-even point at all — activations win at any mix.
	TunedAlwaysWins bool
}

// BreakEven computes the §5.2 break-even point from the measured
// latencies: solve (1-f)·user + f·upcall = kernelthread for f.
func BreakEven() BreakEvenResult {
	sa := micro.Run(micro.FastThreadsSA, nil)
	topaz := micro.Run(micro.TopazThreads, nil)
	var r BreakEvenResult
	r.UserOpUs = (sim.DurUs(sa.NullFork) + sim.DurUs(sa.SignalWait)) / 2
	r.KernelOpUs = (sim.DurUs(topaz.NullFork) + sim.DurUs(topaz.SignalWait)) / 2
	r.UpcallOpUs = sim.DurUs(micro.UpcallSignalWait(machine.DefaultCosts()))
	r.TunedOpUs = sim.DurUs(micro.UpcallSignalWait(machine.TunedCosts()))
	r.KernelOpFraction = (r.KernelOpUs - r.UserOpUs) / (r.UpcallOpUs - r.UserOpUs)
	r.TunedAlwaysWins = r.TunedOpUs <= r.KernelOpUs
	return r
}

// RenderBreakEven writes the §5.2 break-even analysis.
func RenderBreakEven(w io.Writer, r BreakEvenResult) {
	fprintf(w, "Break-even analysis (§5.2)\n")
	fprintf(w, "  user-level SA operation:        %8.1f µs\n", r.UserOpUs)
	fprintf(w, "  kernel-thread operation:        %8.1f µs\n", r.KernelOpUs)
	fprintf(w, "  SA operation through kernel:    %8.1f µs (prototype), %.0f µs (tuned)\n", r.UpcallOpUs, r.TunedOpUs)
	fprintf(w, "  prototype break-even: activations win while < %.0f%% of operations need the kernel (~1 in %.1f)\n",
		r.KernelOpFraction*100, 1/r.KernelOpFraction)
	if r.TunedAlwaysWins {
		fprintf(w, "  tuned: the kernel path itself beats kernel threads — activations win at any mix\n")
	}
	fprintf(w, "\n")
}
