package exp

import (
	"encoding/csv"
	"io"
	"strconv"

	"schedact/internal/scenario"
	"schedact/internal/sim"
)

// Point is one measurement in a figure series.
type Point struct {
	X float64 // processors (Figure 1) or % memory available (Figure 2)
	Y float64 // speedup (Figure 1) or execution time in seconds (Figure 2)
}

// Series is one system's curve.
type Series struct {
	System SystemName
	Points []Point
}

// Figure1Result holds the speedup-vs-processors experiment.
type Figure1Result struct {
	Sequential sim.Duration
	Series     []Series
}

// Figure1 reproduces Figure 1: N-body speedup versus number of processors
// at 100% memory, uniprogrammed (plus the kernel daemons), for Topaz
// threads, original FastThreads, and modified FastThreads on scheduler
// activations. Speedup is relative to the sequential implementation. The
// battery is the compiled scenario.Fig1 spec: 18 independent runs fanned
// across the fleet, each on a private engine, series assembled in job order.
func Figure1() Figure1Result {
	pr := runCanonical(scenario.Fig1())
	return Figure1Result{
		Sequential: pr.Baseline,
		Series: assembleSeries(pr,
			func(j scenario.Job) float64 { return float64(j.Procs) },
			func(_ scenario.Job, o AppOutcome) float64 { return float64(pr.Baseline) / float64(o.Els[0]) }),
	}
}

// Figure2Result holds the execution-time-vs-memory experiment.
type Figure2Result struct {
	Series []Series // Y: execution time, seconds; X: % memory available
}

// MemoryPoints is the Figure 2 x-axis: % of memory available.
var MemoryPoints = []float64{100, 90, 80, 70, 60, 50, 40}

// Figure2 reproduces Figure 2: N-body execution time versus the amount of
// available memory on 6 processors. Cache misses block in the kernel for
// 50ms; with original FastThreads the blocked virtual processor is lost to
// the application. The battery is the compiled scenario.Fig2 spec.
func Figure2() Figure2Result {
	pr := runCanonical(scenario.Fig2())
	return Figure2Result{Series: assembleSeries(pr,
		func(j scenario.Job) float64 { return j.MemPct },
		func(_ scenario.Job, o AppOutcome) float64 { return o.Els[0].Seconds() })}
}

// RenderFigure1 writes the Figure 1 series as a table.
func RenderFigure1(w io.Writer, r Figure1Result) {
	fprintf(w, "Figure 1: speedup vs number of processors (100%% memory, uniprogrammed)\n")
	fprintf(w, "sequential time: %.2fs\n", sim.Duration(r.Sequential).Seconds())
	fprintf(w, "%-6s", "procs")
	for _, s := range r.Series {
		fprintf(w, " %18s", s.System)
	}
	fprintf(w, "\n")
	for i := 0; i < len(r.Series[0].Points); i++ {
		fprintf(w, "%-6.0f", r.Series[0].Points[i].X)
		for _, s := range r.Series {
			fprintf(w, " %18.2f", s.Points[i].Y)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\n")
}

// RenderFigure2 writes the Figure 2 series as a table.
func RenderFigure2(w io.Writer, r Figure2Result) {
	fprintf(w, "Figure 2: execution time (s) vs %% available memory (6 processors)\n")
	fprintf(w, "%-6s", "%mem")
	for _, s := range r.Series {
		fprintf(w, " %18s", s.System)
	}
	fprintf(w, "\n")
	for i := 0; i < len(r.Series[0].Points); i++ {
		fprintf(w, "%-6.0f", r.Series[0].Points[i].X)
		for _, s := range r.Series {
			fprintf(w, " %18.2f", s.Points[i].Y)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\n")
}

// WriteCSV emits series as CSV (one x column, one column per system) for
// plotting Figure 1/2 style data outside the harness.
func WriteCSV(w io.Writer, xLabel string, series []Series) error {
	cw := csv.NewWriter(w)
	header := []string{xLabel}
	for _, s := range series {
		header = append(header, string(s.System))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(series) == 0 {
		cw.Flush()
		return cw.Error()
	}
	for i := range series[0].Points {
		row := []string{strconv.FormatFloat(series[0].Points[i].X, 'g', -1, 64)}
		for _, s := range series {
			row = append(row, strconv.FormatFloat(s.Points[i].Y, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
