package exp

import (
	"encoding/csv"
	"io"
	"strconv"

	"schedact/internal/apps/nbody"
	"schedact/internal/fleet"
	"schedact/internal/sim"
)

// Point is one measurement in a figure series.
type Point struct {
	X float64 // processors (Figure 1) or % memory available (Figure 2)
	Y float64 // speedup (Figure 1) or execution time in seconds (Figure 2)
}

// Series is one system's curve.
type Series struct {
	System SystemName
	Points []Point
}

// Figure1Result holds the speedup-vs-processors experiment.
type Figure1Result struct {
	Sequential sim.Duration
	Series     []Series
}

// Figure1 reproduces Figure 1: N-body speedup versus number of processors
// at 100% memory, uniprogrammed (plus the kernel daemons), for Topaz
// threads, original FastThreads, and modified FastThreads on scheduler
// activations. Speedup is relative to the sequential implementation.
func Figure1() Figure1Result {
	cfg := nbody.DefaultConfig()
	seq := seqTime(cfg)
	res := Figure1Result{Sequential: seq}
	// 18 independent runs (3 systems × 6 processor counts), fanned across
	// the pool; each owns a private engine, so the measured times — and the
	// series assembled from them in job order — match a sequential sweep
	// exactly. Runs on the same worker share a warm coroutine-goroutine pool.
	pools := newWorkerPools(Workers, len(Systems)*MachineCPUs)
	defer pools.Close()
	els := fleet.Map(Workers, len(Systems)*MachineCPUs, func(job, worker int) sim.Duration {
		return runOne(pools.get(worker), Systems[job/MachineCPUs], cfg, job%MachineCPUs+1)
	})
	for si, sys := range Systems {
		s := Series{System: sys}
		for p := 1; p <= MachineCPUs; p++ {
			el := els[si*MachineCPUs+p-1]
			s.Points = append(s.Points, Point{X: float64(p), Y: float64(seq) / float64(el)})
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// Figure2Result holds the execution-time-vs-memory experiment.
type Figure2Result struct {
	Series []Series // Y: execution time, seconds; X: % memory available
}

// MemoryPoints is the Figure 2 x-axis: % of memory available.
var MemoryPoints = []float64{100, 90, 80, 70, 60, 50, 40}

// Figure2 reproduces Figure 2: N-body execution time versus the amount of
// available memory on 6 processors. Cache misses block in the kernel for
// 50ms; with original FastThreads the blocked virtual processor is lost to
// the application.
func Figure2() Figure2Result {
	var res Figure2Result
	nm := len(MemoryPoints)
	pools := newWorkerPools(Workers, len(Systems)*nm)
	defer pools.Close()
	els := fleet.Map(Workers, len(Systems)*nm, func(job, worker int) sim.Duration {
		cfg := nbody.DefaultConfig()
		cfg.MemFraction = MemoryPoints[job%nm] / 100
		return runOne(pools.get(worker), Systems[job/nm], cfg, MachineCPUs)
	})
	for si, sys := range Systems {
		s := Series{System: sys}
		for mi, pct := range MemoryPoints {
			s.Points = append(s.Points, Point{X: pct, Y: sim.Duration(els[si*nm+mi]).Seconds()})
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// RenderFigure1 writes the Figure 1 series as a table.
func RenderFigure1(w io.Writer, r Figure1Result) {
	fprintf(w, "Figure 1: speedup vs number of processors (100%% memory, uniprogrammed)\n")
	fprintf(w, "sequential time: %.2fs\n", sim.Duration(r.Sequential).Seconds())
	fprintf(w, "%-6s", "procs")
	for _, s := range r.Series {
		fprintf(w, " %18s", s.System)
	}
	fprintf(w, "\n")
	for i := 0; i < len(r.Series[0].Points); i++ {
		fprintf(w, "%-6.0f", r.Series[0].Points[i].X)
		for _, s := range r.Series {
			fprintf(w, " %18.2f", s.Points[i].Y)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\n")
}

// RenderFigure2 writes the Figure 2 series as a table.
func RenderFigure2(w io.Writer, r Figure2Result) {
	fprintf(w, "Figure 2: execution time (s) vs %% available memory (6 processors)\n")
	fprintf(w, "%-6s", "%mem")
	for _, s := range r.Series {
		fprintf(w, " %18s", s.System)
	}
	fprintf(w, "\n")
	for i := 0; i < len(r.Series[0].Points); i++ {
		fprintf(w, "%-6.0f", r.Series[0].Points[i].X)
		for _, s := range r.Series {
			fprintf(w, " %18.2f", s.Points[i].Y)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\n")
}

// WriteCSV emits series as CSV (one x column, one column per system) for
// plotting Figure 1/2 style data outside the harness.
func WriteCSV(w io.Writer, xLabel string, series []Series) error {
	cw := csv.NewWriter(w)
	header := []string{xLabel}
	for _, s := range series {
		header = append(header, string(s.System))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(series) == 0 {
		cw.Flush()
		return cw.Error()
	}
	for i := range series[0].Points {
		row := []string{strconv.FormatFloat(series[0].Points[i].X, 'g', -1, 64)}
		for _, s := range series {
			row = append(row, strconv.FormatFloat(s.Points[i].Y, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
