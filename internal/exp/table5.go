package exp

import (
	"io"

	"schedact/internal/scenario"
)

// Table5Row is one cell of Table 5: the speedup of the N-body application
// when two copies run multiprogrammed on 6 processors at 100% memory
// (maximum possible: 3.0).
type Table5Row struct {
	System  SystemName
	Speedup float64
	Paper   float64
}

var table5Paper = map[SystemName]float64{
	SysTopaz:  1.29,
	SysOrigFT: 1.26,
	SysNewFT:  2.45,
}

// Table5 reproduces Table 5: two copies of the N-body application run
// concurrently; execution times are averaged and speedup computed against
// the sequential implementation. The battery is the compiled
// scenario.Table5 spec — one multiprogrammed cell per system.
func Table5() []Table5Row {
	pr := runCanonical(scenario.Table5())
	var rows []Table5Row
	for i, j := range pr.Prog.Jobs {
		sys := systemOf(j.System)
		rows = append(rows, Table5Row{
			System:  sys,
			Speedup: float64(pr.Baseline) / float64(avgDuration(pr.Outcomes[i].Els)),
			Paper:   table5Paper[sys],
		})
	}
	return rows
}

// RenderTable5 writes Table 5.
func RenderTable5(w io.Writer, rows []Table5Row) {
	fprintf(w, "Table 5: speedup with multiprogramming level 2, 6 processors, 100%% memory (max 3.0)\n")
	fprintf(w, "%-20s %10s %10s\n", "System", "speedup", "paper")
	for _, r := range rows {
		fprintf(w, "%-20s %10.2f %10.2f\n", r.System, r.Speedup, r.Paper)
	}
	fprintf(w, "\n")
}
