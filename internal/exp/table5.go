package exp

import (
	"fmt"
	"io"

	"schedact/internal/apps/nbody"
	"schedact/internal/core"
	"schedact/internal/fleet"
	"schedact/internal/kernel"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

// Table5Row is one cell of Table 5: the speedup of the N-body application
// when two copies run multiprogrammed on 6 processors at 100% memory
// (maximum possible: 3.0).
type Table5Row struct {
	System  SystemName
	Speedup float64
	Paper   float64
}

var table5Paper = map[SystemName]float64{
	SysTopaz:  1.29,
	SysOrigFT: 1.26,
	SysNewFT:  2.45,
}

// Table5 reproduces Table 5: two copies of the N-body application run
// concurrently; execution times are averaged and speedup computed against
// the sequential implementation.
func Table5() []Table5Row {
	cfg := nbody.DefaultConfig()
	seq := seqTime(cfg)
	avgs := fleet.Map(Workers, len(Systems), func(job, _ int) sim.Duration {
		return runPair(Systems[job], cfg)
	})
	var rows []Table5Row
	for i, sys := range Systems {
		rows = append(rows, Table5Row{
			System:  sys,
			Speedup: float64(seq) / float64(avgs[i]),
			Paper:   table5Paper[sys],
		})
	}
	return rows
}

// runPair runs two copies of the application concurrently on one machine
// and returns the average execution time.
func runPair(sys SystemName, cfg nbody.Config) sim.Duration {
	eng := sim.NewEngine(engOpts(fmt.Sprintf("table5 %s x2", sys))...)
	defer eng.Close()
	var runs [2]*nbody.Run
	switch sys {
	case SysTopaz:
		k := kernel.New(eng, kernel.Config{CPUs: MachineCPUs})
		StartDaemonNative(k)
		for i := range runs {
			sp := k.NewSpace(fmt.Sprintf("nbody%d", i), false)
			sp.CPUCap = MachineCPUs
			runs[i] = nbody.Launch(nbody.KThreadSystem{K: k, SP: sp}, cfg)
		}
	case SysOrigFT:
		k := kernel.New(eng, kernel.Config{CPUs: MachineCPUs})
		StartDaemonNative(k)
		for i := range runs {
			s := uthread.OnKernelThreads(k, k.NewSpace(fmt.Sprintf("nbody%d", i), false), MachineCPUs, uthread.Options{})
			runs[i] = nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
			s.Start()
		}
	case SysNewFT:
		k := core.New(eng, core.Config{CPUs: MachineCPUs})
		StartDaemonSA(k)
		for i := range runs {
			s := uthread.OnActivations(k, fmt.Sprintf("nbody%d", i), 0, MachineCPUs, uthread.Options{})
			runs[i] = nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
			s.Start()
		}
	}
	eng.RunUntil(RunLimit)
	var sum sim.Duration
	for i, r := range runs {
		if !r.Done {
			panic(fmt.Sprintf("exp: table5 %s copy %d did not finish", sys, i))
		}
		sum += r.Elapsed()
	}
	return sum / 2
}

// RenderTable5 writes Table 5.
func RenderTable5(w io.Writer, rows []Table5Row) {
	fprintf(w, "Table 5: speedup with multiprogramming level 2, 6 processors, 100%% memory (max 3.0)\n")
	fprintf(w, "%-20s %10s %10s\n", "System", "speedup", "paper")
	for _, r := range rows {
		fprintf(w, "%-20s %10.2f %10.2f\n", r.System, r.Speedup, r.Paper)
	}
	fprintf(w, "\n")
}
