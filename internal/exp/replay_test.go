package exp

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// TestReplayEngineMatchesReference pins the record/replay engine against the
// reference on real chaos workloads: a seed's run is recorded on the
// reference engine, re-executed on a replay engine driven only by the
// recorded tape, and the two fingerprints — which hash every trace record,
// the final clock, and the full non-host metrics snapshot — must match
// byte-for-byte. For the pinned seeds the reference fingerprint is also
// checked against the committed table, so this test cannot pass by both
// engines drifting together.
//
// By default a handful of seeds run (CI's chaos job sweeps all 64 via
// SCHEDACT_REPLAY_SEEDS=64).
func TestReplayEngineMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are slow in -short mode")
	}
	n := int64(4)
	if env := os.Getenv("SCHEDACT_REPLAY_SEEDS"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil || v < 1 {
			t.Fatalf("bad SCHEDACT_REPLAY_SEEDS=%q: %v", env, err)
		}
		n = v
	}
	for seed := int64(1); seed <= n; seed++ {
		ref, replay := ReplayChaosSeed(seed)
		if ref != replay {
			t.Errorf("seed %d: replay fingerprint %v != reference %v", seed, replay, ref)
		}
		if want, pinned := pinnedFingerprints[seed]; pinned {
			if got := fmt.Sprint(ref); got != want {
				t.Errorf("seed %d: reference fingerprint %s != pinned %s", seed, got, want)
			}
		}
	}
}
