package exp

import (
	"io"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"schedact/internal/scenario"
)

// TestScenarioChaosMatchesPinnedTable diffs the scenario pipeline against
// the pinned fingerprint table: the canonical chaos spec, compiled and run
// through RunSpec, must produce a rolling fleet fingerprint equal to
// folding TestFingerprintsPinned's per-seed table in seed order. This is
// the `make scenarios` gate's oracle — a spec-compiler change that altered
// job ordering, seed derivation, or the warm context's shape lands here
// even if every battery test were rewritten on top of the same bug.
func TestScenarioChaosMatchesPinnedTable(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are slow in -short mode")
	}
	n := int64(len(pinnedFingerprints))
	var want uint64
	for seed := int64(1); seed <= n; seed++ {
		fp, err := strconv.ParseUint(pinnedFingerprints[seed], 16, 64)
		if err != nil {
			t.Fatalf("pinned fingerprint for seed %d is not hex: %v", seed, err)
		}
		want = fnvFold(want, uint64(seed), fp)
	}
	pr, err := RunSpec(io.Discard, scenario.ChaosSpec(1, n), RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Sweep == nil || pr.Sweep.Failed != 0 || pr.Sweep.Done != n {
		t.Fatalf("canonical chaos spec: sweep %+v", pr.Sweep)
	}
	if pr.Fingerprint != want {
		t.Errorf("compiled chaos spec fingerprint %016x != pinned-table fold %016x — "+
			"the scenario pipeline drifted from the pinned per-seed fingerprints", pr.Fingerprint, want)
	}
}

// miniMixSpec is a seconds-cheap chaos spec (one seed, 50ms storm) for
// checkpoint-plumbing tests; the verdict does not matter, only that a run
// completes and writes its checkpoint.
func miniMixSpec(name string) scenario.Spec {
	return scenario.Spec{
		Name:     name,
		Workload: scenario.Workload{Kind: scenario.KindMix},
		Faults:   &scenario.Faults{FirstSeed: 1, Seeds: 1, StormMs: 50, DrainMs: 50},
	}
}

// TestScenarioCheckpointRejectsForeignSpec pins the resume-safety contract:
// a run pointed at a checkpoint written by a *different* spec must refuse to
// run rather than resume (or silently overwrite) someone else's progress.
func TestScenarioCheckpointRejectsForeignSpec(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "scenario.json")
	if _, err := RunSpec(io.Discard, miniMixSpec("mini-a"), RunOptions{Workers: 1, Checkpoint: ck}); err != nil {
		t.Fatalf("seeding the checkpoint: %v", err)
	}
	_, err := RunSpec(io.Discard, miniMixSpec("mini-b"), RunOptions{Workers: 1, Checkpoint: ck})
	if err == nil {
		t.Fatal("a foreign spec's checkpoint was accepted")
	}
	if !strings.Contains(err.Error(), "different spec") || !strings.Contains(err.Error(), "mini-a") {
		t.Fatalf("rejection should name the conflict and the writing spec, got: %v", err)
	}
	// An application spec against the same file is rejected identically.
	app := miniAppSpec("mini-c")
	if _, err := RunSpec(io.Discard, app, RunOptions{Workers: 1, Checkpoint: ck}); err == nil ||
		!strings.Contains(err.Error(), "different spec") {
		t.Fatalf("app program accepted a chaos spec's checkpoint: %v", err)
	}
}

// miniAppSpec is a fast four-job N-body scenario (tiny problem shape) for
// app-program checkpoint tests.
func miniAppSpec(name string) scenario.Spec {
	return scenario.Spec{
		Name:     name,
		Workload: scenario.Workload{Kind: scenario.KindNbody, Nbody: &scenario.NbodyOverrides{N: 16, Steps: 2}},
		Machine:  scenario.Machine{CPUs: 2},
		Binding: scenario.Binding{
			Systems: []string{scenario.SysOrigFT, scenario.SysNewFT},
			Procs:   []int{1, 2},
		},
	}
}

// TestScenarioAppCheckpointResume pins checkpoint/resume for application
// programs (the satellite generalizing the chaos sweep's resume to any
// compiled sweep): a finished run's checkpoint makes a re-invocation run
// zero jobs yet report the identical program fingerprint and outcomes.
func TestScenarioAppCheckpointResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "app.json")
	var first, resumed strings.Builder
	pr1, err := RunSpec(&first, miniAppSpec("mini-app"), RunOptions{Workers: 2, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	jobLine := regexp.MustCompile(` w\d`) // the per-job worker column
	if len(pr1.Outcomes) != 4 || len(jobLine.FindAllString(first.String(), -1)) != 4 {
		t.Fatalf("first run should execute all 4 jobs:\n%s", first.String())
	}
	pr2, err := RunSpec(&resumed, miniAppSpec("mini-app"), RunOptions{Workers: 2, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resuming from checkpoint") ||
		jobLine.MatchString(resumed.String()) {
		t.Fatalf("resumed run re-ran finished jobs:\n%s", resumed.String())
	}
	if pr2.Fingerprint != pr1.Fingerprint {
		t.Fatalf("resumed fingerprint %016x != first run %016x", pr2.Fingerprint, pr1.Fingerprint)
	}
	if len(pr2.Outcomes) != len(pr1.Outcomes) {
		t.Fatalf("resumed run restored %d outcomes, want %d", len(pr2.Outcomes), len(pr1.Outcomes))
	}
	for i := range pr1.Outcomes {
		if len(pr2.Outcomes[i].Els) != len(pr1.Outcomes[i].Els) ||
			pr2.Outcomes[i].Els[0] != pr1.Outcomes[i].Els[0] {
			t.Fatalf("outcome %d drifted across resume: %+v vs %+v", i, pr2.Outcomes[i], pr1.Outcomes[i])
		}
	}

	// A fresh run without the checkpoint reproduces the same fingerprint:
	// resume identity and from-scratch identity agree.
	pr3, err := RunSpec(io.Discard, miniAppSpec("mini-app"), RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pr3.Fingerprint != pr1.Fingerprint {
		t.Fatalf("width-1 fresh run fingerprint %016x != checkpointed run %016x", pr3.Fingerprint, pr1.Fingerprint)
	}
}
