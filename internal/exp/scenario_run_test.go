package exp

import (
	"io"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"schedact/internal/scenario"
	"schedact/internal/sim"
)

// TestScenarioChaosMatchesPinnedTable diffs the scenario pipeline against
// the pinned fingerprint table: the canonical chaos spec, compiled and run
// through RunSpec, must produce a rolling fleet fingerprint equal to
// folding TestFingerprintsPinned's per-seed table in seed order. This is
// the `make scenarios` gate's oracle — a spec-compiler change that altered
// job ordering, seed derivation, or the warm context's shape lands here
// even if every battery test were rewritten on top of the same bug.
func TestScenarioChaosMatchesPinnedTable(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are slow in -short mode")
	}
	n := int64(len(pinnedFingerprints))
	var want uint64
	for seed := int64(1); seed <= n; seed++ {
		fp, err := strconv.ParseUint(pinnedFingerprints[seed], 16, 64)
		if err != nil {
			t.Fatalf("pinned fingerprint for seed %d is not hex: %v", seed, err)
		}
		want = fnvFold(want, uint64(seed), fp)
	}
	pr, err := RunSpec(io.Discard, scenario.ChaosSpec(1, n), RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Sweep == nil || pr.Sweep.Failed != 0 || pr.Sweep.Done != n {
		t.Fatalf("canonical chaos spec: sweep %+v", pr.Sweep)
	}
	if pr.Fingerprint != want {
		t.Errorf("compiled chaos spec fingerprint %016x != pinned-table fold %016x — "+
			"the scenario pipeline drifted from the pinned per-seed fingerprints", pr.Fingerprint, want)
	}
}

// miniMixSpec is a seconds-cheap chaos spec (one seed, 50ms storm) for
// checkpoint-plumbing tests; the verdict does not matter, only that a run
// completes and writes its checkpoint.
func miniMixSpec(name string) scenario.Spec {
	return scenario.Spec{
		Name:     name,
		Workload: scenario.Workload{Kind: scenario.KindMix},
		Faults:   &scenario.Faults{FirstSeed: 1, Seeds: 1, StormMs: 50, DrainMs: 50},
	}
}

// TestScenarioCheckpointRejectsForeignSpec pins the resume-safety contract:
// a run pointed at a checkpoint written by a *different* spec must refuse to
// run rather than resume (or silently overwrite) someone else's progress.
func TestScenarioCheckpointRejectsForeignSpec(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "scenario.json")
	if _, err := RunSpec(io.Discard, miniMixSpec("mini-a"), RunOptions{Workers: 1, Checkpoint: ck}); err != nil {
		t.Fatalf("seeding the checkpoint: %v", err)
	}
	_, err := RunSpec(io.Discard, miniMixSpec("mini-b"), RunOptions{Workers: 1, Checkpoint: ck})
	if err == nil {
		t.Fatal("a foreign spec's checkpoint was accepted")
	}
	if !strings.Contains(err.Error(), "different spec") || !strings.Contains(err.Error(), "mini-a") {
		t.Fatalf("rejection should name the conflict and the writing spec, got: %v", err)
	}
	// An application spec against the same file is rejected identically.
	app := miniAppSpec("mini-c")
	if _, err := RunSpec(io.Discard, app, RunOptions{Workers: 1, Checkpoint: ck}); err == nil ||
		!strings.Contains(err.Error(), "different spec") {
		t.Fatalf("app program accepted a chaos spec's checkpoint: %v", err)
	}
}

// miniAppSpec is a fast four-job N-body scenario (tiny problem shape) for
// app-program checkpoint tests.
func miniAppSpec(name string) scenario.Spec {
	return scenario.Spec{
		Name:     name,
		Workload: scenario.Workload{Kind: scenario.KindNbody, Nbody: &scenario.NbodyOverrides{N: 16, Steps: 2}},
		Machine:  scenario.Machine{CPUs: 2},
		Binding: scenario.Binding{
			Systems: []string{scenario.SysOrigFT, scenario.SysNewFT},
			Procs:   []int{1, 2},
		},
	}
}

// TestScenarioHonorsMachineCPUs pins the machine-shape contract for the
// uniprogrammed default-machine cell (single copy, default costs, space
// policy): the compiled job must simulate the spec's machine.cpus, not the
// fast-path launcher's hardcoded 6-CPU Firefly. The workload runs long
// enough for the periodic daemon to fire, so a cramped machine measurably
// slows the application and an ignored CPU count shows up as equal timings.
func TestScenarioHonorsMachineCPUs(t *testing.T) {
	spec := func(cpus int) scenario.Spec {
		return scenario.Spec{
			Name:     "cpu-shape",
			Workload: scenario.Workload{Kind: scenario.KindNbody, Nbody: &scenario.NbodyOverrides{N: 48, Steps: 3}},
			Machine:  scenario.Machine{CPUs: cpus},
			Binding: scenario.Binding{
				Systems: []string{scenario.SysNewFT},
				Procs:   []int{2},
			},
		}
	}
	run := func(cpus int) sim.Duration {
		pr, err := RunSpec(io.Discard, spec(cpus), RunOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(pr.Outcomes) != 1 || len(pr.Outcomes[0].Els) != 1 {
			t.Fatalf("cpus=%d: unexpected outcomes %+v", cpus, pr.Outcomes)
		}
		return pr.Outcomes[0].Els[0]
	}
	cramped, roomy := run(2), run(MachineCPUs)
	if cramped == roomy {
		t.Fatalf("machine.cpus ignored: 2-CPU and %d-CPU machines both measured %v", MachineCPUs, cramped)
	}
	if cramped < roomy {
		t.Errorf("2-CPU machine (%v) should be slower than the %d-CPU machine (%v)", cramped, MachineCPUs, roomy)
	}
}

// TestScenarioEngineBindingIsLocal pins the engine-binding contract: a spec
// that binds an engine threads the selection through its own run and never
// writes the EngineLPs global (concurrent programs must not race on it),
// and the PDES-bound run stays byte-identical to the sequential one.
func TestScenarioEngineBindingIsLocal(t *testing.T) {
	// resolveLPs: the binding wins over the harness selection in both
	// directions, and an unbound spec inherits it.
	saved := EngineLPs
	defer func() { EngineLPs = saved }()
	EngineLPs = 3
	unbound := miniAppSpec("mini-eng")
	if got := resolveLPs(unbound); got != 3 {
		t.Fatalf("unbound spec should inherit EngineLPs=3, got %d", got)
	}
	seqBound := miniAppSpec("mini-eng")
	seqBound.Binding.Engine = scenario.EngineSeq
	if got := resolveLPs(seqBound); got != 0 {
		t.Fatalf("seq-bound spec should resolve to the reference engine, got %d LPs", got)
	}
	parBound := miniAppSpec("mini-eng")
	parBound.Binding.Engine = scenario.EnginePar
	parBound.Binding.LPs = 2
	if got := resolveLPs(parBound); got != 2 {
		t.Fatalf("par-bound spec should resolve to its own LP count, got %d", got)
	}

	EngineLPs = 0
	prSeq, err := RunSpec(io.Discard, miniAppSpec("mini-eng"), RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	prPar, err := RunSpec(io.Discard, parBound, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if EngineLPs != 0 {
		t.Fatalf("RunSpec mutated the EngineLPs global to %d", EngineLPs)
	}
	if prPar.Fingerprint != prSeq.Fingerprint {
		t.Errorf("par-bound program fingerprint %016x != sequential %016x (engines must be byte-identical)",
			prPar.Fingerprint, prSeq.Fingerprint)
	}
}

// TestScenarioAppCheckpointResume pins checkpoint/resume for application
// programs (the satellite generalizing the chaos sweep's resume to any
// compiled sweep): a finished run's checkpoint makes a re-invocation run
// zero jobs yet report the identical program fingerprint and outcomes.
func TestScenarioAppCheckpointResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "app.json")
	var first, resumed strings.Builder
	pr1, err := RunSpec(&first, miniAppSpec("mini-app"), RunOptions{Workers: 2, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	jobLine := regexp.MustCompile(` w\d`) // the per-job worker column
	if len(pr1.Outcomes) != 4 || len(jobLine.FindAllString(first.String(), -1)) != 4 {
		t.Fatalf("first run should execute all 4 jobs:\n%s", first.String())
	}
	pr2, err := RunSpec(&resumed, miniAppSpec("mini-app"), RunOptions{Workers: 2, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resuming from checkpoint") ||
		jobLine.MatchString(resumed.String()) {
		t.Fatalf("resumed run re-ran finished jobs:\n%s", resumed.String())
	}
	if pr2.Fingerprint != pr1.Fingerprint {
		t.Fatalf("resumed fingerprint %016x != first run %016x", pr2.Fingerprint, pr1.Fingerprint)
	}
	if len(pr2.Outcomes) != len(pr1.Outcomes) {
		t.Fatalf("resumed run restored %d outcomes, want %d", len(pr2.Outcomes), len(pr1.Outcomes))
	}
	for i := range pr1.Outcomes {
		if len(pr2.Outcomes[i].Els) != len(pr1.Outcomes[i].Els) ||
			pr2.Outcomes[i].Els[0] != pr1.Outcomes[i].Els[0] {
			t.Fatalf("outcome %d drifted across resume: %+v vs %+v", i, pr2.Outcomes[i], pr1.Outcomes[i])
		}
	}

	// A fresh run without the checkpoint reproduces the same fingerprint:
	// resume identity and from-scratch identity agree.
	pr3, err := RunSpec(io.Discard, miniAppSpec("mini-app"), RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pr3.Fingerprint != pr1.Fingerprint {
		t.Fatalf("width-1 fresh run fingerprint %016x != checkpointed run %016x", pr3.Fingerprint, pr1.Fingerprint)
	}
}
