package exp

import (
	"fmt"
	"math/rand"
	"testing"

	"schedact/internal/chaos"
	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/sim"
	"schedact/internal/trace"
	"schedact/internal/uthread"
)

// TestSoakMixedWorkloads throws a randomized (but seeded, hence
// deterministic) mixture of everything at the scheduler-activation stack —
// forks, joins, mutexes, condition variables, spin locks, blocking I/O,
// page faults, priorities, multiple competing spaces, daemons — and runs
// the full chaos-auditor invariant battery at every millisecond of virtual
// time. Short mode covers 4 seeds; the full run covers 16.
func TestSoakMixedWorkloads(t *testing.T) {
	seeds := int64(16)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			eng := sim.NewEngine()
			defer eng.Close()
			tr := trace.New(2048)
			k := core.New(eng, core.Config{CPUs: 2 + rng.Intn(4), Trace: tr})
			StartDaemonSA(k)
			vm := k.NewVM()
			aud := chaos.Attach(k, tr, 0)
			aud.OnFail = func(v chaos.Violation) { t.Fatalf("at %v:\n%v", eng.Now(), v.Error()) }

			wl := BuildMixedWorkload(k, vm, rng)

			// Run the boundary battery at every millisecond of virtual time.
			for step := 0; step < 60000 && !wl.Done(); step++ {
				eng.RunFor(sim.Millisecond)
				aud.Check()
			}
			if !wl.Done() {
				t.Fatalf("finished %d of %d threads (wedged?)", wl.Finished(), wl.Total)
			}
		})
	}
}

// TestSoakKernelThreadsBinding runs the same style of randomized mixture on
// original FastThreads (kernel-thread virtual processors) plus raw Topaz
// kernel threads sharing the machine, with kernel-side daemons.
func TestSoakKernelThreadsBinding(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 100))
			eng := sim.NewEngine()
			defer eng.Close()
			k := kernel.New(eng, kernel.Config{CPUs: 2 + rng.Intn(4)})
			StartDaemonNative(k)

			finished, total := 0, 0
			// A FastThreads space.
			s := uthread.OnKernelThreads(k, k.NewSpace("ft", false), 2, uthread.Options{})
			mu := s.NewMutex()
			n := 4 + rng.Intn(6)
			total += n
			for i := 0; i < n; i++ {
				work := sim.Duration(rng.Intn(3000)+100) * sim.Microsecond
				ops := 3 + rng.Intn(6)
				s.Spawn("t", func(th *uthread.Thread) {
					for j := 0; j < ops; j++ {
						switch rng.Intn(4) {
						case 0:
							th.Exec(work)
						case 1:
							mu.Lock(th)
							th.Exec(work / 4)
							mu.Unlock(th)
						case 2:
							th.BlockIO()
						case 3:
							th.Yield()
						}
					}
					finished++
				})
			}
			s.Start()
			// A raw kernel-thread space alongside.
			raw := k.NewSpace("raw", false)
			m := k.NewMutex()
			nr := 2 + rng.Intn(4)
			total += nr
			for i := 0; i < nr; i++ {
				raw.Spawn("kt", 0, func(th *kernel.KThread) {
					for j := 0; j < 3; j++ {
						m.Lock(th)
						th.Exec(sim.Duration(rng.Intn(500)+50) * sim.Microsecond)
						m.Unlock(th)
						th.SleepFor(sim.Duration(rng.Intn(5)+1) * sim.Millisecond)
					}
					finished++
				})
			}
			for step := 0; step < 60000 && finished < total; step++ {
				eng.RunFor(sim.Millisecond)
			}
			if finished != total {
				t.Fatalf("finished %d of %d (wedged?)", finished, total)
			}
		})
	}
}
