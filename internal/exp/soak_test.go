package exp

import (
	"fmt"
	"math/rand"
	"testing"

	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

// TestSoakMixedWorkloads throws a randomized (but seeded, hence
// deterministic) mixture of everything at the scheduler-activation stack —
// forks, joins, mutexes, condition variables, spin locks, blocking I/O,
// page faults, priorities, multiple competing spaces, daemons — and checks
// the kernel invariant continuously while it runs.
func TestSoakMixedWorkloads(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			eng := sim.NewEngine()
			defer eng.Close()
			k := core.New(eng, core.Config{CPUs: 2 + rng.Intn(4)})
			StartDaemonSA(k)
			vm := k.NewVM()

			nspaces := 1 + rng.Intn(3)
			finished := 0
			total := 0
			for si := 0; si < nspaces; si++ {
				s := uthread.OnActivations(k, fmt.Sprintf("soak%d", si), rng.Intn(2), k.M.NumCPUs(), uthread.Options{})
				mu := s.NewMutex()
				cond := s.NewCond()
				spin := &uthread.SpinLock{}
				waiting := 0
				nthreads := 3 + rng.Intn(8)
				total += nthreads
				for ti := 0; ti < nthreads; ti++ {
					plan := make([]int, 4+rng.Intn(8))
					for i := range plan {
						plan[i] = rng.Intn(7)
					}
					prio := rng.Intn(3)
					work := sim.Duration(rng.Intn(2000)+100) * sim.Microsecond
					page := rng.Intn(6)
					s.SpawnPrio(fmt.Sprintf("t%d.%d", si, ti), prio, func(th *uthread.Thread) {
						for _, op := range plan {
							switch op {
							case 0:
								th.Exec(work)
							case 1:
								mu.Lock(th)
								th.Exec(work / 4)
								mu.Unlock(th)
							case 2:
								spin.Acquire(th)
								th.Exec(work / 8)
								spin.Release(th)
							case 3:
								th.BlockIO()
							case 4:
								th.TouchPage(vm, page)
							case 5:
								th.Yield()
							case 6:
								// Cond handshake: wait if someone will signal
								// later, else signal a waiter.
								if waiting > 0 {
									waiting--
									cond.Signal(th)
								} else {
									c := th.Fork("signaller", func(c *uthread.Thread) {
										c.Exec(work / 2)
										cond.Signal(c)
									})
									waiting++
									cond.Wait(th, nil)
									waiting--
									if waiting < 0 {
										waiting = 0
									}
									th.Join(c)
								}
							}
						}
						finished++
					})
				}
				s.Start()
			}

			// Check the invariant at every millisecond of virtual time.
			violations := 0
			for step := 0; step < 60000 && finished < total; step++ {
				eng.RunFor(sim.Millisecond)
				if err := k.CheckInvariants(); err != nil {
					violations++
					t.Fatalf("at %v: %v", eng.Now(), err)
				}
			}
			if finished != total {
				t.Fatalf("finished %d of %d threads (wedged?)", finished, total)
			}
			_ = violations
		})
	}
}

// TestSoakKernelThreadsBinding runs the same style of randomized mixture on
// original FastThreads (kernel-thread virtual processors) plus raw Topaz
// kernel threads sharing the machine, with kernel-side daemons.
func TestSoakKernelThreadsBinding(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 100))
			eng := sim.NewEngine()
			defer eng.Close()
			k := kernel.New(eng, kernel.Config{CPUs: 2 + rng.Intn(4)})
			StartDaemonNative(k)

			finished, total := 0, 0
			// A FastThreads space.
			s := uthread.OnKernelThreads(k, k.NewSpace("ft", false), 2, uthread.Options{})
			mu := s.NewMutex()
			n := 4 + rng.Intn(6)
			total += n
			for i := 0; i < n; i++ {
				work := sim.Duration(rng.Intn(3000)+100) * sim.Microsecond
				ops := 3 + rng.Intn(6)
				s.Spawn("t", func(th *uthread.Thread) {
					for j := 0; j < ops; j++ {
						switch rng.Intn(4) {
						case 0:
							th.Exec(work)
						case 1:
							mu.Lock(th)
							th.Exec(work / 4)
							mu.Unlock(th)
						case 2:
							th.BlockIO()
						case 3:
							th.Yield()
						}
					}
					finished++
				})
			}
			s.Start()
			// A raw kernel-thread space alongside.
			raw := k.NewSpace("raw", false)
			m := k.NewMutex()
			nr := 2 + rng.Intn(4)
			total += nr
			for i := 0; i < nr; i++ {
				raw.Spawn("kt", 0, func(th *kernel.KThread) {
					for j := 0; j < 3; j++ {
						m.Lock(th)
						th.Exec(sim.Duration(rng.Intn(500)+50) * sim.Microsecond)
						m.Unlock(th)
						th.SleepFor(sim.Duration(rng.Intn(5)+1) * sim.Millisecond)
					}
					finished++
				})
			}
			for step := 0; step < 60000 && finished < total; step++ {
				eng.RunFor(sim.Millisecond)
			}
			if finished != total {
				t.Fatalf("finished %d of %d (wedged?)", finished, total)
			}
		})
	}
}
