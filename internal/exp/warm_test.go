package exp

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"schedact/internal/core"
)

// warmSeeds reports how many seeds the warm-vs-cold oracle sweeps: 8 by
// default (tier-1 latency), the full sweep width with
// SCHEDACT_WARM_SEEDS=64 (the CI chaos job pins all 64).
func warmSeeds(t *testing.T) int64 {
	if s := os.Getenv("SCHEDACT_WARM_SEEDS"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < 1 {
			t.Fatalf("bad SCHEDACT_WARM_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 3
	}
	return 8
}

// TestWarmContextMatchesCold is the tentpole's equivalence oracle: one warm
// RunContext recycled across every sweep seed must produce, for each seed,
// the byte-identical fingerprint (and verdict) of a cold run that builds
// the whole stack from scratch. Any Reset seam that leaks state between
// runs — a counter not zeroed, an event surviving, a pool reuse that is
// metered, a registry name drifting — lands here as a fingerprint diff on
// the first affected seed.
func TestWarmContextMatchesCold(t *testing.T) {
	n := warmSeeds(t)
	rc := NewRunContext()
	defer rc.Close()
	for seed := int64(1); seed <= n; seed++ {
		warm := rc.RunSeed(seed)
		cold := RunChaosSeed(seed)
		if warm.Fingerprint != cold.Fingerprint || warm.Replay != cold.Replay {
			t.Fatalf("seed %d: warm fingerprints %v/%v != cold %v/%v",
				seed, warm.Fingerprint, warm.Replay, cold.Fingerprint, cold.Replay)
		}
		if warm.Finished != cold.Finished || warm.Total != cold.Total ||
			warm.End != cold.End || warm.Preempts != cold.Preempts {
			t.Fatalf("seed %d: warm result drifted: %+v vs cold %+v", seed, warm, cold)
		}
		if len(warm.Violations) != len(cold.Violations) {
			t.Fatalf("seed %d: warm %d violations vs cold %d",
				seed, len(warm.Violations), len(cold.Violations))
		}
	}
}

// TestWarmContextSurvivesFailedRun pins that a run which ends mid-storm —
// an ablated kernel tripping the auditor, threads unfinished, injector
// still armed — leaves the warm context fully recyclable: the next seeds
// on the same context still match cold runs byte for byte.
func TestWarmContextSurvivesFailedRun(t *testing.T) {
	rc := NewRunContext()
	defer rc.Close()
	_, broken := rc.runOnce(1, func(k *core.Kernel) { k.AblateNoGrant = true })
	if len(broken.Violations) == 0 {
		t.Fatal("ablated warm run escaped the auditor")
	}
	for seed := int64(2); seed <= 4; seed++ {
		warm := rc.RunSeed(seed)
		cold := RunChaosSeed(seed)
		if warm.Fingerprint != cold.Fingerprint {
			t.Fatalf("seed %d after a failed run: warm %v != cold %v",
				seed, warm.Fingerprint, cold.Fingerprint)
		}
	}
}

// TestWarmRunSteadyStateAllocs is the bench-smoke allocation gate for the
// warm path: a recycled RunContext must run a full chaos seed well under
// half a cold run's allocation bill (~29k allocs/run at the time the gate
// was set; steady-state warm measures ~6k). The ceiling has slack for
// workload-shape variance across seeds, but a construction leak on the
// recycle path — rebuilding the kernel, the pool, or a trace consumer per
// run — blows straight through it.
func TestWarmRunSteadyStateAllocs(t *testing.T) {
	rc := NewRunContext()
	defer rc.Close()
	rc.runOnce(1, nil) // absorb first-run warmup (pool spin-up, arena growth)
	seed := int64(0)
	avg := testing.AllocsPerRun(8, func() {
		seed++
		rc.runOnce(seed, nil)
	})
	const ceiling = 12000
	if avg > ceiling {
		t.Fatalf("warm run allocates %.0f/run steady-state, ceiling %d", avg, ceiling)
	}
	t.Logf("warm run steady-state allocations: %.0f/run (ceiling %d)", avg, ceiling)
}

// TestChaosSweepCheckpointResume pins the sweep's checkpoint/resume
// contract: sweeping seeds 1..3 with a checkpoint, then re-invoking for
// 1..6, runs only 4..6 and ends with the same rolling fleet fingerprint,
// failure count, and merged histograms as a one-shot 1..6 sweep.
func TestChaosSweepCheckpointResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "sweep.json")
	var partial, resumed, oneshot strings.Builder

	agA, err := ChaosSweepOpts(&partial, 1, 3, SweepOptions{Workers: 2, Checkpoint: ck})
	if err != nil || agA.Done != 3 || agA.Failed != 0 {
		t.Fatalf("partial sweep: err=%v done=%d failed=%d\n%s", err, agA.Done, agA.Failed, partial.String())
	}
	agB, err := ChaosSweepOpts(&resumed, 1, 6, SweepOptions{Workers: 2, Checkpoint: ck})
	if err != nil || agB.Done != 6 || agB.Failed != 0 {
		t.Fatalf("resumed sweep: err=%v done=%d failed=%d\n%s", err, agB.Done, agB.Failed, resumed.String())
	}
	if !strings.Contains(resumed.String(), "resuming from checkpoint") ||
		strings.Contains(resumed.String(), "seed   1 ") {
		t.Fatalf("resumed sweep re-ran checkpointed seeds:\n%s", resumed.String())
	}

	agC, err := ChaosSweepOpts(&oneshot, 1, 6, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if agB.Fleet != agC.Fleet {
		t.Fatalf("fleet fingerprint: resumed %016x != one-shot %016x", agB.Fleet, agC.Fleet)
	}
	if agB.UpcallDispatch != agC.UpcallDispatch || agB.ReadyWait != agC.ReadyWait ||
		agB.BlockUnblock != agC.BlockUnblock {
		t.Fatal("merged latency histograms differ between resumed and one-shot sweeps")
	}

	// A third invocation finds everything done and runs nothing.
	var done strings.Builder
	agD, err := ChaosSweepOpts(&done, 1, 6, SweepOptions{Workers: 2, Checkpoint: ck})
	if err != nil || agD.Done != 6 {
		t.Fatalf("finished sweep re-ran: err=%v done=%d\n%s", err, agD.Done, done.String())
	}
	if strings.Contains(done.String(), "  seed ") {
		t.Fatalf("finished sweep re-ran seeds:\n%s", done.String())
	}
}
