package exp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// resultsWriter streams chaos seed results to an append-only JSONL file:
// one self-contained JSON object per seed, in fold (seed) order, flushed
// whenever the sweep checkpoints so the durable lines never trail the
// checkpoint. Batch consumers (the shard driver's callers, downstream
// analysis) tail these files instead of parsing the human report. Across a
// crash-resume the file keeps its old lines and seeds re-run after the
// last checkpoint may repeat; consumers dedupe by seed, last line wins.
type resultsWriter struct {
	f   *os.File
	w   *bufio.Writer
	err error // first write error; surfaced by close
}

// seedLine is the JSONL schema for one seed.
type seedLine struct {
	Seed        int64  `json:"seed"`
	Fingerprint string `json:"fingerprint"`
	Replay      string `json:"replay"`
	OK          bool   `json:"ok"`
	Violations  int    `json:"violations,omitempty"`
	Finished    int    `json:"finished"`
	Total       int    `json:"total"`
	EndMs       int64  `json:"end_ms"`
	Preempts    uint64 `json:"preempts"`
}

// openResults opens path for appending (nil writer when path is empty —
// every method is a no-op on a nil receiver).
func openResults(path string) (*resultsWriter, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("results %s: %w", path, err)
	}
	return &resultsWriter{f: f, w: bufio.NewWriter(f)}, nil
}

// add appends one seed's line.
func (rw *resultsWriter) add(rep *SeedReport) {
	if rw == nil || rw.err != nil {
		return
	}
	line := seedLine{
		Seed:        rep.Seed,
		Fingerprint: rep.Fingerprint.String(),
		Replay:      rep.Replay.String(),
		OK:          rep.OK(),
		Violations:  len(rep.Violations),
		Finished:    rep.Finished,
		Total:       rep.Total,
		EndMs:       int64(rep.End.Ms()), // whole virtual milliseconds
		Preempts:    rep.Preempts,
	}
	raw, err := json.Marshal(line)
	if err == nil {
		_, err = rw.w.Write(append(raw, '\n'))
	}
	if err != nil {
		rw.err = err
	}
}

// flush pushes buffered lines to the file.
func (rw *resultsWriter) flush() {
	if rw == nil || rw.err != nil {
		return
	}
	rw.err = rw.w.Flush()
}

// close flushes and closes, returning the first error the writer hit.
func (rw *resultsWriter) close() error {
	if rw == nil {
		return nil
	}
	flushErr := rw.w.Flush()
	closeErr := rw.f.Close()
	switch {
	case rw.err != nil:
		return fmt.Errorf("results %s: %w", rw.f.Name(), rw.err)
	case flushErr != nil:
		return fmt.Errorf("results %s: %w", rw.f.Name(), flushErr)
	case closeErr != nil:
		return fmt.Errorf("results %s: %w", rw.f.Name(), closeErr)
	}
	return nil
}
