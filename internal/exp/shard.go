package exp

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"schedact/internal/scenario"
)

// Shard merging: a sharded sweep runs each contiguous seed subrange in its
// own process against its own checkpoint (key "<base>#<i>/<n>"), and this
// file folds the finished shard aggregates back into one report.
//
// Merged-fingerprint semantics: the per-shard Fleet is a rolling FNV-1a
// chain over (seed, fingerprint) pairs, which is deliberately
// order-sensitive and therefore cannot be rechained across shard
// boundaries from the per-shard digests alone. The merged fingerprint is
// hierarchical instead: for a single shard it is that shard's Fleet —
// byte-identical to the unsharded sweep (and the pinned 64-seed table);
// for k > 1 shards it is an FNV-1a fold over each shard's (First, Done,
// Fleet) triple in shard order, so it pins the same per-seed data but is a
// digest of shard digests (a k-shard sweep and the unsharded sweep yield
// different fingerprint values for identical underlying results — compare
// like against like). Everything else merged — Done, Failed, failed-seed
// attribution, thread counts, latency histograms — is exact and identical
// to the unsharded sweep's aggregate.

// ShardAggregate pairs one shard's finished aggregate with the resume key
// of the checkpoint that carried it.
type ShardAggregate struct {
	Key string
	Agg SweepAggregate
}

// MergedSweep is the fold of a complete shard set: the combined aggregate
// (Fleet holds the hierarchical merged fingerprint described above) plus
// the shard layout it was derived from.
type MergedSweep struct {
	BaseKey string // the shards' shared base resume key
	Shards  int
	SweepAggregate
}

// MergeShards folds finished shard aggregates into one sweep report. It
// verifies the shards belong together and are complete before touching any
// data: every key must be a shard key sharing one base (foreign spec keys
// are rejected), the indexes must cover 1..n exactly once, every shard
// must be finished (Done == Want), and the seed ranges must tile the sweep
// contiguously — an overlap or gap is an error, not a silent merge.
func MergeShards(shards []ShardAggregate) (*MergedSweep, error) {
	if len(shards) == 0 {
		return nil, errors.New("merge: no shard aggregates")
	}
	type piece struct {
		idx int
		agg *SweepAggregate
	}
	var base string
	var of int
	pieces := make([]piece, 0, len(shards))
	seen := make(map[int]bool, len(shards))
	for i := range shards {
		sh := &shards[i]
		b, idx, n, sharded := scenario.SplitShardKey(sh.Key)
		if !sharded {
			return nil, fmt.Errorf("merge: %q is not a shard checkpoint key", sh.Key)
		}
		if base == "" {
			base, of = b, n
		}
		if b != base {
			return nil, fmt.Errorf("merge: shard %d/%d belongs to a different spec (base key %s, want %s)", idx, n, b, base)
		}
		if n != of {
			return nil, fmt.Errorf("merge: shard %d/%d mixed into a %d-way merge", idx, n, of)
		}
		if seen[idx] {
			return nil, fmt.Errorf("merge: shard %d/%d supplied twice", idx, of)
		}
		seen[idx] = true
		if sh.Agg.Want <= 0 || sh.Agg.Done != sh.Agg.Want {
			return nil, fmt.Errorf("merge: shard %d/%d is incomplete (%d/%d seeds done) — finish or resume it first",
				idx, of, sh.Agg.Done, sh.Agg.Want)
		}
		pieces = append(pieces, piece{idx: idx, agg: &sh.Agg})
	}
	if len(pieces) != of {
		missing := make([]int, 0, of)
		for i := 1; i <= of; i++ {
			if !seen[i] {
				missing = append(missing, i)
			}
		}
		return nil, fmt.Errorf("merge: %d of %d shards supplied; missing shard(s) %v", len(pieces), of, missing)
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].idx < pieces[j].idx })
	for i := 1; i < len(pieces); i++ {
		prev, cur := pieces[i-1].agg, pieces[i].agg
		if want := prev.First + prev.Done; cur.First != want {
			rel := "gap"
			if cur.First < want {
				rel = "overlap"
			}
			return nil, fmt.Errorf("merge: seed-range %s between shard %d (seeds %d..%d) and shard %d (first seed %d)",
				rel, pieces[i-1].idx, prev.First, prev.First+prev.Done-1, pieces[i].idx, cur.First)
		}
	}

	m := &MergedSweep{BaseKey: base, Shards: of}
	m.First = pieces[0].agg.First
	for _, p := range pieces {
		ag := p.agg
		m.Want += ag.Want
		m.Done += ag.Done
		m.Failed += ag.Failed
		for _, s := range ag.Seeds {
			if len(m.Seeds) < maxFailedSeeds {
				m.Seeds = append(m.Seeds, s)
			}
		}
		m.Runs += ag.Runs
		m.UpcallDispatch.Merge(&ag.UpcallDispatch)
		m.ReadyWait.Merge(&ag.ReadyWait)
		m.BlockUnblock.Merge(&ag.BlockUnblock)
	}
	if of == 1 {
		m.Fleet = pieces[0].agg.Fleet // flat: byte-identical to unsharded
	} else {
		for _, p := range pieces {
			m.Fleet = fnvFold(m.Fleet, uint64(p.agg.First), uint64(p.agg.Done), p.agg.Fleet)
		}
	}
	return m, nil
}

// LoadShardAggregate reads one shard checkpoint file into a ShardAggregate
// without needing the spec: the envelope carries the shard's resume key.
func LoadShardAggregate(path string) (ShardAggregate, error) {
	var sh ShardAggregate
	key, _, err := scenario.PeekCheckpoint(path, &sh.Agg)
	if err != nil {
		return sh, err
	}
	sh.Key = key
	return sh, nil
}

// MergeShardFiles loads shard checkpoint files, merges them, and renders
// the merged report to w: one line per shard, then the same sweep tail an
// unsharded run prints (with the hierarchical merged fingerprint on the
// fingerprint line when more than one shard merged).
func MergeShardFiles(w io.Writer, paths []string) (*MergedSweep, error) {
	shards := make([]ShardAggregate, 0, len(paths))
	for _, path := range paths {
		sh, err := LoadShardAggregate(path)
		if err != nil {
			return nil, err
		}
		shards = append(shards, sh)
	}
	m, err := MergeShards(shards)
	if err != nil {
		return nil, err
	}
	sort.Slice(shards, func(i, j int) bool {
		_, ii, _, _ := scenario.SplitShardKey(shards[i].Key)
		_, jj, _, _ := scenario.SplitShardKey(shards[j].Key)
		return ii < jj
	})
	for _, sh := range shards {
		_, idx, of, _ := scenario.SplitShardKey(sh.Key)
		fprintf(w, "  shard %d/%d  seeds %d..%d  %d done  %d failed  fleet %016x\n",
			idx, of, sh.Agg.First, sh.Agg.First+sh.Agg.Done-1, sh.Agg.Done, sh.Agg.Failed, sh.Agg.Fleet)
	}
	reportSweep(w, &m.SweepAggregate, m.Done, 0, 0)
	return m, nil
}
