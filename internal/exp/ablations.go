package exp

import (
	"io"

	"schedact/internal/scenario"
)

// AllocatorAblationResult compares the §4.1 space-sharing allocator against
// a first-come-first-served policy on the Table 5 multiprogrammed workload.
type AllocatorAblationResult struct {
	SpaceSharing struct {
		SpeedupAvg float64
		Spread     float64 // |t1-t2| / avg: fairness between the two copies
	}
	FirstCome struct {
		SpeedupAvg float64
		Spread     float64
	}
}

// AllocatorAblation runs two new-FastThreads copies under both processor
// allocation policies (the compiled scenario.Alloc spec: policy axis
// {space, fcfs}). Space sharing divides the machine fairly and evenly;
// first-come starves the late arriver, showing why the policy (not just the
// mechanism) matters.
func AllocatorAblation() AllocatorAblationResult {
	pr := runCanonical(scenario.Alloc())
	cell := func(o AppOutcome) (speedup, spread float64) {
		avg := avgDuration(o.Els)
		diff := o.Els[0] - o.Els[1]
		if diff < 0 {
			diff = -diff
		}
		return float64(pr.Baseline) / float64(avg), float64(diff) / float64(avg)
	}
	var res AllocatorAblationResult
	res.SpaceSharing.SpeedupAvg, res.SpaceSharing.Spread = cell(pr.Outcomes[0])
	res.FirstCome.SpeedupAvg, res.FirstCome.Spread = cell(pr.Outcomes[1])
	return res
}

// HysteresisAblationResult compares idle-processor hysteresis settings
// (§4.2: "our implementation includes hysteresis to avoid unnecessary
// processor re-allocations; an idle processor spins for a short period
// before notifying the kernel that it is available for re-allocation").
type HysteresisAblationResult struct {
	WithHysteresis    struct{ Takes, Upcalls uint64 }
	WithoutHysteresis struct{ Takes, Upcalls uint64 }
}

// HysteresisAblation runs a bursty application — 5ms of computation, then a
// 10ms I/O — against a processor-hungry competitor, with the idle-spin
// hysteresis longer and shorter than the application's idle gaps (the
// compiled scenario.Hysteresis spec: hysteresis axis {15ms, 5µs}). With
// hysteresis covering the gap, the processor stays put; without it, every
// gap surrenders the processor to the competitor and it must be stolen
// back moments later.
func HysteresisAblation() HysteresisAblationResult {
	pr := runCanonical(scenario.Hysteresis())
	var res HysteresisAblationResult
	res.WithHysteresis.Takes, res.WithHysteresis.Upcalls = pr.Outcomes[0].Takes, pr.Outcomes[0].Upcalls
	res.WithoutHysteresis.Takes, res.WithoutHysteresis.Upcalls = pr.Outcomes[1].Takes, pr.Outcomes[1].Upcalls
	return res
}

// Figure2Tuned re-runs the new-FastThreads Figure 2 series under the tuned
// cost profile (§5.2's projected production implementation, the compiled
// scenario.Fig2Tuned spec): with upcalls at kernel-thread cost, the
// scheduler-activation system's advantage under memory pressure widens.
func Figure2Tuned() Series {
	pr := runCanonical(scenario.Fig2Tuned())
	s := Series{System: "new FastThreads (tuned upcalls)"}
	for i, j := range pr.Prog.Jobs {
		s.Points = append(s.Points, Point{X: j.MemPct, Y: pr.Outcomes[i].Els[0].Seconds()})
	}
	return s
}

// RenderAblations writes the ablation results.
func RenderAblations(w io.Writer, alloc AllocatorAblationResult, hyst HysteresisAblationResult) {
	fprintf(w, "Allocator ablation (§4.1): two multiprogrammed copies, 6 processors\n")
	fprintf(w, "  space sharing:  avg speedup %.2f, copy spread %4.0f%%\n",
		alloc.SpaceSharing.SpeedupAvg, alloc.SpaceSharing.Spread*100)
	fprintf(w, "  first-come:     avg speedup %.2f, copy spread %4.0f%%\n\n",
		alloc.FirstCome.SpeedupAvg, alloc.FirstCome.Spread*100)
	fprintf(w, "Hysteresis ablation (§4.2): processor re-allocation churn, N-body + daemons\n")
	fprintf(w, "  with hysteresis (1ms idle spin): %d re-allocations, %d upcalls\n",
		hyst.WithHysteresis.Takes, hyst.WithHysteresis.Upcalls)
	fprintf(w, "  without (5µs):                   %d re-allocations, %d upcalls\n\n",
		hyst.WithoutHysteresis.Takes, hyst.WithoutHysteresis.Upcalls)
}
