package exp

import (
	"fmt"
	"io"

	"schedact/internal/apps/nbody"
	"schedact/internal/core"
	"schedact/internal/fleet"
	"schedact/internal/machine"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

// AllocatorAblationResult compares the §4.1 space-sharing allocator against
// a first-come-first-served policy on the Table 5 multiprogrammed workload.
type AllocatorAblationResult struct {
	SpaceSharing struct {
		SpeedupAvg float64
		Spread     float64 // |t1-t2| / avg: fairness between the two copies
	}
	FirstCome struct {
		SpeedupAvg float64
		Spread     float64
	}
}

// AllocatorAblation runs two new-FastThreads copies under both processor
// allocation policies. Space sharing divides the machine fairly and evenly;
// first-come starves the late arriver, showing why the policy (not just the
// mechanism) matters.
func AllocatorAblation() AllocatorAblationResult {
	cfg := nbody.DefaultConfig()
	seq := seqTime(cfg)
	var res AllocatorAblationResult
	type cell struct{ speedup, spread float64 }
	cells := fleet.Map(Workers, 2, func(job, _ int) cell {
		fcfs := job == 1
		eng := sim.NewEngine(engOpts(fmt.Sprintf("alloc-ablation fcfs=%v", fcfs))...)
		k := core.New(eng, core.Config{CPUs: MachineCPUs})
		if fcfs {
			k.SetPolicy(core.FirstComeFCFS)
		}
		StartDaemonSA(k)
		var runs [2]*nbody.Run
		for i := range runs {
			s := uthread.OnActivations(k, fmt.Sprintf("nbody%d", i), 0, MachineCPUs, uthread.Options{})
			runs[i] = nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
			s.Start()
		}
		eng.RunUntil(RunLimit)
		var sum, diff sim.Duration
		for _, r := range runs {
			if !r.Done {
				panic("exp: allocator ablation run did not finish")
			}
			sum += r.Elapsed()
		}
		diff = runs[0].Elapsed() - runs[1].Elapsed()
		if diff < 0 {
			diff = -diff
		}
		avg := sum / 2
		eng.Close()
		return cell{speedup: float64(seq) / float64(avg), spread: float64(diff) / float64(avg)}
	})
	res.SpaceSharing.SpeedupAvg = cells[0].speedup
	res.SpaceSharing.Spread = cells[0].spread
	res.FirstCome.SpeedupAvg = cells[1].speedup
	res.FirstCome.Spread = cells[1].spread
	return res
}

// HysteresisAblationResult compares idle-processor hysteresis settings
// (§4.2: "our implementation includes hysteresis to avoid unnecessary
// processor re-allocations; an idle processor spins for a short period
// before notifying the kernel that it is available for re-allocation").
type HysteresisAblationResult struct {
	WithHysteresis    struct{ Takes, Upcalls uint64 }
	WithoutHysteresis struct{ Takes, Upcalls uint64 }
}

// HysteresisAblation runs a bursty application — 5ms of computation, then a
// 10ms I/O — against a processor-hungry competitor, with the idle-spin
// hysteresis longer and shorter than the application's idle gaps. With
// hysteresis covering the gap, the processor stays put; without it, every
// gap surrenders the processor to the competitor and it must be stolen
// back moments later.
func HysteresisAblation() HysteresisAblationResult {
	run := func(h sim.Duration) (uint64, uint64) {
		eng := sim.NewEngine(engOpts(fmt.Sprintf("hysteresis-ablation h=%v", h))...)
		defer eng.Close()
		costs := machine.DefaultCosts()
		costs.DiskLatency = sim.Ms(10)
		k := core.New(eng, core.Config{CPUs: 2, Costs: costs})
		hungry := uthread.OnActivations(k, "hungry", 0, 2, uthread.Options{})
		for i := 0; i < 2; i++ {
			hungry.Spawn("spin", func(t *uthread.Thread) { t.Exec(3 * sim.Second) })
		}
		hungry.Start()
		bursty := uthread.OnActivations(k, "bursty", 0, 1, uthread.Options{Hysteresis: h})
		done := false
		bursty.Spawn("burst", func(t *uthread.Thread) {
			for i := 0; i < 100; i++ {
				t.Exec(sim.Ms(5))
				t.BlockIO()
			}
			done = true
		})
		bursty.Start()
		for !done && eng.Now() < RunLimit {
			eng.RunFor(10 * sim.Millisecond)
		}
		if !done {
			panic("exp: hysteresis ablation run did not finish")
		}
		return k.Stats.Takes, k.Stats.Upcalls
	}
	settings := []sim.Duration{sim.Ms(15), sim.Us(5)} // the first covers the 10ms gap
	type cell struct{ takes, upcalls uint64 }
	cells := fleet.Map(Workers, len(settings), func(job, _ int) cell {
		var c cell
		c.takes, c.upcalls = run(settings[job])
		return c
	})
	var res HysteresisAblationResult
	res.WithHysteresis.Takes, res.WithHysteresis.Upcalls = cells[0].takes, cells[0].upcalls
	res.WithoutHysteresis.Takes, res.WithoutHysteresis.Upcalls = cells[1].takes, cells[1].upcalls
	return res
}

// Figure2Tuned re-runs the new-FastThreads Figure 2 series under the tuned
// cost profile (§5.2's projected production implementation): with upcalls
// at kernel-thread cost, the scheduler-activation system's advantage under
// memory pressure widens.
func Figure2Tuned() Series {
	s := Series{System: "new FastThreads (tuned upcalls)"}
	pools := newWorkerPools(Workers, len(MemoryPoints))
	defer pools.Close()
	ys := fleet.Map(Workers, len(MemoryPoints), func(job, worker int) float64 {
		pct := MemoryPoints[job]
		cfg := nbody.DefaultConfig()
		cfg.MemFraction = pct / 100
		eng := pools.get(worker).NewEngine(engOpts(fmt.Sprintf("fig2-tuned mem=%.0f%%", pct))...)
		k := core.New(eng, core.Config{CPUs: MachineCPUs, Costs: machine.TunedCosts()})
		StartDaemonSA(k)
		sched := uthread.OnActivations(k, "nbody", 0, MachineCPUs, uthread.Options{})
		run := nbody.Launch(nbody.UThreadSystem{S: sched}, cfg)
		sched.Start()
		eng.RunUntil(RunLimit)
		if !run.Done {
			panic("exp: tuned figure2 run did not finish")
		}
		defer eng.Close()
		return sim.Duration(run.Elapsed()).Seconds()
	})
	for i, pct := range MemoryPoints {
		s.Points = append(s.Points, Point{X: pct, Y: ys[i]})
	}
	return s
}

// RenderAblations writes the ablation results.
func RenderAblations(w io.Writer, alloc AllocatorAblationResult, hyst HysteresisAblationResult) {
	fprintf(w, "Allocator ablation (§4.1): two multiprogrammed copies, 6 processors\n")
	fprintf(w, "  space sharing:  avg speedup %.2f, copy spread %4.0f%%\n",
		alloc.SpaceSharing.SpeedupAvg, alloc.SpaceSharing.Spread*100)
	fprintf(w, "  first-come:     avg speedup %.2f, copy spread %4.0f%%\n\n",
		alloc.FirstCome.SpeedupAvg, alloc.FirstCome.Spread*100)
	fprintf(w, "Hysteresis ablation (§4.2): processor re-allocation churn, N-body + daemons\n")
	fprintf(w, "  with hysteresis (1ms idle spin): %d re-allocations, %d upcalls\n",
		hyst.WithHysteresis.Takes, hyst.WithHysteresis.Upcalls)
	fprintf(w, "  without (5µs):                   %d re-allocations, %d upcalls\n\n",
		hyst.WithoutHysteresis.Takes, hyst.WithoutHysteresis.Upcalls)
}
