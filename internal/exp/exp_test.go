package exp

import (
	"strings"
	"testing"

	"schedact/internal/apps/nbody"
)

// The experiment tests assert the paper's comparative claims — who wins,
// where curves flatten or diverge — rather than absolute numbers; see
// EXPERIMENTS.md for the full paper-vs-measured record.

func TestTable1MatchesPaper(t *testing.T) {
	for _, r := range Table1() {
		if !within(r.NullForkUs, r.PaperNullFork, 0.10) {
			t.Errorf("%s: NullFork %.1fµs vs paper %.1fµs", r.System, r.NullForkUs, r.PaperNullFork)
		}
		if !within(r.SignalWaitUs, r.PaperSignalWait, 0.10) {
			t.Errorf("%s: Signal-Wait %.1fµs vs paper %.1fµs", r.System, r.SignalWaitUs, r.PaperSignalWait)
		}
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	for _, r := range Table4() {
		if !within(r.NullForkUs, r.PaperNullFork, 0.10) {
			t.Errorf("%s: NullFork %.1fµs vs paper %.1fµs", r.System, r.NullForkUs, r.PaperNullFork)
		}
		if !within(r.SignalWaitUs, r.PaperSignalWait, 0.10) {
			t.Errorf("%s: Signal-Wait %.1fµs vs paper %.1fµs", r.System, r.SignalWaitUs, r.PaperSignalWait)
		}
	}
}

func within(got, want, frac float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= want*frac
}

func TestCSAblationMatchesPaper(t *testing.T) {
	r := CSAblation()
	if !within(r.ExplicitFlag.NullForkUs, 49, 0.10) {
		t.Errorf("explicit-flag NullFork %.1fµs vs paper 49µs", r.ExplicitFlag.NullForkUs)
	}
	if !within(r.ExplicitFlag.SignalWaitUs, 48, 0.10) {
		t.Errorf("explicit-flag Signal-Wait %.1fµs vs paper 48µs", r.ExplicitFlag.SignalWaitUs)
	}
}

func TestUpcallLatencyMatchesPaper(t *testing.T) {
	r := UpcallLatency()
	if !within(r.PrototypeMs, 2.4, 0.15) {
		t.Errorf("prototype upcall signal-wait %.2fms vs paper 2.4ms", r.PrototypeMs)
	}
	if r.MeasuredRatio < 3.5 || r.MeasuredRatio > 7 {
		t.Errorf("prototype/Topaz ratio %.1f, paper ~5", r.MeasuredRatio)
	}
	if r.TunedUs > 1.2*r.TopazUs {
		t.Errorf("tuned upcalls (%.0fµs) should be commensurate with Topaz (%.0fµs)", r.TunedUs, r.TopazUs)
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full application sweep")
	}
	r := Figure1()
	get := func(sys SystemName, p int) float64 {
		for _, s := range r.Series {
			if s.System == sys {
				return s.Points[p-1].Y
			}
		}
		t.Fatalf("missing series %s", sys)
		return 0
	}
	// Claim 1: at one processor, every parallel system is slower than the
	// sequential program, Topaz most of all.
	for _, sys := range Systems {
		if sp := get(sys, 1); sp >= 1.0 {
			t.Errorf("%s at P=1: speedup %.2f, want < 1", sys, sp)
		}
	}
	if get(SysTopaz, 1) >= get(SysOrigFT, 1) {
		t.Errorf("Topaz P=1 (%.2f) should dip below FastThreads (%.2f)", get(SysTopaz, 1), get(SysOrigFT, 1))
	}
	// Claim 2: the user-level systems speed up near-linearly; Topaz
	// flattens out well below them.
	for _, sys := range []SystemName{SysOrigFT, SysNewFT} {
		if sp := get(sys, 6); sp < 4.0 {
			t.Errorf("%s at P=6: speedup %.2f, want >= 4 (near-linear)", sys, sp)
		}
	}
	if topaz6 := get(SysTopaz, 6); topaz6 > 0.75*get(SysNewFT, 6) {
		t.Errorf("Topaz at P=6 (%.2f) should flatten well below FastThreads (%.2f)", topaz6, get(SysNewFT, 6))
	}
	// Claim 3: Topaz's increments shrink (flattening), FastThreads' don't.
	topazGain := get(SysTopaz, 6) - get(SysTopaz, 5)
	topazEarly := get(SysTopaz, 2) - get(SysTopaz, 1)
	if topazGain > 0.7*topazEarly {
		t.Errorf("Topaz gain 5→6 (%.2f) should be well below its early gain (%.2f)", topazGain, topazEarly)
	}
}

func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full application sweep")
	}
	r := Figure2()
	get := func(sys SystemName, pct float64) float64 {
		for _, s := range r.Series {
			if s.System == sys {
				for _, p := range s.Points {
					if p.X == pct {
						return p.Y
					}
				}
			}
		}
		t.Fatalf("missing point %s/%v", sys, pct)
		return 0
	}
	// Claim 1: everyone degrades as memory shrinks, slowly at first and
	// sharply at the end.
	for _, sys := range Systems {
		if get(sys, 40) <= get(sys, 100) {
			t.Errorf("%s: no degradation from 100%% to 40%% memory", sys)
		}
		early := get(sys, 80) / get(sys, 100)
		late := get(sys, 40) / get(sys, 60)
		if late <= 1.0 {
			t.Errorf("%s: no sharp degradation at low memory", sys)
		}
		_ = early
	}
	// Claim 2: original FastThreads degrades worst — its virtual processor
	// is lost for the duration of each I/O.
	for _, pct := range []float64{60, 50, 40} {
		if get(SysOrigFT, pct) <= get(SysNewFT, pct) {
			t.Errorf("orig FastThreads at %.0f%% (%.2fs) should be worse than new FastThreads (%.2fs)",
				pct, get(SysOrigFT, pct), get(SysNewFT, pct))
		}
	}
	// Claim 3: at full memory the user-level systems beat Topaz.
	if get(SysNewFT, 100) >= get(SysTopaz, 100) {
		t.Errorf("new FastThreads at 100%% (%.2fs) should beat Topaz (%.2fs)", get(SysNewFT, 100), get(SysTopaz, 100))
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full application sweep")
	}
	rows := Table5()
	get := func(sys SystemName) float64 {
		for _, r := range rows {
			if r.System == sys {
				return r.Speedup
			}
		}
		t.Fatalf("missing row %s", sys)
		return 0
	}
	// The paper's headline: under multiprogramming the kernel-involved
	// systems collapse while scheduler activations stay near the
	// three-processor uniprogrammed speedup (max possible 3.0).
	if sp := get(SysNewFT); sp < 2.3 {
		t.Errorf("new FastThreads multiprogrammed speedup %.2f, want >= 2.3 (paper 2.45)", sp)
	}
	for _, sys := range []SystemName{SysTopaz, SysOrigFT} {
		if sp := get(sys); sp >= 0.85*get(SysNewFT) {
			t.Errorf("%s speedup %.2f should be well below new FastThreads %.2f", sys, sp, get(SysNewFT))
		}
	}
}

func TestAllocatorAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full application sweep")
	}
	r := AllocatorAblation()
	// Space sharing treats the two copies evenly; first-come starves the
	// late arriver, so its copies' times spread far apart.
	if r.SpaceSharing.Spread > 0.25 {
		t.Errorf("space sharing copy spread %.0f%%, want small", r.SpaceSharing.Spread*100)
	}
	if r.FirstCome.Spread < 2*r.SpaceSharing.Spread {
		t.Errorf("first-come spread %.0f%% should far exceed space sharing's %.0f%%",
			r.FirstCome.Spread*100, r.SpaceSharing.Spread*100)
	}
}

func TestHysteresisAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full application sweep")
	}
	r := HysteresisAblation()
	if r.WithoutHysteresis.Takes <= r.WithHysteresis.Takes {
		t.Errorf("removing hysteresis should increase processor re-allocation churn: %d vs %d",
			r.WithoutHysteresis.Takes, r.WithHysteresis.Takes)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var b strings.Builder
	RenderMicro(&b, "Table 1", Table1())
	RenderUpcall(&b, UpcallLatency())
	if !strings.Contains(b.String(), "Topaz threads") || !strings.Contains(b.String(), "2.4 ms") {
		t.Fatalf("render output incomplete:\n%s", b.String())
	}
}

func TestDaemonsDoNotWedgeKernels(t *testing.T) {
	// Daemons run forever; make sure both kernel flavours keep simulating
	// them without error for a while with no application present.
	{
		eng, run := launchOne(SysNewFT, nbodySmoke(), 2, nil)
		eng.RunFor(2e9) // 2s beyond completion
		if !run.Done {
			t.Error("smoke run on activations did not finish")
		}
		eng.Close()
	}
	{
		eng, run := launchOne(SysTopaz, nbodySmoke(), 2, nil)
		eng.RunFor(2e9)
		if !run.Done {
			t.Error("smoke run on Topaz did not finish")
		}
		eng.Close()
	}
}

// nbodySmoke is a tiny workload for fast sanity tests (the Chrome-export
// configuration, so goldens and -trace-out pin the same run).
func nbodySmoke() nbody.Config { return traceSmoke() }

func TestBreakEven(t *testing.T) {
	r := BreakEven()
	// The prototype's break-even must be a proper fraction: user-level ops
	// are far cheaper than kernel threads, upcalls far more expensive.
	if r.KernelOpFraction <= 0 || r.KernelOpFraction >= 1 {
		t.Fatalf("break-even fraction = %.3f, want in (0,1)", r.KernelOpFraction)
	}
	if !r.TunedAlwaysWins {
		t.Fatal("tuned upcalls should be commensurate with (below) kernel-thread cost")
	}
}

func TestRenderFigureAndTable5Output(t *testing.T) {
	// Renderers must produce well-formed tables from synthetic results
	// without running the heavy experiments.
	var b strings.Builder
	fig1 := Figure1Result{Sequential: 6e9}
	for _, sys := range Systems {
		s := Series{System: sys}
		for p := 1; p <= 3; p++ {
			s.Points = append(s.Points, Point{X: float64(p), Y: float64(p)})
		}
		fig1.Series = append(fig1.Series, s)
	}
	RenderFigure1(&b, fig1)
	var fig2 Figure2Result
	for _, sys := range Systems {
		s := Series{System: sys}
		for _, m := range []float64{100, 40} {
			s.Points = append(s.Points, Point{X: m, Y: 1.5})
		}
		fig2.Series = append(fig2.Series, s)
	}
	RenderFigure2(&b, fig2)
	RenderTable5(&b, []Table5Row{{System: SysNewFT, Speedup: 2.6, Paper: 2.45}})
	out := b.String()
	for _, want := range []string{"Figure 1", "Figure 2", "Table 5", "new FastThreads", "procs", "%mem"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	series := []Series{
		{System: SysTopaz, Points: []Point{{X: 1, Y: 0.8}, {X: 2, Y: 1.3}}},
		{System: SysNewFT, Points: []Point{{X: 1, Y: 0.99}, {X: 2, Y: 1.9}}},
	}
	if err := WriteCSV(&b, "processors", series); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"processors,Topaz threads,new FastThreads", "1,0.8,0.99", "2,1.3,1.9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}
