package exp

import (
	"io"
	"testing"

	"schedact/internal/scenario"
)

// BenchmarkChaosSweep measures end-to-end chaos-battery throughput — full
// fault-injected runs, auditor armed, replay-checked — through the fleet
// harness at pool width 1. It is the macro view of the event-queue work:
// each seed is two complete simulations dominated by schedule/fire traffic.
// ReportMetric surfaces seeds/sec, the number the sweep's wall-clock scales
// by; BENCH.json records it via make bench-json.
func BenchmarkChaosSweep(b *testing.B) {
	const seedsPer = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if failed := ChaosSweep(io.Discard, 1, seedsPer, 1); failed != 0 {
			b.Fatalf("%d chaos seeds failed", failed)
		}
	}
	b.ReportMetric(float64(seedsPer)*float64(b.N)/b.Elapsed().Seconds(), "seeds/sec")
}

// BenchmarkChaosSweepSampled is BenchmarkChaosSweep with the replay check
// off (faults.replay: off) through the scenario pipeline: each seed runs
// once instead of twice, so seeds/sec should roughly double — the per-run
// hot-path cut a million-run sweep buys with the spec knob. Comparing this
// benchmark's seeds/sec against BenchmarkChaosSweep's is the honest cost of
// the replay-divergence check.
func BenchmarkChaosSweepSampled(b *testing.B) {
	const seedsPer = 4
	spec := scenario.ChaosSpec(1, seedsPer)
	spec.Faults.Replay = scenario.ReplayOff
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr, err := RunSpec(io.Discard, spec, RunOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if pr.Sweep.Failed != 0 {
			b.Fatalf("%d chaos seeds failed", pr.Sweep.Failed)
		}
	}
	b.ReportMetric(float64(seedsPer)*float64(b.N)/b.Elapsed().Seconds(), "seeds/sec")
}

// BenchmarkWarmChaosRun measures the steady-state warm path: one RunContext,
// recycled for every iteration, each iteration one full fault-injected run
// (seed varies so the workload shape does too). This is the fleet worker's
// inner loop; its allocs/op is the number the bench-smoke steady-state
// allocation gate (TestWarmRunSteadyStateAllocs) holds a ceiling over —
// construction cost is excluded by building the context before the timer.
func BenchmarkWarmChaosRun(b *testing.B) {
	rc := NewRunContext()
	defer rc.Close()
	rc.runOnce(1, nil) // absorb first-run warmup (pool spin-up, arena growth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, r := rc.runOnce(int64(1+i%16), nil); len(r.Violations) != 0 {
			b.Fatalf("seed %d: %d violations", r.Seed, len(r.Violations))
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/sec")
}

// BenchmarkChaosSweepPar is BenchmarkChaosSweep on the conservative PDES
// engine (2 LPs, production lookahead and affinity): the same seeds, the
// same byte-identical fingerprints, measured through the partitioned queue
// and its null-message protocol. Comparing the two benchmarks' seeds/sec
// and B/op is the honest cost/benefit picture of intra-run parallelism on
// the current host; bench-smoke's allocation gate watches the B/op column,
// which must stay flat in b.N (steady-state protocol traffic reuses the LP
// reply buffers and event records).
func BenchmarkChaosSweepPar(b *testing.B) {
	const seedsPer = 4
	saved := EngineLPs
	EngineLPs = 2
	defer func() { EngineLPs = saved }()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if failed := ChaosSweep(io.Discard, 1, seedsPer, 1); failed != 0 {
			b.Fatalf("%d chaos seeds failed", failed)
		}
	}
	b.ReportMetric(float64(seedsPer)*float64(b.N)/b.Elapsed().Seconds(), "seeds/sec")
}
