package exp

import (
	"io"
	"testing"
)

// BenchmarkChaosSweep measures end-to-end chaos-battery throughput — full
// fault-injected runs, auditor armed, replay-checked — through the fleet
// harness at pool width 1. It is the macro view of the event-queue work:
// each seed is two complete simulations dominated by schedule/fire traffic.
// ReportMetric surfaces seeds/sec, the number the sweep's wall-clock scales
// by; BENCH.json records it via make bench-json.
func BenchmarkChaosSweep(b *testing.B) {
	const seedsPer = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if failed := ChaosSweep(io.Discard, 1, seedsPer, 1); failed != 0 {
			b.Fatalf("%d chaos seeds failed", failed)
		}
	}
	b.ReportMetric(float64(seedsPer)*float64(b.N)/b.Elapsed().Seconds(), "seeds/sec")
}
