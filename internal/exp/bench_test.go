package exp

import (
	"io"
	"testing"
)

// BenchmarkChaosSweep measures end-to-end chaos-battery throughput — full
// fault-injected runs, auditor armed, replay-checked — through the fleet
// harness at pool width 1. It is the macro view of the event-queue work:
// each seed is two complete simulations dominated by schedule/fire traffic.
// ReportMetric surfaces seeds/sec, the number the sweep's wall-clock scales
// by; BENCH.json records it via make bench-json.
func BenchmarkChaosSweep(b *testing.B) {
	const seedsPer = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if failed := ChaosSweep(io.Discard, 1, seedsPer, 1); failed != 0 {
			b.Fatalf("%d chaos seeds failed", failed)
		}
	}
	b.ReportMetric(float64(seedsPer)*float64(b.N)/b.Elapsed().Seconds(), "seeds/sec")
}

// BenchmarkChaosSweepPar is BenchmarkChaosSweep on the conservative PDES
// engine (2 LPs, production lookahead and affinity): the same seeds, the
// same byte-identical fingerprints, measured through the partitioned queue
// and its null-message protocol. Comparing the two benchmarks' seeds/sec
// and B/op is the honest cost/benefit picture of intra-run parallelism on
// the current host; bench-smoke's allocation gate watches the B/op column,
// which must stay flat in b.N (steady-state protocol traffic reuses the LP
// reply buffers and event records).
func BenchmarkChaosSweepPar(b *testing.B) {
	const seedsPer = 4
	saved := EngineLPs
	EngineLPs = 2
	defer func() { EngineLPs = saved }()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if failed := ChaosSweep(io.Discard, 1, seedsPer, 1); failed != 0 {
			b.Fatalf("%d chaos seeds failed", failed)
		}
	}
	b.ReportMetric(float64(seedsPer)*float64(b.N)/b.Elapsed().Seconds(), "seeds/sec")
}
