package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"schedact/internal/apps/micro"
)

// TestParEngineMatchesReference pins the conservative PDES engine against
// the reference on real chaos workloads: each seed's fault-injected run
// executes once on the reference engine and once on the partitioned engine,
// and the two fingerprints — every trace record, the final clock, the full
// non-host metrics snapshot — must match byte-for-byte. LP counts alternate
// across seeds so the sweep covers the shared-LP-only and scattered shapes.
// For the pinned seeds the reference fingerprint is also checked against the
// committed table, so the test cannot pass by both engines drifting
// together.
//
// By default a handful of seeds run (CI's chaos job sweeps all 64 via
// SCHEDACT_PAR_SEEDS=64).
func TestParEngineMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are slow in -short mode")
	}
	n := int64(4)
	if env := os.Getenv("SCHEDACT_PAR_SEEDS"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil || v < 1 {
			t.Fatalf("bad SCHEDACT_PAR_SEEDS=%q: %v", env, err)
		}
		n = v
	}
	for seed := int64(1); seed <= n; seed++ {
		lps := 1 + int(seed)%4
		ref, par := ParChaosSeed(seed, lps)
		if ref != par {
			t.Errorf("seed %d: par(%d LPs) fingerprint %v != reference %v", seed, lps, par, ref)
		}
		if want, pinned := pinnedFingerprints[seed]; pinned {
			if got := fmt.Sprint(ref); got != want {
				t.Errorf("seed %d: reference fingerprint %s != pinned %s", seed, got, want)
			}
		}
	}
}

// TestGoldenTracesPar regenerates every committed golden trace — the
// Table 1/4 microbenchmarks and the Figure 1 smoke runs — on the PDES
// engine and diffs them against the same files the reference engine is
// pinned to. No -update mode: the partitioned engine has no traces of its
// own to bless, it must reproduce the reference's byte for byte.
func TestGoldenTracesPar(t *testing.T) {
	saved := EngineLPs
	EngineLPs = 3
	defer func() { EngineLPs = saved }()

	cases := []struct {
		name string
		gen  func() string
	}{
		{"table1_fastthreads_kt", func() string { return goldenMicro(micro.FastThreadsKT) }},
		{"table1_topaz_threads", func() string { return goldenMicro(micro.TopazThreads) }},
		{"table1_ultrix_processes", func() string { return goldenMicro(micro.UltrixProcesses) }},
		{"table4_fastthreads_sa", func() string { return goldenMicro(micro.FastThreadsSA) }},
		{"figure1_topaz", func() string { return goldenFigure1(SysTopaz) }},
		{"figure1_orig_fastthreads", func() string { return goldenFigure1(SysOrigFT) }},
		{"figure1_new_fastthreads", func() string { return goldenFigure1(SysNewFT) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", tc.name+".trace")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s: %v", path, err)
			}
			if got := tc.gen(); got != string(want) {
				diffTraces(t, path, string(want), got)
			}
		})
	}
}
