package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"schedact/internal/core"
	"schedact/internal/fleet"
	"schedact/internal/kernel"
	"schedact/internal/machine"
	"schedact/internal/scenario"
	"schedact/internal/sim"
	"schedact/internal/uthread"

	"schedact/internal/apps/nbody"
)

// This file is the scenario runner: the one execution path that interprets
// a compiled scenario.Program on the fleet. Every canonical battery
// (Figure 1/2, Table 5, the ablation grid, the chaos sweep) is an assembly
// over RunProgram on its built-in spec — there is no second, hand-written
// sweep loop — so a custom spec (saexp -scenario) runs through exactly the
// machinery the pinned fingerprints and golden traces certify.

// RunOptions parameterizes one program execution.
type RunOptions struct {
	// Workers is the fleet pool width; 0 defers to the spec's
	// limits.workers, then to auto (one per CPU, divided by the per-run
	// goroutine count under the PDES engine). Results are byte-identical at
	// any width.
	Workers int
	// Checkpoint, when non-empty, is a JSON progress file keyed by the
	// spec's resume identity: re-invoking resumes after the jobs already
	// done (growing faults.seeds extends a finished sweep), and a
	// checkpoint written by a different spec is rejected, not merged.
	Checkpoint string
	// CheckpointEvery overrides how many streamed results separate
	// checkpoint writes (0 = the default, checkpointEvery). Shard drivers
	// lower it so a killed shard loses less progress.
	CheckpointEvery int
	// Results, when non-empty, appends one JSON line per chaos seed to
	// this file as results stream in (batch consumers tail it instead of
	// parsing the human report). The file is append-only across resumes;
	// seeds re-run after a crash may repeat, so consumers dedupe by seed,
	// last line wins.
	Results string
}

// AppOutcome is one application job's measurement: the execution time of
// each multiprogrammed copy, plus the kernel's re-allocation and upcall
// counts for the bursty workload. It is the app checkpoint's unit.
type AppOutcome struct {
	Els     []sim.Duration `json:"els_ns"`
	Takes   uint64         `json:"takes,omitempty"`
	Upcalls uint64         `json:"upcalls,omitempty"`
}

// ProgramResult is one executed program: outcomes in job order (application
// programs), the streaming aggregate (chaos programs), the sequential
// baseline when the spec asked for one, and the rolling fleet fingerprint
// over all results — deterministic, width-independent, resume-invariant.
type ProgramResult struct {
	Prog        *scenario.Program
	Baseline    sim.Duration    // sequential time (spec workload.baseline)
	Outcomes    []AppOutcome    // application programs, in job order
	Sweep       *SweepAggregate // chaos programs
	Fingerprint uint64
}

// RunSpec compiles and runs a spec. See RunProgram.
func RunSpec(w io.Writer, sp scenario.Spec, opt RunOptions) (*ProgramResult, error) {
	prog, err := scenario.Compile(sp)
	if err != nil {
		return nil, err
	}
	return RunProgram(w, prog, opt)
}

// RunProgram executes a compiled program on the fleet, streaming per-job
// lines to w (results fold in job order regardless of pool width). A spec
// that binds an engine overrides the harness engine selection for its own
// run — the selection is threaded through the runner, never written to the
// EngineLPs global, so concurrent programs cannot race on it; the canonical
// specs leave it unbound so saexp -engine still applies.
func RunProgram(w io.Writer, prog *scenario.Program, opt RunOptions) (*ProgramResult, error) {
	lps := resolveLPs(prog.Spec)
	if prog.Chaos() {
		return runChaosProgram(w, prog, opt, lps)
	}
	return runAppProgram(w, prog, opt, lps)
}

// resolveLPs picks the per-run engine for one program: the spec's binding
// when it names an engine (par → its LP count, seq → the reference engine),
// otherwise the harness selection (saexp -engine).
func resolveLPs(sp scenario.Spec) int {
	switch sp.Binding.Engine {
	case scenario.EnginePar:
		return sp.Binding.EffLPs()
	case scenario.EngineSeq:
		return 0
	}
	return EngineLPs
}

// resolveWorkers picks the fleet width: explicit option, then the spec's
// hint, then auto (accounting for the per-run goroutine count under the
// program's resolved engine).
func resolveWorkers(optWorkers int, sp scenario.Spec, lps int) int {
	if optWorkers > 0 {
		return optWorkers
	}
	if sp.Limits.Workers > 0 {
		return sp.Limits.Workers
	}
	return fleet.WorkersFor(1 + lps)
}

// runLimitFor returns the virtual-time bound for one run under the spec.
func runLimitFor(sp scenario.Spec) sim.Time {
	if ms := sp.Limits.RunLimitMs; ms > 0 {
		return sim.Time(sim.Duration(ms) * sim.Millisecond)
	}
	return RunLimit
}

// fnvFold streams vals into a rolling FNV-1a state (8 bytes per value,
// little-endian); 0 means "unstarted" and folds from the FNV offset basis.
func fnvFold(h uint64, vals ...uint64) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

// checkpointEvery is how many streamed results separate checkpoint writes
// (the final state is always written).
const checkpointEvery = 16

// saveEvery resolves the option against the default.
func saveEvery(opt RunOptions) int {
	if opt.CheckpointEvery > 0 {
		return opt.CheckpointEvery
	}
	return checkpointEvery
}

// --- application programs ---

// appProgress is the application-program checkpoint payload: outcomes for
// the first Done jobs in job order, plus the rolling fingerprint over them.
type appProgress struct {
	Done     int          `json:"done"`
	Fleet    uint64       `json:"fleet_fnv"`
	Outcomes []AppOutcome `json:"outcomes"`
}

// foldOutcome streams one job's outcome into the rolling program
// fingerprint. Outcomes must arrive in job order (fleet.Run's emit
// contract), which makes the fingerprint independent of pool width and of
// how many resumes it took to finish the program.
func foldOutcome(h uint64, j scenario.Job, o AppOutcome) uint64 {
	h = fnvFold(h, uint64(j.Index), uint64(len(o.Els)))
	for _, el := range o.Els {
		h = fnvFold(h, uint64(el))
	}
	return fnvFold(h, o.Takes, o.Upcalls)
}

// runAppProgram fans the program's application jobs across the fleet, one
// private engine per run, warm coroutine pools per worker, results folded
// in job order.
func runAppProgram(w io.Writer, prog *scenario.Program, opt RunOptions, lps int) (*ProgramResult, error) {
	sp := prog.Spec
	workers := resolveWorkers(opt.Workers, sp, lps)
	limit := runLimitFor(sp)
	pr := &ProgramResult{Prog: prog}
	if sp.Workload.Baseline {
		pr.Baseline = seqTime(nbodyConfigFor(sp, scenario.Job{MemPct: 100}), sp.Machine.CPUs, limit, lps)
	}
	var progress appProgress
	if opt.Checkpoint != "" {
		if _, err := scenario.LoadCheckpoint(opt.Checkpoint, prog.Key, &progress); err != nil {
			return nil, err
		}
		if progress.Done < 0 || progress.Done > len(prog.Jobs) || len(progress.Outcomes) != progress.Done {
			progress = appProgress{} // truncated payload: start over
		}
	}
	n := len(prog.Jobs)
	fprintf(w, "scenario %s: %d job(s) on %d worker(s)\n", sp.Name, n, workers)
	if progress.Done > 0 {
		fprintf(w, "  resuming from checkpoint %s: %d/%d jobs done\n", opt.Checkpoint, progress.Done, n)
	}
	if todo := n - progress.Done; todo > 0 {
		base := progress.Done
		pools := newWorkerPools(workers, todo)
		defer pools.Close()
		sinceSave, every := 0, saveEvery(opt)
		fleet.Run(workers, todo, func(job, worker int) AppOutcome {
			return runAppJob(pools.get(worker), sp, prog.Jobs[base+job], limit, lps)
		}, func(res fleet.Result[AppOutcome]) {
			j := prog.Jobs[base+res.Job]
			progress.Outcomes = append(progress.Outcomes, res.Value)
			progress.Done++
			progress.Fleet = foldOutcome(progress.Fleet, j, res.Value)
			fprintf(w, "  %-28s w%-2d %s\n", j.Label, res.Worker, renderOutcome(pr.Baseline, res.Value))
			if opt.Checkpoint != "" {
				if sinceSave++; sinceSave >= every {
					sinceSave = 0
					_ = scenario.SaveCheckpoint(opt.Checkpoint, prog.Key, sp.Name, &progress)
				}
			}
		})
		if opt.Checkpoint != "" {
			if err := scenario.SaveCheckpoint(opt.Checkpoint, prog.Key, sp.Name, &progress); err != nil {
				return nil, err
			}
		}
	}
	pr.Outcomes = progress.Outcomes
	pr.Fingerprint = progress.Fleet
	fprintf(w, "scenario %s: %d/%d job(s) done, program fingerprint %016x\n", sp.Name, progress.Done, n, pr.Fingerprint)
	return pr, nil
}

// renderOutcome formats one application outcome for the streamed job line.
func renderOutcome(baseline sim.Duration, o AppOutcome) string {
	if len(o.Els) == 0 {
		return fmt.Sprintf("takes=%d upcalls=%d", o.Takes, o.Upcalls)
	}
	parts := make([]string, len(o.Els))
	for i, el := range o.Els {
		parts[i] = fmt.Sprintf("%.2fs", el.Seconds())
	}
	s := strings.Join(parts, " ")
	if baseline > 0 {
		s += fmt.Sprintf("  speedup %.2f", float64(baseline)/float64(avgDuration(o.Els)))
	}
	return s
}

// avgDuration is the mean of els (integer division, matching the paper
// tables' averaging).
func avgDuration(els []sim.Duration) sim.Duration {
	var sum sim.Duration
	for _, el := range els {
		sum += el
	}
	return sum / sim.Duration(len(els))
}

// systemOf maps a spec system id to the harness system name.
func systemOf(id string) SystemName {
	switch id {
	case scenario.SysTopaz:
		return SysTopaz
	case scenario.SysOrigFT:
		return SysOrigFT
	case scenario.SysNewFT:
		return SysNewFT
	}
	panic("exp: unknown scenario system " + id)
}

// nbodyConfigFor builds one job's N-body configuration: the calibrated
// default, the spec's problem-shape overrides, and the job's memory point.
func nbodyConfigFor(sp scenario.Spec, job scenario.Job) nbody.Config {
	cfg := nbody.DefaultConfig()
	if nb := sp.Workload.Nbody; nb != nil {
		if nb.N > 0 {
			cfg.N = nb.N
		}
		if nb.Steps > 0 {
			cfg.Steps = nb.Steps
		}
		if nb.Seed != 0 {
			cfg.Seed = nb.Seed
		}
	}
	cfg.MemFraction = job.MemPct / 100
	return cfg
}

// costsFor returns the spec's cost table, or nil for the kernel default.
func costsFor(sp scenario.Spec) *machine.Costs {
	var c *machine.Costs
	if sp.Machine.EffCosts() == scenario.CostsTuned {
		c = machine.TunedCosts()
	}
	if sp.Machine.DiskLatencyMs > 0 {
		if c == nil {
			c = machine.DefaultCosts()
		}
		c.DiskLatency = sim.Ms(sp.Machine.DiskLatencyMs)
	}
	return c
}

// runAppJob executes one application job on a private engine and returns
// its outcome.
func runAppJob(pool *sim.Pool, sp scenario.Spec, job scenario.Job, limit sim.Time, lps int) AppOutcome {
	if sp.Workload.Kind == scenario.KindBursty {
		return runBurstyJob(pool, sp, job, limit, lps)
	}
	cfg := nbodyConfigFor(sp, job)
	costs := costsFor(sp)
	if job.Copies == 1 && costs == nil && job.Policy == scenario.PolicySpace &&
		sp.Machine.CPUs == MachineCPUs {
		// The uniprogrammed default-machine cell: the launcher the traced
		// smoke runs and warm-golden tests also drive. launchOnEngine
		// hardcodes the MachineCPUs machine, so any other machine shape must
		// take the general path below.
		return AppOutcome{Els: []sim.Duration{runOne(pool, systemOf(job.System), cfg, job.Procs, limit, lps)}}
	}
	return runCellJob(pool, sp, job, cfg, costs, limit, lps)
}

// runCellJob is the general application cell: Copies instances of the
// application multiprogrammed on one machine under the job's system,
// allocation policy, and the spec's cost table. One copy on the default
// table is exactly launchOnEngine's construction; the multiprogrammed cells
// are Table 5's and the allocator ablation's.
func runCellJob(pool *sim.Pool, sp scenario.Spec, job scenario.Job, cfg nbody.Config, costs *machine.Costs, limit sim.Time, lps int) AppOutcome {
	eng := pool.NewEngine(engOptsLPs(job.Label, lps)...)
	defer eng.Close()
	name := func(i int) string {
		if job.Copies == 1 {
			return "nbody"
		}
		return fmt.Sprintf("nbody%d", i)
	}
	runs := make([]*nbody.Run, job.Copies)
	switch systemOf(job.System) {
	case SysTopaz:
		k := kernel.New(eng, kernel.Config{CPUs: sp.Machine.CPUs, Costs: costs})
		StartDaemonNative(k)
		for i := range runs {
			spc := k.NewSpace(name(i), false)
			spc.CPUCap = job.Procs
			runs[i] = nbody.Launch(nbody.KThreadSystem{K: k, SP: spc}, cfg)
		}
	case SysOrigFT:
		k := kernel.New(eng, kernel.Config{CPUs: sp.Machine.CPUs, Costs: costs})
		StartDaemonNative(k)
		for i := range runs {
			s := uthread.OnKernelThreads(k, k.NewSpace(name(i), false), job.Procs, uthread.Options{})
			runs[i] = nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
			s.Start()
		}
	case SysNewFT:
		k := core.New(eng, core.Config{CPUs: sp.Machine.CPUs, Costs: costs})
		if job.Policy == scenario.PolicyFCFS {
			k.SetPolicy(core.FirstComeFCFS)
		}
		StartDaemonSA(k)
		for i := range runs {
			s := uthread.OnActivations(k, name(i), 0, job.Procs, uthread.Options{})
			runs[i] = nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
			s.Start()
		}
	}
	eng.RunUntil(limit)
	out := AppOutcome{Els: make([]sim.Duration, job.Copies)}
	for i, r := range runs {
		if !r.Done {
			panic(fmt.Sprintf("exp: %s copy %d did not finish within the run limit", job.Label, i))
		}
		out.Els[i] = r.Elapsed()
	}
	return out
}

// runBurstyJob is the §4.2 hysteresis cell: a bursty compute/IO application
// sharing the machine with a processor-hungry competitor, the idle-spin
// hysteresis set by the job. The measurement is re-allocation churn (kernel
// takes and upcalls), not elapsed time.
func runBurstyJob(pool *sim.Pool, sp scenario.Spec, job scenario.Job, limit sim.Time, lps int) AppOutcome {
	eng := pool.NewEngine(engOptsLPs(job.Label, lps)...)
	defer eng.Close()
	costs := costsFor(sp)
	if costs == nil {
		costs = machine.DefaultCosts()
	}
	k := core.New(eng, core.Config{CPUs: sp.Machine.CPUs, Costs: costs})
	hungry := uthread.OnActivations(k, "hungry", 0, sp.Machine.CPUs, uthread.Options{})
	for i := 0; i < sp.Machine.CPUs; i++ {
		hungry.Spawn("spin", func(t *uthread.Thread) { t.Exec(3 * sim.Second) })
	}
	hungry.Start()
	bursty := uthread.OnActivations(k, "bursty", 0, 1, uthread.Options{Hysteresis: sim.Us(job.HysteresisUs)})
	done := false
	bursty.Spawn("burst", func(t *uthread.Thread) {
		for i := 0; i < 100; i++ {
			t.Exec(sim.Ms(5))
			t.BlockIO()
		}
		done = true
	})
	bursty.Start()
	for !done && eng.Now() < limit {
		eng.RunFor(10 * sim.Millisecond)
	}
	if !done {
		panic(fmt.Sprintf("exp: %s did not finish within the run limit", job.Label))
	}
	return AppOutcome{Takes: k.Stats.Takes, Upcalls: k.Stats.Upcalls}
}

// mustProgram compiles a canonical spec (the built-ins are valid by
// construction and by test).
func mustProgram(sp scenario.Spec) *scenario.Program {
	prog, err := scenario.Compile(sp)
	if err != nil {
		panic("exp: canonical spec " + sp.Name + ": " + err.Error())
	}
	return prog
}

// runCanonical runs a canonical spec silently at the battery pool width.
func runCanonical(sp scenario.Spec) *ProgramResult {
	pr, err := RunProgram(io.Discard, mustProgram(sp), RunOptions{Workers: Workers})
	if err != nil {
		panic("exp: canonical spec " + sp.Name + ": " + err.Error())
	}
	return pr
}

// assembleSeries groups an application program's outcomes into one figure
// series per system, in job order, point Y values computed by y.
func assembleSeries(pr *ProgramResult, x func(scenario.Job) float64, y func(scenario.Job, AppOutcome) float64) []Series {
	var out []Series
	for i, j := range pr.Prog.Jobs {
		sys := systemOf(j.System)
		if len(out) == 0 || out[len(out)-1].System != sys {
			out = append(out, Series{System: sys})
		}
		last := &out[len(out)-1]
		last.Points = append(last.Points, Point{X: x(j), Y: y(j, pr.Outcomes[i])})
	}
	return out
}

// --- chaos programs ---

// SweepOptions parameterizes ChaosSweepOpts beyond the seed range.
type SweepOptions struct {
	// Workers is the fleet pool width (0 = auto).
	Workers int
	// Checkpoint, when non-empty, is a JSON file recording sweep progress.
	// A sweep finding a checkpoint written by the same spec resumes after
	// the seeds already done — re-invoking with a larger -seeds extends a
	// finished sweep — and updates the file as results stream in, so an
	// interrupted wide sweep loses at most the in-flight seeds. A
	// checkpoint written by a different spec is rejected with an error.
	Checkpoint string
}

// ChaosSweep runs seeds first..first+n-1 on a pool of workers (0 = one per
// CPU) and returns the number of failed seeds. See ChaosSweepOpts.
func ChaosSweep(w io.Writer, first, n int64, workers int) (failed int) {
	ag, err := ChaosSweepOpts(w, first, n, SweepOptions{Workers: workers})
	if err != nil {
		panic("exp: chaos sweep: " + err.Error()) // no checkpoint in play: unreachable
	}
	return int(ag.Failed)
}

// ChaosSweepOpts is the chaos battery: the canonical chaos spec for the
// seed range, compiled and run through the scenario pipeline. Each sweep
// worker owns one warm RunContext recycled across all its seeds, and
// results stream back in seed order — one line per seed, full violation
// reports for failures, and a bounded-memory aggregate (rolling fleet
// fingerprint, failure attribution by seed, merged latency histograms) that
// doubles as the checkpoint payload.
//
// Each seed still executes on a private engine/trace/injector stack (one
// per worker, recycled), so per-seed fingerprints are byte-identical to a
// sequential sweep and to cold one-shot runs; only wall-clock and the
// worker column vary with the pool.
func ChaosSweepOpts(w io.Writer, first, n int64, opt SweepOptions) (*SweepAggregate, error) {
	pr, err := RunSpec(w, scenario.ChaosSpec(first, n), RunOptions{Workers: opt.Workers, Checkpoint: opt.Checkpoint})
	if err != nil {
		return nil, err
	}
	return pr.Sweep, nil
}

// runChaosProgram drives a compiled chaos program: one warm RunContext per
// worker, results folded in seed order, checkpoints keyed by the spec. A
// sharded spec runs only its own seed subrange (the compiled jobs), under
// its shard-suffixed resume key.
func runChaosProgram(w io.Writer, prog *scenario.Program, opt RunOptions, lps int) (*ProgramResult, error) {
	sp := prog.Spec
	f := sp.Faults
	first, n := f.FirstSeed, f.Seeds
	if sh := sp.Shard; sh != nil {
		first, n = scenario.ShardRange(first, n, sh.Index, sh.Of)
	}
	workers := resolveWorkers(opt.Workers, sp, lps)
	mutate := chaosMutator(f.Ablate)
	replayEvery := f.EffReplayEvery()
	ag := &SweepAggregate{First: first}
	if opt.Checkpoint != "" {
		var saved SweepAggregate
		found, err := scenario.LoadCheckpoint(opt.Checkpoint, prog.Key, &saved)
		if err != nil {
			return nil, err
		}
		if found && saved.First == first && saved.Done >= 0 {
			ag = &saved
		}
	}
	result := func() *ProgramResult {
		return &ProgramResult{Prog: prog, Sweep: ag, Fingerprint: ag.Fleet}
	}
	if ag.Done > n {
		// The checkpoint covers more than this request; report what was
		// asked for without re-running (failure count reflects the full
		// checkpointed range, which contains the requested one).
		fprintf(w, "chaos sweep: seeds %d..%d already done per checkpoint %s (%d done, %d failed)\n",
			first, first+n-1, opt.Checkpoint, ag.Done, ag.Failed)
		return result(), nil
	}
	ag.Want = n
	todo := n - ag.Done
	fprintf(w, "chaos sweep: seeds %d..%d on %d worker(s), warm run contexts (auditor on, %s)\n",
		first, first+n-1, workers, replayMode(replayEvery))
	if ag.Done > 0 {
		fprintf(w, "  resuming from checkpoint %s: %d/%d seeds done, %d failed; continuing at seed %d\n",
			opt.Checkpoint, ag.Done, n, ag.Failed, first+ag.Done)
	}
	if todo == 0 {
		if opt.Checkpoint != "" { // record Want even when nothing runs
			if err := scenario.SaveCheckpoint(opt.Checkpoint, prog.Key, sp.Name, ag); err != nil {
				return nil, err
			}
		}
		reportSweep(w, ag, n, 0, 0)
		return result(), nil
	}
	results, err := openResults(opt.Results)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	base := first + ag.Done
	// One warm RunContext per worker: the slot is created by — and stays
	// confined to — the worker goroutine that owns it, so successive seeds
	// recycle the whole engine/kernel/chaos stack with no cross-worker
	// sharing. Fleet clamps the pool width to the job count, so unused
	// slots just stay nil.
	ctxs := make([]*RunContext, workers)
	defer func() {
		for _, rc := range ctxs {
			rc.Close()
		}
	}()
	sinceSave, every := 0, saveEvery(opt)
	fleet.Run(workers, int(todo), func(job, worker int) SeedReport {
		if ctxs[worker] == nil {
			ctxs[worker] = newRunContextFor(sp, lps)
		}
		seed := base + int64(job)
		if mutate != nil {
			return ctxs[worker].RunSeedReportMutated(seed, mutate)
		}
		return ctxs[worker].RunSeedReportReplay(seed, replaySeed(seed, replayEvery))
	}, func(res fleet.Result[SeedReport]) {
		rep := res.Value
		status := "ok"
		if !rep.OK() {
			status = "FAIL"
		}
		fprintf(w, "  seed %3d  w%-2d fp %v  preempts %4d  threads %2d/%2d  t=%8.0fms  %s\n",
			rep.Seed, res.Worker, rep.Fingerprint, rep.Preempts, rep.Finished, rep.Total, rep.End.Ms(), status)
		if rep.Fingerprint != rep.Replay {
			fprintf(w, "       nondeterministic: replay fingerprint %v\n", rep.Replay)
		}
		for _, v := range rep.Violations {
			fprintf(w, "%v", v.Error())
		}
		ag.fold(&rep)
		results.add(&rep)
		if opt.Checkpoint != "" {
			if sinceSave++; sinceSave >= every {
				sinceSave = 0
				results.flush() // lines for checkpointed seeds are durable too
				_ = scenario.SaveCheckpoint(opt.Checkpoint, prog.Key, sp.Name, ag)
			}
		}
	})
	if opt.Checkpoint != "" {
		if err := scenario.SaveCheckpoint(opt.Checkpoint, prog.Key, sp.Name, ag); err != nil {
			results.close()
			return nil, err
		}
	}
	if err := results.close(); err != nil {
		return nil, err
	}
	reportSweep(w, ag, n, todo, time.Since(start))
	return result(), nil
}

// replaySeed decides whether one seed gets the replay-divergence second
// run under the spec's replay period (see scenario.ParseReplay): a pure
// function of the seed, so shards and resumed sweeps sample identically.
func replaySeed(seed, every int64) bool {
	switch {
	case every == 1:
		return true
	case every <= 0:
		return false
	}
	return seed%every == 0
}

// replayMode renders the replay period for the sweep header line.
func replayMode(every int64) string {
	switch {
	case every == 1:
		return "each seed run twice"
	case every <= 0:
		return "replay off"
	}
	return fmt.Sprintf("replay sampled on seeds divisible by %d", every)
}

// newRunContextFor builds a warm chaos context honoring the spec's machine
// and storm overrides and the program's resolved engine; the canonical spec
// leaves them zero, keeping the pinned seeded shape (CPUs drawn 2..5, 20s
// storm, 5s drain).
func newRunContextFor(sp scenario.Spec, lps int) *RunContext {
	rc := NewRunContextLPs(lps)
	rc.CPUs = sp.Machine.CPUs
	if sp.Faults.StormMs > 0 {
		rc.Storm = sp.Faults.StormMs
	}
	if sp.Faults.DrainMs > 0 {
		rc.Drain = sp.Faults.DrainMs
	}
	return rc
}

// chaosMutator maps a spec ablation id to its kernel mutation.
func chaosMutator(ablate string) func(*core.Kernel) {
	switch ablate {
	case scenario.AblateNoGrant:
		return func(k *core.Kernel) { k.AblateNoGrant = true }
	case scenario.AblateDropEvent:
		return func(k *core.Kernel) { k.AblateDropEvent = true }
	}
	return nil
}

// reportSweep renders the sweep tail: throughput over the seeds actually
// run this session against the total requested range, the rolling fleet
// fingerprint, merged latency quantiles, and failures attributed by seed.
func reportSweep(w io.Writer, ag *SweepAggregate, n, ran int64, elapsed time.Duration) {
	if ran > 0 && elapsed > 0 {
		fprintf(w, "chaos sweep: %d/%d seeds done (%d run in %.2fs, %.1f seeds/sec); fleet fingerprint %016x\n",
			ag.Done, n, ran, elapsed.Seconds(), float64(ran)/elapsed.Seconds(), ag.Fleet)
	} else {
		fprintf(w, "chaos sweep: %d/%d seeds done; fleet fingerprint %016x\n", ag.Done, n, ag.Fleet)
	}
	if ag.UpcallDispatch.N > 0 {
		fprintf(w, "  latency (merged over first runs): upcall-dispatch p50=%dns p99=%dns  ready-wait p50=%dns p99=%dns  block-unblock p50=%dns p99=%dns\n",
			ag.UpcallDispatch.Quantile(0.50), ag.UpcallDispatch.Quantile(0.99),
			ag.ReadyWait.Quantile(0.50), ag.ReadyWait.Quantile(0.99),
			ag.BlockUnblock.Quantile(0.50), ag.BlockUnblock.Quantile(0.99))
	}
	if ag.Failed == 0 {
		fprintf(w, "chaos sweep: all %d seeds passed\n", ag.Done)
		return
	}
	fprintf(w, "chaos sweep: %d of %d seeds FAILED — failing seeds: %v", ag.Failed, ag.Done, ag.Seeds)
	if int64(len(ag.Seeds)) < ag.Failed {
		fprintf(w, " (first %d shown)", len(ag.Seeds))
	}
	fprintf(w, "\n")
}
