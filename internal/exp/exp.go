// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation, each returning structured results with
// the paper's published values alongside the measured ones, plus the
// ablations DESIGN.md calls out. The cmd/saexp binary and the repository's
// benchmarks drive these.
package exp

import (
	"fmt"
	"io"

	"schedact/internal/core"
	"schedact/internal/fleet"
	"schedact/internal/kernel"
	"schedact/internal/machine"
	"schedact/internal/sim"
	"schedact/internal/stats"
	"schedact/internal/trace"
	"schedact/internal/uthread"

	"schedact/internal/apps/micro"
	"schedact/internal/apps/nbody"
)

// MachineCPUs is the simulated Firefly's processor count.
const MachineCPUs = 6

// Workers is the pool width the experiment batteries fan their independent
// application runs across (internal/fleet); saexp -workers overrides it.
// Every run executes on its own engine and the series are assembled in job
// order, so results are byte-identical for any value — only wall-clock
// changes.
var Workers = fleet.DefaultWorkers()

// Daemon parameters: Topaz "has several daemon threads which wake up
// periodically, execute for a short time, and then go back to sleep"
// (§5.3).
const (
	DaemonPeriod = 50 * sim.Millisecond
	DaemonBurst  = 2 * sim.Millisecond
	DaemonPrio   = 4
)

// RunLimit bounds any single experiment run in virtual time.
const RunLimit = sim.Time(30 * 60 * sim.Second)

// SystemName identifies the three application-level systems of §5.3.
type SystemName string

const (
	SysTopaz  SystemName = "Topaz threads"
	SysOrigFT SystemName = "orig FastThreads"
	SysNewFT  SystemName = "new FastThreads"
)

// Systems lists them in the paper's presentation order.
var Systems = []SystemName{SysTopaz, SysOrigFT, SysNewFT}

// StartDaemonNative installs the periodic daemon on the native kernel: a
// high-priority kernel thread whose wake-ups the oblivious scheduler places
// without regard to idle processors.
func StartDaemonNative(k *kernel.Kernel) {
	sp := k.NewSpace("daemon", false)
	sp.Spawn("daemon", DaemonPrio, func(t *kernel.KThread) {
		for {
			t.SleepFor(DaemonPeriod)
			t.Exec(DaemonBurst)
		}
	})
}

// StartDaemonSA installs the daemon on the scheduler-activation kernel as a
// high-priority address space that periodically demands one processor, runs
// its burst, and gives the processor back. Because the allocator is
// explicit, these wake-ups disturb the application only when no processor
// is idle.
func StartDaemonSA(k *core.Kernel) {
	var sp *core.Space
	sp = k.NewSpace("daemon", DaemonPrio, core.ClientFunc(func(act *core.Activation, events []core.Event) {
		for _, ev := range events {
			if ev.Kind == core.EvPreempted && ev.Act != nil {
				// Recover an interrupted burst: finish it here.
				if w := ev.Act.TakeWorker(); w != nil {
					_ = w // the burst's remaining demand is in the worker
				}
				ev.Act.Discard()
			}
		}
		act.Context().Exec(DaemonBurst)
		// YieldProcessor also drops the registered demand to zero; setting
		// demand first would let the allocator preempt this very vessel out
		// from under the running downcall.
		act.YieldProcessor()
	}))
	// Periodic demand pulses, driven by a kernel timer.
	var pulse func()
	pulse = func() {
		sp.KernelSetDemand(1)
		k.Eng.After(DaemonPeriod, "daemon-pulse", pulse)
	}
	k.Eng.After(DaemonPeriod, "daemon-pulse", pulse)
	sp.Start()
	sp.KernelSetDemand(0)
}

// statsSink, when non-nil, is attached as a close hook to every engine the
// harness constructs (see SetStatsSink).
var statsSink func(label string, reg *stats.Registry)

// SetStatsSink installs fn as the stats sink for every engine the
// experiment harness — and the micro-benchmarks it drives — constructs from
// here on: each labelled run engine gets a close hook delivering its
// private metrics registry to fn as the run is torn down. This replaces the
// retired process-wide global the sim package once exported: attachment is
// per engine at construction time, so engines built outside the harness
// (chaos sweeps, library users) are untouched. Runs close concurrently under the fleet
// pool, so fn must be safe for concurrent calls. A nil fn uninstalls the
// sink.
func SetStatsSink(fn func(label string, reg *stats.Registry)) {
	statsSink = fn
	micro.StatsSink = fn
}

// EngineLPs selects the engine the harness constructs for every run: 0 (the
// default) keeps the reference sequential engine; n >= 1 selects the
// conservative PDES engine with the run's event queue partitioned across n
// logical processes (saexp -engine=par). The simulated results — figures,
// tables, chaos fingerprints — are byte-identical for every value; only
// host wall-clock changes.
var EngineLPs int

// The microbenchmarks construct their own engines; route the harness's
// engine selection through to them (micro cannot import exp).
func init() { micro.EngineOpts = parEngineOpts }

// SubjectAffinity is the harness's static routing function for the PDES
// engine: subjects — per-thread timers, per-CPU quanta, per-space daemons —
// hash to a stable LP, so each simulated entity's far-future events file
// into the same partition. Subjectless events have no statically known
// target and route through the shared LP. Routing never affects the
// timeline (sim.WithAffinity), so the hash needs no quality beyond spread.
func SubjectAffinity(_ sim.Kind, subject string) int {
	if subject == "" {
		return -1
	}
	h := uint32(2166136261)
	for i := 0; i < len(subject); i++ {
		h = (h ^ uint32(subject[i])) * 16777619
	}
	return int(h & 0x7fffffff)
}

// parEngineOpts returns the PDES engine options selected by EngineLPs, or
// nil for the reference engine.
func parEngineOpts() []sim.Option { return parEngineOptsN(EngineLPs) }

// parEngineOptsN is parEngineOpts for an explicit LP count. The lookahead
// comes from the calibrated cost table: the minimum cross-CPU charge is the
// guaranteed lower bound on cross-LP event latency in the simulated machine.
func parEngineOptsN(n int) []sim.Option {
	if n <= 0 {
		return nil
	}
	return []sim.Option{
		sim.WithLPs(n),
		sim.WithLookahead(machine.DefaultCosts().CrossLPLookahead()),
		sim.WithAffinity(SubjectAffinity),
	}
}

// engOpts builds the options for one labelled run engine, attaching the
// stats-sink close hook when a sink is installed and the PDES partition
// when EngineLPs selects one.
func engOpts(label string) []sim.Option { return engOptsLPs(label, EngineLPs) }

// engOptsLPs is engOpts for an explicit LP count — the seam the scenario
// runner threads a spec-bound engine selection through, so concurrent
// programs never mutate (or race on) the EngineLPs global.
func engOptsLPs(label string, lps int) []sim.Option {
	opts := []sim.Option{sim.WithLabel(label)}
	if sink := statsSink; sink != nil {
		opts = append(opts, sim.OnClose(func(e sim.Engine) {
			sink(e.Label(), e.Metrics())
		}))
	}
	return append(opts, parEngineOptsN(lps)...)
}

// --- application launchers ---

// seqTime runs the sequential implementation on a cpus-processor machine
// and returns its execution time.
func seqTime(cfg nbody.Config, cpus int, limit sim.Time, lps int) sim.Duration {
	eng := sim.NewEngine(engOptsLPs("sequential", lps)...)
	defer eng.Close()
	k := kernel.New(eng, kernel.Config{CPUs: cpus})
	StartDaemonNative(k)
	r := nbody.RunSequential(k.NewSpace("seq", false), cfg)
	eng.RunUntil(limit)
	if !r.Done {
		panic("exp: sequential run did not finish")
	}
	return r.Elapsed()
}

// launchOne starts one application instance of the given system on fresh
// kernels sized for the experiment. procs caps the application's
// parallelism (Figure 1's x-axis); the machine always has MachineCPUs
// processors.
func launchOne(sys SystemName, cfg nbody.Config, procs int, tr *trace.Log) (eng sim.Engine, run *nbody.Run) {
	return launchOneIn(nil, sys, cfg, procs, tr, EngineLPs)
}

// launchOneIn is launchOne with the run's engine drawing coroutine
// goroutines from pool (nil = unpooled) and an explicit LP selection.
func launchOneIn(pool *sim.Pool, sys SystemName, cfg nbody.Config, procs int, tr *trace.Log, lps int) (eng sim.Engine, run *nbody.Run) {
	eng = pool.NewEngine(engOptsLPs(fmt.Sprintf("%s P=%d", sys, procs), lps)...)
	return eng, launchOnEngine(eng, sys, cfg, procs, tr)
}

// launchOnEngine is launchOneIn's kernel-and-application half on a
// caller-supplied engine — the seam the warm-golden tests use to drive the
// Figure 1 workloads on one recycled engine instead of a fresh one per run.
func launchOnEngine(eng sim.Engine, sys SystemName, cfg nbody.Config, procs int, tr *trace.Log) (run *nbody.Run) {
	switch sys {
	case SysTopaz:
		k := kernel.New(eng, kernel.Config{CPUs: MachineCPUs, Trace: tr})
		StartDaemonNative(k)
		sp := k.NewSpace("nbody", false)
		sp.CPUCap = procs
		run = nbody.Launch(nbody.KThreadSystem{K: k, SP: sp}, cfg)
	case SysOrigFT:
		k := kernel.New(eng, kernel.Config{CPUs: MachineCPUs, Trace: tr})
		StartDaemonNative(k)
		s := uthread.OnKernelThreads(k, k.NewSpace("nbody", false), procs, uthread.Options{Trace: tr})
		run = nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
		s.Start()
	case SysNewFT:
		k := core.New(eng, core.Config{CPUs: MachineCPUs, Trace: tr})
		StartDaemonSA(k)
		s := uthread.OnActivations(k, "nbody", 0, procs, uthread.Options{Trace: tr})
		run = nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
		s.Start()
	default:
		panic("exp: unknown system " + sys)
	}
	return run
}

// StatsTrace, when set, gives every launched application run a private
// trace stream consumed by the latency deriver, so each run's stats
// snapshot (saexp -stats) includes the upcall-dispatch, ready-wait, and
// block→unblock histograms. Off by default: untraced runs keep their
// nil-log fast path.
var StatsTrace bool

// workerPools is one optional coroutine-goroutine pool per fleet worker.
// Each pool is created lazily by — and stays confined to — the worker
// goroutine that owns the slot, so successive runs on the same worker reuse
// warm goroutines. The caller Closes the set after the fleet call returns
// (fleet.Run/Map return only after every worker has finished, which orders
// the Close after all pool use).
type workerPools []*sim.Pool

// newWorkerPools sizes the set exactly as fleet normalizes its pool width
// for n jobs, so every worker index the fleet reports has a slot.
func newWorkerPools(workers, n int) workerPools {
	if workers <= 0 {
		workers = fleet.DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return make(workerPools, workers)
}

// get returns the worker's pool, creating it on first use.
func (ps workerPools) get(worker int) *sim.Pool {
	if ps[worker] == nil {
		ps[worker] = sim.NewPool()
	}
	return ps[worker]
}

// Close retires every pool's idle goroutines.
func (ps workerPools) Close() {
	for _, p := range ps {
		p.Close()
	}
}

// runOne executes one application instance to completion and returns its
// execution time. pool may be nil (unpooled).
func runOne(pool *sim.Pool, sys SystemName, cfg nbody.Config, procs int, limit sim.Time, lps int) sim.Duration {
	var tr *trace.Log
	if StatsTrace {
		tr = trace.New(64)
	}
	eng, run := launchOneIn(pool, sys, cfg, procs, tr, lps)
	defer eng.Close()
	if tr != nil {
		trace.NewLatencies(tr, eng.Metrics())
	}
	eng.RunUntil(limit)
	if !run.Done {
		panic(fmt.Sprintf("exp: %s run (P=%d) did not finish within the run limit", sys, procs))
	}
	return run.Elapsed()
}

// fprintf writes formatted output, ignoring errors (render helpers).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
