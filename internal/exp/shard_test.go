package exp

import (
	"io"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"schedact/internal/chaos"
	"schedact/internal/scenario"
)

// miniSweepSpec is a seconds-cheap multi-seed chaos spec (short storm) for
// shard/merge plumbing tests: verdicts and per-seed data are deterministic,
// only the sweep is far shorter than the canonical battery.
func miniSweepSpec(name string, first, seeds int64) scenario.Spec {
	return scenario.Spec{
		Name:     name,
		Workload: scenario.Workload{Kind: scenario.KindMix},
		Faults:   &scenario.Faults{FirstSeed: first, Seeds: seeds, StormMs: 50, DrainMs: 50},
	}
}

// TestShardOneWayMatchesPinnedTable pins the tentpole's byte-identity
// anchor: a 1-way shard of the canonical chaos spec produces the same fleet
// fingerprint as the unsharded sweep — the pinned-table fold — and merging
// its single checkpoint passes that fingerprint through flat (no
// hierarchical re-fold for k=1).
func TestShardOneWayMatchesPinnedTable(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are slow in -short mode")
	}
	n := int64(len(pinnedFingerprints))
	var want uint64
	for seed := int64(1); seed <= n; seed++ {
		fp, err := strconv.ParseUint(pinnedFingerprints[seed], 16, 64)
		if err != nil {
			t.Fatalf("pinned fingerprint for seed %d is not hex: %v", seed, err)
		}
		want = fnvFold(want, uint64(seed), fp)
	}
	ck := filepath.Join(t.TempDir(), "shard.json")
	pr, err := RunSpec(io.Discard, scenario.WithShard(scenario.ChaosSpec(1, n), 1, 1),
		RunOptions{Workers: 2, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Sweep == nil || pr.Sweep.Failed != 0 || pr.Sweep.Done != n || pr.Sweep.Want != n {
		t.Fatalf("1-way shard sweep: %+v", pr.Sweep)
	}
	if pr.Fingerprint != want {
		t.Errorf("1-way shard fingerprint %016x != pinned-table fold %016x — sharding must not move per-seed results",
			pr.Fingerprint, want)
	}
	m, err := MergeShardFiles(io.Discard, []string{ck})
	if err != nil {
		t.Fatal(err)
	}
	if m.Fleet != want {
		t.Errorf("single-shard merge fingerprint %016x != flat fleet %016x (k=1 must pass through)", m.Fleet, want)
	}
}

// TestShardedSweepMergesToUnsharded runs one mini sweep unsharded and as 3
// shard processes' worth of checkpoints, then merges: every k-independent
// aggregate (Done, Failed, failure attribution, thread counts, histograms)
// must equal the unsharded sweep's exactly, and the k>1 merged fingerprint
// must equal the documented hierarchical fold over the per-shard digests.
func TestShardedSweepMergesToUnsharded(t *testing.T) {
	spec := miniSweepSpec("mini-sharded", 3, 5)
	whole, err := RunSpec(io.Discard, spec, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const of = 3
	dir := t.TempDir()
	paths := make([]string, of)
	shards := make([]ShardAggregate, of)
	for i := 1; i <= of; i++ {
		paths[i-1] = filepath.Join(dir, "shard"+strconv.Itoa(i)+".json")
		pr, err := RunSpec(io.Discard, scenario.WithShard(spec, i, of),
			RunOptions{Workers: 1, Checkpoint: paths[i-1]})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, of, err)
		}
		first, width := scenario.ShardRange(3, 5, i, of)
		if pr.Sweep.First != first || pr.Sweep.Done != width || pr.Sweep.Want != width {
			t.Fatalf("shard %d/%d ran seeds %d+%d (want %d), planned %d+%d",
				i, of, pr.Sweep.First, pr.Sweep.Done, pr.Sweep.Want, first, width)
		}
		sh, err := LoadShardAggregate(paths[i-1])
		if err != nil {
			t.Fatalf("shard %d/%d checkpoint: %v", i, of, err)
		}
		shards[i-1] = sh
	}

	m, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	ws := whole.Sweep
	if m.First != ws.First || m.Done != ws.Done || m.Want != ws.Want ||
		m.Failed != ws.Failed || !reflect.DeepEqual(m.Seeds, ws.Seeds) || m.Runs != ws.Runs {
		t.Fatalf("merged aggregate drifted from the unsharded sweep:\nmerged    %+v\nunsharded %+v",
			m.SweepAggregate, *ws)
	}
	if !reflect.DeepEqual(m.UpcallDispatch, ws.UpcallDispatch) ||
		!reflect.DeepEqual(m.ReadyWait, ws.ReadyWait) ||
		!reflect.DeepEqual(m.BlockUnblock, ws.BlockUnblock) {
		t.Fatal("merged latency histograms differ from the unsharded sweep's")
	}
	// The k>1 fingerprint is the documented hierarchical fold, in shard
	// order, over each shard's (First, Done, Fleet).
	var want uint64
	for _, sh := range shards {
		want = fnvFold(want, uint64(sh.Agg.First), uint64(sh.Agg.Done), sh.Agg.Fleet)
	}
	if m.Fleet != want {
		t.Fatalf("merged fingerprint %016x != hierarchical fold %016x", m.Fleet, want)
	}

	// Merging is input-order independent: shards arrive however the caller
	// globbed them.
	reversed := []ShardAggregate{shards[2], shards[0], shards[1]}
	m2, err := MergeShards(reversed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatal("merge result depends on input order")
	}

	// MergeShardFiles reads the same data straight from the files and
	// renders per-shard lines plus the standard sweep tail.
	var b strings.Builder
	m3, err := MergeShardFiles(&b, paths)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m3) {
		t.Fatal("MergeShardFiles disagrees with MergeShards over the same checkpoints")
	}
	if !strings.Contains(b.String(), "shard 1/3") || !strings.Contains(b.String(), "fleet fingerprint") {
		t.Fatalf("merge report missing shard lines or sweep tail:\n%s", b.String())
	}
}

// mkShard fabricates one finished shard aggregate for merge-verification
// tests.
func mkShard(key string, first, want int64, fleet uint64) ShardAggregate {
	return ShardAggregate{Key: key, Agg: SweepAggregate{First: first, Want: want, Done: want, Fleet: fleet}}
}

// TestMergeShardsRejectsBadSets drives MergeShards over every malformed
// shard set it guards against: a silent bad merge would report a sweep that
// never ran.
func TestMergeShardsRejectsBadSets(t *testing.T) {
	cases := []struct {
		name   string
		shards []ShardAggregate
		msg    string
	}{
		{"empty", nil, "no shard aggregates"},
		{"unsharded key", []ShardAggregate{mkShard("abcd", 1, 2, 7)}, "not a shard checkpoint key"},
		{"foreign base", []ShardAggregate{mkShard("aa#1/2", 1, 2, 7), mkShard("bb#2/2", 3, 2, 7)},
			"different spec"},
		{"mixed of", []ShardAggregate{mkShard("aa#1/2", 1, 2, 7), mkShard("aa#2/3", 3, 2, 7)},
			"mixed into a 2-way merge"},
		{"duplicate", []ShardAggregate{mkShard("aa#1/2", 1, 2, 7), mkShard("aa#1/2", 1, 2, 7)},
			"supplied twice"},
		{"incomplete", []ShardAggregate{
			mkShard("aa#1/2", 1, 2, 7),
			{Key: "aa#2/2", Agg: SweepAggregate{First: 3, Want: 2, Done: 1}},
		}, "incomplete"},
		{"pre-want checkpoint", []ShardAggregate{
			mkShard("aa#1/2", 1, 2, 7),
			{Key: "aa#2/2", Agg: SweepAggregate{First: 3, Done: 2}},
		}, "incomplete"},
		{"missing shard", []ShardAggregate{mkShard("aa#1/3", 1, 2, 7), mkShard("aa#3/3", 5, 2, 7)},
			"missing shard(s) [2]"},
		{"gap", []ShardAggregate{mkShard("aa#1/2", 1, 2, 7), mkShard("aa#2/2", 4, 2, 7)}, "gap"},
		{"overlap", []ShardAggregate{mkShard("aa#1/2", 1, 2, 7), mkShard("aa#2/2", 2, 2, 7)}, "overlap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MergeShards(tc.shards)
			if err == nil {
				t.Fatal("bad shard set merged without error")
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Fatalf("error %q does not mention %q", err, tc.msg)
			}
		})
	}
}

// TestMergeShardsFoldsAggregates checks the merge arithmetic on fabricated
// shards — counts and failure lists sum exactly, the failed-seed list stays
// capped, and the k=1 fingerprint passes through flat.
func TestMergeShardsFoldsAggregates(t *testing.T) {
	a := mkShard("aa#1/2", 1, 40, 0x1111)
	b := mkShard("aa#2/2", 41, 40, 0x2222)
	a.Agg.Failed, b.Agg.Failed = 40, 40
	for s := int64(1); s <= 40; s++ {
		a.Agg.Seeds = append(a.Agg.Seeds, s)
		b.Agg.Seeds = append(b.Agg.Seeds, 40+s)
	}
	a.Agg.Runs, b.Agg.Runs = 100, 200
	m, err := MergeShards([]ShardAggregate{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.BaseKey != "aa" || m.Shards != 2 || m.First != 1 || m.Want != 80 || m.Done != 80 || m.Runs != 300 {
		t.Fatalf("merged shape wrong: %+v", m)
	}
	// The failure count is exact; the attribution list caps like a live
	// sweep's would, keeping the earliest seeds.
	if m.Failed != 80 {
		t.Fatalf("merged Failed = %d, want 80 (count must stay exact past the cap)", m.Failed)
	}
	if len(m.Seeds) != maxFailedSeeds || m.Seeds[0] != 1 || m.Seeds[maxFailedSeeds-1] != int64(maxFailedSeeds) {
		t.Fatalf("merged failed-seed list: len %d, first %d, last %d; want %d capped from seed 1",
			len(m.Seeds), m.Seeds[0], m.Seeds[len(m.Seeds)-1], maxFailedSeeds)
	}
	if want := fnvFold(fnvFold(0, 1, 40, 0x1111), 41, 40, 0x2222); m.Fleet != want {
		t.Fatalf("merged fingerprint %016x != fold %016x", m.Fleet, want)
	}

	solo, err := MergeShards([]ShardAggregate{mkShard("aa#1/1", 1, 5, 0xbeef)})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Fleet != 0xbeef {
		t.Fatalf("1-way merge fingerprint %016x, want the shard's flat fleet", solo.Fleet)
	}
}

// TestSweepAggregateFailureCap is the satellite pinning failure attribution
// at and beyond maxFailedSeeds: the count stays exact while the seed list
// caps at the first maxFailedSeeds failures.
func TestSweepAggregateFailureCap(t *testing.T) {
	var ag SweepAggregate
	ag.First = 1
	failures := int64(maxFailedSeeds + 6)
	for seed := int64(1); seed <= failures+2; seed++ {
		rep := SeedReport{ChaosResult: ChaosResult{Seed: seed, Total: 3}}
		if seed > failures {
			rep.Finished = rep.Total // the last two seeds pass
		}
		ag.fold(&rep)
	}
	if ag.Done != failures+2 || ag.Failed != failures {
		t.Fatalf("done %d failed %d, want %d and %d (exact beyond the cap)", ag.Done, ag.Failed, failures+2, failures)
	}
	if len(ag.Seeds) != maxFailedSeeds {
		t.Fatalf("failed-seed list holds %d entries, cap is %d", len(ag.Seeds), maxFailedSeeds)
	}
	for i, s := range ag.Seeds {
		if s != int64(i+1) {
			t.Fatalf("attribution slot %d names seed %d, want %d (first failures win)", i, s, i+1)
		}
	}
	if ag.Runs != uint64(failures+2)*3 {
		t.Fatalf("thread total %d, want %d", ag.Runs, (failures+2)*3)
	}
}

// TestSweepAggregateCheckpointRoundTrip is the satellite pinning the
// aggregate's checkpoint encoding: an aggregate with merged histograms,
// failure attribution, and a planned width survives SaveCheckpoint /
// LoadCheckpoint bit for bit (a lossy field here silently corrupts every
// resumed sweep).
func TestSweepAggregateCheckpointRoundTrip(t *testing.T) {
	var ag SweepAggregate
	ag.First, ag.Want = 7, 3
	for seed := int64(7); seed <= 9; seed++ {
		rep := SeedReport{ChaosResult: ChaosResult{Seed: seed, Finished: 2, Total: 2, Preempts: 5}}
		if seed == 8 {
			rep.Total = 3 // fail one seed
		}
		rep.UpcallDispatch.Observe(1000 * seed)
		rep.UpcallDispatch.Observe(250)
		rep.ReadyWait.Observe(50_000)
		rep.BlockUnblock.Observe(3_000_000)
		rep.Fingerprint = chaos.Fingerprint(0xdead0000 + uint64(seed))
		rep.Replay = rep.Fingerprint
		ag.fold(&rep)
	}
	path := filepath.Join(t.TempDir(), "agg.json")
	if err := scenario.SaveCheckpoint(path, "key#1/2", "mini", &ag); err != nil {
		t.Fatal(err)
	}
	var got SweepAggregate
	found, err := scenario.LoadCheckpoint(path, "key#1/2", &got)
	if err != nil || !found {
		t.Fatalf("load: found=%v err=%v", found, err)
	}
	if !reflect.DeepEqual(got, ag) {
		t.Fatalf("aggregate did not round-trip:\nsaved  %+v\nloaded %+v", ag, got)
	}
	// The envelope's key and name surface through PeekCheckpoint (the merge
	// path reads shard identity from there).
	key, name, err := scenario.PeekCheckpoint(path, &SweepAggregate{})
	if err != nil || key != "key#1/2" || name != "mini" {
		t.Fatalf("peek = (%q, %q, %v)", key, name, err)
	}
}

// TestReplaySamplingKeepsAggregates pins the perf knob's safety contract:
// faults.replay moves only how many seeds get the replay-divergence check —
// the fleet fingerprint, verdicts, and histograms all come from the first
// run and must be identical across full, sampled, and off.
func TestReplaySamplingKeepsAggregates(t *testing.T) {
	run := func(mode string) *SweepAggregate {
		spec := miniSweepSpec("mini-replay", 1, 4)
		spec.Faults.Replay = mode
		pr, err := RunSpec(io.Discard, spec, RunOptions{Workers: 1})
		if err != nil {
			t.Fatalf("replay %q: %v", mode, err)
		}
		return pr.Sweep
	}
	full := run(scenario.ReplayFull)
	for _, mode := range []string{scenario.ReplayOff, "sample:2"} {
		got := run(mode)
		if got.Fleet != full.Fleet {
			t.Errorf("replay %q moved the fleet fingerprint: %016x vs %016x", mode, got.Fleet, full.Fleet)
		}
		if got.Done != full.Done || got.Failed != full.Failed || got.Runs != full.Runs ||
			!reflect.DeepEqual(got.Seeds, full.Seeds) {
			t.Errorf("replay %q moved verdicts: %+v vs %+v", mode, got, full)
		}
		if !reflect.DeepEqual(got.UpcallDispatch, full.UpcallDispatch) {
			t.Errorf("replay %q moved the first-run histograms", mode)
		}
	}
}

// TestReplaySeedDecision pins the sampling rule as a pure function of the
// seed — shards and crash-resumed sweeps must sample the same seeds.
func TestReplaySeedDecision(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		if !replaySeed(seed, 1) {
			t.Fatalf("full replay skipped seed %d", seed)
		}
		if replaySeed(seed, 0) {
			t.Fatalf("replay off replayed seed %d", seed)
		}
		if got, want := replaySeed(seed, 4), seed%4 == 0; got != want {
			t.Fatalf("sample:4 seed %d: replay=%v want %v", seed, got, want)
		}
	}
	if !strings.Contains(replayMode(1), "twice") ||
		!strings.Contains(replayMode(0), "off") ||
		!strings.Contains(replayMode(4), "divisible by 4") {
		t.Fatalf("replay header lines drifted: %q / %q / %q", replayMode(1), replayMode(0), replayMode(4))
	}
}
