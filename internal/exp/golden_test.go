package exp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schedact/internal/apps/micro"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files under testdata/")

// goldenEntries bounds each canonical log: the ring keeps a deterministic
// tail, so the committed files stay small while still pinning the exact
// event sequence of the run's final stretch (plus full-run counts in the
// header).
const goldenEntries = 1024

// goldenMicro renders the canonical trace for one Table 1/4 system: both
// microbenchmarks back to back on a shared log, headed by the measured
// latencies and full-run event counts.
func goldenMicro(sys micro.System) string {
	tr := trace.New(goldenEntries)
	r := micro.RunTraced(sys, nil, tr)
	var b strings.Builder
	fmt.Fprintf(&b, "# golden micro trace: %s\n", sys)
	fmt.Fprintf(&b, "# NullFork=%v SignalWait=%v retained=%d lost=%d\n",
		r.NullFork, r.SignalWait, len(tr.Entries()), tr.Lost())
	tr.Dump(&b)
	return b.String()
}

// goldenFigure1 renders the canonical trace for one Figure 1 style run: the
// N-body smoke workload at P=2 on a 6-processor machine with the kernel
// daemons running, over a fixed two-second virtual horizon.
func goldenFigure1(sys SystemName) string {
	tr := trace.New(goldenEntries)
	eng, run := launchOne(sys, nbodySmoke(), 2, tr)
	defer eng.Close()
	eng.RunUntil(sim.Time(2 * sim.Second))
	var b strings.Builder
	fmt.Fprintf(&b, "# golden figure-1 trace: %s P=2, 2s horizon\n", sys)
	fmt.Fprintf(&b, "# done=%v elapsed=%v retained=%d lost=%d\n",
		run.Done, run.Elapsed(), len(tr.Entries()), tr.Lost())
	tr.Dump(&b)
	return b.String()
}

// TestGoldenTraces diffs the scheduling traces of the Table 1/4
// microbenchmarks and Figure 1 smoke runs against committed canonical
// dumps. Any change to dispatch order, upcall sequence, or event timing —
// however small — shows up as a line-level diff here. Intended changes are
// re-blessed with:
//
//	go test ./internal/exp -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		name string
		gen  func() string
	}{
		{"table1_fastthreads_kt", func() string { return goldenMicro(micro.FastThreadsKT) }},
		{"table1_topaz_threads", func() string { return goldenMicro(micro.TopazThreads) }},
		{"table1_ultrix_processes", func() string { return goldenMicro(micro.UltrixProcesses) }},
		{"table4_fastthreads_sa", func() string { return goldenMicro(micro.FastThreadsSA) }},
		{"figure1_topaz", func() string { return goldenFigure1(SysTopaz) }},
		{"figure1_orig_fastthreads", func() string { return goldenFigure1(SysOrigFT) }},
		{"figure1_new_fastthreads", func() string { return goldenFigure1(SysNewFT) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.gen()
			path := filepath.Join("testdata", tc.name+".trace")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (create with -update): %v", path, err)
			}
			if got != string(want) {
				diffTraces(t, path, string(want), got)
			}
		})
	}
}

// diffTraces reports the first divergence between a golden dump and the
// regenerated one, with a little surrounding context.
func diffTraces(t *testing.T, path, want, got string) {
	t.Helper()
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] == g[i] {
			continue
		}
		lo := i - 2
		if lo < 0 {
			lo = 0
		}
		var b strings.Builder
		for j := lo; j < i; j++ {
			fmt.Fprintf(&b, "      %4d  %s\n", j+1, w[j])
		}
		fmt.Fprintf(&b, "want  %4d  %s\n", i+1, w[i])
		fmt.Fprintf(&b, "got   %4d  %s\n", i+1, g[i])
		t.Fatalf("%s: trace diverges at line %d (golden %d lines, regenerated %d):\n%s"+
			"re-bless with `go test ./internal/exp -run TestGoldenTraces -update` if intended",
			path, i+1, len(w), len(g), b.String())
	}
	t.Fatalf("%s: traces share a %d-line prefix but lengths differ: golden %d lines, regenerated %d\n"+
		"re-bless with `go test ./internal/exp -run TestGoldenTraces -update` if intended",
		path, n, len(w), len(g))
}
