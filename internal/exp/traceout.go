package exp

import (
	"io"

	"schedact/internal/apps/nbody"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// traceSmoke is the tiny Figure 1 workload shared by the golden traces, the
// sanity tests, and the Chrome export.
func traceSmoke() nbody.Config {
	return nbody.Config{N: 32, Steps: 1, Seed: 3}
}

// TraceFigure1 runs the Figure 1 smoke configuration (new FastThreads on the
// scheduler-activation kernel, P=2, 2s horizon — the same run the golden
// trace pins) with full tracing and latency derivation, then exports the
// record stream as Chrome/Perfetto trace_event JSON to w. It returns the
// number of records exported. This is the `saexp -trace-out` path.
func TraceFigure1(w io.Writer) (int, error) {
	tr := trace.New(0)
	eng, _ := launchOne(SysNewFT, traceSmoke(), 2, tr)
	defer eng.Close()
	trace.NewLatencies(tr, eng.Metrics())
	horizon := sim.Time(2 * sim.Second)
	eng.RunUntil(horizon)
	recs := tr.Entries()
	return len(recs), trace.WriteChrome(w, recs, horizon.Us())
}
