package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schedact/internal/apps/micro"
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// TestGoldenTracesWarmEngine replays every golden case — the four Table 1/4
// microbenchmark systems and the three Figure 1 smoke runs — on ONE engine
// recycled through Reset, and diffs each dump against the same committed
// canonical files TestGoldenTraces pins. A cold run and a warm run must be
// textually indistinguishable: any Reset leak that shifts a single event
// sequence number, timestamp, or dispatch decision breaks the very first
// affected line. Together with TestWarmContextMatchesCold this is the
// tentpole's equivalence proof across both the chaos and golden workloads.
func TestGoldenTracesWarmEngine(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are blessed by TestGoldenTraces; the warm replay only verifies")
	}
	eng := sim.NewEngine(sim.WithLabel("warm goldens"))
	defer eng.Close()

	// Hand the microbenchmarks the recycled engine: each acquisition resets
	// it under the benchmark's own label, exactly where a cold run would
	// construct a fresh one.
	micro.WarmEngine = func(label string) sim.Engine {
		eng.Reset(sim.WithLabel(label))
		return eng
	}
	defer func() { micro.WarmEngine = nil }()

	warmFigure1 := func(sys SystemName) string {
		tr := trace.New(goldenEntries)
		eng.Reset(sim.WithLabel(fmt.Sprintf("%s P=%d", sys, 2)))
		run := launchOnEngine(eng, sys, nbodySmoke(), 2, tr)
		eng.RunUntil(sim.Time(2 * sim.Second))
		var b strings.Builder
		fmt.Fprintf(&b, "# golden figure-1 trace: %s P=2, 2s horizon\n", sys)
		fmt.Fprintf(&b, "# done=%v elapsed=%v retained=%d lost=%d\n",
			run.Done, run.Elapsed(), len(tr.Entries()), tr.Lost())
		tr.Dump(&b)
		return b.String()
	}

	cases := []struct {
		name string
		gen  func() string
	}{
		{"table1_fastthreads_kt", func() string { return goldenMicro(micro.FastThreadsKT) }},
		{"table1_topaz_threads", func() string { return goldenMicro(micro.TopazThreads) }},
		{"table1_ultrix_processes", func() string { return goldenMicro(micro.UltrixProcesses) }},
		{"table4_fastthreads_sa", func() string { return goldenMicro(micro.FastThreadsSA) }},
		{"figure1_topaz", func() string { return warmFigure1(SysTopaz) }},
		{"figure1_orig_fastthreads", func() string { return warmFigure1(SysOrigFT) }},
		{"figure1_new_fastthreads", func() string { return warmFigure1(SysNewFT) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", tc.name+".trace")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (create with TestGoldenTraces -update): %v", path, err)
			}
			if got := tc.gen(); got != string(want) {
				diffTraces(t, path+" (warm engine)", string(want), got)
			}
		})
	}
}
