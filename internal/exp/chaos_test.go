package exp

import (
	"strings"
	"testing"

	"schedact/internal/core"
	"schedact/internal/fleet"
)

// TestChaosSweepShort is the tier-1 gate's chaos smoke: a handful of seeds
// through the full injector with the auditor on and the replay check
// active. The wide sweep lives behind `saexp -chaos -seeds N`.
func TestChaosSweepShort(t *testing.T) {
	var n int64 = 6
	if testing.Short() {
		n = 3
	}
	var b strings.Builder
	if failed := ChaosSweep(&b, 1, n, 0); failed != 0 {
		t.Fatalf("%d of %d chaos seeds failed:\n%s", failed, n, b.String())
	}
	t.Logf("\n%s", b.String())
}

// TestChaosCatchesBrokenScheduler runs one sweep seed against each ablated
// kernel and demands a failure verdict: the grant-phase break must trip the
// auditor's work-conservation invariant, and the dropped-notification break
// must be caught (auditor or wedge detection).
func TestChaosCatchesBrokenScheduler(t *testing.T) {
	r := RunChaosSeedAblated(1, func(k *core.Kernel) { k.AblateNoGrant = true })
	if len(r.Violations) == 0 {
		t.Fatal("AblateNoGrant: broken allocator escaped the auditor")
	}
	if got := r.Violations[0].Invariant; !strings.HasPrefix(got, "I2") {
		t.Fatalf("AblateNoGrant: expected an I2 violation, got %q", got)
	}

	r = RunChaosSeedAblated(1, func(k *core.Kernel) { k.AblateDropEvent = true })
	if r.OK() {
		t.Fatal("AblateDropEvent: broken notification path produced a passing verdict")
	}
}

// TestParallelSweepMatchesSequential pins the fleet harness's determinism
// contract: fanning chaos seeds across a worker pool must produce per-seed
// fingerprints byte-identical to running them one at a time. Run under
// `go test -race` (the CI race job does) this also audits the whole
// engine/trace/stats stack for shared mutable state between concurrent runs.
func TestParallelSweepMatchesSequential(t *testing.T) {
	const first, n = 21, 3
	sequential := fleet.Map(1, n, func(job, _ int) ChaosResult {
		return RunChaosSeed(first + int64(job))
	})
	parallel := fleet.Map(4, n, func(job, _ int) ChaosResult {
		return RunChaosSeed(first + int64(job))
	})
	for i := range sequential {
		s, p := sequential[i], parallel[i]
		if s.Seed != p.Seed {
			t.Fatalf("job %d: seed %d sequential vs %d parallel", i, s.Seed, p.Seed)
		}
		if s.Fingerprint != p.Fingerprint || s.Replay != p.Replay {
			t.Errorf("seed %d: fingerprint %v/%v sequential vs %v/%v parallel",
				s.Seed, s.Fingerprint, s.Replay, p.Fingerprint, p.Replay)
		}
		if s.Finished != p.Finished || s.End != p.End || s.Preempts != p.Preempts {
			t.Errorf("seed %d: result drifted across pool widths: %+v vs %+v", s.Seed, s, p)
		}
	}
}

// TestChaosSeedReplayIdentical spells out the acceptance criterion:
// re-running any seed reproduces the identical fingerprint.
func TestChaosSeedReplayIdentical(t *testing.T) {
	r := RunChaosSeed(11)
	if r.Fingerprint != r.Replay {
		t.Fatalf("seed 11 not reproducible: %v vs %v", r.Fingerprint, r.Replay)
	}
	if !r.OK() {
		t.Fatalf("seed 11 failed: violations=%d finished=%d/%d", len(r.Violations), r.Finished, r.Total)
	}
}
