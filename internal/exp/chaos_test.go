package exp

import (
	"strings"
	"testing"

	"schedact/internal/core"
)

// TestChaosSweepShort is the tier-1 gate's chaos smoke: a handful of seeds
// through the full injector with the auditor on and the replay check
// active. The wide sweep lives behind `saexp -chaos -seeds N`.
func TestChaosSweepShort(t *testing.T) {
	var n int64 = 6
	if testing.Short() {
		n = 3
	}
	var b strings.Builder
	if failed := ChaosSweep(&b, 1, n); failed != 0 {
		t.Fatalf("%d of %d chaos seeds failed:\n%s", failed, n, b.String())
	}
	t.Logf("\n%s", b.String())
}

// TestChaosCatchesBrokenScheduler runs one sweep seed against each ablated
// kernel and demands a failure verdict: the grant-phase break must trip the
// auditor's work-conservation invariant, and the dropped-notification break
// must be caught (auditor or wedge detection).
func TestChaosCatchesBrokenScheduler(t *testing.T) {
	r := RunChaosSeedAblated(1, func(k *core.Kernel) { k.AblateNoGrant = true })
	if len(r.Violations) == 0 {
		t.Fatal("AblateNoGrant: broken allocator escaped the auditor")
	}
	if got := r.Violations[0].Invariant; !strings.HasPrefix(got, "I2") {
		t.Fatalf("AblateNoGrant: expected an I2 violation, got %q", got)
	}

	r = RunChaosSeedAblated(1, func(k *core.Kernel) { k.AblateDropEvent = true })
	if r.OK() {
		t.Fatal("AblateDropEvent: broken notification path produced a passing verdict")
	}
}

// TestChaosSeedReplayIdentical spells out the acceptance criterion:
// re-running any seed reproduces the identical fingerprint.
func TestChaosSeedReplayIdentical(t *testing.T) {
	r := RunChaosSeed(11)
	if r.Fingerprint != r.Replay {
		t.Fatalf("seed 11 not reproducible: %v vs %v", r.Fingerprint, r.Replay)
	}
	if !r.OK() {
		t.Fatalf("seed 11 failed: violations=%d finished=%d/%d", len(r.Violations), r.Finished, r.Total)
	}
}
