package machine

import (
	"fmt"

	"schedact/internal/sim"
)

// Context is a machine-level execution context: the hardware state (program
// counter, registers, kernel stack) that a kernel thread, Ultrix process, or
// scheduler activation occupies a processor with. The kernel dispatches
// Contexts onto CPUs and may preempt them at any point.
//
// CPU time is consumed through Workers. A Context hosts at most one Worker
// at a time; a plain kernel thread hosts its own root worker forever, while
// a user-level thread package binds each user thread's Worker to whatever
// Context (virtual processor) it is scheduled on — and can rebind a
// preempted thread's Worker to a different Context, which is exactly how a
// thread's machine state rides a scheduler-activation upcall into a fresh
// vessel.
type Context struct {
	m    *Machine
	name string
	co   *sim.Coroutine // root coroutine

	cpu  *CPU
	done bool

	w     *Worker // currently hosted worker, nil if none
	rootW Worker  // the root coroutine's own worker

	// Owner is an opaque back-pointer for the scheduling layer (kernel
	// thread, activation, process record).
	Owner any

	// fn is the current incarnation's body; wrap is the coroutine wrapper
	// built once per Context struct and reused across recycles, reading fn
	// indirectly so NewContext on a recycled context allocates no closure.
	fn   func(*Context)
	wrap func(*sim.Coroutine)
}

// NewContext creates an execution context whose root coroutine runs fn. The
// context starts off-CPU with fn not yet started; the first Dispatch starts
// it. The root coroutine's worker is bound to the context for its lifetime
// unless the scheduling layer explicitly rebinds.
//
// The Context struct is drawn from the machine's recycle arena when a
// previous context was returned via FreeContext, so a scheduler that
// reclaims its dead vessels runs with a bounded working set of contexts no
// matter how many it creates.
func (m *Machine) NewContext(name string, fn func(*Context)) *Context {
	var ctx *Context
	if n := len(m.ctxFree); n > 0 {
		ctx = m.ctxFree[n-1]
		m.ctxFree[n-1] = nil
		m.ctxFree = m.ctxFree[:n-1]
		ctx.name = name
		ctx.done = false
		ctx.rootW.name = name + ":root"
	} else {
		ctx = &Context{m: m, name: name}
		ctx.rootW = Worker{m: m, name: name + ":root"}
		ctx.wrap = func(co *sim.Coroutine) {
			ctx.rootW.wantCPU = false // started; parks manage this from here on
			ctx.fn(ctx)
			ctx.done = true
			if ctx.w == &ctx.rootW {
				ctx.rootW.Unbind()
			}
			if ctx.cpu != nil {
				ctx.cpu.Release(ctx)
			}
		}
	}
	ctx.fn = fn
	ctx.co = m.Eng.Go(name, ctx.wrap)
	ctx.rootW.co = ctx.co
	ctx.rootW.vp = ctx
	ctx.rootW.wantCPU = true // the start dispatch resumes the root
	ctx.w = &ctx.rootW
	return ctx
}

// FreeContext unwinds a context that will never be dispatched again and
// returns its struct to the machine's recycle arena. It reports false —
// touching nothing — when the context cannot be reclaimed yet: its root
// coroutine is running or has a resume in flight, it is still on a CPU, or
// its hosted worker is mid-charge. Such contexts stay parked until
// Engine.Close reaps them, exactly as before arenas existed; reclamation is
// an optimization, never an obligation.
func (m *Machine) FreeContext(ctx *Context) bool {
	co := ctx.co
	if co == nil || ctx.cpu != nil || co.Running() || ctx.MidExec() {
		return false
	}
	if !co.Done() {
		if co.ResumeScheduled() {
			return false
		}
		co.Destroy()
	}
	if w := ctx.w; w != nil {
		w.vp = nil
		ctx.w = nil
	}
	ctx.co = nil
	ctx.done = false
	ctx.Owner = nil
	ctx.fn = nil
	rw := &ctx.rootW
	rw.co = nil
	rw.vp = nil
	rw.remaining = 0
	rw.execStart = 0
	rw.execEv = sim.Handle{}
	rw.wantCPU = false
	m.ctxFree = append(m.ctxFree, ctx)
	return true
}

// Name reports the context's debug name.
func (c *Context) Name() string { return c.name }

// CPU reports the processor this context is dispatched on, or nil.
func (c *Context) CPU() *CPU { return c.cpu }

// OnCPU reports whether the context is currently dispatched.
func (c *Context) OnCPU() bool { return c.cpu != nil }

// Done reports whether the root coroutine has finished.
func (c *Context) Done() bool { return c.done }

// RootExited reports whether the root coroutine will never run again: it
// returned naturally (Done), or an engine Reset killed it by unwinding the
// stack — which skips the body epilogue that sets done, so done alone
// understates reclaimability after a reset.
func (c *Context) RootExited() bool { return c.co == nil || c.co.Done() }

// Machine returns the owning machine.
func (c *Context) Machine() *Machine { return c.m }

// Worker returns the currently hosted worker, or nil.
func (c *Context) Worker() *Worker { return c.w }

// Root returns the root coroutine's worker.
func (c *Context) Root() *Worker { return &c.rootW }

// Remaining reports the hosted worker's banked, unconsumed CPU demand.
func (c *Context) Remaining() sim.Duration {
	if c.w == nil {
		return 0
	}
	return c.w.remaining
}

// MidExec reports whether the hosted worker is consuming CPU right now.
func (c *Context) MidExec() bool { return c.w != nil && c.w.execEv.Active() }

// Exec consumes d of CPU through the hosted worker, which must belong to the
// calling coroutine. This is the common path for kernel threads charging
// their own context and for user-level threads charging the virtual
// processor they are bound to.
func (c *Context) Exec(d sim.Duration) {
	if c.w == nil {
		panic(fmt.Sprintf("machine: Exec on %s with no hosted worker", c.name))
	}
	c.w.Exec(d)
}

// Deschedule parks the calling coroutine until this context is next
// dispatched. The kernel must already have taken the context off its CPU;
// Deschedule is the context side of blocking in the kernel.
func (c *Context) Deschedule(reason string) {
	if c.cpu != nil {
		panic(fmt.Sprintf("machine: Deschedule(%s) while %s still on cpu%d", reason, c.name, c.cpu.id))
	}
	if c.w == nil {
		panic(fmt.Sprintf("machine: Deschedule(%s) on %s with no hosted worker", reason, c.name))
	}
	c.w.AwaitDispatch(reason)
}

// resumeWaiter wakes the hosted worker if it is waiting for a processor.
// Called on dispatch.
func (c *Context) resumeWaiter() {
	if c.w == nil {
		return
	}
	c.w.resumeIfWaiting()
}

// suspendExec banks the hosted worker's in-flight computation. Called by
// CPU.Preempt.
func (c *Context) suspendExec() {
	if c.w == nil {
		return
	}
	c.w.suspend()
}

// Worker is a migratable CPU-charge consumer: the machine half of a thread
// of control. It charges time through whatever Context it is currently
// bound to and carries its own unconsumed demand across preemption and
// rebinding.
type Worker struct {
	m    *Machine
	name string
	co   *sim.Coroutine // the coroutine that charges through this worker

	vp        *Context // current vessel, nil when unbound
	remaining sim.Duration
	execStart sim.Time
	execEv    sim.Handle

	// wantCPU marks the worker's coroutine as parked pending a processor
	// (mid-Exec or awaiting dispatch), as opposed to blocked at user level.
	wantCPU bool

	// execDone is the exec-done callback, built once per worker: the charge
	// loop schedules it on every pass, and a fresh closure per pass was the
	// machine layer's dominant allocation.
	execDone func()
}

// NewWorker creates an unbound worker for a user-level thread whose
// coroutine is co. The coroutine may also be registered lazily on first
// Exec.
func (m *Machine) NewWorker(name string, co *sim.Coroutine) *Worker {
	return &Worker{m: m, name: name, co: co}
}

// Name reports the worker's debug name.
func (w *Worker) Name() string { return w.name }

// Bound reports the context this worker is bound to, or nil.
func (w *Worker) Bound() *Context { return w.vp }

// Remaining reports banked, unconsumed CPU demand.
func (w *Worker) Remaining() sim.Duration { return w.remaining }

// Bind attaches the worker to a context (virtual processor). If the context
// is dispatched and the worker has pending computation or is awaiting a
// processor, it resumes. The context must not already host a worker and the
// worker must be unbound.
func (w *Worker) Bind(c *Context) {
	if w.vp != nil {
		panic(fmt.Sprintf("machine: worker %s already bound to %s", w.name, w.vp.name))
	}
	if c.w != nil {
		panic(fmt.Sprintf("machine: context %s already hosts %s", c.name, c.w.name))
	}
	if w.execEv.Active() {
		panic(fmt.Sprintf("machine: binding %s mid-exec", w.name))
	}
	w.vp = c
	c.w = w
	if c.cpu != nil {
		w.resumeIfWaiting()
	}
}

// Unbind detaches the worker from its context. The worker must not be
// mid-computation (preempt or complete first).
func (w *Worker) Unbind() {
	if w.vp == nil {
		panic(fmt.Sprintf("machine: Unbind of unbound worker %s", w.name))
	}
	if w.execEv.Active() {
		panic(fmt.Sprintf("machine: Unbind of %s mid-exec", w.name))
	}
	w.vp.w = nil
	w.vp = nil
}

// Exec consumes d of CPU through the worker's current vessel. The calling
// coroutine parks until the demand is consumed; preemption, rebinding, and
// redispatch are all transparent — consumption continues wherever the worker
// is next bound and dispatched.
func (w *Worker) Exec(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("machine: negative Exec %v on %s", d, w.name))
	}
	co := w.m.Eng.Current()
	if co == nil {
		panic(fmt.Sprintf("machine: Exec on %s from outside a coroutine", w.name))
	}
	if w.co == nil {
		w.co = co
	} else if w.co != co {
		panic(fmt.Sprintf("machine: worker %s charged by foreign coroutine %s", w.name, co.Name()))
	}
	w.remaining += d
	for w.remaining > 0 {
		vp := w.vp
		if vp == nil || vp.cpu == nil {
			w.parkWant("cpu-wait")
			continue
		}
		w.execStart = w.m.Now()
		if w.execDone == nil {
			w.execDone = func() {
				w.remaining = 0
				w.resumeIfWaiting()
			}
		}
		w.execEv = w.m.Eng.AfterNamed(w.remaining, "exec-done", w.name, w.execDone)
		// Fast path: when the charge completes before anything else in the
		// engine fires — no preemption, no I/O completion, no daemon pulse in
		// the window — consume the exec-done event and our own redispatch in
		// place, with no goroutine hand-off. InlineCharge runs the identical
		// park/fire/unpark sequence, so wantCPU must bracket it exactly as it
		// brackets a real park.
		w.wantCPU = true
		if !w.co.InlineCharge(w.execEv, "exec") {
			w.co.Park("exec")
		}
		w.wantCPU = false
	}
}

// AwaitDispatch parks the calling coroutine until the worker's context is
// dispatched (or the worker is bound to a dispatched context). Used for
// kernel-level blocking, where wake-up is a kernel redispatch.
func (w *Worker) AwaitDispatch(reason string) {
	co := w.m.Eng.Current()
	if co == nil {
		panic(fmt.Sprintf("machine: AwaitDispatch on %s from outside a coroutine", w.name))
	}
	if w.co == nil {
		w.co = co
	} else if w.co != co {
		panic(fmt.Sprintf("machine: worker %s awaited by foreign coroutine %s", w.name, co.Name()))
	}
	w.parkWant(reason)
}

func (w *Worker) parkWant(reason string) {
	w.wantCPU = true
	w.co.Park(reason)
	w.wantCPU = false
}

// resumeIfWaiting wakes the worker's coroutine if it is parked pending a
// processor. Safe when a resume is already in flight.
func (w *Worker) resumeIfWaiting() {
	if !w.wantCPU || w.co == nil {
		return
	}
	if w.co.ResumeScheduled() {
		return
	}
	w.co.Unpark()
}

// suspend banks the in-flight computation (preemption).
func (w *Worker) suspend() {
	if !w.execEv.Cancel() {
		return // at a decision point this instant; nothing to bank
	}
	elapsed := w.m.Now().Sub(w.execStart)
	w.remaining -= elapsed
	if w.remaining < 0 {
		panic(fmt.Sprintf("machine: worker %s over-consumed by %v", w.name, -w.remaining))
	}
}

// MidExec reports whether the worker is consuming CPU right now.
func (w *Worker) MidExec() bool { return w.execEv.Active() }

// WantsCPU reports whether the worker's coroutine is parked pending a
// processor.
func (w *Worker) WantsCPU() bool { return w.wantCPU }
