// Package machine simulates the multiprocessor hardware the paper's systems
// run on: a pool of identical CPUs, interruptible CPU consumption, a
// calibrated cost table for the primitive operations the paper reports
// (procedure call, kernel trap, ...), and a disk device.
//
// The machine deliberately knows nothing about threads, address spaces, or
// scheduling policy; those live in the kernel layers above. What it provides
// is the one thing every scheduling experiment needs: an accurate account of
// which execution context is consuming which processor at every instant of
// virtual time, with preemption allowed at any point.
package machine

import (
	"fmt"

	"schedact/internal/sim"
	"schedact/internal/trace"
)

// CPUID identifies a processor on the simulated machine.
type CPUID int

// Machine is a simulated shared-memory multiprocessor.
type Machine struct {
	Eng  sim.Engine
	Cost *Costs
	cpus []*CPU
	Disk *Disk

	// Trace, when non-nil, receives the machine layer's typed records
	// (disk I/O scheduling). The owning kernel sets it alongside its own
	// log so all layers share one stream.
	Trace *trace.Log

	// ctxFree is the recycled-context arena (see FreeContext). Entries hold
	// no run state — their coroutines are dead and detached — so the arena
	// stays warm across Reset.
	ctxFree []*Context
}

// New creates a machine with n CPUs and the given cost profile.
func New(eng sim.Engine, n int, cost *Costs) *Machine {
	if n <= 0 {
		panic("machine: need at least one CPU")
	}
	m := &Machine{Eng: eng, Cost: cost}
	for i := 0; i < n; i++ {
		m.cpus = append(m.cpus, &CPU{m: m, id: CPUID(i)})
	}
	m.Disk = &Disk{m: m, Latency: cost.DiskLatency}
	reg := eng.Metrics()
	reg.Func("machine.dispatches", func() uint64 {
		var n uint64
		for _, p := range m.cpus {
			n += p.Dispatches
		}
		return n
	})
	reg.Func("machine.preempts", func() uint64 {
		var n uint64
		for _, p := range m.cpus {
			n += p.Preempts
		}
		return n
	})
	reg.Func("machine.busy_us", func() uint64 {
		var busy sim.Duration
		for _, p := range m.cpus {
			busy += p.TotalBusy
		}
		return uint64(sim.DurUs(busy))
	})
	reg.Func("machine.disk_ios", func() uint64 { return m.Disk.Requests })
	return m
}

// Reset returns the machine to its construction state with n CPUs and the
// given cost profile, for reuse on a fresh run. The owning engine must have
// been Reset first (all root coroutines are dead by then); CPU structs and
// the recycled-context arena stay warm, so a steady-state reset allocates
// only when n exceeds every previous CPU count. Metric registrations made at
// construction remain valid: they close over the machine, not over any run's
// state.
func (m *Machine) Reset(n int, cost *Costs) {
	if n <= 0 {
		panic("machine: need at least one CPU")
	}
	m.Cost = cost
	for len(m.cpus) < n {
		m.cpus = append(m.cpus, &CPU{m: m, id: CPUID(len(m.cpus))})
	}
	m.cpus = m.cpus[:n]
	for _, p := range m.cpus {
		p.cur = nil
		p.busySince = 0
		p.TotalBusy = 0
		p.Dispatches = 0
		p.Preempts = 0
	}
	d := m.Disk
	d.Latency = cost.DiskLatency
	d.Contended = false
	d.Perturb = nil
	d.freeAt = 0
	d.Requests = 0
	m.Trace = nil
}

// NumCPUs reports the number of processors.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// CPU returns processor id.
func (m *Machine) CPU(id CPUID) *CPU {
	return m.cpus[id]
}

// CPUs returns all processors, in id order.
func (m *Machine) CPUs() []*CPU { return m.cpus }

// Now reports current virtual time.
func (m *Machine) Now() sim.Time { return m.Eng.Now() }

// CPU is one processor. At any instant a CPU is either idle or dispatched to
// exactly one execution context. Dispatch and preemption are driven by the
// kernel layers.
type CPU struct {
	m   *Machine
	id  CPUID
	cur *Context

	// accounting
	busySince  sim.Time
	TotalBusy  sim.Duration
	Dispatches uint64
	Preempts   uint64
}

// ID reports the processor id.
func (p *CPU) ID() CPUID { return p.id }

// Machine returns the owning machine.
func (p *CPU) Machine() *Machine { return p.m }

// Current reports the context dispatched on this CPU, or nil when idle.
func (p *CPU) Current() *Context { return p.cur }

// Idle reports whether no context is dispatched here.
func (p *CPU) Idle() bool { return p.cur == nil }

// Dispatch places ctx on this CPU and resumes whatever computation it had
// pending. The CPU must be idle and the context must not be on any CPU.
func (p *CPU) Dispatch(ctx *Context) {
	if p.cur != nil {
		panic(fmt.Sprintf("machine: dispatch %s on busy cpu%d (running %s)", ctx.name, p.id, p.cur.name))
	}
	if ctx.cpu != nil {
		panic(fmt.Sprintf("machine: dispatch %s already on cpu%d", ctx.name, ctx.cpu.id))
	}
	if ctx.done {
		panic(fmt.Sprintf("machine: dispatch finished context %s", ctx.name))
	}
	p.cur = ctx
	ctx.cpu = p
	p.busySince = p.m.Now()
	p.Dispatches++
	ctx.resumeWaiter()
}

// Preempt removes the current context from this CPU, banking any CPU demand
// it has not yet consumed, and returns it. The context's coroutine stays
// parked; a later Dispatch resumes it where it left off (possibly on a
// different CPU). Preempting an idle CPU panics.
func (p *CPU) Preempt() *Context {
	ctx := p.cur
	if ctx == nil {
		panic(fmt.Sprintf("machine: preempt idle cpu%d", p.id))
	}
	ctx.suspendExec()
	p.detach(ctx)
	p.Preempts++
	return ctx
}

// Release removes ctx from this CPU without treating it as a preemption:
// used when a context blocks or exits voluntarily. The context must be the
// current one and must not be mid-computation.
func (p *CPU) Release(ctx *Context) {
	if p.cur != ctx {
		panic(fmt.Sprintf("machine: release %s not current on cpu%d", ctx.name, p.id))
	}
	if ctx.MidExec() {
		panic(fmt.Sprintf("machine: release %s mid-Exec on cpu%d", ctx.name, p.id))
	}
	p.detach(ctx)
}

func (p *CPU) detach(ctx *Context) {
	p.TotalBusy += p.m.Now().Sub(p.busySince)
	p.cur = nil
	ctx.cpu = nil
}

// Busy reports the exact total time this CPU has spent dispatched, including
// the in-progress occupancy. Auditors balance this against the scheduling
// layers' own per-space accounting.
func (p *CPU) Busy() sim.Duration {
	busy := p.TotalBusy
	if p.cur != nil {
		busy += p.m.Now().Sub(p.busySince)
	}
	return busy
}

// Utilization reports the fraction of [0, now] this CPU spent dispatched.
func (p *CPU) Utilization() float64 {
	now := p.m.Now()
	if now == 0 {
		return 0
	}
	busy := p.TotalBusy
	if p.cur != nil {
		busy += now.Sub(p.busySince)
	}
	return float64(busy) / float64(now)
}
