package machine

import (
	"testing"

	"schedact/internal/sim"
)

func newTestMachine(t *testing.T, ncpu int, opts ...sim.Option) (sim.Engine, *Machine) {
	t.Helper()
	eng := sim.NewEngine(opts...)
	t.Cleanup(eng.Close)
	return eng, New(eng, ncpu, DefaultCosts())
}

func TestExecConsumesVirtualTime(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	var finished sim.Time
	ctx := m.NewContext("worker", func(c *Context) {
		c.Exec(100 * sim.Microsecond)
		finished = eng.Now()
	})
	m.CPU(0).Dispatch(ctx)
	eng.Run()
	if finished != sim.Time(100*sim.Microsecond) {
		t.Fatalf("finished at %v, want 100µs", finished)
	}
	if !ctx.Done() {
		t.Fatal("context not done")
	}
}

func TestSequentialExecsAccumulate(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	ctx := m.NewContext("worker", func(c *Context) {
		for i := 0; i < 5; i++ {
			c.Exec(10 * sim.Microsecond)
		}
	})
	m.CPU(0).Dispatch(ctx)
	eng.Run()
	if eng.Now() != sim.Time(50*sim.Microsecond) {
		t.Fatalf("now = %v, want 50µs", eng.Now())
	}
}

func TestPreemptBanksRemainingDemand(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	cpu := m.CPU(0)
	var finished sim.Time
	ctx := m.NewContext("worker", func(c *Context) {
		c.Exec(100 * sim.Microsecond)
		finished = eng.Now()
	})
	cpu.Dispatch(ctx)
	// Preempt after 30µs, hold it off-CPU for 1ms, then redispatch.
	eng.After(30*sim.Microsecond, "preempt", func() {
		got := cpu.Preempt()
		if got != ctx {
			t.Errorf("preempted %v, want worker", got)
		}
		if got.Remaining() != 70*sim.Microsecond {
			t.Errorf("remaining = %v, want 70µs", got.Remaining())
		}
	})
	eng.After(1030*sim.Microsecond, "redispatch", func() { cpu.Dispatch(ctx) })
	eng.Run()
	want := sim.Time(1100 * sim.Microsecond) // 30 run + 1000 off + 70 run
	if finished != want {
		t.Fatalf("finished at %v, want %v", finished, want)
	}
}

func TestPreemptAndResumeOnDifferentCPU(t *testing.T) {
	eng, m := newTestMachine(t, 2)
	var finished sim.Time
	ctx := m.NewContext("worker", func(c *Context) {
		c.Exec(100 * sim.Microsecond)
		finished = eng.Now()
	})
	m.CPU(0).Dispatch(ctx)
	eng.After(40*sim.Microsecond, "migrate", func() {
		m.CPU(0).Preempt()
		m.CPU(1).Dispatch(ctx)
	})
	eng.Run()
	if finished != sim.Time(100*sim.Microsecond) {
		t.Fatalf("finished at %v, want 100µs (no time lost migrating)", finished)
	}
}

func TestRepeatedPreemptionPreservesTotalDemand(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	cpu := m.CPU(0)
	var finished sim.Time
	ctx := m.NewContext("worker", func(c *Context) {
		c.Exec(1000 * sim.Microsecond)
		finished = eng.Now()
	})
	cpu.Dispatch(ctx)
	// Preempt every 100µs for 50µs of off-time, 5 times.
	for i := 1; i <= 5; i++ {
		off := sim.Duration(i) * 150 * sim.Microsecond
		eng.At(sim.Time(off), "preempt", func() { cpu.Preempt() })
		eng.At(sim.Time(off+50*sim.Microsecond), "redispatch", func() { cpu.Dispatch(ctx) })
	}
	eng.Run()
	want := sim.Time(1250 * sim.Microsecond) // 1000 of work + 5*50 off
	if finished != want {
		t.Fatalf("finished at %v, want %v", finished, want)
	}
}

func TestDispatchBusyCPUPanics(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	a := m.NewContext("a", func(c *Context) { c.Exec(sim.Millisecond) })
	b := m.NewContext("b", func(c *Context) { c.Exec(sim.Millisecond) })
	m.CPU(0).Dispatch(a)
	defer func() {
		if recover() == nil {
			t.Fatal("dispatch on busy CPU did not panic")
		}
	}()
	m.CPU(0).Dispatch(b)
	_ = eng
}

func TestPreemptIdleCPUPanics(t *testing.T) {
	_, m := newTestMachine(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("preempt of idle CPU did not panic")
		}
	}()
	m.CPU(0).Preempt()
}

func TestDoubleDispatchSameContextPanics(t *testing.T) {
	_, m := newTestMachine(t, 2)
	ctx := m.NewContext("a", func(c *Context) { c.Exec(sim.Millisecond) })
	m.CPU(0).Dispatch(ctx)
	defer func() {
		if recover() == nil {
			t.Fatal("dispatching a context on two CPUs did not panic")
		}
	}()
	m.CPU(1).Dispatch(ctx)
}

func TestDescheduleAndRedispatch(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	cpu := m.CPU(0)
	var resumedAt sim.Time
	ctx := m.NewContext("blocker", func(c *Context) {
		c.Exec(10 * sim.Microsecond)
		// Voluntarily block: come off the CPU and wait for redispatch.
		cpu.Release(c)
		c.Deschedule("io-wait")
		resumedAt = eng.Now()
		c.Exec(5 * sim.Microsecond)
	})
	cpu.Dispatch(ctx)
	eng.After(sim.Millisecond, "wake", func() { cpu.Dispatch(ctx) })
	eng.Run()
	if resumedAt != sim.Time(sim.Millisecond) {
		t.Fatalf("resumed at %v, want 1ms", resumedAt)
	}
	if eng.Now() != sim.Time(sim.Millisecond+5*sim.Microsecond) {
		t.Fatalf("finished at %v, want 1.005ms", eng.Now())
	}
}

func TestBorrowedContextChargesThroughVP(t *testing.T) {
	// A coroutine that is not the context's root charges CPU through it,
	// the way a user-level thread borrows its virtual processor: the VP
	// context stays dispatched while the root and the user thread switch by
	// parking/unparking each other.
	eng, m := newTestMachine(t, 1)
	cpu := m.CPU(0)
	var done, rootDone sim.Time
	var root *sim.Coroutine
	var ut *sim.Coroutine
	var worker *Worker
	var vp *Context
	vp = m.NewContext("vp", func(c *Context) {
		root = eng.Current()
		c.Exec(10 * sim.Microsecond)
		c.Root().Unbind() // hand the vessel to the user thread
		worker.Bind(c)
		ut.Unpark() // user-level "context switch" to the thread
		root.Park("running-uthread")
		c.Root().Bind(c)
		c.Exec(5 * sim.Microsecond) // scheduler runs again after the thread
		rootDone = eng.Now()
	})
	worker = m.NewWorker("uthread", nil)
	ut = eng.Go("uthread", func(co *sim.Coroutine) {
		worker.Exec(20 * sim.Microsecond) // charges through the VP's context
		done = eng.Now()
		worker.Unbind()
		root.Unpark() // switch back to the VP scheduler
	})
	cpu.Dispatch(vp)
	eng.Run()
	if done != sim.Time(30*sim.Microsecond) {
		t.Fatalf("uthread finished at %v, want 30µs", done)
	}
	if rootDone != sim.Time(35*sim.Microsecond) {
		t.Fatalf("scheduler finished at %v, want 35µs", rootDone)
	}
}

func TestPreemptedBorrowedContextResumesBorrower(t *testing.T) {
	// Preempting a VP mid-computation suspends whatever coroutine was
	// borrowing it; re-dispatch (even on another CPU) resumes that borrower.
	eng, m := newTestMachine(t, 2)
	var done sim.Time
	var ut *sim.Coroutine
	var worker *Worker
	vp := m.NewContext("vp", func(c *Context) {
		c.Root().Unbind()
		worker.Bind(c)
		ut.Unpark()
		eng.Current().Park("running-uthread")
	})
	worker = m.NewWorker("uthread", nil)
	ut = eng.Go("uthread", func(co *sim.Coroutine) {
		worker.Exec(100 * sim.Microsecond)
		done = eng.Now()
	})
	m.CPU(0).Dispatch(vp)
	eng.After(30*sim.Microsecond, "preempt", func() {
		got := m.CPU(0).Preempt()
		if got != vp {
			t.Errorf("preempted %v, want vp", got.Name())
		}
	})
	eng.After(50*sim.Microsecond, "redispatch-elsewhere", func() {
		m.CPU(1).Dispatch(vp)
	})
	eng.Run()
	if done != sim.Time(120*sim.Microsecond) {
		t.Fatalf("uthread finished at %v, want 120µs (30 run + 20 off + 70 run)", done)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng, m := newTestMachine(t, 2)
	ctx := m.NewContext("w", func(c *Context) { c.Exec(500 * sim.Microsecond) })
	m.CPU(0).Dispatch(ctx)
	eng.Run()
	eng.RunUntil(sim.Time(sim.Millisecond))
	if got := m.CPU(0).Utilization(); got < 0.49 || got > 0.51 {
		t.Fatalf("cpu0 utilization = %.3f, want 0.5", got)
	}
	if got := m.CPU(1).Utilization(); got != 0 {
		t.Fatalf("cpu1 utilization = %.3f, want 0", got)
	}
}

func TestPreemptJustBeforeCompletionInstant(t *testing.T) {
	// Preemption event ordered before the exec-done event at the same
	// instant: the demand is fully consumed (remaining 0), but the context
	// is off-CPU, so its post-Exec code only runs once re-dispatched. No
	// work is lost and no double resume occurs.
	eng, m := newTestMachine(t, 1)
	cpu := m.CPU(0)
	var phases []sim.Time
	ctx := m.NewContext("w", func(c *Context) {
		c.Exec(50 * sim.Microsecond)
		phases = append(phases, eng.Now())
	})
	cpu.Dispatch(ctx)
	eng.At(sim.Time(50*sim.Microsecond), "preempt-at-done", func() {
		got := cpu.Preempt()
		if got.Remaining() != 0 {
			t.Errorf("remaining = %v, want 0 (demand complete)", got.Remaining())
		}
	})
	eng.After(200*sim.Microsecond, "redispatch", func() { cpu.Dispatch(ctx) })
	eng.Run()
	if len(phases) != 1 || phases[0] != sim.Time(200*sim.Microsecond) {
		t.Fatalf("phases = %v, want Exec observed complete at redispatch (200µs)", phases)
	}
}

func TestPreemptJustAfterCompletionInstant(t *testing.T) {
	// Preemption event ordered after the exec-done event but before the
	// context's coroutine resumes, all at the same instant: the context
	// must not be double-resumed, its first Exec returns at the completion
	// time, and a subsequent Exec waits for re-dispatch.
	eng, m := newTestMachine(t, 1)
	cpu := m.CPU(0)
	var phases []sim.Time
	ctx := m.NewContext("w", func(c *Context) {
		c.Exec(50 * sim.Microsecond)
		phases = append(phases, eng.Now())
		c.Exec(50 * sim.Microsecond)
		phases = append(phases, eng.Now())
	})
	cpu.Dispatch(ctx)
	// Chain events so the preempt fires between exec-done and the
	// coroutine's resume at t=50µs.
	eng.At(sim.Time(50*sim.Microsecond), "chain", func() {
		eng.At(eng.Now(), "preempt-after-done", func() {
			if cpu.Current() == ctx {
				cpu.Preempt()
			}
		})
	})
	eng.After(200*sim.Microsecond, "redispatch", func() {
		if !ctx.Done() && !ctx.OnCPU() {
			cpu.Dispatch(ctx)
		}
	})
	eng.Run()
	if len(phases) != 2 {
		t.Fatalf("phases = %v, want 2 entries", phases)
	}
	if phases[0] != sim.Time(50*sim.Microsecond) {
		t.Errorf("first Exec finished at %v, want 50µs", phases[0])
	}
	if phases[1] != sim.Time(250*sim.Microsecond) {
		t.Errorf("second Exec finished at %v, want 250µs (waited for redispatch)", phases[1])
	}
}

func TestDiskFixedLatency(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	var done []sim.Time
	for i := 0; i < 3; i++ {
		m.Disk.Request(func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	want := sim.Time(50 * sim.Millisecond)
	for i, d := range done {
		if d != want {
			t.Errorf("request %d done at %v, want %v (uncontended)", i, d, want)
		}
	}
	if m.Disk.Requests != 3 {
		t.Errorf("Requests = %d, want 3", m.Disk.Requests)
	}
}

func TestDiskContendedSerializes(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	m.Disk.Contended = true
	var done []sim.Time
	for i := 0; i < 3; i++ {
		m.Disk.Request(func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	for i, d := range done {
		want := sim.Time(sim.Duration(i+1) * 50 * sim.Millisecond)
		if d != want {
			t.Errorf("request %d done at %v, want %v (serialized)", i, d, want)
		}
	}
}

func TestCostProfiles(t *testing.T) {
	def := DefaultCosts()
	if def.ProcCall != sim.Us(7) {
		t.Errorf("ProcCall = %v, want 7µs (paper §2.1)", def.ProcCall)
	}
	if def.Trap != sim.Us(19) {
		t.Errorf("Trap = %v, want 19µs (paper §2.1)", def.Trap)
	}
	if def.DiskLatency != sim.Ms(50) {
		t.Errorf("DiskLatency = %v, want 50ms (paper §5.3)", def.DiskLatency)
	}
	tuned := TunedCosts()
	if tuned.SAUpcallWork >= def.SAUpcallWork {
		t.Error("tuned profile should have cheaper upcalls than the prototype profile")
	}
}

func TestNegativeExecPanics(t *testing.T) {
	_, m := newTestMachine(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative Exec did not panic")
		}
	}()
	w := m.NewWorker("x", nil)
	w.Exec(-sim.Microsecond)
}

func TestWorkerRebindMigratesBankedWork(t *testing.T) {
	// The scheduler-activation story in miniature: a worker preempted
	// mid-computation on one vessel is rebound to a different vessel on a
	// different CPU and completes with no work lost.
	eng, m := newTestMachine(t, 2)
	var done sim.Time
	var worker *Worker
	vpA := m.NewContext("actA", func(c *Context) {
		c.Root().Unbind()
		worker.Bind(c)
		eng.Current().Park("vessel")
	})
	worker = m.NewWorker("uthread", nil)
	ut := eng.Go("uthread", func(co *sim.Coroutine) {
		worker.Exec(100 * sim.Microsecond)
		done = eng.Now()
	})
	ut.Unpark() // starts, finds worker unbound, parks cpu-wait
	m.CPU(0).Dispatch(vpA)
	eng.After(40*sim.Microsecond, "preempt-and-migrate", func() {
		got := m.CPU(0).Preempt()
		if got != vpA {
			t.Fatalf("preempted %s, want actA", got.Name())
		}
		if worker.Remaining() != 60*sim.Microsecond {
			t.Errorf("banked = %v, want 60µs", worker.Remaining())
		}
		worker.Unbind() // upcall handler pulls the thread state out of actA
		vpB := m.NewContext("actB", func(c *Context) {
			c.Root().Unbind()
			worker.Bind(c) // resume the thread in the new vessel
			eng.Current().Park("vessel")
		})
		m.CPU(1).Dispatch(vpB)
	})
	eng.Run()
	if done != sim.Time(100*sim.Microsecond) {
		t.Fatalf("worker finished at %v, want 100µs (no time lost)", done)
	}
}

func TestBindToDispatchedContextResumesWaiting(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	var done sim.Time
	worker := m.NewWorker("w", nil)
	ut := eng.Go("w", func(co *sim.Coroutine) {
		worker.Exec(10 * sim.Microsecond)
		done = eng.Now()
	})
	ut.Unpark() // parks cpu-wait: unbound
	vessel := m.NewContext("vessel", func(c *Context) {
		c.Root().Unbind()
		eng.Current().Park("idle")
	})
	m.CPU(0).Dispatch(vessel)
	eng.After(50*sim.Microsecond, "bind", func() { worker.Bind(vessel) })
	eng.Run()
	if done != sim.Time(60*sim.Microsecond) {
		t.Fatalf("done at %v, want 60µs (bound at 50, ran 10)", done)
	}
}

func TestDoubleBindPanics(t *testing.T) {
	_, m := newTestMachine(t, 1)
	a := m.NewWorker("a", nil)
	b := m.NewWorker("b", nil)
	vessel := m.NewContext("vessel", func(c *Context) {})
	vessel.Root().Unbind()
	a.Bind(vessel)
	defer func() {
		if recover() == nil {
			t.Fatal("binding a second worker did not panic")
		}
	}()
	b.Bind(vessel)
}

func TestMachineNeedsOneCPU(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-CPU machine did not panic")
		}
	}()
	New(eng, 0, DefaultCosts())
}
