package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"schedact/internal/sim"
)

// Property: no matter how a context is preempted and re-dispatched (random
// schedule), a worker's total consumed CPU time equals its demand — work is
// neither lost nor duplicated.
func TestWorkerDemandConservedUnderRandomPreemption(t *testing.T) {
	f := func(seed int64, demandRaw uint16, slices uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		demand := sim.Duration(demandRaw%5000+100) * sim.Microsecond
		eng := sim.NewEngine()
		defer eng.Close()
		m := New(eng, 2, DefaultCosts())
		var finished sim.Time
		ctx := m.NewContext("w", func(c *Context) {
			c.Exec(demand)
			finished = eng.Now()
		})
		cpu := 0
		m.CPU(0).Dispatch(ctx)
		offTotal := sim.Duration(0)
		at := sim.Duration(0)
		for i := 0; i < int(slices%12); i++ {
			run := sim.Duration(rng.Intn(400)+1) * sim.Microsecond
			off := sim.Duration(rng.Intn(400)+1) * sim.Microsecond
			at += run
			preemptAt, resumeAt, nextCPU := at, at+off, (cpu+i)%2
			eng.At(sim.Time(preemptAt), "preempt", func() {
				if !ctx.Done() && ctx.OnCPU() {
					ctx.CPU().Preempt()
				}
			})
			eng.At(sim.Time(resumeAt), "resume", func() {
				if !ctx.Done() && !ctx.OnCPU() {
					m.CPU(CPUID(nextCPU)).Dispatch(ctx)
				}
			})
			// Only count the off-window if the preemption happened before
			// the work could have finished; conservatively verify with a
			// bound instead of exact equality below.
			offTotal += off
			at = resumeAt
		}
		eng.Run()
		if finished == 0 {
			return false // never finished: work lost
		}
		// Lower bound: at least the demand. Upper bound: demand plus all
		// off-CPU time.
		return finished >= sim.Time(demand) && finished <= sim.Time(demand+offTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: a worker migrated across many vessels still consumes exactly
// its demand.
func TestWorkerMigrationConservesDemand(t *testing.T) {
	f := func(seed int64, hops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		defer eng.Close()
		m := New(eng, 1, DefaultCosts())
		demand := 1000 * sim.Microsecond
		var finished sim.Time
		w := m.NewWorker("mig", nil)
		co := eng.Go("mig", func(*sim.Coroutine) {
			w.Exec(demand)
			finished = eng.Now()
		})
		co.Unpark()
		newVessel := func() *Context {
			return m.NewContext("vessel", func(c *Context) {
				c.Root().Unbind()
				w.Bind(c)
				eng.Current().Park("vessel")
			})
		}
		cur := newVessel()
		m.CPU(0).Dispatch(cur)
		at := sim.Duration(0)
		n := int(hops%6) + 1
		for i := 0; i < n; i++ {
			gap := sim.Duration(rng.Intn(200)+10) * sim.Microsecond
			at += gap
			eng.At(sim.Time(at), "migrate", func() {
				if w.MidExec() || finished != 0 {
					if finished != 0 {
						return
					}
					m.CPU(0).Preempt()
					w.Unbind()
					next := newVessel() // binds w when dispatched
					m.CPU(0).Dispatch(next)
				}
			})
		}
		eng.Run()
		// Total elapsed must be exactly the demand: migration costs nothing
		// at machine level (costs are policy-level charges).
		return finished == sim.Time(demand)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerWantsCPUStates(t *testing.T) {
	eng, m := newTestMachine(t, 1)
	w := m.NewWorker("w", nil)
	if w.WantsCPU() {
		t.Fatal("fresh worker should not want a CPU")
	}
	co := eng.Go("w", func(*sim.Coroutine) {
		w.Exec(10 * sim.Microsecond)
	})
	co.Unpark()
	eng.Run() // unbound: parks wanting a CPU
	if !w.WantsCPU() {
		t.Fatal("unbound charging worker should want a CPU")
	}
	vessel := m.NewContext("v", func(c *Context) {
		c.Root().Unbind()
		w.Bind(c)
		eng.Current().Park("vessel")
	})
	m.CPU(0).Dispatch(vessel)
	eng.Run()
	if w.WantsCPU() {
		t.Fatal("satisfied worker should not want a CPU")
	}
	if w.Remaining() != 0 {
		t.Fatalf("remaining = %v, want 0", w.Remaining())
	}
}
