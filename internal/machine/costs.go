package machine

import "schedact/internal/sim"

// Costs is the primitive cost table for the simulated machine and the
// systems built on it. The two hardware primitives the paper publishes for
// the CVAX Firefly anchor the table: a procedure call takes about 7 µs and a
// kernel trap about 19 µs (§2.1). The remaining entries decompose the
// composite paths of each thread system into primitive charges; they are
// calibrated (see EXPERIMENTS.md) so that the composite microbenchmark
// latencies land on the paper's Table 1/4 values, and are then held fixed
// for every application experiment.
//
// All values are virtual durations.
type Costs struct {
	// Hardware primitives (paper §2.1).
	ProcCall sim.Duration // procedure call: 7 µs on the Firefly
	Trap     sim.Duration // kernel trap: 19 µs on the Firefly
	IPI      sim.Duration // inter-processor interrupt delivery
	TAS      sim.Duration // atomic test-and-set (spin-lock grab, uncontended)

	// FastThreads user-level thread operations (per-component; the Null
	// Fork path sums to ~34 µs and Signal-Wait to ~37 µs on the original
	// system).
	UTAlloc  sim.Duration // TCB+stack allocation from the per-VP free list
	UTInit   sim.Duration // TCB/stack initialization
	UTEnq    sim.Duration // ready-list enqueue
	UTDeq    sim.Duration // ready-list dequeue
	UTSwitch sim.Duration // user-level context switch (register save/restore)
	UTFree   sim.Duration // TCB free-list return
	UTCond   sim.Duration // condition-variable bookkeeping per operation

	// Topaz kernel-thread operations (in-kernel work; every operation also
	// pays Trap on entry).
	KTForkWork   sim.Duration // allocate+init thread control block and stacks
	KTExitWork   sim.Duration // reap a finished kernel thread
	KTSignalWork sim.Duration // wake a blocked kernel thread
	KTBlockWork  sim.Duration // queue the caller on a kernel object
	KTDispatch   sim.Duration // kernel-level context switch / dispatcher pass

	// Ultrix-style process operations.
	ProcForkWork   sim.Duration // duplicate process state (address space, descriptors)
	ProcExitWork   sim.Duration // tear down a process
	ProcSignalWork sim.Duration // deliver a signal to a process
	ProcBlockWork  sim.Duration // block a process in the kernel
	ProcDispatch   sim.Duration // process context switch (address space switch)

	// Scheduler-activation machinery.
	SAAccount     sim.Duration // increment/decrement the busy-thread count and test whether the kernel must be told (§5.1: adds ~3 µs to Null Fork)
	SAResumeCheck sim.Duration // test whether a resumed thread was preempted, restoring condition codes if so (§5.1: part of the +5 µs on Signal-Wait)
	SAUpcallWork  sim.Duration // kernel side of one upcall: recycle/create an activation, set up the user-level entry (the prototype's untuned Modula-2+ path; see §5.2)
	SANotifyWork  sim.Duration // kernel side of an address-space→kernel notification (Table 3 calls)

	// Critical-section ablation (§4.3/§5.1): with the zero-overhead
	// code-copy technique this is 0 on the common path; the ablation
	// profile instead charges this per critical section entered+exited.
	ExplicitCSFlag sim.Duration

	// Devices and quanta.
	DiskLatency sim.Duration // paper §5.3: a cache miss "simply blocks in the kernel for 50 msec"
	Quantum     sim.Duration // kernel time-slice quantum for oblivious scheduling
}

// CrossLPLookahead returns the guaranteed lookahead this cost table gives
// the conservative PDES engine (sim.WithLookahead): the cheapest primitive
// by which one simulated CPU can affect another — IPI delivery or trapping
// into the kernel, whichever is less. No cross-CPU causal chain can complete
// in less simulated time than this, so it is safe lookahead in the
// Chandy–Misra sense; the sim layer's null-message bounds keep the timeline
// exact for any positive value, so this only sizes harvest batches.
func (c *Costs) CrossLPLookahead() sim.Duration {
	la := c.IPI
	if c.Trap < la {
		la = c.Trap
	}
	return la
}

// DefaultCosts returns the calibrated cost profile for the paper's prototype
// implementation: user-level operations match original FastThreads, kernel
// operations match Topaz, and the upcall path carries the prototype's
// unoptimized overhead (§5.2 reports kernel-mediated signal-wait at 2.4 ms).
// All application experiments (Figures 1–2, Table 5) use this profile.
func DefaultCosts() *Costs {
	return &Costs{
		ProcCall: sim.Us(7),
		Trap:     sim.Us(19),
		IPI:      sim.Us(10),
		TAS:      sim.Us(0.5),

		UTAlloc:  sim.Us(2),
		UTInit:   sim.Us(3),
		UTEnq:    sim.Us(2),
		UTDeq:    sim.Us(2),
		UTSwitch: sim.Us(5),
		UTFree:   sim.Us(1),
		UTCond:   sim.Us(13.25),

		KTForkWork:   sim.Us(520),
		KTExitWork:   sim.Us(79),
		KTSignalWork: sim.Us(178),
		KTBlockWork:  sim.Us(165),
		KTDispatch:   sim.Us(60),

		ProcForkWork:   sim.Us(9776),
		ProcExitWork:   sim.Us(300),
		ProcSignalWork: sim.Us(822),
		ProcBlockWork:  sim.Us(800),
		ProcDispatch:   sim.Us(180),

		SAAccount:     sim.Us(1.5),
		SAResumeCheck: sim.Us(2),
		SAUpcallWork:  sim.Us(2160),
		SANotifyWork:  sim.Us(40),

		ExplicitCSFlag: sim.Us(2),

		DiskLatency: sim.Ms(50),
		Quantum:     sim.Ms(100),
	}
}

// TunedCosts returns the same profile with the upcall path reduced to
// kernel-thread scale, modelling the assembler-tuned production
// implementation the paper argues would be achievable (§5.2: "we expect
// that, if tuned, our upcall performance would be commensurate with Topaz
// kernel thread performance").
func TunedCosts() *Costs {
	c := DefaultCosts()
	c.SAUpcallWork = sim.Us(100)
	return c
}
