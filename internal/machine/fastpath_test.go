package machine

import (
	"testing"

	"schedact/internal/sim"
)

// TestExecFastPathElidesSwitches pins that the common Exec case — a CPU
// charge completing before anything else fires — goes through the inline
// fast path: the virtual timeline is identical with elision on or off, but
// the physical hand-off count collapses.
func TestExecFastPathElidesSwitches(t *testing.T) {
	run := func(disable bool) (end sim.Time, logical, physical uint64) {
		eng, m := newTestMachine(t, 1, sim.WithElision(!disable))
		ctx := m.NewContext("worker", func(c *Context) {
			for i := 0; i < 50; i++ {
				c.Exec(10 * sim.Microsecond)
			}
		})
		m.CPU(0).Dispatch(ctx)
		eng.Run()
		if !ctx.Done() {
			t.Fatal("context not done")
		}
		return eng.Now(), eng.Stats().LogicalResumes, eng.Stats().PhysicalSwitches
	}
	endSlow, lSlow, pSlow := run(true)
	endFast, lFast, pFast := run(false)
	if endFast != endSlow || lFast != lSlow {
		t.Fatalf("elision changed the timeline: end %v/%v logical %d/%d", endFast, endSlow, lFast, lSlow)
	}
	if lSlow != pSlow {
		t.Fatalf("DisableElision: logical %d != physical %d", lSlow, pSlow)
	}
	// 50 uncontended charges: one physical dispatch to start, the rest inline.
	if pFast >= pSlow {
		t.Fatalf("fast path did not reduce switches: physical %d vs %d", pFast, pSlow)
	}
	if pFast != 1 {
		t.Fatalf("physical switches = %d, want 1 (the start dispatch)", pFast)
	}
}

// TestExecFastPathFallsBackUnderPreemption pins the fallback: when another
// event (a quantum preemption) fires inside the charge window, Exec takes
// the physical park and the preemption accounting — banked remaining time,
// redispatch — is identical to the slow path.
func TestExecFastPathFallsBackUnderPreemption(t *testing.T) {
	run := func(disable bool) (end sim.Time, banked sim.Duration) {
		eng, m := newTestMachine(t, 1, sim.WithElision(!disable))
		ctx := m.NewContext("worker", func(c *Context) {
			c.Exec(100 * sim.Microsecond)
		})
		m.CPU(0).Dispatch(ctx)
		eng.RunFor(40 * sim.Microsecond)
		m.CPU(0).Preempt()
		banked = ctx.Remaining()
		m.CPU(0).Dispatch(ctx)
		eng.Run()
		return eng.Now(), banked
	}
	endSlow, bankSlow := run(true)
	endFast, bankFast := run(false)
	if endFast != endSlow || bankFast != bankSlow {
		t.Fatalf("preempted charge diverged: end %v/%v banked %v/%v", endFast, endSlow, bankFast, bankSlow)
	}
	if bankFast != 60*sim.Microsecond {
		t.Fatalf("banked %v, want 60µs", bankFast)
	}
}
