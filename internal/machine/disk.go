package machine

import "schedact/internal/sim"

// Disk models the backing store behind the application's buffer cache. The
// paper simplifies a cache miss to "block in the kernel for 50 msec"
// (§5.3), noting measurements were qualitatively similar with disk
// contention modelled; both modes are supported here, with the paper's
// fixed-latency behaviour as the default.
type Disk struct {
	m *Machine

	// Latency is the service time of one request.
	Latency sim.Duration

	// Contended serializes requests through a single disk arm when true.
	// The default (false) gives every request the fixed latency, matching
	// the paper's simplification.
	Contended bool

	freeAt sim.Time // when the arm becomes free (contended mode)

	Requests uint64
}

// Request schedules an I/O and calls done when it completes. It returns the
// completion time.
func (d *Disk) Request(done func()) sim.Time {
	d.Requests++
	now := d.m.Now()
	start := now
	if d.Contended {
		if d.freeAt > start {
			start = d.freeAt
		}
		d.freeAt = start.Add(d.Latency)
	}
	completes := start.Add(d.Latency)
	d.m.Eng.At(completes, "disk:done", done)
	return completes
}
