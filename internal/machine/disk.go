package machine

import (
	"schedact/internal/sim"
	"schedact/internal/trace"
)

// Disk models the backing store behind the application's buffer cache. The
// paper simplifies a cache miss to "block in the kernel for 50 msec"
// (§5.3), noting measurements were qualitatively similar with disk
// contention modelled; both modes are supported here, with the paper's
// fixed-latency behaviour as the default.
type Disk struct {
	m *Machine

	// Latency is the service time of one request.
	Latency sim.Duration

	// Contended serializes requests through a single disk arm when true.
	// The default (false) gives every request the fixed latency, matching
	// the paper's simplification.
	Contended bool

	// Perturb, when non-nil, maps each request's service time to the one
	// actually charged — the fault-injection hook for latency jitter and
	// spikes. It is consulted once per request, in request order, so a
	// deterministic perturbation (chaos.Plan) yields a deterministic run.
	Perturb func(sim.Duration) sim.Duration

	freeAt sim.Time // when the arm becomes free (contended mode)

	Requests uint64
}

// Request schedules an I/O and calls done when it completes. It returns the
// completion time.
func (d *Disk) Request(done func()) sim.Time {
	d.Requests++
	lat := d.Latency
	if d.Perturb != nil {
		lat = d.Perturb(lat)
		if lat < 0 {
			lat = 0
		}
	}
	now := d.m.Now()
	start := now
	if d.Contended {
		if d.freeAt > start {
			start = d.freeAt
		}
		d.freeAt = start.Add(lat)
	}
	completes := start.Add(lat)
	d.m.Trace.Emit(trace.Record{T: now, CPU: -1, Kind: trace.KindIO, A: int64(d.Requests), B: int64(lat)})
	d.m.Eng.At(completes, "disk:done", done)
	return completes
}
