// Multiprogramming example: watch the space-sharing processor allocator.
//
// Two applications share a 6-processor machine under the scheduler-
// activation kernel. The first starts alone and grows to all six
// processors; when the second starts, the allocator preempts processors
// (with the Table 2 double-preemption notification protocol) to split the
// machine 3/3; when the first finishes, the survivor expands again. The
// program samples the allocation as it evolves.
package main

import (
	"fmt"

	"schedact/internal/apps/nbody"
	"schedact/internal/core"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

func main() {
	eng := sim.NewEngine()
	defer eng.Close()
	k := core.New(eng, core.Config{CPUs: 6})

	cfg := nbody.Config{N: 384, Steps: 2, Seed: 9}

	s0 := uthread.OnActivations(k, "early-bird", 0, 6, uthread.Options{})
	r0 := nbody.Launch(nbody.UThreadSystem{S: s0}, cfg)
	s0.Start()

	// The second application arrives 300ms later.
	var s1 *uthread.Sched
	var r1 *nbody.Run
	eng.After(300*sim.Millisecond, "late-arrival", func() {
		s1 = uthread.OnActivations(k, "latecomer", 0, 6, uthread.Options{})
		r1 = nbody.Launch(nbody.UThreadSystem{S: s1}, cfg)
		s1.Start()
	})

	fmt.Println("   time   early-bird  latecomer  free   (processors)")
	for ms := 0; ms <= 3000; ms += 150 {
		ms := ms
		eng.At(sim.Time(sim.Duration(ms)*sim.Millisecond), "sample", func() {
			a0 := k.Allocated(s0.ActivationSpace())
			a1 := 0
			if s1 != nil {
				a1 = k.Allocated(s1.ActivationSpace())
			}
			fmt.Printf("%6dms   %10d  %9d  %4d\n", ms, a0, a1, k.FreeCPUs())
		})
	}
	eng.RunUntil(sim.Time(20 * sim.Second))

	fmt.Println()
	report := func(name string, r *nbody.Run) {
		if r == nil || !r.Done {
			fmt.Printf("%s: did not finish\n", name)
			return
		}
		fmt.Printf("%-11s finished at %7.3fs (ran %7.3fs)\n",
			name, r.Finished.Seconds(), sim.Duration(r.Elapsed()).Seconds())
	}
	report("early-bird", r0)
	report("latecomer", r1)
	fmt.Printf("\nkernel: %d grants, %d takes, %d double-preemption notifications, %d rebalances\n",
		k.Stats.Grants, k.Stats.Takes, k.Stats.DoublePreempts, k.Stats.Rebalances)
}
