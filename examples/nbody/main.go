// N-body example: the paper's §5.3 application on all three thread systems.
//
// Runs the same Barnes-Hut computation (identical physics, verified against
// an O(N²) reference) on Topaz kernel threads, original FastThreads, and
// FastThreads on scheduler activations, on a 4-processor machine, and
// reports execution time and speedup over the sequential implementation.
package main

import (
	"fmt"

	"schedact/internal/apps/nbody"
	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

const cpus = 4

func main() {
	cfg := nbody.Config{N: 256, Steps: 2, Seed: 42}

	// Sequential baseline.
	seqEng := sim.NewEngine()
	seqK := kernel.New(seqEng, kernel.Config{CPUs: 1})
	seq := nbody.RunSequential(seqK.NewSpace("seq", false), cfg)
	seqEng.Run()
	seqEng.Close()
	fmt.Printf("sequential:        %8.3fs   (%d interactions)\n",
		sim.Duration(seq.Elapsed()).Seconds(), seq.Interactions)

	type launch func(eng sim.Engine) *nbody.Run
	systems := []struct {
		name string
		run  launch
	}{
		{"Topaz threads", func(eng sim.Engine) *nbody.Run {
			k := kernel.New(eng, kernel.Config{CPUs: cpus})
			sp := k.NewSpace("nbody", false)
			return nbody.Launch(nbody.KThreadSystem{K: k, SP: sp}, cfg)
		}},
		{"orig FastThreads", func(eng sim.Engine) *nbody.Run {
			k := kernel.New(eng, kernel.Config{CPUs: cpus})
			s := uthread.OnKernelThreads(k, k.NewSpace("nbody", false), cpus, uthread.Options{})
			r := nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
			s.Start()
			return r
		}},
		{"new FastThreads", func(eng sim.Engine) *nbody.Run {
			k := core.New(eng, core.Config{CPUs: cpus})
			s := uthread.OnActivations(k, "nbody", 0, cpus, uthread.Options{})
			r := nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
			s.Start()
			return r
		}},
	}

	for _, sys := range systems {
		eng := sim.NewEngine()
		r := sys.run(eng)
		eng.RunUntil(sim.Time(10 * 60 * sim.Second))
		if !r.Done {
			fmt.Printf("%-18s did not finish\n", sys.name)
			eng.Close()
			continue
		}
		same := "physics identical to sequential"
		if r.Interactions != seq.Interactions {
			same = "PHYSICS DIVERGED"
		}
		fmt.Printf("%-18s %8.3fs   speedup %.2f on %d CPUs   (%s)\n",
			sys.name, sim.Duration(r.Elapsed()).Seconds(),
			float64(seq.Elapsed())/float64(r.Elapsed()), cpus, same)
		eng.Close()
	}
}
