// Quickstart: a minimal program on the scheduler-activation stack.
//
// It builds a 4-processor simulated machine running the scheduler-activation
// kernel, puts a FastThreads-style user-level scheduler on top, and runs a
// small fork/join computation with a mutex-protected counter — then shows
// what the kernel actually did: how many upcalls were delivered, how many
// processors were requested, and how cheap the thread operations were.
package main

import (
	"fmt"

	"schedact/internal/core"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

func main() {
	// A deterministic virtual machine: every run prints the same output.
	eng := sim.NewEngine()
	defer eng.Close()

	// The paper's kernel: processors are allocated to address spaces,
	// and every scheduling-relevant event is vectored up as an upcall.
	k := core.New(eng, core.Config{CPUs: 4})

	// The paper's user-level thread package, bound to scheduler
	// activations ("modified FastThreads").
	s := uthread.OnActivations(k, "quickstart", 0, 4, uthread.Options{})

	counter := 0
	mu := s.NewMutex()

	s.Spawn("main", func(t *uthread.Thread) {
		fmt.Printf("[%8v] main starts\n", t.Now())

		// Fork workers; each costs ~37 virtual µs (Table 4) and runs
		// without any kernel involvement.
		var kids []*uthread.Thread
		for i := 0; i < 8; i++ {
			i := i
			kids = append(kids, t.Fork(fmt.Sprintf("worker%d", i), func(w *uthread.Thread) {
				w.Exec(sim.Ms(2)) // simulate 2ms of computation
				mu.Lock(w)
				counter++
				mu.Unlock(w)
				if i == 0 {
					// One worker does disk I/O: the kernel takes its
					// activation, gives the processor straight back with a
					// Blocked upcall, and returns the thread with an
					// Unblocked upcall 50ms later.
					fmt.Printf("[%8v] worker0 blocks in the kernel for I/O\n", w.Now())
					w.BlockIO()
					fmt.Printf("[%8v] worker0 resumed after I/O\n", w.Now())
				}
			}))
		}
		for _, c := range kids {
			t.Join(c)
		}
		fmt.Printf("[%8v] all workers joined, counter=%d\n", t.Now(), counter)
	})

	s.Start()
	eng.Run()

	fmt.Println()
	fmt.Printf("user-level stats: %d forks, %d switches, %d kernel blocks\n",
		s.Stats.Forks, s.Stats.Switches, s.Stats.BlocksKernel)
	fmt.Printf("kernel stats:     %d upcalls (%d AddProcessor, %d Preempted, %d Blocked, %d Unblocked)\n",
		k.Stats.Upcalls,
		k.Stats.UpcallEvents[core.EvAddProcessor], k.Stats.UpcallEvents[core.EvPreempted],
		k.Stats.UpcallEvents[core.EvBlocked], k.Stats.UpcallEvents[core.EvUnblocked])
	if err := k.CheckInvariants(); err != nil {
		fmt.Println("invariant violation:", err)
	} else {
		fmt.Println("invariant holds:  running activations == allocated processors, for every space")
	}
}
