// Concurrency-model example: the paper's flexibility claim (§1.2).
//
// Nothing in the kernel knows about threads — it deals only in scheduler
// activations — so other concurrency models build on the same substrate
// without touching it. This program runs the same image-pipeline-shaped
// computation twice: once as a WorkCrews-style worker pool and once as a
// Multilisp-style future dataflow, both over FastThreads on activations.
package main

import (
	"fmt"

	"schedact/internal/core"
	"schedact/internal/models"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

const cpus = 4

func main() {
	// --- WorkCrews: a crew of workers serving a self-expanding task queue.
	{
		eng := sim.NewEngine()
		k := core.New(eng, core.Config{CPUs: cpus})
		s := uthread.OnActivations(k, "crew-app", 0, cpus, uthread.Options{})
		crew := models.NewCrew(s, cpus)
		processed := 0
		// Each "image" task spawns a per-tile subtask.
		for img := 0; img < 6; img++ {
			crew.Submit(func(w *models.Worker) {
				w.Exec(sim.Ms(1)) // decode
				for tile := 0; tile < 4; tile++ {
					w.Add(func(w *models.Worker) {
						w.Exec(sim.Ms(3)) // filter the tile
						processed++
					})
				}
			})
		}
		var done sim.Time
		s.Spawn("driver", func(t *uthread.Thread) {
			crew.Drain(t)
			done = t.Now()
			crew.Close(t)
		})
		s.Start()
		eng.RunUntil(sim.Time(10 * sim.Second))
		fmt.Printf("work crew:  %2d tiles processed in %6.2fms on %d workers (%d tasks executed)\n",
			processed, done.Ms(), cpus, crew.Executed)
		eng.Close()
	}

	// --- Futures: a dataflow of dependent computations.
	{
		eng := sim.NewEngine()
		k := core.New(eng, core.Config{CPUs: cpus})
		s := uthread.OnActivations(k, "future-app", 0, cpus, uthread.Options{})
		var done sim.Time
		var result int
		s.Spawn("main", func(t *uthread.Thread) {
			// Four independent 5ms stages, then a combine that forces them.
			var stages []*models.Future
			for i := 0; i < 4; i++ {
				i := i
				stages = append(stages, models.NewFuture(t, fmt.Sprintf("stage%d", i), func(ft *uthread.Thread) any {
					ft.Exec(sim.Ms(5))
					return i + 1
				}))
			}
			combine := models.NewFuture(t, "combine", func(ft *uthread.Thread) any {
				sum := 0
				for _, f := range stages {
					sum += f.Force(ft).(int)
				}
				ft.Exec(sim.Ms(2))
				return sum
			})
			result = combine.Force(t).(int)
			done = t.Now()
		})
		s.Start()
		eng.RunUntil(sim.Time(10 * sim.Second))
		fmt.Printf("futures:    result %d in %6.2fms (4×5ms stages overlapped + 2ms combine)\n",
			result, done.Ms())
		eng.Close()
	}
}
