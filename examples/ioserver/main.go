// I/O server example: why a blocking thread must not take its processor
// with it.
//
// A request-serving application handles a stream of requests, each needing
// a little computation and one disk read. On original FastThreads (virtual
// processors = kernel threads), every disk read blocks a virtual processor:
// with all of them blocked the machine sits idle under a pile of pending
// requests. On scheduler activations the kernel hands the processor back at
// every block, so computation and I/O overlap and throughput tracks the
// disk, not the thread system.
package main

import (
	"fmt"

	"schedact/internal/core"
	"schedact/internal/kernel"
	"schedact/internal/sim"
	"schedact/internal/uthread"
)

const (
	cpus     = 2
	requests = 60
	compute  = 2 * sim.Millisecond // per-request CPU work
)

// serve runs the request loop on the given scheduler and reports the
// completion time of the last request.
func serve(eng sim.Engine, s *uthread.Sched) (finish *sim.Time, served *int) {
	count := new(int)
	finish = new(sim.Time)
	s.Spawn("listener", func(t *uthread.Thread) {
		var handlers []*uthread.Thread
		for i := 0; i < requests; i++ {
			handlers = append(handlers, t.Fork(fmt.Sprintf("req%d", i), func(h *uthread.Thread) {
				h.Exec(compute / 2)
				h.BlockIO() // fetch the record: 50ms disk read
				h.Exec(compute / 2)
				*count++
			}))
		}
		for _, h := range handlers {
			t.Join(h)
		}
		*finish = t.Now()
	})
	s.Start()
	eng.RunUntil(sim.Time(5 * 60 * sim.Second))
	return finish, count
}

func main() {
	fmt.Printf("%d requests, %v compute + one 50ms disk read each, %d processors\n\n",
		requests, compute, cpus)

	{
		eng := sim.NewEngine()
		k := kernel.New(eng, kernel.Config{CPUs: cpus})
		s := uthread.OnKernelThreads(k, k.NewSpace("server", false), cpus, uthread.Options{})
		finish, count := serve(eng, s)
		fmt.Printf("orig FastThreads:  %3d served, done at %8.3fs  (each blocked VP idles a processor)\n",
			*count, finish.Seconds())
		eng.Close()
	}
	{
		eng := sim.NewEngine()
		k := core.New(eng, core.Config{CPUs: cpus})
		s := uthread.OnActivations(k, "server", 0, cpus, uthread.Options{})
		finish, count := serve(eng, s)
		fmt.Printf("new FastThreads:   %3d served, done at %8.3fs  (blocked activations return their processors)\n",
			*count, finish.Seconds())
		eng.Close()
	}
	fmt.Println("\nlower bound: 60 overlapped 50ms reads ≈ 0.05s + compute; serialized reads ≈ 60×50ms/VPs")
}
