package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"schedact/internal/exp"
	"schedact/internal/fleet"
	"schedact/internal/scenario"
)

// The multi-process shard driver: saexp -scenario X -shard-exec n splits a
// mix sweep into n contiguous seed shards and re-executes itself once per
// shard (`saexp -scenario <spec> -shard i/n -checkpoint ... -results ...`),
// a bounded number of children at a time. Each child checkpoints under its
// shard-suffixed resume key, so a crashed child is simply re-run and
// resumes where its checkpoint left off; a child that exits 0 or 1 is
// complete (1 means seeds failed — a verdict, not a crash). When every
// shard has finished, the driver merges the shard checkpoints and prints
// the combined report.

// shardExecOpts carries the parent flags the driver derives child
// invocations from.
type shardExecOpts struct {
	checkpoint string // base checkpoint path ("" = temp dir)
	results    string // base JSONL results path ("" = none)
	workers    int    // raw -workers (0 = auto-divide across children)
	engine     string
	lps        int
	parallel   int // concurrent children (0 = min(shards, CPUs))
	every      int // -checkpoint-every passthrough
}

// shardRetries is how many times a crashed shard child is re-run (resuming
// from its checkpoint) before the driver gives up on the sweep.
const shardRetries = 2

// shardSuffix names shard i of n's derived file next to a base path.
func shardSuffix(base string, i, n int) string {
	return fmt.Sprintf("%s.shard%dof%d", base, i, n)
}

// runShardExec drives one sharded multi-process sweep; see the file
// comment. Exit codes: 0 all seeds passed, 1 some seeds failed, 2 a shard
// could not be completed or the merge was rejected.
func runShardExec(src string, n int, o shardExecOpts) int {
	sp, err := loadSpec(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if sp.Shard != nil {
		fmt.Fprintln(os.Stderr, "-shard-exec: the spec already names a shard; run it directly or drop spec.shard")
		return 2
	}
	// Validate the full sharded shape up front (shard 1 stands in for all:
	// only shard.index varies across children) so a child never discovers a
	// spec error three retries deep.
	if err := scenario.Validate(scenario.WithShard(sp, 1, n)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "-shard-exec: cannot find own executable: %v\n", err)
		return 2
	}
	// Children re-read the spec from a canonical temp file, so stdin specs
	// and builtins take the same path as spec files.
	dir, err := os.MkdirTemp("", "saexp-shards-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer os.RemoveAll(dir)
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, scenario.Marshal(sp), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	ckptBase := o.checkpoint
	if ckptBase == "" {
		ckptBase = filepath.Join(dir, "sweep.json")
	}

	bound := o.parallel
	if bound <= 0 {
		bound = min(n, runtime.NumCPU())
	}
	bound = min(bound, n)
	// Fleet-level and per-child parallelism multiply: divide the host
	// unless the caller pinned -workers explicitly.
	childWorkers := o.workers
	if childWorkers <= 0 {
		perRun := 1
		if o.engine == "par" {
			perRun = 1 + o.lps
		}
		childWorkers = max(1, fleet.WorkersFor(perRun)/bound)
	}
	every := o.every
	if every == 0 {
		every = 4 // shard children checkpoint often: a kill loses little
	}

	type verdict struct {
		code     int // final exit code (0 ok, 1 seeds failed, else crash)
		attempts int
	}
	ckpts := make([]string, n)
	fmt.Printf("shard-exec: %d shard(s) of %s, %d process(es) at a time, %d worker(s) per child\n",
		n, sp.Name, bound, childWorkers)
	gaveUp := false
	fleet.Run(bound, n, func(job, worker int) verdict {
		i := job + 1
		ckpt := shardSuffix(ckptBase, i, n)
		ckpts[job] = ckpt
		args := []string{
			"-scenario", specPath,
			"-shard", fmt.Sprintf("%d/%d", i, n),
			"-checkpoint", ckpt,
			"-checkpoint-every", fmt.Sprint(every),
			"-workers", fmt.Sprint(childWorkers),
			"-engine", o.engine,
			"-lps", fmt.Sprint(o.lps),
		}
		if o.results != "" {
			args = append(args, "-results", shardSuffix(o.results, i, n))
		}
		v := verdict{}
		for v.attempts = 1; v.attempts <= 1+shardRetries; v.attempts++ {
			cmd := exec.Command(self, args...)
			log, err := os.Create(shardSuffix(filepath.Join(dir, "log"), i, n))
			if err == nil {
				cmd.Stdout, cmd.Stderr = log, log
			}
			runErr := cmd.Run()
			if log != nil {
				log.Close()
			}
			v.code = cmd.ProcessState.ExitCode()
			if runErr == nil || v.code == 0 || v.code == 1 {
				return v // complete: 0 = passed, 1 = seeds failed (a verdict)
			}
			// Anything else — a panic (2), a signal (-1) — is a crash; the
			// re-run resumes from the shard checkpoint.
		}
		v.attempts--
		return v
	}, func(res fleet.Result[verdict]) {
		i := res.Job + 1
		v := res.Value
		switch v.code {
		case 0, 1:
			status := "done"
			if v.code == 1 {
				status = "done, seeds FAILED"
			}
			retry := ""
			if v.attempts > 1 {
				retry = fmt.Sprintf(" (resumed after %d crash(es))", v.attempts-1)
			}
			fmt.Printf("  shard %d/%d: %s%s\n", i, n, status, retry)
		default:
			gaveUp = true
			fmt.Printf("  shard %d/%d: gave up after %d attempt(s), last exit %d — see %s\n",
				i, n, v.attempts, v.code, shardSuffix(filepath.Join(dir, "log"), i, n))
			dumpTail(shardSuffix(filepath.Join(dir, "log"), i, n))
		}
	})
	if gaveUp {
		return 2
	}
	m, err := exp.MergeShardFiles(os.Stdout, ckpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if m.Failed > 0 {
		return 1
	}
	return 0
}

// dumpTail prints the last few lines of a crashed shard's log so the
// failure is visible without digging the temp dir up before it is removed.
func dumpTail(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) > 10 {
		lines = lines[len(lines)-10:]
	}
	for _, l := range lines {
		fmt.Printf("    | %s\n", l)
	}
}

// runMerge folds finished shard checkpoint files into one report: the
// -merge subcommand. Exit codes mirror a sweep run: 0 all merged seeds
// passed, 1 some failed, 2 the merge was rejected (incomplete, gapped,
// overlapping, or foreign shards).
func runMerge(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "-merge: list the shard checkpoint files to merge")
		return 2
	}
	m, err := exp.MergeShardFiles(os.Stdout, paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("merged %d shard(s): spec key %s, merged fingerprint %016x\n", m.Shards, m.BaseKey, m.Fleet)
	if m.Failed > 0 {
		return 1
	}
	return 0
}
